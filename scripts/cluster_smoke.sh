#!/usr/bin/env bash
# Cluster end-to-end smoke: build bearserve + bearfront, boot three shards
# and a front, exercise the API through the front, kill one shard under
# it, and assert the replicated graph keeps answering while the outage is
# visible in the front's metrics. Exercises real processes and real
# sockets — the bits in-process tests can't.
#
# Usage: scripts/cluster_smoke.sh [base_port]   (default 18080)
set -euo pipefail

BASE=${1:-18080}
FRONT_PORT=$BASE
S1=$((BASE + 1)) S2=$((BASE + 2)) S3=$((BASE + 3))
DIR=$(mktemp -d)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do kill "$pid" 2>/dev/null || true; done
    wait 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

say()  { printf '\n== %s\n' "$*"; }
fail() { printf 'FAIL: %s\n' "$*" >&2; exit 1; }

say "building"
go build -o "$DIR/bearserve" ./cmd/bearserve
go build -o "$DIR/bearfront" ./cmd/bearfront

say "booting 3 shards + front"
for port in $S1 $S2 $S3; do
    "$DIR/bearserve" -addr "127.0.0.1:$port" >"$DIR/shard-$port.log" 2>&1 &
    PIDS+=($!)
done
"$DIR/bearfront" -addr "127.0.0.1:$FRONT_PORT" \
    -shard "a=http://127.0.0.1:$S1" \
    -shard "b=http://127.0.0.1:$S2" \
    -shard "c=http://127.0.0.1:$S3" \
    -replicas 2 \
    -probe-interval 250ms -probe-failures 2 -eject-duration 1s \
    >"$DIR/front.log" 2>&1 &
FRONT_PID=$!
PIDS+=("$FRONT_PID")

wait_200() { # url [tries]
    local url=$1 tries=${2:-50}
    for _ in $(seq "$tries"); do
        if [ "$(curl -s -o /dev/null -w '%{http_code}' "$url")" = 200 ]; then return 0; fi
        sleep 0.2
    done
    return 1
}
for port in $S1 $S2 $S3 $FRONT_PORT; do
    wait_200 "http://127.0.0.1:$port/healthz" || fail "port $port never became live"
done

FRONT="http://127.0.0.1:$FRONT_PORT"

say "uploading a replicated graph through the front"
printf '0 1\n1 2\n2 3\n3 0\n1 3\n' >"$DIR/edges.txt"
code=$(curl -s -o "$DIR/put.json" -w '%{http_code}' -X PUT --data-binary @"$DIR/edges.txt" "$FRONT/v1/graphs/smoke")
[ "$code" = 201 ] || fail "PUT via front returned $code: $(cat "$DIR/put.json")"

say "query and batch through the front"
code=$(curl -s -o "$DIR/q.json" -w '%{http_code}' "$FRONT/v1/graphs/smoke/query?seed=0&top=3")
[ "$code" = 200 ] || fail "query via front returned $code"
grep -q '"scores"\|"top"\|"node"' "$DIR/q.json" || fail "query response looks empty: $(cat "$DIR/q.json")"
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST -H 'Content-Type: application/json' \
    -d '{"seeds":[0,1],"top":3}' "$FRONT/v1/graphs/smoke/batch")
[ "$code" = 200 ] || fail "batch via front returned $code"

say "placement + cluster status"
curl -s "$FRONT/v1/cluster/status?graph=smoke" | tee "$DIR/status.json" | grep -q '"replication":2' \
    || fail "cluster status missing replication"
grep -q '"state":"healthy"' "$DIR/status.json" || fail "no healthy shards in status"

say "killing one replica of the graph"
# The first replica in the placement list; map its ID (a/b/c) to a port.
primary_id=$(sed 's/.*"replicas":\["\([^"]*\)".*/\1/' "$DIR/status.json")
case $primary_id in
    a) VICTIM_PORT=$S1 ;;
    b) VICTIM_PORT=$S2 ;;
    c) VICTIM_PORT=$S3 ;;
    *) fail "could not parse primary replica from status: $(cat "$DIR/status.json")" ;;
esac
VICTIM_PID=$(pgrep -f "bearserve -addr 127.0.0.1:$VICTIM_PORT")
kill -9 "$VICTIM_PID"
echo "killed shard $primary_id (port $VICTIM_PORT, pid $VICTIM_PID)"

say "replicated graph must keep answering (failover)"
for i in $(seq 20); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "$FRONT/v1/graphs/smoke/query?seed=$((i % 4))&top=3")
    [ "$code" = 200 ] || fail "query $i after shard kill returned $code"
done
echo "20/20 queries answered 200 with one replica dead"

say "waiting for the front to eject the dead shard"
ejected=""
for _ in $(seq 40); do
    if curl -s "$FRONT/metrics" | grep -q "bear_front_ejections_total{shard=\"$primary_id\"}"; then
        ejected=yes; break
    fi
    sleep 0.25
done
[ -n "$ejected" ] || fail "ejection never appeared in /metrics"
curl -s "$FRONT/metrics" | grep -E 'bear_front_(ejections_total|shard_healthy|failovers_total)' | sed 's/^/  /'

say "restarting the shard and repairing"
"$DIR/bearserve" -addr "127.0.0.1:$VICTIM_PORT" >"$DIR/shard-$VICTIM_PORT-restarted.log" 2>&1 &
PIDS+=($!)
wait_200 "http://127.0.0.1:$VICTIM_PORT/healthz" || fail "restarted shard never came up"
# The restarted shard is empty; repair re-pushes the graph to it.
code=$(curl -s -o "$DIR/repair.json" -w '%{http_code}' -X POST "$FRONT/v1/cluster/repair?graph=smoke")
[ "$code" = 200 ] || fail "repair returned $code: $(cat "$DIR/repair.json")"
grep -q '"ok":true' "$DIR/repair.json" || fail "repair pushed nothing: $(cat "$DIR/repair.json")"
wait_200 "http://127.0.0.1:$VICTIM_PORT/readyz" || fail "repaired shard never became ready"
code=$(curl -s -o /dev/null -w '%{http_code}' "http://127.0.0.1:$VICTIM_PORT/v1/graphs/smoke")
[ "$code" = 200 ] || fail "repaired shard does not hold the graph"

say "cluster smoke: PASS"
