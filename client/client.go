// Package client is the Go client for the bear HTTP query service
// (package bear/server): upload graphs, run RWR / PPR / PageRank queries,
// and stream edge updates without linking the solver into the caller.
//
// Idempotent requests (queries, stats, health) are retried automatically
// on transport failures and retryable statuses (429/502/503/504) with
// exponential backoff, jitter, a total wall-clock budget, and respect for
// the server's Retry-After hint in both its HTTP shapes (delta-seconds and
// HTTP-date). Mutations — edge updates, uploads, rebuilds — are never
// retried, since replaying them could apply an update twice.
//
// Against a bearfront coordinator the same API applies unchanged; use
// NewCluster to spread requests across several stateless front instances
// with client-side failover between them.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bear/internal/retry"
	"bear/server"
)

// Client talks to one bearserve instance, or to one or more bearfront
// coordinators (see NewCluster).
type Client struct {
	bases  []string
	cur    atomic.Uint32 // index into bases of the currently preferred URL
	http   *http.Client
	policy retry.Policy
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, middlewares).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// WithRetries sets how many times an idempotent request is retried after
// its first failure (default 2; 0 disables retries).
func WithRetries(n int) Option {
	return func(c *Client) { c.policy.MaxRetries = n }
}

// WithRetryBaseDelay sets the first backoff delay; each retry doubles it
// before jitter (default 100ms).
func WithRetryBaseDelay(d time.Duration) Option {
	return func(c *Client) { c.policy.BaseDelay = d }
}

// WithRetryBudget caps the total wall clock a single call spends across
// attempts and backoff sleeps (default 1 minute; 0 removes the cap). A
// retry whose backoff would land past the budget is abandoned and the last
// error returned, so a pathological Retry-After hint cannot stall callers.
func WithRetryBudget(d time.Duration) Option {
	return func(c *Client) { c.policy.Budget = d }
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	return NewCluster([]string{baseURL}, opts...)
}

// NewCluster returns a cluster-aware client: baseURLs name one or more
// bearfront coordinators (all serving the same shard set — fronts are
// stateless, so any of them can answer any request). Requests go to the
// currently preferred front; when it fails at the transport level or
// answers 502/503/504, the client rotates to the next front for the retry
// and keeps the new preference for subsequent calls, so a dead coordinator
// costs one failover rather than one per request.
func NewCluster(baseURLs []string, opts ...Option) *Client {
	bases := make([]string, 0, len(baseURLs))
	for _, u := range baseURLs {
		bases = append(bases, strings.TrimRight(u, "/"))
	}
	if len(bases) == 0 {
		bases = []string{""}
	}
	c := &Client{
		bases:  bases,
		http:   &http.Client{Timeout: 5 * time.Minute},
		policy: retry.DefaultPolicy,
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// base returns the currently preferred base URL.
func (c *Client) base() string {
	return c.bases[int(c.cur.Load())%len(c.bases)]
}

// rotateBase moves the preference to the next base URL, if there are
// several. from guards against concurrent requests rotating twice for one
// shared failure observation.
func (c *Client) rotateBase(from uint32) {
	if len(c.bases) > 1 {
		c.cur.CompareAndSwap(from, from+1)
	}
}

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int
	Message string
	// RetryAfter is the server's Retry-After hint on shed (503) responses,
	// zero when absent.
	RetryAfter time.Duration
}

// Error renders the server's message alongside the HTTP status.
func (e *APIError) Error() string {
	return fmt.Sprintf("bear service: %s (HTTP %d)", e.Message, e.Status)
}

// do sends one request, retrying idempotent ones under the retry policy's
// attempt count and wall-clock budget. body is a byte slice — not a
// reader — precisely so every retry can replay it from the start.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idempotent bool, out interface{}) error {
	attempts := 1
	if idempotent {
		attempts = c.policy.Attempts()
	}
	budget := retry.StartBudget(time.Now(), c.policy.Budget)
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			sleep := c.policy.Backoff(attempt-1, retryAfterHint(lastErr))
			if !budget.Allows(time.Now(), sleep) {
				return lastErr
			}
			if retry.Sleep(ctx, sleep) != nil {
				return lastErr
			}
		}
		from := c.cur.Load()
		err := c.doOnce(ctx, method, path, body, out)
		if err == nil {
			return nil
		}
		lastErr = err
		if !retryable(err) {
			return err
		}
		if frontFailure(err) {
			// The preferred front itself looks unhealthy; aim the retry
			// (and subsequent calls) at the next one.
			c.rotateBase(from)
		}
	}
	return lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out interface{}) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base()+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return readAPIError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func readAPIError(resp *http.Response) error {
	var apiErr struct {
		Error string `json:"error"`
	}
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
		msg = apiErr.Error
	}
	e := &APIError{Status: resp.StatusCode, Message: msg}
	if d, ok := retry.ParseRetryAfter(resp.Header.Get("Retry-After"), time.Now()); ok {
		e.RetryAfter = d
	}
	return e
}

// retryAfterHint extracts the server's Retry-After hint from the last
// error, zero when there was none.
func retryAfterHint(err error) time.Duration {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter
	}
	return 0
}

// frontFailure reports whether an error indicts the front itself (dead
// process, gateway trouble) rather than the request — the cases where a
// cluster-aware client should rotate to another coordinator. 429 and
// plain 503 shedding are load signals, not liveness ones; rotating on
// them would herd every client onto the least-loaded front at once.
func frontFailure(err error) bool {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusBadGateway, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	// Transport-level failure: no response arrived at all.
	return !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded)
}

// retryable reports whether a failed attempt is worth repeating: shed or
// gateway errors from the server, or transport failures where no response
// arrived at all. Context cancellation is the caller's decision and is
// never retried.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		switch apiErr.Status {
		case http.StatusTooManyRequests, http.StatusBadGateway,
			http.StatusServiceUnavailable, http.StatusGatewayTimeout:
			return true
		}
		return false
	}
	return true
}

// Health reports whether the service is reachable and healthy (alive; for
// a shard's query-serving readiness, see Ready).
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, true, nil)
}

// Ready reports whether the service is ready to serve queries: at least
// one graph loaded and no snapshot restore in progress. A non-ready
// server answers 503, surfaced here as an *APIError.
func (c *Client) Ready(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/readyz", nil, true, nil)
}

// UploadOptions tunes preprocessing of an uploaded graph.
type UploadOptions struct {
	// C is the restart probability; zero keeps the server default (0.05).
	C float64
	// DropTol is the BEAR-Approx drop tolerance ξ; zero means exact.
	DropTol float64
	// Laplacian selects the normalized-graph-Laplacian variant.
	Laplacian bool
}

// Upload sends a graph body (edge list or MatrixMarket) to be preprocessed
// under the given name, replacing any existing graph with that name.
func (c *Client) Upload(ctx context.Context, name string, graph io.Reader, opts UploadOptions) (server.GraphInfo, error) {
	q := url.Values{}
	if opts.C != 0 {
		q.Set("c", strconv.FormatFloat(opts.C, 'g', -1, 64))
	}
	if opts.DropTol != 0 {
		q.Set("drop", strconv.FormatFloat(opts.DropTol, 'g', -1, 64))
	}
	if opts.Laplacian {
		q.Set("laplacian", "true")
	}
	path := "/v1/graphs/" + url.PathEscape(name)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var info server.GraphInfo
	// Uploads stream the (potentially huge) graph body and preprocess on
	// the server; they are not idempotent-retried. The request is built
	// directly so the body need not be buffered.
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, c.base()+path, graph)
	if err != nil {
		return info, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return info, err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return info, readAPIError(resp)
	}
	err = json.NewDecoder(resp.Body).Decode(&info)
	return info, err
}

// List returns stats for every registered graph.
func (c *Client) List(ctx context.Context) ([]server.GraphInfo, error) {
	var out struct {
		Graphs []server.GraphInfo `json:"graphs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, true, &out)
	return out.Graphs, err
}

// Stats returns stats for one graph.
func (c *Client) Stats(ctx context.Context, name string) (server.GraphInfo, error) {
	var info server.GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graphs/"+url.PathEscape(name), nil, true, &info)
	return info, err
}

// Delete removes a graph.
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), nil, false, nil)
}

type queryResponse struct {
	Results []server.ScoredNode `json:"results"`
}

// Query returns the top-k RWR results for a single seed.
func (c *Client) Query(ctx context.Context, name string, seed, top int) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/query?seed=%d&top=%d", url.PathEscape(name), seed, top)
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, true, &out)
	return out.Results, err
}

// QueryTraced is Query plus the server's per-stage solver timing
// breakdown (?trace=1): one span per Algorithm 2 stage the request
// executed, merged and in execution order. A cache hit returns only the
// cache-lookup span. Useful for latency debugging; the untraced Query is
// the hot-path call.
func (c *Client) QueryTraced(ctx context.Context, name string, seed, top int) ([]server.ScoredNode, []server.TraceSpan, error) {
	path := fmt.Sprintf("/v1/graphs/%s/query?seed=%d&top=%d&trace=1", url.PathEscape(name), seed, top)
	var out struct {
		Results []server.ScoredNode `json:"results"`
		Trace   []server.TraceSpan  `json:"trace"`
	}
	err := c.do(ctx, http.MethodGet, path, nil, true, &out)
	return out.Results, out.Trace, err
}

// QueryRefined returns the top-k RWR results answered through the
// server's iterative-refinement path (?refine=): the solve is verified
// against the retained exact operator and corrected until the relative
// residual falls below tol, recovering exact-level accuracy from a
// drop-tolerance-degraded index. The server rejects refined queries while
// edge updates are pending (rebuild first).
func (c *Client) QueryRefined(ctx context.Context, name string, seed, top int, tol float64) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/query?seed=%d&top=%d&refine=%s",
		url.PathEscape(name), seed, top, url.QueryEscape(strconv.FormatFloat(tol, 'g', -1, 64)))
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, true, &out)
	return out.Results, err
}

// Accuracy runs the server's sampled accuracy self-check on k random
// seeds: each is queried through the plain solver, its residual is
// measured against the retained exact operator, and the scores are
// compared to a refined solve. k <= 0 keeps the server default (8).
func (c *Client) Accuracy(ctx context.Context, name string, k int) (server.AccuracyReport, error) {
	path := "/v1/graphs/" + url.PathEscape(name) + "/accuracy"
	if k > 0 {
		path += fmt.Sprintf("?k=%d", k)
	}
	var rep server.AccuracyReport
	err := c.do(ctx, http.MethodGet, path, nil, true, &rep)
	return rep, err
}

// QueryEffectiveImportance returns top-k effective-importance results.
func (c *Client) QueryEffectiveImportance(ctx context.Context, name string, seed, top int) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/query?seed=%d&top=%d&ei=1", url.PathEscape(name), seed, top)
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, true, &out)
	return out.Results, err
}

// PageRank returns the top-k global PageRank results.
func (c *Client) PageRank(ctx context.Context, name string, top int) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/pagerank?top=%d", url.PathEscape(name), top)
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, true, &out)
	return out.Results, err
}

// PPR returns top-k personalized-PageRank results for a weighted seed set.
func (c *Client) PPR(ctx context.Context, name string, seeds map[int]float64, top int) ([]server.ScoredNode, error) {
	// Mirror the server's all-zero rejection so the obviously-degenerate
	// request never goes on the wire (zero weights are legal individually,
	// but a set with no mass describes no starting distribution).
	if len(seeds) > 0 {
		allZero := true
		for _, w := range seeds {
			if w != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return nil, fmt.Errorf("client: seed weights must not all be zero")
		}
	}
	body := struct {
		Seeds map[string]float64 `json:"seeds"`
		Top   int                `json:"top"`
	}{Seeds: make(map[string]float64, len(seeds)), Top: top}
	for node, w := range seeds {
		body.Seeds[strconv.Itoa(node)] = w
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var out queryResponse
	// PPR is a read served over POST (the seed set rides in the body);
	// replaying it is safe, so it retries like the GET queries.
	err = c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/ppr", buf, true, &out)
	return out.Results, err
}

// QueryBatch returns top-k RWR results for many seeds in one request. The
// server answers cached seeds from its result cache and solves the rest
// together through its blocked multi-RHS solver; results are identical to
// issuing Query per seed, slot i corresponding to seeds[i] (duplicates
// allowed).
func (c *Client) QueryBatch(ctx context.Context, name string, seeds []int, top int) ([]server.BatchSeedResult, error) {
	body, err := json.Marshal(struct {
		Seeds []int `json:"seeds"`
		Top   int   `json:"top"`
	}{Seeds: seeds, Top: top})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.BatchSeedResult `json:"results"`
	}
	// Like PPR, a read served over POST: replaying it is safe, so it
	// retries like the GET queries.
	err = c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/batch", body, true, &out)
	return out.Results, err
}

// TopK returns the k highest-scoring nodes for seed through the server's
// hybrid top-k path. The node set is identical to Query with top=k; pruned
// reports whether local-push bounds certified the set without running the
// exact solve (in which case scores are certified estimates, not exact).
func (c *Client) TopK(ctx context.Context, name string, seed, k int) (results []server.ScoredNode, pruned bool, err error) {
	path := fmt.Sprintf("/v1/graphs/%s/topk?seed=%d&k=%d", url.PathEscape(name), seed, k)
	var out struct {
		Results []server.ScoredNode `json:"results"`
		Pruned  bool                `json:"pruned"`
	}
	err = c.do(ctx, http.MethodGet, path, nil, true, &out)
	return out.Results, out.Pruned, err
}

// Candidates returns per-seed link-prediction candidates: for each seed,
// the k highest-scoring nodes excluding the seed itself and its existing
// out-neighbors. Slot i corresponds to seeds[i].
func (c *Client) Candidates(ctx context.Context, name string, seeds []int, k int) ([]server.CandidateSeedResult, error) {
	body, err := json.Marshal(struct {
		Seeds []int `json:"seeds"`
		K     int   `json:"k"`
	}{Seeds: seeds, K: k})
	if err != nil {
		return nil, err
	}
	var out struct {
		Results []server.CandidateSeedResult `json:"results"`
	}
	// A read served over POST, like PPR and QueryBatch: safe to replay.
	err = c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/candidates", body, true, &out)
	return out.Results, err
}

// UpdateStatus reports the pending-update state after an edge operation.
type UpdateStatus struct {
	Pending int `json:"pending"`
	// Rebuilding reports that the operation tripped the server's rebuild
	// threshold and a background rebuild is folding the updates in;
	// queries keep answering from the current state meanwhile.
	Rebuilding bool `json:"rebuilding"`
}

func (c *Client) edgeOp(ctx context.Context, name string, payload interface{}) (UpdateStatus, error) {
	buf, err := json.Marshal(payload)
	if err != nil {
		return UpdateStatus{}, err
	}
	var out UpdateStatus
	err = c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/edges", buf, false, &out)
	return out, err
}

// AddEdge adds a directed edge with the given weight (0 means 1).
func (c *Client) AddEdge(ctx context.Context, name string, u, v int, w float64) (UpdateStatus, error) {
	return c.edgeOp(ctx, name, map[string]interface{}{"op": "add", "u": u, "v": v, "w": w})
}

// RemoveEdge removes a directed edge.
func (c *Client) RemoveEdge(ctx context.Context, name string, u, v int) (UpdateStatus, error) {
	return c.edgeOp(ctx, name, map[string]interface{}{"op": "remove", "u": u, "v": v})
}

// ReplaceNode replaces all out-edges of node u.
func (c *Client) ReplaceNode(ctx context.Context, name string, u int, dst []int, weights []float64) (UpdateStatus, error) {
	return c.edgeOp(ctx, name, map[string]interface{}{"op": "replace", "u": u, "dst": dst, "weights": weights})
}

// RebuildResult reports how a synchronous rebuild ran: the path the
// server chose, why auto mode fell back to a full pass (if it did), and
// how much of the block structure was re-factored.
type RebuildResult struct {
	// Mode is the path that ran ("full" or "incremental"); Requested is
	// the mode the call asked for ("auto", "full", or "incremental").
	Mode      string `json:"mode"`
	Requested string `json:"requested"`
	// FallbackReason is set when an auto-mode rebuild declined the
	// incremental path: no_pending, no_cache, drop_tol, laplacian,
	// hub_dirty, cross_block, churn, or fill_ratio.
	FallbackReason   string  `json:"fallback_reason"`
	DirtyNodes       int     `json:"dirty_nodes"`
	BlocksRefactored int     `json:"blocks_refactored"`
	TotalBlocks      int     `json:"total_blocks"`
	RebuildMs        float64 `json:"rebuild_ms"`
}

// Rebuild folds pending updates into fresh precomputed matrices in auto
// mode: incremental when the updates qualify, full otherwise.
func (c *Client) Rebuild(ctx context.Context, name string) error {
	_, err := c.RebuildMode(ctx, name, "")
	return err
}

// RebuildMode is Rebuild with an explicit mode ("auto", "full", or
// "incremental"; "" means auto) and the server's report of what ran. An
// explicit "incremental" request the pending updates disqualify fails
// with a 409 naming the reason instead of silently running a full pass.
func (c *Client) RebuildMode(ctx context.Context, name, mode string) (RebuildResult, error) {
	path := "/v1/graphs/" + url.PathEscape(name) + "/rebuild"
	if mode != "" {
		path += "?mode=" + url.QueryEscape(mode)
	}
	var out RebuildResult
	err := c.do(ctx, http.MethodPost, path, nil, false, &out)
	return out, err
}

// RebuildAsync starts a background rebuild and returns immediately;
// queries keep serving the pre-rebuild state until the swap lands. Poll
// Stats until Rebuilding turns false and Pending drains to see it finish.
func (c *Client) RebuildAsync(ctx context.Context, name string) error {
	return c.RebuildAsyncMode(ctx, name, "")
}

// RebuildAsyncMode is RebuildAsync with an explicit rebuild mode ("" means
// auto).
func (c *Client) RebuildAsyncMode(ctx context.Context, name, mode string) error {
	path := "/v1/graphs/" + url.PathEscape(name) + "/rebuild?async=1"
	if mode != "" {
		path += "&mode=" + url.QueryEscape(mode)
	}
	return c.do(ctx, http.MethodPost, path, nil, false, nil)
}

// Snapshot asks the server to persist its registry to its configured
// snapshot path (crash-safe: written to a temp file and renamed).
func (c *Client) Snapshot(ctx context.Context) error {
	return c.do(ctx, http.MethodPost, "/v1/snapshot", nil, true, nil)
}

// Metrics fetches the server's Prometheus scrape body (GET /metrics),
// for ad-hoc inspection where no scraper is running. Returns an
// *APIError with status 404 if the server runs with metrics disabled.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", readAPIError(resp)
	}
	body, err := io.ReadAll(resp.Body)
	return string(body), err
}

// ShardStatus is one shard's view in a bearfront cluster-status report.
type ShardStatus struct {
	ID          string  `json:"id"`
	URL         string  `json:"url"`
	State       string  `json:"state"` // healthy, half-open, ejected
	SuccessRate float64 `json:"success_rate"`
	LastError   string  `json:"last_error,omitempty"`
}

// ClusterStatus is the bearfront coordinator's membership and placement
// report (GET /v1/cluster/status).
type ClusterStatus struct {
	Replication int           `json:"replication"`
	Shards      []ShardStatus `json:"shards"`
	// Replicas is the placement of the graph named in the request's
	// ?graph= parameter; empty when none was asked for.
	Replicas []string `json:"replicas,omitempty"`
}

// Cluster reports shard health and, when graph is non-empty, the
// replica placement of that graph. It only works against a bearfront
// coordinator; a plain bearserve answers 404.
func (c *Client) Cluster(ctx context.Context, graph string) (ClusterStatus, error) {
	path := "/v1/cluster/status"
	if graph != "" {
		path += "?graph=" + url.QueryEscape(graph)
	}
	var st ClusterStatus
	err := c.do(ctx, http.MethodGet, path, nil, true, &st)
	return st, err
}

// RepairOutcome reports one replica's result of an anti-entropy repair.
type RepairOutcome struct {
	Shard  string `json:"shard"`
	OK     bool   `json:"ok"`
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Repair asks a bearfront coordinator to re-push graph from a healthy
// replica's exported state to lagging replicas (POST /v1/cluster/repair).
// Not retried: a half-finished repair is safe but re-running it doubles
// the copy work, so the caller decides.
func (c *Client) Repair(ctx context.Context, graph string) ([]RepairOutcome, error) {
	var out struct {
		Source   string          `json:"source"`
		Outcomes []RepairOutcome `json:"outcomes"`
	}
	err := c.do(ctx, http.MethodPost, "/v1/cluster/repair?graph="+url.QueryEscape(graph), nil, false, &out)
	return out.Outcomes, err
}
