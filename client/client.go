// Package client is the Go client for the bear HTTP query service
// (package bear/server): upload graphs, run RWR / PPR / PageRank queries,
// and stream edge updates without linking the solver into the caller.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"bear/server"
)

// Client talks to one bearserve instance.
type Client struct {
	base string
	http *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (timeouts,
// transports, middlewares).
func WithHTTPClient(h *http.Client) Option {
	return func(c *Client) { c.http = h }
}

// New returns a client for the service at baseURL (e.g.
// "http://localhost:8080").
func New(baseURL string, opts ...Option) *Client {
	c := &Client{
		base: strings.TrimRight(baseURL, "/"),
		http: &http.Client{Timeout: 5 * time.Minute},
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("bear service: %s (HTTP %d)", e.Message, e.Status)
}

func (c *Client) do(ctx context.Context, method, path string, body io.Reader, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Health reports whether the service is reachable and healthy.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// UploadOptions tunes preprocessing of an uploaded graph.
type UploadOptions struct {
	// C is the restart probability; zero keeps the server default (0.05).
	C float64
	// DropTol is the BEAR-Approx drop tolerance ξ; zero means exact.
	DropTol float64
	// Laplacian selects the normalized-graph-Laplacian variant.
	Laplacian bool
}

// Upload sends a graph body (edge list or MatrixMarket) to be preprocessed
// under the given name, replacing any existing graph with that name.
func (c *Client) Upload(ctx context.Context, name string, graph io.Reader, opts UploadOptions) (server.GraphInfo, error) {
	q := url.Values{}
	if opts.C != 0 {
		q.Set("c", strconv.FormatFloat(opts.C, 'g', -1, 64))
	}
	if opts.DropTol != 0 {
		q.Set("drop", strconv.FormatFloat(opts.DropTol, 'g', -1, 64))
	}
	if opts.Laplacian {
		q.Set("laplacian", "true")
	}
	path := "/v1/graphs/" + url.PathEscape(name)
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var info server.GraphInfo
	err := c.do(ctx, http.MethodPut, path, graph, &info)
	return info, err
}

// List returns stats for every registered graph.
func (c *Client) List(ctx context.Context) ([]server.GraphInfo, error) {
	var out struct {
		Graphs []server.GraphInfo `json:"graphs"`
	}
	err := c.do(ctx, http.MethodGet, "/v1/graphs", nil, &out)
	return out.Graphs, err
}

// Stats returns stats for one graph.
func (c *Client) Stats(ctx context.Context, name string) (server.GraphInfo, error) {
	var info server.GraphInfo
	err := c.do(ctx, http.MethodGet, "/v1/graphs/"+url.PathEscape(name), nil, &info)
	return info, err
}

// Delete removes a graph.
func (c *Client) Delete(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodDelete, "/v1/graphs/"+url.PathEscape(name), nil, nil)
}

type queryResponse struct {
	Results []server.ScoredNode `json:"results"`
}

// Query returns the top-k RWR results for a single seed.
func (c *Client) Query(ctx context.Context, name string, seed, top int) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/query?seed=%d&top=%d", url.PathEscape(name), seed, top)
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Results, err
}

// QueryEffectiveImportance returns top-k effective-importance results.
func (c *Client) QueryEffectiveImportance(ctx context.Context, name string, seed, top int) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/query?seed=%d&top=%d&ei=1", url.PathEscape(name), seed, top)
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Results, err
}

// PageRank returns the top-k global PageRank results.
func (c *Client) PageRank(ctx context.Context, name string, top int) ([]server.ScoredNode, error) {
	path := fmt.Sprintf("/v1/graphs/%s/pagerank?top=%d", url.PathEscape(name), top)
	var out queryResponse
	err := c.do(ctx, http.MethodGet, path, nil, &out)
	return out.Results, err
}

// PPR returns top-k personalized-PageRank results for a weighted seed set.
func (c *Client) PPR(ctx context.Context, name string, seeds map[int]float64, top int) ([]server.ScoredNode, error) {
	body := struct {
		Seeds map[string]float64 `json:"seeds"`
		Top   int                `json:"top"`
	}{Seeds: make(map[string]float64, len(seeds)), Top: top}
	for node, w := range seeds {
		body.Seeds[strconv.Itoa(node)] = w
	}
	buf, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	var out queryResponse
	err = c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/ppr", bytes.NewReader(buf), &out)
	return out.Results, err
}

// UpdateStatus reports the pending-update state after an edge operation.
type UpdateStatus struct {
	Pending int  `json:"pending"`
	Rebuilt bool `json:"rebuilt"`
}

func (c *Client) edgeOp(ctx context.Context, name string, payload interface{}) (UpdateStatus, error) {
	buf, err := json.Marshal(payload)
	if err != nil {
		return UpdateStatus{}, err
	}
	var out UpdateStatus
	err = c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/edges", bytes.NewReader(buf), &out)
	return out, err
}

// AddEdge adds a directed edge with the given weight (0 means 1).
func (c *Client) AddEdge(ctx context.Context, name string, u, v int, w float64) (UpdateStatus, error) {
	return c.edgeOp(ctx, name, map[string]interface{}{"op": "add", "u": u, "v": v, "w": w})
}

// RemoveEdge removes a directed edge.
func (c *Client) RemoveEdge(ctx context.Context, name string, u, v int) (UpdateStatus, error) {
	return c.edgeOp(ctx, name, map[string]interface{}{"op": "remove", "u": u, "v": v})
}

// ReplaceNode replaces all out-edges of node u.
func (c *Client) ReplaceNode(ctx context.Context, name string, u int, dst []int, weights []float64) (UpdateStatus, error) {
	return c.edgeOp(ctx, name, map[string]interface{}{"op": "replace", "u": u, "dst": dst, "weights": weights})
}

// Rebuild folds pending updates into a fresh preprocessing pass.
func (c *Client) Rebuild(ctx context.Context, name string) error {
	return c.do(ctx, http.MethodPost, "/v1/graphs/"+url.PathEscape(name)+"/rebuild", nil, nil)
}
