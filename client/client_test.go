package client

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"bear"
	"bear/server"
)

func newClient(t *testing.T) *Client {
	t.Helper()
	s := server.New()
	s.RebuildThreshold = 2
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return New(ts.URL)
}

func graphBody(t *testing.T) *bytes.Buffer {
	t.Helper()
	g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 5, Size: 10, PIntra: 0.4, Hubs: 2, HubDeg: 8, Seed: 2,
	})
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func TestClientLifecycle(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()

	if err := c.Health(ctx); err != nil {
		t.Fatalf("Health: %v", err)
	}

	info, err := c.Upload(ctx, "g", graphBody(t), UploadOptions{})
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if info.Name != "g" || info.Nodes == 0 {
		t.Fatalf("Upload info: %+v", info)
	}

	list, err := c.List(ctx)
	if err != nil || len(list) != 1 {
		t.Fatalf("List: %v %v", list, err)
	}

	stats, err := c.Stats(ctx, "g")
	if err != nil || stats.Hubs == 0 {
		t.Fatalf("Stats: %+v %v", stats, err)
	}

	results, err := c.Query(ctx, "g", 3, 5)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if len(results) != 5 || results[0].Node != 3 {
		t.Fatalf("Query results: %v", results)
	}

	ei, err := c.QueryEffectiveImportance(ctx, "g", 3, 4)
	if err != nil || len(ei) != 4 {
		t.Fatalf("EI: %v %v", ei, err)
	}

	pr, err := c.PageRank(ctx, "g", 3)
	if err != nil || len(pr) != 3 {
		t.Fatalf("PageRank: %v %v", pr, err)
	}

	ppr, err := c.PPR(ctx, "g", map[int]float64{1: 0.5, 20: 0.5}, 4)
	if err != nil || len(ppr) != 4 {
		t.Fatalf("PPR: %v %v", ppr, err)
	}

	if err := c.Delete(ctx, "g"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Stats(ctx, "g"); err == nil {
		t.Fatal("expected not-found after delete")
	}
}

func TestClientUpdates(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "g", graphBody(t), UploadOptions{}); err != nil {
		t.Fatalf("Upload: %v", err)
	}

	st, err := c.AddEdge(ctx, "g", 0, 40, 1)
	if err != nil || st.Pending != 1 {
		t.Fatalf("AddEdge: %+v %v", st, err)
	}
	st, err = c.ReplaceNode(ctx, "g", 7, []int{1, 2}, []float64{1, 1})
	if err != nil {
		t.Fatalf("ReplaceNode: %v", err)
	}
	// Hitting the threshold starts a background rebuild; pending drains
	// once the swap lands.
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := c.Stats(ctx, "g")
		if err != nil {
			t.Fatalf("Stats during rebuild: %v", err)
		}
		if stats.Pending == 0 && !stats.Rebuild {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background rebuild never drained: %+v", stats)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := c.RemoveEdge(ctx, "g", 7, 1); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	if err := c.Rebuild(ctx, "g"); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	stats, err := c.Stats(ctx, "g")
	if err != nil || stats.Pending != 0 {
		t.Fatalf("Stats after rebuild: %+v %v", stats, err)
	}

	// Mode-aware rebuilds surface the server's report: forcing full always
	// works, and the choices are echoed back.
	res, err := c.RebuildMode(ctx, "g", "full")
	if err != nil || res.Mode != "full" || res.Requested != "full" {
		t.Fatalf("RebuildMode(full): %+v %v", res, err)
	}
	// Auto with nothing pending records the no_pending fallback.
	res, err = c.RebuildMode(ctx, "g", "auto")
	if err != nil || res.Mode != "full" || res.FallbackReason != "no_pending" {
		t.Fatalf("RebuildMode(auto): %+v %v", res, err)
	}
	if _, err := c.RebuildMode(ctx, "g", "sideways"); err == nil {
		t.Fatal("RebuildMode accepted an invalid mode")
	}
}

func TestClientUploadOptions(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	info, err := c.Upload(ctx, "approx", graphBody(t), UploadOptions{C: 0.2, DropTol: 0.001})
	if err != nil {
		t.Fatalf("Upload: %v", err)
	}
	if info.RestartC != 0.2 || info.DropTol != 0.001 {
		t.Fatalf("options not applied: %+v", info)
	}
	if _, err := c.Upload(ctx, "lap", graphBody(t), UploadOptions{Laplacian: true}); err != nil {
		t.Fatalf("laplacian upload: %v", err)
	}
}

func TestClientAPIErrors(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	_, err := c.Query(ctx, "missing", 0, 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != 404 {
		t.Fatalf("expected 404 APIError, got %v", err)
	}
	if apiErr.Error() == "" {
		t.Fatal("empty error text")
	}
	if _, err := c.Upload(ctx, "bad", bytes.NewBufferString("garbage input"), UploadOptions{}); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestClientRetriesIdempotentOnly(t *testing.T) {
	var mu sync.Mutex
	gets, posts := 0, 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		if r.Method == http.MethodGet {
			gets++
			if gets < 3 {
				w.Header().Set("Retry-After", "0")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"error":"shed"}`)
				return
			}
			fmt.Fprint(w, `{"status":"ok"}`)
			return
		}
		posts++
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"shed"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithRetryBaseDelay(time.Millisecond))
	// Two sheds then success: the idempotent GET retries through them.
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health should have retried to success: %v", err)
	}
	mu.Lock()
	if gets != 3 {
		t.Fatalf("GET attempted %d times, want 3", gets)
	}
	mu.Unlock()

	// A mutating POST is never retried, and the error surfaces the
	// server's Retry-After hint.
	_, err := c.AddEdge(context.Background(), "g", 0, 1, 1)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("AddEdge error = %v, want 503 APIError", err)
	}
	if apiErr.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", apiErr.RetryAfter)
	}
	mu.Lock()
	if posts != 1 {
		t.Fatalf("POST attempted %d times, want 1 (no retry on mutations)", posts)
	}
	mu.Unlock()
}

func TestClientUnreachable(t *testing.T) {
	c := New("http://127.0.0.1:1") // nothing listens here
	if err := c.Health(context.Background()); err == nil {
		t.Fatal("expected connection error")
	}
}

func TestClientQueryBatch(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "g", graphBody(t), UploadOptions{}); err != nil {
		t.Fatalf("Upload: %v", err)
	}

	seeds := []int{0, 7, 23, 7} // duplicate allowed
	batch, err := c.QueryBatch(ctx, "g", seeds, 5)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(batch) != len(seeds) {
		t.Fatalf("QueryBatch returned %d slots for %d seeds", len(batch), len(seeds))
	}
	for i, slot := range batch {
		if slot.Seed != seeds[i] {
			t.Fatalf("slot %d seed = %d, want %d", i, slot.Seed, seeds[i])
		}
		single, err := c.Query(ctx, "g", seeds[i], 5)
		if err != nil {
			t.Fatalf("Query seed %d: %v", seeds[i], err)
		}
		if fmt.Sprint(slot.Results) != fmt.Sprint(single) {
			t.Fatalf("seed %d: batch %v differs from single %v", seeds[i], slot.Results, single)
		}
	}

	if _, err := c.QueryBatch(ctx, "g", nil, 5); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := c.QueryBatch(ctx, "g", []int{1 << 30}, 5); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
}

func TestClientRefinedQueryAndAccuracy(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "g", graphBody(t), UploadOptions{DropTol: 0.001}); err != nil {
		t.Fatalf("Upload: %v", err)
	}

	res, err := c.QueryRefined(ctx, "g", 3, 5, 1e-9)
	if err != nil {
		t.Fatalf("QueryRefined: %v", err)
	}
	if len(res) != 5 {
		t.Fatalf("QueryRefined returned %d results, want 5", len(res))
	}

	rep, err := c.Accuracy(ctx, "g", 3)
	if err != nil {
		t.Fatalf("Accuracy: %v", err)
	}
	if len(rep.Samples) != 3 {
		t.Fatalf("Accuracy returned %d samples, want 3", len(rep.Samples))
	}
	if rep.MinCosine <= 0.9 || rep.MaxResidual < 0 {
		t.Fatalf("implausible accuracy report: %+v", rep)
	}

	// A pending update turns refined queries into a clean API error.
	if _, err := c.AddEdge(ctx, "g", 0, 5, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	_, err = c.QueryRefined(ctx, "g", 3, 5, 1e-9)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("QueryRefined with pending updates: %v, want 400", err)
	}
}

func TestClientRetryAfterHTTPDate(t *testing.T) {
	var mu sync.Mutex
	gets := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		defer mu.Unlock()
		gets++
		if gets < 2 {
			// An HTTP-date Retry-After in the past: "retry immediately".
			w.Header().Set("Retry-After", time.Now().Add(-time.Minute).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"shed"}`)
			return
		}
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(2), WithRetryBaseDelay(time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health should have parsed the HTTP-date hint and retried: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if gets != 2 {
		t.Fatalf("GET attempted %d times, want 2", gets)
	}
}

func TestClientRetryBudget(t *testing.T) {
	var mu sync.Mutex
	gets := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		gets++
		mu.Unlock()
		// Each failure points far beyond the client's budget.
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"shed"}`)
	}))
	defer ts.Close()

	c := New(ts.URL, WithRetries(5), WithRetryBudget(50*time.Millisecond))
	start := time.Now()
	err := c.Health(context.Background())
	if err == nil {
		t.Fatal("expected failure once the budget was exhausted")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("budget did not cut retries short: took %v", elapsed)
	}
	mu.Lock()
	defer mu.Unlock()
	if gets != 1 {
		t.Fatalf("GET attempted %d times, want 1 (30s hint exceeds 50ms budget)", gets)
	}
}

func TestClientClusterFailover(t *testing.T) {
	// The dead front: every request is a transport error.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	deadURL := dead.URL
	dead.Close()
	var mu sync.Mutex
	hits := 0
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		hits++
		mu.Unlock()
		fmt.Fprint(w, `{"status":"ok"}`)
	}))
	defer live.Close()

	c := NewCluster([]string{deadURL, live.URL}, WithRetries(2), WithRetryBaseDelay(time.Millisecond))
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("Health should have failed over to the live front: %v", err)
	}
	// The preference sticks: the next call goes straight to the live front.
	if err := c.Health(context.Background()); err != nil {
		t.Fatalf("second Health: %v", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if hits != 2 {
		t.Fatalf("live front hit %d times, want 2", hits)
	}
}

func TestClientTopKAndCandidates(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "g", graphBody(t), UploadOptions{}); err != nil {
		t.Fatalf("Upload: %v", err)
	}

	results, _, err := c.TopK(ctx, "g", 3, 5)
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(results) != 5 {
		t.Fatalf("TopK returned %d results, want 5", len(results))
	}
	// The hybrid node set must match the exact query endpoint's ranking.
	single, err := c.Query(ctx, "g", 3, 5)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := map[int]bool{}
	for _, r := range single {
		want[r.Node] = true
	}
	for _, r := range results {
		if !want[r.Node] {
			t.Fatalf("TopK node %d not in exact top-5 %v", r.Node, single)
		}
	}

	cands, err := c.Candidates(ctx, "g", []int{3, 10}, 4)
	if err != nil {
		t.Fatalf("Candidates: %v", err)
	}
	if len(cands) != 2 {
		t.Fatalf("Candidates returned %d slots, want 2", len(cands))
	}
	for i, slot := range cands {
		if got, want := slot.Seed, []int{3, 10}[i]; got != want {
			t.Fatalf("slot %d seed %d, want %d", i, got, want)
		}
		for _, cand := range slot.Candidates {
			if cand.Node == slot.Seed {
				t.Fatalf("seed %d recommended itself", slot.Seed)
			}
		}
	}

	if _, err := c.Candidates(ctx, "g", nil, 4); err == nil {
		t.Fatal("empty candidates request accepted")
	}
	if _, _, err := c.TopK(ctx, "g", -1, 4); err == nil {
		t.Fatal("negative seed accepted")
	}
}

func TestClientPPRRejectsAllZero(t *testing.T) {
	c := newClient(t)
	ctx := context.Background()
	if _, err := c.Upload(ctx, "g", graphBody(t), UploadOptions{}); err != nil {
		t.Fatalf("Upload: %v", err)
	}
	// The client rejects the degenerate distribution locally, before any
	// request goes out — same rule the server enforces with a 400.
	if _, err := c.PPR(ctx, "g", map[int]float64{0: 0, 3: 0}, 5); err == nil {
		t.Fatal("all-zero seed weights accepted")
	} else if err.Error() != "client: seed weights must not all be zero" {
		t.Fatalf("unexpected error: %v", err)
	}
	// Mixed zero and positive weights remain valid.
	if _, err := c.PPR(ctx, "g", map[int]float64{0: 0, 3: 0.5}, 5); err != nil {
		t.Fatalf("mixed weights rejected: %v", err)
	}
}
