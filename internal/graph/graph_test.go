package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bear/internal/sparse"
)

func lineGraph(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddUndirected(i, i+1, 1)
	}
	return b.Build()
}

func randomGraph(rng *rand.Rand, n, m int) *Graph {
	b := NewBuilder(n)
	for e := 0; e < m; e++ {
		b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
	}
	return b.Build()
}

func TestBuilderMergesParallelEdges(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 2)
	b.AddEdge(0, 1, 3)
	g := b.Build()
	if g.M() != 1 {
		t.Fatalf("M = %d, want 1 merged edge", g.M())
	}
	dst, w := g.Out(0)
	if dst[0] != 1 || w[0] != 5 {
		t.Fatalf("merged edge = (%d, %g), want (1, 5)", dst[0], w[0])
	}
}

func TestBuilderPanics(t *testing.T) {
	b := NewBuilder(2)
	for _, f := range []func(){
		func() { b.AddEdge(0, 2, 1) },
		func() { b.AddEdge(-1, 0, 1) },
		func() { b.AddEdge(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestDegrees(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(3, 0, 1)
	g := b.Build()
	if g.OutDegree(0) != 2 || g.OutDegree(3) != 1 || g.OutDegree(1) != 0 {
		t.Fatal("out-degrees wrong")
	}
	in := g.InDegrees()
	if in[0] != 1 || in[1] != 1 || in[2] != 1 || in[3] != 0 {
		t.Fatalf("in-degrees %v wrong", in)
	}
	total := g.TotalDegrees()
	if total[0] != 3 {
		t.Fatalf("total degree of 0 = %d, want 3", total[0])
	}
}

func TestHasEdge(t *testing.T) {
	g := lineGraph(4)
	if !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Fatal("HasEdge wrong")
	}
}

func TestNormalizedRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	g := randomGraph(rng, 50, 300)
	a := g.Normalized()
	for u := 0; u < g.N(); u++ {
		_, vals := a.Row(u)
		var s float64
		for _, v := range vals {
			s += v
		}
		if len(vals) == 0 {
			continue // dangling row stays zero
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", u, s)
		}
	}
}

func TestNormalizedDanglingRowsStayZero(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	g := b.Build()
	a := g.Normalized()
	_, vals := a.Row(2)
	if len(vals) != 0 {
		t.Fatal("dangling row has entries")
	}
}

func TestHMatrixDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	g := randomGraph(rng, 25, 120)
	const c = 0.15
	h := g.HMatrixCSC(c, false)
	at := g.Normalized().Transpose()
	want := sparse.Add(sparse.Identity(g.N()), at.Scale(-(1 - c)))
	hd, wd := h.Dense(), want.Dense()
	for i := range hd {
		if math.Abs(hd[i]-wd[i]) > 1e-14 {
			t.Fatalf("H mismatch at flat index %d", i)
		}
	}
}

func TestHMatrixColumnDiagonallyDominant(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	g := randomGraph(rng, 40, 200)
	h := g.HMatrixCSC(0.05, false)
	for j := 0; j < g.N(); j++ {
		rows, vals := h.Col(j)
		var diag, off float64
		for k, i := range rows {
			if i == j {
				diag = math.Abs(vals[k])
			} else {
				off += math.Abs(vals[k])
			}
		}
		if diag <= off {
			t.Fatalf("column %d not strictly dominant: diag %g vs off %g", j, diag, off)
		}
	}
}

func TestHMatrixPanicsOnBadC(t *testing.T) {
	g := lineGraph(3)
	for _, c := range []float64{0, 1, -0.1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for c=%g", c)
				}
			}()
			g.HMatrixCSC(c, false)
		}()
	}
}

func TestNormalizedLaplacianSymmetric(t *testing.T) {
	// For an undirected graph the normalized Laplacian matrix is symmetric.
	rng := rand.New(rand.NewSource(93))
	b := NewBuilder(30)
	for e := 0; e < 100; e++ {
		u, v := rng.Intn(30), rng.Intn(30)
		if u != v {
			b.AddUndirected(u, v, 1)
		}
	}
	g := b.Build()
	l := g.NormalizedLaplacian()
	lt := l.Transpose()
	ld, ltd := l.Dense(), lt.Dense()
	for i := range ld {
		if math.Abs(ld[i]-ltd[i]) > 1e-12 {
			t.Fatal("normalized Laplacian not symmetric on undirected graph")
		}
	}
}

func TestPermuteRelabels(t *testing.T) {
	g := lineGraph(4)
	perm := []int{3, 2, 1, 0}
	pg := g.Permute(perm)
	if !pg.HasEdge(3, 2) || !pg.HasEdge(2, 1) || pg.HasEdge(0, 3) {
		t.Fatal("Permute relabeled edges incorrectly")
	}
	if pg.N() != g.N() || pg.M() != g.M() {
		t.Fatal("Permute changed size")
	}
}

func TestComponents(t *testing.T) {
	b := NewBuilder(7)
	b.AddUndirected(0, 1, 1)
	b.AddUndirected(1, 2, 1)
	b.AddUndirected(3, 4, 1)
	// 5, 6 isolated
	g := b.Build()
	labels, count := g.Components()
	if count != 4 {
		t.Fatalf("count = %d, want 4", count)
	}
	if labels[0] != labels[1] || labels[1] != labels[2] {
		t.Fatal("component {0,1,2} split")
	}
	if labels[3] != labels[4] {
		t.Fatal("component {3,4} split")
	}
	if labels[5] == labels[6] || labels[5] == labels[0] {
		t.Fatal("isolated nodes mislabeled")
	}
	sizes := ComponentSizes(labels, count)
	want := map[int]int{3: 1, 2: 1, 1: 2}
	got := map[int]int{}
	for _, s := range sizes {
		got[s]++
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("size histogram %v, want %v", got, want)
		}
	}
}

func TestComponentsDirectedTreatedUndirected(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1) // only a directed edge
	b.AddEdge(2, 1, 1)
	g := b.Build()
	_, count := g.Components()
	if count != 1 {
		t.Fatalf("weak components = %d, want 1", count)
	}
}

func TestUndirectedNeighbors(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1, 1)
	b.AddEdge(2, 0, 1)
	b.AddEdge(0, 0, 1) // self loop excluded
	g := b.Build()
	adj := g.UndirectedNeighbors()
	if len(adj[0]) != 2 {
		t.Fatalf("node 0 neighbors %v, want {1,2}", adj[0])
	}
	if len(adj[1]) != 1 || adj[1][0] != 0 {
		t.Fatalf("node 1 neighbors %v", adj[1])
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 0, 1)
	g := b.Build()
	st := g.ComputeStats()
	if st.N != 4 || st.M != 3 || st.MaxOutDeg != 2 || st.Dangling != 2 {
		t.Fatalf("stats %+v wrong", st)
	}
}

// Property: the iterative RWR invariant — for any graph, H's columns sum to
// at least c (mass conservation of the substochastic transition).
func TestQuickHColumnSums(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 2 + lr.Intn(25)
		g := randomGraph(rng, n, 4*n)
		const c = 0.2
		h := g.HMatrixCSC(c, false)
		for j := 0; j < n; j++ {
			_, vals := h.Col(j)
			var s float64
			for _, v := range vals {
				s += v
			}
			// Column sum is 1 − (1−c)·(out-mass of j) ≥ c.
			if s < c-1e-12 || s > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
