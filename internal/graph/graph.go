// Package graph provides the directed weighted graph substrate shared by
// every RWR method: a compact CSR adjacency representation, row
// normalization, construction of the RWR system matrix H = I − (1−c)Ãᵀ,
// connected components, permutation, and edge-list I/O.
package graph

import (
	"fmt"
	"math"
	"sort"

	"bear/internal/sparse"
)

// Graph is an immutable directed weighted graph over nodes 0..N-1 stored in
// compressed sparse row form. Build one with a Builder or a loader.
type Graph struct {
	n      int
	outPtr []int
	outDst []int
	outW   []float64
}

// Builder accumulates edges for a Graph.
type Builder struct {
	n     int
	edges []sparse.Coord
}

// NewBuilder returns a builder for a graph with n nodes.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Builder{n: n}
}

// AddEdge records a directed edge u -> v with weight w. Parallel edges are
// merged by summing weights at Build time. Self-loops are allowed.
func (b *Builder) AddEdge(u, v int, w float64) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range n=%d", u, v, b.n))
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		panic(fmt.Sprintf("graph: invalid edge weight %g", w))
	}
	b.edges = append(b.edges, sparse.Coord{Row: u, Col: v, Val: w})
}

// AddUndirected records the pair of directed edges u <-> v.
func (b *Builder) AddUndirected(u, v int, w float64) {
	b.AddEdge(u, v, w)
	if u != v {
		b.AddEdge(v, u, w)
	}
}

// Grow raises the node count to at least n.
func (b *Builder) Grow(n int) {
	if n > b.n {
		b.n = n
	}
}

// Build finalizes the accumulated edges into an immutable Graph.
func (b *Builder) Build() *Graph {
	m := sparse.NewCSR(b.n, b.n, b.edges)
	return &Graph{n: b.n, outPtr: m.RowPtr, outDst: m.ColIdx, outW: m.Val}
}

// FromCSR builds a graph directly from an adjacency matrix.
func FromCSR(a *sparse.CSR) *Graph {
	if a.R != a.C {
		panic("graph: adjacency matrix must be square")
	}
	return &Graph{n: a.R, outPtr: a.RowPtr, outDst: a.ColIdx, outW: a.Val}
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of stored directed edges.
func (g *Graph) M() int { return len(g.outDst) }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u int) int { return g.outPtr[u+1] - g.outPtr[u] }

// Out returns the destinations and weights of u's out-edges, aliasing
// internal storage; callers must not modify them.
func (g *Graph) Out(u int) (dst []int, w []float64) {
	return g.outDst[g.outPtr[u]:g.outPtr[u+1]], g.outW[g.outPtr[u]:g.outPtr[u+1]]
}

// HasEdge reports whether the directed edge u -> v exists.
func (g *Graph) HasEdge(u, v int) bool {
	dst, _ := g.Out(u)
	k := sort.SearchInts(dst, v)
	return k < len(dst) && dst[k] == v
}

// Adjacency returns the (unnormalized) weighted adjacency matrix in CSR
// form, aliasing the graph's internal storage.
func (g *Graph) Adjacency() *sparse.CSR {
	return &sparse.CSR{R: g.n, C: g.n, RowPtr: g.outPtr, ColIdx: g.outDst, Val: g.outW}
}

// InDegrees computes the in-degree of every node.
func (g *Graph) InDegrees() []int {
	in := make([]int, g.n)
	for _, v := range g.outDst {
		in[v]++
	}
	return in
}

// TotalDegrees returns out-degree + in-degree per node, the degree notion
// SlashBurn uses for hub selection on directed graphs.
func (g *Graph) TotalDegrees() []int {
	d := g.InDegrees()
	for u := 0; u < g.n; u++ {
		d[u] += g.OutDegree(u)
	}
	return d
}

// Normalized returns the row-stochastic transition matrix Ã. Rows of
// dangling nodes (zero out-degree) are left as all-zero, the convention the
// iterative method and BEAR share so that both solve the same system.
func (g *Graph) Normalized() *sparse.CSR {
	val := make([]float64, len(g.outW))
	for u := 0; u < g.n; u++ {
		var s float64
		for k := g.outPtr[u]; k < g.outPtr[u+1]; k++ {
			s += g.outW[k]
		}
		if s == 0 {
			continue
		}
		for k := g.outPtr[u]; k < g.outPtr[u+1]; k++ {
			val[k] = g.outW[k] / s
		}
	}
	return &sparse.CSR{R: g.n, C: g.n, RowPtr: g.outPtr, ColIdx: g.outDst, Val: val}
}

// NormalizedLaplacian returns D⁻¹ᐟ² A D⁻¹ᐟ², the symmetric normalization
// Tong et al. use for the "RWR with normalized graph Laplacian" variant.
// D is the diagonal of weighted out-degrees; nodes of degree zero keep zero
// rows/columns.
func (g *Graph) NormalizedLaplacian() *sparse.CSR {
	dinv := make([]float64, g.n)
	for u := 0; u < g.n; u++ {
		var s float64
		for k := g.outPtr[u]; k < g.outPtr[u+1]; k++ {
			s += g.outW[k]
		}
		if s > 0 {
			dinv[u] = 1 / math.Sqrt(s)
		}
	}
	val := make([]float64, len(g.outW))
	for u := 0; u < g.n; u++ {
		for k := g.outPtr[u]; k < g.outPtr[u+1]; k++ {
			val[k] = dinv[u] * g.outW[k] * dinv[g.outDst[k]]
		}
	}
	return &sparse.CSR{R: g.n, C: g.n, RowPtr: g.outPtr, ColIdx: g.outDst, Val: val}
}

// HMatrixCSC builds H = I − (1−c) Wᵀ in CSC form, where W is the transition
// matrix (row-normalized adjacency, or the normalized Laplacian when lap is
// true). The CSC of H shares buffers with the CSR of Hᵀ = I − (1−c) W, so no
// transpose pass is needed.
func (g *Graph) HMatrixCSC(c float64, lap bool) *sparse.CSC {
	if c <= 0 || c >= 1 {
		panic(fmt.Sprintf("graph: restart probability %g outside (0,1)", c))
	}
	var w *sparse.CSR
	if lap {
		w = g.NormalizedLaplacian()
	} else {
		w = g.Normalized()
	}
	ht := sparse.Add(sparse.Identity(g.n), w.Clone().Scale(-(1 - c)))
	return &sparse.CSC{R: g.n, C: g.n, ColPtr: ht.RowPtr, RowIdx: ht.ColIdx, Val: ht.Val}
}

// Permute relabels nodes: node u becomes perm[u] in the returned graph.
func (g *Graph) Permute(perm []int) *Graph {
	sparse.CheckPermutation(perm)
	return FromCSR(g.Adjacency().Permute(perm, perm))
}

// UndirectedNeighbors returns, for every node, the sorted distinct
// neighbors under the undirected view (out ∪ in), used by SlashBurn and
// connected components.
func (g *Graph) UndirectedNeighbors() [][]int {
	sym := sparse.Add(g.Adjacency(), g.Adjacency().Transpose())
	adj := make([][]int, g.n)
	for u := 0; u < g.n; u++ {
		cols, _ := sym.Row(u)
		row := make([]int, 0, len(cols))
		for _, v := range cols {
			if v != u {
				row = append(row, v)
			}
		}
		adj[u] = row
	}
	return adj
}

// Stats summarizes structural properties used in experiment tables.
type Stats struct {
	N, M              int
	MaxOutDeg, MaxDeg int
	Dangling          int
}

// ComputeStats derives summary statistics for the graph.
func (g *Graph) ComputeStats() Stats {
	st := Stats{N: g.n, M: g.M()}
	total := g.TotalDegrees()
	for u := 0; u < g.n; u++ {
		if d := g.OutDegree(u); d > st.MaxOutDeg {
			st.MaxOutDeg = d
		}
		if total[u] > st.MaxDeg {
			st.MaxDeg = total[u]
		}
		if g.OutDegree(u) == 0 {
			st.Dangling++
		}
	}
	return st
}
