// Package gen generates synthetic graphs. These serve as offline
// substitutes for the paper's real datasets: each generator reproduces the
// structural signature (degree skew, community structure, hub-and-spoke
// strength) that drives BEAR's performance, per Section 3.3 of the paper.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"bear/internal/graph"
)

// RMATConfig parameterizes the recursive matrix generator of Chakrabarti et
// al. The paper's Fig. 7 sweep uses PUL (probability of the upper-left
// quadrant) with the remaining probability split evenly, which is what
// NewRMATPul constructs.
type RMATConfig struct {
	N     int // number of nodes (rounded up to a power of two internally)
	M     int // number of directed edges to sample
	A     float64
	B     float64
	C     float64
	D     float64
	Noise float64 // per-level perturbation of quadrant probabilities
	Seed  int64
}

// NewRMATPul returns the R-MAT configuration the paper uses for Fig. 7:
// upper-left probability pul, the rest split evenly across the other three
// quadrants.
func NewRMATPul(n, m int, pul float64, seed int64) RMATConfig {
	rest := (1 - pul) / 3
	return RMATConfig{N: n, M: m, A: pul, B: rest, C: rest, D: rest, Seed: seed}
}

// RMAT samples an R-MAT graph. Duplicate edges are merged (weights summed)
// and self-loops kept, matching common practice. Isolated nodes may remain;
// they are retained so that n is exact.
func RMAT(cfg RMATConfig) *graph.Graph {
	if cfg.N <= 0 || cfg.M < 0 {
		panic(fmt.Sprintf("gen: bad RMAT size n=%d m=%d", cfg.N, cfg.M))
	}
	sum := cfg.A + cfg.B + cfg.C + cfg.D
	if math.Abs(sum-1) > 1e-9 {
		panic(fmt.Sprintf("gen: RMAT probabilities sum to %g, want 1", sum))
	}
	levels := 0
	for 1<<levels < cfg.N {
		levels++
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(cfg.N)
	for e := 0; e < cfg.M; e++ {
		u, v := 0, 0
		for l := 0; l < levels; l++ {
			a, bb, c := cfg.A, cfg.B, cfg.C
			if cfg.Noise > 0 {
				// Multiplicative noise keeps expected proportions.
				a *= 1 + cfg.Noise*(rng.Float64()*2-1)
				bb *= 1 + cfg.Noise*(rng.Float64()*2-1)
				c *= 1 + cfg.Noise*(rng.Float64()*2-1)
				d := cfg.D * (1 + cfg.Noise*(rng.Float64()*2-1))
				t := a + bb + c + d
				a, bb, c = a/t, bb/t, c/t
			}
			r := rng.Float64()
			switch {
			case r < a:
				// upper-left: nothing to add
			case r < a+bb:
				v |= 1 << l
			case r < a+bb+c:
				u |= 1 << l
			default:
				u |= 1 << l
				v |= 1 << l
			}
		}
		if u < cfg.N && v < cfg.N {
			b.AddEdge(u, v, 1)
		}
	}
	return b.Build()
}

// BarabasiAlbert grows a preferential-attachment graph: n nodes, each new
// node attaching k undirected edges to existing nodes with probability
// proportional to degree. This mimics the Routing (AS-level internet)
// dataset's heavy-tailed hub structure.
func BarabasiAlbert(n, k int, seed int64) *graph.Graph {
	if n <= 0 || k <= 0 {
		panic(fmt.Sprintf("gen: bad BA size n=%d k=%d", n, k))
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	// Repeated-endpoint list implements preferential attachment in O(1).
	targets := make([]int, 0, 2*n*k)
	m0 := k + 1
	if m0 > n {
		m0 = n
	}
	for u := 0; u < m0; u++ {
		for v := u + 1; v < m0; v++ {
			b.AddUndirected(u, v, 1)
			targets = append(targets, u, v)
		}
	}
	for u := m0; u < n; u++ {
		chosen := make(map[int]bool, k)
		for len(chosen) < k {
			v := targets[rng.Intn(len(targets))]
			if v != u {
				chosen[v] = true
			}
		}
		for v := range chosen {
			b.AddUndirected(u, v, 1)
			targets = append(targets, u, v)
		}
		targets = append(targets, u) // ensure every node is attachable
	}
	return b.Build()
}

// ErdosRenyi samples a G(n, m) graph with m distinct directed edges.
func ErdosRenyi(n, m int, seed int64) *graph.Graph {
	if n <= 0 || m < 0 {
		panic(fmt.Sprintf("gen: bad ER size n=%d m=%d", n, m))
	}
	if max := n * (n - 1); m > max {
		m = max
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	seen := make(map[[2]int]bool, m)
	for len(seen) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddEdge(u, v, 1)
	}
	return b.Build()
}

// CavemanHubsConfig parameterizes a community graph with global hubs: dense
// communities ("caves") plus a few high-degree nodes connected across
// communities. It mimics the Co-author dataset: strong community structure
// with a hub backbone.
type CavemanHubsConfig struct {
	Communities int     // number of caves
	Size        int     // nodes per cave
	PIntra      float64 // within-cave edge probability
	Hubs        int     // number of global hub nodes
	HubDeg      int     // edges from each hub into random caves
	Seed        int64
}

// CavemanHubs generates the community-with-hubs graph.
func CavemanHubs(cfg CavemanHubsConfig) *graph.Graph {
	if cfg.Communities <= 0 || cfg.Size <= 0 || cfg.Hubs < 0 {
		panic("gen: bad CavemanHubs configuration")
	}
	n := cfg.Communities*cfg.Size + cfg.Hubs
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	for cm := 0; cm < cfg.Communities; cm++ {
		base := cm * cfg.Size
		// A ring guarantees each cave is connected.
		for i := 0; i < cfg.Size; i++ {
			b.AddUndirected(base+i, base+(i+1)%cfg.Size, 1)
		}
		for i := 0; i < cfg.Size; i++ {
			for j := i + 2; j < cfg.Size; j++ {
				if rng.Float64() < cfg.PIntra {
					b.AddUndirected(base+i, base+j, 1)
				}
			}
		}
	}
	hubBase := cfg.Communities * cfg.Size
	for h := 0; h < cfg.Hubs; h++ {
		for e := 0; e < cfg.HubDeg; e++ {
			v := rng.Intn(hubBase)
			b.AddUndirected(hubBase+h, v, 1)
		}
	}
	return b.Build()
}

// StarMailConfig parameterizes a star-heavy graph mimicking the Email
// dataset: a small core of very high-degree nodes (mailing hubs), a large
// periphery touching only one or two core nodes, and sparse core-core
// traffic.
type StarMailConfig struct {
	Core      int     // number of hub (core) nodes
	Periphery int     // number of leaf nodes
	LeafDeg   int     // edges from each leaf to random core nodes
	PCore     float64 // core-core edge probability
	Seed      int64
}

// StarMail generates the star-heavy graph.
func StarMail(cfg StarMailConfig) *graph.Graph {
	if cfg.Core <= 0 || cfg.Periphery < 0 || cfg.LeafDeg <= 0 {
		panic("gen: bad StarMail configuration")
	}
	n := cfg.Core + cfg.Periphery
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := graph.NewBuilder(n)
	for i := 0; i < cfg.Core; i++ {
		for j := i + 1; j < cfg.Core; j++ {
			if rng.Float64() < cfg.PCore {
				b.AddUndirected(i, j, 1)
			}
		}
	}
	for l := 0; l < cfg.Periphery; l++ {
		u := cfg.Core + l
		for e := 0; e < cfg.LeafDeg; e++ {
			b.AddUndirected(u, rng.Intn(cfg.Core), 1)
		}
	}
	return b.Build()
}

// Bipartite samples a random bipartite graph with left and right node sets
// and m distinct undirected edges, used by the anomaly-detection example
// (Sun et al.'s neighborhood formation setting). Left nodes occupy ids
// [0, left) and right nodes [left, left+right).
func Bipartite(left, right, m int, seed int64) *graph.Graph {
	if left <= 0 || right <= 0 || m < 0 {
		panic(fmt.Sprintf("gen: bad bipartite size %dx%d", left, right))
	}
	if max := left * right; m > max {
		m = max
	}
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(left + right)
	seen := make(map[[2]int]bool, m)
	for len(seen) < m {
		u, v := rng.Intn(left), left+rng.Intn(right)
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		b.AddUndirected(u, v, 1)
	}
	return b.Build()
}
