package gen

import (
	"testing"

	"bear/internal/graph"
)

func TestRMATBasic(t *testing.T) {
	g := RMAT(NewRMATPul(1000, 5000, 0.7, 1))
	if g.N() != 1000 {
		t.Fatalf("n = %d", g.N())
	}
	if g.M() == 0 || g.M() > 5000 {
		t.Fatalf("m = %d out of range", g.M())
	}
}

func TestRMATDeterministic(t *testing.T) {
	a := RMAT(NewRMATPul(256, 1000, 0.6, 7))
	b := RMAT(NewRMATPul(256, 1000, 0.6, 7))
	if a.M() != b.M() {
		t.Fatal("same seed gave different graphs")
	}
	for u := 0; u < a.N(); u++ {
		da, _ := a.Out(u)
		db, _ := b.Out(u)
		if len(da) != len(db) {
			t.Fatalf("node %d differs", u)
		}
	}
}

func TestRMATPulControlsHubStructure(t *testing.T) {
	// Higher p_ul concentrates edges among low-id nodes: the top-degree
	// node holds a larger fraction of all distinct edges, and duplicate
	// sampling shrinks the distinct edge count.
	hubFraction := func(g *graph.Graph) float64 {
		mx := 0
		for _, d := range g.TotalDegrees() {
			if d > mx {
				mx = d
			}
		}
		return float64(mx) / float64(g.M())
	}
	lo := RMAT(NewRMATPul(1024, 8000, 0.5, 3))
	hi := RMAT(NewRMATPul(1024, 8000, 0.9, 3))
	if hubFraction(hi) <= hubFraction(lo) {
		t.Fatalf("p_ul=0.9 hub fraction %.4f not above p_ul=0.5 hub fraction %.4f",
			hubFraction(hi), hubFraction(lo))
	}
	if hi.M() >= lo.M() {
		t.Fatalf("p_ul=0.9 distinct edges %d not below p_ul=0.5 distinct edges %d",
			hi.M(), lo.M())
	}
}

func TestRMATPanicsOnBadProbs(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for probabilities not summing to 1")
		}
	}()
	RMAT(RMATConfig{N: 10, M: 10, A: 0.5, B: 0.5, C: 0.5, D: 0.5})
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(500, 3, 2)
	if g.N() != 500 {
		t.Fatalf("n = %d", g.N())
	}
	// Connected by construction.
	_, count := g.Components()
	if count != 1 {
		t.Fatalf("BA graph has %d components", count)
	}
	// Heavy tail: max degree far above the minimum attachment count.
	mx := 0
	for _, d := range g.TotalDegrees() {
		if d > mx {
			mx = d
		}
	}
	if mx < 20 {
		t.Fatalf("max degree %d suspiciously small for preferential attachment", mx)
	}
}

func TestErdosRenyi(t *testing.T) {
	g := ErdosRenyi(100, 400, 4)
	if g.N() != 100 || g.M() != 400 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	// No self loops, all edges distinct (guaranteed by construction).
	for u := 0; u < g.N(); u++ {
		if g.HasEdge(u, u) {
			t.Fatalf("self loop at %d", u)
		}
	}
}

func TestErdosRenyiClampsM(t *testing.T) {
	g := ErdosRenyi(3, 100, 1)
	if g.M() != 6 {
		t.Fatalf("m = %d, want clamped 6", g.M())
	}
}

func TestCavemanHubs(t *testing.T) {
	cfg := CavemanHubsConfig{Communities: 10, Size: 15, PIntra: 0.3, Hubs: 5, HubDeg: 20, Seed: 5}
	g := CavemanHubs(cfg)
	if g.N() != 10*15+5 {
		t.Fatalf("n = %d", g.N())
	}
	// Every cave is internally connected (ring backbone).
	labels, _ := g.Components()
	for cm := 0; cm < 10; cm++ {
		base := cm * 15
		for i := 1; i < 15; i++ {
			if labels[base] != labels[base+i] {
				t.Fatalf("cave %d disconnected", cm)
			}
		}
	}
}

func TestStarMail(t *testing.T) {
	cfg := StarMailConfig{Core: 10, Periphery: 200, LeafDeg: 2, PCore: 0.5, Seed: 6}
	g := StarMail(cfg)
	if g.N() != 210 {
		t.Fatalf("n = %d", g.N())
	}
	// Periphery nodes touch only core nodes.
	for u := 10; u < 210; u++ {
		dst, _ := g.Out(u)
		for _, v := range dst {
			if v >= 10 {
				t.Fatalf("leaf %d connects to leaf %d", u, v)
			}
		}
	}
}

func TestBipartite(t *testing.T) {
	g := Bipartite(20, 30, 100, 8)
	if g.N() != 50 {
		t.Fatalf("n = %d", g.N())
	}
	// No within-side edges.
	for u := 0; u < 20; u++ {
		dst, _ := g.Out(u)
		for _, v := range dst {
			if v < 20 {
				t.Fatalf("left-left edge %d-%d", u, v)
			}
		}
	}
	for u := 20; u < 50; u++ {
		dst, _ := g.Out(u)
		for _, v := range dst {
			if v >= 20 {
				t.Fatalf("right-right edge %d-%d", u, v)
			}
		}
	}
}

func TestBipartiteClampsM(t *testing.T) {
	g := Bipartite(2, 2, 100, 1)
	if g.M() != 8 { // 4 undirected edges = 8 directed
		t.Fatalf("m = %d, want 8", g.M())
	}
}

func TestRMATNoise(t *testing.T) {
	g := RMAT(RMATConfig{N: 256, M: 1500, A: 0.6, B: 0.15, C: 0.15, D: 0.1, Noise: 0.1, Seed: 11})
	if g.N() != 256 || g.M() == 0 {
		t.Fatalf("noisy RMAT n=%d m=%d", g.N(), g.M())
	}
}

func TestGeneratorPanics(t *testing.T) {
	cases := map[string]func(){
		"rmat size": func() { RMAT(RMATConfig{N: -1, M: 10, A: 1}) },
		"ba size":   func() { BarabasiAlbert(0, 2, 1) },
		"er size":   func() { ErdosRenyi(-5, 10, 1) },
		"caveman":   func() { CavemanHubs(CavemanHubsConfig{Communities: 0, Size: 5}) },
		"star":      func() { StarMail(StarMailConfig{Core: 0, Periphery: 5, LeafDeg: 1}) },
		"bipartite": func() { Bipartite(0, 5, 10, 1) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestBarabasiAlbertSmallN(t *testing.T) {
	// n smaller than the initial clique size m0 = k+1 must still work.
	g := BarabasiAlbert(2, 5, 1)
	if g.N() != 2 {
		t.Fatalf("n = %d", g.N())
	}
}
