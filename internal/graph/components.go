package graph

// Components labels the weakly connected components of the graph (treating
// every edge as undirected). It returns one label per node in [0, count)
// and the component count. Labels are assigned in order of first discovery
// by node id, so they are deterministic.
func (g *Graph) Components() (labels []int, count int) {
	adj := g.UndirectedNeighbors()
	return componentsOf(g.n, func(u int) []int { return adj[u] }, nil)
}

// componentsOf runs BFS labelling over an implicit undirected adjacency.
// If active is non-nil, only nodes with active[u] == true participate;
// inactive nodes receive label -1.
func componentsOf(n int, neighbors func(int) []int, active []bool) (labels []int, count int) {
	labels = make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	queue := make([]int, 0, 256)
	for s := 0; s < n; s++ {
		if labels[s] >= 0 || (active != nil && !active[s]) {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range neighbors(u) {
				if labels[v] >= 0 || (active != nil && !active[v]) {
					continue
				}
				labels[v] = count
				queue = append(queue, v)
			}
		}
		count++
	}
	return labels, count
}

// ComponentSizes returns the size of each component given its labels.
func ComponentSizes(labels []int, count int) []int {
	sizes := make([]int, count)
	for _, l := range labels {
		if l >= 0 {
			sizes[l]++
		}
	}
	return sizes
}
