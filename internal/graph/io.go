package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadEdgeList parses a whitespace-separated edge list: one "u v [weight]"
// per line, '#' or '%' starting a comment line. Node ids must be
// non-negative integers; the node count is max id + 1 (or the optional
// declared count, whichever is larger). Missing weights default to 1.
func LoadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	maxID := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") || strings.HasPrefix(text, "%") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need at least 2 fields, got %q", line, text)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad source %q: %v", line, fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad target %q: %v", line, fields[1], err)
		}
		if u < 0 || v < 0 {
			return nil, fmt.Errorf("graph: line %d: negative node id", line)
		}
		w := 1.0
		if len(fields) >= 3 {
			w, err = strconv.ParseFloat(fields[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight %q: %v", line, fields[2], err)
			}
			if w < 0 {
				return nil, fmt.Errorf("graph: line %d: negative weight %g", line, w)
			}
		}
		edges = append(edges, edge{u, v, w})
		if u > maxID {
			maxID = u
		}
		if v > maxID {
			maxID = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	b := NewBuilder(maxID + 1)
	for _, e := range edges {
		b.AddEdge(e.u, e.v, e.w)
	}
	return b.Build(), nil
}

// SaveEdgeList writes the graph as a "u v weight" edge list with a header
// comment, the inverse of LoadEdgeList.
func (g *Graph) SaveEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d edges=%d\n", g.n, g.M()); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		dst, wt := g.Out(u)
		for k, v := range dst {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u, v, wt[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
