package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoadEdgeList checks the edge-list parser never panics and that every
// successfully parsed graph survives a save/load roundtrip.
func FuzzLoadEdgeList(f *testing.F) {
	f.Add("0 1\n1 2 0.5\n# comment\n")
	f.Add("")
	f.Add("5 5\n")
	f.Add("0 1 1e300\n")
	f.Add("000 001\n")
	f.Add("1 2 3 4 5\n")
	f.Add("% matrix-market style comment\n0 0 0\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadEdgeList(strings.NewReader(input))
		if err != nil {
			return // rejecting bad input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := g.SaveEdgeList(&buf); err != nil {
			t.Fatalf("SaveEdgeList on loaded graph: %v", err)
		}
		g2, err := LoadEdgeList(&buf)
		if err != nil {
			t.Fatalf("reload of saved graph: %v", err)
		}
		if g2.M() != g.M() {
			t.Fatalf("roundtrip changed edge count: %d vs %d", g2.M(), g.M())
		}
	})
}
