package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLoadMatrixMarketGeneral(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real general
% a comment
3 3 3
1 2 0.5
2 3 1.5
3 1 2
`
	g, err := LoadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadMatrixMarket: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edges missing")
	}
	_, w := g.Out(0)
	if w[0] != 0.5 {
		t.Fatalf("weight %g, want 0.5", w[0])
	}
}

func TestLoadMatrixMarketSymmetric(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate real symmetric
3 3 2
2 1 1
3 3 4
`
	g, err := LoadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadMatrixMarket: %v", err)
	}
	// Off-diagonal entries are mirrored; diagonal ones are not doubled.
	if !g.HasEdge(1, 0) || !g.HasEdge(0, 1) {
		t.Fatal("symmetric edge not mirrored")
	}
	if g.M() != 3 {
		t.Fatalf("m=%d, want 3", g.M())
	}
}

func TestLoadMatrixMarketPattern(t *testing.T) {
	in := `%%MatrixMarket matrix coordinate pattern general
2 2 2
1 2
2 1
`
	g, err := LoadMatrixMarket(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadMatrixMarket: %v", err)
	}
	_, w := g.Out(0)
	if len(w) != 1 || w[0] != 1 {
		t.Fatal("pattern weights should default to 1")
	}
}

func TestLoadMatrixMarketErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"bad header":     "%%NotMM matrix coordinate real general\n1 1 0\n",
		"dense format":   "%%MatrixMarket matrix array real general\n2 2\n1\n2\n3\n4\n",
		"complex field":  "%%MatrixMarket matrix coordinate complex general\n1 1 0\n",
		"skew symmetry":  "%%MatrixMarket matrix coordinate real skew-symmetric\n1 1 0\n",
		"non-square":     "%%MatrixMarket matrix coordinate real general\n2 3 0\n",
		"bad size":       "%%MatrixMarket matrix coordinate real general\nx y z\n",
		"missing size":   "%%MatrixMarket matrix coordinate real general\n",
		"index range":    "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1\n",
		"zero index":     "%%MatrixMarket matrix coordinate real general\n2 2 1\n0 1 1\n",
		"missing value":  "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2\n",
		"negative value": "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 -1\n",
		"count mismatch": "%%MatrixMarket matrix coordinate real general\n2 2 5\n1 2 1\n",
	}
	for name, in := range cases {
		if _, err := LoadMatrixMarket(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestMatrixMarketRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	g := randomGraph(rng, 30, 150)
	var buf bytes.Buffer
	if err := g.SaveMatrixMarket(&buf); err != nil {
		t.Fatalf("SaveMatrixMarket: %v", err)
	}
	g2, err := LoadMatrixMarket(&buf)
	if err != nil {
		t.Fatalf("LoadMatrixMarket: %v", err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("roundtrip changed size: %d/%d vs %d/%d", g2.N(), g2.M(), g.N(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		d1, w1 := g.Out(u)
		d2, w2 := g2.Out(u)
		for k := range d1 {
			if d1[k] != d2[k] || w1[k] != w2[k] {
				t.Fatalf("node %d edge %d changed", u, k)
			}
		}
	}
}

// FuzzLoadMatrixMarket ensures the parser never panics.
func FuzzLoadMatrixMarket(f *testing.F) {
	f.Add("%%MatrixMarket matrix coordinate real general\n2 2 1\n1 2 0.5\n")
	f.Add("%%MatrixMarket matrix coordinate pattern symmetric\n2 2 1\n1 2\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := LoadMatrixMarket(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := g.SaveMatrixMarket(&buf); err != nil {
			t.Fatalf("save of loaded graph: %v", err)
		}
	})
}
