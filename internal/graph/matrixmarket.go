package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// LoadMatrixMarket parses a MatrixMarket coordinate file ("%%MatrixMarket
// matrix coordinate real|pattern|integer general|symmetric") into a graph,
// the format SuiteSparse and many graph repositories distribute datasets
// in. One-based indices are converted to zero-based node ids; symmetric
// files add both edge directions; pattern files default weights to 1.
func LoadMatrixMarket(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)

	if !sc.Scan() {
		return nil, fmt.Errorf("graph: empty MatrixMarket input")
	}
	header := strings.Fields(strings.ToLower(sc.Text()))
	if len(header) < 5 || header[0] != "%%matrixmarket" || header[1] != "matrix" {
		return nil, fmt.Errorf("graph: not a MatrixMarket matrix header: %q", sc.Text())
	}
	if header[2] != "coordinate" {
		return nil, fmt.Errorf("graph: only coordinate format is supported, got %q", header[2])
	}
	field := header[3]
	switch field {
	case "real", "integer", "pattern":
	default:
		return nil, fmt.Errorf("graph: unsupported field type %q", field)
	}
	symmetry := header[4]
	switch symmetry {
	case "general", "symmetric":
	default:
		return nil, fmt.Errorf("graph: unsupported symmetry %q", symmetry)
	}

	// Skip comment lines, then read the size line.
	var sizeLine string
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		sizeLine = line
		break
	}
	if sizeLine == "" {
		return nil, fmt.Errorf("graph: missing MatrixMarket size line")
	}
	sf := strings.Fields(sizeLine)
	if len(sf) != 3 {
		return nil, fmt.Errorf("graph: bad size line %q", sizeLine)
	}
	rows, err := strconv.Atoi(sf[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad row count %q: %v", sf[0], err)
	}
	cols, err := strconv.Atoi(sf[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad column count %q: %v", sf[1], err)
	}
	nnz, err := strconv.Atoi(sf[2])
	if err != nil {
		return nil, fmt.Errorf("graph: bad entry count %q: %v", sf[2], err)
	}
	if rows != cols {
		return nil, fmt.Errorf("graph: adjacency matrix must be square, got %dx%d", rows, cols)
	}
	if rows < 0 || nnz < 0 {
		return nil, fmt.Errorf("graph: negative size in %q", sizeLine)
	}

	b := NewBuilder(rows)
	read := 0
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "%") {
			continue
		}
		f := strings.Fields(text)
		wantFields := 3
		if field == "pattern" {
			wantFields = 2
		}
		if len(f) < wantFields {
			return nil, fmt.Errorf("graph: line %d: need %d fields, got %q", line, wantFields, text)
		}
		u, err := strconv.Atoi(f[0])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad row %q: %v", line, f[0], err)
		}
		v, err := strconv.Atoi(f[1])
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: bad column %q: %v", line, f[1], err)
		}
		if u < 1 || u > rows || v < 1 || v > rows {
			return nil, fmt.Errorf("graph: line %d: index (%d,%d) out of 1..%d", line, u, v, rows)
		}
		w := 1.0
		if field != "pattern" {
			w, err = strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad value %q: %v", line, f[2], err)
			}
			if w < 0 {
				return nil, fmt.Errorf("graph: line %d: negative weight %g", line, w)
			}
		}
		b.AddEdge(u-1, v-1, w)
		if symmetry == "symmetric" && u != v {
			b.AddEdge(v-1, u-1, w)
		}
		read++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading MatrixMarket input: %w", err)
	}
	if read != nnz {
		return nil, fmt.Errorf("graph: header promised %d entries, found %d", nnz, read)
	}
	return b.Build(), nil
}

// SaveMatrixMarket writes the graph as a MatrixMarket "coordinate real
// general" file with one-based indices, the inverse of LoadMatrixMarket.
func (g *Graph) SaveMatrixMarket(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%%%%MatrixMarket matrix coordinate real general\n%% written by bear\n%d %d %d\n",
		g.n, g.n, g.M()); err != nil {
		return err
	}
	for u := 0; u < g.n; u++ {
		dst, wt := g.Out(u)
		for k, v := range dst {
			if _, err := fmt.Fprintf(bw, "%d %d %g\n", u+1, v+1, wt[k]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}
