package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestLoadEdgeListBasic(t *testing.T) {
	in := `# a comment
0 1
1 2 0.5
% another comment

2 0 2.0
`
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("n=%d m=%d, want 3/3", g.N(), g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || !g.HasEdge(2, 0) {
		t.Fatal("edges missing")
	}
	_, w := g.Out(1)
	if w[0] != 0.5 {
		t.Fatalf("weight = %g, want 0.5", w[0])
	}
}

func TestLoadEdgeListErrors(t *testing.T) {
	cases := map[string]string{
		"too few fields":  "0\n",
		"bad source":      "x 1\n",
		"bad target":      "1 y\n",
		"negative id":     "-1 2\n",
		"bad weight":      "0 1 w\n",
		"negative weight": "0 1 -2\n",
	}
	for name, in := range cases {
		if _, err := LoadEdgeList(strings.NewReader(in)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadEdgeListEmpty(t *testing.T) {
	g, err := LoadEdgeList(strings.NewReader("# only comments\n"))
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g.N() != 0 || g.M() != 0 {
		t.Fatalf("empty input gave n=%d m=%d", g.N(), g.M())
	}
}

func TestSaveLoadRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	g := randomGraph(rng, 40, 200)
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		t.Fatalf("SaveEdgeList: %v", err)
	}
	g2, err := LoadEdgeList(&buf)
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if g2.M() != g.M() {
		t.Fatalf("edge count changed: %d vs %d", g2.M(), g.M())
	}
	for u := 0; u < g.N(); u++ {
		d1, w1 := g.Out(u)
		d2, w2 := g2.Out(u)
		if len(d1) != len(d2) {
			t.Fatalf("node %d degree changed", u)
		}
		for k := range d1 {
			if d1[k] != d2[k] || w1[k] != w2[k] {
				t.Fatalf("node %d edge %d changed", u, k)
			}
		}
	}
}
