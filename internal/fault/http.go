package fault

import (
	"math/rand"
	"net/http"
	"sync"
	"time"
)

// HTTP-level fault injection: an Injector wraps an http.Handler and applies
// a scripted sequence of per-request Steps — added latency (with optional
// deterministic jitter), short-circuited error statuses, or aborted
// connections (a transport-level failure, what a killed process looks like
// to the caller). Scripts make timing-sensitive behavior testable without
// sleeping on real probabilities: "slow twice, then fast" is two Steps, so
// hedging and ejection thresholds fire on exactly the request the test
// expects.

// Step describes the fault applied to one request.
type Step struct {
	// Delay is slept before the request is handled (or aborted).
	Delay time.Duration
	// Jitter adds a pseudo-random extra sleep in [0, Jitter), drawn from
	// the injector's seeded generator — deterministic for a fixed seed and
	// request order.
	Jitter time.Duration
	// Status, when nonzero, short-circuits the response with this HTTP
	// status and a small JSON error body, never reaching the wrapped
	// handler.
	Status int
	// Abort, when set, kills the connection without writing a response;
	// the client sees a transport error (EOF), as if the process died
	// mid-request.
	Abort bool
}

// Slow is shorthand for a pure-latency step.
func Slow(d time.Duration) Step { return Step{Delay: d} }

// Injector applies Steps to successive requests in script order. When the
// script runs out the zero Step (pass through untouched) applies, unless
// Repeat is set, in which case the last step repeats forever. The Down
// switch overrides everything with Abort — flipping it models killing and
// restarting the wrapped server without tearing down the listener.
//
// All methods are safe for concurrent use; concurrent requests consume
// script steps in arrival order.
type Injector struct {
	mu     sync.Mutex
	steps  []Step
	i      int
	repeat bool
	down   bool
	rng    *rand.Rand
	served int64
}

// NewInjector returns an Injector with no script (every request passes
// through). seed fixes the jitter sequence.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed))}
}

// Script replaces the step sequence and rewinds it. With repeat set the
// last step applies to every request after the script runs out; otherwise
// later requests pass through untouched.
func (in *Injector) Script(repeat bool, steps ...Step) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.steps = append([]Step(nil), steps...)
	in.i = 0
	in.repeat = repeat
}

// SetDown toggles the kill switch: while down, every request aborts its
// connection regardless of the script.
func (in *Injector) SetDown(down bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.down = down
}

// Down reports the kill switch.
func (in *Injector) Down() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.down
}

// Served reports how many requests have entered the injector.
func (in *Injector) Served() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.served
}

// next consumes the step for one arriving request.
func (in *Injector) next() Step {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.served++
	if in.down {
		return Step{Abort: true}
	}
	var st Step
	switch {
	case in.i < len(in.steps):
		st = in.steps[in.i]
		in.i++
	case in.repeat && len(in.steps) > 0:
		st = in.steps[len(in.steps)-1]
	default:
		return Step{}
	}
	if st.Jitter > 0 {
		st.Delay += time.Duration(in.rng.Int63n(int64(st.Jitter)))
		st.Jitter = 0
	}
	return st
}

// Wrap returns next behind the injector.
func (in *Injector) Wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := in.next()
		if st.Delay > 0 {
			t := time.NewTimer(st.Delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				panic(http.ErrAbortHandler)
			}
		}
		switch {
		case st.Abort:
			// net/http recognizes ErrAbortHandler and drops the connection
			// without logging a stack — the caller sees a transport error.
			panic(http.ErrAbortHandler)
		case st.Status != 0:
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(st.Status)
			_, _ = w.Write([]byte(`{"error":"fault: injected failure"}`))
		default:
			next.ServeHTTP(w, r)
		}
	})
}
