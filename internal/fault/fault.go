// Package fault provides small fault-injection wrappers used by tests to
// exercise the robustness layer: readers that fail or truncate mid-stream,
// writers that flip bytes, and a deterministic way to corrupt serialized
// artifacts. Production code never imports this package; it lives outside
// testdata so that every package's tests can share one implementation.
package fault

import (
	"errors"
	"io"
)

// ErrInjected is the default error injected by FlakyReader and FlakyWriter.
var ErrInjected = errors.New("fault: injected I/O error")

// FlakyReader reads from R and fails with Err (default ErrInjected) after
// N bytes have been delivered, simulating a connection dropped mid-body.
type FlakyReader struct {
	R    io.Reader
	N    int64 // bytes delivered before the failure
	Err  error
	read int64
}

// Read implements io.Reader, delivering at most N bytes before failing.
func (f *FlakyReader) Read(p []byte) (int, error) {
	if f.read >= f.N {
		return 0, f.err()
	}
	if max := f.N - f.read; int64(len(p)) > max {
		p = p[:max]
	}
	n, err := f.R.Read(p)
	f.read += int64(n)
	if err == io.EOF {
		// The underlying stream ended before the injection point; the
		// caller sees a clean EOF, which is the truncation scenario.
		return n, io.EOF
	}
	if err == nil && f.read >= f.N {
		err = f.err()
	}
	return n, err
}

func (f *FlakyReader) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// TruncatedReader delivers at most N bytes of R and then reports a clean
// EOF, simulating a file cut short by a crash mid-write.
func TruncatedReader(r io.Reader, n int64) io.Reader { return io.LimitReader(r, n) }

// FlakyWriter writes to W and fails with Err (default ErrInjected) after N
// bytes, simulating a disk filling up or a peer closing the connection.
type FlakyWriter struct {
	W       io.Writer
	N       int64
	Err     error
	written int64
}

// Write implements io.Writer, accepting at most N bytes before failing.
func (f *FlakyWriter) Write(p []byte) (int, error) {
	if f.written >= f.N {
		return 0, f.err()
	}
	short := false
	if max := f.N - f.written; int64(len(p)) > max {
		p, short = p[:max], true
	}
	n, err := f.W.Write(p)
	f.written += int64(n)
	if err == nil && short {
		err = f.err()
	}
	return n, err
}

func (f *FlakyWriter) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

// CorruptingWriter passes bytes through to W, XOR-ing the byte at stream
// offset Off with Mask (default 0xff), simulating a single bit-rot or
// torn-write corruption at a chosen location.
type CorruptingWriter struct {
	W    io.Writer
	Off  int64
	Mask byte
	pos  int64
}

// Write implements io.Writer, flipping the configured byte in passing.
func (c *CorruptingWriter) Write(p []byte) (int, error) {
	mask := c.Mask
	if mask == 0 {
		mask = 0xff
	}
	if c.Off >= c.pos && c.Off < c.pos+int64(len(p)) {
		q := make([]byte, len(p))
		copy(q, p)
		q[c.Off-c.pos] ^= mask
		p = q
	}
	n, err := c.W.Write(p)
	c.pos += int64(n)
	return n, err
}

// Flip returns a copy of b with the byte at offset off XOR-ed with mask
// (0 means 0xff), the in-memory counterpart of CorruptingWriter.
func Flip(b []byte, off int64, mask byte) []byte {
	if mask == 0 {
		mask = 0xff
	}
	c := append([]byte(nil), b...)
	c[off] ^= mask
	return c
}
