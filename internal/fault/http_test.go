package fault

import (
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "ok")
	})
}

func TestInjectorPassThrough(t *testing.T) {
	in := NewInjector(1)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("unscripted request: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || string(body) != "ok" {
		t.Fatalf("pass-through = %d %q", resp.StatusCode, body)
	}
	if in.Served() != 1 {
		t.Fatalf("served = %d, want 1", in.Served())
	}
}

func TestInjectorSlowThenSucceed(t *testing.T) {
	in := NewInjector(1)
	in.Script(false, Slow(80*time.Millisecond), Step{})
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()

	start := time.Now()
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("slow request: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("first request took %v, want >= 80ms of injected latency", d)
	}
	start = time.Now()
	resp, err = http.Get(ts.URL)
	if err != nil {
		t.Fatalf("fast request: %v", err)
	}
	resp.Body.Close()
	if d := time.Since(start); d > 60*time.Millisecond {
		t.Fatalf("second request took %v, want fast (script exhausted)", d)
	}
}

func TestInjectorStatusAndRepeat(t *testing.T) {
	in := NewInjector(1)
	in.Script(true, Step{Status: http.StatusServiceUnavailable})
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	for i := 0; i < 3; i++ {
		resp, err := http.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("request %d = %d, want repeated 503", i, resp.StatusCode)
		}
	}
}

func TestInjectorDownAbortsConnections(t *testing.T) {
	in := NewInjector(1)
	ts := httptest.NewServer(in.Wrap(okHandler()))
	defer ts.Close()
	in.SetDown(true)
	if _, err := http.Get(ts.URL); err == nil {
		t.Fatal("request to a down injector should fail at the transport level")
	}
	in.SetDown(false)
	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatalf("request after restart: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("after restart = %d, want 200", resp.StatusCode)
	}
}

func TestInjectorJitterDeterministic(t *testing.T) {
	draw := func() []time.Duration {
		in := NewInjector(42)
		in.Script(true, Step{Delay: time.Millisecond, Jitter: 50 * time.Millisecond})
		var out []time.Duration
		for i := 0; i < 5; i++ {
			out = append(out, in.next().Delay)
		}
		return out
	}
	a, b := draw(), draw()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter draw %d differs across same-seed injectors: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond || a[i] >= 51*time.Millisecond {
			t.Fatalf("jittered delay %v outside [1ms, 51ms)", a[i])
		}
	}
}
