package obsv

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Get-or-create: same name and labels yields the same series.
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_gauge", "a gauge", L("k", "v"))
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %g, want 1.5", got)
	}
	fc := r.CounterFunc("test_fn_total", "func counter", func() uint64 { return 42 })
	if got := fc.Value(); got != 42 {
		t.Fatalf("func counter = %d, want 42", got)
	}
	// Rebinding replaces the callback on the same series.
	r.CounterFunc("test_fn_total", "func counter", func() uint64 { return 7 })
	if got := fc.Value(); got != 7 {
		t.Fatalf("rebound func counter = %d, want 7", got)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual_total", "first as counter")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic re-registering a counter as a gauge")
		}
	}()
	r.Gauge("dual_total", "now as gauge")
}

// TestHistogramBucketBoundaries pins the le semantics: an observation
// equal to a bound lands in that bound's bucket, one just above it in the
// next, and overflow in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.100001, 1, 5, 10, 11, 1e9} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 2, 2} // ≤0.1: {0.05, 0.1}; ≤1: {0.100001, 1}; ≤10: {5, 10}; +Inf: {11, 1e9}
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count = %d, want 8", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.100001+1+5+10+11+1e9; math.Abs(got-want) > 1e-6 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_seconds", "quantile test", []float64{1, 2, 4, 8})
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 100 observations uniform over (0, 4]: 25 per bucket of {1, 2, 4}.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) * 0.04)
	}
	// p50 rank = 50 falls exactly at the top of the (1,2] bucket.
	if got := h.Quantile(0.5); math.Abs(got-2) > 1e-9 {
		t.Errorf("p50 = %g, want 2", got)
	}
	// p95 rank = 95: 50 below 2, 45th of 50 in (2,4] → 2 + 2*(45/50) = 3.8.
	if got := h.Quantile(0.95); math.Abs(got-3.8) > 1e-9 {
		t.Errorf("p95 = %g, want 3.8", got)
	}
	// Quantiles clamp to [0,1]; overflow observations clamp to the last
	// finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 8 {
		t.Errorf("p100 with overflow = %g, want clamp to 8", got)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines; run
// under -race this is the data-race gate, and the final counts must add up
// regardless.
func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", "concurrency test", []float64{0.5})
	c := r.Counter("conc_total", "concurrency counter")
	g := r.Gauge("conc_gauge", "concurrency gauge")
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%2) * 0.9) // alternates buckets
				c.Inc()
				g.Add(1)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %g, want %d", got, workers*per)
	}
	if lo, hi := h.counts[0].Load(), h.counts[1].Load(); lo != hi || lo+hi != workers*per {
		t.Errorf("bucket split = %d/%d, want %d/%d", lo, hi, workers*per/2, workers*per/2)
	}
}

func TestWritePrometheusAndLint(t *testing.T) {
	r := NewRegistry()
	r.Counter("bear_test_requests_total", "requests", L("endpoint", "query"), L("code", "200")).Add(3)
	r.Gauge("bear_test_in_flight", "in flight").Set(2)
	r.GaugeFunc("bear_test_graphs", "registered graphs", func() float64 { return 1 })
	h := r.Histogram("bear_test_seconds", "latency", []float64{0.1, 1}, L("endpoint", "query"))
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	r.Counter("bear_test_escape_total", "escaping", L("name", "a\"b\\c\nd")).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE bear_test_requests_total counter",
		`bear_test_requests_total{code="200",endpoint="query"} 3`,
		"bear_test_in_flight 2",
		"bear_test_graphs 1",
		`bear_test_seconds_bucket{endpoint="query",le="0.1"} 1`,
		`bear_test_seconds_bucket{endpoint="query",le="1"} 2`,
		`bear_test_seconds_bucket{endpoint="query",le="+Inf"} 3`,
		`bear_test_seconds_count{endpoint="query"} 3`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q\n%s", want, text)
		}
	}
	if err := LintPrometheusText(strings.NewReader(text)); err != nil {
		t.Errorf("lint of own output: %v\n%s", err, text)
	}
}

func TestDeleteLabeled(t *testing.T) {
	r := NewRegistry()
	r.Gauge("per_graph", "per graph", L("graph", "a")).Set(1)
	r.Gauge("per_graph", "per graph", L("graph", "b")).Set(2)
	r.DeleteLabeled("graph", "a")
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if strings.Contains(b.String(), `graph="a"`) {
		t.Errorf("deleted series still rendered:\n%s", b.String())
	}
	if !strings.Contains(b.String(), `graph="b"`) {
		t.Errorf("surviving series missing:\n%s", b.String())
	}
}

func TestLintRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"no TYPE":       "orphan_metric 1\n",
		"bad value":     "# TYPE m counter\nm abc\n",
		"bad type":      "# TYPE m histogramm\nm 1\n",
		"bad label":     "# TYPE m counter\nm{9bad=\"x\"} 1\n",
		"unquoted":      "# TYPE m counter\nm{a=b} 1\n",
		"malformed row": "# TYPE m counter\nm{a=\"b\"\n",
	}
	for name, text := range cases {
		if err := LintPrometheusText(strings.NewReader(text)); err == nil {
			t.Errorf("%s: lint accepted malformed input %q", name, text)
		}
	}
}
