package obsv

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"
)

// Span names recorded by the solver and serving layers. Query-phase spans
// map onto the stages of Algorithm 2 of the paper; preprocessing spans map
// onto the lines of Algorithm 1 (the split Figure 8 of the paper reports).
const (
	// Preprocessing (Algorithm 1).
	SpanOrdering      = "ordering"       // lines 2-3: hub-and-spoke reordering (the configured engine)
	SpanBlockLU       = "block_lu"       // line 5: per-block LU of H11 + factor inversion
	SpanSchurAssembly = "schur_assembly" // line 6: S = H22 − H21 U1⁻¹ L1⁻¹ H12
	SpanSchurFactor   = "schur_factor"   // line 8: LU of S + factor inversion
	SpanBlockSplice   = "splice"         // incremental rebuild: splicing fresh block factors into L1⁻¹/U1⁻¹

	// Query phase (Algorithm 2).
	SpanForwardSolve = "forward_solve" // lines 2-3: t = U1⁻¹ L1⁻¹ b1 (block-restricted for one seed)
	SpanSchurSolve   = "schur_solve"   // line 4: r2 = U2⁻¹ L2⁻¹ P (b2 − H21 t)
	SpanBackSolve    = "backsolve"     // line 5: r1 = U1⁻¹ L1⁻¹ (b1 − H12 r2), plus the inverse permutation

	// Iterative refinement (BEAR-Approx accuracy guardrail).
	SpanResidual    = "residual"     // r = c·q − H·x against the retained exact H
	SpanRefineSweep = "refine_sweep" // one Richardson correction x ← x + P·r

	// Dynamic (Woodbury) layer.
	SpanWoodburyRefresh = "woodbury_refresh" // rebuild of the capacitance matrix and H⁻¹W columns
	SpanWoodburyTerms   = "woodbury_terms"   // rank-k correction applied to one query

	// Serving layer.
	SpanCacheLookup = "cache_lookup" // result-cache probe before solving
)

// Span is one named, timed stage of a query or preprocessing pass.
type Span struct {
	Name string
	Dur  time.Duration
}

// Trace accumulates the spans of one query (or preprocessing pass) as it
// flows through the solver. A Trace is carried by context (WithTrace /
// FromContext); every recording method is safe for concurrent use (batch
// chunks may record from worker goroutines) and nil-safe — on a nil
// *Trace, Start returns an inert Stopwatch and Add is a no-op, neither
// reading the clock nor allocating, so the disabled-trace hot path stays
// allocation-free.
type Trace struct {
	mu    sync.Mutex
	spans []Span
}

// NewTrace returns an empty trace ready to record.
func NewTrace() *Trace { return &Trace{spans: make([]Span, 0, 12)} }

// Stopwatch times one span; obtain one from Trace.Start and call Stop to
// record. The zero Stopwatch (from a nil Trace) is inert.
type Stopwatch struct {
	t     *Trace
	name  string
	start time.Time
}

// Start begins timing a span. On a nil Trace it returns an inert
// Stopwatch without reading the clock.
func (t *Trace) Start(name string) Stopwatch {
	if t == nil {
		return Stopwatch{}
	}
	return Stopwatch{t: t, name: name, start: time.Now()}
}

// Stop records the span begun by Start. Stopping an inert Stopwatch is a
// no-op.
func (sw Stopwatch) Stop() {
	if sw.t == nil {
		return
	}
	sw.t.Add(sw.name, time.Since(sw.start))
}

// Add records a span with an externally measured duration. It is a no-op
// on a nil Trace.
func (t *Trace) Add(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Dur: d})
	t.mu.Unlock()
}

// Spans returns a copy of the recorded spans in recording order. Repeated
// names are preserved (a batch query records one span set per chunk).
func (t *Trace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Merged returns the spans folded by name — durations of repeated names
// summed — in first-appearance order. This is the per-stage breakdown the
// slow-query log and ?trace=1 responses render.
func (t *Trace) Merged() []Span {
	raw := t.Spans()
	if raw == nil {
		return nil
	}
	idx := make(map[string]int, len(raw))
	out := make([]Span, 0, len(raw))
	for _, s := range raw {
		if i, ok := idx[s.Name]; ok {
			out[i].Dur += s.Dur
		} else {
			idx[s.Name] = len(out)
			out = append(out, s)
		}
	}
	return out
}

// String renders the merged breakdown as "name=dur name=dur ...", the
// format the slow-query log embeds.
func (t *Trace) String() string {
	merged := t.Merged()
	if len(merged) == 0 {
		return "(no spans)"
	}
	var b strings.Builder
	for i, s := range merged {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%s", s.Name, s.Dur.Round(time.Microsecond))
	}
	return b.String()
}

// traceKey is the context key for the active Trace. An empty struct key
// makes FromContext allocation-free.
type traceKey struct{}

// WithTrace returns a context carrying t; the solver stages record into
// it. Passing a nil t returns ctx unchanged.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, traceKey{}, t)
}

// FromContext returns the Trace carried by ctx, or nil when tracing is
// disabled. The nil return value is directly usable: all Trace methods
// are nil-safe no-ops.
func FromContext(ctx context.Context) *Trace {
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
