package obsv

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilTraceIsInert: every method on a nil *Trace must be a safe no-op —
// this is the contract the disabled-trace solver hot path relies on.
func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sw := tr.Start("stage")
	sw.Stop()
	tr.Add("stage", time.Second)
	if tr.Spans() != nil || tr.Merged() != nil {
		t.Error("nil trace returned spans")
	}
	if FromContext(context.Background()) != nil {
		t.Error("background context should carry no trace")
	}
	if ctx := WithTrace(context.Background(), nil); FromContext(ctx) != nil {
		t.Error("WithTrace(nil) should not install a trace")
	}
}

func TestTraceRecordAndMerge(t *testing.T) {
	tr := NewTrace()
	ctx := WithTrace(context.Background(), tr)
	if FromContext(ctx) != tr {
		t.Fatal("FromContext did not return the installed trace")
	}
	tr.Add(SpanForwardSolve, 2*time.Millisecond)
	tr.Add(SpanSchurSolve, time.Millisecond)
	tr.Add(SpanForwardSolve, 3*time.Millisecond) // second chunk
	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d raw spans, want 3", len(spans))
	}
	merged := tr.Merged()
	if len(merged) != 2 {
		t.Fatalf("got %d merged spans, want 2", len(merged))
	}
	if merged[0].Name != SpanForwardSolve || merged[0].Dur != 5*time.Millisecond {
		t.Errorf("merged[0] = %+v, want forward_solve 5ms", merged[0])
	}
	if merged[1].Name != SpanSchurSolve || merged[1].Dur != time.Millisecond {
		t.Errorf("merged[1] = %+v, want schur_solve 1ms", merged[1])
	}
	s := tr.String()
	if !strings.Contains(s, "forward_solve=5ms") || !strings.Contains(s, "schur_solve=1ms") {
		t.Errorf("String() = %q", s)
	}
}

func TestStopwatchRecordsElapsed(t *testing.T) {
	tr := NewTrace()
	sw := tr.Start("work")
	time.Sleep(2 * time.Millisecond)
	sw.Stop()
	spans := tr.Spans()
	if len(spans) != 1 || spans[0].Name != "work" {
		t.Fatalf("spans = %+v", spans)
	}
	if spans[0].Dur < time.Millisecond {
		t.Errorf("recorded %v, want ≥ 1ms", spans[0].Dur)
	}
}

// TestTraceConcurrent records from several goroutines, as batch chunk
// workers do; run under -race this is the data-race gate.
func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace()
	var wg sync.WaitGroup
	const workers, per = 8, 200
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Add(SpanBackSolve, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := len(tr.Spans()); got != workers*per {
		t.Errorf("got %d spans, want %d", got, workers*per)
	}
	merged := tr.Merged()
	if len(merged) != 1 || merged[0].Dur != workers*per*time.Microsecond {
		t.Errorf("merged = %+v", merged)
	}
}
