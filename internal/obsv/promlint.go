package obsv

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

// The scrape-validity check: a deliberately small validator for the
// Prometheus text exposition format (version 0.0.4), used by tests to
// assert that /metrics output parses — without pulling in a Prometheus
// dependency. It checks line syntax, metric/label name charsets, value
// parseability, and that every sample belongs to a family announced by a
// preceding # TYPE line.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^{}]*)\})?\s+(\S+)(\s+-?\d+)?\s*$`)
	labelRe      = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\["\\n])*"$`)
)

// LintPrometheusText reads a text-format exposition and returns an error
// describing the first malformed line, or nil when every line parses.
func LintPrometheusText(r io.Reader) error {
	types := map[string]string{} // family name -> type
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 2 && (fields[1] == "HELP" || fields[1] == "TYPE") {
				if len(fields) < 3 || !metricNameRe.MatchString(fields[2]) {
					return fmt.Errorf("line %d: malformed %s comment: %q", lineNo, fields[1], line)
				}
				if fields[1] == "TYPE" {
					if len(fields) != 4 {
						return fmt.Errorf("line %d: TYPE wants exactly one type: %q", lineNo, line)
					}
					switch fields[3] {
					case "counter", "gauge", "histogram", "summary", "untyped":
					default:
						return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
					}
					types[fields[2]] = fields[3]
				}
			}
			continue // other comments are free-form
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return fmt.Errorf("line %d: malformed sample line: %q", lineNo, line)
		}
		name, labels, value := m[1], m[3], m[4]
		if labels != "" {
			for _, pair := range splitLabelPairs(labels) {
				if !labelRe.MatchString(pair) {
					return fmt.Errorf("line %d: malformed label pair %q", lineNo, pair)
				}
			}
		}
		switch value {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(value, 64); err != nil {
				return fmt.Errorf("line %d: unparseable value %q", lineNo, value)
			}
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name,
			"_bucket"), "_sum"), "_count")
		if _, ok := types[name]; !ok {
			if _, ok := types[base]; !ok {
				return fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, name)
			}
		}
	}
	return sc.Err()
}

// splitLabelPairs splits `a="x",b="y"` on commas outside quoted values.
func splitLabelPairs(s string) []string {
	var out []string
	depth := false // inside quotes
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}
