// Package obsv is the zero-dependency observability layer: a metrics
// registry (counters, gauges, fixed-bucket histograms) rendered in the
// Prometheus text exposition format, and a lightweight per-query trace
// that records named solver-stage timings as it is carried through the
// query path by context.Context.
//
// The design goal is transparency of the underlying matrix kernels at
// near-zero cost on the hot path: metric updates are single atomic
// operations, and the trace is nil-safe — every method on a nil *Trace is
// a no-op that performs no allocation and reads no clock, so the
// uninstrumented query path (no trace in the context) pays only a
// context lookup and a nil check per stage.
package obsv

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair attached to a metric series. Series under
// the same metric name are distinguished by their full label sets.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// Counter is a monotonically increasing integer metric. All methods are
// safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down. All methods are safe
// for concurrent use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (which may be negative) atomically.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// FuncCounter is a counter whose value is read from a callback at
// collection time — the bridge for subsystems that already maintain their
// own monotonic counters (e.g. the result cache). The callback must be
// safe for concurrent use and must never decrease.
type FuncCounter struct{ fn atomic.Pointer[func() uint64] }

// Value invokes the callback (zero before one is bound).
func (c *FuncCounter) Value() uint64 {
	if p := c.fn.Load(); p != nil {
		return (*p)()
	}
	return 0
}

// FuncGauge is a gauge whose value is read from a callback at collection
// time. The callback must be safe for concurrent use.
type FuncGauge struct {
	fn atomic.Pointer[func() float64]
}

// Value invokes the callback (zero before one is bound).
func (g *FuncGauge) Value() float64 {
	if p := g.fn.Load(); p != nil {
		return (*p)()
	}
	return 0
}

// LatencyBuckets is the default histogram bucket layout for request and
// solve latencies, in seconds: roughly logarithmic from 100µs to 10s,
// which brackets everything from a cached lookup to a cold preprocessing
// pass on the serving path.
var LatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// ResidualBuckets is the histogram bucket layout for refinement residuals
// (unitless ∞-norm defects): log-spaced from machine-precision territory
// (1e-12) up to 1, bracketing everything from a converged refined solve to
// an unrefined BEAR-Approx answer at an aggressive drop tolerance.
var ResidualBuckets = []float64{
	1e-12, 1e-11, 1e-10, 1e-9, 1e-8, 1e-7,
	1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1,
}

// Histogram counts observations into fixed buckets and tracks their sum,
// Prometheus-style (cumulative le semantics on export). Observations and
// reads are lock-free; a snapshot read concurrent with writes may be off
// by in-flight observations but is never torn per-field.
type Histogram struct {
	bounds  []float64       // ascending upper bounds; +Inf implied at the end
	counts  []atomic.Uint64 // len(bounds)+1; counts[i] = observations ≤ bounds[i]
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	if !sort.Float64sAreSorted(bounds) {
		panic("obsv: histogram bucket bounds must be ascending")
	}
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v; overflow lands in +Inf
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) from the bucket counts by
// linear interpolation inside the bucket containing the target rank — the
// same estimate Prometheus's histogram_quantile computes. Observations in
// the +Inf overflow bucket clamp to the highest finite bound. It returns
// NaN when the histogram is empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			cum += n
			continue
		}
		if float64(cum+n) >= rank {
			if i >= len(h.bounds) { // overflow bucket: clamp to last finite bound
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - float64(cum)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance under a metric family. metric is one of
// *Counter, *Gauge, *FuncCounter, *FuncGauge, or *Histogram.
type series struct {
	labels   []Label
	rendered string // `{a="b",c="d"}` or "" when unlabeled
	metric   interface{}
}

// family groups every series sharing a metric name, so HELP/TYPE headers
// are emitted once per name and kind conflicts are caught at registration.
type family struct {
	name, help string
	kind       metricKind
	order      []string // label strings in registration order
	series     map[string]*series
}

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use. Metric
// constructors are get-or-create: registering the same name and label set
// twice returns the same series, so wiring code can run idempotently.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// renderLabels produces the canonical `{k="v",...}` form, labels sorted
// by name so the same label set is the same series regardless of the
// order the call site listed it.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	if len(labels) > 1 && !sort.SliceIsSorted(labels, func(i, j int) bool { return labels[i].Name < labels[j].Name }) {
		sorted := make([]Label, len(labels))
		copy(sorted, labels)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		labels = sorted
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// getOrCreate finds or registers the series for (name, labels), creating
// the family on first use. It panics when the same name is reused with a
// different metric kind — a programming error, not a runtime condition.
func (r *Registry) getOrCreate(name, help string, kind metricKind, labels []Label, make func() interface{}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obsv: metric %q re-registered as %v (was %v)", name, kind, f.kind))
	}
	key := renderLabels(labels)
	if s, ok := f.series[key]; ok {
		return s.metric
	}
	s := &series{labels: append([]Label(nil), labels...), rendered: key, metric: make()}
	f.series[key] = s
	f.order = append(f.order, key)
	return s.metric
}

// Counter returns the counter registered under name with the given labels,
// creating it on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	return r.getOrCreate(name, help, kindCounter, labels, func() interface{} { return &Counter{} }).(*Counter)
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	return r.getOrCreate(name, help, kindGauge, labels, func() interface{} { return &Gauge{} }).(*Gauge)
}

// Histogram returns the histogram registered under name with the given
// labels, creating it on first use with the given bucket upper bounds
// (nil selects LatencyBuckets). Bounds are fixed at first registration;
// later calls for the same name ignore the argument.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	return r.getOrCreate(name, help, kindHistogram, labels, func() interface{} { return newHistogram(bounds) }).(*Histogram)
}

// CounterFunc registers a counter series whose value is fn() at collection
// time, replacing the callback if the series already exists (so a
// re-registered graph rebinds its callback to the live object).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) *FuncCounter {
	c := r.getOrCreate(name, help, kindCounter, labels, func() interface{} { return &FuncCounter{} }).(*FuncCounter)
	c.fn.Store(&fn)
	return c
}

// GaugeFunc registers a gauge series whose value is fn() at collection
// time, replacing the callback if the series already exists.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) *FuncGauge {
	g := r.getOrCreate(name, help, kindGauge, labels, func() interface{} { return &FuncGauge{} }).(*FuncGauge)
	g.fn.Store(&fn)
	return g
}

// DeleteLabeled removes every series (across all families) carrying the
// label pair name="value" — used to drop a deleted graph's per-graph
// series so they stop appearing in scrapes.
func (r *Registry) DeleteLabeled(name, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, f := range r.families {
		kept := f.order[:0]
		for _, key := range f.order {
			s := f.series[key]
			drop := false
			for _, l := range s.labels {
				if l.Name == name && l.Value == value {
					drop = true
					break
				}
			}
			if drop {
				delete(f.series, key)
			} else {
				kept = append(kept, key)
			}
		}
		f.order = kept
	}
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	var b strings.Builder
	for _, f := range r.families {
		if len(f.order) == 0 {
			continue
		}
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, key := range f.order {
			s := f.series[key]
			switch m := s.metric.(type) {
			case *Counter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.rendered, m.Value())
			case *FuncCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.rendered, m.Value())
			case *Gauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.rendered, formatFloat(m.Value()))
			case *FuncGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.rendered, formatFloat(m.Value()))
			case *Histogram:
				writeHistogram(&b, f.name, s, m)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series: cumulative _bucket lines
// with an le label appended to the series labels, then _sum and _count.
func writeHistogram(b *strings.Builder, name string, s *series, h *Histogram) {
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, withLE(s, le), cum)
	}
	fmt.Fprintf(b, "%s_sum%s %s\n", name, s.rendered, formatFloat(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, s.rendered, h.Count())
}

// withLE splices le="bound" into a series' rendered label string.
func withLE(s *series, le string) string {
	if s.rendered == "" {
		return `{le="` + le + `"}`
	}
	return s.rendered[:len(s.rendered)-1] + `,le="` + le + `"}`
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving WritePrometheus — the body of a
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}
