package rwr

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"bear/internal/graph/gen"
)

// TestIntQueueBoundedCapacity is the allocation regression test for the
// FIFO drain: the old `queue = queue[1:]` kept every drained element
// reachable, so capacity grew with total enqueues. The head-index queue
// must keep capacity within a small factor of the peak live size no matter
// how many elements stream through.
func TestIntQueueBoundedCapacity(t *testing.T) {
	var q intQueue
	const live = 8
	for i := 0; i < live; i++ {
		q.push(i)
	}
	for i := 0; i < 1_000_000; i++ {
		if _, ok := q.pop(); !ok {
			t.Fatal("queue unexpectedly empty")
		}
		q.push(i)
	}
	if q.len() != live {
		t.Fatalf("live count %d, want %d", q.len(), live)
	}
	// 1e6 elements streamed through; a leaking implementation holds
	// megabytes here. Allow generous slack over the live size for the
	// compaction hysteresis and append growth.
	if c := cap(q.buf); c > 1024 {
		t.Fatalf("queue capacity %d after 1e6 cycles with %d live elements; backing array is leaking", c, live)
	}
	// FIFO order must survive compaction.
	q.buf, q.head = q.buf[:0], 0
	for i := 0; i < 200; i++ {
		q.push(i)
		if i%2 == 1 {
			if v, _ := q.pop(); v != i/2 {
				t.Fatalf("pop returned %d, want %d", v, i/2)
			}
		}
	}
}

// TestPushQueueMemoryOnWideFrontier drives a real push whose frontier
// repeatedly re-activates nodes (a dense ring of hubs) and checks the
// queue's backing array stays bounded by the frontier, not the push count.
func TestPushQueueMemoryOnWideFrontier(t *testing.T) {
	g := gen.ErdosRenyi(400, 8000, 11)
	ps := NewPusher(g.Normalized(), 0.05)
	if err := ps.ResetSeed(0); err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Run(1e-9, 0); err != nil {
		t.Fatal(err)
	}
	if ps.Pushes() < 1000 {
		t.Skipf("only %d pushes; graph too easy to exercise the queue", ps.Pushes())
	}
	if c := cap(ps.queue.buf); c > 4*g.N() {
		t.Fatalf("queue capacity %d after %d pushes on a %d-node graph; backing array grows with push count",
			c, ps.Pushes(), g.N())
	}
}

func TestPushRejectsBadSeedMass(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 7)
	s, err := LocalPush{}.Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]float64{
		"nan":      math.NaN(),
		"neg":      -0.5,
		"posinf":   math.Inf(1),
		"neginf":   math.Inf(-1),
		"tiny-neg": -1e-300,
	} {
		q := make([]float64, g.N())
		q[3] = 1
		q[7] = bad
		if _, err := s.Query(q); err == nil {
			t.Errorf("%s: Query accepted a starting vector with entry %g", name, bad)
		} else if !strings.Contains(err.Error(), "finite and non-negative") {
			t.Errorf("%s: error %q does not name the validation rule", name, err)
		}
	}
	// Zero entries remain fine (they carry no mass).
	q := make([]float64, g.N())
	q[3] = 1
	if _, err := s.Query(q); err != nil {
		t.Fatalf("Query rejected a valid seed vector: %v", err)
	}
}

// TestPusherBoundsBracketExact checks the certified bound the hybrid
// top-k path relies on: p[v] <= exact[v] <= p[v] + R at every threshold,
// and that resuming Run with a tighter threshold only shrinks R.
func TestPusherBoundsBracketExact(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(256, 1500, 0.7, 5))
	exactS, err := Inversion{}.Preprocess(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	ps := NewPusher(g.Normalized(), 0.05)
	for trial := 0; trial < 5; trial++ {
		seed := rng.Intn(g.N())
		exact, err := SeedQuery(exactS, g.N(), seed)
		if err != nil {
			t.Fatal(err)
		}
		if err := ps.ResetSeed(seed); err != nil {
			t.Fatal(err)
		}
		prevR := math.Inf(1)
		for _, eps := range []float64{1e-3, 1e-5, 1e-7} {
			if done, err := ps.Run(eps, 0); err != nil || !done {
				t.Fatalf("Run(%g): done=%v err=%v", eps, done, err)
			}
			r := ps.ResidualMass()
			if r > prevR+1e-12 {
				t.Fatalf("residual mass grew from %g to %g at eps=%g", prevR, r, eps)
			}
			prevR = r
			p := ps.EstimatesRef()
			const fp = 1e-9 // rounding slack on the invariant
			for v := range p {
				if p[v] > exact[v]+fp {
					t.Fatalf("eps=%g: lower bound violated at %d: p=%g exact=%g", eps, v, p[v], exact[v])
				}
				if exact[v] > p[v]+r+fp {
					t.Fatalf("eps=%g: upper bound violated at %d: exact=%g p+R=%g", eps, v, exact[v], p[v]+r)
				}
			}
		}
	}
}

// TestPusherBudgetResume checks that a budget-limited Run picks up where
// it left off and converges to the same estimates as an unbudgeted run.
func TestPusherBudgetResume(t *testing.T) {
	g := gen.BarabasiAlbert(300, 3, 21)
	a := g.Normalized()

	one := NewPusher(a, 0.05)
	if err := one.ResetSeed(1); err != nil {
		t.Fatal(err)
	}
	if done, err := one.Run(1e-8, 0); err != nil || !done {
		t.Fatalf("unbudgeted run: done=%v err=%v", done, err)
	}

	stepped := NewPusher(a, 0.05)
	if err := stepped.ResetSeed(1); err != nil {
		t.Fatal(err)
	}
	rounds := 0
	for {
		done, err := stepped.Run(1e-8, 7)
		if err != nil {
			t.Fatal(err)
		}
		rounds++
		if done {
			break
		}
		if rounds > 100000 {
			t.Fatal("budgeted run failed to converge")
		}
	}
	if rounds < 2 {
		t.Fatalf("budget never bit: %d rounds for %d pushes", rounds, stepped.Pushes())
	}
	// A budget stop re-queues the popped node at the tail, so push order —
	// and hence the exact split between p and r — differs from the one-shot
	// run. Both runs still bracket the same exact score, so they can differ
	// by at most the larger residual mass.
	tol := math.Max(one.ResidualMass(), stepped.ResidualMass()) + 1e-15
	got, want := stepped.EstimatesRef(), one.EstimatesRef()
	for v := range want {
		if math.Abs(got[v]-want[v]) > tol {
			t.Fatalf("budgeted estimates diverge at %d: %g vs %g (tol %g)", v, got[v], want[v], tol)
		}
	}
}

// TestPusherReuseAcrossSeeds guards Reset hygiene: interleaving queries on
// one Pusher must match fresh engines.
func TestPusherReuseAcrossSeeds(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 6, Size: 15, PIntra: 0.3, Hubs: 3, HubDeg: 10, Seed: 13})
	a := g.Normalized()
	shared := NewPusher(a, 0.05)
	for seed := 0; seed < 10; seed++ {
		if err := shared.ResetSeed(seed); err != nil {
			t.Fatal(err)
		}
		if _, err := shared.Run(1e-6, 0); err != nil {
			t.Fatal(err)
		}
		fresh := NewPusher(a, 0.05)
		if err := fresh.ResetSeed(seed); err != nil {
			t.Fatal(err)
		}
		if _, err := fresh.Run(1e-6, 0); err != nil {
			t.Fatal(err)
		}
		sg, fg := shared.EstimatesRef(), fresh.EstimatesRef()
		for v := range fg {
			if sg[v] != fg[v] {
				t.Fatalf("seed %d: reused pusher diverges at node %d: %g vs %g", seed, v, sg[v], fg[v])
			}
		}
		if sr, fr := shared.ResidualMass(), fresh.ResidualMass(); sr != fr {
			t.Fatalf("seed %d: residual mass %g vs %g", seed, sr, fr)
		}
	}
}
