package rwr

import (
	"errors"
	"fmt"
	"sort"

	"bear/internal/graph"
	"bear/internal/sparse"
)

// LUDecomp is the LU-decomposition baseline of Fujiwara et al. (VLDB
// 2012): reorder nodes to limit fill-in, sparse-LU-factorize the whole H,
// and precompute L⁻¹ and U⁻¹ so queries are two sparse matrix-vector
// products, r = c U⁻¹(L⁻¹ q).
//
// Fujiwara's ordering combines node degree and community structure; this
// implementation orders by connected component and then ascending total
// degree, which captures the part of the heuristic that drives sparsity of
// the inverted factors (Observation 1 of the BEAR paper).
type LUDecomp struct {
	// NaturalOrder skips the degree reordering and factors H in original
	// node order. Exposed for the ablation experiment quantifying
	// Observation 1.
	NaturalOrder bool
}

// Name implements Method naming for the harness.
func (m LUDecomp) Name() string {
	if m.NaturalOrder {
		return "lu-natural"
	}
	return "lu"
}

// Preprocess factorizes the reordered H and inverts its triangular factors.
func (m LUDecomp) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	var perm []int
	if m.NaturalOrder {
		perm = make([]int, n)
		for i := range perm {
			perm[i] = i
		}
	} else {
		perm = degreeComponentOrder(g)
	}
	h := g.HMatrixCSC(opts.C, false).Permute(perm, perm)
	f, err := sparse.LU(h)
	if err != nil {
		return nil, fmt.Errorf("rwr: LU of H: %w", err)
	}
	// Bound the fill-in of the inverted factors by the memory budget (16
	// bytes per stored entry, matching CSR accounting).
	var maxNNZ int64
	if opts.MemBudget > 0 {
		maxNNZ = opts.MemBudget / (2 * 16)
	}
	linv, err := sparse.InverseLowerBudget(f.L, true, maxNNZ)
	if err != nil {
		return nil, wrapBudget(err)
	}
	uinv, err := sparse.InverseUpperBudget(f.U, maxNNZ)
	if err != nil {
		return nil, wrapBudget(err)
	}
	return &luSolver{
		linv: linv.ToCSR(),
		uinv: uinv.ToCSR(),
		perm: perm,
		c:    opts.C,
		n:    n,
	}, nil
}

func wrapBudget(err error) error {
	if errors.Is(err, sparse.ErrBudget) {
		return fmt.Errorf("%w: triangular inverse fill-in over budget", ErrOutOfMemory)
	}
	return err
}

// degreeComponentOrder returns perm[old] = new ordering nodes by connected
// component, then ascending total degree within the component.
func degreeComponentOrder(g *graph.Graph) []int {
	labels, _ := g.Components()
	deg := g.TotalDegrees()
	idx := make([]int, g.N())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if labels[ia] != labels[ib] {
			return labels[ia] < labels[ib]
		}
		if deg[ia] != deg[ib] {
			return deg[ia] < deg[ib]
		}
		return ia < ib
	})
	perm := make([]int, g.N())
	for pos, node := range idx {
		perm[node] = pos
	}
	return perm
}

type luSolver struct {
	linv, uinv *sparse.CSR
	perm       []int // old -> new
	c          float64
	n          int
}

func (s *luSolver) Query(q []float64) ([]float64, error) {
	if len(q) != s.n {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), s.n)
	}
	qp := make([]float64, s.n)
	for node, v := range q {
		qp[s.perm[node]] = s.c * v
	}
	t := s.linv.MulVec(qp)
	t = s.uinv.MulVec(t)
	r := make([]float64, s.n)
	for node := range r {
		r[node] = t[s.perm[node]]
	}
	return r, nil
}

func (s *luSolver) NNZ() int64 { return int64(s.linv.NNZ() + s.uinv.NNZ()) }

func (s *luSolver) Bytes() int64 { return s.linv.Bytes() + s.uinv.Bytes() + int64(len(s.perm))*8 }
