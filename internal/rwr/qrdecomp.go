package rwr

import (
	"fmt"

	"bear/internal/dense"
	"bear/internal/graph"
	"bear/internal/sparse"
)

// QRDecomp is the QR-decomposition baseline of Fujiwara et al. (KDD 2012):
// H = QR, and queries are answered as r = c R⁻¹ (Qᵀ q). As the BEAR paper
// observes (after Boyd & Vandenberghe), sparsity is hard to exploit in QR,
// so Qᵀ and R⁻¹ are effectively dense and the method fails on all but small
// graphs — which the memory budget reproduces. Both matrices are stored
// sparse so the harness reports their true nonzero counts (Figure 2).
type QRDecomp struct{}

// Name implements Method naming for the harness.
func (QRDecomp) Name() string { return "qr" }

// Preprocess computes Qᵀ and R⁻¹ of H.
func (QRDecomp) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	estimate := int64(n) * int64(n) * 8 * 3 // Qᵀ + R⁻¹ + factorization scratch
	if overBudget(opts, estimate) {
		return nil, fmt.Errorf("%w: QR needs ~%d bytes for n=%d", ErrOutOfMemory, estimate, n)
	}
	h := g.HMatrixCSC(opts.C, false)
	f := dense.QR(dense.NewFrom(n, n, h.Dense()))
	rinv, err := dense.InverseUpper(f.R())
	if err != nil {
		return nil, fmt.Errorf("rwr: inverting R: %w", err)
	}
	qt := f.Q().Transpose()
	const tiny = 1e-14 // suppress exact-arithmetic zeros smeared by reflectors
	return &qrSolver{
		qt:   sparse.FromDense(n, n, qt.Data).Drop(tiny),
		rinv: sparse.FromDense(n, n, rinv.Data).Drop(tiny),
		c:    opts.C,
	}, nil
}

type qrSolver struct {
	qt, rinv *sparse.CSR
	c        float64
}

func (s *qrSolver) Query(q []float64) ([]float64, error) {
	if len(q) != s.qt.R {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), s.qt.R)
	}
	t := s.qt.MulVec(q)
	r := s.rinv.MulVec(t)
	for i := range r {
		r[i] *= s.c
	}
	return r, nil
}

func (s *qrSolver) NNZ() int64 { return int64(s.qt.NNZ() + s.rinv.NNZ()) }

func (s *qrSolver) Bytes() int64 { return s.qt.Bytes() + s.rinv.Bytes() }
