package rwr

import (
	"fmt"
	"math"

	"bear/internal/graph"
	"bear/internal/sparse"
)

// Iterative is the power-iteration baseline: it repeats
// r ← (1−c) Ãᵀ r + c q until the L1 change drops below Eps (Equation 3 of
// the paper). It needs no preprocessing beyond holding the transition
// matrix.
type Iterative struct {
	// Laplacian switches to the normalized-graph-Laplacian transition
	// matrix, matching the corresponding BEAR variant.
	Laplacian bool
}

// Name implements Method naming for the harness.
func (Iterative) Name() string { return "iterative" }

// Preprocess builds the transposed transition matrix.
func (m Iterative) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	var w *sparse.CSR
	if m.Laplacian {
		w = g.NormalizedLaplacian()
	} else {
		w = g.Normalized()
	}
	return &iterativeSolver{at: w.Transpose(), opts: opts}, nil
}

type iterativeSolver struct {
	at   *sparse.CSR // Ãᵀ
	opts Options
}

func (s *iterativeSolver) Query(q []float64) ([]float64, error) {
	n := s.at.R
	if len(q) != n {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), n)
	}
	c := s.opts.C
	r := make([]float64, n)
	copy(r, q)
	next := make([]float64, n)
	for it := 0; it < s.opts.MaxIters; it++ {
		s.at.MulVecTo(next, r)
		var diff float64
		for i := range next {
			next[i] = (1-c)*next[i] + c*q[i]
			diff += math.Abs(next[i] - r[i])
		}
		r, next = next, r
		if diff < s.opts.Eps {
			return append([]float64(nil), r...), nil
		}
	}
	return nil, fmt.Errorf("rwr: iterative method did not converge in %d iterations", s.opts.MaxIters)
}

// NNZ counts the transition-matrix entries; the paper treats the iterative
// method as requiring no precomputed data, so harnesses typically exclude
// it from space comparisons.
func (s *iterativeSolver) NNZ() int64 { return int64(s.at.NNZ()) }

func (s *iterativeSolver) Bytes() int64 { return s.at.Bytes() }

// ExactSolver answers RWR queries by direct sparse LU of H; it is the
// reference oracle tests and the harness compare every method against. Not
// a paper method.
type ExactSolver struct {
	f *sparse.LUFactors
	c float64
	n int
}

// NewExactSolver factors H once for repeated exact solves.
func NewExactSolver(g *graph.Graph, c float64) (*ExactSolver, error) {
	f, err := sparse.LU(g.HMatrixCSC(c, false))
	if err != nil {
		return nil, err
	}
	return &ExactSolver{f: f, c: c, n: g.N()}, nil
}

// Solve returns the exact RWR vector for starting distribution q.
func (s *ExactSolver) Solve(q []float64) ([]float64, error) {
	if len(q) != s.n {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), s.n)
	}
	r := make([]float64, len(q))
	for i, v := range q {
		r[i] = s.c * v
	}
	if err := s.f.Solve(r); err != nil {
		return nil, err
	}
	return r, nil
}

// Exact solves the system directly with a one-shot sparse LU of H.
func Exact(g *graph.Graph, c float64, q []float64) ([]float64, error) {
	s, err := NewExactSolver(g, c)
	if err != nil {
		return nil, err
	}
	return s.Solve(q)
}
