package rwr

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bear/internal/graph"
	"bear/internal/graph/gen"
)

// exactRef computes the ground-truth RWR vector for a single seed.
func exactRef(t *testing.T, g *graph.Graph, c float64, seed int) []float64 {
	t.Helper()
	q := make([]float64, g.N())
	q[seed] = 1
	r, err := Exact(g, c, q)
	if err != nil {
		t.Fatalf("exact solve: %v", err)
	}
	return r
}

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func maxAbsDiff(a, b []float64) float64 {
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func testGraph() *graph.Graph {
	return gen.RMAT(gen.NewRMATPul(300, 1800, 0.7, 100))
}

func querySeed(t *testing.T, s Solver, n, seed int) []float64 {
	t.Helper()
	r, err := SeedQuery(s, n, seed)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	return r
}

func TestIterativeMatchesExact(t *testing.T) {
	g := testGraph()
	s, err := Iterative{}.Preprocess(g, Options{Eps: 1e-12})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	for _, seed := range []int{0, 7, 150, 299} {
		got := querySeed(t, s, g.N(), seed)
		want := exactRef(t, g, 0.05, seed)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("seed %d: diff %g", seed, d)
		}
	}
}

func TestIterativeDivergenceGuard(t *testing.T) {
	g := testGraph()
	s, err := Iterative{}.Preprocess(g, Options{Eps: 1e-12, MaxIters: 2})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	if _, err := SeedQuery(s, g.N(), 0); err == nil {
		t.Fatal("expected non-convergence error with MaxIters=2")
	}
}

func TestInversionMatchesExact(t *testing.T) {
	g := gen.ErdosRenyi(120, 600, 101)
	s, err := Inversion{}.Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	for _, seed := range []int{0, 60, 119} {
		got := querySeed(t, s, g.N(), seed)
		want := exactRef(t, g, 0.05, seed)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("seed %d: diff %g", seed, d)
		}
	}
}

func TestInversionRespectsBudget(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 102)
	_, err := Inversion{}.Preprocess(g, Options{MemBudget: 1000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestLUDecompMatchesExact(t *testing.T) {
	g := testGraph()
	s, err := LUDecomp{}.Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	for _, seed := range []int{3, 100, 250} {
		got := querySeed(t, s, g.N(), seed)
		want := exactRef(t, g, 0.05, seed)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("seed %d: diff %g", seed, d)
		}
	}
}

func TestLUDecompRespectsBudget(t *testing.T) {
	g := gen.ErdosRenyi(400, 4000, 103) // dense-ish inverse factors
	_, err := LUDecomp{}.Preprocess(g, Options{MemBudget: 4000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestQRDecompMatchesExact(t *testing.T) {
	g := gen.ErdosRenyi(100, 500, 104)
	s, err := QRDecomp{}.Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	for _, seed := range []int{0, 50, 99} {
		got := querySeed(t, s, g.N(), seed)
		want := exactRef(t, g, 0.05, seed)
		if d := maxAbsDiff(got, want); d > 1e-8 {
			t.Fatalf("seed %d: diff %g", seed, d)
		}
	}
}

func TestQRDecompRespectsBudget(t *testing.T) {
	g := gen.ErdosRenyi(200, 800, 105)
	_, err := QRDecomp{}.Preprocess(g, Options{MemBudget: 1000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestRPPRApproximatesExact(t *testing.T) {
	g := testGraph()
	s, err := RPPR{}.Preprocess(g, Options{EpsB: 1e-6, Eps: 1e-10})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	got := querySeed(t, s, g.N(), 10)
	want := exactRef(t, g, 0.05, 10)
	if cos := cosine(got, want); cos < 0.99 {
		t.Fatalf("RPPR cosine %g too low at tight ε_b", cos)
	}
}

func TestRPPRThresholdTradesAccuracy(t *testing.T) {
	g := testGraph()
	want := exactRef(t, g, 0.05, 10)
	cosAt := func(epsb float64) float64 {
		s, err := RPPR{}.Preprocess(g, Options{EpsB: epsb, Eps: 1e-10})
		if err != nil {
			t.Fatalf("preprocess: %v", err)
		}
		return cosine(querySeed(t, s, g.N(), 10), want)
	}
	tight, loose := cosAt(1e-6), cosAt(0.5)
	if tight < loose {
		t.Fatalf("tight ε_b cosine %g below loose %g", tight, loose)
	}
}

func TestBRPPRApproximatesExact(t *testing.T) {
	g := testGraph()
	s, err := BRPPR{}.Preprocess(g, Options{EpsB: 1e-5, Eps: 1e-10})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	got := querySeed(t, s, g.N(), 10)
	want := exactRef(t, g, 0.05, 10)
	if cos := cosine(got, want); cos < 0.99 {
		t.Fatalf("BRPPR cosine %g too low at tight ε_b", cos)
	}
}

func TestBLinApproximates(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 15, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 20, Seed: 106})
	s, err := BLin{}.Preprocess(g, Options{Partitions: 15, Rank: 40})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	want := exactRef(t, g, 0.05, 8)
	got := querySeed(t, s, g.N(), 8)
	if cos := cosine(got, want); cos < 0.80 {
		t.Fatalf("B_LIN cosine %g too low", cos)
	}
}

func TestBLinExactWhenNoCrossEdges(t *testing.T) {
	// With one partition per component and no cross-partition edges, B_LIN
	// is exact: M captures everything and A₂ is empty.
	b := graph.NewBuilder(30)
	for isle := 0; isle < 3; isle++ {
		base := isle * 10
		for i := 0; i < 9; i++ {
			b.AddUndirected(base+i, base+i+1, 1)
		}
	}
	g := b.Build()
	s, err := BLin{}.Preprocess(g, Options{Partitions: 3, Rank: 3})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	want := exactRef(t, g, 0.05, 4)
	got := querySeed(t, s, g.N(), 4)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("B_LIN not exact without cross edges: diff %g", d)
	}
}

func TestNBLinApproximates(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 15, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 20, Seed: 107})
	s, err := NBLin{}.Preprocess(g, Options{Rank: 60})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	want := exactRef(t, g, 0.05, 8)
	got := querySeed(t, s, g.N(), 8)
	if cos := cosine(got, want); cos < 0.5 {
		t.Fatalf("NB_LIN cosine %g collapsed", cos)
	}
}

func TestBLinRespectsBudget(t *testing.T) {
	g := gen.ErdosRenyi(300, 1200, 108)
	_, err := BLin{}.Preprocess(g, Options{Partitions: 2, MemBudget: 1000})
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("expected ErrOutOfMemory, got %v", err)
	}
}

func TestPartition(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 109)
	for _, k := range []int{1, 5, 50} {
		part := Partition(g, k)
		counts := map[int]int{}
		for _, p := range part {
			if p < 0 || p >= k {
				t.Fatalf("partition id %d out of range for k=%d", p, k)
			}
			counts[p]++
		}
		if len(counts) != k {
			t.Fatalf("k=%d: only %d parts used", k, len(counts))
		}
	}
}

func TestPartitionMoreThanNodes(t *testing.T) {
	g := gen.ErdosRenyi(5, 10, 110)
	part := Partition(g, 100)
	for _, p := range part {
		if p < 0 || p >= 5 {
			t.Fatalf("partition id %d out of clamped range", p)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 111)
	for _, m := range []Method{Iterative{}, RPPR{}, BRPPR{}, Inversion{}, LUDecomp{}, QRDecomp{}, BLin{}, NBLin{}} {
		if _, err := m.Preprocess(g, Options{C: 2}); err == nil {
			t.Errorf("%s accepted c=2", m.Name())
		}
	}
}

// Method is re-declared here to avoid importing the bench package (which
// would create an import cycle through methods.go).
type Method interface {
	Name() string
	Preprocess(g *graph.Graph, opts Options) (Solver, error)
}

func TestQueryLengthChecks(t *testing.T) {
	g := gen.ErdosRenyi(20, 80, 112)
	for _, m := range []Method{Iterative{}, RPPR{}, BRPPR{}, Inversion{}, LUDecomp{}, QRDecomp{}, BLin{}, NBLin{}} {
		s, err := m.Preprocess(g, Options{})
		if err != nil {
			t.Fatalf("%s preprocess: %v", m.Name(), err)
		}
		if _, err := s.Query(make([]float64, 19)); err == nil {
			t.Errorf("%s accepted wrong-length query", m.Name())
		}
	}
}

func TestSolverAccounting(t *testing.T) {
	g := testGraph()
	for _, m := range []Method{Iterative{}, Inversion{}, LUDecomp{}, BLin{}, NBLin{}} {
		s, err := m.Preprocess(g, Options{})
		if err != nil {
			t.Fatalf("%s preprocess: %v", m.Name(), err)
		}
		if s.NNZ() <= 0 || s.Bytes() <= 0 {
			t.Errorf("%s reports nnz=%d bytes=%d", m.Name(), s.NNZ(), s.Bytes())
		}
	}
}

// Property: every exact method agrees with the oracle on random graphs.
func TestQuickExactMethodsAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		b := graph.NewBuilder(n)
		for e := 0; e < 4*n; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.Build()
		s := rng.Intn(n)
		want := make([]float64, n)
		want[s] = 1
		want, err := Exact(g, 0.05, want)
		if err != nil {
			return false
		}
		for _, m := range []Method{Inversion{}, LUDecomp{}} {
			sol, err := m.Preprocess(g, Options{})
			if err != nil {
				return false
			}
			got, err := SeedQuery(sol, n, s)
			if err != nil {
				return false
			}
			if maxAbsDiff(got, want) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestLUNaturalOrderStillExact(t *testing.T) {
	g := gen.ErdosRenyi(120, 500, 113)
	s, err := LUDecomp{NaturalOrder: true}.Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	got := querySeed(t, s, g.N(), 30)
	want := exactRef(t, g, 0.05, 30)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("natural-order LU wrong: diff %g", d)
	}
	if (LUDecomp{NaturalOrder: true}).Name() != "lu-natural" {
		t.Fatal("ablation name wrong")
	}
}

func TestDegreeOrderingReducesFill(t *testing.T) {
	// Observation 1 of the paper: degree-ascending reordering makes the
	// inverted LU factors sparser than natural order.
	g := gen.BarabasiAlbert(600, 2, 114)
	ordered, err := LUDecomp{}.Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("ordered: %v", err)
	}
	natural, err := LUDecomp{NaturalOrder: true}.Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("natural: %v", err)
	}
	if ordered.NNZ() >= natural.NNZ() {
		t.Fatalf("degree ordering did not reduce fill: %d vs %d",
			ordered.NNZ(), natural.NNZ())
	}
}

func TestNBLinSVDMoreAccurateThanHeuristic(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 12, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 20, Seed: 115})
	want := exactRef(t, g, 0.05, 8)
	cosOf := func(useSVD bool) float64 {
		s, err := NBLin{}.Preprocess(g, Options{Rank: 60, UseSVD: useSVD})
		if err != nil {
			t.Fatalf("preprocess (svd=%v): %v", useSVD, err)
		}
		return cosine(querySeed(t, s, g.N(), 8), want)
	}
	heuristic, svdCos := cosOf(false), cosOf(true)
	if svdCos < heuristic-0.02 {
		t.Fatalf("SVD cosine %g well below heuristic %g", svdCos, heuristic)
	}
	if svdCos < 0.9 {
		t.Fatalf("SVD-based NB_LIN cosine %g too low", svdCos)
	}
}

func TestBLinSVDWorks(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 116))
	s, err := BLin{}.Preprocess(g, Options{Partitions: 10, Rank: 50, UseSVD: true})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	want := exactRef(t, g, 0.05, 3)
	got := querySeed(t, s, g.N(), 3)
	if cos := cosine(got, want); cos < 0.85 {
		t.Fatalf("B_LIN+SVD cosine %g too low", cos)
	}
}

func TestLinSVDEmptyCrossEdges(t *testing.T) {
	// A graph with no cross-partition edges leaves A2 empty; the SVD path
	// must degrade gracefully to the exact block solve.
	b := graph.NewBuilder(20)
	for isle := 0; isle < 2; isle++ {
		base := isle * 10
		for i := 0; i < 9; i++ {
			b.AddUndirected(base+i, base+i+1, 1)
		}
	}
	g := b.Build()
	s, err := BLin{}.Preprocess(g, Options{Partitions: 2, Rank: 5, UseSVD: true})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	want := exactRef(t, g, 0.05, 4)
	got := querySeed(t, s, g.N(), 4)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("empty-A2 SVD path diff %g", d)
	}
}

func TestLocalPushApproximatesExact(t *testing.T) {
	g := testGraph()
	want := exactRef(t, g, 0.05, 10)
	s, err := LocalPush{}.Preprocess(g, Options{EpsB: 1e-7})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	got := querySeed(t, s, g.N(), 10)
	if cos := cosine(got, want); cos < 0.999 {
		t.Fatalf("push cosine %g too low at tight threshold", cos)
	}
	// Push underestimates: p <= exact everywhere (residual mass missing).
	for i := range got {
		if got[i] > want[i]+1e-9 {
			t.Fatalf("push overestimated node %d: %g > %g", i, got[i], want[i])
		}
	}
}

func TestLocalPushThresholdMonotone(t *testing.T) {
	g := testGraph()
	want := exactRef(t, g, 0.05, 10)
	cosAt := func(eps float64) float64 {
		s, err := LocalPush{}.Preprocess(g, Options{EpsB: eps})
		if err != nil {
			t.Fatalf("preprocess: %v", err)
		}
		return cosine(querySeed(t, s, g.N(), 10), want)
	}
	tight, loose := cosAt(1e-8), cosAt(1e-2)
	if tight < loose-1e-9 {
		t.Fatalf("tighter threshold worse: %g vs %g", tight, loose)
	}
}

func TestLocalPushLocality(t *testing.T) {
	// With a loose threshold, push must not touch nodes far from the seed.
	b := graph.NewBuilder(1000)
	for i := 0; i+1 < 1000; i++ {
		b.AddUndirected(i, i+1, 1)
	}
	g := b.Build()
	s, err := LocalPush{}.Preprocess(g, Options{EpsB: 1e-3})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	scores := querySeed(t, s, g.N(), 0)
	touched := 0
	for _, v := range scores {
		if v > 0 {
			touched++
		}
	}
	if touched > 100 {
		t.Fatalf("push touched %d of 1000 nodes on a path graph", touched)
	}
	if scores[0] == 0 {
		t.Fatal("seed not scored")
	}
}

func TestLocalPushDanglingSeed(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1, 1) // node 2 has no edges at all; node 1 is dangling
	g := b.Build()
	s, err := LocalPush{}.Preprocess(g, Options{EpsB: 1e-9})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	scores := querySeed(t, s, g.N(), 2)
	if scores[2] <= 0 || scores[0] != 0 {
		t.Fatalf("dangling seed scores %v", scores)
	}
}

func TestLocalPushBudgetGuard(t *testing.T) {
	g := testGraph()
	s, err := LocalPush{}.Preprocess(g, Options{EpsB: 1e-12, MaxIters: 1})
	if err != nil {
		t.Fatalf("preprocess: %v", err)
	}
	// MaxIters·n pushes cannot drain a 1e-12 threshold on this graph.
	if _, err := SeedQuery(s, g.N(), 0); err == nil {
		t.Fatal("expected push-budget error")
	}
}
