package rwr

import (
	"fmt"

	"bear/internal/dense"
	"bear/internal/graph"
)

// Inversion is the direct-inversion baseline: it precomputes the dense
// H⁻¹ = (I − (1−c)Ãᵀ)⁻¹ and answers queries as r = c H⁻¹ q (Equation 4 of
// the paper). Its n² memory footprint is exactly why the paper's Figure 5
// shows it failing first as graphs grow; the memory budget reproduces that.
type Inversion struct{}

// Name implements Method naming for the harness.
func (Inversion) Name() string { return "inversion" }

// Preprocess computes the dense inverse of H.
func (Inversion) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	estimate := int64(n) * int64(n) * 8 * 2 // inverse + factorization scratch
	if overBudget(opts, estimate) {
		return nil, fmt.Errorf("%w: inversion needs ~%d bytes for n=%d", ErrOutOfMemory, estimate, n)
	}
	h := g.HMatrixCSC(opts.C, false)
	hd := dense.NewFrom(n, n, h.Dense())
	inv, err := dense.Inverse(hd)
	if err != nil {
		return nil, fmt.Errorf("rwr: inverting H: %w", err)
	}
	return &inversionSolver{inv: inv, c: opts.C}, nil
}

type inversionSolver struct {
	inv *dense.Matrix
	c   float64
}

func (s *inversionSolver) Query(q []float64) ([]float64, error) {
	if len(q) != s.inv.R {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), s.inv.R)
	}
	r := s.inv.MulVec(q)
	for i := range r {
		r[i] *= s.c
	}
	return r, nil
}

func (s *inversionSolver) NNZ() int64 {
	var nnz int64
	for _, v := range s.inv.Data {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

func (s *inversionSolver) Bytes() int64 {
	return int64(len(s.inv.Data)) * 8
}
