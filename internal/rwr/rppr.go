package rwr

import (
	"fmt"
	"math"
	"sort"

	"bear/internal/graph"
	"bear/internal/sparse"
)

// RPPR is restricted personalized PageRank (Gleich & Polito): the iterative
// update runs only over a growing subgraph around the seed; a boundary node
// whose current score exceeds EpsB (Options.EpsB) has its out-neighbors
// pulled into the subgraph. Scores of nodes never reached stay zero, so the
// method is approximate.
type RPPR struct{}

// Name implements Method naming for the harness.
func (RPPR) Name() string { return "rppr" }

// Preprocess stores the row-normalized adjacency; RPPR is a query-time
// method with no real preprocessing.
func (RPPR) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	return newLocalSolver(g, opts, false)
}

// BRPPR is boundary-restricted personalized PageRank: instead of a fixed
// per-node threshold it expands boundary nodes in decreasing score order
// until the total boundary score falls below EpsB.
type BRPPR struct{}

// Name implements Method naming for the harness.
func (BRPPR) Name() string { return "brppr" }

// Preprocess stores the row-normalized adjacency.
func (BRPPR) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	return newLocalSolver(g, opts, true)
}

func newLocalSolver(g *graph.Graph, opts Options, boundaryMode bool) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &localSolver{a: g.Normalized(), opts: opts, boundaryMode: boundaryMode}, nil
}

type localSolver struct {
	a            *sparse.CSR // row-normalized Ã (out-edges)
	opts         Options
	boundaryMode bool // false: RPPR, true: BRPPR
}

func (s *localSolver) Query(q []float64) ([]float64, error) {
	n := s.a.R
	if len(q) != n {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), n)
	}
	c := s.opts.C

	inSub := make([]bool, n)    // node participates in the restricted system
	expanded := make([]bool, n) // node's out-edges have been admitted
	var members []int           // nodes currently in the subgraph
	admit := func(u int) {
		if !inSub[u] {
			inSub[u] = true
			members = append(members, u)
		}
	}
	// Seed the subgraph with the support of q.
	for u, v := range q {
		if v > 0 {
			admit(u)
		}
	}

	x := make([]float64, n)
	next := make([]float64, n)
	for u, v := range q {
		x[u] = c * v
	}

	expandFrom := func(u int) {
		expanded[u] = true
		dst, _ := s.a.Row(u)
		for _, v := range dst {
			admit(v)
		}
	}

	for it := 0; it < s.opts.MaxIters; it++ {
		// One restricted power iteration: next = (1−c) Ãᵀ|sub x + c q.
		for _, u := range members {
			next[u] = c * q[u]
		}
		for _, u := range members {
			xu := x[u]
			if xu == 0 || !expanded[u] {
				// Out-edges of unexpanded (boundary) nodes are not part of
				// the restricted system; their mass stays put, which is the
				// approximation both methods make.
				continue
			}
			lo, hi := s.a.RowPtr[u], s.a.RowPtr[u+1]
			for k := lo; k < hi; k++ {
				next[s.a.ColIdx[k]] += (1 - c) * s.a.Val[k] * xu
			}
		}
		var diff float64
		for _, u := range members {
			diff += math.Abs(next[u] - x[u])
			x[u] = next[u]
		}

		grew := s.expand(x, expanded, expandFrom)
		if !grew && diff < s.opts.Eps {
			break
		}
	}
	out := make([]float64, n)
	for _, u := range members {
		out[u] = x[u]
	}
	return out, nil
}

// expand admits new nodes according to the method's rule, returning whether
// the subgraph grew. x holds current scores, expanded the per-query
// expansion state; expandFrom marks a node expanded and admits its
// out-neighbors.
func (s *localSolver) expand(x []float64, expanded []bool, expandFrom func(int)) bool {
	var boundary []int
	for u := range x {
		if x[u] > 0 && !expanded[u] {
			boundary = append(boundary, u)
		}
	}
	if len(boundary) == 0 {
		return false
	}
	if !s.boundaryMode {
		// RPPR: expand every boundary node whose score exceeds ε_b.
		grew := false
		for _, u := range boundary {
			if x[u] > s.opts.EpsB {
				expandFrom(u)
				grew = true
			}
		}
		return grew
	}
	// BRPPR: expand in decreasing score order until the boundary's total
	// score drops below ε_b.
	var total float64
	for _, u := range boundary {
		total += x[u]
	}
	if total < s.opts.EpsB {
		return false
	}
	sort.Slice(boundary, func(i, j int) bool {
		if x[boundary[i]] != x[boundary[j]] {
			return x[boundary[i]] > x[boundary[j]]
		}
		return boundary[i] < boundary[j]
	})
	grew := false
	for _, u := range boundary {
		if total < s.opts.EpsB {
			break
		}
		total -= x[u]
		expandFrom(u)
		grew = true
	}
	return grew
}

// NNZ counts the transition-matrix entries; RPPR/BRPPR hold no precomputed
// data beyond the graph itself.
func (s *localSolver) NNZ() int64 { return int64(s.a.NNZ()) }

func (s *localSolver) Bytes() int64 { return s.a.Bytes() }
