// Package rwr implements the RWR baseline methods the paper compares BEAR
// against (Section 2.2): the iterative power method, RPPR/BRPPR, direct
// inversion, LU decomposition, QR decomposition, and B_LIN/NB_LIN — all
// behind a common Method/Solver interface so the experiment harness can
// drive them uniformly.
package rwr

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory reports that a method's precomputed matrices would exceed
// the configured memory budget. The harness records this as the "bar
// omitted" (OOM) outcome of the paper's figures.
var ErrOutOfMemory = errors.New("rwr: precomputed data exceeds memory budget")

// Options configures preprocessing for every method; each method reads the
// subset of fields that applies to it.
type Options struct {
	// C is the restart probability in (0, 1). Zero selects 0.05, the
	// paper's setting.
	C float64
	// Eps is the convergence threshold of iterative methods. Zero selects
	// 1e-8, the paper's setting.
	Eps float64
	// MaxIters bounds iterative methods. Zero selects 10000.
	MaxIters int
	// DropTol is the drop tolerance ξ for B_LIN/NB_LIN precomputed
	// matrices.
	DropTol float64
	// EpsB is the node-expansion threshold ε_b of RPPR/BRPPR. Zero selects
	// 1e-4.
	EpsB float64
	// Partitions is #p for B_LIN. Zero selects 100.
	Partitions int
	// Rank is the low-rank t for B_LIN/NB_LIN. Zero selects 100.
	Rank int
	// UseSVD switches B_LIN/NB_LIN from the partition-mean heuristic
	// decomposition (the configuration the paper evaluates) to a truncated
	// SVD by subspace iteration — slower to preprocess, usually more
	// accurate per rank.
	UseSVD bool
	// MemBudget caps the bytes of precomputed data; methods whose output
	// would exceed it fail with ErrOutOfMemory. Zero means unlimited.
	MemBudget int64
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = 0.05
	}
	if o.Eps == 0 {
		o.Eps = 1e-8
	}
	if o.MaxIters == 0 {
		o.MaxIters = 10000
	}
	if o.EpsB == 0 {
		o.EpsB = 1e-4
	}
	if o.Partitions == 0 {
		o.Partitions = 100
	}
	if o.Rank == 0 {
		o.Rank = 100
	}
	return o
}

func (o Options) validate() error {
	if o.C <= 0 || o.C >= 1 {
		return fmt.Errorf("rwr: restart probability %g outside (0,1)", o.C)
	}
	if o.Eps < 0 || o.DropTol < 0 || o.EpsB < 0 {
		return fmt.Errorf("rwr: negative threshold")
	}
	return nil
}

// overBudget reports whether estimated bytes exceed the configured budget.
func overBudget(opts Options, bytes int64) bool {
	return opts.MemBudget > 0 && bytes > opts.MemBudget
}

// Solver answers RWR queries from precomputed data.
type Solver interface {
	// Query computes the relevance vector for a starting distribution q of
	// length n. A single-seed RWR query is q = e_seed.
	Query(q []float64) ([]float64, error)
	// NNZ reports the stored entries in the precomputed matrices.
	NNZ() int64
	// Bytes estimates the memory held by the precomputed matrices.
	Bytes() int64
}

// SeedQuery is a convenience wrapper building the canonical single-seed
// starting vector.
func SeedQuery(s Solver, n, seed int) ([]float64, error) {
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("rwr: seed %d out of range [0,%d)", seed, n)
	}
	q := make([]float64, n)
	q[seed] = 1
	return s.Query(q)
}
