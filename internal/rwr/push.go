package rwr

import (
	"errors"
	"fmt"
	"math"

	"bear/internal/graph"
	"bear/internal/sparse"
)

// LocalPush is the forward local-push approximation of RWR, the directed
// generalization of Andersen, Chung & Lang's local PageRank algorithm
// (reference [3] of the paper, which the paper's comparison excludes as
// undirected-only). It maintains an estimate p and a residual r with the
// invariant
//
//	exact = p + Σ_u r[u] · rwr(u),
//
// pushing any node whose residual exceeds EpsB times its out-degree:
// p[u] += c·r[u] and (1−c)·r[u] spreads to u's out-neighbors. Work is
// local to the seed's neighborhood, so queries touch only part of the
// graph — the same trade-off RPPR makes, with deterministic error mass
// bounded by the leftover residual.
type LocalPush struct{}

// Name implements Method naming for the harness.
func (LocalPush) Name() string { return "push" }

// Preprocess stores the row-normalized adjacency; push is query-time only.
func (LocalPush) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &pushSolver{a: g.Normalized(), opts: opts}, nil
}

type pushSolver struct {
	a    *sparse.CSR // row-normalized Ã
	opts Options
}

func (s *pushSolver) Query(q []float64) ([]float64, error) {
	ps := NewPusher(s.a, s.opts.C)
	if err := ps.Reset(q); err != nil {
		return nil, err
	}
	// Each push moves a c-fraction of residual mass into p, so total work
	// is O(total pushed mass / (c·ε_b)); the explicit cap below is a
	// safety net against pathological thresholds.
	maxPushes := s.opts.MaxIters * s.a.R
	if done, err := ps.Run(s.opts.EpsB, maxPushes); err != nil {
		return nil, err
	} else if !done {
		return nil, fmt.Errorf("rwr: local push exceeded %d pushes; lower ε_b or raise MaxIters", maxPushes)
	}
	return ps.Estimates(), nil
}

// NNZ counts the transition-matrix entries; push keeps no precomputed data
// beyond the graph itself.
func (s *pushSolver) NNZ() int64 { return int64(s.a.NNZ()) }

func (s *pushSolver) Bytes() int64 { return s.a.Bytes() }

// intQueue is a FIFO of node ids whose memory is bounded by the live
// frontier, not by the total number of enqueues. The naïve
// `queue = queue[1:]` drain keeps every drained element reachable in the
// backing array, so a long push run grows memory with the push count;
// here a head index marks the dead prefix and push compacts it away once
// it dominates the buffer, so capacity stays within a small factor of the
// peak frontier size (asserted by the allocation regression test).
type intQueue struct {
	buf  []int
	head int
}

func (q *intQueue) len() int { return len(q.buf) - q.head }

func (q *intQueue) push(v int) {
	if q.head == len(q.buf) {
		// Empty: restart at the front of the existing backing array.
		q.buf, q.head = q.buf[:0], 0
	} else if q.head > 64 && q.head > len(q.buf)/2 {
		// The dead prefix dominates: slide the live elements down so
		// append reuses the space instead of growing the array.
		n := copy(q.buf, q.buf[q.head:])
		q.buf, q.head = q.buf[:n], 0
	}
	q.buf = append(q.buf, v)
}

func (q *intQueue) pop() (int, bool) {
	if q.head == len(q.buf) {
		return 0, false
	}
	v := q.buf[q.head]
	q.head++
	return v, true
}

// Pusher is a restartable forward local-push engine over a row-normalized
// transition matrix. Unlike the one-shot Solver interface it exposes the
// estimate/residual pair of the push invariant
//
//	exact = p + Σ_u r[u] · rwr(u),
//
// so callers can read certified score bounds: every entry of every rwr(u)
// vector lies in [0, 1], hence for each node v
//
//	p[v] ≤ exact[v] ≤ p[v] + Σ_u r[u].
//
// Run may be called repeatedly with decreasing thresholds; the engine
// resumes from the retained (p, r) state, so tightening the bound costs
// only the additional pushes. A Pusher is not safe for concurrent use.
type Pusher struct {
	a *sparse.CSR // row-normalized Ã
	c float64

	p, r    []float64
	touched []int // nodes whose residual was ever nonzero, no duplicates
	seen    []bool
	inQueue []bool
	queue   intQueue
	pushes  int
}

// NewPusher returns a push engine over the row-normalized adjacency a with
// restart probability c. The matrix is retained, not copied.
func NewPusher(a *sparse.CSR, c float64) *Pusher {
	n := a.R
	return &Pusher{
		a:       a,
		c:       c,
		p:       make([]float64, n),
		r:       make([]float64, n),
		seen:    make([]bool, n),
		inQueue: make([]bool, n),
	}
}

// ErrBadSeedMass reports a starting vector carrying NaN, infinite, or
// negative entries. Silently skipping such entries (as `if v > 0` does for
// NaN) would return a quietly truncated distribution, so they are rejected
// up front.
var ErrBadSeedMass = errors.New("rwr: starting vector entries must be finite and non-negative")

// Reset installs a fresh starting distribution, clearing any previous push
// state. Entries must be finite and non-negative; anything else returns an
// error wrapping ErrBadSeedMass before any state is modified.
func (ps *Pusher) Reset(q []float64) error {
	n := ps.a.R
	if len(q) != n {
		return fmt.Errorf("rwr: starting vector length %d, want %d", len(q), n)
	}
	for u, v := range q {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("%w: entry %d is %g", ErrBadSeedMass, u, v)
		}
	}
	ps.clear()
	for u, v := range q {
		if v > 0 {
			ps.r[u] = v
			ps.touch(u)
		}
	}
	return nil
}

// ResetSeed is Reset with the canonical single-seed starting vector e_seed.
func (ps *Pusher) ResetSeed(seed int) error {
	n := ps.a.R
	if seed < 0 || seed >= n {
		return fmt.Errorf("rwr: seed %d out of range [0,%d)", seed, n)
	}
	ps.clear()
	ps.r[seed] = 1
	ps.touch(seed)
	return nil
}

// clear wipes all push state, touching only the nodes a previous query
// reached (the queue is already empty or about to be dropped wholesale).
func (ps *Pusher) clear() {
	for _, u := range ps.touched {
		ps.p[u], ps.r[u] = 0, 0
		ps.seen[u] = false
		ps.inQueue[u] = false
	}
	ps.touched = ps.touched[:0]
	ps.queue.buf, ps.queue.head = ps.queue.buf[:0], 0
	ps.pushes = 0
}

func (ps *Pusher) touch(u int) {
	if !ps.seen[u] {
		ps.seen[u] = true
		ps.touched = append(ps.touched, u)
	}
	if !ps.inQueue[u] {
		ps.inQueue[u] = true
		ps.queue.push(u)
	}
}

// threshold is the push trigger: a node is pushed while its residual
// exceeds eps·(outdeg+1). The +1 keeps dangling and degree-one nodes on a
// comparable scale.
func (ps *Pusher) threshold(u int, eps float64) float64 {
	return eps * float64(ps.a.RowPtr[u+1]-ps.a.RowPtr[u]+1)
}

// Run pushes until no node's residual exceeds eps times its out-degree
// scale, or until this call has performed maxPushes pushes (maxPushes <= 0
// means unbounded). It reports whether the frontier fully drained; false
// means the budget ran out and another Run call can continue. eps may be
// lower than in previous runs: the engine rescans the touched set for
// nodes the tighter threshold re-activates.
func (ps *Pusher) Run(eps float64, maxPushes int) (drained bool, err error) {
	if math.IsNaN(eps) || eps < 0 {
		return false, fmt.Errorf("rwr: push threshold %g must be non-negative", eps)
	}
	// Re-arm nodes whose residual sits between the new and any previous
	// threshold; for the first run after Reset this is a no-op (the seeds
	// are already queued).
	for _, u := range ps.touched {
		if !ps.inQueue[u] && ps.r[u] > ps.threshold(u, eps) {
			ps.inQueue[u] = true
			ps.queue.push(u)
		}
	}
	a := ps.a
	c := ps.c
	done := 0
	for {
		u, ok := ps.queue.pop()
		if !ok {
			return true, nil
		}
		ps.inQueue[u] = false
		ru := ps.r[u]
		if ru <= ps.threshold(u, eps) {
			continue
		}
		if maxPushes > 0 && done >= maxPushes {
			// Put u back so the retained state still satisfies the
			// invariant bookkeeping (it was popped but not pushed).
			ps.inQueue[u] = true
			ps.queue.push(u)
			return false, nil
		}
		done++
		ps.pushes++
		ps.p[u] += c * ru
		ps.r[u] = 0
		lo, hi := a.RowPtr[u], a.RowPtr[u+1]
		if lo == hi {
			continue // dangling: the (1−c) mass leaks, as in the exact system
		}
		spread := (1 - c) * ru
		for k := lo; k < hi; k++ {
			v := a.ColIdx[k]
			ps.r[v] += spread * a.Val[k]
			if !ps.seen[v] {
				ps.seen[v] = true
				ps.touched = append(ps.touched, v)
			}
			if ps.r[v] > ps.threshold(v, eps) && !ps.inQueue[v] {
				ps.inQueue[v] = true
				ps.queue.push(v)
			}
		}
	}
}

// Estimates returns the current estimate vector p — the certified lower
// bound on the exact RWR scores. The slice is a copy and safe to retain.
func (ps *Pusher) Estimates() []float64 {
	return append([]float64(nil), ps.p...)
}

// EstimatesRef returns the live estimate vector without copying. It is
// valid until the next Run or Reset and must not be modified.
func (ps *Pusher) EstimatesRef() []float64 { return ps.p }

// ResidualMass returns R = Σ_u r[u], the total unsettled probability mass.
// Every exact score satisfies p[v] ≤ exact[v] ≤ p[v] + R. The sum is
// recomputed over the touched set on every call, so it carries no drift
// from incremental bookkeeping.
func (ps *Pusher) ResidualMass() float64 {
	var sum float64
	for _, u := range ps.touched {
		sum += ps.r[u]
	}
	return sum
}

// Pushes reports the total pushes performed since the last Reset.
func (ps *Pusher) Pushes() int { return ps.pushes }

// Touched reports how many distinct nodes hold or ever held residual mass —
// the footprint of the local computation.
func (ps *Pusher) Touched() int { return len(ps.touched) }

// TouchedRef returns the live list of nodes that hold or ever held
// residual mass since the last Reset, in first-touch order, without
// copying. Every node outside the list has estimate exactly zero. The
// slice is valid until the next Run or Reset and must not be modified.
func (ps *Pusher) TouchedRef() []int { return ps.touched }
