package rwr

import (
	"fmt"

	"bear/internal/graph"
	"bear/internal/sparse"
)

// LocalPush is the forward local-push approximation of RWR, the directed
// generalization of Andersen, Chung & Lang's local PageRank algorithm
// (reference [3] of the paper, which the paper's comparison excludes as
// undirected-only). It maintains an estimate p and a residual r with the
// invariant
//
//	exact = p + Σ_u r[u] · rwr(u),
//
// pushing any node whose residual exceeds EpsB times its out-degree:
// p[u] += c·r[u] and (1−c)·r[u] spreads to u's out-neighbors. Work is
// local to the seed's neighborhood, so queries touch only part of the
// graph — the same trade-off RPPR makes, with deterministic error mass
// bounded by the leftover residual.
type LocalPush struct{}

// Name implements Method naming for the harness.
func (LocalPush) Name() string { return "push" }

// Preprocess stores the row-normalized adjacency; push is query-time only.
func (LocalPush) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return &pushSolver{a: g.Normalized(), opts: opts}, nil
}

type pushSolver struct {
	a    *sparse.CSR // row-normalized Ã
	opts Options
}

func (s *pushSolver) Query(q []float64) ([]float64, error) {
	n := s.a.R
	if len(q) != n {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), n)
	}
	c := s.opts.C
	// Residual threshold: push u while r[u] > ε_b · (outdeg(u)+1). The +1
	// keeps dangling and degree-one nodes on a comparable scale.
	eps := s.opts.EpsB

	p := make([]float64, n)
	r := make([]float64, n)
	inQueue := make([]bool, n)
	queue := make([]int, 0, 256)
	push := func(u int) {
		if !inQueue[u] {
			inQueue[u] = true
			queue = append(queue, u)
		}
	}
	for u, v := range q {
		if v > 0 {
			r[u] = v
			push(u)
		}
	}

	threshold := func(u int) float64 {
		return eps * float64(s.a.RowPtr[u+1]-s.a.RowPtr[u]+1)
	}

	// Each push moves a c-fraction of residual mass into p, so total work
	// is O(total pushed mass / (c·ε_b)); the explicit cap below is a
	// safety net against pathological thresholds.
	maxPushes := s.opts.MaxIters * n
	pushes := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		inQueue[u] = false
		ru := r[u]
		if ru <= threshold(u) {
			continue
		}
		if pushes++; pushes > maxPushes {
			return nil, fmt.Errorf("rwr: local push exceeded %d pushes; lower ε_b or raise MaxIters", maxPushes)
		}
		p[u] += c * ru
		r[u] = 0
		lo, hi := s.a.RowPtr[u], s.a.RowPtr[u+1]
		if lo == hi {
			continue // dangling: the (1−c) mass leaks, as in the exact system
		}
		spread := (1 - c) * ru
		for k := lo; k < hi; k++ {
			v := s.a.ColIdx[k]
			r[v] += spread * s.a.Val[k]
			if r[v] > threshold(v) {
				push(v)
			}
		}
	}
	return p, nil
}

// NNZ counts the transition-matrix entries; push keeps no precomputed data
// beyond the graph itself.
func (s *pushSolver) NNZ() int64 { return int64(s.a.NNZ()) }

func (s *pushSolver) Bytes() int64 { return s.a.Bytes() }
