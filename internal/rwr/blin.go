package rwr

import (
	"fmt"

	"bear/internal/dense"
	"bear/internal/graph"
	"bear/internal/sparse"
	"bear/internal/svd"
)

// BLin is the B_LIN baseline of Tong et al. (KAIS 2008): partition the
// graph, keep within-partition edges A₁ exactly (inverting the block
// diagonal M = I − (1−c)A₁ per partition), approximate cross-partition
// edges A₂ with a rank-t decomposition U V, and answer queries with the
// Sherman–Morrison–Woodbury identity
//
//	r ≈ c ( M⁻¹ q + (1−c) M⁻¹ U Λ V M⁻¹ q ),  Λ = (I − (1−c) V M⁻¹ U)⁻¹.
//
// The decomposition is the partition-mean heuristic the paper's experiments
// use (not SVD): columns of A₂ are grouped t ways and each group is
// replaced by its mean column.
type BLin struct{}

// Name implements Method naming for the harness.
func (BLin) Name() string { return "b_lin" }

// Preprocess builds M⁻¹, U, V, and Λ.
func (BLin) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	return preprocessLin(g, opts, true)
}

// NBLin is B_LIN without partitioning (Tong et al.): the whole Ãᵀ is
// low-rank approximated, so M = I and queries reduce to
// r ≈ c ( q + (1−c) U Λ V q ).
type NBLin struct{}

// Name implements Method naming for the harness.
func (NBLin) Name() string { return "nb_lin" }

// Preprocess builds U, V, and Λ.
func (NBLin) Preprocess(g *graph.Graph, opts Options) (Solver, error) {
	return preprocessLin(g, opts, false)
}

func preprocessLin(g *graph.Graph, opts Options, partitioned bool) (Solver, error) {
	opts = opts.withDefaults()
	if err := opts.validate(); err != nil {
		return nil, err
	}
	n := g.N()
	w := g.Normalized().Transpose() // W = Ãᵀ, so r = c (I − (1−c)W)⁻¹ q

	s := &linSolver{c: opts.C, n: n}
	a2 := w
	if partitioned {
		parts := Partition(g, opts.Partitions)
		// Estimated footprint of the dense per-partition inverses.
		sizes := make([]int64, opts.Partitions)
		for _, p := range parts {
			sizes[p]++
		}
		var est int64
		for _, sz := range sizes {
			est += sz * sz * 16
		}
		if overBudget(opts, est) {
			return nil, fmt.Errorf("%w: B_LIN block inverses need ~%d bytes", ErrOutOfMemory, est)
		}
		a1, rest := splitByPartition(w, parts)
		a2 = rest
		minv, err := invertBlockDiag(a1, parts, opts.C)
		if err != nil {
			return nil, err
		}
		if opts.DropTol > 0 {
			minv = minv.Drop(opts.DropTol)
		}
		s.minv = minv
	}

	t := opts.Rank
	if t > n {
		t = n
	}
	var u, v *sparse.CSR
	if opts.UseSVD {
		var err error
		u, v, t, err = svdDecomposition(a2, t)
		if err != nil {
			return nil, err
		}
	} else {
		u, v = meanColumnDecomposition(g, a2, t)
	}
	if opts.DropTol > 0 {
		u = u.Drop(opts.DropTol)
		if opts.UseSVD {
			v = v.Drop(opts.DropTol)
		}
	}
	s.u, s.v = u, v

	// Λ = (I − (1−c) V M⁻¹ U)⁻¹, a dense t×t system.
	vmu := sparse.Mul(v, s.applyMinvMat(u)) // t×t
	lam := dense.Identity(t)
	for i := 0; i < t; i++ {
		for k := vmu.RowPtr[i]; k < vmu.RowPtr[i+1]; k++ {
			lam.Data[i*t+vmu.ColIdx[k]] -= (1 - opts.C) * vmu.Val[k]
		}
	}
	lamInv, err := dense.Inverse(lam)
	if err != nil {
		return nil, fmt.Errorf("rwr: inverting the %dx%d core matrix: %w", t, t, err)
	}
	s.lambda = lamInv
	return s, nil
}

type linSolver struct {
	c      float64
	n      int
	minv   *sparse.CSR   // nil for NB_LIN (identity)
	u      *sparse.CSR   // n×t
	v      *sparse.CSR   // t×n
	lambda *dense.Matrix // t×t
}

func (s *linSolver) applyMinv(x []float64) []float64 {
	if s.minv == nil {
		return x
	}
	return s.minv.MulVec(x)
}

func (s *linSolver) applyMinvMat(m *sparse.CSR) *sparse.CSR {
	if s.minv == nil {
		return m
	}
	return sparse.Mul(s.minv, m)
}

func (s *linSolver) Query(q []float64) ([]float64, error) {
	if len(q) != s.n {
		return nil, fmt.Errorf("rwr: starting vector length %d, want %d", len(q), s.n)
	}
	mq := s.applyMinv(q)
	t := s.v.MulVec(mq)
	t = s.lambda.MulVec(t)
	t = s.u.MulVec(t)
	t = s.applyMinv(t)
	r := make([]float64, s.n)
	for i := range r {
		r[i] = s.c * (mq[i] + (1-s.c)*t[i])
	}
	return r, nil
}

func (s *linSolver) NNZ() int64 {
	nnz := int64(s.u.NNZ() + s.v.NNZ())
	if s.minv != nil {
		nnz += int64(s.minv.NNZ())
	}
	for _, v := range s.lambda.Data {
		if v != 0 {
			nnz++
		}
	}
	return nnz
}

func (s *linSolver) Bytes() int64 {
	b := s.u.Bytes() + s.v.Bytes() + int64(len(s.lambda.Data))*8
	if s.minv != nil {
		b += s.minv.Bytes()
	}
	return b
}

// Partition assigns each node to one of k parts by chunked BFS over the
// undirected view: repeatedly grow a part from an unassigned seed until it
// reaches the target size. This is the stand-in for METIS that keeps most
// edges within partitions on community-structured graphs.
func Partition(g *graph.Graph, k int) []int {
	n := g.N()
	if k <= 0 {
		panic(fmt.Sprintf("rwr: partition count %d must be positive", k))
	}
	if k > n {
		k = n
	}
	adj := g.UndirectedNeighbors()
	target := (n + k - 1) / k
	part := make([]int, n)
	for i := range part {
		part[i] = -1
	}
	cur, size := 0, 0
	queue := make([]int, 0, target)
	assign := func(u int) {
		part[u] = cur
		size++
		if size >= target && cur < k-1 {
			cur++
			size = 0
		}
	}
	for s := 0; s < n; s++ {
		if part[s] >= 0 {
			continue
		}
		assign(s)
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if part[v] < 0 {
					assign(v)
					queue = append(queue, v)
				}
			}
		}
	}
	return part
}

// splitByPartition splits W into within-partition entries (a1) and
// cross-partition entries (a2), where entry (i, j) is "within" when
// part[i] == part[j].
func splitByPartition(w *sparse.CSR, part []int) (a1, a2 *sparse.CSR) {
	var in, out []sparse.Coord
	for i := 0; i < w.R; i++ {
		for k := w.RowPtr[i]; k < w.RowPtr[i+1]; k++ {
			c := sparse.Coord{Row: i, Col: w.ColIdx[k], Val: w.Val[k]}
			if part[i] == part[c.Col] {
				in = append(in, c)
			} else {
				out = append(out, c)
			}
		}
	}
	return sparse.NewCSR(w.R, w.C, in), sparse.NewCSR(w.R, w.C, out)
}

// invertBlockDiag computes M⁻¹ = (I − (1−c)A₁)⁻¹ per partition block with
// dense inversion, scattered back into a sparse matrix in original node
// order.
func invertBlockDiag(a1 *sparse.CSR, part []int, c float64) (*sparse.CSR, error) {
	n := a1.R
	nparts := 0
	for _, p := range part {
		if p+1 > nparts {
			nparts = p + 1
		}
	}
	members := make([][]int, nparts)
	for u, p := range part {
		members[p] = append(members[p], u)
	}
	local := make([]int, n)
	var coords []sparse.Coord
	for _, nodes := range members {
		sz := len(nodes)
		if sz == 0 {
			continue
		}
		for li, u := range nodes {
			local[u] = li
		}
		blk := dense.Identity(sz)
		for li, u := range nodes {
			for k := a1.RowPtr[u]; k < a1.RowPtr[u+1]; k++ {
				j := a1.ColIdx[k]
				if part[j] == part[u] {
					blk.Data[li*sz+local[j]] -= (1 - c) * a1.Val[k]
				}
			}
		}
		inv, err := dense.Inverse(blk)
		if err != nil {
			return nil, fmt.Errorf("rwr: inverting B_LIN block of size %d: %w", sz, err)
		}
		for li, u := range nodes {
			for lj, v := range nodes {
				if x := inv.Data[li*sz+lj]; x != 0 {
					coords = append(coords, sparse.Coord{Row: u, Col: v, Val: x})
				}
			}
		}
	}
	return sparse.NewCSR(n, n, coords), nil
}

// svdDecomposition computes A₂ ≈ U' V' with U' = U diag(σ) and V' = Vᵀ
// from a truncated SVD, folding the singular values into U so the solver's
// Σ = I convention holds. It returns the possibly reduced rank.
func svdDecomposition(a2 *sparse.CSR, t int) (u, v *sparse.CSR, rank int, err error) {
	res, err := svd.Truncated(a2, t, 0, 1)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("rwr: truncated SVD: %w", err)
	}
	rank = res.Rank()
	if rank == 0 {
		// Degenerate (empty A₂): keep a rank-1 zero factorization so the
		// solver's shapes stay valid.
		n, m := a2.Dims()
		return sparse.NewCSR(n, 1, nil), sparse.NewCSR(1, m, nil), 1, nil
	}
	us := res.U.Clone()
	for i := 0; i < us.R; i++ {
		for j := 0; j < rank; j++ {
			us.Data[i*rank+j] *= res.S[j]
		}
	}
	return sparse.FromDense(us.R, rank, us.Data),
		sparse.FromDense(rank, res.V.R, res.V.Transpose().Data), rank, nil
}

// meanColumnDecomposition is the heuristic rank-t decomposition: columns of
// a2 are grouped by a t-way graph partition; U's column g is the mean of
// group g's columns and V is the group indicator, so A₂ ≈ U V.
func meanColumnDecomposition(g *graph.Graph, a2 *sparse.CSR, t int) (u, v *sparse.CSR) {
	n := a2.R
	groups := Partition(g, t)
	sizes := make([]float64, t)
	for _, p := range groups {
		sizes[p]++
	}
	var ucoords, vcoords []sparse.Coord
	for i := 0; i < n; i++ {
		for k := a2.RowPtr[i]; k < a2.RowPtr[i+1]; k++ {
			j := a2.ColIdx[k]
			gcol := groups[j]
			ucoords = append(ucoords, sparse.Coord{Row: i, Col: gcol, Val: a2.Val[k] / sizes[gcol]})
		}
	}
	for j := 0; j < n; j++ {
		vcoords = append(vcoords, sparse.Coord{Row: groups[j], Col: j, Val: 1})
	}
	return sparse.NewCSR(n, t, ucoords), sparse.NewCSR(t, n, vcoords)
}
