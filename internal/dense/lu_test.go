package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUReconstructsWithPivoting(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(20)
		a := randomMatrix(rng, n, n)
		f, err := LU(a)
		if err != nil {
			// Random matrices are singular with probability 0; treat as flake.
			t.Fatalf("LU: %v", err)
		}
		// P A = L U: apply the recorded pivots to a copy of A.
		pa := a.Clone()
		for k, p := range f.Piv {
			if p != k {
				for j := 0; j < n; j++ {
					pa.Data[k*n+j], pa.Data[p*n+j] = pa.Data[p*n+j], pa.Data[k*n+j]
				}
			}
		}
		matricesClose(t, Mul(f.L(), f.U()), pa, 1e-9, "L U vs P A")
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(25)
		a := randomWellConditioned(rng, n)
		f, err := LU(a)
		if err != nil {
			t.Fatalf("LU: %v", err)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		f.Solve(b)
		for i := range b {
			if math.Abs(b[i]-x[i]) > 1e-8*(1+math.Abs(x[i])) {
				t.Fatalf("solve wrong at %d: %g vs %g", i, b[i], x[i])
			}
		}
	}
}

func TestLUSingular(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 2, 4})
	if _, err := LU(a); err == nil {
		t.Fatal("expected singular error")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		a := randomWellConditioned(rng, n)
		inv, err := Inverse(a)
		if err != nil {
			t.Fatalf("Inverse: %v", err)
		}
		matricesClose(t, Mul(a, inv), Identity(n), 1e-8, "A A⁻¹")
		matricesClose(t, Mul(inv, a), Identity(n), 1e-8, "A⁻¹ A")
	}
}

func TestPermVector(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := 12
	a := randomMatrix(rng, n, n)
	f, err := LU(a)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	viaPiv := append([]float64(nil), b...)
	f.ApplyPiv(viaPiv)
	p := f.PermVector()
	for i := range b {
		if viaPiv[i] != b[p[i]] {
			t.Fatalf("PermVector disagrees with ApplyPiv at %d", i)
		}
	}
}

func TestInverseLowerUnit(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(15)
		l := Identity(n)
		for i := 0; i < n; i++ {
			for j := 0; j < i; j++ {
				l.Data[i*n+j] = rng.NormFloat64() * 0.5
			}
		}
		inv := InverseLowerUnit(l)
		matricesClose(t, Mul(l, inv), Identity(n), 1e-9, "L L⁻¹")
	}
}

func TestInverseUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(15)
		u := New(n, n)
		for i := 0; i < n; i++ {
			u.Data[i*n+i] = 1 + rng.Float64()
			for j := i + 1; j < n; j++ {
				u.Data[i*n+j] = rng.NormFloat64() * 0.5
			}
		}
		inv, err := InverseUpper(u)
		if err != nil {
			t.Fatalf("InverseUpper: %v", err)
		}
		matricesClose(t, Mul(u, inv), Identity(n), 1e-9, "U U⁻¹")
	}
}

func TestInverseUpperZeroDiagonal(t *testing.T) {
	u := NewFrom(2, 2, []float64{1, 2, 0, 0})
	if _, err := InverseUpper(u); err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

// Property: solving twice with the same factorization is consistent.
func TestQuickLUSolveLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(76))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 1 + lr.Intn(12)
		a := randomWellConditioned(rng, n)
		fac, err := LU(a)
		if err != nil {
			return false
		}
		b1 := make([]float64, n)
		b2 := make([]float64, n)
		sum := make([]float64, n)
		for i := range b1 {
			b1[i], b2[i] = rng.NormFloat64(), rng.NormFloat64()
			sum[i] = b1[i] + b2[i]
		}
		fac.Solve(b1)
		fac.Solve(b2)
		fac.Solve(sum)
		for i := range sum {
			if math.Abs(sum[i]-(b1[i]+b2[i])) > 1e-7*(1+math.Abs(sum[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
