// Package dense implements the small dense linear algebra kernel used by
// the RWR methods: row-major matrices, LU with partial pivoting, Householder
// QR, triangular inversion, and full inversion. It exists because the paper
// factors the Schur complement and the diagonal blocks of H₁₁ densely, and
// because the Inversion and QR baselines are inherently dense.
package dense

import (
	"fmt"
	"math"
)

// Matrix is a row-major dense matrix.
type Matrix struct {
	R, C int
	Data []float64
}

// New allocates an r x c zero matrix.
func New(r, c int) *Matrix {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("dense: negative dimension %dx%d", r, c))
	}
	return &Matrix{R: r, C: c, Data: make([]float64, r*c)}
}

// NewFrom wraps existing row-major data (not copied).
func NewFrom(r, c int, data []float64) *Matrix {
	if len(data) != r*c {
		panic(fmt.Sprintf("dense: need %d values for %dx%d, got %d", r*c, r, c, len(data)))
	}
	return &Matrix{R: r, C: c, Data: data}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.C+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.C+j] = v }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	return &Matrix{R: m.R, C: m.C, Data: append([]float64(nil), m.Data...)}
}

// MulVec computes y = A x.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.C {
		panic(fmt.Sprintf("dense: MulVec shape mismatch %dx%d, len(x)=%d", m.R, m.C, len(x)))
	}
	y := make([]float64, m.R)
	for i := 0; i < m.R; i++ {
		row := m.Data[i*m.C : (i+1)*m.C]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		y[i] = s
	}
	return y
}

// Mul computes C = A B.
func Mul(a, b *Matrix) *Matrix {
	if a.C != b.R {
		panic(fmt.Sprintf("dense: Mul shape mismatch %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		arow := a.Data[i*a.C : (i+1)*a.C]
		orow := out.Data[i*b.C : (i+1)*b.C]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*b.C : (k+1)*b.C]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// Transpose returns Aᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := New(m.C, m.R)
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			out.Data[j*m.R+i] = m.Data[i*m.C+j]
		}
	}
	return out
}

// MaxAbsDiff returns max |a - b| elementwise; shapes must match.
func MaxAbsDiff(a, b *Matrix) float64 {
	if a.R != b.R || a.C != b.C {
		panic("dense: MaxAbsDiff shape mismatch")
	}
	var mx float64
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > mx {
			mx = d
		}
	}
	return mx
}
