package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(20)
		a := randomMatrix(rng, n, n)
		f := QR(a)
		matricesClose(t, Mul(f.Q(), f.R()), a, 1e-9, "Q R vs A")
	}
}

func TestQROrthogonal(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(15)
		a := randomMatrix(rng, n, n)
		q := QR(a).Q()
		matricesClose(t, Mul(q.Transpose(), q), Identity(n), 1e-9, "Qᵀ Q")
	}
}

func TestQRUpperTriangular(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := randomMatrix(rng, 12, 12)
	r := QR(a).R()
	for i := 0; i < 12; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R[%d,%d] = %g below diagonal", i, j, r.At(i, j))
			}
		}
	}
}

func TestQTVecMatchesExplicitQ(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(15)
		a := randomMatrix(rng, n, n)
		f := QR(a)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := f.QTVec(x)
		want := f.Q().Transpose().MulVec(x)
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-9*(1+math.Abs(want[i])) {
				t.Fatalf("QTVec wrong at %d: %g vs %g", i, got[i], want[i])
			}
		}
	}
}

func TestQRSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(20)
		a := randomWellConditioned(rng, n)
		f := QR(a)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := f.Solve(b)
		if err != nil {
			t.Fatalf("Solve: %v", err)
		}
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				t.Fatalf("QR solve wrong at %d", i)
			}
		}
	}
}

func TestQRSolveSingular(t *testing.T) {
	a := NewFrom(2, 2, []float64{0, 1, 0, 1}) // zero first column: R[0,0] = 0 exactly
	f := QR(a)
	if _, err := f.Solve([]float64{1, 1}); err == nil {
		t.Fatal("expected singular R error")
	}
}

// Property: ‖Qᵀ x‖₂ = ‖x‖₂ (reflectors preserve norms).
func TestQuickQTVecIsometry(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 1 + lr.Intn(15)
		a := randomMatrix(rng, n, n)
		fac := QR(a)
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := fac.QTVec(x)
		var nx, ny float64
		for i := range x {
			nx += x[i] * x[i]
			ny += y[i] * y[i]
		}
		return math.Abs(nx-ny) <= 1e-9*(1+nx)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
