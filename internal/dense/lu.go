package dense

import (
	"fmt"
	"math"
)

// LUFactors is a dense factorization P A = L U with partial pivoting. LU
// packs L (unit lower, diagonal implicit) and U into one matrix; Piv[k]
// records the row swapped into position k at step k.
type LUFactors struct {
	LU  *Matrix
	Piv []int
}

// LU factors a square matrix with partial pivoting. It returns an error if
// the matrix is numerically singular.
func LU(a *Matrix) (*LUFactors, error) {
	if a.R != a.C {
		panic(fmt.Sprintf("dense: LU requires a square matrix, got %dx%d", a.R, a.C))
	}
	n := a.R
	lu := a.Clone()
	piv := make([]int, n)
	d := lu.Data
	for k := 0; k < n; k++ {
		// Partial pivoting: pick the largest |entry| in column k at or below k.
		p := k
		mx := math.Abs(d[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(d[i*n+k]); v > mx {
				mx, p = v, i
			}
		}
		if mx == 0 {
			return nil, fmt.Errorf("dense: singular matrix at pivot %d", k)
		}
		piv[k] = p
		if p != k {
			for j := 0; j < n; j++ {
				d[k*n+j], d[p*n+j] = d[p*n+j], d[k*n+j]
			}
		}
		pk := d[k*n+k]
		for i := k + 1; i < n; i++ {
			m := d[i*n+k] / pk
			d[i*n+k] = m
			if m == 0 {
				continue
			}
			irow := d[i*n : i*n+n]
			krow := d[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				irow[j] -= m * krow[j]
			}
		}
	}
	return &LUFactors{LU: lu, Piv: piv}, nil
}

// ApplyPiv applies the factorization's row interchanges to b in place,
// producing P b.
func (f *LUFactors) ApplyPiv(b []float64) {
	for k, p := range f.Piv {
		if p != k {
			b[k], b[p] = b[p], b[k]
		}
	}
}

// Solve solves A x = b, overwriting b with x.
func (f *LUFactors) Solve(b []float64) {
	n := f.LU.R
	if len(b) != n {
		panic(fmt.Sprintf("dense: Solve needs len(b)=%d, got %d", n, len(b)))
	}
	f.ApplyPiv(b)
	d := f.LU.Data
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		var s float64
		row := d[i*n : i*n+i]
		for j, v := range row {
			s += v * b[j]
		}
		b[i] -= s
	}
	// Back substitution with the upper triangle.
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * b[j]
		}
		b[i] = (b[i] - s) / d[i*n+i]
	}
}

// L extracts the unit lower triangular factor as a standalone matrix.
func (f *LUFactors) L() *Matrix {
	n := f.LU.R
	l := Identity(n)
	for i := 0; i < n; i++ {
		for j := 0; j < i; j++ {
			l.Data[i*n+j] = f.LU.Data[i*n+j]
		}
	}
	return l
}

// U extracts the upper triangular factor as a standalone matrix.
func (f *LUFactors) U() *Matrix {
	n := f.LU.R
	u := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			u.Data[i*n+j] = f.LU.Data[i*n+j]
		}
	}
	return u
}

// PermVector returns p with P b = b[p] expressed as a map from new position
// to old position, i.e. (P b)[i] = b[p[i]].
func (f *LUFactors) PermVector() []int {
	n := len(f.Piv)
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for k, pk := range f.Piv {
		if pk != k {
			p[k], p[pk] = p[pk], p[k]
		}
	}
	return p
}

// Inverse computes A⁻¹ via the factorization.
func (f *LUFactors) Inverse() *Matrix {
	n := f.LU.R
	inv := New(n, n)
	col := make([]float64, n)
	for j := 0; j < n; j++ {
		for i := range col {
			col[i] = 0
		}
		col[j] = 1
		f.Solve(col)
		for i := 0; i < n; i++ {
			inv.Data[i*n+j] = col[i]
		}
	}
	return inv
}

// Inverse computes A⁻¹ with partial-pivoted LU.
func Inverse(a *Matrix) (*Matrix, error) {
	f, err := LU(a)
	if err != nil {
		return nil, err
	}
	return f.Inverse(), nil
}

// InverseLowerUnit inverts a unit lower triangular matrix in place-free
// fashion, returning a new matrix.
func InverseLowerUnit(l *Matrix) *Matrix {
	n := l.R
	inv := Identity(n)
	for j := 0; j < n; j++ {
		// Column j of the inverse: forward substitution on e_j.
		for i := j + 1; i < n; i++ {
			var s float64
			for k := j; k < i; k++ {
				s += l.Data[i*n+k] * inv.Data[k*n+j]
			}
			inv.Data[i*n+j] = -s
		}
	}
	return inv
}

// InverseUpper inverts an upper triangular matrix, returning a new matrix,
// or an error on a zero diagonal.
func InverseUpper(u *Matrix) (*Matrix, error) {
	n := u.R
	inv := New(n, n)
	for j := 0; j < n; j++ {
		if u.Data[j*n+j] == 0 {
			return nil, fmt.Errorf("dense: zero diagonal at %d in upper inverse", j)
		}
		inv.Data[j*n+j] = 1 / u.Data[j*n+j]
		for i := j - 1; i >= 0; i-- {
			var s float64
			for k := i + 1; k <= j; k++ {
				s += u.Data[i*n+k] * inv.Data[k*n+j]
			}
			inv.Data[i*n+j] = -s / u.Data[i*n+i]
		}
	}
	return inv, nil
}
