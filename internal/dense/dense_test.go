package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomMatrix(rng *rand.Rand, r, c int) *Matrix {
	m := New(r, c)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randomWellConditioned returns a random diagonally dominant square matrix.
func randomWellConditioned(rng *rand.Rand, n int) *Matrix {
	m := randomMatrix(rng, n, n)
	for i := 0; i < n; i++ {
		var s float64
		for j := 0; j < n; j++ {
			if j != i {
				s += math.Abs(m.Data[i*n+j])
			}
		}
		m.Data[i*n+i] = s + 1 + rng.Float64()
	}
	return m
}

func matricesClose(t *testing.T, got, want *Matrix, tol float64, msg string) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d vs %dx%d", msg, got.R, got.C, want.R, want.C)
	}
	if d := MaxAbsDiff(got, want); d > tol {
		t.Fatalf("%s: max diff %g > %g", msg, d, tol)
	}
}

func TestNewFromPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewFrom(2, 2, []float64{1, 2, 3})
}

func TestIdentityMulVec(t *testing.T) {
	id := Identity(5)
	x := []float64{1, 2, 3, 4, 5}
	got := id.MulVec(x)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("I x wrong at %d", i)
		}
	}
}

func TestMulKnown(t *testing.T) {
	a := NewFrom(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := NewFrom(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := Mul(a, b)
	want := NewFrom(2, 2, []float64{58, 64, 139, 154})
	matricesClose(t, got, want, 0, "2x3 * 3x2")
}

func TestMulVsMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 20; trial++ {
		p, q, r := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a, b := randomMatrix(rng, p, q), randomMatrix(rng, q, r)
		ab := Mul(a, b)
		x := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lhs := ab.MulVec(x)
		rhs := a.MulVec(b.MulVec(x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9*(1+math.Abs(rhs[i])) {
				t.Fatalf("(AB)x != A(Bx) at %d", i)
			}
		}
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	m := randomMatrix(rng, 4, 7)
	mt := m.Transpose()
	for i := 0; i < 4; i++ {
		for j := 0; j < 7; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
	matricesClose(t, mt.Transpose(), m, 0, "(Aᵀ)ᵀ")
}

func TestCloneIndependent(t *testing.T) {
	m := Identity(3)
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Fatal("Clone shares storage")
	}
}

// Property: Mul distributes over vector addition.
func TestQuickMulVecAdditive(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		r, c := 1+lr.Intn(10), 1+lr.Intn(10)
		m := randomMatrix(rng, r, c)
		x := make([]float64, c)
		y := make([]float64, c)
		xy := make([]float64, c)
		for i := range x {
			x[i], y[i] = rng.NormFloat64(), rng.NormFloat64()
			xy[i] = x[i] + y[i]
		}
		lhs := m.MulVec(xy)
		mx, my := m.MulVec(x), m.MulVec(y)
		for i := range lhs {
			if math.Abs(lhs[i]-(mx[i]+my[i])) > 1e-9*(1+math.Abs(lhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
