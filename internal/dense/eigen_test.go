package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomSymmetric(rng *rand.Rand, n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Data[i*n+j] = v
			m.Data[j*n+i] = v
		}
	}
	return m
}

func TestSymEigenReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(15)
		a := randomSymmetric(rng, n)
		vals, vecs, err := SymEigen(a)
		if err != nil {
			t.Fatalf("SymEigen: %v", err)
		}
		// V diag(λ) Vᵀ == A.
		vd := vecs.Clone()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Data[i*n+j] *= vals[j]
			}
		}
		matricesClose(t, Mul(vd, vecs.Transpose()), a, 1e-8, "V Λ Vᵀ vs A")
		// Orthonormal eigenvectors.
		matricesClose(t, Mul(vecs.Transpose(), vecs), Identity(n), 1e-9, "Vᵀ V")
		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("eigenvalues not descending: %v", vals)
			}
		}
	}
}

func TestSymEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	a := NewFrom(2, 2, []float64{2, 1, 1, 2})
	vals, _, err := SymEigen(a)
	if err != nil {
		t.Fatalf("SymEigen: %v", err)
	}
	if math.Abs(vals[0]-3) > 1e-10 || math.Abs(vals[1]-1) > 1e-10 {
		t.Fatalf("eigenvalues %v, want [3 1]", vals)
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	a := NewFrom(2, 2, []float64{1, 2, 3, 4})
	if _, _, err := SymEigen(a); err == nil {
		t.Fatal("expected asymmetry error")
	}
}

func TestSymEigenDoesNotModifyInput(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	a := randomSymmetric(rng, 6)
	want := a.Clone()
	if _, _, err := SymEigen(a); err != nil {
		t.Fatalf("SymEigen: %v", err)
	}
	matricesClose(t, a, want, 0, "input modified")
}

func TestOrthonormalizeColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	for trial := 0; trial < 10; trial++ {
		r := 10 + rng.Intn(20)
		c := 1 + rng.Intn(r)
		m := randomMatrix(rng, r, c)
		if def := OrthonormalizeColumns(m); def != 0 {
			t.Fatalf("random full-rank matrix reported %d deficient columns", def)
		}
		g := Mul(m.Transpose(), m)
		matricesClose(t, g, Identity(c), 1e-10, "QᵀQ")
	}
}

func TestOrthonormalizeColumnsRankDeficient(t *testing.T) {
	// Two identical columns: the second must be reported deficient.
	m := NewFrom(3, 2, []float64{1, 1, 2, 2, 3, 3})
	if def := OrthonormalizeColumns(m); def != 1 {
		t.Fatalf("deficient columns = %d, want 1", def)
	}
}

// Property: eigenvalue sum equals the trace.
func TestQuickSymEigenTrace(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 1 + lr.Intn(10)
		a := randomSymmetric(rng, n)
		vals, _, err := SymEigen(a)
		if err != nil {
			return false
		}
		var trace, sum float64
		for i := 0; i < n; i++ {
			trace += a.At(i, i)
			sum += vals[i]
		}
		return math.Abs(trace-sum) <= 1e-8*(1+math.Abs(trace))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
