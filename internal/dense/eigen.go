package dense

import (
	"fmt"
	"math"
)

// SymEigen computes the full eigendecomposition A = V diag(λ) Vᵀ of a
// symmetric matrix with the cyclic Jacobi method. Eigenvalues are returned
// in descending order with matching eigenvector columns. The input is not
// modified. Jacobi is quadratically convergent and unconditionally stable,
// which is all the truncated-SVD driver needs for its small t×t core.
func SymEigen(a *Matrix) (eigvals []float64, eigvecs *Matrix, err error) {
	n := a.R
	if a.R != a.C {
		panic(fmt.Sprintf("dense: SymEigen requires a square matrix, got %dx%d", a.R, a.C))
	}
	const (
		maxSweeps = 100
		tol       = 1e-14
	)
	// Verify symmetry within roundoff; Jacobi silently computes nonsense
	// for asymmetric inputs.
	var scale float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if v := math.Abs(a.At(i, j)); v > scale {
				scale = v
			}
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if math.Abs(a.At(i, j)-a.At(j, i)) > 1e-8*(1+scale) {
				return nil, nil, fmt.Errorf("dense: SymEigen input not symmetric at (%d,%d)", i, j)
			}
		}
	}
	w := a.Clone()
	v := Identity(n)
	d := w.Data
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += d[i*n+j] * d[i*n+j]
			}
		}
		if math.Sqrt(2*off) <= tol*(1+scale) {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := d[p*n+q]
				if math.Abs(apq) <= tol*(1+scale) {
					continue
				}
				app, aqq := d[p*n+p], d[q*n+q]
				// Rotation angle zeroing (p, q).
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to rows/columns p and q of W.
				for k := 0; k < n; k++ {
					akp, akq := d[k*n+p], d[k*n+q]
					d[k*n+p] = c*akp - s*akq
					d[k*n+q] = s*akp + c*akq
				}
				for k := 0; k < n; k++ {
					apk, aqk := d[p*n+k], d[q*n+k]
					d[p*n+k] = c*apk - s*aqk
					d[q*n+k] = s*apk + c*aqk
				}
				// Accumulate eigenvectors.
				for k := 0; k < n; k++ {
					vkp, vkq := v.Data[k*n+p], v.Data[k*n+q]
					v.Data[k*n+p] = c*vkp - s*vkq
					v.Data[k*n+q] = s*vkp + c*vkq
				}
			}
		}
	}
	// Extract and sort descending.
	eigvals = make([]float64, n)
	for i := 0; i < n; i++ {
		eigvals[i] = d[i*n+i]
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	for i := 0; i < n; i++ { // simple selection sort; n is small here
		best := i
		for j := i + 1; j < n; j++ {
			if eigvals[order[j]] > eigvals[order[best]] {
				best = j
			}
		}
		order[i], order[best] = order[best], order[i]
	}
	sorted := make([]float64, n)
	vecs := New(n, n)
	for newJ, oldJ := range order {
		sorted[newJ] = eigvals[oldJ]
		for i := 0; i < n; i++ {
			vecs.Data[i*n+newJ] = v.Data[i*n+oldJ]
		}
	}
	return sorted, vecs, nil
}

// OrthonormalizeColumns replaces the columns of a (r x c, r >= c) with an
// orthonormal basis of their span using modified Gram–Schmidt with a single
// reorthogonalization pass. Columns that become numerically zero (rank
// deficiency) are replaced with zero columns and their count is returned.
func OrthonormalizeColumns(a *Matrix) (rankDeficient int) {
	r, c := a.R, a.C
	col := func(j int) []float64 {
		out := make([]float64, r)
		for i := 0; i < r; i++ {
			out[i] = a.Data[i*c+j]
		}
		return out
	}
	setCol := func(j int, v []float64) {
		for i := 0; i < r; i++ {
			a.Data[i*c+j] = v[i]
		}
	}
	dot := func(x, y []float64) float64 {
		var s float64
		for i := range x {
			s += x[i] * y[i]
		}
		return s
	}
	for j := 0; j < c; j++ {
		v := col(j)
		for pass := 0; pass < 2; pass++ {
			for k := 0; k < j; k++ {
				u := col(k)
				d := dot(u, v)
				if d == 0 {
					continue
				}
				for i := range v {
					v[i] -= d * u[i]
				}
			}
		}
		norm := math.Sqrt(dot(v, v))
		if norm < 1e-12 {
			rankDeficient++
			for i := range v {
				v[i] = 0
			}
		} else {
			for i := range v {
				v[i] /= norm
			}
		}
		setCol(j, v)
	}
	return rankDeficient
}
