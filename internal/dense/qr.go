package dense

import (
	"fmt"
	"math"
)

// QRFactors is a Householder QR factorization A = Q R of a square matrix.
// QR packs the Householder vectors below the diagonal and R on and above
// it; Beta holds the reflector coefficients.
type QRFactors struct {
	QR   *Matrix
	Beta []float64
}

// QR computes the Householder QR factorization of a square matrix.
func QR(a *Matrix) *QRFactors {
	if a.R != a.C {
		panic(fmt.Sprintf("dense: QR requires a square matrix, got %dx%d", a.R, a.C))
	}
	n := a.R
	qr := a.Clone()
	beta := make([]float64, n)
	d := qr.Data
	v := make([]float64, n)
	for k := 0; k < n; k++ {
		// Build the Householder vector for column k.
		var norm float64
		for i := k; i < n; i++ {
			norm += d[i*n+k] * d[i*n+k]
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			beta[k] = 0
			continue
		}
		alpha := d[k*n+k]
		if alpha > 0 {
			norm = -norm
		}
		v[k] = alpha - norm
		for i := k + 1; i < n; i++ {
			v[i] = d[i*n+k]
		}
		var vtv float64
		for i := k; i < n; i++ {
			vtv += v[i] * v[i]
		}
		if vtv == 0 {
			beta[k] = 0
			continue
		}
		b := 2 / vtv
		beta[k] = b
		// Apply the reflector to the trailing submatrix: A -= b v (vᵀ A).
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < n; i++ {
				s += v[i] * d[i*n+j]
			}
			s *= b
			for i := k; i < n; i++ {
				d[i*n+j] -= s * v[i]
			}
		}
		// Store R's diagonal entry and the scaled reflector below it.
		d[k*n+k] = norm
		vk := v[k]
		for i := k + 1; i < n; i++ {
			d[i*n+k] = v[i] / vk
		}
	}
	return &QRFactors{QR: qr, Beta: beta}
}

// QTVec computes y = Qᵀ x by applying the stored reflectors in order.
func (f *QRFactors) QTVec(x []float64) []float64 {
	n := f.QR.R
	if len(x) != n {
		panic(fmt.Sprintf("dense: QTVec needs len(x)=%d, got %d", n, len(x)))
	}
	y := append([]float64(nil), x...)
	d := f.QR.Data
	for k := 0; k < n; k++ {
		b := f.Beta[k]
		if b == 0 {
			continue
		}
		// Implicit v: v[k]=1 scaled form. The stored sub-diagonal is v[i]/v[k];
		// with w = v/v[k], the reflector is I - b' w wᵀ where b' = b v[k]².
		// Since reflectors are scale invariant we use the normalized form: the
		// effective coefficient is 2/(wᵀw).
		var wtw float64 = 1
		for i := k + 1; i < n; i++ {
			wtw += d[i*n+k] * d[i*n+k]
		}
		bb := 2 / wtw
		var s float64 = y[k]
		for i := k + 1; i < n; i++ {
			s += d[i*n+k] * y[i]
		}
		s *= bb
		y[k] -= s
		for i := k + 1; i < n; i++ {
			y[i] -= s * d[i*n+k]
		}
	}
	return y
}

// SolveR solves R x = b by back substitution, overwriting b with x.
func (f *QRFactors) SolveR(b []float64) error {
	n := f.QR.R
	d := f.QR.Data
	for i := n - 1; i >= 0; i-- {
		var s float64
		for j := i + 1; j < n; j++ {
			s += d[i*n+j] * b[j]
		}
		if d[i*n+i] == 0 {
			return fmt.Errorf("dense: singular R at %d", i)
		}
		b[i] = (b[i] - s) / d[i*n+i]
	}
	return nil
}

// Solve solves A x = b via x = R⁻¹ Qᵀ b, returning x.
func (f *QRFactors) Solve(b []float64) ([]float64, error) {
	x := f.QTVec(b)
	if err := f.SolveR(x); err != nil {
		return nil, err
	}
	return x, nil
}

// R extracts the upper triangular factor.
func (f *QRFactors) R() *Matrix {
	n := f.QR.R
	r := New(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			r.Data[i*n+j] = f.QR.Data[i*n+j]
		}
	}
	return r
}

// Q reconstructs the orthogonal factor explicitly (used by the QR baseline,
// which stores Qᵀ as the paper describes).
func (f *QRFactors) Q() *Matrix {
	n := f.QR.R
	q := Identity(n)
	// Q = H_0 H_1 ... H_{n-1}; apply reflectors in reverse to I.
	d := f.QR.Data
	for k := n - 1; k >= 0; k-- {
		if f.Beta[k] == 0 {
			continue
		}
		var wtw float64 = 1
		for i := k + 1; i < n; i++ {
			wtw += d[i*n+k] * d[i*n+k]
		}
		bb := 2 / wtw
		for j := 0; j < n; j++ {
			s := q.Data[k*n+j]
			for i := k + 1; i < n; i++ {
				s += d[i*n+k] * q.Data[i*n+j]
			}
			s *= bb
			q.Data[k*n+j] -= s
			for i := k + 1; i < n; i++ {
				q.Data[i*n+j] -= s * d[i*n+k]
			}
		}
	}
	return q
}
