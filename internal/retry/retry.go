// Package retry centralizes the retry policy shared by the bear client and
// the bearfront coordinator: exponential backoff with jitter, Retry-After
// parsing in both HTTP shapes (delta-seconds and HTTP-date), and a
// wall-clock budget that caps the total time an operation keeps retrying.
//
// The package is deliberately mechanism-only. Callers decide *what* is safe
// to retry (idempotent reads, never mutations) and *when* an error is
// retryable; this package answers "how long to sleep before the next try"
// and "is there time left to try at all".
package retry

import (
	"context"
	"math/rand"
	"net/http"
	"time"
)

// Policy describes how an idempotent operation is retried. The zero value
// retries nothing; DefaultPolicy matches the bear client's historical
// behavior.
type Policy struct {
	// MaxRetries is how many times the operation is retried after its
	// first failure. Zero disables retries.
	MaxRetries int

	// BaseDelay is the sleep before the first retry; each further retry
	// doubles it before jitter. Zero means 100ms.
	BaseDelay time.Duration

	// MaxDelay caps a single backoff sleep after doubling, before jitter
	// (so the worst-case sleep is 1.5×MaxDelay). Zero means no cap.
	MaxDelay time.Duration

	// Budget caps the total wall clock spent across all attempts and
	// backoff sleeps, measured from just before the first attempt. A
	// retry whose backoff sleep would land past the budget is abandoned
	// and the last error returned instead. Zero means no budget.
	Budget time.Duration
}

// DefaultPolicy is the client's historical behavior — 2 retries from a
// 100ms base — plus a 1-minute budget so a pathological Retry-After hint
// or a long streak of slow failures cannot stall a caller indefinitely.
var DefaultPolicy = Policy{
	MaxRetries: 2,
	BaseDelay:  100 * time.Millisecond,
	Budget:     time.Minute,
}

// Attempts is the total number of tries the policy allows (first attempt
// plus retries); always at least 1.
func (p Policy) Attempts() int {
	if p.MaxRetries <= 0 {
		return 1
	}
	return 1 + p.MaxRetries
}

// Backoff picks the sleep before retry number attempt+1 (attempt counts
// from 0): the server's Retry-After hint when one was given, otherwise
// exponential growth from BaseDelay with ±50% jitter so synchronized
// clients fan out instead of stampeding in lockstep.
func (p Policy) Backoff(attempt int, hint time.Duration) time.Duration {
	if hint > 0 {
		return hint
	}
	base := p.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	// Shift with an overflow guard: past 62 doublings the duration would
	// wrap negative, and any real MaxDelay kicks in long before that.
	d := base
	for i := 0; i < attempt && d < 1<<40*time.Nanosecond; i++ {
		d <<= 1
	}
	if p.MaxDelay > 0 && d > p.MaxDelay {
		d = p.MaxDelay
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// ParseRetryAfter interprets a Retry-After header value, which RFC 9110
// allows in two shapes: delta-seconds ("120") or an HTTP-date ("Fri, 07
// Aug 2026 09:00:00 GMT"). now anchors date arithmetic so callers (and
// tests) control the clock. The boolean reports whether the value parsed;
// a date in the past parses to zero, meaning "retry immediately".
func ParseRetryAfter(v string, now time.Time) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	// Delta-seconds first: strconv would also accept "+3", but the header
	// grammar is digits only, so parse by hand and reject anything else.
	if d, ok := parseDeltaSeconds(v); ok {
		return d, true
	}
	if t, err := http.ParseTime(v); err == nil {
		d := t.Sub(now)
		if d < 0 {
			d = 0
		}
		return d, true
	}
	return 0, false
}

func parseDeltaSeconds(v string) (time.Duration, bool) {
	if v == "" {
		return 0, false
	}
	var secs int64
	for _, r := range v {
		if r < '0' || r > '9' {
			return 0, false
		}
		secs = secs*10 + int64(r-'0')
		if secs > int64(time.Hour/time.Second)*24 {
			// Clamp absurd hints at a day; the caller's budget will cut
			// in far earlier, this just avoids overflow arithmetic.
			secs = int64(time.Hour/time.Second) * 24
			break
		}
	}
	return time.Duration(secs) * time.Second, true
}

// Budget tracks the wall-clock allowance of one retried operation.
type Budget struct {
	deadline time.Time
}

// StartBudget opens a budget of d measured from now; a zero d means
// unlimited.
func StartBudget(now time.Time, d time.Duration) Budget {
	if d <= 0 {
		return Budget{}
	}
	return Budget{deadline: now.Add(d)}
}

// Allows reports whether sleeping for sleep starting at now still lands
// inside the budget. An unlimited budget always allows.
func (b Budget) Allows(now time.Time, sleep time.Duration) bool {
	if b.deadline.IsZero() {
		return true
	}
	return now.Add(sleep).Before(b.deadline)
}

// Sleep waits for d or until ctx is done, whichever comes first, and
// reports the context's error if it cut the sleep short.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
