package retry

import (
	"context"
	"testing"
	"time"
)

func TestAttempts(t *testing.T) {
	if got := (Policy{}).Attempts(); got != 1 {
		t.Fatalf("zero policy attempts = %d, want 1", got)
	}
	if got := (Policy{MaxRetries: 3}).Attempts(); got != 4 {
		t.Fatalf("3-retry policy attempts = %d, want 4", got)
	}
	if got := (Policy{MaxRetries: -5}).Attempts(); got != 1 {
		t.Fatalf("negative-retry policy attempts = %d, want 1", got)
	}
}

func TestBackoffHonorsHint(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond}
	if got := p.Backoff(0, 7*time.Second); got != 7*time.Second {
		t.Fatalf("Backoff with hint = %v, want 7s", got)
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond}
	for attempt := 0; attempt < 4; attempt++ {
		want := p.BaseDelay << uint(attempt)
		for i := 0; i < 50; i++ {
			got := p.Backoff(attempt, 0)
			if got < want/2 || got >= want/2+want {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, got, want/2, want/2+want)
			}
		}
	}
}

func TestBackoffMaxDelayCap(t *testing.T) {
	p := Policy{BaseDelay: time.Second, MaxDelay: 2 * time.Second}
	for i := 0; i < 50; i++ {
		if got := p.Backoff(10, 0); got >= 3*time.Second {
			t.Fatalf("capped backoff %v, want < 3s (1.5×MaxDelay)", got)
		}
	}
}

func TestParseRetryAfterDeltaSeconds(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	d, ok := ParseRetryAfter("120", now)
	if !ok || d != 2*time.Minute {
		t.Fatalf("ParseRetryAfter(120) = %v, %v; want 2m, true", d, ok)
	}
	if _, ok := ParseRetryAfter("-3", now); ok {
		t.Fatal("negative delta-seconds should not parse")
	}
	if _, ok := ParseRetryAfter("12x", now); ok {
		t.Fatal("malformed delta-seconds should not parse")
	}
	if _, ok := ParseRetryAfter("", now); ok {
		t.Fatal("empty value should not parse")
	}
}

func TestParseRetryAfterHTTPDate(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	future := now.Add(90 * time.Second)
	d, ok := ParseRetryAfter(future.Format("Mon, 02 Jan 2006 15:04:05 GMT"), now)
	if !ok || d != 90*time.Second {
		t.Fatalf("HTTP-date Retry-After = %v, %v; want 90s, true", d, ok)
	}
	// A date in the past means "retry now", not an error and not negative.
	past := now.Add(-time.Hour)
	d, ok = ParseRetryAfter(past.Format("Mon, 02 Jan 2006 15:04:05 GMT"), now)
	if !ok || d != 0 {
		t.Fatalf("past HTTP-date Retry-After = %v, %v; want 0, true", d, ok)
	}
	if _, ok := ParseRetryAfter("yesterday-ish", now); ok {
		t.Fatal("garbage date should not parse")
	}
}

func TestBudget(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	b := StartBudget(now, time.Second)
	if !b.Allows(now, 500*time.Millisecond) {
		t.Fatal("budget should allow a sleep landing inside it")
	}
	if b.Allows(now, 2*time.Second) {
		t.Fatal("budget should reject a sleep landing past it")
	}
	if b.Allows(now.Add(990*time.Millisecond), 20*time.Millisecond) {
		t.Fatal("budget should reject once nearly exhausted")
	}
	unlimited := StartBudget(now, 0)
	if !unlimited.Allows(now, 24*time.Hour) {
		t.Fatal("zero budget means unlimited")
	}
}

func TestSleepContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Minute); err == nil {
		t.Fatal("Sleep on a canceled context should return its error")
	}
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("short Sleep: %v", err)
	}
}
