package bench

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"bear/internal/core"
	"bear/internal/graph"
)

// RebuildResult is one measured (dataset, churn fraction) cell of the
// rebuild-path sweep: the same dirty set rebuilt both ways from identical
// pre-rebuild state. Speedup is the full path's time over the incremental
// path's — > 1 means the incremental path wins at that churn level.
type RebuildResult struct {
	Dataset     string  `json:"dataset"`
	Churn       float64 `json:"churn"`
	DirtyNodes  int     `json:"dirty_nodes"`
	Blocks      int     `json:"blocks_refactored"`
	TotalBlocks int     `json:"total_blocks"`
	FullMs      float64 `json:"full_ms"`
	IncrMs      float64 `json:"incremental_ms"`
	Speedup     float64 `json:"speedup"`
	// AutoMode/AutoFallback record what RebuildAuto picks for this dirty
	// set under the default policy — the sweep is what justifies the
	// default MaxChurnFraction.
	AutoMode     string `json:"auto_mode"`
	AutoFallback string `json:"auto_fallback,omitempty"`
}

// RebuildBaseline is one committed speedup floor from BENCH_rebuild.json;
// the CI gate fails when a cell's measured speedup falls more than 20%
// below it. Like the kernel gate, it compares the dimensionless ratio of
// two rebuilds on the same machine, so it is stable across hosts of
// different absolute speed.
type RebuildBaseline struct {
	Dataset string  `json:"dataset"`
	Churn   float64 `json:"churn"`
	Speedup float64 `json:"speedup"`
}

// rebuildChurnFractions is the dirty-fraction ladder: well below the
// default auto threshold (0.10), at its edge, and far past it, where the
// full path should win again.
var rebuildChurnFractions = []float64{0.001, 0.01, 0.05, 0.20, 0.50}

// rebuildSweepDatasets are the strongly hub-and-spoke ladder graphs —
// BEAR's target regime, where SlashBurn leaves a small hub core. The
// rebuild split is governed by n₂: re-factoring the Schur complement is a
// floor both paths pay, so on graphs where SlashBurn yields a large hub
// set (routing, web, trust: n₂ in the hundreds) that shared floor caps
// the incremental speedup near 3–4× regardless of churn, while the small
// per-block work shrinks with the dirty set as designed. The sweep spans
// n≈3k–12k with n₂ of 42–84.
var rebuildSweepDatasets = []string{"coauthor", "email", "talk"}

// churnOp is one eligible update: a spoke gains (or re-weights) an edge to
// a hub, which dirties exactly one diagonal block of H₁₁ and never breaks
// block-diagonality, so the incremental path stays applicable at every
// fraction and the sweep times the mechanism, not fallbacks.
type churnOp struct {
	u, hub int
	w      float64
}

// makeChurn picks k distinct dirty spokes and one hub destination each.
func makeChurn(rng *rand.Rand, spokes, hubs []int, k int) []churnOp {
	perm := rng.Perm(len(spokes))
	ops := make([]churnOp, k)
	for i := range ops {
		ops[i] = churnOp{
			u:   spokes[perm[i]],
			hub: hubs[rng.Intn(len(hubs))],
			w:   0.25 + rng.Float64(),
		}
	}
	return ops
}

// rebuildOnce restores a fresh Dynamic sharing the immutable preprocessed
// index p, replays the churn ops, and runs one rebuild in the given mode,
// returning its report. Restoring (rather than reusing one Dynamic) is
// what makes the full and incremental timings comparable: both legs start
// from bit-identical pre-rebuild state.
func rebuildOnce(g *graph.Graph, p *core.Precomputed, ops []churnOp, mode core.RebuildMode, pol *core.RebuildPolicy) (core.RebuildReport, error) {
	dyn, err := core.RestoreDynamic(g, g, p, nil, core.Options{})
	if err != nil {
		return core.RebuildReport{}, err
	}
	if pol != nil {
		dyn.SetRebuildPolicy(*pol)
	}
	for _, op := range ops {
		if err := dyn.AddEdge(op.u, op.hub, op.w); err != nil {
			return core.RebuildReport{}, err
		}
	}
	return dyn.RebuildCtx(context.Background(), mode)
}

// measureRebuildSweep times paired full/incremental rebuilds for each
// requested (dataset, churn) cell with an interleaved min-of-3 protocol:
// the two legs alternate within each round so a slow host phase cannot
// land entirely on one of them, and each leg reports its best round.
// wanted filters the cells (nil = the whole default sweep), letting the
// regression gate re-measure only the committed baselines.
func measureRebuildSweep(cfg Config, wanted func(dataset string, churn float64) bool) ([]RebuildResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const rounds = 3
	var out []RebuildResult
	for _, name := range rebuildSweepDatasets {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		p, err := core.Preprocess(g, core.Options{RetainRebuildCache: true})
		if err != nil {
			return nil, fmt.Errorf("rebuild %s: %w", name, err)
		}
		n := g.N()
		var hubs, spokes []int
		for u := 0; u < n; u++ {
			if p.IsHub(u) {
				hubs = append(hubs, u)
			} else {
				spokes = append(spokes, u)
			}
		}
		if len(hubs) == 0 || len(spokes) == 0 {
			return nil, fmt.Errorf("rebuild %s: degenerate partition (%d hubs, %d spokes)", name, len(hubs), len(spokes))
		}
		for _, f := range rebuildChurnFractions {
			if wanted != nil && !wanted(name, f) {
				continue
			}
			k := int(math.Round(f * float64(n)))
			if k < 1 {
				k = 1
			}
			if k > len(spokes) {
				k = len(spokes)
			}
			ops := makeChurn(rng, spokes, hubs, k)
			// The explicit-mode legs run under an uncapped churn policy so
			// the incremental mechanism is timed at every fraction — the
			// point of the high-churn cells is to show where it loses.
			uncapped := core.RebuildPolicy{MaxChurnFraction: 1, MaxFillRatio: math.Inf(1)}
			fullMin, incrMin := time.Duration(math.MaxInt64), time.Duration(math.MaxInt64)
			var incrRep core.RebuildReport
			for r := 0; r < rounds; r++ {
				repI, err := rebuildOnce(g, p, ops, core.RebuildIncremental, &uncapped)
				if err != nil {
					return nil, fmt.Errorf("rebuild %s churn %g (incremental): %w", name, f, err)
				}
				repF, err := rebuildOnce(g, p, ops, core.RebuildFull, nil)
				if err != nil {
					return nil, fmt.Errorf("rebuild %s churn %g (full): %w", name, f, err)
				}
				if repI.TimeTotal < incrMin {
					incrMin, incrRep = repI.TimeTotal, repI
				}
				if repF.TimeTotal < fullMin {
					fullMin = repF.TimeTotal
				}
			}
			// One auto probe under the default policy records which path
			// auto actually takes at this churn level.
			repA, err := rebuildOnce(g, p, ops, core.RebuildAuto, nil)
			if err != nil {
				return nil, fmt.Errorf("rebuild %s churn %g (auto): %w", name, f, err)
			}
			out = append(out, RebuildResult{
				Dataset:      name,
				Churn:        f,
				DirtyNodes:   k,
				Blocks:       incrRep.BlocksRefactored,
				TotalBlocks:  incrRep.TotalBlocks,
				FullMs:       float64(fullMin) / float64(time.Millisecond),
				IncrMs:       float64(incrMin) / float64(time.Millisecond),
				Speedup:      float64(fullMin) / float64(incrMin),
				AutoMode:     string(repA.Mode),
				AutoFallback: repA.FallbackReason,
			})
		}
	}
	return out, nil
}

// RunRebuild sweeps the churn ladder, rebuilding each dirty set both fully
// and incrementally from identical state (bearbench -exp rebuild). The
// committed headline numbers live in BENCH_rebuild.json.
func RunRebuild(cfg Config) ([]*Table, error) {
	results, err := measureRebuildSweep(cfg, nil)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Rebuild paths: full re-preprocess vs incremental dirty-block surgery",
		Note:    "interleaved min-of-3 per leg from identical pre-rebuild state; auto column is the default-policy decision",
		Headers: []string{"dataset", "churn", "dirty", "blocks", "full_ms", "incr_ms", "speedup", "auto"},
	}
	for _, r := range results {
		auto := r.AutoMode
		if r.AutoFallback != "" {
			auto = fmt.Sprintf("%s (%s)", r.AutoMode, r.AutoFallback)
		}
		t.AddRow(r.Dataset, fmt.Sprintf("%g%%", r.Churn*100),
			r.DirtyNodes, fmt.Sprintf("%d/%d", r.Blocks, r.TotalBlocks),
			fmt.Sprintf("%.2f", r.FullMs), fmt.Sprintf("%.2f", r.IncrMs),
			fmt.Sprintf("%.2fx", r.Speedup), auto)
	}
	return []*Table{t}, nil
}

// CheckRebuild re-measures the committed (dataset, churn) cells and
// compares them against the baselines in BENCH_rebuild.json (bearbench
// -exp rebuild -baseline FILE): any cell whose measured speedup falls
// below 80% of its committed speedup fails the gate. Only the committed
// cells are re-measured, so the gate skips the expensive high-churn tail.
func CheckRebuild(cfg Config, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading rebuild baselines: %w", err)
	}
	var file struct {
		Baselines []RebuildBaseline `json:"baselines"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("bench: parsing rebuild baselines %s: %w", baselinePath, err)
	}
	if len(file.Baselines) == 0 {
		return fmt.Errorf("bench: no baselines in %s", baselinePath)
	}
	want := make(map[string]RebuildBaseline, len(file.Baselines))
	for _, b := range file.Baselines {
		want[fmt.Sprintf("%s/%g", b.Dataset, b.Churn)] = b
	}
	results, err := measureRebuildSweep(cfg, func(dataset string, churn float64) bool {
		_, ok := want[fmt.Sprintf("%s/%g", dataset, churn)]
		return ok
	})
	if err != nil {
		return err
	}
	measured := make(map[string]RebuildResult, len(results))
	for _, r := range results {
		measured[fmt.Sprintf("%s/%g", r.Dataset, r.Churn)] = r
	}
	var failures []error
	for key, b := range want {
		r, ok := measured[key]
		if !ok {
			failures = append(failures, fmt.Errorf("%s: baseline present but not measured", key))
			continue
		}
		if floor := 0.8 * b.Speedup; r.Speedup < floor {
			failures = append(failures,
				fmt.Errorf("%s: speedup %.2fx below floor %.2fx (80%% of committed %.2fx)",
					key, r.Speedup, floor, b.Speedup))
		}
	}
	return errors.Join(failures...)
}
