package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"bear/internal/core"
	"bear/internal/ordering"
)

// OrderingResult is one measured (dataset, ordering) cell of the
// ordering-engine sweep: the four quantities an ordering trades off —
// fill (stored entries in the precomputed matrices), memory, one-time
// preprocessing cost, and steady-state single-seed query latency — plus
// the structural outputs (block count, hub count) that explain them.
// The ratio columns compare against SlashBurn on the same dataset:
// FillVsSlashburn < 1 and QuerySpeedupVsSlashburn > 1 both mean the
// engine beats the paper's default.
type OrderingResult struct {
	Dataset                 string  `json:"dataset"`
	Ordering                string  `json:"ordering"`
	Blocks                  int     `json:"blocks"`
	Hubs                    int     `json:"hubs"`
	NNZ                     int64   `json:"nnz"`
	Bytes                   int64   `json:"bytes"`
	PreprocessMs            float64 `json:"preprocess_ms"`
	QueryNsPerOp            float64 `json:"query_ns_per_op"`
	FillVsSlashburn         float64 `json:"fill_vs_slashburn"`
	QuerySpeedupVsSlashburn float64 `json:"query_speedup_vs_slashburn"`
}

// OrderingBaseline is one committed row from BENCH_orderings.json. The
// CI gate checks two dimensionless ratios: fill (deterministic for a
// fixed graph and engine, so any drift means the engine or the datasets
// changed) and query speedup (timing-based, so gated with the same 20%
// slack as the kernel sweep). Preprocessing time is reported but never
// gated — it is the noisiest of the four axes on shared machines.
type OrderingBaseline struct {
	Dataset                 string  `json:"dataset"`
	Ordering                string  `json:"ordering"`
	FillVsSlashburn         float64 `json:"fill_vs_slashburn"`
	QuerySpeedupVsSlashburn float64 `json:"query_speedup_vs_slashburn"`
}

// orderingSweepEngines lists the built-in engines with the SlashBurn
// baseline first, so measurement loops can divide by index 0.
func orderingSweepEngines() []string {
	out := []string{ordering.Default}
	for _, name := range ordering.Builtin() {
		if name != ordering.Default {
			out = append(out, name)
		}
	}
	return out
}

// measureOrderingQueriesNs times single-seed queries through each
// preprocessed index with the interleaved min-of-batches protocol of
// measureLayoutsNs: batch size calibrated to ~2ms on the first index
// (the SlashBurn baseline), indexes timed round-robin one batch per
// round, best batch each. One op is one QueryTo over the shared seed
// set, reusing a workspace so the measurement is allocation-free.
func measureOrderingQueriesNs(ps []*core.Precomputed, seeds []int) ([]float64, error) {
	const batchTarget = 2 * time.Millisecond
	const rounds = 9
	dst := make([]float64, ps[0].N)
	wss := make([]*core.Workspace, len(ps))
	for i, p := range ps {
		wss[i] = p.AcquireWorkspace()
		defer p.ReleaseWorkspace(wss[i])
		// Warm pass: surfaces errors once so the timed loops can ignore them.
		for _, s := range seeds {
			if err := p.QueryTo(dst, s, wss[i]); err != nil {
				return nil, fmt.Errorf("bench: ordering query seed %d: %w", s, err)
			}
		}
	}
	reps := 1
	for reps < 1<<20 {
		start := time.Now()
		for r := 0; r < reps; r++ {
			for _, s := range seeds {
				ps[0].QueryTo(dst, s, wss[0])
			}
		}
		if time.Since(start) >= batchTarget {
			break
		}
		reps *= 2
	}
	best := make([]float64, len(ps))
	for i := range best {
		best[i] = math.Inf(1)
	}
	for b := 0; b < rounds; b++ {
		for i, p := range ps {
			start := time.Now()
			for r := 0; r < reps; r++ {
				for _, s := range seeds {
					p.QueryTo(dst, s, wss[i])
				}
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(reps*len(seeds)); ns < best[i] {
				best[i] = ns
			}
		}
	}
	return best, nil
}

// measureOrderingSweep preprocesses each ladder dataset under every
// built-in ordering engine and measures the four-way trade-off,
// returning one row per (dataset, ordering) with ratios vs SlashBurn.
func measureOrderingSweep(cfg Config) ([]OrderingResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	engines := orderingSweepEngines()
	var out []OrderingResult
	for _, name := range kernelSweepDatasets {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		ps := make([]*core.Precomputed, len(engines))
		for i, eng := range engines {
			p, err := core.Preprocess(g, core.Options{Ordering: eng})
			if err != nil {
				return nil, fmt.Errorf("orderings %s/%s: %w", name, eng, err)
			}
			ps[i] = p
		}
		seeds := RandomSeeds(g.N(), cfg.QuerySeeds, rng)
		ns, err := measureOrderingQueriesNs(ps, seeds)
		if err != nil {
			return nil, err
		}
		baseNNZ, baseNs := ps[0].NNZ(), ns[0]
		for i, eng := range engines {
			out = append(out, OrderingResult{
				Dataset:                 name,
				Ordering:                eng,
				Blocks:                  len(ps[i].Blocks),
				Hubs:                    ps[i].N2,
				NNZ:                     ps[i].NNZ(),
				Bytes:                   ps[i].Bytes(),
				PreprocessMs:            float64(ps[i].Stats.TimeTotal.Microseconds()) / 1e3,
				QueryNsPerOp:            ns[i],
				FillVsSlashburn:         float64(ps[i].NNZ()) / float64(baseNNZ),
				QuerySpeedupVsSlashburn: baseNs / ns[i],
			})
		}
	}
	return out, nil
}

// RunOrderings compares the pluggable ordering engines on the Fig-6
// graph ladder (bearbench -exp orderings): fill, memory, preprocessing
// time, and query latency for each of slashburn/mindeg/nd. This sweep
// has no counterpart in the paper, which evaluates SlashBurn only; the
// committed headline numbers live in BENCH_orderings.json.
func RunOrderings(cfg Config) ([]*Table, error) {
	results, err := measureOrderingSweep(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Ordering engines: fill / memory / preprocess / query four-way sweep (Fig-6 graph ladder)",
		Note:    "ratios are vs slashburn on the same dataset: fill < 1 and speedup > 1 beat the default; query ns/op is interleaved min-of-9-batches",
		Headers: []string{"dataset", "ordering", "blocks", "hubs", "nnz", "bytes", "preprocess ms", "query ns/op", "fill vs sb", "query speedup"},
	}
	for _, r := range results {
		t.AddRow(r.Dataset, r.Ordering, r.Blocks, r.Hubs, r.NNZ, r.Bytes,
			fmt.Sprintf("%.2f", r.PreprocessMs), r.QueryNsPerOp,
			fmt.Sprintf("%.3fx", r.FillVsSlashburn), fmt.Sprintf("%.2fx", r.QuerySpeedupVsSlashburn))
	}
	return []*Table{t}, nil
}

// CheckOrderings re-measures the ordering sweep and compares it against
// the baselines committed in BENCH_orderings.json (bearbench -exp
// orderings -baseline FILE). Fill ratios are deterministic, so a
// measured ratio more than 25% above its committed value fails — that
// only happens when an engine or a dataset generator changed, and the
// committed numbers must be regenerated deliberately. Query speedups
// get the kernel gate's 20% timing slack.
func CheckOrderings(cfg Config, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading ordering baselines: %w", err)
	}
	var file struct {
		Baselines []OrderingBaseline `json:"baselines"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("bench: parsing ordering baselines %s: %w", baselinePath, err)
	}
	if len(file.Baselines) == 0 {
		return fmt.Errorf("bench: no baselines in %s", baselinePath)
	}
	results, err := measureOrderingSweep(cfg)
	if err != nil {
		return err
	}
	measured := make(map[string]OrderingResult, len(results))
	for _, r := range results {
		measured[r.Dataset+"/"+r.Ordering] = r
	}
	var failures []error
	for _, b := range file.Baselines {
		key := b.Dataset + "/" + b.Ordering
		r, ok := measured[key]
		if !ok {
			failures = append(failures, fmt.Errorf("%s: baseline present but not measured", key))
			continue
		}
		if ceil := 1.25 * b.FillVsSlashburn; r.FillVsSlashburn > ceil {
			failures = append(failures,
				fmt.Errorf("%s: fill ratio %.3fx above ceiling %.3fx (125%% of committed %.3fx)",
					key, r.FillVsSlashburn, ceil, b.FillVsSlashburn))
		}
		if floor := 0.8 * b.QuerySpeedupVsSlashburn; r.QuerySpeedupVsSlashburn < floor {
			failures = append(failures,
				fmt.Errorf("%s: query speedup %.2fx below floor %.2fx (80%% of committed %.2fx)",
					key, r.QuerySpeedupVsSlashburn, floor, b.QuerySpeedupVsSlashburn))
		}
	}
	return errors.Join(failures...)
}
