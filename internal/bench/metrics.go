// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation section: synthetic stand-ins for the
// paper's datasets, a memory budget that reproduces the out-of-memory
// outcomes, accuracy metrics, and one runner per experiment.
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"bear/internal/rwr"
)

// Cosine returns the cosine similarity between two vectors (the paper's
// accuracy metric, footnote 4). Zero vectors yield similarity 0.
func Cosine(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bench: cosine length mismatch %d vs %d", len(a), len(b)))
	}
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (math.Sqrt(na) * math.Sqrt(nb))
}

// L2Error returns ‖a − b‖₂ (the paper's error metric, footnote 5).
func L2Error(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("bench: l2 length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// QueryTiming measures the mean wall-clock query time of a solver over
// single-seed queries at the given seeds, and returns the results of the
// final query for accuracy checks.
func QueryTiming(s rwr.Solver, n int, seeds []int) (mean time.Duration, last []float64, err error) {
	if len(seeds) == 0 {
		return 0, nil, fmt.Errorf("bench: no seeds")
	}
	q := make([]float64, n)
	start := time.Now()
	for _, seed := range seeds {
		q[seed] = 1
		last, err = s.Query(q)
		q[seed] = 0
		if err != nil {
			return 0, nil, err
		}
	}
	return time.Since(start) / time.Duration(len(seeds)), last, nil
}

// RandomSeeds draws k distinct query seeds in [0, n).
func RandomSeeds(n, k int, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	perm := rng.Perm(n)
	return perm[:k]
}

// MultiSeedQuery builds a uniform starting distribution over k seeds, the
// personalized-PageRank workload of Figures 10 and 11.
func MultiSeedQuery(n int, seeds []int) []float64 {
	q := make([]float64, n)
	w := 1 / float64(len(seeds))
	for _, s := range seeds {
		q[s] = w
	}
	return q
}
