package bench

import (
	"fmt"

	"bear/internal/core"
	"bear/internal/graph"
	"bear/internal/rwr"
)

// Method is the harness-facing preprocessing interface; internal/rwr's
// baselines satisfy it directly and BEAR is adapted below.
type Method interface {
	Name() string
	Preprocess(g *graph.Graph, opts rwr.Options) (rwr.Solver, error)
}

// BearMethod adapts BEAR (exact or approximate, depending on opts.DropTol)
// to the harness Method interface.
type BearMethod struct {
	// Label overrides the reported name ("bear-exact" / "bear-approx" by
	// default, chosen from the drop tolerance).
	Label string
}

// Name implements Method.
func (b BearMethod) Name() string {
	if b.Label != "" {
		return b.Label
	}
	return "bear"
}

// Preprocess runs BEAR preprocessing with the shared options and enforces
// the memory budget on the resulting matrices.
func (b BearMethod) Preprocess(g *graph.Graph, opts rwr.Options) (rwr.Solver, error) {
	p, err := core.Preprocess(g, core.Options{C: opts.C, DropTol: opts.DropTol})
	if err != nil {
		return nil, err
	}
	s := &bearSolver{p: p}
	if opts.MemBudget > 0 && s.Bytes() > opts.MemBudget {
		return nil, fmt.Errorf("%w: BEAR matrices use %d bytes", rwr.ErrOutOfMemory, s.Bytes())
	}
	return s, nil
}

type bearSolver struct {
	p *core.Precomputed
}

func (s *bearSolver) Query(q []float64) ([]float64, error) { return s.p.QueryDist(q) }
func (s *bearSolver) NNZ() int64                           { return s.p.NNZ() }
func (s *bearSolver) Bytes() int64                         { return s.p.Bytes() }

// Precomputed exposes the underlying BEAR state for experiments that need
// structural statistics (Table 4).
func (s *bearSolver) Precomputed() *core.Precomputed { return s.p }

// ExactMethods returns the exact competitors of Figures 1(a), 1(b) and 5 in
// the paper's plotting order.
func ExactMethods() []Method {
	return []Method{
		BearMethod{Label: "bear-exact"},
		rwr.LUDecomp{},
		rwr.QRDecomp{},
		rwr.Inversion{},
		rwr.Iterative{},
	}
}

// ApproxMethods returns the approximate competitors of Figures 8, 12 and 13.
func ApproxMethods() []Method {
	return []Method{
		BearMethod{Label: "bear-approx"},
		rwr.BLin{},
		rwr.NBLin{},
		rwr.RPPR{},
		rwr.BRPPR{},
	}
}

// HasPreprocessing reports whether a method precomputes matrices; the
// iterative and RPPR/BRPPR methods do not, and the paper excludes them from
// space comparisons.
func HasPreprocessing(m Method) bool {
	switch m.Name() {
	case "iterative", "rppr", "brppr":
		return false
	}
	return true
}
