package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result: a title, column headers, and rows
// of preformatted cells. It renders either as aligned text (for terminals
// and EXPERIMENTS.md) or CSV.
type Table struct {
	Title   string
	Note    string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v >= 1000 || v < 0.001:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

func formatDuration(d time.Duration) string {
	switch {
	case d == 0:
		return "0"
	case d < time.Microsecond:
		return fmt.Sprintf("%dns", d.Nanoseconds())
	case d < time.Millisecond:
		return fmt.Sprintf("%.1fµs", float64(d.Nanoseconds())/1e3)
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d.Nanoseconds())/1e6)
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(&b, "%s\n", t.Note)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteCSV writes the table in CSV form (headers first).
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}
