package bench

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"bear/internal/core"
	"bear/internal/graph"
	"bear/internal/rwr"
)

// Config controls an experiment run.
type Config struct {
	// Scale multiplies dataset sizes; 1 targets a minutes-long full suite.
	Scale float64
	// Budget is the precomputed-data memory budget in bytes; exceeding it
	// is recorded as OOM, reproducing the omitted bars of Figures 1 and 5.
	// The default (128 MiB at scale 1) is chosen so the same methods fail
	// in the same places as on the paper's 16 GB machine.
	Budget int64
	// QuerySeeds is the number of random single-seed queries timed per
	// method (the paper uses 1000 on full-size graphs).
	QuerySeeds int
	// AccuracySeeds is the number of seeds used for cosine/L2 accuracy.
	AccuracySeeds int
	// Seed drives all randomness.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Budget == 0 {
		c.Budget = int64(128 << 20)
	}
	if c.QuerySeeds == 0 {
		c.QuerySeeds = 20
	}
	if c.AccuracySeeds == 0 {
		c.AccuracySeeds = 5
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

func (c Config) rwrOptions() rwr.Options {
	return rwr.Options{C: core.DefaultC, MemBudget: c.Budget}
}

const oomCell = "OOM"

// Experiment is a named, runnable reproduction of one paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure it reproduces
	Run   func(Config) ([]*Table, error)
}

// Experiments lists every reproduction in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{ID: "table4", Paper: "Table 4 (dataset statistics)", Run: RunTable4},
		{ID: "fig1a", Paper: "Fig 1(a)/Fig 5 (exact preprocessing time & space)", Run: RunExactPreprocess},
		{ID: "fig1b", Paper: "Fig 1(b) (exact query time)", Run: RunExactQuery},
		{ID: "fig2", Paper: "Fig 2 (nonzeros of precomputed matrices)", Run: RunNonzeros},
		{ID: "fig6", Paper: "Fig 6 (effects of drop tolerance)", Run: RunDropTolerance},
		{ID: "fig7", Paper: "Fig 7 (effects of network structure)", Run: RunStructure},
		{ID: "fig8", Paper: "Figs 8/13 (approximate trade-off)", Run: RunTradeoff},
		{ID: "fig10", Paper: "Fig 10 (PPR query time, exact methods)", Run: RunPPRQuery},
		{ID: "fig11", Paper: "Fig 11 (BEAR-Exact query time vs #seeds)", Run: RunSeedsSweep},
		{ID: "fig12", Paper: "Fig 12 (approx preprocessing time)", Run: RunApproxPreprocess},
		{ID: "ablation", Paper: "design-choice ablations (Observation 1, Alg 1 line 7, wave size k)", Run: RunAblation},
		{ID: "scaling", Paper: "supplementary: BEAR cost vs graph size at fixed density", Run: RunScaling},
		{ID: "amortize", Paper: "Section 4.3 total-cost claim: break-even query count vs iterative", Run: RunAmortize},
		{ID: "refine", Paper: "accuracy guardrail: iterative refinement vs drop tolerance", Run: RunRefine},
		{ID: "kernels", Paper: "kernel storage layouts: SpMV on the spoke-block factors (BENCH_kernels.json)", Run: RunKernels},
		{ID: "rebuild", Paper: "rebuild paths: full vs incremental dirty-block surgery (BENCH_rebuild.json)", Run: RunRebuild},
		{ID: "orderings", Paper: "ordering engines: slashburn vs mindeg vs nd four-way sweep (BENCH_orderings.json)", Run: RunOrderings},
		{ID: "topk", Paper: "hybrid top-k: push-certified bounds vs full solve (BENCH_topk.json)", Run: RunTopK},
	}
}

// ExperimentByID looks up an experiment.
func ExperimentByID(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}

// RunAll executes every experiment and concatenates the tables.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, e := range Experiments() {
		ts, err := e.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: experiment %s: %w", e.ID, err)
		}
		out = append(out, ts...)
	}
	return out, nil
}

// RunTable4 reproduces Table 4: structural statistics and the nonzero
// counts of BEAR's precomputed matrices for every dataset.
func RunTable4(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Table 4: dataset statistics and BEAR-Exact precomputed nonzeros",
		Note:    fmt.Sprintf("synthetic substitutes at scale %g; columns follow the paper", cfg.Scale),
		Headers: []string{"dataset", "n", "m", "n2", "sum(n1i^2)", "|H|", "|H12|+|H21|", "|L1i|+|U1i|", "|L2i|+|U2i|"},
	}
	all := append(Datasets(), RMATFamily(cfg.Scale)...)
	for _, d := range all {
		g := d.Make(cfg.Scale)
		p, err := core.Preprocess(g, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("dataset %s: %w", d.Name, err)
		}
		st := p.Stats
		t.AddRow(d.Name, st.N, st.M, st.N2, st.SumSqBlocks, st.NNZH, st.NNZH12H21, st.NNZL1U1, st.NNZL2U2)
	}
	return []*Table{t}, nil
}

// exactRun preprocesses one method on one dataset, returning nil solver on
// an out-of-memory outcome.
func exactRun(m Method, g *graph.Graph, opts rwr.Options) (rwr.Solver, time.Duration, error) {
	start := time.Now()
	s, err := m.Preprocess(g, opts)
	elapsed := time.Since(start)
	if errors.Is(err, rwr.ErrOutOfMemory) {
		return nil, elapsed, nil
	}
	if err != nil {
		return nil, elapsed, err
	}
	// A method may only discover its footprint after the fact.
	if opts.MemBudget > 0 && HasPreprocessing(m) && s.Bytes() > opts.MemBudget {
		return nil, elapsed, nil
	}
	return s, elapsed, nil
}

// RunExactPreprocess reproduces Fig 1(a) (preprocessing time) and Fig 5
// (space for preprocessed data) for the exact methods.
func RunExactPreprocess(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	timeT := &Table{
		Title:   "Fig 1(a): preprocessing time of exact methods",
		Note:    "OOM marks methods whose precomputed data exceeds the memory budget (omitted bars in the paper)",
		Headers: []string{"dataset", "method", "preprocess"},
	}
	spaceT := &Table{
		Title:   "Fig 5: space for preprocessed data (bytes)",
		Headers: []string{"dataset", "method", "bytes", "nnz"},
	}
	for _, d := range Datasets() {
		g := d.Make(cfg.Scale)
		for _, m := range ExactMethods() {
			if !HasPreprocessing(m) {
				continue
			}
			s, elapsed, err := exactRun(m, g, cfg.rwrOptions())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", d.Name, m.Name(), err)
			}
			if s == nil {
				timeT.AddRow(d.Name, m.Name(), oomCell)
				spaceT.AddRow(d.Name, m.Name(), oomCell, oomCell)
				continue
			}
			timeT.AddRow(d.Name, m.Name(), elapsed)
			spaceT.AddRow(d.Name, m.Name(), s.Bytes(), s.NNZ())
		}
	}
	return []*Table{timeT, spaceT}, nil
}

// RunExactQuery reproduces Fig 1(b): mean single-seed query time of the
// exact methods (iterative included).
func RunExactQuery(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Fig 1(b): query time of exact methods",
		Note:    fmt.Sprintf("mean over %d random seeds", cfg.QuerySeeds),
		Headers: []string{"dataset", "method", "query"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, d := range Datasets() {
		g := d.Make(cfg.Scale)
		seeds := RandomSeeds(g.N(), cfg.QuerySeeds, rng)
		for _, m := range ExactMethods() {
			s, _, err := exactRun(m, g, cfg.rwrOptions())
			if err != nil {
				return nil, fmt.Errorf("%s/%s: %w", d.Name, m.Name(), err)
			}
			if s == nil {
				t.AddRow(d.Name, m.Name(), oomCell)
				continue
			}
			mean, _, err := QueryTiming(s, g.N(), seeds)
			if err != nil {
				return nil, fmt.Errorf("%s/%s query: %w", d.Name, m.Name(), err)
			}
			t.AddRow(d.Name, m.Name(), mean)
		}
	}
	return []*Table{t}, nil
}

// dropTolerances returns the ξ ladder of Figures 2, 6, 8 and 13:
// {0, n⁻², n⁻¹, n⁻¹ᐟ², n⁻¹ᐟ⁴}.
func dropTolerances(n int) []struct {
	Label string
	Xi    float64
} {
	fn := float64(n)
	return []struct {
		Label string
		Xi    float64
	}{
		{"0", 0},
		{"n^-2", 1 / (fn * fn)},
		{"n^-1", 1 / fn},
		{"n^-1/2", 1 / math.Sqrt(fn)},
		{"n^-1/4", 1 / math.Pow(fn, 0.25)},
	}
}

// RunNonzeros reproduces Fig 2: the number of nonzeros in each method's
// precomputed matrices on the Routing-analogue dataset.
func RunNonzeros(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	d, err := DatasetByName("routing")
	if err != nil {
		return nil, err
	}
	g := d.Make(cfg.Scale)
	n := g.N()
	t := &Table{
		Title:   "Fig 2: nonzeros of precomputed matrices (routing analogue)",
		Note:    fmt.Sprintf("n=%d m=%d; budget disabled so dense methods report their true size", n, g.M()),
		Headers: []string{"method", "exact", "nnz"},
	}
	opts := cfg.rwrOptions()
	opts.MemBudget = 0 // Fig 2 reports sizes even for the dense methods
	type entry struct {
		m     Method
		exact string
		opts  rwr.Options
	}
	entries := []entry{
		{rwr.Inversion{}, "exact", opts},
		{rwr.QRDecomp{}, "exact", opts},
		{rwr.LUDecomp{}, "exact", opts},
		{rwr.BLin{}, "approx", opts},
		{rwr.NBLin{}, "approx", opts},
		{BearMethod{Label: "bear-exact"}, "exact", opts},
	}
	for _, lvl := range dropTolerances(n)[1:4] { // ξ ∈ {n⁻², n⁻¹, n⁻¹ᐟ²} as in Fig 2
		o := opts
		o.DropTol = lvl.Xi
		entries = append(entries, entry{BearMethod{Label: "bear-approx ξ=" + lvl.Label}, "approx", o})
	}
	for _, e := range entries {
		s, err := e.m.Preprocess(g, e.opts)
		if err != nil {
			return nil, fmt.Errorf("fig2 %s: %w", e.m.Name(), err)
		}
		t.AddRow(e.m.Name(), e.exact, s.NNZ())
	}
	return []*Table{t}, nil
}

// referenceVectors computes exact RWR vectors for accuracy comparisons,
// factoring H once.
func referenceVectors(g *graph.Graph, seeds []int) ([][]float64, error) {
	solver, err := rwr.NewExactSolver(g, core.DefaultC)
	if err != nil {
		return nil, err
	}
	out := make([][]float64, len(seeds))
	q := make([]float64, g.N())
	for i, s := range seeds {
		q[s] = 1
		r, err := solver.Solve(q)
		q[s] = 0
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// accuracyOf runs the solver on each seed and returns mean cosine and mean
// L2 error against the reference vectors.
func accuracyOf(s rwr.Solver, n int, seeds []int, refs [][]float64) (cos, l2 float64, err error) {
	q := make([]float64, n)
	for i, seed := range seeds {
		q[seed] = 1
		r, qerr := s.Query(q)
		q[seed] = 0
		if qerr != nil {
			return 0, 0, qerr
		}
		cos += Cosine(r, refs[i])
		l2 += L2Error(r, refs[i])
	}
	k := float64(len(seeds))
	return cos / k, l2 / k, nil
}

// RunDropTolerance reproduces Fig 6: the effect of ξ on BEAR-Approx's
// space, query time, and accuracy.
func RunDropTolerance(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Fig 6: effects of drop tolerance on BEAR-Approx",
		Headers: []string{"dataset", "xi", "bytes", "nnz", "query", "cosine", "l2"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, name := range []string{"routing", "coauthor", "web"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		seeds := RandomSeeds(g.N(), cfg.AccuracySeeds, rng)
		refs, err := referenceVectors(g, seeds)
		if err != nil {
			return nil, err
		}
		timingSeeds := RandomSeeds(g.N(), cfg.QuerySeeds, rng)
		for _, lvl := range dropTolerances(g.N()) {
			opts := cfg.rwrOptions()
			opts.DropTol = lvl.Xi
			opts.MemBudget = 0
			s, err := BearMethod{}.Preprocess(g, opts)
			if err != nil {
				return nil, fmt.Errorf("fig6 %s ξ=%s: %w", name, lvl.Label, err)
			}
			mean, _, err := QueryTiming(s, g.N(), timingSeeds)
			if err != nil {
				return nil, err
			}
			cos, l2, err := accuracyOf(s, g.N(), seeds, refs)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, lvl.Label, s.Bytes(), s.NNZ(), mean, cos, l2)
		}
	}
	return []*Table{t}, nil
}

// RunStructure reproduces Fig 7: BEAR-Exact's cost on R-MAT graphs of equal
// size but increasingly strong hub-and-spoke structure.
func RunStructure(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Fig 7: effect of network structure (R-MAT p_ul sweep)",
		Note:    "stronger hub-and-spoke (higher p_ul) should shrink every column",
		Headers: []string{"dataset", "n", "m", "n2", "sum(n1i^2)", "preprocess", "query", "bytes"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, d := range RMATFamily(cfg.Scale) {
		g := d.Make(cfg.Scale)
		start := time.Now()
		p, err := core.Preprocess(g, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("fig7 %s: %w", d.Name, err)
		}
		prep := time.Since(start)
		s := &bearSolver{p: p}
		seeds := RandomSeeds(g.N(), cfg.QuerySeeds, rng)
		mean, _, err := QueryTiming(s, g.N(), seeds)
		if err != nil {
			return nil, err
		}
		t.AddRow(d.Name, p.Stats.N, p.Stats.M, p.Stats.N2, p.Stats.SumSqBlocks, prep, mean, s.Bytes())
	}
	return []*Table{t}, nil
}

// RunTradeoff reproduces Figs 8/13: accuracy versus query time and space
// for the approximate methods, sweeping ξ (BEAR-Approx, B_LIN, NB_LIN) and
// ε_b (RPPR, BRPPR).
func RunTradeoff(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Figs 8/13: approximate-method trade-off (accuracy vs time vs space)",
		Note:    "space is '-' for RPPR/BRPPR, which keep no precomputed data",
		Headers: []string{"dataset", "method", "param", "query", "bytes", "cosine", "l2"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	epsBs := []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5}
	for _, name := range []string{"routing", "web"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		n := g.N()
		seeds := RandomSeeds(n, cfg.AccuracySeeds, rng)
		refs, err := referenceVectors(g, seeds)
		if err != nil {
			return nil, err
		}
		timingSeeds := RandomSeeds(n, cfg.QuerySeeds, rng)

		addRow := func(m Method, param string, opts rwr.Options, showSpace bool) error {
			s, err := m.Preprocess(g, opts)
			if errors.Is(err, rwr.ErrOutOfMemory) {
				t.AddRow(name, m.Name(), param, oomCell, oomCell, oomCell, oomCell)
				return nil
			}
			if err != nil {
				return fmt.Errorf("fig8 %s/%s: %w", name, m.Name(), err)
			}
			mean, _, err := QueryTiming(s, n, timingSeeds)
			if err != nil {
				return err
			}
			cos, l2, err := accuracyOf(s, n, seeds, refs)
			if err != nil {
				return err
			}
			space := "-"
			if showSpace {
				space = fmt.Sprintf("%d", s.Bytes())
			}
			t.Rows = append(t.Rows, []string{name, m.Name(), param,
				formatDuration(mean), space, formatFloat(cos), formatFloat(l2)})
			return nil
		}

		for _, lvl := range dropTolerances(n) {
			opts := cfg.rwrOptions()
			opts.DropTol = lvl.Xi
			for _, m := range []Method{BearMethod{Label: "bear-approx"}, rwr.BLin{}, rwr.NBLin{}} {
				if err := addRow(m, "ξ="+lvl.Label, opts, true); err != nil {
					return nil, err
				}
			}
		}
		for _, eb := range epsBs {
			opts := cfg.rwrOptions()
			opts.EpsB = eb
			for _, m := range []Method{rwr.RPPR{}, rwr.BRPPR{}} {
				if err := addRow(m, fmt.Sprintf("εb=%g", eb), opts, false); err != nil {
					return nil, err
				}
			}
		}
	}
	return []*Table{t}, nil
}

// RunPPRQuery reproduces Fig 10: personalized-PageRank query time of the
// exact methods as the number of seeds grows.
func RunPPRQuery(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Fig 10: PPR query time of exact methods vs #seeds",
		Headers: []string{"dataset", "method", "seeds", "query"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seedCounts := []int{1, 10, 100, 1000}
	for _, name := range []string{"routing", "web"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		for _, m := range ExactMethods() {
			s, _, err := exactRun(m, g, cfg.rwrOptions())
			if err != nil {
				return nil, fmt.Errorf("fig10 %s/%s: %w", name, m.Name(), err)
			}
			for _, k := range seedCounts {
				if s == nil {
					t.AddRow(name, m.Name(), k, oomCell)
					continue
				}
				q := MultiSeedQuery(g.N(), RandomSeeds(g.N(), k, rng))
				reps := 3
				start := time.Now()
				for rep := 0; rep < reps; rep++ {
					if _, err := s.Query(q); err != nil {
						return nil, err
					}
				}
				t.AddRow(name, m.Name(), k, time.Since(start)/time.Duration(reps))
			}
		}
	}
	return []*Table{t}, nil
}

// RunSeedsSweep reproduces Fig 11: BEAR-Exact's query time as the seed
// count grows, per dataset.
func RunSeedsSweep(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Fig 11: BEAR-Exact query time vs #seeds",
		Headers: []string{"dataset", "seeds", "query"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, d := range Datasets() {
		g := d.Make(cfg.Scale)
		s, _, err := exactRun(BearMethod{Label: "bear-exact"}, g, cfg.rwrOptions())
		if err != nil || s == nil {
			return nil, fmt.Errorf("fig11 %s: %v", d.Name, err)
		}
		for _, k := range []int{1, 10, 100, 1000} {
			if k > g.N() {
				continue
			}
			q := MultiSeedQuery(g.N(), RandomSeeds(g.N(), k, rng))
			reps := 3
			start := time.Now()
			for rep := 0; rep < reps; rep++ {
				if _, err := s.Query(q); err != nil {
					return nil, err
				}
			}
			t.AddRow(d.Name, k, time.Since(start)/time.Duration(reps))
		}
	}
	return []*Table{t}, nil
}

// RunApproxPreprocess reproduces Fig 12: preprocessing time of the
// approximate preprocessing methods (BEAR-Approx, B_LIN, NB_LIN).
func RunApproxPreprocess(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Fig 12: preprocessing time of approximate methods",
		Note:    "ξ = n⁻¹ for all methods",
		Headers: []string{"dataset", "method", "preprocess"},
	}
	for _, d := range Datasets() {
		g := d.Make(cfg.Scale)
		opts := cfg.rwrOptions()
		opts.DropTol = 1 / float64(g.N())
		for _, m := range []Method{BearMethod{Label: "bear-approx"}, rwr.BLin{}, rwr.NBLin{}} {
			s, elapsed, err := exactRun(m, g, opts)
			if err != nil {
				return nil, fmt.Errorf("fig12 %s/%s: %w", d.Name, m.Name(), err)
			}
			if s == nil {
				t.AddRow(d.Name, m.Name(), oomCell)
				continue
			}
			t.AddRow(d.Name, m.Name(), elapsed)
		}
	}
	return []*Table{t}, nil
}

// RunRefine measures the accuracy guardrail across the ξ ladder: for each
// drop tolerance, the plain BEAR-Approx query is compared — in time, memory
// (including the retained H), residual, and cosine accuracy against an
// exact reference — with the same query answered through iterative
// refinement at tol 1e-9. The table shows what refinement buys (exact-level
// accuracy at BEAR-Approx memory cost) and what it charges (a few extra
// solves' worth of query time).
func RunRefine(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Accuracy guardrail: iterative refinement vs drop tolerance",
		Note:    "refined queries verify against the retained exact H at tol 1e-9; residuals are score-level ∞-norms, means over the accuracy seeds",
		Headers: []string{"dataset", "xi", "bytes", "query", "refined_query", "sweeps", "residual", "refined_residual", "cosine", "refined_cosine"},
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	const tol = 1e-9
	for _, name := range []string{"routing", "web"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		n := g.N()
		seeds := RandomSeeds(n, cfg.AccuracySeeds, rng)
		refs, err := referenceVectors(g, seeds)
		if err != nil {
			return nil, err
		}
		for _, lvl := range dropTolerances(n) {
			p, err := core.Preprocess(g, core.Options{DropTol: lvl.Xi, KeepH: true})
			if err != nil {
				return nil, fmt.Errorf("refine %s ξ=%s: %w", name, lvl.Label, err)
			}
			q := make([]float64, n)
			var plainT, refT time.Duration
			var sweeps int
			var resid, refResid, cos, refCos float64
			for i, seed := range seeds {
				q[seed] = 1
				start := time.Now()
				plain, err := p.Query(seed)
				plainT += time.Since(start)
				if err != nil {
					return nil, err
				}
				r, err := p.Residual(plain, q)
				if err != nil {
					return nil, err
				}
				resid += r
				start = time.Now()
				refined, stats, err := p.QueryRefined(q, tol, 0)
				refT += time.Since(start)
				if err != nil {
					return nil, err
				}
				sweeps += stats.Sweeps
				refResid += stats.Residual
				cos += Cosine(plain, refs[i])
				refCos += Cosine(refined, refs[i])
				q[seed] = 0
			}
			k := len(seeds)
			fk := float64(k)
			t.AddRow(name, lvl.Label, p.Bytes(),
				plainT/time.Duration(k), refT/time.Duration(k),
				fmt.Sprintf("%.1f", float64(sweeps)/fk),
				resid/fk, refResid/fk, cos/fk, refCos/fk)
		}
	}
	return []*Table{t}, nil
}

// SortRows orders a table's rows lexicographically; used by tests that
// need deterministic output.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		for k := range t.Rows[i] {
			if t.Rows[i][k] != t.Rows[j][k] {
				return t.Rows[i][k] < t.Rows[j][k]
			}
		}
		return false
	})
}
