package bench

import (
	"fmt"
	"math"
	"time"

	"bear/internal/rwr"
)

// RunAmortize quantifies the paper's total-cost claim (Section 4.3):
// "although BEAR-EXACT requires a preprocessing step which is not needed by
// the iterative method, for real world applications where RWR scores for
// many query nodes are required, BEAR-EXACT outperforms the iterative
// method in terms of total running time." For each dataset it reports both
// methods' preprocessing and per-query time and the break-even query count
// Q* = ceil(prep_BEAR / (query_iter − query_BEAR)).
func RunAmortize(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Amortization: BEAR-Exact vs iterative total cost",
		Note:    "Q* = queries needed for BEAR's one-time preprocessing to pay for itself",
		Headers: []string{"dataset", "bear prep", "bear query", "iter query", "Q*"},
	}
	for _, d := range Datasets() {
		g := d.Make(cfg.Scale)
		seeds := make([]int, cfg.QuerySeeds)
		for i := range seeds {
			seeds[i] = (i * 101) % g.N()
		}

		start := time.Now()
		bearSol, err := BearMethod{}.Preprocess(g, cfg.rwrOptions())
		if err != nil {
			return nil, fmt.Errorf("amortize %s: %w", d.Name, err)
		}
		prep := time.Since(start)
		bearQ, _, err := QueryTiming(bearSol, g.N(), seeds)
		if err != nil {
			return nil, err
		}

		iterSol, err := rwr.Iterative{}.Preprocess(g, cfg.rwrOptions())
		if err != nil {
			return nil, err
		}
		iterQ, _, err := QueryTiming(iterSol, g.N(), seeds)
		if err != nil {
			return nil, err
		}

		breakEven := "never"
		if iterQ > bearQ {
			breakEven = fmt.Sprintf("%d", int(math.Ceil(float64(prep)/float64(iterQ-bearQ))))
		}
		t.AddRow(d.Name, prep, bearQ, iterQ, breakEven)
	}
	return []*Table{t}, nil
}
