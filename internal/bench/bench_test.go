package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"bear/internal/rwr"
)

func smallConfig() Config {
	return Config{Scale: 0.05, QuerySeeds: 3, AccuracySeeds: 2, Seed: 1}
}

func TestDatasetsBuild(t *testing.T) {
	for _, d := range append(Datasets(), RMATFamily(0.05)...) {
		g := d.Make(0.05)
		if g.N() == 0 {
			t.Errorf("dataset %s is empty", d.Name)
		}
		if d.Analogue == "" {
			t.Errorf("dataset %s lacks its paper analogue note", d.Name)
		}
	}
}

func TestDatasetByName(t *testing.T) {
	if _, err := DatasetByName("routing"); err != nil {
		t.Fatalf("routing: %v", err)
	}
	if _, err := DatasetByName("nope"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestDatasetsDeterministic(t *testing.T) {
	d, _ := DatasetByName("web")
	a, b := d.Make(0.1), d.Make(0.1)
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatal("dataset not deterministic")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{Title: "demo", Note: "note", Headers: []string{"a", "bb"}}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatalf("Render: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"demo", "note", "a", "bb", "2.5000"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	if err := tab.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines, want 3", len(lines))
	}
}

func TestBearMethodAdapter(t *testing.T) {
	d, _ := DatasetByName("routing")
	g := d.Make(0.05)
	s, err := BearMethod{}.Preprocess(g, rwr.Options{C: 0.05})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	r, err := rwr.SeedQuery(s, g.N(), 0)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	want, err := rwr.Exact(g, 0.05, MultiSeedQuery(g.N(), []int{0}))
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	if Cosine(r, want) < 1-1e-12 {
		t.Fatal("BEAR adapter produced wrong scores")
	}
	if s.NNZ() <= 0 || s.Bytes() <= 0 {
		t.Fatal("adapter accounting empty")
	}
}

func TestBearMethodBudget(t *testing.T) {
	d, _ := DatasetByName("routing")
	g := d.Make(0.05)
	_, err := BearMethod{}.Preprocess(g, rwr.Options{C: 0.05, MemBudget: 10})
	if err == nil {
		t.Fatal("expected budget error")
	}
}

func TestHasPreprocessing(t *testing.T) {
	if HasPreprocessing(rwr.Iterative{}) || HasPreprocessing(rwr.RPPR{}) || HasPreprocessing(rwr.BRPPR{}) {
		t.Fatal("query-time methods flagged as preprocessing")
	}
	if !HasPreprocessing(BearMethod{}) || !HasPreprocessing(rwr.LUDecomp{}) {
		t.Fatal("preprocessing methods not flagged")
	}
}

func TestExperimentRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range Experiments() {
		if ids[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Paper == "" {
			t.Fatalf("experiment %s incomplete", e.ID)
		}
	}
	for _, want := range []string{"table4", "fig1a", "fig1b", "fig2", "fig6", "fig7", "fig8", "fig10", "fig11", "fig12"} {
		if !ids[want] {
			t.Fatalf("missing experiment %s", want)
		}
	}
	if _, err := ExperimentByID("fig99"); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
}

func TestRunTable4Small(t *testing.T) {
	tabs, err := RunTable4(smallConfig())
	if err != nil {
		t.Fatalf("RunTable4: %v", err)
	}
	if len(tabs) != 1 || len(tabs[0].Rows) != len(Datasets())+5 {
		t.Fatalf("table4 has %d rows", len(tabs[0].Rows))
	}
}

func TestRunStructureShape(t *testing.T) {
	// The paper's Fig 7 claim: stronger hub-and-spoke structure (higher
	// p_ul) gives fewer hubs. Check n2 decreases across the sweep.
	tabs, err := RunStructure(smallConfig())
	if err != nil {
		t.Fatalf("RunStructure: %v", err)
	}
	rows := tabs[0].Rows
	if len(rows) != 5 {
		t.Fatalf("fig7 rows = %d", len(rows))
	}
	prev := 1 << 30
	for _, row := range rows {
		var n2 int
		if _, err := sscan(row[3], &n2); err != nil {
			t.Fatalf("bad n2 cell %q", row[3])
		}
		if n2 > prev {
			t.Fatalf("n2 not decreasing across p_ul sweep: %v", rows)
		}
		prev = n2
	}
}

func TestRunNonzerosSmall(t *testing.T) {
	tabs, err := RunNonzeros(smallConfig())
	if err != nil {
		t.Fatalf("RunNonzeros: %v", err)
	}
	if len(tabs[0].Rows) < 6 {
		t.Fatalf("fig2 rows = %d", len(tabs[0].Rows))
	}
}

func TestRunDropToleranceSmall(t *testing.T) {
	tabs, err := RunDropTolerance(smallConfig())
	if err != nil {
		t.Fatalf("RunDropTolerance: %v", err)
	}
	if len(tabs[0].Rows) != 3*5 { // 3 datasets × 5 tolerances
		t.Fatalf("fig6 rows = %d", len(tabs[0].Rows))
	}
}

func TestOOMShapeMatchesPaper(t *testing.T) {
	// The headline scalability claim: with a tight budget the dense
	// methods go OOM while BEAR-Exact survives.
	cfg := smallConfig()
	cfg.Scale = 0.2
	cfg.Budget = 2 << 20 // 2 MiB
	tabs, err := RunExactPreprocess(cfg)
	if err != nil {
		t.Fatalf("RunExactPreprocess: %v", err)
	}
	oom := map[string]bool{}
	ok := map[string]bool{}
	for _, row := range tabs[0].Rows {
		if row[0] != "web" {
			continue
		}
		if row[2] == oomCell {
			oom[row[1]] = true
		} else {
			ok[row[1]] = true
		}
	}
	if !ok["bear-exact"] {
		t.Fatalf("bear-exact did not survive the budget: %v", tabs[0].Rows)
	}
	if !oom["inversion"] || !oom["qr"] {
		t.Fatalf("dense methods did not OOM: oom=%v ok=%v", oom, ok)
	}
}

// sscan parses a single integer cell.
func sscan(s string, v *int) (int, error) {
	return fmt.Sscan(s, v)
}

func TestRunAllSmall(t *testing.T) {
	// Smoke-run every experiment at a tiny scale: output shape only.
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	cfg := smallConfig()
	tabs, err := RunAll(cfg)
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	// One table per: table4, fig1a(2), fig1b, fig2, fig6, fig7, fig8,
	// fig10, fig11, fig12, ablation(3), scaling, amortize, refine,
	// kernels, rebuild, orderings, topk.
	if len(tabs) != 21 {
		t.Fatalf("RunAll produced %d tables, want 21", len(tabs))
	}
	for _, tab := range tabs {
		if tab.Title == "" || len(tab.Headers) == 0 || len(tab.Rows) == 0 {
			t.Fatalf("table %q incomplete", tab.Title)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Headers) {
				t.Fatalf("table %q: row width %d vs %d headers", tab.Title, len(row), len(tab.Headers))
			}
		}
	}
}

func TestRunTradeoffAccuracyOrdering(t *testing.T) {
	// The paper's Fig 8 headline: in the accuracy-preserving ξ regime
	// (ξ ≤ n⁻¹), BEAR-Approx matches or beats the low-rank methods'
	// accuracy at every tolerance. A larger scale is needed so B_LIN has
	// real cross-partition edges to approximate.
	cfg := smallConfig()
	cfg.Scale = 0.25
	tabs, err := RunTradeoff(cfg)
	if err != nil {
		t.Fatalf("RunTradeoff: %v", err)
	}
	keep := map[string]bool{"ξ=0": true, "ξ=n^-2": true, "ξ=n^-1": true}
	cosByMethod := map[string]map[string]float64{}
	for _, row := range tabs[0].Rows {
		if row[0] != "routing" || !keep[row[2]] || row[3] == oomCell {
			continue
		}
		var cos float64
		if _, err := fmt.Sscan(row[5], &cos); err != nil {
			continue
		}
		if cosByMethod[row[2]] == nil {
			cosByMethod[row[2]] = map[string]float64{}
		}
		cosByMethod[row[2]][row[1]] = cos
	}
	for xi, byMethod := range cosByMethod {
		bear, ok := byMethod["bear-approx"]
		if !ok {
			continue
		}
		for _, m := range []string{"b_lin", "nb_lin"} {
			if other, ok := byMethod[m]; ok && bear+1e-6 < other {
				t.Fatalf("%s at %s: BEAR-Approx cosine %g below %g", m, xi, bear, other)
			}
		}
	}
}
