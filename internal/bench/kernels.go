package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"bear/internal/core"
	"bear/internal/sparse"
	"bear/internal/sparse/kernel"
)

// KernelResult is one measured (dataset, matrix, layout) cell of the
// kernel layout sweep. Speedup is csr ns/op divided by this layout's
// ns/op on the same matrix — > 1 means faster than baseline.
type KernelResult struct {
	Dataset string  `json:"dataset"`
	Matrix  string  `json:"matrix"`
	Layout  string  `json:"layout"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup"`
}

// KernelBaseline is one committed speedup floor from BENCH_kernels.json;
// the CI gate fails when a layout's measured speedup falls more than 20%
// below it. Gating on the dimensionless speedup ratio (not ns/op) keeps
// the gate stable across machines of different absolute speed.
type KernelBaseline struct {
	Dataset string  `json:"dataset"`
	Matrix  string  `json:"matrix"`
	Layout  string  `json:"layout"`
	Speedup float64 `json:"speedup"`
}

// kernelSweepLayouts builds every layout under test for one matrix.
func kernelSweepLayouts(m *sparse.CSR) []kernel.Matrix {
	ks := []kernel.Matrix{kernel.NewCSR(m)}
	if h := kernel.NewHybrid(m); h != nil {
		ks = append(ks, h)
	}
	if s := kernel.NewSELL(m); s != nil {
		ks = append(ks, s)
	}
	ks = append(ks, kernel.NewParallel(kernel.NewCSR(m), m, 0))
	return ks
}

// measureLayoutsNs times every layout's full SpMV on the same matrix
// with an interleaved min-of-batches protocol: batch size is calibrated
// to ~2ms on the csr baseline, then the layouts are timed round-robin —
// one batch each per round — and each layout reports its best batch.
// The minimum strips scheduler noise far better than a mean, and the
// interleaving matters on shared machines: timing each layout's batches
// back to back lets one slow host phase land entirely on one layout and
// fabricate (or hide) a speedup ratio.
func measureLayoutsNs(ks []kernel.Matrix, y, x []float64) []float64 {
	const batchTarget = 2 * time.Millisecond
	const rounds = 9
	reps := 1
	for reps < 1<<22 {
		start := time.Now()
		for i := 0; i < reps; i++ {
			ks[0].SpMV(y, x, kernel.Exact)
		}
		if time.Since(start) >= batchTarget {
			break
		}
		reps *= 2
	}
	best := make([]float64, len(ks))
	for i := range best {
		best[i] = math.Inf(1)
	}
	for b := 0; b < rounds; b++ {
		for i, k := range ks {
			start := time.Now()
			for r := 0; r < reps; r++ {
				k.SpMV(y, x, kernel.Exact)
			}
			if ns := float64(time.Since(start).Nanoseconds()) / float64(reps); ns < best[i] {
				best[i] = ns
			}
		}
	}
	return best
}

// kernelSweepDatasets is the Fig-6 graph ladder: the three datasets the
// drop-tolerance figure sweeps, smallest to largest.
var kernelSweepDatasets = []string{"routing", "coauthor", "web"}

// measureKernelSweep preprocesses each ladder dataset and times every
// layout's SpMV on the block-diagonal spoke factors L1⁻¹/U1⁻¹ — the H₁₁
// subsystem both Algorithm 2 solves traverse — returning one row per
// (dataset, matrix, layout).
func measureKernelSweep(cfg Config) ([]KernelResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []KernelResult
	for _, name := range kernelSweepDatasets {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		p, err := core.Preprocess(g, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("kernels %s: %w", name, err)
		}
		for _, mx := range []struct {
			name string
			m    *sparse.CSR
		}{{"l1inv", p.L1Inv}, {"u1inv", p.U1Inv}} {
			x := make([]float64, mx.m.C)
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			y := make([]float64, mx.m.R)
			ks := kernelSweepLayouts(mx.m)
			ns := measureLayoutsNs(ks, y, x)
			csrNs := ns[0] // kernelSweepLayouts puts the csr baseline first
			for i, k := range ks {
				out = append(out, KernelResult{
					Dataset: name, Matrix: mx.name, Layout: k.Layout(),
					NsPerOp: ns[i], Speedup: csrNs / ns[i],
				})
			}
		}
	}
	return out, nil
}

// RunKernels compares the kernel storage layouts on the Fig-6 graph
// ladder's spoke-block factors (bearbench -exp kernels). The committed
// headline numbers live in BENCH_kernels.json.
func RunKernels(cfg Config) ([]*Table, error) {
	results, err := measureKernelSweep(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Kernel layouts: SpMV on the H11 spoke-block factors (Fig-6 graph ladder)",
		Note:    "interleaved min-of-9-batches ns/op; speedup is vs the csr baseline on the same matrix",
		Headers: []string{"dataset", "matrix", "layout", "ns/op", "speedup"},
	}
	for _, r := range results {
		t.AddRow(r.Dataset, r.Matrix, r.Layout, r.NsPerOp, fmt.Sprintf("%.2fx", r.Speedup))
	}
	return []*Table{t}, nil
}

// CheckKernels re-measures the layout sweep and compares it against the
// baselines committed in BENCH_kernels.json (bearbench -exp kernels
// -baseline FILE): any layout whose measured speedup falls below 80% of
// its committed speedup fails the gate.
func CheckKernels(cfg Config, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading kernel baselines: %w", err)
	}
	var file struct {
		Baselines []KernelBaseline `json:"baselines"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("bench: parsing kernel baselines %s: %w", baselinePath, err)
	}
	if len(file.Baselines) == 0 {
		return fmt.Errorf("bench: no baselines in %s", baselinePath)
	}
	results, err := measureKernelSweep(cfg)
	if err != nil {
		return err
	}
	measured := make(map[string]KernelResult, len(results))
	for _, r := range results {
		measured[r.Dataset+"/"+r.Matrix+"/"+r.Layout] = r
	}
	var failures []error
	for _, b := range file.Baselines {
		key := b.Dataset + "/" + b.Matrix + "/" + b.Layout
		r, ok := measured[key]
		if !ok {
			failures = append(failures, fmt.Errorf("%s: baseline present but not measured", key))
			continue
		}
		if floor := 0.8 * b.Speedup; r.Speedup < floor {
			failures = append(failures,
				fmt.Errorf("%s: speedup %.2fx below floor %.2fx (80%% of committed %.2fx)",
					key, r.Speedup, floor, b.Speedup))
		}
	}
	return errors.Join(failures...)
}
