package bench

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCosine(t *testing.T) {
	cases := []struct {
		a, b []float64
		want float64
	}{
		{[]float64{1, 0}, []float64{1, 0}, 1},
		{[]float64{1, 0}, []float64{0, 1}, 0},
		{[]float64{1, 0}, []float64{-1, 0}, -1},
		{[]float64{0, 0}, []float64{1, 1}, 0},
		{[]float64{3, 4}, []float64{6, 8}, 1},
	}
	for i, c := range cases {
		if got := Cosine(c.a, c.b); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("case %d: Cosine = %g, want %g", i, got, c.want)
		}
	}
}

func TestL2Error(t *testing.T) {
	if got := L2Error([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Fatalf("identical vectors: L2 = %g", got)
	}
	if got := L2Error([]float64{0, 3}, []float64{4, 0}); got != 5 {
		t.Fatalf("L2 = %g, want 5", got)
	}
}

func TestMetricsPanicOnLengthMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"cosine": func() { Cosine([]float64{1}, []float64{1, 2}) },
		"l2":     func() { L2Error([]float64{1}, []float64{1, 2}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRandomSeeds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seeds := RandomSeeds(100, 10, rng)
	if len(seeds) != 10 {
		t.Fatalf("len = %d", len(seeds))
	}
	seen := map[int]bool{}
	for _, s := range seeds {
		if s < 0 || s >= 100 || seen[s] {
			t.Fatalf("bad seed %d", s)
		}
		seen[s] = true
	}
	if got := RandomSeeds(5, 10, rng); len(got) != 5 {
		t.Fatalf("clamped seeds len = %d", len(got))
	}
}

func TestMultiSeedQuery(t *testing.T) {
	q := MultiSeedQuery(10, []int{1, 3})
	var sum float64
	for _, v := range q {
		sum += v
	}
	if math.Abs(sum-1) > 1e-15 || q[1] != 0.5 || q[3] != 0.5 {
		t.Fatalf("MultiSeedQuery wrong: %v", q)
	}
}

// Property: cosine similarity is scale invariant and bounded.
func TestQuickCosine(t *testing.T) {
	f := func(seed int64, scaleRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i], b[i] = rng.NormFloat64(), rng.NormFloat64()
		}
		c := Cosine(a, b)
		if c < -1-1e-12 || c > 1+1e-12 {
			return false
		}
		scale := 1 + float64(scaleRaw)
		scaled := make([]float64, n)
		for i := range a {
			scaled[i] = scale * a[i]
		}
		return math.Abs(Cosine(scaled, b)-c) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderBars(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Headers: []string{"dataset", "method", "time"},
		Rows: [][]string{
			{"a", "fast", "1.00ms"},
			{"a", "slow", "100.00ms"},
			{"a", "huge", "OOM"},
		},
	}
	var buf bytes.Buffer
	if err := tab.RenderBars(&buf, 2, 20); err != nil {
		t.Fatalf("RenderBars: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "(OOM)") {
		t.Fatalf("missing OOM marker:\n%s", out)
	}
	fast := strings.Count(lineContaining(out, "fast"), "█")
	slow := strings.Count(lineContaining(out, "slow"), "█")
	if slow <= fast {
		t.Fatalf("slow bar (%d) not longer than fast bar (%d):\n%s", slow, fast, out)
	}
	if err := tab.RenderBars(&buf, 99, 20); err == nil {
		t.Fatal("expected out-of-range column error")
	}
	bad := &Table{Headers: []string{"x"}, Rows: [][]string{{"not-a-number!"}}}
	if err := bad.RenderBars(&buf, 0, 20); err == nil {
		t.Fatal("expected parse error")
	}
}

func lineContaining(s, sub string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, sub) {
			return line
		}
	}
	return ""
}

func TestParseCell(t *testing.T) {
	cases := map[string]float64{
		"1.50ms":    1.5e6,
		"2.00s":     2e9,
		"42":        42,
		"3.000e+06": 3e6,
	}
	for in, want := range cases {
		got, err := parseCell(in)
		if err != nil {
			t.Fatalf("parseCell(%q): %v", in, err)
		}
		if math.Abs(got-want) > 1e-6*want {
			t.Fatalf("parseCell(%q) = %g, want %g", in, got, want)
		}
	}
	if _, err := parseCell("garbage!"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestBarColumn(t *testing.T) {
	tab := &Table{
		Headers: []string{"dataset", "method", "preprocess"},
		Rows: [][]string{
			{"a", "x", "1.00ms"},
			{"b", "y", "OOM"},
		},
	}
	if got := tab.BarColumn(); got != 2 {
		t.Fatalf("BarColumn = %d, want 2", got)
	}
	empty := &Table{Headers: []string{"a"}}
	if empty.BarColumn() != -1 {
		t.Fatal("empty table should have no bar column")
	}
}
