package bench

import (
	"errors"
	"fmt"
	"time"

	"bear/internal/core"
	"bear/internal/rwr"
)

// RunAblation quantifies the design choices the paper motivates but does
// not ablate directly: (A) degree-ascending reordering before LU
// (Observation 1), (B) reordering hubs by degree in S before factoring it
// (Algorithm 1 line 7), and (C) the SlashBurn wave size k.
func RunAblation(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	a, err := ablationLUOrdering(cfg)
	if err != nil {
		return nil, err
	}
	b, err := ablationHubOrder(cfg)
	if err != nil {
		return nil, err
	}
	c, err := ablationWaveSize(cfg)
	if err != nil {
		return nil, err
	}
	return []*Table{a, b, c}, nil
}

// ablationLUOrdering compares the LU baseline with and without degree
// reordering: Observation 1 predicts the inverted factors fill in far more
// in natural order.
func ablationLUOrdering(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation A: degree ordering before LU (Observation 1)",
		Note:    "natural order should fill in far more, or blow the memory budget",
		Headers: []string{"dataset", "ordering", "nnz", "bytes", "preprocess"},
	}
	for _, name := range []string{"routing", "web"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		for _, m := range []Method{rwr.LUDecomp{}, rwr.LUDecomp{NaturalOrder: true}} {
			start := time.Now()
			s, err := m.Preprocess(g, cfg.rwrOptions())
			elapsed := time.Since(start)
			if errors.Is(err, rwr.ErrOutOfMemory) {
				t.AddRow(name, m.Name(), oomCell, oomCell, oomCell)
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("ablation %s/%s: %w", name, m.Name(), err)
			}
			t.AddRow(name, m.Name(), s.NNZ(), s.Bytes(), elapsed)
		}
	}
	return t, nil
}

// ablationHubOrder compares BEAR with and without the hub reorder of
// Algorithm 1 line 7, which targets the fill-in of L₂⁻¹/U₂⁻¹.
func ablationHubOrder(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation B: hub reorder before factoring S (Alg 1 line 7)",
		Headers: []string{"dataset", "hub order", "|L2i|+|U2i|", "total nnz", "preprocess", "query"},
	}
	for _, name := range []string{"routing", "trust"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		for _, off := range []bool{false, true} {
			start := time.Now()
			p, err := core.Preprocess(g, core.Options{NoHubOrder: off})
			if err != nil {
				return nil, fmt.Errorf("ablation %s: %w", name, err)
			}
			elapsed := time.Since(start)
			s := &bearSolver{p: p}
			mean, _, err := QueryTiming(s, g.N(), []int{0, g.N() / 2, g.N() - 1})
			if err != nil {
				return nil, err
			}
			label := "on"
			if off {
				label = "off"
			}
			t.AddRow(name, label, p.Stats.NNZL2U2, p.NNZ(), elapsed, mean)
		}
	}
	return t, nil
}

// ablationWaveSize sweeps the SlashBurn wave size k, the one free
// parameter of BEAR's preprocessing (the paper fixes k = 0.001·n as a good
// time/quality trade-off).
func ablationWaveSize(cfg Config) (*Table, error) {
	t := &Table{
		Title:   "Ablation C: SlashBurn wave size k",
		Headers: []string{"dataset", "k/n", "n2", "sum(n1i^2)", "bytes", "preprocess", "query"},
	}
	ratios := []float64{0.0005, 0.001, 0.005, 0.02}
	for _, name := range []string{"routing", "web"} {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		for _, ratio := range ratios {
			start := time.Now()
			p, err := core.Preprocess(g, core.Options{HubRatio: ratio})
			if err != nil {
				return nil, fmt.Errorf("ablation %s k=%g: %w", name, ratio, err)
			}
			elapsed := time.Since(start)
			s := &bearSolver{p: p}
			mean, _, err := QueryTiming(s, g.N(), []int{1, g.N() / 3, g.N() - 2})
			if err != nil {
				return nil, err
			}
			t.AddRow(name, fmt.Sprintf("%g", ratio), p.Stats.N2, p.Stats.SumSqBlocks,
				s.Bytes(), elapsed, mean)
		}
	}
	return t, nil
}
