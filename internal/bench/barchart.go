package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// RenderBars draws the table as a log-scale horizontal bar chart, the
// visual form of the paper's Figures 1, 5, and 12: one bar per row, labeled
// with the leading columns, sized by the value in column valueCol. OOM
// cells render as the paper's omitted bars (an "OOM" marker, no bar).
// Values spanning orders of magnitude stay readable because bars are
// scaled by log10 over the observed range.
func (t *Table) RenderBars(w io.Writer, valueCol int, width int) error {
	if valueCol < 0 || valueCol >= len(t.Headers) {
		return fmt.Errorf("bench: bar column %d out of %d", valueCol, len(t.Headers))
	}
	if width <= 0 {
		width = 40
	}
	type bar struct {
		label string
		text  string
		value float64
		oom   bool
	}
	// Label each bar with the leading non-numeric columns only (dataset,
	// method, parameter), skipping measured columns.
	labelCols := make([]int, 0, valueCol)
	for col := 0; col < valueCol; col++ {
		numeric := true
		for _, row := range t.Rows {
			if col >= len(row) || row[col] == oomCell || row[col] == "-" {
				continue
			}
			if _, err := parseCell(row[col]); err != nil {
				numeric = false
				break
			}
		}
		if !numeric {
			labelCols = append(labelCols, col)
		}
	}
	if len(labelCols) == 0 && valueCol > 0 {
		labelCols = []int{0}
	}
	bars := make([]bar, 0, len(t.Rows))
	minV, maxV := math.Inf(1), math.Inf(-1)
	for _, row := range t.Rows {
		labelParts := make([]string, 0, len(labelCols))
		for _, i := range labelCols {
			if i < len(row) {
				labelParts = append(labelParts, row[i])
			}
		}
		b := bar{label: strings.Join(labelParts, "/"), text: row[valueCol]}
		if row[valueCol] == oomCell {
			b.oom = true
		} else {
			v, err := parseCell(row[valueCol])
			if err != nil {
				return fmt.Errorf("bench: column %q row %q: %v", t.Headers[valueCol], row[valueCol], err)
			}
			b.value = v
			if v > 0 {
				minV = math.Min(minV, v)
				maxV = math.Max(maxV, v)
			}
		}
		bars = append(bars, b)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s — %s (log scale) ==\n", t.Title, t.Headers[valueCol])
	labelWidth := 0
	for _, b := range bars {
		if len(b.label) > labelWidth {
			labelWidth = len(b.label)
		}
	}
	logSpan := 1.0
	if maxV > minV {
		logSpan = math.Log10(maxV) - math.Log10(minV)
	}
	for _, b := range bars {
		fmt.Fprintf(&sb, "%-*s ", labelWidth, b.label)
		switch {
		case b.oom:
			sb.WriteString("(OOM)")
		case b.value <= 0:
			sb.WriteString("|")
		default:
			frac := 1.0
			if maxV > minV {
				frac = (math.Log10(b.value) - math.Log10(minV)) / logSpan
			}
			n := 1 + int(frac*float64(width-1))
			sb.WriteString(strings.Repeat("█", n))
		}
		fmt.Fprintf(&sb, " %s\n", b.text)
	}
	sb.WriteByte('\n')
	_, err := io.WriteString(w, sb.String())
	return err
}

// parseCell interprets a rendered cell as a number: plain numbers,
// scientific notation, or the duration strings formatDuration emits.
func parseCell(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if d, err := time.ParseDuration(s); err == nil {
		return float64(d), nil
	}
	var v float64
	if _, err := fmt.Sscanf(s, "%g", &v); err != nil {
		return 0, fmt.Errorf("cannot parse %q as a number or duration", s)
	}
	return v, nil
}

// BarColumn guesses which column to chart: the first column whose cells
// all parse as numbers/durations (or OOM), searching left to right and
// skipping obvious label columns. Returns -1 if none qualifies.
func (t *Table) BarColumn() int {
	if len(t.Rows) == 0 {
		return -1
	}
	for col := range t.Headers {
		ok := true
		numeric := false
		for _, row := range t.Rows {
			if col >= len(row) {
				ok = false
				break
			}
			if row[col] == oomCell || row[col] == "-" {
				continue
			}
			if _, err := parseCell(row[col]); err != nil {
				ok = false
				break
			}
			numeric = true
		}
		// Integer-looking id columns (n, seeds, ...) still parse; prefer
		// time/size columns by requiring a unit or fractional part in at
		// least one cell.
		if ok && numeric && columnLooksMeasured(t, col) {
			return col
		}
	}
	return -1
}

func columnLooksMeasured(t *Table, col int) bool {
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		c := row[col]
		if strings.ContainsAny(c, "µnmse.") && c != oomCell && c != "-" {
			return true
		}
	}
	return false
}
