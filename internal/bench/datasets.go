package bench

import (
	"fmt"
	"math"

	"bear/internal/graph"
	"bear/internal/graph/gen"
)

// Dataset is a reproducible synthetic workload standing in for one of the
// paper's real datasets (Table 4 / Appendix C). Make builds the graph at a
// size multiplier; scale 1 targets sizes small enough that the full
// experiment suite runs in minutes on a laptop while preserving each
// dataset's structural signature.
type Dataset struct {
	Name     string
	Analogue string // which paper dataset it substitutes, and why it matches
	Make     func(scale float64) *graph.Graph
}

func scaled(base int, scale float64) int {
	n := int(math.Round(float64(base) * scale))
	if n < 8 {
		n = 8
	}
	return n
}

// Datasets returns the synthetic substitutes for the paper's real-world
// graphs, ordered smallest to largest like the paper's figures.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name:     "routing",
			Analogue: "Routing (AS-level internet): heavy-tailed hub structure via preferential attachment",
			Make: func(s float64) *graph.Graph {
				return gen.BarabasiAlbert(scaled(2000, s), 2, 101)
			},
		},
		{
			Name:     "coauthor",
			Analogue: "Co-author: dense communities plus a hub backbone",
			Make: func(s float64) *graph.Graph {
				return gen.CavemanHubs(gen.CavemanHubsConfig{
					Communities: scaled(120, s), Size: 25, PIntra: 0.25,
					Hubs: scaled(40, s), HubDeg: 30, Seed: 102,
				})
			},
		},
		{
			Name:     "email",
			Analogue: "Email: a small high-degree core with a large one-edge periphery",
			Make: func(s float64) *graph.Graph {
				return gen.StarMail(gen.StarMailConfig{
					Core: scaled(40, s), Periphery: scaled(6000, s), LeafDeg: 2, PCore: 0.3, Seed: 103,
				})
			},
		},
		{
			Name:     "trust",
			Analogue: "Trust (Epinions): skewed power-law with moderate locality (R-MAT 0.6)",
			Make: func(s float64) *graph.Graph {
				n := scaled(4000, s)
				return gen.RMAT(gen.NewRMATPul(n, 6*n, 0.6, 104))
			},
		},
		{
			Name:     "web",
			Analogue: "Web-Stan/Web-Notre: strongly local link structure (R-MAT 0.8)",
			Make: func(s float64) *graph.Graph {
				n := scaled(6000, s)
				return gen.RMAT(gen.NewRMATPul(n, 5*n, 0.8, 105))
			},
		},
		{
			Name:     "talk",
			Analogue: "Talk (Wikipedia): huge periphery talking to few hubs",
			Make: func(s float64) *graph.Graph {
				return gen.StarMail(gen.StarMailConfig{
					Core: scaled(80, s), Periphery: scaled(12000, s), LeafDeg: 1, PCore: 0.2, Seed: 106,
				})
			},
		},
	}
}

// DatasetByName looks a dataset up by name.
func DatasetByName(name string) (Dataset, error) {
	for _, d := range Datasets() {
		if d.Name == name {
			return d, nil
		}
	}
	return Dataset{}, fmt.Errorf("bench: unknown dataset %q", name)
}

// RMATFamily returns the five R-MAT graphs of the paper's Fig. 7 /
// Table 4 sweep: equal size, increasing upper-left probability p_ul, hence
// increasingly strong hub-and-spoke structure.
func RMATFamily(scale float64) []Dataset {
	puls := []float64{0.5, 0.6, 0.7, 0.8, 0.9}
	out := make([]Dataset, 0, len(puls))
	for _, pul := range puls {
		pul := pul
		out = append(out, Dataset{
			Name:     fmt.Sprintf("rmat-%.1f", pul),
			Analogue: fmt.Sprintf("R-MAT(p_ul=%.1f) of Table 4", pul),
			Make: func(s float64) *graph.Graph {
				n := scaled(4000, s)
				return gen.RMAT(gen.NewRMATPul(n, 5*n, pul, 107))
			},
		})
	}
	return out
}
