package bench

import (
	"time"

	"bear/internal/core"
	"bear/internal/graph/gen"
)

// RunScaling measures BEAR-Exact preprocessing time, query time, and space
// on preferential-attachment graphs of doubling size at fixed density — a
// supplementary scalability curve in the spirit of the paper's Figure 1.
// Near-linear growth in every column is the expected shape on
// hub-and-spoke graphs (Theorems 2–4 with m ≈ O(n), small n₂).
func RunScaling(cfg Config) ([]*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		Title:   "Scaling: BEAR-Exact cost vs graph size (BA graphs, k=2)",
		Headers: []string{"n", "m", "n2", "preprocess", "query", "bytes"},
	}
	sizes := []int{1000, 2000, 4000, 8000}
	for _, base := range sizes {
		n := scaled(base, cfg.Scale)
		g := gen.BarabasiAlbert(n, 2, 301)
		start := time.Now()
		p, err := core.Preprocess(g, core.Options{})
		if err != nil {
			return nil, err
		}
		prep := time.Since(start)
		s := &bearSolver{p: p}
		seeds := []int{0, n / 2, n - 1}
		mean, _, err := QueryTiming(s, n, seeds)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Stats.N, p.Stats.M, p.Stats.N2, prep, mean, s.Bytes())
	}
	return []*Table{t}, nil
}
