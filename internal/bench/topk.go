package bench

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"time"

	"bear/internal/core"
)

// TopKResult is one measured (dataset, k) cell of the hybrid top-k sweep.
// Speedup is the full-solve path's ns/query divided by the hybrid path's
// ns/query on the same seeds — > 1 means the push-certified path is
// faster. PrunedFrac is the fraction of seeds the push bound certified
// without falling back to the exact block-restricted solve.
type TopKResult struct {
	Dataset    string  `json:"dataset"`
	K          int     `json:"k"`
	HybridNs   float64 `json:"hybrid_ns_per_query"`
	FullNs     float64 `json:"full_ns_per_query"`
	Speedup    float64 `json:"speedup"`
	PrunedFrac float64 `json:"pruned_frac"`
}

// TopKBaseline is one committed speedup floor from BENCH_topk.json; the
// CI gate fails when a (dataset, k) cell's measured speedup falls more
// than 20% below it. As with the kernel gate, the dimensionless ratio
// keeps the gate stable across machines of different absolute speed.
type TopKBaseline struct {
	Dataset string  `json:"dataset"`
	K       int     `json:"k"`
	Speedup float64 `json:"speedup"`
}

// topKSweepDatasets are the benchmark families the hybrid sweep runs on:
// the paper ladder's small/medium members plus the hub-heavy email
// analogue, where local push concentrates mass fastest.
var topKSweepDatasets = []string{"routing", "email", "web"}

// topKSweepKs are the result sizes measured; 10 is the headline cell the
// acceptance gate cares about.
var topKSweepKs = []int{1, 10, 100}

// measureTopKSweep builds one Dynamic per dataset and times, for each k,
// the hybrid QueryTopK path against the full-solve-then-rank path over
// the same random seeds. The two paths are interleaved round-robin —
// whole passes over the seed set — and each reports its best round, the
// same min-of-batches protocol measureLayoutsNs uses and for the same
// reason: back-to-back timing lets one slow host phase fabricate a
// speedup.
func measureTopKSweep(cfg Config) ([]TopKResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	const rounds = 5
	var out []TopKResult
	for _, name := range topKSweepDatasets {
		d, err := DatasetByName(name)
		if err != nil {
			return nil, err
		}
		g := d.Make(cfg.Scale)
		dyn, err := core.NewDynamic(g, core.Options{})
		if err != nil {
			return nil, fmt.Errorf("topk %s: %w", name, err)
		}
		seeds := RandomSeeds(g.N(), cfg.QuerySeeds, rng)
		for _, k := range topKSweepKs {
			if k >= g.N() {
				continue
			}
			// Warm both paths once so cache population (the normalized
			// adjacency on the hybrid side) is not charged to round 1.
			if _, err := dyn.QueryTopK(seeds[0], k); err != nil {
				return nil, fmt.Errorf("topk %s k=%d: %w", name, k, err)
			}
			if _, err := dyn.Query(seeds[0]); err != nil {
				return nil, err
			}
			bestHybrid, bestFull := math.Inf(1), math.Inf(1)
			pruned := 0
			for b := 0; b < rounds; b++ {
				start := time.Now()
				roundPruned := 0
				for _, seed := range seeds {
					res, err := dyn.QueryTopK(seed, k)
					if err != nil {
						return nil, fmt.Errorf("topk %s k=%d seed %d: %w", name, k, seed, err)
					}
					if res.Stats.Pruned {
						roundPruned++
					}
				}
				if ns := float64(time.Since(start).Nanoseconds()) / float64(len(seeds)); ns < bestHybrid {
					bestHybrid = ns
				}
				pruned = roundPruned

				start = time.Now()
				for _, seed := range seeds {
					scores, err := dyn.Query(seed)
					if err != nil {
						return nil, err
					}
					core.TopK(scores, k)
				}
				if ns := float64(time.Since(start).Nanoseconds()) / float64(len(seeds)); ns < bestFull {
					bestFull = ns
				}
			}
			out = append(out, TopKResult{
				Dataset: name, K: k,
				HybridNs: bestHybrid, FullNs: bestFull,
				Speedup:    bestFull / bestHybrid,
				PrunedFrac: float64(pruned) / float64(len(seeds)),
			})
		}
	}
	return out, nil
}

// RunTopK compares the hybrid push-certified top-k path against the
// full-solve-then-rank path (bearbench -exp topk). The committed headline
// numbers live in BENCH_topk.json.
func RunTopK(cfg Config) ([]*Table, error) {
	results, err := measureTopKSweep(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		Title:   "Hybrid top-k: push-certified bounds vs full solve",
		Note:    "interleaved min-of-5-rounds ns/query; pruned is the fraction of seeds certified without an exact solve",
		Headers: []string{"dataset", "k", "hybrid ns/q", "full ns/q", "speedup", "pruned"},
	}
	for _, r := range results {
		t.AddRow(r.Dataset, r.K,
			fmt.Sprintf("%.0f", r.HybridNs), fmt.Sprintf("%.0f", r.FullNs),
			fmt.Sprintf("%.2fx", r.Speedup), fmt.Sprintf("%.0f%%", 100*r.PrunedFrac))
	}
	return []*Table{t}, nil
}

// CheckTopK re-measures the hybrid sweep and compares it against the
// baselines committed in BENCH_topk.json (bearbench -exp topk -baseline
// FILE): any (dataset, k) cell whose measured speedup falls below 80% of
// its committed speedup fails the gate.
func CheckTopK(cfg Config, baselinePath string) error {
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		return fmt.Errorf("bench: reading topk baselines: %w", err)
	}
	var file struct {
		Baselines []TopKBaseline `json:"baselines"`
	}
	if err := json.Unmarshal(raw, &file); err != nil {
		return fmt.Errorf("bench: parsing topk baselines %s: %w", baselinePath, err)
	}
	if len(file.Baselines) == 0 {
		return fmt.Errorf("bench: no baselines in %s", baselinePath)
	}
	results, err := measureTopKSweep(cfg)
	if err != nil {
		return err
	}
	measured := make(map[string]TopKResult, len(results))
	for _, r := range results {
		measured[fmt.Sprintf("%s/k=%d", r.Dataset, r.K)] = r
	}
	var failures []error
	for _, b := range file.Baselines {
		key := fmt.Sprintf("%s/k=%d", b.Dataset, b.K)
		r, ok := measured[key]
		if !ok {
			failures = append(failures, fmt.Errorf("%s: baseline present but not measured", key))
			continue
		}
		if floor := 0.8 * b.Speedup; r.Speedup < floor {
			failures = append(failures,
				fmt.Errorf("%s: speedup %.2fx below floor %.2fx (80%% of committed %.2fx)",
					key, r.Speedup, floor, b.Speedup))
		}
	}
	return errors.Join(failures...)
}
