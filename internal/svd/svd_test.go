package svd

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bear/internal/dense"
	"bear/internal/sparse"
)

// lowRankSparse builds an exactly rank-r p×q sparse matrix as a sum of r
// sparse outer products.
func lowRankSparse(rng *rand.Rand, p, q, r int) *sparse.CSR {
	acc := dense.New(p, q)
	for k := 0; k < r; k++ {
		u := make([]float64, p)
		v := make([]float64, q)
		for i := range u {
			if rng.Float64() < 0.4 {
				u[i] = rng.NormFloat64()
			}
		}
		for j := range v {
			if rng.Float64() < 0.4 {
				v[j] = rng.NormFloat64()
			}
		}
		for i := 0; i < p; i++ {
			if u[i] == 0 {
				continue
			}
			for j := 0; j < q; j++ {
				acc.Data[i*q+j] += u[i] * v[j]
			}
		}
	}
	return sparse.FromDense(p, q, acc.Data)
}

func frobenius(m *dense.Matrix) float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}

func diffNorm(a *sparse.CSR, approx *dense.Matrix) float64 {
	ad := a.Dense()
	var s float64
	for i := range ad {
		d := ad[i] - approx.Data[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestTruncatedRecoversLowRank(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		p, q, r := 20+rng.Intn(30), 20+rng.Intn(30), 1+rng.Intn(4)
		a := lowRankSparse(rng, p, q, r)
		res, err := Truncated(a, r+3, 6, 7)
		if err != nil {
			t.Fatalf("Truncated: %v", err)
		}
		norm := frobenius(dense.NewFrom(a.R, a.C, a.Dense()))
		if norm == 0 {
			continue
		}
		if rel := diffNorm(a, res.Reconstruct()) / norm; rel > 1e-8 {
			t.Fatalf("trial %d: rank-%d matrix not recovered, rel err %g", trial, r, rel)
		}
	}
}

func TestTruncatedOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := lowRankSparse(rng, 40, 30, 5)
	res, err := Truncated(a, 5, 6, 3)
	if err != nil {
		t.Fatalf("Truncated: %v", err)
	}
	for _, m := range []*dense.Matrix{res.U, res.V} {
		g := dense.Mul(m.Transpose(), m)
		for i := 0; i < g.R; i++ {
			for j := 0; j < g.C; j++ {
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(g.At(i, j)-want) > 1e-8 {
					t.Fatalf("factor not orthonormal at (%d,%d): %g", i, j, g.At(i, j))
				}
			}
		}
	}
}

func TestTruncatedSingularValuesSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := lowRankSparse(rng, 50, 50, 8)
	res, err := Truncated(a, 8, 6, 4)
	if err != nil {
		t.Fatalf("Truncated: %v", err)
	}
	for i := 1; i < len(res.S); i++ {
		if res.S[i] > res.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", res.S)
		}
		if res.S[i] <= 0 {
			t.Fatalf("non-positive singular value %g", res.S[i])
		}
	}
}

func TestTruncatedErrorDecreasesWithRank(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A full-rank-ish random sparse matrix.
	var coords []sparse.Coord
	for i := 0; i < 60; i++ {
		for j := 0; j < 60; j++ {
			if rng.Float64() < 0.2 {
				coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	a := sparse.NewCSR(60, 60, coords)
	prev := math.Inf(1)
	for _, rank := range []int{2, 8, 20, 40} {
		res, err := Truncated(a, rank, 6, 5)
		if err != nil {
			t.Fatalf("rank %d: %v", rank, err)
		}
		e := diffNorm(a, res.Reconstruct())
		if e > prev+1e-9 {
			t.Fatalf("error increased from %g to %g at rank %d", prev, e, rank)
		}
		prev = e
	}
}

func TestTruncatedZeroMatrix(t *testing.T) {
	a := sparse.NewCSR(10, 10, nil)
	res, err := Truncated(a, 3, 4, 6)
	if err != nil {
		t.Fatalf("Truncated: %v", err)
	}
	if res.Rank() != 0 {
		t.Fatalf("zero matrix produced rank %d", res.Rank())
	}
}

func TestTruncatedValidation(t *testing.T) {
	a := sparse.Identity(5)
	if _, err := Truncated(a, 0, 4, 1); err == nil {
		t.Fatal("expected rank validation error")
	}
	// Requested rank above min(p, q) clamps rather than failing.
	res, err := Truncated(a, 50, 4, 1)
	if err != nil {
		t.Fatalf("Truncated: %v", err)
	}
	if res.Rank() > 5 {
		t.Fatalf("rank %d above matrix dimension", res.Rank())
	}
}

// Property: the rank-k truncation error never exceeds ‖A‖_F and hits ~0
// when k reaches the true rank.
func TestQuickTruncatedBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, q := 15+rng.Intn(20), 15+rng.Intn(20)
		r := 1 + rng.Intn(3)
		a := lowRankSparse(rng, p, q, r)
		norm := frobenius(dense.NewFrom(a.R, a.C, a.Dense()))
		res, err := Truncated(a, r, 6, seed)
		if err != nil {
			return false
		}
		e := diffNorm(a, res.Reconstruct())
		return e <= norm*1e-6+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
