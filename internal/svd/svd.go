// Package svd computes truncated singular value decompositions of sparse
// matrices by subspace (block power) iteration. B_LIN and NB_LIN use it as
// the principled alternative to their partition-mean heuristic
// decomposition — the choice Tong et al. discuss and the BEAR paper's
// Section 4.1 mentions ("the heuristic decomposition method proposed in
// their paper, which is much faster with little difference in accuracy
// compared with SVD").
package svd

import (
	"fmt"
	"math"
	"math/rand"

	"bear/internal/dense"
	"bear/internal/sparse"
)

// Result is a rank-t factorization A ≈ U diag(S) Vᵀ with U (p×t) and
// V (q×t) having orthonormal columns and S sorted descending.
type Result struct {
	U *dense.Matrix
	S []float64
	V *dense.Matrix
}

// Rank returns the number of retained singular triplets.
func (r *Result) Rank() int { return len(r.S) }

// Reconstruct materializes U diag(S) Vᵀ densely (for tests and small
// matrices only).
func (r *Result) Reconstruct() *dense.Matrix {
	us := r.U.Clone()
	t := len(r.S)
	for i := 0; i < us.R; i++ {
		for j := 0; j < t; j++ {
			us.Data[i*us.C+j] *= r.S[j]
		}
	}
	return dense.Mul(us, r.V.Transpose())
}

// Truncated computes a rank-t approximation of a by subspace iteration:
// an orthonormal basis Q of the dominant column space is refined with
// iters rounds of Q ← orth(A Aᵀ Q), then the small projected matrix
// Qᵀ A is resolved exactly through a symmetric eigendecomposition.
// Singular values below droptol·σ₁ are discarded, so the returned rank
// can be below t. iters ≤ 0 selects 4, enough for the spectra RWR
// matrices exhibit.
func Truncated(a *sparse.CSR, t, iters int, seed int64) (*Result, error) {
	p, q := a.Dims()
	if t <= 0 {
		return nil, fmt.Errorf("svd: rank %d must be positive", t)
	}
	if t > p {
		t = p
	}
	if t > q {
		t = q
	}
	if iters <= 0 {
		iters = 4
	}
	rng := rand.New(rand.NewSource(seed))

	// Q = orth(A Ω), Ω gaussian q×t.
	omega := dense.New(q, t)
	for i := range omega.Data {
		omega.Data[i] = rng.NormFloat64()
	}
	qmat := mulSparseDense(a, omega)
	dense.OrthonormalizeColumns(qmat)
	for it := 0; it < iters; it++ {
		z := mulSparseTDense(a, qmat) // Aᵀ Q, q×t
		qmat = mulSparseDense(a, z)   // A Aᵀ Q, p×t
		dense.OrthonormalizeColumns(qmat)
	}

	// B = Qᵀ A is t×q; its Gram matrix B Bᵀ is t×t and symmetric.
	bt := mulSparseTDense(a, qmat) // Bᵀ = Aᵀ Q, q×t
	gram := dense.Mul(bt.Transpose(), bt)
	eig, w, err := dense.SymEigen(gram)
	if err != nil {
		return nil, fmt.Errorf("svd: projected eigenproblem: %w", err)
	}

	const droptol = 1e-12
	var sigma []float64
	for _, l := range eig {
		if l <= 0 {
			break
		}
		s := math.Sqrt(l)
		if len(sigma) > 0 && s < droptol*sigma[0] {
			break
		}
		sigma = append(sigma, s)
	}
	k := len(sigma)
	if k == 0 {
		return &Result{U: dense.New(p, 0), S: nil, V: dense.New(q, 0)}, nil
	}

	// U = Q W[:, :k]; V columns are Aᵀ u_i / σ_i = Bᵀ w_i / σ_i.
	wk := dense.New(t, k)
	for i := 0; i < t; i++ {
		copy(wk.Data[i*k:(i+1)*k], w.Data[i*t:i*t+k])
	}
	u := dense.Mul(qmat, wk)
	v := dense.Mul(bt, wk)
	for j := 0; j < k; j++ {
		inv := 1 / sigma[j]
		for i := 0; i < q; i++ {
			v.Data[i*k+j] *= inv
		}
	}
	return &Result{U: u, S: sigma, V: v}, nil
}

// mulSparseDense computes A X for sparse A (p×q) and dense X (q×t).
func mulSparseDense(a *sparse.CSR, x *dense.Matrix) *dense.Matrix {
	p, q := a.Dims()
	if x.R != q {
		panic(fmt.Sprintf("svd: shape mismatch %dx%d * %dx%d", p, q, x.R, x.C))
	}
	t := x.C
	out := dense.New(p, t)
	for i := 0; i < p; i++ {
		cols, vals := a.Row(i)
		orow := out.Data[i*t : (i+1)*t]
		for k, j := range cols {
			av := vals[k]
			xrow := x.Data[j*t : (j+1)*t]
			for c := 0; c < t; c++ {
				orow[c] += av * xrow[c]
			}
		}
	}
	return out
}

// mulSparseTDense computes Aᵀ X for sparse A (p×q) and dense X (p×t).
func mulSparseTDense(a *sparse.CSR, x *dense.Matrix) *dense.Matrix {
	p, q := a.Dims()
	if x.R != p {
		panic(fmt.Sprintf("svd: shape mismatch %dx%d^T * %dx%d", p, q, x.R, x.C))
	}
	t := x.C
	out := dense.New(q, t)
	for i := 0; i < p; i++ {
		cols, vals := a.Row(i)
		xrow := x.Data[i*t : (i+1)*t]
		for k, j := range cols {
			av := vals[k]
			orow := out.Data[j*t : (j+1)*t]
			for c := 0; c < t; c++ {
				orow[c] += av * xrow[c]
			}
		}
	}
	return out
}
