package sparse

import (
	"math/rand"
	"testing"
)

func equalCSR(a, b *CSR) bool {
	if a.R != b.R || a.C != b.C || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.R; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// TestSpliceRowsMatchesRebuild checks SpliceRows against the oracle of
// reassembling the whole matrix from coordinates with the spliced ranges
// substituted: identical pattern and identical bits.
func TestSpliceRowsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rng.Intn(30)
		m := randomCSR(rng, n, n, 0.2)
		// One or two disjoint ranges, each spliced with a block whose
		// column window sits at the diagonal (the factor-splice shape).
		var splices []RowSplice
		lo := rng.Intn(n / 2)
		sz := 1 + rng.Intn(n/2-lo)
		splices = append(splices, RowSplice{Lo: lo, ColOffset: lo, Block: randomCSR(rng, sz, sz, 0.4)})
		if hi := lo + sz; hi < n-1 && rng.Intn(2) == 0 {
			lo2 := hi + rng.Intn(n-hi-1)
			sz2 := 1 + rng.Intn(n-lo2)
			splices = append(splices, RowSplice{Lo: lo2, ColOffset: lo2, Block: randomCSR(rng, sz2, sz2, 0.4)})
		}
		got := m.SpliceRows(splices)

		var want []Coord
		covered := func(i int) (RowSplice, bool) {
			for _, sp := range splices {
				if i >= sp.Lo && i < sp.Lo+sp.Block.R {
					return sp, true
				}
			}
			return RowSplice{}, false
		}
		for i := 0; i < n; i++ {
			if sp, ok := covered(i); ok {
				bi := i - sp.Lo
				for k := sp.Block.RowPtr[bi]; k < sp.Block.RowPtr[bi+1]; k++ {
					want = append(want, Coord{Row: i, Col: sp.Block.ColIdx[k] + sp.ColOffset, Val: sp.Block.Val[k]})
				}
				continue
			}
			for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
				want = append(want, Coord{Row: i, Col: m.ColIdx[k], Val: m.Val[k]})
			}
		}
		if !equalCSR(got, NewCSR(n, n, want)) {
			t.Fatalf("trial %d: SpliceRows differs from reassembly", trial)
		}
	}
}

func TestSpliceRowsDoesNotMutateReceiver(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 12, 12, 0.3)
	before := m.Clone()
	m.SpliceRows([]RowSplice{{Lo: 4, ColOffset: 4, Block: randomCSR(rng, 5, 5, 0.5)}})
	if !equalCSR(m, before) {
		t.Fatal("SpliceRows mutated its receiver")
	}
}

func TestSpliceRowsPanicsOnBadRanges(t *testing.T) {
	m := randomCSR(rand.New(rand.NewSource(1)), 8, 8, 0.3)
	for _, splices := range [][]RowSplice{
		{{Lo: 6, ColOffset: 6, Block: randomCSR(rand.New(rand.NewSource(2)), 4, 4, 0.5)}}, // past the end
		{{Lo: 2, ColOffset: 2, Block: randomCSR(rand.New(rand.NewSource(2)), 3, 3, 0.5)},
			{Lo: 3, ColOffset: 3, Block: randomCSR(rand.New(rand.NewSource(2)), 2, 2, 0.5)}}, // overlap
		{{Lo: 2, ColOffset: 7, Block: randomCSR(rand.New(rand.NewSource(2)), 3, 3, 0.5)}}, // cols out of range
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SpliceRows(%v) did not panic", splices)
				}
			}()
			m.SpliceRows(splices)
		}()
	}
}

// TestReplaceColumnsMatchesRebuild checks ReplaceColumns against full
// reassembly: entries outside the replaced columns keep their bits,
// entries inside come solely from the replacement set.
func TestReplaceColumnsMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		r := 5 + rng.Intn(20)
		c := 5 + rng.Intn(20)
		m := randomCSR(rng, r, c, 0.25)
		var cols []int
		for j := 0; j < c; j++ {
			if rng.Float64() < 0.3 {
				cols = append(cols, j)
			}
		}
		var repl []Coord
		for _, j := range cols {
			for i := 0; i < r; i++ {
				if rng.Float64() < 0.3 {
					repl = append(repl, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
				}
			}
		}
		got := m.ReplaceColumns(cols, repl)

		inSet := make(map[int]bool, len(cols))
		for _, j := range cols {
			inSet[j] = true
		}
		var want []Coord
		for k, co := range m.Coords() {
			_ = k
			if !inSet[co.Col] {
				want = append(want, co)
			}
		}
		want = append(want, repl...)
		if !equalCSR(got, NewCSR(r, c, want)) {
			t.Fatalf("trial %d: ReplaceColumns differs from reassembly", trial)
		}
	}
}

func TestReplaceColumnsPanicsOnStrayEntry(t *testing.T) {
	m := randomCSR(rand.New(rand.NewSource(5)), 6, 6, 0.4)
	defer func() {
		if recover() == nil {
			t.Fatal("ReplaceColumns with an entry outside the column set did not panic")
		}
	}()
	m.ReplaceColumns([]int{2}, []Coord{{Row: 1, Col: 3, Val: 1}})
}
