package sparse

import (
	"fmt"
	"math"
	"sort"
)

// MulVec computes y = A x and returns y as a new slice.
func (m *CSR) MulVec(x []float64) []float64 {
	y := make([]float64, m.R)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = A x into the provided slice, which must have
// length m.R. x must have length m.C.
func (m *CSR) MulVecTo(y, x []float64) {
	if len(x) != m.C || len(y) != m.R {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m.R, m.C, len(x), len(y)))
	}
	for i := 0; i < m.R; i++ {
		var s float64
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		val := m.Val[ks:ke]
		col := m.ColIdx[ks:ke:ke]
		for j, v := range val {
			s += v * x[col[j]]
		}
		y[i] = s
	}
}

// MulVec computes y = A x and returns y as a new slice.
func (m *CSC) MulVec(x []float64) []float64 {
	y := make([]float64, m.R)
	m.MulVecTo(y, x)
	return y
}

// MulVecTo computes y = A x into the provided slice (scatter by column).
func (m *CSC) MulVecTo(y, x []float64) {
	if len(x) != m.C || len(y) != m.R {
		panic(fmt.Sprintf("sparse: MulVec shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m.R, m.C, len(x), len(y)))
	}
	for i := range y {
		y[i] = 0
	}
	for j := 0; j < m.C; j++ {
		xj := x[j]
		if xj == 0 {
			continue
		}
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			y[m.RowIdx[k]] += m.Val[k] * xj
		}
	}
}

// MulVecRangeTo computes rows [lo, hi) of y = A x, writing only y[lo:hi]
// and leaving the rest of y untouched. It is the row-restricted kernel the
// BEAR single-seed fast path uses on block-diagonal factors: when x is
// supported on one diagonal block, only that block's rows of the product
// can be nonzero (Lemma 1 of the paper), so the remaining rows need not be
// computed at all. For the rows it does compute, the accumulation order is
// identical to MulVecTo, so the written entries are bit-identical.
func (m *CSR) MulVecRangeTo(y, x []float64, lo, hi int) {
	if len(x) != m.C || len(y) != m.R {
		panic(fmt.Sprintf("sparse: MulVecRangeTo shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m.R, m.C, len(x), len(y)))
	}
	if lo < 0 || hi > m.R || lo > hi {
		panic(fmt.Sprintf("sparse: MulVecRangeTo rows [%d,%d) out of %d", lo, hi, m.R))
	}
	for i := lo; i < hi; i++ {
		var s float64
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		val := m.Val[ks:ke]
		col := m.ColIdx[ks:ke:ke]
		for j, v := range val {
			s += v * x[col[j]]
		}
		y[i] = s
	}
}

// MulVecColRangeTo computes y = A[:, lo:hi] · x[lo:hi]: every row of y is
// written, but each row's accumulation visits only the stored entries whose
// column index falls in [lo, hi), located by binary search within the
// row's sorted column indices. When x is exactly zero outside [lo, hi) the
// nonzero terms and their order match MulVecTo, so any entry that MulVecTo
// would compute as nonzero is bit-identical (skipped ±0 terms can at most
// flip the sign of an exact zero).
func (m *CSR) MulVecColRangeTo(y, x []float64, lo, hi int) {
	if len(x) != m.C || len(y) != m.R {
		panic(fmt.Sprintf("sparse: MulVecColRangeTo shape mismatch: A is %dx%d, len(x)=%d, len(y)=%d", m.R, m.C, len(x), len(y)))
	}
	if lo < 0 || hi > m.C || lo > hi {
		panic(fmt.Sprintf("sparse: MulVecColRangeTo cols [%d,%d) out of %d", lo, hi, m.C))
	}
	for i := 0; i < m.R; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		k := ks + sort.SearchInts(m.ColIdx[ks:ke], lo)
		var s float64
		for ; k < ke && m.ColIdx[k] < hi; k++ {
			s += m.Val[k] * x[m.ColIdx[k]]
		}
		y[i] = s
	}
}

// MulVecT computes y = Aᵀ x for a CSR matrix without materializing the
// transpose. x must have length m.R; the result has length m.C.
func (m *CSR) MulVecT(x []float64) []float64 {
	if len(x) != m.R {
		panic(fmt.Sprintf("sparse: MulVecT shape mismatch: A is %dx%d, len(x)=%d", m.R, m.C, len(x)))
	}
	y := make([]float64, m.C)
	for i := 0; i < m.R; i++ {
		xi := x[i]
		if xi == 0 {
			continue
		}
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			y[m.ColIdx[k]] += m.Val[k] * xi
		}
	}
	return y
}

// Scale multiplies every stored entry by a, in place, and returns m.
func (m *CSR) Scale(a float64) *CSR {
	for i := range m.Val {
		m.Val[i] *= a
	}
	return m
}

// Scale multiplies every stored entry by a, in place, and returns m.
func (m *CSC) Scale(a float64) *CSC {
	for i := range m.Val {
		m.Val[i] *= a
	}
	return m
}

// Add returns a + b. Shapes must match.
func Add(a, b *CSR) *CSR { return addScaled(a, b, 1) }

// Sub returns a - b. Shapes must match.
func Sub(a, b *CSR) *CSR { return addScaled(a, b, -1) }

func addScaled(a, b *CSR, beta float64) *CSR {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("sparse: add shape mismatch %dx%d vs %dx%d", a.R, a.C, b.R, b.C))
	}
	out := &CSR{R: a.R, C: a.C, RowPtr: make([]int, a.R+1)}
	out.ColIdx = make([]int, 0, a.NNZ()+b.NNZ())
	out.Val = make([]float64, 0, a.NNZ()+b.NNZ())
	for i := 0; i < a.R; i++ {
		ka, ea := a.RowPtr[i], a.RowPtr[i+1]
		kb, eb := b.RowPtr[i], b.RowPtr[i+1]
		for ka < ea || kb < eb {
			switch {
			case kb >= eb || (ka < ea && a.ColIdx[ka] < b.ColIdx[kb]):
				out.ColIdx = append(out.ColIdx, a.ColIdx[ka])
				out.Val = append(out.Val, a.Val[ka])
				ka++
			case ka >= ea || b.ColIdx[kb] < a.ColIdx[ka]:
				out.ColIdx = append(out.ColIdx, b.ColIdx[kb])
				out.Val = append(out.Val, beta*b.Val[kb])
				kb++
			default:
				out.ColIdx = append(out.ColIdx, a.ColIdx[ka])
				out.Val = append(out.Val, a.Val[ka]+beta*b.Val[kb])
				ka++
				kb++
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Drop removes stored entries with |v| < tol and returns a new matrix.
// This is the BEAR-Approx sparsification step (Algorithm 1, line 9).
func (m *CSR) Drop(tol float64) *CSR {
	out := &CSR{R: m.R, C: m.C, RowPtr: make([]int, m.R+1)}
	out.ColIdx = make([]int, 0, m.NNZ())
	out.Val = make([]float64, 0, m.NNZ())
	for i := 0; i < m.R; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			if math.Abs(m.Val[k]) >= tol {
				out.ColIdx = append(out.ColIdx, m.ColIdx[k])
				out.Val = append(out.Val, m.Val[k])
			}
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// Drop removes stored entries with |v| < tol and returns a new matrix.
func (m *CSC) Drop(tol float64) *CSC {
	t := &CSR{R: m.C, C: m.R, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	d := t.Drop(tol)
	return &CSC{R: m.R, C: m.C, ColPtr: d.RowPtr, RowIdx: d.ColIdx, Val: d.Val}
}

// Prune removes exactly-zero stored entries.
func (m *CSR) Prune() *CSR { return m.Drop(math.SmallestNonzeroFloat64) }

// MaxAbs returns the largest absolute stored value, or 0 for an empty matrix.
func (m *CSR) MaxAbs() float64 {
	var mx float64
	for _, v := range m.Val {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Row returns the column indices and values of row i, aliasing internal
// storage. Callers must not modify the returned slices.
func (m *CSR) Row(i int) (cols []int, vals []float64) {
	if i < 0 || i >= m.R {
		panic(fmt.Sprintf("sparse: row %d out of %d", i, m.R))
	}
	return m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]], m.Val[m.RowPtr[i]:m.RowPtr[i+1]]
}

// Col returns the row indices and values of column j, aliasing internal
// storage. Callers must not modify the returned slices.
func (m *CSC) Col(j int) (rows []int, vals []float64) {
	if j < 0 || j >= m.C {
		panic(fmt.Sprintf("sparse: col %d out of %d", j, m.C))
	}
	return m.RowIdx[m.ColPtr[j]:m.ColPtr[j+1]], m.Val[m.ColPtr[j]:m.ColPtr[j+1]]
}

// Dense expands the matrix into a row-major dense buffer of length R*C.
func (m *CSR) Dense() []float64 {
	out := make([]float64, m.R*m.C)
	for i := 0; i < m.R; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out[i*m.C+m.ColIdx[k]] = m.Val[k]
		}
	}
	return out
}

// Dense expands the matrix into a row-major dense buffer of length R*C.
func (m *CSC) Dense() []float64 {
	out := make([]float64, m.R*m.C)
	for j := 0; j < m.C; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			out[m.RowIdx[k]*m.C+j] = m.Val[k]
		}
	}
	return out
}

// FromDense builds a CSR from a row-major dense buffer, storing entries
// with |v| > 0.
func FromDense(r, c int, data []float64) *CSR {
	if len(data) != r*c {
		panic(fmt.Sprintf("sparse: FromDense needs %d values, got %d", r*c, len(data)))
	}
	m := &CSR{R: r, C: c, RowPtr: make([]int, r+1)}
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if v := data[i*c+j]; v != 0 {
				m.ColIdx = append(m.ColIdx, j)
				m.Val = append(m.Val, v)
			}
		}
		m.RowPtr[i+1] = len(m.ColIdx)
	}
	return m
}
