package sparse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
)

// parallelMulMinWork is the estimated flop count below which ParallelMul
// runs sequentially: for skinny products (e.g. the n₁×n₂ Schur-complement
// operands in Preprocess, where n₂ ≪ n₁) the goroutine spawn plus the
// per-worker accumulator allocations cost more than the multiply itself.
const parallelMulMinWork = 1 << 15

// ParallelMul computes C = A B like Mul, fanning row ranges of A out over
// the shared worker pool (workers 0 selects GOMAXPROCS). The result is
// bit-identical to Mul for any workers value: each output row is produced
// by exactly one range with the same per-row arithmetic order, and the
// range boundaries depend only on (a, workers), never on scheduling.
//
// Row ranges are cut by SplitNNZ so each range carries a similar share of
// A's stored entries, and products whose estimated work — a.NNZ() times
// the average row density of b — falls below a minimum threshold fall back
// to the sequential Mul, so skinny matrices never pay scratch setup they
// cannot amortize.
func ParallelMul(a, b *CSR, workers int) *CSR {
	if a.C != b.R {
		panic(fmt.Sprintf("sparse: Mul shape mismatch %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > a.R {
		workers = a.R
	}
	if workers > 1 {
		// Estimated multiply-adds: each stored a-entry (i,k) expands into
		// nnz(b row k) products; approximate with b's mean row density.
		work := float64(a.NNZ())
		if b.R > 0 {
			work *= float64(b.NNZ()) / float64(b.R)
		}
		if work < parallelMulMinWork {
			workers = 1
		}
	}
	if workers <= 1 {
		return Mul(a, b)
	}
	type rowRange struct {
		lo, hi int
		colIdx []int
		val    []float64
		rowLen []int
	}
	cuts := SplitNNZ(a.RowPtr, workers)
	ranges := make([]rowRange, workers)
	DefaultPool().Run(workers, func(w int) {
		rr := &ranges[w]
		rr.lo, rr.hi = cuts[w], cuts[w+1]
		rr.rowLen = make([]int, rr.hi-rr.lo)
		if rr.lo == rr.hi {
			return // a single heavy row can leave neighbouring ranges empty
		}
		acc := make([]float64, b.C)
		mark := make([]int, b.C)
		for i := range mark {
			mark[i] = -1
		}
		var rowCols []int
		for i := rr.lo; i < rr.hi; i++ {
			rowCols = rowCols[:0]
			for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
				j := a.ColIdx[ka]
				av := a.Val[ka]
				for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
					col := b.ColIdx[kb]
					if mark[col] != i {
						mark[col] = i
						acc[col] = 0
						rowCols = append(rowCols, col)
					}
					acc[col] += av * b.Val[kb]
				}
			}
			sort.Ints(rowCols)
			for _, col := range rowCols {
				rr.colIdx = append(rr.colIdx, col)
				rr.val = append(rr.val, acc[col])
			}
			rr.rowLen[i-rr.lo] = len(rowCols)
		}
	})

	out := &CSR{R: a.R, C: b.C, RowPtr: make([]int, a.R+1)}
	total := 0
	for _, rr := range ranges {
		total += len(rr.colIdx)
	}
	if total > 0 {
		// Keep nil buffers for empty products, matching Mul exactly.
		out.ColIdx = make([]int, 0, total)
		out.Val = make([]float64, 0, total)
	}
	for _, rr := range ranges {
		for i := rr.lo; i < rr.hi; i++ {
			out.RowPtr[i+1] = out.RowPtr[i] + rr.rowLen[i-rr.lo]
		}
		out.ColIdx = append(out.ColIdx, rr.colIdx...)
		out.Val = append(out.Val, rr.val...)
	}
	return out
}

// BlockDiagLUInverse factors each diagonal block of a block-diagonal CSC
// matrix independently (Lemma 1 of the paper) across workers goroutines
// and returns L⁻¹ and U⁻¹ assembled in CSR form. blocks lists the
// consecutive block sizes, which must sum to the matrix dimension. Results
// are bit-identical to LU + InverseLower/InverseUpper on the whole matrix,
// since Gilbert–Peierls never mixes arithmetic across blocks.
func BlockDiagLUInverse(a *CSC, blocks []int, workers int) (linv, uinv *CSR, err error) {
	return BlockDiagLUInverseCancel(a, blocks, workers, nil)
}

// BlockDiagLUInverseCancel is BlockDiagLUInverse with a cooperative abort
// hook: stop is polled once per block, before that block's factorization
// starts, and a non-nil return abandons the remaining blocks and is
// returned verbatim (so callers can match it with errors.Is through any
// wrapping). A nil stop never aborts. Blocks already in flight run to
// completion — factorization of one block is short relative to the whole
// pass, so the abort latency is one block, not the full matrix.
func BlockDiagLUInverseCancel(a *CSC, blocks []int, workers int, stop func() error) (linv, uinv *CSR, err error) {
	if a.R != a.C {
		panic("sparse: BlockDiagLUInverse requires a square matrix")
	}
	total := 0
	for _, b := range blocks {
		if b <= 0 {
			panic(fmt.Sprintf("sparse: non-positive block size %d", b))
		}
		total += b
	}
	if total != a.C {
		panic(fmt.Sprintf("sparse: blocks sum to %d, matrix is %d", total, a.C))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	offsets := make([]int, len(blocks))
	off := 0
	for i, b := range blocks {
		offsets[i] = off
		off += b
	}
	type result struct {
		linv, uinv *CSR
		err        error
	}
	results := make([]result, len(blocks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for bi := range blocks {
		wg.Add(1)
		go func(bi int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if stop != nil {
				if err := stop(); err != nil {
					results[bi].err = err
					return
				}
			}
			lo := offsets[bi]
			hi := lo + blocks[bi]
			blk := a.Submatrix(lo, hi, lo, hi)
			f, err := LU(blk)
			if err != nil {
				results[bi].err = fmt.Errorf("block %d: %w", bi, err)
				return
			}
			li, err := InverseLower(f.L, true)
			if err != nil {
				results[bi].err = fmt.Errorf("block %d: %w", bi, err)
				return
			}
			ui, err := InverseUpper(f.U)
			if err != nil {
				results[bi].err = fmt.Errorf("block %d: %w", bi, err)
				return
			}
			results[bi].linv = li.ToCSR()
			results[bi].uinv = ui.ToCSR()
		}(bi)
	}
	wg.Wait()
	ls := make([]*CSR, len(blocks))
	us := make([]*CSR, len(blocks))
	for bi, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		ls[bi] = r.linv
		us[bi] = r.uinv
	}
	return BlockDiag(ls), BlockDiag(us), nil
}
