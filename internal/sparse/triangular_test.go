package sparse

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomLower builds a random nonsingular lower triangular CSC matrix.
func randomLower(rng *rand.Rand, n int, density float64, unit bool) *CSC {
	var coords []Coord
	for j := 0; j < n; j++ {
		d := 1.0
		if !unit {
			d = 1 + rng.Float64() // bounded away from zero
		}
		coords = append(coords, Coord{Row: j, Col: j, Val: d})
		for i := j + 1; i < n; i++ {
			if rng.Float64() < density {
				coords = append(coords, Coord{Row: i, Col: j, Val: rng.NormFloat64() * 0.5})
			}
		}
	}
	return NewCSC(n, n, coords)
}

// randomUpper builds a random nonsingular upper triangular CSC matrix.
func randomUpper(rng *rand.Rand, n int, density float64) *CSC {
	var coords []Coord
	for j := 0; j < n; j++ {
		coords = append(coords, Coord{Row: j, Col: j, Val: 1 + rng.Float64()})
		for i := 0; i < j; i++ {
			if rng.Float64() < density {
				coords = append(coords, Coord{Row: i, Col: j, Val: rng.NormFloat64() * 0.5})
			}
		}
	}
	return NewCSC(n, n, coords)
}

func TestSolveLower(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		for _, unit := range []bool{false, true} {
			l := randomLower(rng, n, 0.3, unit)
			x := randomVec(rng, n)
			b := l.ToCSR().MulVec(x)
			if err := SolveLower(l, b, unit); err != nil {
				t.Fatalf("SolveLower: %v", err)
			}
			densesEqual(t, b, x, 1e-8, "lower solve")
		}
	}
}

func TestSolveUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		u := randomUpper(rng, n, 0.3)
		x := randomVec(rng, n)
		b := u.ToCSR().MulVec(x)
		if err := SolveUpper(u, b); err != nil {
			t.Fatalf("SolveUpper: %v", err)
		}
		densesEqual(t, b, x, 1e-8, "upper solve")
	}
}

func TestSolveLowerZeroDiagonal(t *testing.T) {
	l := NewCSC(2, 2, []Coord{{1, 0, 1}, {1, 1, 1}}) // missing (0,0)
	err := SolveLower(l, []float64{1, 1}, false)
	if err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestSolveUpperZeroDiagonal(t *testing.T) {
	u := NewCSC(2, 2, []Coord{{0, 0, 1}, {0, 1, 1}}) // missing (1,1)
	err := SolveUpper(u, []float64{1, 1})
	if err == nil {
		t.Fatal("expected zero-diagonal error")
	}
}

func TestInverseLower(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(20)
		for _, unit := range []bool{false, true} {
			l := randomLower(rng, n, 0.3, unit)
			inv, err := InverseLower(l, unit)
			if err != nil {
				t.Fatalf("InverseLower: %v", err)
			}
			prod := Mul(l.ToCSR(), inv.ToCSR()).Dense()
			id := Identity(n).Dense()
			densesEqual(t, prod, id, 1e-8, "L L⁻¹")
		}
	}
}

func TestInverseUpper(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		n := 1 + rng.Intn(20)
		u := randomUpper(rng, n, 0.3)
		inv, err := InverseUpper(u)
		if err != nil {
			t.Fatalf("InverseUpper: %v", err)
		}
		prod := Mul(u.ToCSR(), inv.ToCSR()).Dense()
		densesEqual(t, prod, Identity(n).Dense(), 1e-8, "U U⁻¹")
	}
}

// Lemma 1 of the paper: the inverse of a block-diagonal triangular matrix
// is block diagonal with the same block sizes.
func TestInversePreservesBlockStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	sizes := []int{4, 7, 3, 6}
	var blocks []*CSR
	for _, sz := range sizes {
		blocks = append(blocks, randomLower(rng, sz, 0.5, false).ToCSR())
	}
	l := BlockDiag(blocks).ToCSC()
	inv, err := InverseLower(l, false)
	if err != nil {
		t.Fatalf("InverseLower: %v", err)
	}
	// Every nonzero of the inverse must fall inside a diagonal block.
	bounds := make([]int, 0, len(sizes)+1)
	off := 0
	for _, sz := range sizes {
		bounds = append(bounds, off)
		off += sz
	}
	bounds = append(bounds, off)
	blockOf := func(i int) int {
		for b := 0; b < len(sizes); b++ {
			if i >= bounds[b] && i < bounds[b+1] {
				return b
			}
		}
		return -1
	}
	for _, co := range inv.Coords() {
		if blockOf(co.Row) != blockOf(co.Col) {
			t.Fatalf("inverse entry (%d,%d) crosses blocks", co.Row, co.Col)
		}
	}
}

func TestInverseBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	l := randomLower(rng, 30, 0.8, false) // dense-ish inverse
	_, err := InverseLowerBudget(l, false, 10)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	u := randomUpper(rng, 30, 0.8)
	_, err = InverseUpperBudget(u, 10)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("expected ErrBudget, got %v", err)
	}
	// Generous budget succeeds.
	if _, err := InverseLowerBudget(l, false, 1<<20); err != nil {
		t.Fatalf("generous budget failed: %v", err)
	}
}

// Property: solving against the computed inverse matches direct solve.
func TestQuickTriangularInverseSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 1 + lr.Intn(15)
		l := randomLower(rng, n, 0.4, false)
		inv, err := InverseLower(l, false)
		if err != nil {
			return false
		}
		x := randomVec(rng, n)
		b := l.ToCSR().MulVec(x)
		got := inv.ToCSR().MulVec(b)
		for i := range got {
			if math.Abs(got[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
