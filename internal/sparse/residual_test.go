package sparse

import (
	"math"
	"math/rand"
	"testing"
)

func residTestCSR(r, c, nnz int, rng *rand.Rand) *CSR {
	coords := make([]Coord, 0, nnz)
	for k := 0; k < nnz; k++ {
		coords = append(coords, Coord{
			Row: rng.Intn(r), Col: rng.Intn(c), Val: rng.NormFloat64(),
		})
	}
	return NewCSR(r, c, coords)
}

func TestResidualToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		r := 1 + rng.Intn(40)
		c := 1 + rng.Intn(40)
		h := residTestCSR(r, c, rng.Intn(4*r+1), rng)
		x := make([]float64, c)
		q := make([]float64, r)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		want := make([]float64, r)
		h.MulVecTo(want, x)
		for i := range want {
			want[i] = q[i] - want[i]
		}
		got := make([]float64, r)
		ResidualTo(got, q, h, x)
		for i := range got {
			// The fused kernel uses the same per-row accumulation order as
			// MulVecTo, so the result is bit-identical, not merely close.
			if got[i] != want[i] {
				t.Fatalf("trial %d: residual[%d] = %g, want %g", trial, i, got[i], want[i])
			}
		}
	}
}

func TestResidualToAliasesQ(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	h := residTestCSR(30, 30, 90, rng)
	x := make([]float64, 30)
	q := make([]float64, 30)
	for i := range x {
		x[i] = rng.NormFloat64()
		q[i] = rng.NormFloat64()
	}
	want := make([]float64, 30)
	ResidualTo(want, q, h, x)
	r := append([]float64(nil), q...)
	ResidualTo(r, r, h, x) // r aliases q
	for i := range r {
		if r[i] != want[i] {
			t.Fatalf("aliased residual[%d] = %g, want %g", i, r[i], want[i])
		}
	}
}

func TestResidualToExactSolveIsZero(t *testing.T) {
	// For H = I the residual of x against q is exactly q − x.
	n := 16
	coords := make([]Coord, n)
	for i := range coords {
		coords[i] = Coord{Row: i, Col: i, Val: 1}
	}
	h := NewCSR(n, n, coords)
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(i) * 0.25
	}
	r := make([]float64, n)
	ResidualTo(r, x, h, x)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("residual[%d] = %g, want exact 0", i, v)
		}
	}
}

func TestResidualToShapePanics(t *testing.T) {
	h := NewCSR(3, 4, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	ResidualTo(make([]float64, 3), make([]float64, 3), h, make([]float64, 3))
}

func TestResidualToAllocFree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	h := residTestCSR(200, 200, 1000, rng)
	x := make([]float64, 200)
	q := make([]float64, 200)
	r := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
		q[i] = rng.NormFloat64()
	}
	if allocs := testing.AllocsPerRun(20, func() { ResidualTo(r, q, h, x) }); allocs != 0 {
		t.Fatalf("ResidualTo allocates %.1f times per call, want 0", allocs)
	}
	if math.IsNaN(r[0]) {
		t.Fatal("sanity: NaN residual")
	}
}

func BenchmarkResidualTo(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	h := residTestCSR(5000, 5000, 50000, rng)
	x := make([]float64, 5000)
	q := make([]float64, 5000)
	r := make([]float64, 5000)
	for i := range x {
		x[i] = rng.NormFloat64()
		q[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ResidualTo(r, q, h, x)
	}
}
