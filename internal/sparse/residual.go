package sparse

import "fmt"

// ResidualTo computes r = q − H·x in one fused pass: each row's H·x dot
// product is accumulated and immediately subtracted from q, so the product
// is never materialized and the kernel allocates nothing. r must have
// length h.R and x length h.C; r may alias q (each r[i] is written after
// row i's accumulation reads only x) but must not alias x.
//
// This is the residual kernel of BEAR's iterative-refinement loop: with x
// an approximate solve of H·x = q from the BEAR-Approx factors, r is the
// defect the next Richardson sweep corrects. The per-row accumulation
// order matches MulVecTo, so residual magnitudes are reproducible
// bit-for-bit across the plain and fused paths.
func ResidualTo(r, q []float64, h *CSR, x []float64) {
	if len(x) != h.C || len(r) != h.R || len(q) != h.R {
		panic(fmt.Sprintf("sparse: ResidualTo shape mismatch: H is %dx%d, len(x)=%d, len(q)=%d, len(r)=%d",
			h.R, h.C, len(x), len(q), len(r)))
	}
	for i := 0; i < h.R; i++ {
		var s float64
		ks, ke := h.RowPtr[i], h.RowPtr[i+1]
		val := h.Val[ks:ke]
		col := h.ColIdx[ks:ke:ke]
		for j, v := range val {
			s += v * x[col[j]]
		}
		r[i] = q[i] - s
	}
}
