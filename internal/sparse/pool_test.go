package sparse

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkerPoolRunCoversAllTasks(t *testing.T) {
	p := NewWorkerPool(3)
	defer p.Close()
	for _, tasks := range []int{0, 1, 2, 3, 7, 64, 1000} {
		var hits atomic.Int64
		seen := make([]atomic.Int32, tasks)
		p.Run(tasks, func(task int) {
			seen[task].Add(1)
			hits.Add(1)
		})
		if got := hits.Load(); got != int64(tasks) {
			t.Fatalf("tasks=%d: ran %d task invocations", tasks, got)
		}
		for i := range seen {
			if n := seen[i].Load(); n != 1 {
				t.Fatalf("tasks=%d: task %d ran %d times", tasks, i, n)
			}
		}
	}
}

// Concurrent Runs must not deadlock even when every worker is busy: the
// select-default recruitment falls back to caller-only execution.
func TestWorkerPoolConcurrentRuns(t *testing.T) {
	p := NewWorkerPool(2)
	defer p.Close()
	var wg sync.WaitGroup
	var total atomic.Int64
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				p.Run(5, func(task int) { total.Add(1) })
			}
		}()
	}
	wg.Wait()
	if got := total.Load(); got != 8*50*5 {
		t.Fatalf("total task invocations = %d, want %d", got, 8*50*5)
	}
}

func TestDefaultPool(t *testing.T) {
	p := DefaultPool()
	if p != DefaultPool() {
		t.Fatal("DefaultPool not a singleton")
	}
	if p.Workers() != runtime.GOMAXPROCS(0) {
		t.Fatalf("default pool workers = %d, want GOMAXPROCS = %d", p.Workers(), runtime.GOMAXPROCS(0))
	}
}

func TestSplitNNZ(t *testing.T) {
	cases := []struct {
		name   string
		rowPtr []int
		parts  int
	}{
		{"empty", []int{0}, 3},
		{"uniform", []int{0, 2, 4, 6, 8, 10, 12, 14, 16}, 4},
		{"skewed-head", []int{0, 100, 101, 102, 103, 104}, 2},
		{"skewed-tail", []int{0, 1, 2, 3, 4, 104}, 2},
		{"all-empty-rows", []int{0, 0, 0, 0, 0}, 3},
		{"more-parts-than-rows", []int{0, 5, 9}, 8},
	}
	for _, tc := range cases {
		cuts := SplitNNZ(tc.rowPtr, tc.parts)
		r := len(tc.rowPtr) - 1
		if len(cuts) != tc.parts+1 {
			t.Fatalf("%s: %d cuts, want %d", tc.name, len(cuts), tc.parts+1)
		}
		if cuts[0] != 0 || cuts[tc.parts] != r {
			t.Fatalf("%s: boundary cuts %v, want 0..%d", tc.name, cuts, r)
		}
		for w := 1; w <= tc.parts; w++ {
			if cuts[w] < cuts[w-1] {
				t.Fatalf("%s: cuts not monotone: %v", tc.name, cuts)
			}
		}
	}

	// Balance check on the skewed-tail case: the heavy row must sit alone.
	cuts := SplitNNZ([]int{0, 1, 2, 3, 4, 104}, 2)
	if cuts[1] != 4 {
		t.Fatalf("skewed-tail cuts = %v, want the heavy row isolated at [4,5)", cuts)
	}
}
