package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDiagDominant builds a random strictly column diagonally dominant
// matrix, the class sparse LU must handle without pivoting (it contains the
// RWR matrix H).
func randomDiagDominant(rng *rand.Rand, n int, density float64) *CSC {
	var coords []Coord
	colSum := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < density {
				v := rng.NormFloat64() * 0.5
				coords = append(coords, Coord{Row: i, Col: j, Val: v})
				colSum[j] += math.Abs(v)
			}
		}
	}
	for j := 0; j < n; j++ {
		coords = append(coords, Coord{Row: j, Col: j, Val: colSum[j] + 1 + rng.Float64()})
	}
	return NewCSC(n, n, coords)
}

func TestLUReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(25)
		a := randomDiagDominant(rng, n, 0.25)
		f, err := LU(a)
		if err != nil {
			t.Fatalf("LU: %v", err)
		}
		prod := Mul(f.L.ToCSR(), f.U.ToCSR()).Dense()
		densesEqual(t, prod, a.ToCSR().Dense(), 1e-9, "L U vs A")
	}
}

func TestLUTriangularShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	a := randomDiagDominant(rng, 15, 0.3)
	f, err := LU(a)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	for _, co := range f.L.Coords() {
		if co.Row < co.Col {
			t.Fatalf("L has superdiagonal entry (%d,%d)", co.Row, co.Col)
		}
		if co.Row == co.Col && co.Val != 1 {
			t.Fatalf("L diagonal (%d,%d) = %g, want 1", co.Row, co.Col, co.Val)
		}
	}
	for _, co := range f.U.Coords() {
		if co.Row > co.Col {
			t.Fatalf("U has subdiagonal entry (%d,%d)", co.Row, co.Col)
		}
	}
}

func TestLUSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		a := randomDiagDominant(rng, n, 0.25)
		f, err := LU(a)
		if err != nil {
			t.Fatalf("LU: %v", err)
		}
		x := randomVec(rng, n)
		b := a.ToCSR().MulVec(x)
		if err := f.Solve(b); err != nil {
			t.Fatalf("Solve: %v", err)
		}
		densesEqual(t, b, x, 1e-8, "LU solve")
	}
}

func TestLUZeroPivot(t *testing.T) {
	// Structurally singular: column 1 is empty.
	a := NewCSC(2, 2, []Coord{{0, 0, 1}})
	if _, err := LU(a); err == nil {
		t.Fatal("expected zero-pivot error")
	}
}

func TestLUBlockDiagonalPreservesStructure(t *testing.T) {
	// Lemma 1: LU of a block-diagonal matrix is block diagonal.
	rng := rand.New(rand.NewSource(43))
	sizes := []int{5, 8, 4}
	var blocks []*CSR
	for _, sz := range sizes {
		blocks = append(blocks, randomDiagDominant(rng, sz, 0.4).ToCSR())
	}
	a := BlockDiag(blocks).ToCSC()
	f, err := LU(a)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	off, bounds := 0, []int{0}
	for _, sz := range sizes {
		off += sz
		bounds = append(bounds, off)
	}
	blockOf := func(i int) int {
		for b := 0; b+1 < len(bounds); b++ {
			if i >= bounds[b] && i < bounds[b+1] {
				return b
			}
		}
		return -1
	}
	for _, m := range []*CSC{f.L, f.U} {
		for _, co := range m.Coords() {
			if blockOf(co.Row) != blockOf(co.Col) {
				t.Fatalf("factor entry (%d,%d) crosses blocks", co.Row, co.Col)
			}
		}
	}
}

func TestLUNNZ(t *testing.T) {
	a := IdentityCSC(5)
	f, err := LU(a)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	if f.NNZ() != 10 { // 5 unit diagonal in L + 5 diagonal in U
		t.Fatalf("NNZ = %d, want 10", f.NNZ())
	}
}

// Property: LU solve inverts MulVec on diagonally dominant systems.
func TestQuickLUSolveRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 1 + lr.Intn(20)
		a := randomDiagDominant(rng, n, 0.3)
		fac, err := LU(a)
		if err != nil {
			return false
		}
		x := randomVec(rng, n)
		b := a.ToCSR().MulVec(x)
		if err := fac.Solve(b); err != nil {
			return false
		}
		for i := range b {
			if math.Abs(b[i]-x[i]) > 1e-7*(1+math.Abs(x[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
