// Package sparse implements the compressed sparse row/column matrix kernel
// that underlies every RWR method in this repository: construction from
// triplets, matrix-vector and matrix-matrix products, permutation,
// submatrix extraction, triangular solves, sparse LU factorization, and
// sparse triangular inversion.
//
// Conventions:
//
//   - Dimension mismatches are programmer errors and panic.
//   - Numerical failures (zero pivots, singular matrices) return errors.
//   - Indices within a row (CSR) or column (CSC) are kept sorted, and
//     duplicates are summed at construction time.
package sparse

import (
	"fmt"
	"sort"
)

// Coord is a single (row, col, value) triplet used to assemble matrices.
type Coord struct {
	Row, Col int
	Val      float64
}

// CSR is a sparse matrix in compressed sparse row format. Row i occupies
// ColIdx[RowPtr[i]:RowPtr[i+1]] and Val[RowPtr[i]:RowPtr[i+1]], with column
// indices sorted ascending within the row.
type CSR struct {
	R, C   int
	RowPtr []int
	ColIdx []int
	Val    []float64
}

// CSC is a sparse matrix in compressed sparse column format. Column j
// occupies RowIdx[ColPtr[j]:ColPtr[j+1]] and Val[ColPtr[j]:ColPtr[j+1]],
// with row indices sorted ascending within the column.
type CSC struct {
	R, C   int
	ColPtr []int
	RowIdx []int
	Val    []float64
}

// NewCSR builds a CSR matrix of the given shape from triplets. Duplicate
// coordinates are summed; entries that sum exactly to zero are kept (callers
// that need them removed can use Prune).
func NewCSR(r, c int, coords []Coord) *CSR {
	checkShape(r, c)
	cs := make([]Coord, len(coords))
	copy(cs, coords)
	for _, e := range cs {
		if e.Row < 0 || e.Row >= r || e.Col < 0 || e.Col >= c {
			panic(fmt.Sprintf("sparse: coord (%d,%d) out of %dx%d", e.Row, e.Col, r, c))
		}
	}
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Row != cs[j].Row {
			return cs[i].Row < cs[j].Row
		}
		return cs[i].Col < cs[j].Col
	})
	m := &CSR{R: r, C: c, RowPtr: make([]int, r+1)}
	m.ColIdx = make([]int, 0, len(cs))
	m.Val = make([]float64, 0, len(cs))
	for i := 0; i < len(cs); {
		j := i + 1
		v := cs[i].Val
		for j < len(cs) && cs[j].Row == cs[i].Row && cs[j].Col == cs[i].Col {
			v += cs[j].Val
			j++
		}
		m.ColIdx = append(m.ColIdx, cs[i].Col)
		m.Val = append(m.Val, v)
		m.RowPtr[cs[i].Row+1]++
		i = j
	}
	for i := 0; i < r; i++ {
		m.RowPtr[i+1] += m.RowPtr[i]
	}
	return m
}

// NewCSC builds a CSC matrix of the given shape from triplets, summing
// duplicates.
func NewCSC(r, c int, coords []Coord) *CSC {
	// Build the CSR of the transpose, then reinterpret the buffers.
	t := make([]Coord, len(coords))
	for i, e := range coords {
		t[i] = Coord{Row: e.Col, Col: e.Row, Val: e.Val}
	}
	tr := NewCSR(c, r, t)
	return &CSC{R: r, C: c, ColPtr: tr.RowPtr, RowIdx: tr.ColIdx, Val: tr.Val}
}

// Identity returns the n x n identity matrix in CSR form.
func Identity(n int) *CSR {
	checkShape(n, n)
	m := &CSR{R: n, C: n, RowPtr: make([]int, n+1), ColIdx: make([]int, n), Val: make([]float64, n)}
	for i := 0; i < n; i++ {
		m.RowPtr[i+1] = i + 1
		m.ColIdx[i] = i
		m.Val[i] = 1
	}
	return m
}

// IdentityCSC returns the n x n identity matrix in CSC form.
func IdentityCSC(n int) *CSC {
	return Identity(n).ToCSC()
}

// NNZ reports the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// NNZ reports the number of stored entries.
func (m *CSC) NNZ() int { return len(m.Val) }

// Bytes estimates the memory footprint of the stored matrix in the
// compressed sparse format used by the paper's space accounting: one 8-byte
// value plus one 8-byte index per entry, plus the pointer array.
func (m *CSR) Bytes() int64 {
	return int64(len(m.Val))*16 + int64(len(m.RowPtr))*8
}

// Bytes estimates the memory footprint of the stored matrix.
func (m *CSC) Bytes() int64 {
	return int64(len(m.Val))*16 + int64(len(m.ColPtr))*8
}

// Dims returns the matrix shape.
func (m *CSR) Dims() (r, c int) { return m.R, m.C }

// Dims returns the matrix shape.
func (m *CSC) Dims() (r, c int) { return m.R, m.C }

// At returns the entry at (i, j) using binary search within row i.
func (m *CSR) At(i, j int) float64 {
	m.checkIndex(i, j)
	lo, hi := m.RowPtr[i], m.RowPtr[i+1]
	k := lo + sort.SearchInts(m.ColIdx[lo:hi], j)
	if k < hi && m.ColIdx[k] == j {
		return m.Val[k]
	}
	return 0
}

// At returns the entry at (i, j) using binary search within column j.
func (m *CSC) At(i, j int) float64 {
	if i < 0 || i >= m.R || j < 0 || j >= m.C {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of %dx%d", i, j, m.R, m.C))
	}
	lo, hi := m.ColPtr[j], m.ColPtr[j+1]
	k := lo + sort.SearchInts(m.RowIdx[lo:hi], i)
	if k < hi && m.RowIdx[k] == i {
		return m.Val[k]
	}
	return 0
}

// ToCSC converts to compressed sparse column format.
func (m *CSR) ToCSC() *CSC {
	t := m.Transpose()
	return &CSC{R: m.R, C: m.C, ColPtr: t.RowPtr, RowIdx: t.ColIdx, Val: t.Val}
}

// ToCSR converts to compressed sparse row format.
func (m *CSC) ToCSR() *CSR {
	// The CSC buffers are exactly the CSR buffers of the transpose.
	t := &CSR{R: m.C, C: m.R, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	tt := t.Transpose()
	tt.R, tt.C = m.R, m.C
	return tt
}

// Transpose returns a new CSR holding the transpose of m.
func (m *CSR) Transpose() *CSR {
	t := &CSR{R: m.C, C: m.R, RowPtr: make([]int, m.C+1), ColIdx: make([]int, m.NNZ()), Val: make([]float64, m.NNZ())}
	for _, j := range m.ColIdx {
		t.RowPtr[j+1]++
	}
	for j := 0; j < m.C; j++ {
		t.RowPtr[j+1] += t.RowPtr[j]
	}
	next := make([]int, m.C)
	copy(next, t.RowPtr[:m.C])
	for i := 0; i < m.R; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			p := next[j]
			t.ColIdx[p] = i
			t.Val[p] = m.Val[k]
			next[j]++
		}
	}
	return t
}

// Transpose returns a new CSC holding the transpose of m.
func (m *CSC) Transpose() *CSC {
	return m.ToCSR().reinterpretAsTransposedCSC()
}

// reinterpretAsTransposedCSC views the CSR buffers of m as the CSC of mᵀ.
func (m *CSR) reinterpretAsTransposedCSC() *CSC {
	return &CSC{R: m.C, C: m.R, ColPtr: m.RowPtr, RowIdx: m.ColIdx, Val: m.Val}
}

// Clone returns a deep copy.
func (m *CSR) Clone() *CSR {
	out := &CSR{R: m.R, C: m.C,
		RowPtr: append([]int(nil), m.RowPtr...),
		ColIdx: append([]int(nil), m.ColIdx...),
		Val:    append([]float64(nil), m.Val...)}
	return out
}

// Clone returns a deep copy.
func (m *CSC) Clone() *CSC {
	out := &CSC{R: m.R, C: m.C,
		ColPtr: append([]int(nil), m.ColPtr...),
		RowIdx: append([]int(nil), m.RowIdx...),
		Val:    append([]float64(nil), m.Val...)}
	return out
}

// Coords returns the stored entries as triplets in row-major order.
func (m *CSR) Coords() []Coord {
	out := make([]Coord, 0, m.NNZ())
	for i := 0; i < m.R; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			out = append(out, Coord{Row: i, Col: m.ColIdx[k], Val: m.Val[k]})
		}
	}
	return out
}

// Coords returns the stored entries as triplets in column-major order.
func (m *CSC) Coords() []Coord {
	out := make([]Coord, 0, m.NNZ())
	for j := 0; j < m.C; j++ {
		for k := m.ColPtr[j]; k < m.ColPtr[j+1]; k++ {
			out = append(out, Coord{Row: m.RowIdx[k], Col: j, Val: m.Val[k]})
		}
	}
	return out
}

func (m *CSR) checkIndex(i, j int) {
	if i < 0 || i >= m.R || j < 0 || j >= m.C {
		panic(fmt.Sprintf("sparse: index (%d,%d) out of %dx%d", i, j, m.R, m.C))
	}
}

func checkShape(r, c int) {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("sparse: negative dimension %dx%d", r, c))
	}
}
