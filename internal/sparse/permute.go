package sparse

import "fmt"

// CheckPermutation panics unless p is a permutation of 0..n-1.
func CheckPermutation(p []int) {
	seen := make([]bool, len(p))
	for _, v := range p {
		if v < 0 || v >= len(p) || seen[v] {
			panic(fmt.Sprintf("sparse: invalid permutation (value %d)", v))
		}
		seen[v] = true
	}
}

// InvertPermutation returns q with q[p[i]] = i.
func InvertPermutation(p []int) []int {
	q := make([]int, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// Permute returns B with B[rp[i], cp[j]] = A[i, j]; that is, rp and cp map
// old indices to new positions. Pass nil to leave an axis unpermuted.
func (m *CSR) Permute(rp, cp []int) *CSR {
	if rp != nil && len(rp) != m.R {
		panic(fmt.Sprintf("sparse: row permutation length %d for %d rows", len(rp), m.R))
	}
	if cp != nil && len(cp) != m.C {
		panic(fmt.Sprintf("sparse: col permutation length %d for %d cols", len(cp), m.C))
	}
	coords := m.Coords()
	for i := range coords {
		if rp != nil {
			coords[i].Row = rp[coords[i].Row]
		}
		if cp != nil {
			coords[i].Col = cp[coords[i].Col]
		}
	}
	return NewCSR(m.R, m.C, coords)
}

// Permute returns B with B[rp[i], cp[j]] = A[i, j] in CSC form.
func (m *CSC) Permute(rp, cp []int) *CSC {
	t := &CSR{R: m.C, C: m.R, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	pt := t.Permute(cp, rp)
	return &CSC{R: m.R, C: m.C, ColPtr: pt.RowPtr, RowIdx: pt.ColIdx, Val: pt.Val}
}

// Submatrix extracts the block A[r0:r1, c0:c1) as a new CSR matrix.
func (m *CSR) Submatrix(r0, r1, c0, c1 int) *CSR {
	if r0 < 0 || r1 > m.R || c0 < 0 || c1 > m.C || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("sparse: bad submatrix [%d:%d, %d:%d) of %dx%d", r0, r1, c0, c1, m.R, m.C))
	}
	out := &CSR{R: r1 - r0, C: c1 - c0, RowPtr: make([]int, r1-r0+1)}
	for i := r0; i < r1; i++ {
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			if j >= c0 && j < c1 {
				out.ColIdx = append(out.ColIdx, j-c0)
				out.Val = append(out.Val, m.Val[k])
			}
		}
		out.RowPtr[i-r0+1] = len(out.ColIdx)
	}
	return out
}

// Submatrix extracts the block A[r0:r1, c0:c1) as a new CSC matrix.
func (m *CSC) Submatrix(r0, r1, c0, c1 int) *CSC {
	t := &CSR{R: m.C, C: m.R, RowPtr: m.ColPtr, ColIdx: m.RowIdx, Val: m.Val}
	sub := t.Submatrix(c0, c1, r0, r1)
	return &CSC{R: r1 - r0, C: c1 - c0, ColPtr: sub.RowPtr, RowIdx: sub.ColIdx, Val: sub.Val}
}

// BlockDiag assembles a block-diagonal CSR matrix from square blocks.
func BlockDiag(blocks []*CSR) *CSR {
	n := 0
	nnz := 0
	for _, b := range blocks {
		if b.R != b.C {
			panic("sparse: BlockDiag requires square blocks")
		}
		n += b.R
		nnz += b.NNZ()
	}
	out := &CSR{R: n, C: n, RowPtr: make([]int, n+1), ColIdx: make([]int, 0, nnz), Val: make([]float64, 0, nnz)}
	off := 0
	for _, b := range blocks {
		for i := 0; i < b.R; i++ {
			for k := b.RowPtr[i]; k < b.RowPtr[i+1]; k++ {
				out.ColIdx = append(out.ColIdx, b.ColIdx[k]+off)
				out.Val = append(out.Val, b.Val[k])
			}
			out.RowPtr[off+i+1] = len(out.ColIdx)
		}
		off += b.R
	}
	return out
}
