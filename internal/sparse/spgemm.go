package sparse

import (
	"fmt"
	"sort"
)

// Mul computes the sparse product C = A B using Gustavson's row-wise
// algorithm. The result keeps explicit zeros out (exact cancellations are
// stored; callers can Prune if needed).
func Mul(a, b *CSR) *CSR {
	if a.C != b.R {
		panic(fmt.Sprintf("sparse: Mul shape mismatch %dx%d * %dx%d", a.R, a.C, b.R, b.C))
	}
	out := &CSR{R: a.R, C: b.C, RowPtr: make([]int, a.R+1)}
	// Sparse accumulator: dense value buffer + occupancy marks.
	acc := make([]float64, b.C)
	mark := make([]int, b.C)
	for i := range mark {
		mark[i] = -1
	}
	var rowCols []int
	for i := 0; i < a.R; i++ {
		rowCols = rowCols[:0]
		for ka := a.RowPtr[i]; ka < a.RowPtr[i+1]; ka++ {
			j := a.ColIdx[ka]
			av := a.Val[ka]
			for kb := b.RowPtr[j]; kb < b.RowPtr[j+1]; kb++ {
				col := b.ColIdx[kb]
				if mark[col] != i {
					mark[col] = i
					acc[col] = 0
					rowCols = append(rowCols, col)
				}
				acc[col] += av * b.Val[kb]
			}
		}
		sort.Ints(rowCols)
		for _, col := range rowCols {
			out.ColIdx = append(out.ColIdx, col)
			out.Val = append(out.Val, acc[col])
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}

// MulCSC computes C = A B for CSC operands, returning a CSC result. It is
// Gustavson's algorithm applied column-wise.
func MulCSC(a, b *CSC) *CSC {
	at := &CSR{R: a.C, C: a.R, RowPtr: a.ColPtr, ColIdx: a.RowIdx, Val: a.Val} // CSR of aᵀ
	bt := &CSR{R: b.C, C: b.R, RowPtr: b.ColPtr, ColIdx: b.RowIdx, Val: b.Val} // CSR of bᵀ
	ct := Mul(bt, at)                                                          // (AB)ᵀ = Bᵀ Aᵀ
	return &CSC{R: a.R, C: b.C, ColPtr: ct.RowPtr, RowIdx: ct.ColIdx, Val: ct.Val}
}
