package sparse

import (
	"fmt"
	"math/rand"
	"testing"
)

// benchMatrix builds a deterministic n×n matrix with ~avgRow entries per
// row for kernel benchmarks.
func benchMatrix(n, avgRow int) *CSR {
	rng := rand.New(rand.NewSource(1))
	coords := make([]Coord, 0, n*avgRow)
	for i := 0; i < n; i++ {
		for k := 0; k < avgRow; k++ {
			coords = append(coords, Coord{Row: i, Col: rng.Intn(n), Val: rng.NormFloat64()})
		}
	}
	return NewCSR(n, n, coords)
}

func BenchmarkMulVec(b *testing.B) {
	for _, n := range []int{1000, 10000, 100000} {
		m := benchMatrix(n, 8)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = float64(i)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportMetric(float64(m.NNZ()), "nnz")
			for i := 0; i < b.N; i++ {
				m.MulVecTo(y, x)
			}
		})
	}
}

// BenchmarkMulVecRange measures the block-restricted kernels against the
// full product they replace on the BEAR fast path: a row window of a
// block-diagonal-like matrix and a column window with block-supported x.
func BenchmarkMulVecRange(b *testing.B) {
	const n, window = 100000, 1000
	m := benchMatrix(n, 8)
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i%7) - 3
	}
	b.Run("rows/full", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecTo(y, x)
		}
	})
	b.Run("rows/window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecRangeTo(y, x, n/2, n/2+window)
		}
	})
	b.Run("cols/window", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.MulVecColRangeTo(y, x, n/2, n/2+window)
		}
	})
}

func BenchmarkSpGEMM(b *testing.B) {
	for _, n := range []int{500, 2000} {
		x := benchMatrix(n, 6)
		y := benchMatrix(n, 6)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Mul(x, y)
			}
		})
	}
}

func BenchmarkSparseLU(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{500, 1500} {
		a := randomDiagDominant(rng, n, 4.0/float64(n))
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := LU(a); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSolveLower / BenchmarkSolveUpper guard the dense-RHS triangular
// substitution kernels (the per-query inner loops of LU-based solves).
func BenchmarkSolveLower(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1000, 5000} {
		a := randomDiagDominant(rng, n, 6.0/float64(n))
		f, err := LU(a)
		if err != nil {
			b.Fatal(err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportMetric(float64(f.L.NNZ()), "nnz")
			for i := 0; i < b.N; i++ {
				copy(x, rhs)
				if err := SolveLower(f.L, x, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkSolveUpper(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	for _, n := range []int{1000, 5000} {
		a := randomDiagDominant(rng, n, 6.0/float64(n))
		f, err := LU(a)
		if err != nil {
			b.Fatal(err)
		}
		rhs := make([]float64, n)
		for i := range rhs {
			rhs[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportMetric(float64(f.U.NNZ()), "nnz")
			for i := 0; i < b.N; i++ {
				copy(x, rhs)
				if err := SolveUpper(f.U, x); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTriangularInverse(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{500, 1000} {
		a := randomDiagDominant(rng, n, 4.0/float64(n))
		f, err := LU(a)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := InverseLower(f.L, true); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkTranspose(b *testing.B) {
	m := benchMatrix(20000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transpose()
	}
}

func BenchmarkPermute(b *testing.B) {
	m := benchMatrix(10000, 8)
	p := rand.New(rand.NewSource(4)).Perm(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Permute(p, p)
	}
}
