package sparse

import (
	"fmt"
	"sort"
)

// Multi-RHS (SpMM) kernels: one traversal of the CSR structure applied to a
// block of nb right-hand sides at once. The RHS block X is stored
// node-contiguously — the nb values for matrix column j occupy
// x[j*nb:(j+1)*nb]. Compared with nb calls to MulVecTo this reads
// RowPtr/ColIdx/Val once per register tile instead of nb times, which is
// the whole win: the factor matrices are far larger than the vectors, so
// the per-seed path is bandwidth-bound on re-reading them.
//
// The inner loop is register-tiled: each row's output is computed four
// right-hand sides at a time with four scalar accumulators, so a stored
// entry costs four fused multiply-adds on registers and the output row is
// written exactly once. The naive layout-order alternative — sweep all nb
// outputs per stored entry — issues nb cache stores per entry, which costs
// as much as the nb separate traversals it was meant to save.
//
// For each right-hand side k the accumulation order over a row's stored
// entries is identical to MulVecTo, so every output column is bit-identical
// to the corresponding single-vector product.

// MulMultiTo computes Y = A X for nb right-hand sides. x must have length
// m.C*nb and y length m.R*nb, both in the node-contiguous layout described
// above. Column k of Y is bit-identical to MulVecTo on column k of X.
func (m *CSR) MulMultiTo(y, x []float64, nb int) {
	m.MulRangeMultiTo(y, x, nb, 0, m.R)
}

// MulRangeMultiTo computes rows [lo, hi) of Y = A X for nb right-hand
// sides, writing only y[lo*nb:hi*nb] and leaving the rest of y untouched.
// It is the multi-RHS analogue of MulVecRangeTo, used by the blocked batch
// solver on block-diagonal factors where only the seeds' diagonal block can
// be nonzero (Lemma 1 of the paper).
func (m *CSR) MulRangeMultiTo(y, x []float64, nb, lo, hi int) {
	if nb <= 0 {
		panic(fmt.Sprintf("sparse: MulRangeMultiTo with %d right-hand sides", nb))
	}
	if len(x) != m.C*nb || len(y) != m.R*nb {
		panic(fmt.Sprintf("sparse: MulRangeMultiTo shape mismatch: A is %dx%d, nb=%d, len(x)=%d, len(y)=%d",
			m.R, m.C, nb, len(x), len(y)))
	}
	if lo < 0 || hi > m.R || lo > hi {
		panic(fmt.Sprintf("sparse: MulRangeMultiTo rows [%d,%d) out of %d", lo, hi, m.R))
	}
	for i := lo; i < hi; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		mulRowTiled(y[i*nb:(i+1)*nb:(i+1)*nb], x, m.Val, m.ColIdx, nb, ks, ke)
	}
}

// mulRowTiled computes one output row of a multi-RHS product: for each
// right-hand side t, row[t] = Σ_p val[p]·x[colIdx[p]*nb+t] over stored
// entries [ks, ke), accumulating four right-hand sides per entry pass in
// registers. Per column the entry order matches MulVecTo, so each output
// is bit-identical to the single-vector product.
func mulRowTiled(row, x, val []float64, colIdx []int, nb, ks, ke int) {
	t := 0
	for ; t+8 <= nb; t += 8 {
		var a0, a1, a2, a3, a4, a5, a6, a7 float64
		for p := ks; p < ke; p++ {
			v := val[p]
			xr := x[colIdx[p]*nb+t:]
			xr = xr[:8:8]
			a0 += v * xr[0]
			a1 += v * xr[1]
			a2 += v * xr[2]
			a3 += v * xr[3]
			a4 += v * xr[4]
			a5 += v * xr[5]
			a6 += v * xr[6]
			a7 += v * xr[7]
		}
		row[t] = a0
		row[t+1] = a1
		row[t+2] = a2
		row[t+3] = a3
		row[t+4] = a4
		row[t+5] = a5
		row[t+6] = a6
		row[t+7] = a7
	}
	for ; t+4 <= nb; t += 4 {
		var a0, a1, a2, a3 float64
		for p := ks; p < ke; p++ {
			v := val[p]
			xr := x[colIdx[p]*nb+t:]
			xr = xr[:4:4]
			a0 += v * xr[0]
			a1 += v * xr[1]
			a2 += v * xr[2]
			a3 += v * xr[3]
		}
		row[t] = a0
		row[t+1] = a1
		row[t+2] = a2
		row[t+3] = a3
	}
	for ; t < nb; t++ {
		var acc float64
		for p := ks; p < ke; p++ {
			acc += val[p] * x[colIdx[p]*nb+t]
		}
		row[t] = acc
	}
}

// MulColRangeMultiTo computes Y = A[:, lo:hi] · X[lo:hi] for nb right-hand
// sides: every row of Y is written, but each row's accumulation visits only
// the stored entries whose column index falls in [lo, hi), located by
// binary search within the row's sorted column indices. It is the
// multi-RHS analogue of MulVecColRangeTo, with the same bit-identity
// guarantee when X is exactly zero outside [lo, hi).
func (m *CSR) MulColRangeMultiTo(y, x []float64, nb, lo, hi int) {
	if nb <= 0 {
		panic(fmt.Sprintf("sparse: MulColRangeMultiTo with %d right-hand sides", nb))
	}
	if len(x) != m.C*nb || len(y) != m.R*nb {
		panic(fmt.Sprintf("sparse: MulColRangeMultiTo shape mismatch: A is %dx%d, nb=%d, len(x)=%d, len(y)=%d",
			m.R, m.C, nb, len(x), len(y)))
	}
	if lo < 0 || hi > m.C || lo > hi {
		panic(fmt.Sprintf("sparse: MulColRangeMultiTo cols [%d,%d) out of %d", lo, hi, m.C))
	}
	for i := 0; i < m.R; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		ps := ks + sort.SearchInts(m.ColIdx[ks:ke], lo)
		pe := ps + sort.SearchInts(m.ColIdx[ps:ke], hi)
		mulRowTiled(y[i*nb:(i+1)*nb:(i+1)*nb], x, m.Val, m.ColIdx, nb, ps, pe)
	}
}
