package sparse

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// SolveLower solves L x = b in place (x overwrites b) for a lower
// triangular CSC matrix with sorted row indices. If unit is true the
// diagonal is taken as 1 and any stored diagonal entries are ignored.
func SolveLower(l *CSC, b []float64, unit bool) error {
	if l.R != l.C || len(b) != l.R {
		panic(fmt.Sprintf("sparse: SolveLower shape mismatch %dx%d, len(b)=%d", l.R, l.C, len(b)))
	}
	for j := 0; j < l.C; j++ {
		if b[j] == 0 {
			continue
		}
		lo, hi := l.ColPtr[j], l.ColPtr[j+1]
		k := lo
		if !unit {
			if k >= hi || l.RowIdx[k] != j {
				return fmt.Errorf("sparse: zero diagonal at %d in lower solve", j)
			}
			// Skipping the division when the stored diagonal is exactly 1
			// is bit-identical (x/1 == x in IEEE 754) and common: unit
			// factors are often stored with explicit ones.
			if d := l.Val[k]; d != 1 {
				b[j] /= d
			}
			k++
		} else if k < hi && l.RowIdx[k] == j {
			k++ // skip stored unit diagonal
		}
		xj := b[j]
		rows := l.RowIdx[k:hi:hi]
		vals := l.Val[k:hi:hi]
		for t, v := range vals {
			b[rows[t]] -= v * xj
		}
	}
	return nil
}

// SolveUpper solves U x = b in place (x overwrites b) for an upper
// triangular CSC matrix with sorted row indices.
func SolveUpper(u *CSC, b []float64) error {
	if u.R != u.C || len(b) != u.R {
		panic(fmt.Sprintf("sparse: SolveUpper shape mismatch %dx%d, len(b)=%d", u.R, u.C, len(b)))
	}
	for j := u.C - 1; j >= 0; j-- {
		if b[j] == 0 {
			continue
		}
		lo, hi := u.ColPtr[j], u.ColPtr[j+1]
		if hi <= lo || u.RowIdx[hi-1] != j {
			return fmt.Errorf("sparse: zero diagonal at %d in upper solve", j)
		}
		if d := u.Val[hi-1]; d != 1 {
			b[j] /= d
		}
		xj := b[j]
		rows := u.RowIdx[lo : hi-1 : hi-1]
		vals := u.Val[lo : hi-1 : hi-1]
		for k, v := range vals {
			b[rows[k]] -= v * xj
		}
	}
	return nil
}

// triWorkspace holds scratch buffers reused across sparse-RHS triangular
// solves so that repeated solves (e.g. during inversion or LU) do not
// allocate per column.
type triWorkspace struct {
	x       []float64 // dense accumulator
	visited []bool
	topo    []int // reverse-postorder node list
	stack   []int // DFS node stack
	kstack  []int // DFS edge-position stack
}

func newTriWorkspace(n int) *triWorkspace {
	return &triWorkspace{
		x:       make([]float64, n),
		visited: make([]bool, n),
		topo:    make([]int, 0, n),
		stack:   make([]int, 0, 64),
		kstack:  make([]int, 0, 64),
	}
}

// reach computes the set of indices reachable from the pattern of b in the
// dependency graph of the triangular matrix m (edge j -> i for every stored
// off-diagonal entry (i, j)), appending nodes to w.topo in reverse
// postorder, which is a topological order for the solve. colEnd optionally
// limits traversal to columns < colEnd (used by LU where only the first j
// columns of L exist); pass m.C to consider the whole matrix.
func reach(m *CSC, bPattern []int, w *triWorkspace, colEnd int) {
	w.topo = w.topo[:0]
	for _, root := range bPattern {
		if w.visited[root] {
			continue
		}
		w.stack = append(w.stack[:0], root)
		w.kstack = append(w.kstack[:0], -1)
		w.visited[root] = true
		for len(w.stack) > 0 {
			top := len(w.stack) - 1
			j := w.stack[top]
			k := w.kstack[top]
			if k < 0 {
				if j < colEnd {
					k = m.ColPtr[j]
				} else {
					k = math.MaxInt // no outgoing edges
				}
			}
			advanced := false
			for j < colEnd && k < m.ColPtr[j+1] {
				i := m.RowIdx[k]
				k++
				if i != j && !w.visited[i] {
					w.visited[i] = true
					w.kstack[top] = k
					w.stack = append(w.stack, i)
					w.kstack = append(w.kstack, -1)
					advanced = true
					break
				}
			}
			if !advanced {
				w.stack = w.stack[:top]
				w.kstack = w.kstack[:top]
				w.topo = append(w.topo, j)
			}
		}
	}
	// Reverse postorder: dependencies of a node finish before it, so the
	// solve must process nodes in reverse append order.
	for i, j := 0, len(w.topo)-1; i < j; i, j = i+1, j-1 {
		w.topo[i], w.topo[j] = w.topo[j], w.topo[i]
	}
	for _, j := range w.topo {
		w.visited[j] = false
	}
}

// solveSparseRHS solves T x = b where T is triangular in CSC form and b is
// sparse (bRows/bVals). The nonzero pattern of x is computed by graph reach
// (Gilbert–Peierls) and only that pattern is touched. Results are scattered
// into w.x; the pattern is returned in topological order. If unit is true
// the diagonal is implicit 1. colEnd limits the columns considered (for the
// partial L during LU); pass t.C for a complete matrix.
func solveSparseRHS(t *CSC, bRows []int, bVals []float64, unit bool, w *triWorkspace, colEnd int) ([]int, error) {
	reach(t, bRows, w, colEnd)
	for _, i := range w.topo {
		w.x[i] = 0
	}
	for k, i := range bRows {
		w.x[i] = bVals[k]
	}
	for _, j := range w.topo {
		if j >= colEnd {
			continue // beyond factored region: value passes through
		}
		lo, hi := t.ColPtr[j], t.ColPtr[j+1]
		// Locate the diagonal within the (sorted) column.
		d := lo + sort.SearchInts(t.RowIdx[lo:hi], j)
		if !unit {
			if d >= hi || t.RowIdx[d] != j {
				return nil, fmt.Errorf("sparse: zero diagonal at %d in sparse triangular solve", j)
			}
			w.x[j] /= t.Val[d]
		}
		xj := w.x[j]
		if xj == 0 {
			continue
		}
		for k := lo; k < hi; k++ {
			i := t.RowIdx[k]
			if i == j {
				continue
			}
			w.x[i] -= t.Val[k] * xj
		}
	}
	return w.topo, nil
}

// ErrBudget reports that a triangular inversion exceeded its allowed
// fill-in, the signal the experiment harness maps to an out-of-memory
// outcome.
var ErrBudget = errors.New("sparse: triangular inverse exceeded nnz budget")

// InverseLower computes L⁻¹ for a lower triangular CSC matrix by solving
// L x = e_j column by column with reach-limited substitution, preserving
// any block structure of L exactly (Lemma 1 of the paper).
func InverseLower(l *CSC, unit bool) (*CSC, error) {
	return inverseTriangular(l, unit, 0)
}

// InverseUpper computes U⁻¹ for an upper triangular CSC matrix.
func InverseUpper(u *CSC) (*CSC, error) {
	return inverseTriangular(u, false, 0)
}

// InverseLowerBudget is InverseLower with a fill-in cap: once the inverse
// accumulates more than maxNNZ stored entries the computation aborts with
// ErrBudget. maxNNZ <= 0 means unlimited.
func InverseLowerBudget(l *CSC, unit bool, maxNNZ int64) (*CSC, error) {
	return inverseTriangular(l, unit, maxNNZ)
}

// InverseUpperBudget is InverseUpper with a fill-in cap.
func InverseUpperBudget(u *CSC, maxNNZ int64) (*CSC, error) {
	return inverseTriangular(u, false, maxNNZ)
}

func inverseTriangular(t *CSC, unit bool, maxNNZ int64) (*CSC, error) {
	if t.R != t.C {
		panic("sparse: triangular inverse requires a square matrix")
	}
	n := t.C
	w := newTriWorkspace(n)
	out := &CSC{R: n, C: n, ColPtr: make([]int, n+1)}
	eRow := []int{0}
	eVal := []float64{1}
	var colRows []int
	for j := 0; j < n; j++ {
		eRow[0] = j
		pattern, err := solveSparseRHS(t, eRow, eVal, unit, w, n)
		if err != nil {
			return nil, err
		}
		colRows = append(colRows[:0], pattern...)
		sort.Ints(colRows)
		for _, i := range colRows {
			if v := w.x[i]; v != 0 {
				out.RowIdx = append(out.RowIdx, i)
				out.Val = append(out.Val, v)
			}
		}
		out.ColPtr[j+1] = len(out.RowIdx)
		if maxNNZ > 0 && int64(len(out.RowIdx)) > maxNNZ {
			return nil, ErrBudget
		}
	}
	return out, nil
}
