package sparse

import (
	"fmt"
	"sort"
)

// RowSplice describes one row-range replacement for SpliceRows: rows
// [Lo, Lo+Block.R) of the target are replaced by Block's rows, with
// Block's column indices shifted by ColOffset. For a block-diagonal
// factor the natural splice is ColOffset == Lo (the fresh block lands
// back on the diagonal); for a tall cache like U₁⁻¹L₁⁻¹H₁₂ it is 0.
type RowSplice struct {
	Lo        int
	ColOffset int
	Block     *CSR
}

// SpliceRows returns a copy of m with the listed row ranges replaced by
// the splice blocks; rows outside every range are copied verbatim, so
// their stored entries (pattern and bits) are untouched. Ranges must be
// sorted by Lo, non-overlapping, and inside the matrix; shifted column
// indices must stay inside [0, m.C). The receiver is not modified — the
// incremental-rebuild path splices fresh block factors into a factor
// matrix that concurrent queries may still be reading.
func (m *CSR) SpliceRows(splices []RowSplice) *CSR {
	prev := 0
	nnz := 0
	for i, sp := range splices {
		if sp.Block == nil {
			panic(fmt.Sprintf("sparse: SpliceRows splice %d has nil block", i))
		}
		if sp.Lo < prev || sp.Lo+sp.Block.R > m.R {
			panic(fmt.Sprintf("sparse: SpliceRows range [%d,%d) out of order or outside %d rows",
				sp.Lo, sp.Lo+sp.Block.R, m.R))
		}
		if sp.ColOffset < 0 || sp.ColOffset+sp.Block.C > m.C {
			panic(fmt.Sprintf("sparse: SpliceRows columns [%d,%d) outside %d cols",
				sp.ColOffset, sp.ColOffset+sp.Block.C, m.C))
		}
		nnz += sp.Block.NNZ()
		prev = sp.Lo + sp.Block.R
	}
	// Entries kept from m: everything outside the spliced row ranges.
	kept := m.NNZ()
	for _, sp := range splices {
		kept -= m.RowPtr[sp.Lo+sp.Block.R] - m.RowPtr[sp.Lo]
	}
	out := &CSR{
		R: m.R, C: m.C,
		RowPtr: make([]int, m.R+1),
		ColIdx: make([]int, 0, kept+nnz),
		Val:    make([]float64, 0, kept+nnz),
	}
	si := 0
	for i := 0; i < m.R; {
		if si < len(splices) && splices[si].Lo == i {
			sp := splices[si]
			b := sp.Block
			for bi := 0; bi < b.R; bi++ {
				for k := b.RowPtr[bi]; k < b.RowPtr[bi+1]; k++ {
					out.ColIdx = append(out.ColIdx, b.ColIdx[k]+sp.ColOffset)
					out.Val = append(out.Val, b.Val[k])
				}
				out.RowPtr[i+bi+1] = len(out.ColIdx)
			}
			i += b.R
			si++
			continue
		}
		out.ColIdx = append(out.ColIdx, m.ColIdx[m.RowPtr[i]:m.RowPtr[i+1]]...)
		out.Val = append(out.Val, m.Val[m.RowPtr[i]:m.RowPtr[i+1]]...)
		out.RowPtr[i+1] = len(out.ColIdx)
		i++
	}
	return out
}

// ReplaceColumns returns a copy of m with every entry in the listed
// columns removed and the replacement coordinates inserted instead. cols
// must be sorted and duplicate-free; every replacement coordinate must
// fall in one of the listed columns (the whole new contents of those
// columns are given, not a delta). Rows outside the listed columns keep
// their stored entries bit-for-bit; within a row the result stays sorted
// by column. The receiver is not modified.
func (m *CSR) ReplaceColumns(cols []int, repl []Coord) *CSR {
	inSet := func(j int) bool {
		k := sort.SearchInts(cols, j)
		return k < len(cols) && cols[k] == j
	}
	for i := 1; i < len(cols); i++ {
		if cols[i-1] >= cols[i] {
			panic(fmt.Sprintf("sparse: ReplaceColumns columns not sorted and unique at index %d", i))
		}
	}
	// Bucket the replacement entries by row, sorted by column within each.
	byRow := make(map[int][]Coord, len(repl))
	for _, c := range repl {
		if c.Row < 0 || c.Row >= m.R || c.Col < 0 || c.Col >= m.C {
			panic(fmt.Sprintf("sparse: ReplaceColumns entry (%d,%d) outside %dx%d", c.Row, c.Col, m.R, m.C))
		}
		if !inSet(c.Col) {
			panic(fmt.Sprintf("sparse: ReplaceColumns entry in column %d, which is not being replaced", c.Col))
		}
		byRow[c.Row] = append(byRow[c.Row], c)
	}
	for _, rs := range byRow {
		sort.Slice(rs, func(a, b int) bool { return rs[a].Col < rs[b].Col })
		for i := 1; i < len(rs); i++ {
			if rs[i-1].Col == rs[i].Col {
				panic(fmt.Sprintf("sparse: ReplaceColumns duplicate entry (%d,%d)", rs[i].Row, rs[i].Col))
			}
		}
	}
	out := &CSR{R: m.R, C: m.C, RowPtr: make([]int, m.R+1)}
	for i := 0; i < m.R; i++ {
		news := byRow[i]
		ni := 0
		for k := m.RowPtr[i]; k < m.RowPtr[i+1]; k++ {
			j := m.ColIdx[k]
			for ni < len(news) && news[ni].Col < j {
				out.ColIdx = append(out.ColIdx, news[ni].Col)
				out.Val = append(out.Val, news[ni].Val)
				ni++
			}
			if inSet(j) {
				continue // old contents of a replaced column
			}
			out.ColIdx = append(out.ColIdx, j)
			out.Val = append(out.Val, m.Val[k])
		}
		for ; ni < len(news); ni++ {
			out.ColIdx = append(out.ColIdx, news[ni].Col)
			out.Val = append(out.Val, news[ni].Val)
		}
		out.RowPtr[i+1] = len(out.ColIdx)
	}
	return out
}
