package sparse

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// WorkerPool is a persistent set of worker goroutines for row-partitioned
// parallel kernels. Workers are spawned once and locked to OS threads (the
// closest portable approximation of CPU pinning Go offers), so repeated
// parallel products pay a channel handoff per task instead of a goroutine
// spawn plus scheduler warm-up per call.
//
// Run never requires a free worker to make progress: the calling goroutine
// always participates, and workers are recruited only if one is idle at
// dispatch time. Work is handed out through an atomic task cursor, so the
// assignment of tasks to goroutines is racy — callers must make each
// task's effect independent of which goroutine runs it (the row-partition
// kernels write disjoint output ranges, so their results are identical for
// any worker count, including zero recruited workers).
//
// Tasks must not call Run on the same pool (no nesting); a task that did
// could wait on workers that are all busy running its caller.
type WorkerPool struct {
	workers int
	work    chan func()
}

// NewWorkerPool starts a pool of n workers (n <= 0 selects GOMAXPROCS).
// The workers run until Close.
func NewWorkerPool(n int) *WorkerPool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &WorkerPool{workers: n, work: make(chan func())}
	for i := 0; i < n; i++ {
		go func() {
			runtime.LockOSThread()
			for f := range p.work {
				f()
			}
		}()
	}
	return p
}

// Workers returns the number of pool workers.
func (p *WorkerPool) Workers() int { return p.workers }

// Close stops the workers. Run must not be in flight or called afterwards.
func (p *WorkerPool) Close() { close(p.work) }

// Run executes f(0) … f(tasks-1), fanning tasks out over idle pool workers
// with the calling goroutine participating, and returns when every task
// has completed.
func (p *WorkerPool) Run(tasks int, f func(task int)) {
	if tasks <= 0 {
		return
	}
	if tasks == 1 {
		f(0)
		return
	}
	var cursor atomic.Int64
	loop := func() {
		for {
			t := cursor.Add(1) - 1
			if t >= int64(tasks) {
				return
			}
			f(int(t))
		}
	}
	var wg sync.WaitGroup
	recruit := p.workers
	if recruit > tasks-1 {
		recruit = tasks - 1
	}
	for i := 0; i < recruit; i++ {
		wg.Add(1)
		job := func() { defer wg.Done(); loop() }
		select {
		case p.work <- job: // an idle worker picked it up
		default: // all workers busy: the caller covers the work itself
			wg.Done()
		}
	}
	loop()
	wg.Wait()
}

var (
	defaultPoolOnce sync.Once
	defaultPool     *WorkerPool
)

// DefaultPool returns the process-wide pool of GOMAXPROCS workers, created
// on first use and shared by every parallel kernel (ParallelMul, the
// kernel-layer parallel wrapper), so the process never accumulates one
// pool per matrix.
func DefaultPool() *WorkerPool {
	defaultPoolOnce.Do(func() { defaultPool = NewWorkerPool(0) })
	return defaultPool
}

// SplitNNZ partitions rows [0, len(rowPtr)-1) into parts contiguous ranges
// of roughly equal stored-entry count, returning parts+1 ascending
// boundaries (cuts[0] = 0, cuts[parts] = row count). Ranges may be empty
// when a single row holds more than a part's share. Balancing by entries
// rather than rows keeps workers evenly loaded on skewed matrices, where
// an even row split can leave one worker with most of the arithmetic.
func SplitNNZ(rowPtr []int, parts int) []int {
	r := len(rowPtr) - 1
	if r < 0 || parts <= 0 {
		panic(fmt.Sprintf("sparse: SplitNNZ over %d rows into %d parts", r, parts))
	}
	cuts := make([]int, parts+1)
	cuts[parts] = r
	total := rowPtr[r]
	for w := 1; w < parts; w++ {
		target := total * w / parts
		// First row whose prefix reaches the target, then step back if the
		// previous boundary leaves the prefix nearer the target (a single
		// heavy row should land on whichever side balances better).
		cut := sort.SearchInts(rowPtr, target)
		if cut > r {
			cut = r
		}
		if cut > 0 && target-rowPtr[cut-1] < rowPtr[cut]-target {
			cut--
		}
		if cut < cuts[w-1] {
			cut = cuts[w-1]
		}
		cuts[w] = cut
	}
	return cuts
}
