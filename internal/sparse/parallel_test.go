package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParallelMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for trial := 0; trial < 15; trial++ {
		p, q, r := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a := randomCSR(rng, p, q, 0.25)
		b := randomCSR(rng, q, r, 0.25)
		want := Mul(a, b)
		for _, workers := range []int{0, 1, 2, 7, 100} {
			got := ParallelMul(a, b, workers)
			if !reflect.DeepEqual(got.RowPtr, want.RowPtr) ||
				!reflect.DeepEqual(got.ColIdx, want.ColIdx) ||
				!reflect.DeepEqual(got.Val, want.Val) {
				t.Fatalf("trial %d workers=%d: ParallelMul differs from Mul", trial, workers)
			}
		}
	}
}

func TestParallelMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	ParallelMul(Identity(3), Identity(4), 2)
}

func TestBlockDiagLUInverseMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	sizes := []int{7, 13, 1, 22, 5}
	var blocks []*CSR
	for _, sz := range sizes {
		blocks = append(blocks, randomDiagDominant(rng, sz, 0.3).ToCSR())
	}
	a := BlockDiag(blocks).ToCSC()

	f, err := LU(a)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	wantL, err := InverseLower(f.L, true)
	if err != nil {
		t.Fatalf("InverseLower: %v", err)
	}
	wantU, err := InverseUpper(f.U)
	if err != nil {
		t.Fatalf("InverseUpper: %v", err)
	}
	for _, workers := range []int{1, 3, 16} {
		gotL, gotU, err := BlockDiagLUInverse(a, sizes, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotL.Dense(), wantL.ToCSR().Dense()) {
			t.Fatalf("workers=%d: L inverse differs", workers)
		}
		if !reflect.DeepEqual(gotU.Dense(), wantU.ToCSR().Dense()) {
			t.Fatalf("workers=%d: U inverse differs", workers)
		}
	}
}

func TestBlockDiagLUInversePanicsOnBadBlocks(t *testing.T) {
	a := IdentityCSC(5)
	for name, blocks := range map[string][]int{
		"wrong sum":   {2, 2},
		"nonpositive": {5, 0},
		"negative":    {6, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			BlockDiagLUInverse(a, blocks, 2)
		}()
	}
}

func TestBlockDiagLUInverseSingularBlock(t *testing.T) {
	// Second block has an empty column: structurally singular.
	good := NewCSR(2, 2, []Coord{{0, 0, 2}, {1, 1, 2}})
	bad := NewCSR(2, 2, []Coord{{0, 0, 1}})
	a := BlockDiag([]*CSR{good, bad}).ToCSC()
	if _, _, err := BlockDiagLUInverse(a, []int{2, 2}, 2); err == nil {
		t.Fatal("expected singular-block error")
	}
}

// Property: ParallelMul is exactly Mul for random shapes and worker counts.
func TestQuickParallelMul(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	f := func(seed int64, w uint8) bool {
		lr := rand.New(rand.NewSource(seed))
		p, q, r := 1+lr.Intn(25), 1+lr.Intn(25), 1+lr.Intn(25)
		a := randomCSR(rng, p, q, 0.3)
		b := randomCSR(rng, q, r, 0.3)
		got := ParallelMul(a, b, 1+int(w)%8)
		want := Mul(a, b)
		return reflect.DeepEqual(got.Val, want.Val) &&
			reflect.DeepEqual(got.ColIdx, want.ColIdx) &&
			reflect.DeepEqual(got.RowPtr, want.RowPtr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
