package sparse

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParallelMulMatchesMul(t *testing.T) {
	rng := rand.New(rand.NewSource(130))
	for trial := 0; trial < 15; trial++ {
		p, q, r := 1+rng.Intn(40), 1+rng.Intn(40), 1+rng.Intn(40)
		a := randomCSR(rng, p, q, 0.25)
		b := randomCSR(rng, q, r, 0.25)
		want := Mul(a, b)
		for _, workers := range []int{0, 1, 2, 7, 100} {
			got := ParallelMul(a, b, workers)
			if !reflect.DeepEqual(got.RowPtr, want.RowPtr) ||
				!reflect.DeepEqual(got.ColIdx, want.ColIdx) ||
				!reflect.DeepEqual(got.Val, want.Val) {
				t.Fatalf("trial %d workers=%d: ParallelMul differs from Mul", trial, workers)
			}
		}
	}
}

// TestParallelMulWorkersInvariant drives matrices large enough to take the
// pooled parallel path (past parallelMulMinWork) and asserts the output is
// bit-identical for every workers value: the nnz-balanced cuts depend only
// on (a, workers) and each row is produced by exactly one range, so the
// result must not vary with scheduling or worker count.
func TestParallelMulWorkersInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	a := randomCSR(rng, 400, 400, 0.08)
	b := randomCSR(rng, 400, 400, 0.08)
	if work := float64(a.NNZ()) * float64(b.NNZ()) / float64(b.R); work < parallelMulMinWork {
		t.Fatalf("fixture too small to exercise the parallel path (work=%.0f)", work)
	}
	want := Mul(a, b)
	for _, workers := range []int{0, 1, 2, 3, 4, 7, 16, 400} {
		got := ParallelMul(a, b, workers)
		if !reflect.DeepEqual(got.RowPtr, want.RowPtr) ||
			!reflect.DeepEqual(got.ColIdx, want.ColIdx) ||
			!reflect.DeepEqual(got.Val, want.Val) {
			t.Fatalf("workers=%d: ParallelMul output differs from Mul", workers)
		}
	}
}

func TestParallelMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	ParallelMul(Identity(3), Identity(4), 2)
}

func TestBlockDiagLUInverseMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	sizes := []int{7, 13, 1, 22, 5}
	var blocks []*CSR
	for _, sz := range sizes {
		blocks = append(blocks, randomDiagDominant(rng, sz, 0.3).ToCSR())
	}
	a := BlockDiag(blocks).ToCSC()

	f, err := LU(a)
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	wantL, err := InverseLower(f.L, true)
	if err != nil {
		t.Fatalf("InverseLower: %v", err)
	}
	wantU, err := InverseUpper(f.U)
	if err != nil {
		t.Fatalf("InverseUpper: %v", err)
	}
	for _, workers := range []int{1, 3, 16} {
		gotL, gotU, err := BlockDiagLUInverse(a, sizes, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(gotL.Dense(), wantL.ToCSR().Dense()) {
			t.Fatalf("workers=%d: L inverse differs", workers)
		}
		if !reflect.DeepEqual(gotU.Dense(), wantU.ToCSR().Dense()) {
			t.Fatalf("workers=%d: U inverse differs", workers)
		}
	}
}

func TestBlockDiagLUInversePanicsOnBadBlocks(t *testing.T) {
	a := IdentityCSC(5)
	for name, blocks := range map[string][]int{
		"wrong sum":   {2, 2},
		"nonpositive": {5, 0},
		"negative":    {6, -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			BlockDiagLUInverse(a, blocks, 2)
		}()
	}
}

func TestBlockDiagLUInverseSingularBlock(t *testing.T) {
	// Second block has an empty column: structurally singular.
	good := NewCSR(2, 2, []Coord{{0, 0, 2}, {1, 1, 2}})
	bad := NewCSR(2, 2, []Coord{{0, 0, 1}})
	a := BlockDiag([]*CSR{good, bad}).ToCSC()
	if _, _, err := BlockDiagLUInverse(a, []int{2, 2}, 2); err == nil {
		t.Fatal("expected singular-block error")
	}
}

// TestParallelMulSkinnyAndTiny pins the worker-sizing fix: skinny products
// (few columns, the Schur-complement operand shape), matrices with fewer
// rows than workers, and near-empty matrices must all match Mul exactly —
// whether they take the fallback or the balanced parallel split.
func TestParallelMulSkinnyAndTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(133))
	cases := []struct {
		name string
		a, b *CSR
	}{
		{"skinny", randomCSR(rng, 500, 500, 0.02), randomCSR(rng, 500, 4, 0.3)},
		{"tiny-rows", randomCSR(rng, 3, 40, 0.4), randomCSR(rng, 40, 40, 0.2)},
		{"empty-a", NewCSR(30, 30, nil), randomCSR(rng, 30, 30, 0.2)},
		{"empty-b", randomCSR(rng, 30, 30, 0.2), NewCSR(30, 30, nil)},
		{"one-row", randomCSR(rng, 1, 50, 0.5), randomCSR(rng, 50, 50, 0.2)},
	}
	for _, tc := range cases {
		want := Mul(tc.a, tc.b)
		for _, workers := range []int{2, 8, 64} {
			got := ParallelMul(tc.a, tc.b, workers)
			if !reflect.DeepEqual(got.RowPtr, want.RowPtr) ||
				!reflect.DeepEqual(got.ColIdx, want.ColIdx) ||
				!reflect.DeepEqual(got.Val, want.Val) {
				t.Fatalf("%s workers=%d: ParallelMul differs from Mul", tc.name, workers)
			}
		}
	}
}

// BenchmarkParallelMulSchurShapes is the regression guard for the
// worker-sizing fix on the shapes Preprocess actually multiplies when
// forming S = H₂₂ − H₂₁ U₁⁻¹ L₁⁻¹ H₁₂: a large block-diagonal-ish factor
// times a skinny n₁×n₂ matrix, and the very skinny n₂×n₁ × n₁×n₂ tail.
// ParallelMul must never be slower than Mul here (it now falls back below
// the minimum-work threshold instead of spawning workers for tiny tails).
func BenchmarkParallelMulSchurShapes(b *testing.B) {
	rng := rand.New(rand.NewSource(134))
	n1, n2 := 4000, 24
	l1 := randomCSR(rng, n1, n1, 0.0015) // factor-like big operand
	h12 := randomCSR(rng, n1, n2, 0.05)  // skinny right operand
	h21 := randomCSR(rng, n2, n1, 0.05)  // very skinny tail product
	t2 := Mul(l1, h12)
	for _, bench := range []struct {
		name string
		fn   func()
	}{
		{"big-x-skinny/seq", func() { Mul(l1, h12) }},
		{"big-x-skinny/par4", func() { ParallelMul(l1, h12, 4) }},
		{"tail-x-skinny/seq", func() { Mul(h21, t2) }},
		{"tail-x-skinny/par4", func() { ParallelMul(h21, t2, 4) }},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bench.fn()
			}
		})
	}
}

// Property: ParallelMul is exactly Mul for random shapes and worker counts.
func TestQuickParallelMul(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	f := func(seed int64, w uint8) bool {
		lr := rand.New(rand.NewSource(seed))
		p, q, r := 1+lr.Intn(25), 1+lr.Intn(25), 1+lr.Intn(25)
		a := randomCSR(rng, p, q, 0.3)
		b := randomCSR(rng, q, r, 0.3)
		got := ParallelMul(a, b, 1+int(w)%8)
		want := Mul(a, b)
		return reflect.DeepEqual(got.Val, want.Val) &&
			reflect.DeepEqual(got.ColIdx, want.ColIdx) &&
			reflect.DeepEqual(got.RowPtr, want.RowPtr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
