package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randomCSR builds a random r x c matrix with roughly density*r*c entries.
func randomCSR(rng *rand.Rand, r, c int, density float64) *CSR {
	var coords []Coord
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				coords = append(coords, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(r, c, coords)
}

func densesEqual(t *testing.T, got, want []float64, tol float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", msg, len(got), len(want))
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > tol {
			t.Fatalf("%s: entry %d: got %g want %g", msg, i, got[i], want[i])
		}
	}
}

func TestNewCSRBasic(t *testing.T) {
	m := NewCSR(3, 4, []Coord{
		{0, 1, 2}, {2, 3, -1}, {1, 0, 5}, {0, 1, 3}, // duplicate (0,1) sums
	})
	if m.NNZ() != 3 {
		t.Fatalf("NNZ = %d, want 3 (duplicates summed)", m.NNZ())
	}
	if got := m.At(0, 1); got != 5 {
		t.Fatalf("At(0,1) = %g, want 5", got)
	}
	if got := m.At(1, 0); got != 5 {
		t.Fatalf("At(1,0) = %g, want 5", got)
	}
	if got := m.At(2, 3); got != -1 {
		t.Fatalf("At(2,3) = %g, want -1", got)
	}
	if got := m.At(2, 2); got != 0 {
		t.Fatalf("At(2,2) = %g, want 0", got)
	}
}

func TestNewCSRSortedWithinRows(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomCSR(rng, 20, 30, 0.2)
	for i := 0; i < m.R; i++ {
		cols, _ := m.Row(i)
		for k := 1; k < len(cols); k++ {
			if cols[k-1] >= cols[k] {
				t.Fatalf("row %d not strictly sorted: %v", i, cols)
			}
		}
	}
}

func TestNewCSRPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range coord")
		}
	}()
	NewCSR(2, 2, []Coord{{Row: 2, Col: 0, Val: 1}})
}

func TestIdentity(t *testing.T) {
	m := Identity(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if got := m.At(i, j); got != want {
				t.Fatalf("I[%d,%d] = %g, want %g", i, j, got, want)
			}
		}
	}
	x := []float64{1, 2, 3, 4}
	densesEqual(t, m.MulVec(x), x, 0, "I x")
}

func TestTransposeInvolution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		m := randomCSR(rng, r, c, 0.3)
		tt := m.Transpose().Transpose()
		if !reflect.DeepEqual(m.Dense(), tt.Dense()) {
			t.Fatalf("trial %d: (Aᵀ)ᵀ != A", trial)
		}
	}
}

func TestTransposeEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randomCSR(rng, 8, 13, 0.25)
	mt := m.Transpose()
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.At(i, j) != mt.At(j, i) {
				t.Fatalf("Aᵀ[%d,%d] != A[%d,%d]", j, i, i, j)
			}
		}
	}
}

func TestCSRCSCRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		m := randomCSR(rng, r, c, 0.3)
		back := m.ToCSC().ToCSR()
		if !reflect.DeepEqual(m.Dense(), back.Dense()) {
			t.Fatalf("trial %d: CSR -> CSC -> CSR changed matrix", trial)
		}
	}
}

func TestCSCAt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := randomCSR(rng, 10, 7, 0.3)
	mc := m.ToCSC()
	for i := 0; i < m.R; i++ {
		for j := 0; j < m.C; j++ {
			if m.At(i, j) != mc.At(i, j) {
				t.Fatalf("CSC At(%d,%d) mismatch", i, j)
			}
		}
	}
}

func TestNewCSCMatchesNewCSR(t *testing.T) {
	coords := []Coord{{0, 0, 1}, {1, 2, 3}, {2, 1, -2}, {1, 2, 1}}
	a := NewCSR(3, 3, coords)
	b := NewCSC(3, 3, coords)
	if !reflect.DeepEqual(a.Dense(), b.Dense()) {
		t.Fatal("NewCSC disagrees with NewCSR")
	}
}

func TestCoordsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := randomCSR(rng, 9, 9, 0.3)
	back := NewCSR(9, 9, m.Coords())
	if !reflect.DeepEqual(m.Dense(), back.Dense()) {
		t.Fatal("Coords roundtrip changed matrix")
	}
	mc := m.ToCSC()
	back2 := NewCSC(9, 9, mc.Coords())
	if !reflect.DeepEqual(m.Dense(), back2.Dense()) {
		t.Fatal("CSC Coords roundtrip changed matrix")
	}
}

func TestClone(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {1, 1, 2}})
	c := m.Clone()
	c.Val[0] = 99
	if m.Val[0] == 99 {
		t.Fatal("Clone shares value storage")
	}
	mc := m.ToCSC()
	cc := mc.Clone()
	cc.Val[0] = 42
	if mc.Val[0] == 42 {
		t.Fatal("CSC Clone shares value storage")
	}
}

func TestBytesAccounting(t *testing.T) {
	m := NewCSR(10, 10, []Coord{{0, 0, 1}, {5, 5, 2}})
	want := int64(2)*16 + int64(11)*8
	if got := m.Bytes(); got != want {
		t.Fatalf("Bytes = %d, want %d", got, want)
	}
}

// Property: for any list of triplets, building a CSR and reading it back via
// At sums duplicates exactly.
func TestQuickCSRAccumulatesDuplicates(t *testing.T) {
	f := func(raw []struct {
		R, C uint8
		V    int8
	}) bool {
		const n = 16
		coords := make([]Coord, len(raw))
		want := map[[2]int]float64{}
		for i, e := range raw {
			r, c := int(e.R)%n, int(e.C)%n
			coords[i] = Coord{Row: r, Col: c, Val: float64(e.V)}
			want[[2]int{r, c}] += float64(e.V)
		}
		m := NewCSR(n, n, coords)
		for k, v := range want {
			if m.At(k[0], k[1]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose preserves every entry.
func TestQuickTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		r, c := 1+lr.Intn(20), 1+lr.Intn(20)
		m := randomCSR(rng, r, c, 0.25)
		mt := m.Transpose()
		if mt.R != c || mt.C != r {
			return false
		}
		d, dt := m.Dense(), mt.Dense()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if d[i*c+j] != dt[j*r+i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
