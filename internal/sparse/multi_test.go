package sparse

import (
	"math/rand"
	"testing"
)

// randomCSRMulti builds a random r×c CSR with roughly density·r·c entries.
func randomCSRMulti(r, c int, density float64, seed int64) *CSR {
	rng := rand.New(rand.NewSource(seed))
	var coords []Coord
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				coords = append(coords, Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return NewCSR(r, c, coords)
}

// multiColumns extracts column k of a node-contiguous RHS block.
func multiColumn(x []float64, nb, k, n int) []float64 {
	out := make([]float64, n)
	for j := 0; j < n; j++ {
		out[j] = x[j*nb+k]
	}
	return out
}

// TestMulMultiToBitIdentical: every column of the SpMM result must equal
// the single-vector MulVecTo product bit-for-bit, across RHS widths.
func TestMulMultiToBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomCSRMulti(120, 80, 0.08, 11)
	for _, nb := range []int{1, 2, 3, 8, 17} {
		x := make([]float64, a.C*nb)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, a.R*nb)
		a.MulMultiTo(y, x, nb)
		for k := 0; k < nb; k++ {
			want := a.MulVec(multiColumn(x, nb, k, a.C))
			got := multiColumn(y, nb, k, a.R)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("nb=%d col %d row %d: %v != %v", nb, k, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMulRangeMultiTo: the row-restricted kernel must match MulVecRangeTo
// per column and leave rows outside [lo, hi) untouched.
func TestMulRangeMultiTo(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomCSRMulti(90, 90, 0.1, 12)
	const nb = 5
	x := make([]float64, a.C*nb)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	lo, hi := 20, 61
	y := make([]float64, a.R*nb)
	sentinel := -12345.0
	for i := range y {
		y[i] = sentinel
	}
	a.MulRangeMultiTo(y, x, nb, lo, hi)
	for k := 0; k < nb; k++ {
		xc := multiColumn(x, nb, k, a.C)
		want := make([]float64, a.R)
		a.MulVecRangeTo(want, xc, lo, hi)
		for i := 0; i < a.R; i++ {
			got := y[i*nb+k]
			if i < lo || i >= hi {
				if got != sentinel {
					t.Fatalf("col %d row %d outside range was written: %v", k, i, got)
				}
				continue
			}
			if got != want[i] {
				t.Fatalf("col %d row %d: %v != %v", k, i, got, want[i])
			}
		}
	}
}

// TestMulColRangeMultiTo: the column-restricted kernel must match
// MulVecColRangeTo per column when X is zero outside the range.
func TestMulColRangeMultiTo(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randomCSRMulti(70, 110, 0.09, 13)
	const nb = 4
	lo, hi := 30, 75
	x := make([]float64, a.C*nb)
	for j := lo; j < hi; j++ {
		for k := 0; k < nb; k++ {
			x[j*nb+k] = rng.NormFloat64()
		}
	}
	y := make([]float64, a.R*nb)
	a.MulColRangeMultiTo(y, x, nb, lo, hi)
	for k := 0; k < nb; k++ {
		xc := multiColumn(x, nb, k, a.C)
		want := make([]float64, a.R)
		a.MulVecColRangeTo(want, xc, lo, hi)
		for i := 0; i < a.R; i++ {
			if y[i*nb+k] != want[i] {
				t.Fatalf("col %d row %d: %v != %v", k, i, y[i*nb+k], want[i])
			}
		}
	}
}

// TestMulMultiToPanics locks in the dimension-mismatch contract.
func TestMulMultiToPanics(t *testing.T) {
	a := randomCSRMulti(10, 10, 0.3, 14)
	cases := []func(){
		func() { a.MulMultiTo(make([]float64, 10), make([]float64, 10), 0) },
		func() { a.MulMultiTo(make([]float64, 9), make([]float64, 10), 1) },
		func() { a.MulRangeMultiTo(make([]float64, 20), make([]float64, 20), 2, 5, 11) },
		func() { a.MulColRangeMultiTo(make([]float64, 20), make([]float64, 20), 2, -1, 5) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d did not panic", i)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkMulMulti compares nb separate MulVecTo passes against one
// MulMultiTo pass over the same matrix — the traversal-amortization the
// blocked batch solver relies on.
func BenchmarkMulMulti(b *testing.B) {
	a := randomCSRMulti(3000, 3000, 0.004, 15)
	const nb = 16
	x := make([]float64, a.C*nb)
	for i := range x {
		x[i] = float64(i%17) * 0.25
	}
	y := make([]float64, a.R*nb)
	b.Run("perseed", func(b *testing.B) {
		xc := make([]float64, a.C)
		yc := make([]float64, a.R)
		for i := 0; i < b.N; i++ {
			for k := 0; k < nb; k++ {
				for j := range xc {
					xc[j] = x[j*nb+k]
				}
				a.MulVecTo(yc, xc)
			}
		}
	})
	b.Run("blocked", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			a.MulMultiTo(y, x, nb)
		}
	})
}
