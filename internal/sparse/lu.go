package sparse

import (
	"fmt"
	"sort"
)

// LUFactors holds a sparse factorization A = L U with L unit lower
// triangular (unit diagonal stored explicitly) and U upper triangular, both
// in CSC form with sorted row indices.
type LUFactors struct {
	L *CSC
	U *CSC
}

// LU computes the sparse LU factorization of a square CSC matrix without
// pivoting using the Gilbert–Peierls left-looking algorithm. The caller
// must guarantee factorizability without pivoting; the RWR matrix
// H = I − (1−c)Ãᵀ is strictly column diagonally dominant for 0 < c < 1, so
// this always succeeds for H and any of its principal submatrices. A zero
// pivot is reported as an error.
func LU(a *CSC) (*LUFactors, error) {
	if a.R != a.C {
		panic(fmt.Sprintf("sparse: LU requires a square matrix, got %dx%d", a.R, a.C))
	}
	n := a.C
	l := &CSC{R: n, C: n, ColPtr: make([]int, n+1)}
	u := &CSC{R: n, C: n, ColPtr: make([]int, n+1)}
	w := newTriWorkspace(n)
	var pattern []int
	for j := 0; j < n; j++ {
		bRows := a.RowIdx[a.ColPtr[j]:a.ColPtr[j+1]]
		bVals := a.Val[a.ColPtr[j]:a.ColPtr[j+1]]
		// Solve L[:, :j] x = A[:, j] over the partial unit-lower factor.
		topo, err := solveSparseRHS(l, bRows, bVals, true, w, j)
		if err != nil {
			return nil, err
		}
		pattern = append(pattern[:0], topo...)
		sort.Ints(pattern)
		var pivot float64
		pivotSeen := false
		for _, i := range pattern {
			v := w.x[i]
			switch {
			case i < j:
				if v != 0 {
					u.RowIdx = append(u.RowIdx, i)
					u.Val = append(u.Val, v)
				}
			case i == j:
				pivot = v
				pivotSeen = true
			}
		}
		if !pivotSeen || pivot == 0 {
			return nil, fmt.Errorf("sparse: zero pivot at column %d", j)
		}
		u.RowIdx = append(u.RowIdx, j)
		u.Val = append(u.Val, pivot)
		u.ColPtr[j+1] = len(u.RowIdx)
		l.RowIdx = append(l.RowIdx, j)
		l.Val = append(l.Val, 1)
		for _, i := range pattern {
			if i > j {
				if v := w.x[i]; v != 0 {
					l.RowIdx = append(l.RowIdx, i)
					l.Val = append(l.Val, v/pivot)
				}
			}
		}
		l.ColPtr[j+1] = len(l.RowIdx)
	}
	return &LUFactors{L: l, U: u}, nil
}

// Solve solves A x = b given the factorization, overwriting b with x.
func (f *LUFactors) Solve(b []float64) error {
	if err := SolveLower(f.L, b, true); err != nil {
		return err
	}
	return SolveUpper(f.U, b)
}

// NNZ reports the combined number of stored entries in L and U.
func (f *LUFactors) NNZ() int { return f.L.NNZ() + f.U.NNZ() }
