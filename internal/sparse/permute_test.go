package sparse

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestInvertPermutation(t *testing.T) {
	p := []int{2, 0, 3, 1}
	q := InvertPermutation(p)
	for i := range p {
		if q[p[i]] != i {
			t.Fatalf("inverse wrong at %d", i)
		}
	}
}

func TestCheckPermutationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for duplicate entries")
		}
	}()
	CheckPermutation([]int{0, 0, 1})
}

func TestPermuteEntries(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(12)
		m := randomCSR(rng, n, n, 0.3)
		rp := rng.Perm(n)
		cp := rng.Perm(n)
		pm := m.Permute(rp, cp)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if pm.At(rp[i], cp[j]) != m.At(i, j) {
					t.Fatalf("Permute wrong at (%d,%d)", i, j)
				}
			}
		}
		// nil leaves an axis unpermuted.
		rowOnly := m.Permute(rp, nil)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if rowOnly.At(rp[i], j) != m.At(i, j) {
					t.Fatalf("row-only Permute wrong at (%d,%d)", i, j)
				}
			}
		}
	}
}

func TestPermuteCSCMatchesCSR(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	n := 10
	m := randomCSR(rng, n, n, 0.3)
	rp, cp := rng.Perm(n), rng.Perm(n)
	a := m.Permute(rp, cp).Dense()
	b := m.ToCSC().Permute(rp, cp).Dense()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("CSC Permute disagrees with CSR Permute")
	}
}

func TestPermuteInverseRestores(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	n := 12
	m := randomCSR(rng, n, n, 0.3)
	p := rng.Perm(n)
	inv := InvertPermutation(p)
	back := m.Permute(p, p).Permute(inv, inv)
	if !reflect.DeepEqual(m.Dense(), back.Dense()) {
		t.Fatal("permute then inverse-permute changed matrix")
	}
}

func TestSubmatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	m := randomCSR(rng, 10, 12, 0.3)
	sub := m.Submatrix(2, 7, 3, 11)
	if sub.R != 5 || sub.C != 8 {
		t.Fatalf("submatrix shape %dx%d", sub.R, sub.C)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 8; j++ {
			if sub.At(i, j) != m.At(i+2, j+3) {
				t.Fatalf("submatrix wrong at (%d,%d)", i, j)
			}
		}
	}
	subc := m.ToCSC().Submatrix(2, 7, 3, 11)
	if !reflect.DeepEqual(sub.Dense(), subc.Dense()) {
		t.Fatal("CSC Submatrix disagrees with CSR Submatrix")
	}
}

func TestSubmatrixEmpty(t *testing.T) {
	m := Identity(4)
	sub := m.Submatrix(2, 2, 0, 4)
	if sub.R != 0 || sub.C != 4 || sub.NNZ() != 0 {
		t.Fatalf("empty submatrix: %dx%d nnz=%d", sub.R, sub.C, sub.NNZ())
	}
}

func TestBlockDiag(t *testing.T) {
	a := NewCSR(2, 2, []Coord{{0, 1, 3}, {1, 0, 4}})
	b := NewCSR(3, 3, []Coord{{0, 2, 5}, {2, 2, 6}})
	bd := BlockDiag([]*CSR{a, b})
	if bd.R != 5 || bd.C != 5 {
		t.Fatalf("blockdiag shape %dx%d", bd.R, bd.C)
	}
	checks := map[[2]int]float64{
		{0, 1}: 3, {1, 0}: 4, {2, 4}: 5, {4, 4}: 6,
	}
	for k, v := range checks {
		if bd.At(k[0], k[1]) != v {
			t.Fatalf("blockdiag[%d,%d] = %g want %g", k[0], k[1], bd.At(k[0], k[1]), v)
		}
	}
	if bd.NNZ() != 4 {
		t.Fatalf("blockdiag nnz %d, want 4", bd.NNZ())
	}
}

func TestBlockDiagRequiresSquare(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-square block")
		}
	}()
	BlockDiag([]*CSR{NewCSR(2, 3, nil)})
}

// Property: permutation preserves the multiset of values and the nnz count.
func TestQuickPermutePreservesValues(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		n := 1 + lr.Intn(15)
		m := randomCSR(rng, n, n, 0.3)
		p := lr.Perm(n)
		pm := m.Permute(p, p)
		if pm.NNZ() != m.NNZ() {
			return false
		}
		a := append([]float64(nil), m.Val...)
		b := append([]float64(nil), pm.Val...)
		sort.Float64s(a)
		sort.Float64s(b)
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
