package sparse

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// denseMulVec is the reference mat-vec for tests.
func denseMulVec(d []float64, r, c int, x []float64) []float64 {
	y := make([]float64, r)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			y[i] += d[i*c+j] * x[j]
		}
	}
	return y
}

func randomVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestMulVecMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 30; trial++ {
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rng, r, c, 0.3)
		x := randomVec(rng, c)
		want := denseMulVec(m.Dense(), r, c, x)
		densesEqual(t, m.MulVec(x), want, 1e-12, "CSR MulVec")
		densesEqual(t, m.ToCSC().MulVec(x), want, 1e-12, "CSC MulVec")
	}
}

func TestMulVecRangeTo(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rng, r, c, 0.3)
		x := randomVec(rng, c)
		lo := rng.Intn(r + 1)
		hi := lo + rng.Intn(r-lo+1)
		full := m.MulVec(x)
		got := make([]float64, r)
		sentinel := math.Inf(1)
		for i := range got {
			got[i] = sentinel
		}
		m.MulVecRangeTo(got, x, lo, hi)
		for i := 0; i < r; i++ {
			if i >= lo && i < hi {
				if got[i] != full[i] {
					t.Fatalf("row %d: %g, want %g (bit-identical)", i, got[i], full[i])
				}
			} else if got[i] != sentinel {
				t.Fatalf("row %d outside [%d,%d) was written", i, lo, hi)
			}
		}
	}
}

func TestMulVecColRangeTo(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 30; trial++ {
		r, c := 1+rng.Intn(20), 1+rng.Intn(20)
		m := randomCSR(rng, r, c, 0.3)
		lo := rng.Intn(c + 1)
		hi := lo + rng.Intn(c-lo+1)
		// x supported only on [lo, hi): the restricted product must then be
		// bit-identical to the full one wherever the full one is nonzero.
		x := make([]float64, c)
		for j := lo; j < hi; j++ {
			x[j] = rng.NormFloat64()
		}
		full := m.MulVec(x)
		got := make([]float64, r)
		m.MulVecColRangeTo(got, x, lo, hi)
		for i := 0; i < r; i++ {
			if got[i] != full[i] {
				t.Fatalf("row %d: %g, want %g", i, got[i], full[i])
			}
		}
	}
}

func TestMulVecRangePanics(t *testing.T) {
	m := Identity(3)
	x := []float64{1, 2, 3}
	y := make([]float64, 3)
	for name, fn := range map[string]func(){
		"row-range":    func() { m.MulVecRangeTo(y, x, 2, 4) },
		"row-reversed": func() { m.MulVecRangeTo(y, x, 2, 1) },
		"col-range":    func() { m.MulVecColRangeTo(y, x, -1, 2) },
		"col-shape":    func() { m.MulVecColRangeTo(y, x[:2], 0, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulVecT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(15), 1+rng.Intn(15)
		m := randomCSR(rng, r, c, 0.3)
		x := randomVec(rng, r)
		want := m.Transpose().MulVec(x)
		densesEqual(t, m.MulVecT(x), want, 1e-12, "MulVecT")
	}
}

func TestMulVecShapePanics(t *testing.T) {
	m := Identity(3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	m.MulVec([]float64{1, 2})
}

func TestAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomCSR(rng, r, c, 0.3)
		b := randomCSR(rng, r, c, 0.3)
		sum := Add(a, b).Dense()
		diff := Sub(a, b).Dense()
		da, db := a.Dense(), b.Dense()
		for i := range da {
			if math.Abs(sum[i]-(da[i]+db[i])) > 1e-14 {
				t.Fatalf("Add entry %d wrong", i)
			}
			if math.Abs(diff[i]-(da[i]-db[i])) > 1e-14 {
				t.Fatalf("Sub entry %d wrong", i)
			}
		}
	}
}

func TestScale(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 2}, {1, 1, -3}})
	m.Scale(0.5)
	if m.At(0, 0) != 1 || m.At(1, 1) != -1.5 {
		t.Fatalf("Scale wrong: %v", m.Dense())
	}
	mc := NewCSC(2, 2, []Coord{{0, 0, 2}})
	mc.Scale(2)
	if mc.At(0, 0) != 4 {
		t.Fatal("CSC Scale wrong")
	}
}

func TestDrop(t *testing.T) {
	m := NewCSR(2, 3, []Coord{{0, 0, 0.5}, {0, 2, 1e-9}, {1, 1, -0.2}, {1, 2, -1e-12}})
	d := m.Drop(1e-6)
	if d.NNZ() != 2 {
		t.Fatalf("Drop kept %d entries, want 2", d.NNZ())
	}
	if d.At(0, 0) != 0.5 || d.At(1, 1) != -0.2 {
		t.Fatal("Drop removed wrong entries")
	}
	// CSC drop matches.
	dc := m.ToCSC().Drop(1e-6)
	if !reflect.DeepEqual(d.Dense(), dc.Dense()) {
		t.Fatal("CSC Drop disagrees with CSR Drop")
	}
	// Original untouched.
	if m.NNZ() != 4 {
		t.Fatal("Drop mutated the receiver")
	}
}

func TestPrune(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, 1}, {0, 1, -1}, {0, 1, 1}}) // (0,1) cancels
	if m.NNZ() != 2 {
		t.Fatalf("construction kept %d entries", m.NNZ())
	}
	p := m.Prune()
	if p.NNZ() != 1 || p.At(0, 0) != 1 {
		t.Fatalf("Prune wrong: nnz=%d", p.NNZ())
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewCSR(2, 2, []Coord{{0, 0, -3}, {1, 1, 2}})
	if m.MaxAbs() != 3 {
		t.Fatalf("MaxAbs = %g, want 3", m.MaxAbs())
	}
	if Identity(0).MaxAbs() != 0 {
		t.Fatal("empty MaxAbs should be 0")
	}
}

func TestDenseFromDenseRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		r, c := 1+rng.Intn(10), 1+rng.Intn(10)
		m := randomCSR(rng, r, c, 0.4)
		back := FromDense(r, c, m.Dense())
		if !reflect.DeepEqual(m.Dense(), back.Dense()) {
			t.Fatal("FromDense(Dense()) changed matrix")
		}
	}
}

func TestRowColAccessors(t *testing.T) {
	m := NewCSR(3, 3, []Coord{{1, 0, 4}, {1, 2, 5}})
	cols, vals := m.Row(1)
	if len(cols) != 2 || cols[0] != 0 || cols[1] != 2 || vals[0] != 4 || vals[1] != 5 {
		t.Fatalf("Row(1) = %v %v", cols, vals)
	}
	mc := m.ToCSC()
	rows, cvals := mc.Col(2)
	if len(rows) != 1 || rows[0] != 1 || cvals[0] != 5 {
		t.Fatalf("Col(2) = %v %v", rows, cvals)
	}
}

// Property: MulVec is linear: A(αx + βy) = αAx + βAy.
func TestQuickMulVecLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	f := func(seed int64, alpha, beta int8) bool {
		lr := rand.New(rand.NewSource(seed))
		r, c := 1+lr.Intn(15), 1+lr.Intn(15)
		m := randomCSR(rng, r, c, 0.3)
		x, y := randomVec(rng, c), randomVec(rng, c)
		a, b := float64(alpha), float64(beta)
		comb := make([]float64, c)
		for i := range comb {
			comb[i] = a*x[i] + b*y[i]
		}
		lhs := m.MulVec(comb)
		mx, my := m.MulVec(x), m.MulVec(y)
		for i := range lhs {
			if math.Abs(lhs[i]-(a*mx[i]+b*my[i])) > 1e-9*(1+math.Abs(lhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Add is commutative and Sub(a,a) is zero.
func TestQuickAddSub(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		r, c := 1+lr.Intn(12), 1+lr.Intn(12)
		a := randomCSR(rng, r, c, 0.3)
		b := randomCSR(rng, r, c, 0.3)
		if !reflect.DeepEqual(Add(a, b).Dense(), Add(b, a).Dense()) {
			return false
		}
		for _, v := range Sub(a, a).Dense() {
			if v != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
