package kernel_test

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"bear/internal/sparse"
	"bear/internal/sparse/kernel"
)

func randCSR(rng *rand.Rand, r, c int, density float64) *sparse.CSR {
	var coords []sparse.Coord
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				coords = append(coords, sparse.Coord{Row: i, Col: j, Val: rng.NormFloat64()})
			}
		}
	}
	return sparse.NewCSR(r, c, coords)
}

// blockDiagCSR emits a block-diagonal matrix with dense-ish blocks — the
// spoke-factor shape where the hybrid layout's dense-run path dominates.
func blockDiagCSR(rng *rand.Rand, blocks []int, fill float64) *sparse.CSR {
	var coords []sparse.Coord
	off := 0
	for _, b := range blocks {
		for i := 0; i < b; i++ {
			for j := 0; j < b; j++ {
				if i == j || rng.Float64() < fill {
					coords = append(coords, sparse.Coord{Row: off + i, Col: off + j, Val: rng.NormFloat64()})
				}
			}
		}
		off += b
	}
	return sparse.NewCSR(off, off, coords)
}

type layoutCase struct {
	name  string
	build func(m *sparse.CSR) kernel.Matrix
}

// layoutCases enumerates every layout × worker-count combination the
// property tests cover: all storage layouts sequentially, and each
// wrapped in the parallel row-partitioner at 1, 3 and GOMAXPROCS lanes.
func layoutCases(t testing.TB) []layoutCase {
	cases := []layoutCase{
		{"csr", func(m *sparse.CSR) kernel.Matrix { return kernel.NewCSR(m) }},
		{"hybrid", func(m *sparse.CSR) kernel.Matrix {
			h := kernel.NewHybrid(m)
			if h == nil {
				t.Fatal("NewHybrid returned nil for an int32-narrowable matrix")
			}
			return h
		}},
		{"sell", func(m *sparse.CSR) kernel.Matrix {
			s := kernel.NewSELL(m)
			if s == nil {
				t.Fatal("NewSELL returned nil for an int32-narrowable matrix")
			}
			return s
		}},
	}
	for _, workers := range []int{1, 3, runtime.GOMAXPROCS(0)} {
		workers := workers
		for _, base := range cases[:3] {
			base := base
			cases = append(cases, layoutCase{
				name: fmt.Sprintf("parallel(%s,w=%d)", base.name, workers),
				build: func(m *sparse.CSR) kernel.Matrix {
					return kernel.NewParallel(base.build(m), m, workers)
				},
			})
		}
	}
	return cases
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if d == 0 {
		return 0
	}
	scale := math.Abs(want)
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// checkVec compares a kernel result against the baseline: bit-identical
// in Exact mode, ≤1e-12 relative error in Reassoc mode.
func checkVec(t *testing.T, what string, mode kernel.Mode, got, want []float64) {
	t.Helper()
	for i := range want {
		if mode == kernel.Exact {
			if got[i] != want[i] && !(math.IsNaN(got[i]) && math.IsNaN(want[i])) {
				t.Fatalf("%s [%s]: y[%d] = %v, baseline %v (must be bit-identical)", what, mode, i, got[i], want[i])
			}
		} else if e := relErr(got[i], want[i]); e > 1e-12 {
			t.Fatalf("%s [%s]: y[%d] = %v, baseline %v, rel err %g > 1e-12", what, mode, i, got[i], want[i], e)
		}
	}
}

func fixtures(rng *rand.Rand) map[string]*sparse.CSR {
	return map[string]*sparse.CSR{
		"random-sparse":  randCSR(rng, 97, 97, 0.06),
		"random-dense":   randCSR(rng, 40, 40, 0.45),
		"rect-wide":      randCSR(rng, 31, 120, 0.1),
		"rect-tall":      randCSR(rng, 120, 31, 0.1),
		"block-diagonal": blockDiagCSR(rng, []int{17, 9, 30, 1, 24}, 0.7),
		"empty-rows":     sparse.NewCSR(50, 50, []sparse.Coord{{Row: 3, Col: 7, Val: 2}, {Row: 48, Col: 0, Val: -1}}),
		"empty":          sparse.NewCSR(8, 8, nil),
	}
}

// TestKernelLayoutsMatchBaseline is the satellite property test: random
// graphs × every layout × {1, 3, GOMAXPROCS} workers, asserting
// bit-identical results vs baseline CSR in Exact mode and ≤1e-12 relative
// error in Reassoc mode, for every primitive in the Matrix interface.
// CI runs this under -race, which also exercises the pool partitioning.
func TestKernelLayoutsMatchBaseline(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for mname, m := range fixtures(rng) {
		x := make([]float64, m.C)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		q := make([]float64, m.R)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		const nb = 3
		xm := make([]float64, m.C*nb)
		for i := range xm {
			xm[i] = rng.NormFloat64()
		}
		rowWins := [][2]int{{0, m.R}, {m.R / 3, 2 * m.R / 3}, {m.R / 2, m.R / 2}}
		colWins := [][2]int{{0, m.C}, {m.C / 4, 3 * m.C / 4}}

		// Baselines straight from the sparse package.
		wantVec := make([]float64, m.R)
		m.MulVecTo(wantVec, x)
		wantRes := make([]float64, m.R)
		sparse.ResidualTo(wantRes, q, m, x)
		wantMM := make([]float64, m.R*nb)
		m.MulMultiTo(wantMM, xm, nb)

		for _, lc := range layoutCases(t) {
			k := lc.build(m)
			if r, c := k.Dims(); r != m.R || c != m.C {
				t.Fatalf("%s/%s: Dims = %dx%d, want %dx%d", mname, lc.name, r, c, m.R, m.C)
			}
			if k.NNZ() != m.NNZ() {
				t.Fatalf("%s/%s: NNZ = %d, want %d", mname, lc.name, k.NNZ(), m.NNZ())
			}
			for _, mode := range []kernel.Mode{kernel.Exact, kernel.Reassoc} {
				tag := fmt.Sprintf("%s/%s", mname, lc.name)

				y := make([]float64, m.R)
				k.SpMV(y, x, mode)
				checkVec(t, tag+"/SpMV", mode, y, wantVec)
				// Determinism: a second call must reproduce the first bit
				// for bit, in either mode.
				y2 := make([]float64, m.R)
				k.SpMV(y2, x, mode)
				checkVec(t, tag+"/SpMV-repeat", kernel.Exact, y2, y)

				for _, w := range rowWins {
					lo, hi := w[0], w[1]
					want := make([]float64, m.R)
					m.MulVecRangeTo(want, x, lo, hi)
					got := make([]float64, m.R)
					k.SpMVRange(got, x, lo, hi, mode)
					checkVec(t, fmt.Sprintf("%s/SpMVRange[%d:%d]", tag, lo, hi), mode, got[lo:hi], want[lo:hi])
				}
				for _, w := range colWins {
					lo, hi := w[0], w[1]
					want := make([]float64, m.R)
					m.MulVecColRangeTo(want, x, lo, hi)
					got := make([]float64, m.R)
					k.SpMVColRange(got, x, lo, hi, mode)
					checkVec(t, fmt.Sprintf("%s/SpMVColRange[%d:%d]", tag, lo, hi), mode, got, want)
				}

				ym := make([]float64, m.R*nb)
				k.SpMM(ym, xm, nb, mode)
				checkVec(t, tag+"/SpMM", mode, ym, wantMM)
				for _, w := range rowWins {
					lo, hi := w[0], w[1]
					want := make([]float64, m.R*nb)
					m.MulRangeMultiTo(want, xm, nb, lo, hi)
					got := make([]float64, m.R*nb)
					k.SpMMRange(got, xm, nb, lo, hi, mode)
					checkVec(t, fmt.Sprintf("%s/SpMMRange[%d:%d]", tag, lo, hi), mode, got[lo*nb:hi*nb], want[lo*nb:hi*nb])
				}
				for _, w := range colWins {
					lo, hi := w[0], w[1]
					want := make([]float64, m.R*nb)
					m.MulColRangeMultiTo(want, xm, nb, lo, hi)
					got := make([]float64, m.R*nb)
					k.SpMMColRange(got, xm, nb, lo, hi, mode)
					checkVec(t, fmt.Sprintf("%s/SpMMColRange[%d:%d]", tag, lo, hi), mode, got, want)
				}

				if m.R == m.C {
					res := make([]float64, m.R)
					k.Residual(res, q, x, mode)
					checkVec(t, tag+"/Residual", mode, res, wantRes)
				}
			}
		}
	}
}

func TestParseConfig(t *testing.T) {
	for spec, want := range map[string]kernel.Config{
		"":         {},
		"auto":     {},
		"csr":      {Layout: kernel.ForceCSR},
		"hybrid":   {Layout: kernel.ForceHybrid},
		"sell":     {Layout: kernel.ForceSELL},
		"parallel": {Workers: -1},
	} {
		got, err := kernel.ParseConfig(spec)
		if err != nil {
			t.Fatalf("ParseConfig(%q): %v", spec, err)
		}
		if got != want {
			t.Fatalf("ParseConfig(%q) = %+v, want %+v", spec, got, want)
		}
	}
	if _, err := kernel.ParseConfig("blocked-nonsense"); err == nil {
		t.Fatal("ParseConfig accepted an unknown spec")
	}
}

// TestAutoSelection pins the heuristic: near-diagonal matrices (mean ≤ 2
// entries per row, where SELL measures ~1.5× over CSR) pick SELL, denser
// ones stay on CSR, small matrices never pay layout construction, and
// the parallel wrapper engages only past the nnz floor.
func TestAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	// Near-diagonal: 1–2 entries per row, the spoke-factor shape of
	// periphery-heavy graphs.
	nearDiag := blockDiagCSR(rng, func() []int {
		blocks := make([]int, 300)
		for i := range blocks {
			blocks[i] = 1 + i%2
		}
		return blocks
	}(), 1)
	if got := kernel.New(nearDiag, kernel.Config{}).Layout(); got != "sell" {
		t.Fatalf("near-diagonal auto layout = %s, want sell", got)
	}
	// Dense blocks: ~40 entries per row — CSR stays.
	spoke := blockDiagCSR(rng, []int{40, 40, 40}, 1)
	if got := kernel.New(spoke, kernel.Config{}).Layout(); got != "csr" {
		t.Fatalf("dense-block auto layout = %s, want csr", got)
	}
	tiny := sparse.Identity(40)
	if got := kernel.New(tiny, kernel.Config{}).Layout(); got != "csr" {
		t.Fatalf("tiny auto layout = %s, want csr", got)
	}
	if got := kernel.New(spoke, kernel.Config{Layout: kernel.ForceHybrid}).Layout(); got != "hybrid" {
		t.Fatalf("forced layout = %s, want hybrid", got)
	}
	// spoke has ~4.8k entries — under the parallel floor, so no wrapper
	// even with workers requested.
	if got := kernel.New(spoke, kernel.Config{Workers: 4}).Layout(); got == "parallel" {
		t.Fatal("parallel wrapper engaged below the nnz floor")
	}
	big := randCSR(rng, 600, 600, 0.12)
	if big.NNZ() < 1<<15 {
		t.Fatalf("fixture under the parallel floor: nnz=%d", big.NNZ())
	}
	if got := kernel.New(big, kernel.Config{Workers: 4}).Layout(); got != "parallel" {
		t.Fatalf("large matrix with workers=4 layout = %s, want parallel", got)
	}
}
