package kernel_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"bear/internal/core"
	"bear/internal/graph/gen"
	"bear/internal/sparse"
	"bear/internal/sparse/kernel"
)

var (
	factorOnce sync.Once
	factors    map[string]*sparse.CSR
)

// benchFactors preprocesses the caveman-with-hubs serving benchmark graph
// (the BENCH_query.json fixture) and exposes the operand matrices of
// Algorithm 2: the block-diagonal spoke factors L1⁻¹/U1⁻¹ (the H11
// subsystem every query solves twice), the cross block H12, and the Schur
// factor L2⁻¹.
func benchFactors(b *testing.B) map[string]*sparse.CSR {
	factorOnce.Do(func() {
		g := gen.CavemanHubs(gen.CavemanHubsConfig{
			Communities: 150, Size: 30, PIntra: 0.25, Hubs: 12, HubDeg: 60, Seed: 42,
		})
		p, err := core.Preprocess(g, core.Options{})
		if err != nil {
			panic(err)
		}
		factors = map[string]*sparse.CSR{
			"l1inv": p.L1Inv,
			"u1inv": p.U1Inv,
			"h12":   p.H12,
			"l2inv": p.L2Inv,
		}
	})
	return factors
}

func benchLayouts(m *sparse.CSR) []struct {
	name string
	k    kernel.Matrix
} {
	out := []struct {
		name string
		k    kernel.Matrix
	}{
		{"csr", kernel.NewCSR(m)},
	}
	if h := kernel.NewHybrid(m); h != nil {
		out = append(out, struct {
			name string
			k    kernel.Matrix
		}{"hybrid", h})
	}
	if s := kernel.NewSELL(m); s != nil {
		out = append(out, struct {
			name string
			k    kernel.Matrix
		}{"sell", s})
	}
	for _, w := range []int{0} {
		out = append(out, struct {
			name string
			k    kernel.Matrix
		}{fmt.Sprintf("parallel-w%d", runtime.GOMAXPROCS(0)), kernel.NewParallel(kernel.NewCSR(m), m, w)})
	}
	return out
}

// BenchmarkKernelSpMV sweeps format × threads × block shape on the real
// preprocessed factors; results feed BENCH_kernels.json and the CI
// regression gate (bearbench -exp kernels).
func BenchmarkKernelSpMV(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	for _, mname := range []string{"l1inv", "u1inv", "h12", "l2inv"} {
		m := benchFactors(b)[mname]
		x := make([]float64, m.C)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, m.R)
		for _, lc := range benchLayouts(m) {
			b.Run(fmt.Sprintf("%s/%s", mname, lc.name), func(b *testing.B) {
				b.ReportMetric(float64(m.NNZ()), "nnz")
				for i := 0; i < b.N; i++ {
					lc.k.SpMV(y, x, kernel.Exact)
				}
			})
		}
	}
}

// BenchmarkKernelSpMM covers the batched multi-RHS path on the spoke
// factor (the QueryBatch inner kernel).
func BenchmarkKernelSpMM(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := benchFactors(b)["l1inv"]
	const nb = 8
	x := make([]float64, m.C*nb)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y := make([]float64, m.R*nb)
	for _, lc := range benchLayouts(m) {
		b.Run(lc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lc.k.SpMM(y, x, nb, kernel.Exact)
			}
		})
	}
}
