package kernel

import (
	"runtime"

	"bear/internal/sparse"
)

// minParallelNNZ is the stored-entry count below which wrapping a matrix
// in Parallel is refused by the selection logic: a pool handoff costs on
// the order of a few microseconds, which a small SpMV cannot amortize.
const minParallelNNZ = 1 << 15

// Parallel row-partitions SpMV/SpMM over the shared persistent worker
// pool. Partition boundaries are nnz-balanced cuts computed once at
// construction from the matrix and the worker count — each output row
// belongs to exactly one partition regardless of scheduling, and within a
// partition the wrapped layout runs unchanged, so Exact mode stays
// bit-identical for any worker count.
//
// Column-windowed kernels and Residual run sequentially on the wrapped
// layout: BEAR only calls them on small windows or with dependencies that
// do not row-partition.
type Parallel struct {
	inner Matrix
	cuts  []int
}

// NewParallel wraps inner (stored as m) with row partitions for workers
// parallel lanes (<= 0 selects GOMAXPROCS).
func NewParallel(inner Matrix, m *sparse.CSR, workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > m.R && m.R > 0 {
		workers = m.R
	}
	if workers < 1 {
		workers = 1
	}
	return &Parallel{inner: inner, cuts: sparse.SplitNNZ(m.RowPtr, workers)}
}

// Inner returns the wrapped layout.
func (p *Parallel) Inner() Matrix { return p.inner }

func (p *Parallel) Dims() (int, int) { return p.inner.Dims() }
func (p *Parallel) NNZ() int         { return p.inner.NNZ() }
func (p *Parallel) Layout() string   { return layoutParallel }

func (p *Parallel) SpMV(y, x []float64, mode Mode) {
	statSpMV(layoutParallel)
	parts := len(p.cuts) - 1
	sparse.DefaultPool().Run(parts, func(w int) {
		if p.cuts[w] < p.cuts[w+1] {
			p.inner.SpMVRange(y, x, p.cuts[w], p.cuts[w+1], mode)
		}
	})
}

func (p *Parallel) SpMVRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutParallel)
	// Ranged calls target single spoke blocks on the fast path — too small
	// to fan out again.
	p.inner.SpMVRange(y, x, lo, hi, mode)
}

func (p *Parallel) SpMVColRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutParallel)
	p.inner.SpMVColRange(y, x, lo, hi, mode)
}

func (p *Parallel) SpMM(y, x []float64, nb int, mode Mode) {
	statSpMM(layoutParallel)
	parts := len(p.cuts) - 1
	sparse.DefaultPool().Run(parts, func(w int) {
		if p.cuts[w] < p.cuts[w+1] {
			p.inner.SpMMRange(y, x, nb, p.cuts[w], p.cuts[w+1], mode)
		}
	})
}

func (p *Parallel) SpMMRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutParallel)
	p.inner.SpMMRange(y, x, nb, lo, hi, mode)
}

func (p *Parallel) SpMMColRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutParallel)
	p.inner.SpMMColRange(y, x, nb, lo, hi, mode)
}

func (p *Parallel) Residual(r, q, x []float64, mode Mode) {
	statSpMV(layoutParallel)
	p.inner.Residual(r, q, x, mode)
}
