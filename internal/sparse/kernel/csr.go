package kernel

import "bear/internal/sparse"

// CSR is the baseline layout: a thin adapter over the tuned kernels of
// sparse.CSR. Exact mode delegates to them directly (bit-identity by
// construction); Reassoc mode runs a 4-way strided unroll for the
// vector kernels.
type CSR struct {
	m *sparse.CSR
}

// NewCSR wraps m without copying.
func NewCSR(m *sparse.CSR) *CSR { return &CSR{m: m} }

func (k *CSR) Dims() (int, int) { return k.m.R, k.m.C }
func (k *CSR) NNZ() int         { return k.m.NNZ() }
func (k *CSR) Layout() string   { return layoutCSR }

// reassocDot accumulates val·x[col] with four strided partial sums
// combined in the fixed order (a0+a1)+(a2+a3), then a serial tail —
// deterministic, but rounded differently from the serial Exact order.
func reassocDot(val []float64, col []int, x []float64) float64 {
	var a0, a1, a2, a3 float64
	j := 0
	for ; j+4 <= len(val); j += 4 {
		a0 += val[j] * x[col[j]]
		a1 += val[j+1] * x[col[j+1]]
		a2 += val[j+2] * x[col[j+2]]
		a3 += val[j+3] * x[col[j+3]]
	}
	s := (a0 + a1) + (a2 + a3)
	for ; j < len(val); j++ {
		s += val[j] * x[col[j]]
	}
	return s
}

func (k *CSR) reassocRows(y, x []float64, lo, hi int) {
	m := k.m
	for i := lo; i < hi; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		y[i] = reassocDot(m.Val[ks:ke], m.ColIdx[ks:ke:ke], x)
	}
}

func (k *CSR) SpMV(y, x []float64, mode Mode) {
	statSpMV(layoutCSR)
	if mode == Reassoc {
		k.reassocRows(y, x, 0, k.m.R)
		return
	}
	k.m.MulVecTo(y, x)
}

func (k *CSR) SpMVRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutCSR)
	if mode == Reassoc {
		k.reassocRows(y, x, lo, hi)
		return
	}
	k.m.MulVecRangeTo(y, x, lo, hi)
}

func (k *CSR) SpMVColRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutCSR)
	// The column-windowed kernel binary-searches each row's window; rows
	// are short there, so no reassociated variant pays off.
	k.m.MulVecColRangeTo(y, x, lo, hi)
}

func (k *CSR) SpMM(y, x []float64, nb int, mode Mode) {
	statSpMM(layoutCSR)
	k.m.MulMultiTo(y, x, nb)
}

func (k *CSR) SpMMRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutCSR)
	k.m.MulRangeMultiTo(y, x, nb, lo, hi)
}

func (k *CSR) SpMMColRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutCSR)
	k.m.MulColRangeMultiTo(y, x, nb, lo, hi)
}

func (k *CSR) Residual(r, q, x []float64, mode Mode) {
	statSpMV(layoutCSR)
	if mode == Reassoc {
		m := k.m
		for i := 0; i < m.R; i++ {
			ks, ke := m.RowPtr[i], m.RowPtr[i+1]
			r[i] = q[i] - reassocDot(m.Val[ks:ke], m.ColIdx[ks:ke:ke], x)
		}
		return
	}
	sparse.ResidualTo(r, q, k.m, x)
}
