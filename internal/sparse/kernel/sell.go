package kernel

import (
	"math"
	"sort"

	"bear/internal/sparse"
)

// sellC is the SELL slice height: 8 rows advance in lockstep, matching
// the accumulator count a single core can keep live.
const sellC = 8

// SELL is a SELL-C-σ layout (sliced ELLPACK, C=8, σ=C): rows are grouped
// into slices of 8, sorted by descending length within the slice, and
// entries stored column-position-major so one pass over a slice advances
// eight row accumulators together. Within a row, positions are visited in
// ascending stored-column order — the baseline CSR order — so every mode
// is bit-identical to Exact.
//
// Only the full SpMV is served natively; ranged, column-windowed and
// multi-RHS kernels delegate to the source CSR, whose row-addressed form
// those access patterns need anyway.
type SELL struct {
	src      *sparse.CSR
	rowOrder []int32   // rows slice-by-slice, longest first within a slice
	cntPtr   []int     // per slice: window into colCnt
	colCnt   []int32   // per column position: rows still active
	val      []float64 // entries, column-position-major within each slice
	col      []int32
}

// NewSELL builds the sliced layout over m, copying entries. Returns nil
// when m's column count cannot be narrowed to int32.
func NewSELL(m *sparse.CSR) *SELL {
	if m.C > math.MaxInt32 {
		return nil
	}
	numSlices := (m.R + sellC - 1) / sellC
	k := &SELL{
		src:      m,
		rowOrder: make([]int32, m.R),
		cntPtr:   make([]int, numSlices+1),
		val:      make([]float64, 0, m.NNZ()),
		col:      make([]int32, 0, m.NNZ()),
	}
	rowLen := func(i int32) int { return m.RowPtr[i+1] - m.RowPtr[i] }
	for s := 0; s < numSlices; s++ {
		lo := s * sellC
		hi := lo + sellC
		if hi > m.R {
			hi = m.R
		}
		order := k.rowOrder[lo:hi]
		for i := range order {
			order[i] = int32(lo + i)
		}
		sort.SliceStable(order, func(a, b int) bool {
			return rowLen(order[a]) > rowLen(order[b])
		})
		width := 0
		if len(order) > 0 {
			width = rowLen(order[0])
		}
		for p := 0; p < width; p++ {
			cnt := 0
			for _, row := range order {
				if rowLen(row) <= p {
					break // sorted descending: the rest are shorter
				}
				cnt++
				kk := m.RowPtr[row] + p
				k.val = append(k.val, m.Val[kk])
				k.col = append(k.col, int32(m.ColIdx[kk]))
			}
			k.colCnt = append(k.colCnt, int32(cnt))
		}
		k.cntPtr[s+1] = len(k.colCnt)
	}
	return k
}

func (k *SELL) Dims() (int, int) { return k.src.R, k.src.C }
func (k *SELL) NNZ() int         { return k.src.NNZ() }
func (k *SELL) Layout() string   { return layoutSELL }

func (k *SELL) SpMV(y, x []float64, mode Mode) {
	statSpMV(layoutSELL)
	cur := 0
	for s := 0; s+1 < len(k.cntPtr); s++ {
		lo := s * sellC
		hi := lo + sellC
		if hi > len(y) {
			hi = len(y)
		}
		rows := k.rowOrder[lo:hi]
		var a [sellC]float64
		for p := k.cntPtr[s]; p < k.cntPtr[s+1]; p++ {
			if cnt := int(k.colCnt[p]); cnt == sellC {
				v, c := k.val[cur:cur+sellC], k.col[cur:cur+sellC]
				a[0] += v[0] * x[c[0]]
				a[1] += v[1] * x[c[1]]
				a[2] += v[2] * x[c[2]]
				a[3] += v[3] * x[c[3]]
				a[4] += v[4] * x[c[4]]
				a[5] += v[5] * x[c[5]]
				a[6] += v[6] * x[c[6]]
				a[7] += v[7] * x[c[7]]
				cur += sellC
			} else {
				for r := 0; r < cnt; r++ {
					a[r] += k.val[cur] * x[k.col[cur]]
					cur++
				}
			}
		}
		for r, row := range rows {
			y[row] = a[r]
		}
	}
}

func (k *SELL) SpMVRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutSELL)
	k.src.MulVecRangeTo(y, x, lo, hi)
}

func (k *SELL) SpMVColRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutSELL)
	k.src.MulVecColRangeTo(y, x, lo, hi)
}

func (k *SELL) SpMM(y, x []float64, nb int, mode Mode) {
	statSpMM(layoutSELL)
	k.src.MulMultiTo(y, x, nb)
}

func (k *SELL) SpMMRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutSELL)
	k.src.MulRangeMultiTo(y, x, nb, lo, hi)
}

func (k *SELL) SpMMColRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutSELL)
	k.src.MulColRangeMultiTo(y, x, nb, lo, hi)
}

func (k *SELL) Residual(r, q, x []float64, mode Mode) {
	statSpMV(layoutSELL)
	sparse.ResidualTo(r, q, k.src, x)
}
