package kernel

import (
	"fmt"

	"bear/internal/sparse"
)

// Layout selects a storage layout, or Auto for the per-matrix heuristic.
type Layout int

const (
	Auto Layout = iota
	ForceCSR
	ForceHybrid
	ForceSELL
)

// Config controls layout selection for New.
type Config struct {
	// Layout forces a specific storage layout; Auto applies the heuristic.
	Layout Layout
	// Workers wraps the chosen layout in the parallel row-partitioner when
	// > 1 (or < 0 for GOMAXPROCS lanes) and the matrix is large enough to
	// amortize the pool handoff. 0 and 1 stay sequential.
	Workers int
}

// ParseConfig maps an -kernel / Options.Kernel spec to a Config. Accepted
// specs: "" or "auto" (heuristic, sequential), "csr", "hybrid", "sell",
// "parallel" (heuristic layout + GOMAXPROCS lanes).
func ParseConfig(spec string) (Config, error) {
	switch spec {
	case "", "auto":
		return Config{}, nil
	case "csr":
		return Config{Layout: ForceCSR}, nil
	case "hybrid":
		return Config{Layout: ForceHybrid}, nil
	case "sell":
		return Config{Layout: ForceSELL}, nil
	case "parallel":
		return Config{Workers: -1}, nil
	default:
		return Config{}, fmt.Errorf("kernel: unknown layout %q (want auto, csr, hybrid, sell or parallel)", spec)
	}
}

// Heuristic thresholds for Auto, fitted to the measured layout sweep
// (BENCH_kernels.json): SELL beats CSR by ~1.5× exactly when rows are
// tiny — mean ≤ 2 stored entries per row, the near-diagonal spoke
// factors of periphery-heavy graphs, where CSR's per-row loop overhead
// dominates and SELL amortizes it across 8 rows — and loses (0.6–0.95×)
// everywhere else. The dense-run hybrid measures at parity or below CSR
// on every fixture under the min-of-batches protocol, so Auto never
// picks it; it remains available by force for the sweep and for
// machines where memory bandwidth, not instruction issue, bounds SpMV.
const (
	autoMinRows        = 256
	autoSELLMaxMeanRow = 2.0
)

// New builds the kernel view of m under cfg and records the choice in
// the kernel selection counters.
func New(m *sparse.CSR, cfg Config) Matrix {
	k := pick(m, cfg.Layout)
	statSelected(k.Layout())
	if w := cfg.Workers; (w > 1 || w < 0) && m.NNZ() >= minParallelNNZ {
		k = NewParallel(k, m, w)
		statSelected(layoutParallel)
	}
	return k
}

func pick(m *sparse.CSR, layout Layout) Matrix {
	switch layout {
	case ForceHybrid:
		if h := NewHybrid(m); h != nil {
			return h
		}
	case ForceSELL:
		if s := NewSELL(m); s != nil {
			return s
		}
	case Auto:
		if m.R >= autoMinRows && float64(m.NNZ()) <= autoSELLMaxMeanRow*float64(m.R) {
			if s := NewSELL(m); s != nil {
				return s
			}
		}
	}
	return NewCSR(m)
}
