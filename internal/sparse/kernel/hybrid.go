package kernel

import (
	"math"

	"bear/internal/sparse"
)

// Hybrid is the dense-run CSR layout. A row whose stored columns form one
// contiguous run [c, c+len) — true for most rows of BEAR's block-diagonal
// spoke factors L1⁻¹/U1⁻¹, where a row's support is its own dense-ish
// block — is multiplied as an index-free dense dot against x[c:], so the
// inner loop streams two float64 arrays instead of chasing column
// indices. Rows without a single run fall back to an int32-indexed gather
// (half the index bytes of the int64 baseline).
//
// Per-row accumulation order is ascending stored-column order in both
// paths — exactly the baseline CSR order — so every mode is bit-identical
// to Exact.
type Hybrid struct {
	src      *sparse.CSR // retained for SpMM and column-windowed delegates
	col      []int32     // all column indices, narrowed
	runStart []int32     // per row: first column of the row's single run, or -1
	denseRun int         // rows stored index-free (for the selection heuristic)
}

// NewHybrid builds the dense-run layout over m, aliasing m's Val/RowPtr
// and copying column indices into int32. Returns nil when m's column
// count cannot be narrowed to int32; callers fall back to CSR.
func NewHybrid(m *sparse.CSR) *Hybrid {
	if m.C > math.MaxInt32 {
		return nil
	}
	h := &Hybrid{
		src:      m,
		col:      make([]int32, len(m.ColIdx)),
		runStart: make([]int32, m.R),
	}
	for k, c := range m.ColIdx {
		h.col[k] = int32(c)
	}
	for i := 0; i < m.R; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		if ke > ks && m.ColIdx[ke-1]-m.ColIdx[ks] == ke-ks-1 {
			h.runStart[i] = int32(m.ColIdx[ks])
			h.denseRun++
		} else {
			h.runStart[i] = -1
		}
	}
	return h
}

// DenseRunFraction reports the share of rows stored index-free.
func (h *Hybrid) DenseRunFraction() float64 {
	if h.src.R == 0 {
		return 0
	}
	return float64(h.denseRun) / float64(h.src.R)
}

func (h *Hybrid) Dims() (int, int) { return h.src.R, h.src.C }
func (h *Hybrid) NNZ() int         { return h.src.NNZ() }
func (h *Hybrid) Layout() string   { return layoutHybrid }

func (h *Hybrid) spmvRows(y, x []float64, lo, hi int) {
	m := h.src
	for i := lo; i < hi; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		vs := m.Val[ks:ke]
		var acc float64
		if st := h.runStart[i]; st >= 0 {
			xs := x[st:]
			xs = xs[:len(vs):len(vs)]
			for j, v := range vs {
				acc += v * xs[j]
			}
		} else {
			cs := h.col[ks:ke:ke]
			for j, v := range vs {
				acc += v * x[cs[j]]
			}
		}
		y[i] = acc
	}
}

func (h *Hybrid) SpMV(y, x []float64, mode Mode) {
	statSpMV(layoutHybrid)
	h.spmvRows(y, x, 0, h.src.R)
}

func (h *Hybrid) SpMVRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutHybrid)
	h.spmvRows(y, x, lo, hi)
}

func (h *Hybrid) SpMVColRange(y, x []float64, lo, hi int, mode Mode) {
	statSpMV(layoutHybrid)
	// Column windows binary-search the original index array; the dense-run
	// trick buys nothing there.
	h.src.MulVecColRangeTo(y, x, lo, hi)
}

func (h *Hybrid) SpMM(y, x []float64, nb int, mode Mode) {
	statSpMM(layoutHybrid)
	// The multi-RHS kernels are register-tiled over the RHS block and
	// already amortize index loads across nb columns; delegate.
	h.src.MulMultiTo(y, x, nb)
}

func (h *Hybrid) SpMMRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutHybrid)
	h.src.MulRangeMultiTo(y, x, nb, lo, hi)
}

func (h *Hybrid) SpMMColRange(y, x []float64, nb, lo, hi int, mode Mode) {
	statSpMM(layoutHybrid)
	h.src.MulColRangeMultiTo(y, x, nb, lo, hi)
}

func (h *Hybrid) Residual(r, q, x []float64, mode Mode) {
	statSpMV(layoutHybrid)
	m := h.src
	for i := 0; i < m.R; i++ {
		ks, ke := m.RowPtr[i], m.RowPtr[i+1]
		vs := m.Val[ks:ke]
		var acc float64
		if st := h.runStart[i]; st >= 0 {
			xs := x[st:]
			xs = xs[:len(vs):len(vs)]
			for j, v := range vs {
				acc += v * xs[j]
			}
		} else {
			cs := h.col[ks:ke:ke]
			for j, v := range vs {
				acc += v * x[cs[j]]
			}
		}
		r[i] = q[i] - acc
	}
}
