// Package kernel provides the primitives layer for BEAR's query-time
// linear algebra: one Matrix interface (SpMV, SpMM, ranged and
// column-ranged variants, fused residual) over pluggable cache-aware
// storage layouts, in the spirit of the GraphBLAS primitives consolidation
// (Kepner et al.).
//
// # Layouts
//
//   - csr: the baseline — delegates to the tuned CSR kernels in package
//     sparse. Every other layout is verified against it.
//   - hybrid: dense-run CSR. Rows whose stored columns form one contiguous
//     run (the common case in BEAR's block-diagonal spoke factors, where a
//     row's support is its own block) are stored index-free and multiplied
//     as a dense dot against a window of x; remaining rows keep int32
//     column indices. Halves the index traffic on run-heavy matrices.
//   - sell: SELL-C-σ (sliced ELLPACK, C=8, σ=C). Rows are processed in
//     slices of 8, sorted by length within the slice, entries stored
//     column-position-major so the 8 accumulators advance in lockstep.
//   - parallel: a wrapper over any layout that row-partitions SpMV/SpMM
//     across the shared persistent worker pool with nnz-balanced cuts.
//
// # Determinism contract
//
// Exact mode guarantees results bit-identical to the baseline CSR kernels:
// every layout accumulates each output row in the same order as
// sparse.(*CSR).MulVecTo (ascending stored-column order), and the parallel
// wrapper assigns each row to exactly one partition whose boundaries
// depend only on the matrix and the worker count — never on scheduling.
// Reassoc mode permits a fixed, deterministic reassociation (a 4-way
// strided unroll combined as (a0+a1)+(a2+a3), then a serial tail): results
// are still run-to-run identical, but may differ from Exact in the last
// few ulps. Layouts for which no profitable reassociated variant exists
// serve Reassoc with their Exact kernel, which trivially satisfies the
// weaker contract.
package kernel

import "sync/atomic"

// Mode selects the accumulation contract for a kernel call.
type Mode int

const (
	// Exact requires bit-identical results to the baseline CSR kernels.
	Exact Mode = iota
	// Reassoc permits deterministic reassociation of row accumulations;
	// results may differ from Exact by rounding (≤1e-12 relative error on
	// well-scaled inputs) but are identical across runs and worker counts.
	Reassoc
)

func (m Mode) String() string {
	if m == Reassoc {
		return "reassoc"
	}
	return "exact"
}

// Matrix is the kernel-layer view of a sparse matrix. y/r are fully
// overwritten outside the documented row window; x is never modified.
// Multi-vector (SpMM) operands are node-contiguous: x[col*nb+t] holds
// column t of logical row col, matching sparse.(*CSR).MulMultiTo.
type Matrix interface {
	// Dims returns the logical (rows, cols) shape.
	Dims() (r, c int)
	// NNZ returns the stored entry count.
	NNZ() int
	// Layout names the storage layout ("csr", "hybrid", "sell", "parallel").
	Layout() string

	// SpMV computes y = M·x. len(y) = rows, len(x) = cols.
	SpMV(y, x []float64, mode Mode)
	// SpMVRange computes rows [lo, hi) of M·x into y[lo:hi]; other rows of
	// y are left untouched.
	SpMVRange(y, x []float64, lo, hi int, mode Mode)
	// SpMVColRange computes y = M[:, lo:hi]·x using only stored columns in
	// [lo, hi); x entries outside the window are ignored. All rows of y
	// are written.
	SpMVColRange(y, x []float64, lo, hi int, mode Mode)

	// SpMM computes Y = M·X for nb node-contiguous right-hand sides.
	SpMM(y, x []float64, nb int, mode Mode)
	// SpMMRange computes rows [lo, hi) of M·X.
	SpMMRange(y, x []float64, nb, lo, hi int, mode Mode)
	// SpMMColRange computes Y = M[:, lo:hi]·X over stored columns in
	// [lo, hi) only.
	SpMMColRange(y, x []float64, nb, lo, hi int, mode Mode)

	// Residual computes r = q − M·x fused in one pass. r may alias q but
	// not x.
	Residual(r, q, x []float64, mode Mode)
}

// Layout/parallel-path selection and call counters, exposed for the
// server's bear_kernel_* metrics. All counters are monotone and safe for
// concurrent use.
type layoutStats struct {
	selected atomic.Uint64 // matrices constructed with this layout
	spmv     atomic.Uint64 // SpMV-family calls (incl. ranged variants)
	spmm     atomic.Uint64 // SpMM-family calls (incl. ranged variants)
}

const (
	layoutCSR      = "csr"
	layoutHybrid   = "hybrid"
	layoutSELL     = "sell"
	layoutParallel = "parallel"
)

var stats = map[string]*layoutStats{
	layoutCSR:      new(layoutStats),
	layoutHybrid:   new(layoutStats),
	layoutSELL:     new(layoutStats),
	layoutParallel: new(layoutStats),
}

// Layouts lists every layout name that Stats reports, in display order.
func Layouts() []string {
	return []string{layoutCSR, layoutHybrid, layoutSELL, layoutParallel}
}

// Stats returns the cumulative selection and call counters for a layout.
// Unknown layouts report zeros.
func Stats(layout string) (selected, spmv, spmm uint64) {
	s, ok := stats[layout]
	if !ok {
		return 0, 0, 0
	}
	return s.selected.Load(), s.spmv.Load(), s.spmm.Load()
}

func statSelected(layout string) { stats[layout].selected.Add(1) }
func statSpMV(layout string)     { stats[layout].spmv.Add(1) }
func statSpMM(layout string)     { stats[layout].spmm.Add(1) }
