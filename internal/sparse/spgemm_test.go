package sparse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func denseMul(a []float64, ar, ac int, b []float64, bc int) []float64 {
	out := make([]float64, ar*bc)
	for i := 0; i < ar; i++ {
		for k := 0; k < ac; k++ {
			av := a[i*ac+k]
			if av == 0 {
				continue
			}
			for j := 0; j < bc; j++ {
				out[i*bc+j] += av * b[k*bc+j]
			}
		}
	}
	return out
}

func TestMulMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 30; trial++ {
		p, q, r := 1+rng.Intn(12), 1+rng.Intn(12), 1+rng.Intn(12)
		a := randomCSR(rng, p, q, 0.3)
		b := randomCSR(rng, q, r, 0.3)
		got := Mul(a, b).Dense()
		want := denseMul(a.Dense(), p, q, b.Dense(), r)
		densesEqual(t, got, want, 1e-10, "Mul")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randomCSR(rng, 8, 8, 0.4)
	densesEqual(t, Mul(Identity(8), a).Dense(), a.Dense(), 0, "I*A")
	densesEqual(t, Mul(a, Identity(8)).Dense(), a.Dense(), 0, "A*I")
}

func TestMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on inner-dimension mismatch")
		}
	}()
	Mul(Identity(3), Identity(4))
}

func TestMulCSC(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		p, q, r := 1+rng.Intn(10), 1+rng.Intn(10), 1+rng.Intn(10)
		a := randomCSR(rng, p, q, 0.3)
		b := randomCSR(rng, q, r, 0.3)
		got := MulCSC(a.ToCSC(), b.ToCSC()).Dense()
		want := Mul(a, b).Dense()
		densesEqual(t, got, want, 1e-10, "MulCSC")
	}
}

// Property: (AB)x == A(Bx).
func TestQuickMulAssociatesWithVec(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		p, q, r := 1+lr.Intn(12), 1+lr.Intn(12), 1+lr.Intn(12)
		a := randomCSR(rng, p, q, 0.3)
		b := randomCSR(rng, q, r, 0.3)
		x := randomVec(rng, r)
		lhs := Mul(a, b).MulVec(x)
		rhs := a.MulVec(b.MulVec(x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9*(1+math.Abs(rhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: transpose is an antihomomorphism, (AB)ᵀ = Bᵀ Aᵀ.
func TestQuickMulTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	f := func(seed int64) bool {
		lr := rand.New(rand.NewSource(seed))
		p, q, r := 1+lr.Intn(10), 1+lr.Intn(10), 1+lr.Intn(10)
		a := randomCSR(rng, p, q, 0.3)
		b := randomCSR(rng, q, r, 0.3)
		lhs := Mul(a, b).Transpose().Dense()
		rhs := Mul(b.Transpose(), a.Transpose()).Dense()
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
