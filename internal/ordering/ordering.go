// Package ordering defines the pluggable node-reordering engines behind
// BEAR's preprocessing phase (Algorithm 1, lines 2-3). An Ordering maps a
// graph to a hub/spoke split, a block partition of the spokes, and a
// per-block node order — the structure every downstream stage (block LU,
// Schur complement, the Lemma-1 single-seed fast path, incremental dirty-
// block rebuilds, future block-level sharding) is built on.
//
// Every engine must satisfy the same contract, spelled out on Result and
// enforced by Validate:
//
//   - the permutation is a bijection over the n nodes, with spokes in
//     positions [0, n-NumHubs) and hubs in the final NumHubs positions;
//   - Blocks partitions the spokes: sizes are positive and sum to
//     n - NumHubs, block i covering the positions after blocks 0..i-1;
//   - blocks are mutually disconnected once the hubs are removed — no
//     undirected edge joins spokes of two different blocks, which is what
//     makes the spoke-spoke block H₁₁ block diagonal (Lemma 1).
//
// Any permutation meeting the contract yields exact query results; engines
// differ only in fill-in of the inverted factors, Schur size, preprocess
// time, and query speed. Three engines are built in — SlashBurn (the
// paper's choice), minimum-degree elimination, and nested dissection — and
// more can be added with Register.
package ordering

import (
	"fmt"
	"sort"
	"sync"

	"bear/internal/graph"
)

// Default is the engine an empty ordering name selects: the paper's
// SlashBurn.
const Default = "slashburn"

// Params carries the tuning inputs an engine derives its own knobs from.
type Params struct {
	// K is the hub-selection budget, the SlashBurn wave size of the paper
	// (k = 0.001·n by default, clamped to at least 1). Engines without a
	// wave notion reuse it as their scale knob: nested dissection stops
	// recursing at components of max(32, 2K) nodes. Must be positive.
	K int
}

// Result is an ordering's output: the node permutation plus the structure
// the permutation encodes. In the new order, spoke nodes occupy positions
// [0, n-NumHubs) grouped into the diagonal blocks of H₁₁, and hubs occupy
// the final NumHubs positions. BEAR later refines the hub order by degree
// in the Schur complement (Algorithm 1 line 7); the spoke order is final.
type Result struct {
	Perm    []int // Perm[old node id] = new position
	InvPerm []int // InvPerm[new position] = old node id
	NumHubs int   // n₂
	Blocks  []int // sizes of the diagonal blocks of H₁₁, in position order

	// Iterations is an engine-specific work counter: hub-removal waves for
	// slashburn, mass-eliminated (supernode-absorbed) nodes for mindeg,
	// recursion depth for nd. Purely observational.
	Iterations int

	// Tree is the recursion tree of a nested-dissection ordering, nil for
	// other engines. It is the partition structure block-level sharding
	// needs: each leaf names one diagonal block, each internal node names
	// the separator (hub subset) that splits its region.
	Tree *PartitionTree
}

// SumSqBlocks returns Σ n₁ᵢ², the quantity the paper's complexity analysis
// (and Table 4) is expressed in.
func (r *Result) SumSqBlocks() int64 {
	var s int64
	for _, b := range r.Blocks {
		s += int64(b) * int64(b)
	}
	return s
}

// PartitionTree is the recursion tree of a nested-dissection ordering.
// Leaves are in left-to-right position order, so the blocks covered by any
// subtree occupy one contiguous range of spoke positions — the property a
// future sharding layer needs to assign subtrees to shards while
// replicating only the (small) separator/hub factors.
type PartitionTree struct {
	// Lo and Hi bound the final spoke positions covered by this subtree's
	// leaf blocks: [Lo, Hi).
	Lo, Hi int
	// Block indexes Result.Blocks for a leaf node; -1 for internal nodes.
	Block int
	// SepNodes lists the original node ids of the separator this internal
	// node removed (always empty on leaves). Every separator node is a hub
	// in the final ordering.
	SepNodes []int
	// Children are the sub-regions the separator disconnected, in position
	// order. Empty on leaves.
	Children []*PartitionTree
}

// Leaves appends the tree's leaf nodes in position order to dst and
// returns it.
func (t *PartitionTree) Leaves(dst []*PartitionTree) []*PartitionTree {
	if t == nil {
		return dst
	}
	if len(t.Children) == 0 {
		return append(dst, t)
	}
	for _, c := range t.Children {
		dst = c.Leaves(dst)
	}
	return dst
}

// Ordering is one reordering engine. Implementations must be stateless and
// safe for concurrent use; Run must be deterministic for a given graph and
// params (rebuild equivalence tests depend on it).
type Ordering interface {
	// Name returns the engine's registry name, a lowercase identifier
	// stable across releases (it is persisted in snapshots).
	Name() string
	// Run orders g. The graph is viewed as undirected (out ∪ in edges), as
	// H has a nonzero wherever either direction has an edge. The returned
	// Result must satisfy the package contract (see Validate).
	Run(g *graph.Graph, p Params) (*Result, error)
}

// NonReusable is an optional interface for engines whose partitions must
// not be reused across graph mutations (for example, orderings whose block
// structure depends on edge weights). Incremental rebuilds fall back to a
// full pass for such engines; engines not implementing it are reusable.
type NonReusable interface {
	// ReusablePartition reports whether dirty-block rebuilds may reuse a
	// partition this engine produced after the graph has changed.
	ReusablePartition() bool
}

var (
	regMu    sync.RWMutex
	registry = map[string]Ordering{}
	builtin  []string
)

func init() {
	for _, o := range []Ordering{SlashBurn{}, MinDegree{}, NestedDissection{}} {
		if err := Register(o); err != nil {
			panic(err)
		}
		builtin = append(builtin, o.Name())
	}
	sort.Strings(builtin)
}

// Register adds an engine to the registry, making it selectable by name
// through core.Options.Ordering, the bearserve -ordering flag, and PUT
// ?ordering=. It errors on an empty or duplicate name.
func Register(o Ordering) error {
	name := o.Name()
	if name == "" {
		return fmt.Errorf("ordering: engine with empty name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		return fmt.Errorf("ordering: engine %q already registered", name)
	}
	registry[name] = o
	return nil
}

// Get resolves an engine by name; the empty string selects Default. An
// unknown name is an explicit error (callers surface it before any
// preprocessing work, and snapshot restore refuses the file).
func Get(name string) (Ordering, error) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	o, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("ordering: unknown ordering %q (have %v)", name, Names())
	}
	return o, nil
}

// Names lists every registered engine, sorted. The set is closed at
// runtime, so it can back bounded metric label sets.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Builtin lists the engines compiled into the package (excluding any
// runtime registrations), sorted — the set documentation and CI doc-drift
// guards check against.
func Builtin() []string {
	return append([]string(nil), builtin...)
}

// Normalize maps the empty name to Default and leaves every other name
// unchanged; it does not check registration.
func Normalize(name string) string {
	if name == "" {
		return Default
	}
	return name
}

// Reusable reports whether incremental rebuilds may reuse a partition
// produced by the named engine (empty = Default). Unknown engines report
// false — without the engine, there is no way to know its contract, so
// the rebuild path conservatively runs a full pass.
func Reusable(name string) bool {
	o, err := Get(name)
	if err != nil {
		return false
	}
	if nr, ok := o.(NonReusable); ok {
		return nr.ReusablePartition()
	}
	return true
}

// CheckStructure verifies the O(n) part of the contract — permutation
// bijection, hub/spoke split, block sizes — without touching edges. Core
// runs it after every ordering; the full edge-closure check lives in
// Validate (property tests).
func CheckStructure(n int, r *Result) error {
	if r == nil {
		return fmt.Errorf("ordering: nil result")
	}
	if r.NumHubs < 0 || r.NumHubs > n {
		return fmt.Errorf("ordering: hub count %d outside [0,%d]", r.NumHubs, n)
	}
	if len(r.Perm) != n || len(r.InvPerm) != n {
		return fmt.Errorf("ordering: permutation length %d/%d, want %d", len(r.Perm), len(r.InvPerm), n)
	}
	for node, pos := range r.Perm {
		if pos < 0 || pos >= n {
			return fmt.Errorf("ordering: node %d mapped to position %d outside [0,%d)", node, pos, n)
		}
		if r.InvPerm[pos] != node {
			return fmt.Errorf("ordering: InvPerm[%d]=%d does not invert Perm[%d]=%d",
				pos, r.InvPerm[pos], node, pos)
		}
	}
	n1 := n - r.NumHubs
	sum := 0
	for i, b := range r.Blocks {
		if b <= 0 {
			return fmt.Errorf("ordering: block %d has non-positive size %d", i, b)
		}
		sum += b
	}
	if sum != n1 {
		return fmt.Errorf("ordering: blocks sum to %d, want n1=%d", sum, n1)
	}
	return nil
}

// Validate verifies the full interface contract of a result against its
// graph: CheckStructure plus block closure — removing the hubs must leave
// no undirected edge between spokes of different blocks, the property that
// makes H₁₁ block diagonal. O(n + m); used by the shared property-test
// harness so future engines get contract coverage for free.
func Validate(g *graph.Graph, r *Result) error {
	n := g.N()
	if err := CheckStructure(n, r); err != nil {
		return err
	}
	n1 := n - r.NumHubs
	// blockOf[pos] = block index for spoke positions, -1 for hubs.
	blockOf := make([]int, n)
	pos := 0
	for i, b := range r.Blocks {
		for j := 0; j < b; j++ {
			blockOf[pos] = i
			pos++
		}
	}
	for ; pos < n; pos++ {
		blockOf[pos] = -1
	}
	for u := 0; u < n; u++ {
		pu := r.Perm[u]
		if pu >= n1 {
			continue
		}
		dst, _ := g.Out(u)
		for _, v := range dst {
			pv := r.Perm[v]
			if pv < n1 && blockOf[pv] != blockOf[pu] {
				return fmt.Errorf("ordering: edge %d->%d joins spokes of blocks %d and %d",
					u, v, blockOf[pu], blockOf[pv])
			}
		}
	}
	if r.Tree != nil {
		if err := validateTree(r); err != nil {
			return err
		}
	}
	return nil
}

// validateTree checks a PartitionTree against its Result: leaves must
// enumerate the blocks in position order with consistent [Lo,Hi) ranges,
// and every separator node must be a hub.
func validateTree(r *Result) error {
	leaves := r.Tree.Leaves(nil)
	if len(leaves) != len(r.Blocks) {
		return fmt.Errorf("ordering: partition tree has %d leaves, want %d blocks", len(leaves), len(r.Blocks))
	}
	pos := 0
	for i, leaf := range leaves {
		if leaf.Block != i {
			return fmt.Errorf("ordering: leaf %d labels block %d", i, leaf.Block)
		}
		if leaf.Lo != pos || leaf.Hi != pos+r.Blocks[i] {
			return fmt.Errorf("ordering: leaf %d covers [%d,%d), want [%d,%d)",
				i, leaf.Lo, leaf.Hi, pos, pos+r.Blocks[i])
		}
		pos += r.Blocks[i]
	}
	n1 := len(r.Perm) - r.NumHubs
	seps := 0
	var walk func(t *PartitionTree) error
	walk = func(t *PartitionTree) error {
		if len(t.Children) == 0 && len(t.SepNodes) > 0 {
			return fmt.Errorf("ordering: leaf carries a separator")
		}
		for _, u := range t.SepNodes {
			if r.Perm[u] < n1 {
				return fmt.Errorf("ordering: separator node %d is not a hub", u)
			}
			seps++
		}
		for _, c := range t.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(r.Tree); err != nil {
		return err
	}
	if seps != r.NumHubs {
		return fmt.Errorf("ordering: tree separators cover %d hubs, want %d", seps, r.NumHubs)
	}
	return nil
}
