package ordering

import (
	"bear/internal/graph"
	"bear/internal/slashburn"
)

// SlashBurn is the paper's ordering (Kang & Faloutsos, ICDM 2011) behind
// the Ordering interface: repeatedly burn the K highest-degree nodes as
// hubs, peel the disconnected remainder components off as spoke blocks,
// and recurse on the giant connected component. It produces many small
// blocks on power-law graphs — the property BEAR's complexity analysis
// and the Lemma-1 single-seed fast path rely on — and is the Default.
//
// The engine delegates to internal/slashburn unchanged, so selecting it
// (explicitly or by default) is bit-identical to the pre-interface code.
type SlashBurn struct{}

// Name implements Ordering.
func (SlashBurn) Name() string { return "slashburn" }

// Run implements Ordering. It never errors: SlashBurn is defined for every
// graph and always selects at least one hub.
func (SlashBurn) Run(g *graph.Graph, p Params) (*Result, error) {
	sb := slashburn.Run(g, p.K)
	return &Result{
		Perm:       sb.Perm,
		InvPerm:    sb.InvPerm,
		NumHubs:    sb.NumHubs,
		Blocks:     sb.Blocks,
		Iterations: sb.Iterations,
	}, nil
}
