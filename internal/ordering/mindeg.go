package ordering

import (
	"container/heap"
	"sort"

	"bear/internal/graph"
)

// MinDegree is a greedy minimum-external-degree elimination ordering in
// the AMD family: repeatedly eliminate the node of smallest degree in the
// quotient (elimination) graph, turning its neighborhood into a clique,
// with mass elimination of nodes whose adjacency the new clique already
// covers. Elimination stops once the cheapest remaining node is adjacent
// to the majority of what is left — that densely connected core becomes
// the hub set, and the eliminated nodes become spokes, grouped into
// blocks by connected component of the graph with the hubs removed and
// ordered within each block by elimination order.
//
// Relative to SlashBurn it optimizes what elimination actually costs —
// fill-in of the L₁⁻¹/U₁⁻¹ factors — rather than hub degree, typically
// producing fewer, larger blocks: lower fill and memory, but a weaker
// Lemma-1 single-seed fast path. Iterations counts mass-eliminated
// (supernode-absorbed) nodes.
type MinDegree struct{}

// Name implements Ordering.
func (MinDegree) Name() string { return "mindeg" }

// Run implements Ordering. It never errors and always selects at least
// one hub and, for graphs with at least two nodes, at least one spoke.
func (MinDegree) Run(g *graph.Graph, p Params) (*Result, error) {
	n := g.N()
	und := g.UndirectedNeighbors()

	// Quotient-graph adjacency as hash sets: clique formation needs O(1)
	// membership updates that the static CSR cannot provide.
	adj := make([]map[int]struct{}, n)
	deg := make([]int, n)
	for u, row := range und {
		m := make(map[int]struct{}, len(row))
		for _, v := range row {
			m[v] = struct{}{}
		}
		adj[u] = m
		deg[u] = len(row)
	}

	h := make(degHeap, 0, n)
	for u := 0; u < n; u++ {
		h = append(h, degEntry{deg[u], u})
	}
	heap.Init(&h)

	eliminated := make([]bool, n)
	elimOrder := make([]int, 0, n)
	active := n
	mass := 0

	for active > 0 && len(h) > 0 {
		e := heap.Pop(&h).(degEntry)
		u := e.node
		if eliminated[u] || e.deg != deg[u] {
			continue // stale lazy-heap entry
		}
		// Stop once the cheapest node is adjacent to the majority of the
		// remaining graph: from here on every elimination fills nearly the
		// whole core, so the core serves better as hubs. The first
		// elimination is forced so at least one spoke always exists.
		if len(elimOrder) > 0 && 2*deg[u] > active-1 {
			break
		}

		nbrs := make([]int, 0, len(adj[u]))
		for v := range adj[u] {
			nbrs = append(nbrs, v)
		}
		sort.Ints(nbrs)

		eliminated[u] = true
		elimOrder = append(elimOrder, u)
		active--
		for _, v := range nbrs {
			delete(adj[v], u)
		}
		adj[u] = nil
		// Eliminating u joins its neighbors into a clique.
		for i, v := range nbrs {
			for _, w := range nbrs[i+1:] {
				if _, ok := adj[v][w]; !ok {
					adj[v][w] = struct{}{}
					adj[w][v] = struct{}{}
				}
			}
		}
		for _, v := range nbrs {
			deg[v] = len(adj[v])
		}
		// Mass elimination: a clique member whose entire adjacency is the
		// remaining clique can be eliminated now at zero extra fill (its
		// neighborhood is already complete). remaining counts clique
		// members still active, so the size test is an equality test.
		remaining := len(nbrs)
		for _, v := range nbrs {
			if deg[v] == remaining-1 {
				eliminated[v] = true
				elimOrder = append(elimOrder, v)
				active--
				mass++
				remaining--
				for w := range adj[v] {
					delete(adj[w], v)
					deg[w]--
				}
				adj[v] = nil
			}
		}
		for _, v := range nbrs {
			if !eliminated[v] {
				heap.Push(&h, degEntry{deg[v], v})
			}
		}
	}

	// The surviving core is the hub set. If elimination consumed the whole
	// graph (no dense core — e.g. trees, edgeless graphs), promote the
	// last-eliminated node: every downstream stage assumes n₂ ≥ 1.
	if active == 0 && n > 0 {
		last := elimOrder[len(elimOrder)-1]
		elimOrder = elimOrder[:len(elimOrder)-1]
		eliminated[last] = false
		active = 1
	}

	rank := make([]int, n)
	for i := range rank {
		rank[i] = -1
	}
	for i, u := range elimOrder {
		rank[u] = i
	}

	// Blocks: connected components of the spokes under the original
	// undirected adjacency, discovered in elimination order (so the block
	// holding the first-eliminated node comes first) and ordered within
	// each block by elimination order.
	perm := make([]int, n)
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var blocks []int
	pos := 0
	queue := make([]int, 0, n)
	members := make([]int, 0, n)
	for _, s := range elimOrder {
		if comp[s] != -1 {
			continue
		}
		id := len(blocks)
		comp[s] = id
		queue = append(queue[:0], s)
		members = append(members[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range und[u] {
				if !eliminated[v] || comp[v] != -1 {
					continue
				}
				comp[v] = id
				queue = append(queue, v)
				members = append(members, v)
			}
		}
		sort.Slice(members, func(i, j int) bool { return rank[members[i]] < rank[members[j]] })
		for _, u := range members {
			perm[u] = pos
			pos++
		}
		blocks = append(blocks, len(members))
	}

	// Hubs take the final positions, densest first (descending degree in
	// the final quotient graph, ties by ascending id).
	hubs := make([]int, 0, active)
	for u := 0; u < n; u++ {
		if !eliminated[u] {
			hubs = append(hubs, u)
		}
	}
	sort.Slice(hubs, func(i, j int) bool {
		if deg[hubs[i]] != deg[hubs[j]] {
			return deg[hubs[i]] > deg[hubs[j]]
		}
		return hubs[i] < hubs[j]
	})
	for _, u := range hubs {
		perm[u] = pos
		pos++
	}

	inv := make([]int, n)
	for u, q := range perm {
		inv[q] = u
	}
	return &Result{
		Perm:       perm,
		InvPerm:    inv,
		NumHubs:    len(hubs),
		Blocks:     blocks,
		Iterations: mass,
	}, nil
}

type degEntry struct{ deg, node int }

// degHeap is a lazy min-heap over (degree, node id): entries are pushed on
// every degree change and stale ones discarded at pop time.
type degHeap []degEntry

func (h degHeap) Len() int { return len(h) }
func (h degHeap) Less(i, j int) bool {
	if h[i].deg != h[j].deg {
		return h[i].deg < h[j].deg
	}
	return h[i].node < h[j].node
}
func (h degHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *degHeap) Push(x any)   { *h = append(*h, x.(degEntry)) }
func (h *degHeap) Pop() any {
	old := *h
	x := old[len(old)-1]
	*h = old[:len(old)-1]
	return x
}
