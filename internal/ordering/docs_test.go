package ordering_test

import (
	"os"
	"strings"
	"testing"

	"bear/internal/ordering"
)

// TestDocsMentionEveryBuiltin is a doc-drift guard: every built-in engine
// name must appear in the operator-facing docs. Registering a new engine
// without documenting it (DESIGN.md architecture section, OPERATIONS.md
// ordering guidance) fails this test rather than silently shipping an
// undocumented knob.
func TestDocsMentionEveryBuiltin(t *testing.T) {
	for _, doc := range []string{"../../DESIGN.md", "../../OPERATIONS.md"} {
		data, err := os.ReadFile(doc)
		if err != nil {
			t.Fatalf("reading %s: %v", doc, err)
		}
		text := string(data)
		for _, name := range ordering.Builtin() {
			if !strings.Contains(text, name) {
				t.Errorf("%s does not mention ordering engine %q; document new engines before registering them", doc, name)
			}
		}
	}
}
