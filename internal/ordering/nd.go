package ordering

import (
	"sort"

	"bear/internal/graph"
)

// NestedDissection orders by recursive vertex separators: each connected
// region larger than the leaf budget (max(32, 2K) nodes) is split by a
// small BFS level set found from a pseudo-peripheral start node, the
// separator's nodes become hubs, and the recursion continues on the
// disconnected remainders until every region fits a leaf. Leaves become
// the diagonal blocks of H₁₁ (ordered within by ascending in-leaf degree)
// and are laid out in depth-first order, so every subtree of the exported
// PartitionTree covers one contiguous position range — the structure
// block-level sharding needs to place subtrees on shards while
// replicating only the hub factors.
//
// When no region exceeds the leaf budget the graph needs no separator; the
// engine then promotes the highest-degree node to a single hub so that
// n₂ ≥ 1 holds, as every downstream stage assumes. Iterations reports the
// maximum recursion depth. Result.Tree is nil only when the graph has no
// spokes (a single node).
type NestedDissection struct{}

// Name implements Ordering.
func (NestedDissection) Name() string { return "nd" }

// Run implements Ordering. It never errors.
func (NestedDissection) Run(g *graph.Graph, p Params) (*Result, error) {
	n := g.N()
	if n == 0 {
		return &Result{Perm: []int{}, InvPerm: []int{}}, nil
	}
	leafMax := 2 * p.K
	if leafMax < 32 {
		leafMax = 32
	}
	d := &dissector{
		und:     g.UndirectedNeighbors(),
		leafMax: leafMax,
		perm:    make([]int, n),
		mark:    make([]int, n),
		level:   make([]int, n),
	}

	comps := d.components(nil)
	needSplit := false
	for _, c := range comps {
		if len(c) > leafMax {
			needSplit = true
			break
		}
	}

	var root *PartitionTree
	if !needSplit {
		// No separators needed — promote the highest-degree node to the
		// single hub and let the remainder components be the leaves.
		total := g.TotalDegrees()
		hub := 0
		for u := 1; u < n; u++ {
			if total[u] > total[hub] {
				hub = u
			}
		}
		root = &PartitionTree{Block: -1, SepNodes: []int{hub}}
		for i := range d.mark {
			d.mark[i] = 0 // the needSplit scan consumed the marks
		}
		d.mark[hub] = -1
		for _, c := range d.components(nil) {
			root.Children = append(root.Children, d.leaf(c))
		}
		root.Hi = d.cursor
	} else if len(comps) == 1 {
		root = d.dissect(comps[0], 0)
	} else {
		root = &PartitionTree{Block: -1}
		for _, c := range comps {
			root.Children = append(root.Children, d.dissect(c, 1))
		}
		root.Hi = d.cursor
	}

	// Spoke positions were assigned by the leaves; hubs take the final
	// positions in depth-first post-order, so the root separator — the
	// globally most connective cut — comes last, the classic nested-
	// dissection elimination order.
	n1 := d.cursor
	var hubs []int
	var post func(t *PartitionTree)
	post = func(t *PartitionTree) {
		for _, c := range t.Children {
			post(c)
		}
		hubs = append(hubs, t.SepNodes...)
	}
	post(root)
	for i, u := range hubs {
		d.perm[u] = n1 + i
	}

	inv := make([]int, n)
	for u, q := range d.perm {
		inv[q] = u
	}
	if len(d.blocks) == 0 {
		root = nil
	}
	return &Result{
		Perm:       d.perm,
		InvPerm:    inv,
		NumHubs:    len(hubs),
		Blocks:     d.blocks,
		Iterations: d.maxDepth,
		Tree:       root,
	}, nil
}

// dissector carries the recursion state of one NestedDissection.Run.
type dissector struct {
	und     [][]int
	leafMax int
	perm    []int
	blocks  []int
	cursor  int
	// mark[u]: 0 free, the current positive stamp = in working region,
	// negative = consumed (separator, claimed by a component, or leaf).
	mark     []int
	stamp    int
	level    []int
	maxDepth int
}

// components returns the connected components among nodes with mark 0 (or,
// when region is non-nil, among region nodes with the current stamp), each
// sorted ascending, ordered by smallest contained id. Visited nodes are
// marked consumed.
func (d *dissector) components(region []int) [][]int {
	var comps [][]int
	seeds := region
	if seeds == nil {
		seeds = make([]int, len(d.und))
		for i := range seeds {
			seeds[i] = i
		}
	}
	avail := func(u int) bool {
		if region == nil {
			return d.mark[u] == 0
		}
		return d.mark[u] == d.stamp
	}
	for _, s := range seeds {
		if !avail(s) {
			continue
		}
		comp := []int{s}
		d.mark[s] = -1
		for i := 0; i < len(comp); i++ {
			for _, v := range d.und[comp[i]] {
				if avail(v) {
					d.mark[v] = -1
					comp = append(comp, v)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// dissect orders one connected region: leaf if it fits the budget,
// otherwise separator + recursion on the remainders.
func (d *dissector) dissect(nodes []int, depth int) *PartitionTree {
	if depth > d.maxDepth {
		d.maxDepth = depth
	}
	if len(nodes) <= d.leafMax {
		return d.leaf(nodes)
	}

	d.stamp++
	s := d.stamp
	for _, u := range nodes {
		d.mark[u] = s
	}

	// Pseudo-peripheral start: BFS from the smallest id to a farthest
	// node, then BFS again from there — the second tree's levels stretch
	// across (an approximation of) the region's diameter, making thin
	// level sets good separators.
	far, _ := d.bfs(nodes[0], s)
	_, maxLvl := d.bfs(far, s)

	counts := make([]int, maxLvl+1)
	for _, u := range nodes {
		counts[d.level[u]]++
	}
	// Separator = the smallest level set whose removal leaves at least a
	// quarter of the region on each side of the BFS tree; if no level is
	// that balanced (shallow trees), fall back to the median level.
	total := len(nodes)
	bestL, bestSize := -1, -1
	cum := 0
	for l := 1; l <= maxLvl; l++ {
		cum += counts[l-1]
		if 4*cum >= total && 4*cum <= 3*total && (bestSize == -1 || counts[l] < bestSize) {
			bestL, bestSize = l, counts[l]
		}
	}
	if bestL == -1 {
		bestL = maxLvl / 2
		if bestL < 1 {
			bestL = 1
		}
	}

	sep := make([]int, 0, counts[bestL])
	for _, u := range nodes {
		if d.level[u] == bestL {
			sep = append(sep, u)
			d.mark[u] = -1
		}
	}
	comps := d.components(nodes)

	t := &PartitionTree{Block: -1, SepNodes: sep}
	for _, c := range comps {
		t.Children = append(t.Children, d.dissect(c, depth+1))
	}
	t.Lo = t.Children[0].Lo
	t.Hi = t.Children[len(t.Children)-1].Hi
	return t
}

// bfs runs breadth-first search from start over nodes carrying stamp s,
// filling d.level, and returns the farthest node (deepest level, ties by
// smallest id) and the maximum level. The stamp is negated along the way
// and restored, so the caller's region marking survives.
func (d *dissector) bfs(start, s int) (far, maxLvl int) {
	order := []int{start}
	d.mark[start] = -s
	d.level[start] = 0
	for i := 0; i < len(order); i++ {
		u := order[i]
		for _, v := range d.und[u] {
			if d.mark[v] == s {
				d.mark[v] = -s
				d.level[v] = d.level[u] + 1
				order = append(order, v)
			}
		}
	}
	far = start
	for _, u := range order {
		d.mark[u] = s
		if d.level[u] > d.level[far] || (d.level[u] == d.level[far] && u < far) {
			far = u
		}
	}
	return far, d.level[order[len(order)-1]]
}

// leaf assigns one diagonal block: nodes ordered by ascending degree
// within the leaf (ties by id), the same heuristic SlashBurn applies to
// its spoke blocks.
func (d *dissector) leaf(nodes []int) *PartitionTree {
	d.stamp++
	s := d.stamp
	for _, u := range nodes {
		d.mark[u] = s
	}
	deg := make(map[int]int, len(nodes))
	for _, u := range nodes {
		c := 0
		for _, v := range d.und[u] {
			if d.mark[v] == s {
				c++
			}
		}
		deg[u] = c
	}
	ord := append([]int(nil), nodes...)
	sort.Slice(ord, func(i, j int) bool {
		if deg[ord[i]] != deg[ord[j]] {
			return deg[ord[i]] < deg[ord[j]]
		}
		return ord[i] < ord[j]
	})
	lo := d.cursor
	for _, u := range ord {
		d.perm[u] = d.cursor
		d.cursor++
		d.mark[u] = -1
	}
	block := len(d.blocks)
	d.blocks = append(d.blocks, len(nodes))
	return &PartitionTree{Lo: lo, Hi: d.cursor, Block: block}
}
