package ordering_test

import (
	"reflect"
	"strings"
	"testing"

	"bear/internal/graph"
	"bear/internal/graph/gen"
	"bear/internal/ordering"
)

// orderingFixtures is the shared fixture table every engine must pass:
// random graphs with the hub structure the engines are designed for,
// structured graphs where the "right" answer is geometric rather than
// degree-driven, and degenerate shapes that exercise the boundary
// conditions (no edges, one node, everything-connected, self-loops).
func orderingFixtures() []struct {
	name string
	g    *graph.Graph
} {
	grid := func(rows, cols int) *graph.Graph {
		b := graph.NewBuilder(rows * cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				u := r*cols + c
				if c+1 < cols {
					b.AddUndirected(u, u+1, 1)
				}
				if r+1 < rows {
					b.AddUndirected(u, u+cols, 1)
				}
			}
		}
		return b.Build()
	}
	path := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for u := 0; u+1 < n; u++ {
			b.AddUndirected(u, u+1, 1)
		}
		return b.Build()
	}
	star := func(leaves int) *graph.Graph {
		b := graph.NewBuilder(leaves + 1)
		for u := 1; u <= leaves; u++ {
			b.AddUndirected(0, u, 1)
		}
		return b.Build()
	}
	complete := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v {
					b.AddEdge(u, v, 1)
				}
			}
		}
		return b.Build()
	}
	selfLoops := func(n int) *graph.Graph {
		b := graph.NewBuilder(n)
		for u := 0; u < n; u++ {
			b.AddEdge(u, u, 2)
			if u+1 < n {
				b.AddUndirected(u, u+1, 1)
			}
		}
		return b.Build()
	}
	twoIslands := func() *graph.Graph {
		b := graph.NewBuilder(60)
		for u := 0; u < 25; u++ { // clique island
			for v := u + 1; v < 25; v++ {
				b.AddUndirected(u, v, 1)
			}
		}
		for u := 25; u+1 < 60; u++ { // path island
			b.AddUndirected(u, u+1, 1)
		}
		return b.Build()
	}
	return []struct {
		name string
		g    *graph.Graph
	}{
		{"ba-powerlaw", gen.BarabasiAlbert(300, 2, 7)},
		{"rmat-hubby", gen.RMAT(gen.NewRMATPul(250, 1500, 0.8, 9))},
		{"caveman", gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 8, Size: 12, PIntra: 0.35, Hubs: 5, HubDeg: 18, Seed: 11})},
		{"grid", grid(12, 12)},
		{"path", path(64)},
		{"star", star(80)},
		{"single-node", graph.NewBuilder(1).Build()},
		{"no-edges", graph.NewBuilder(40).Build()},
		{"complete", complete(24)},
		{"self-loops", selfLoops(50)},
		{"two-islands", twoIslands()},
	}
}

// TestOrderingInvariants runs every built-in engine over the fixture
// table at two hub budgets and checks the full contract via Validate:
// bijective permutation with hubs last, positive position-ordered blocks
// covering exactly the spokes, no undirected edge between spokes of
// different blocks (the Lemma 1 precondition), and a well-formed
// partition tree when one is exported. Results must also be
// deterministic — two runs on the same graph bit-identical — because
// the incremental rebuild and the snapshot format both assume it.
func TestOrderingInvariants(t *testing.T) {
	for _, engName := range ordering.Builtin() {
		eng, err := ordering.Get(engName)
		if err != nil {
			t.Fatalf("Get(%q): %v", engName, err)
		}
		for _, fx := range orderingFixtures() {
			for _, k := range []int{1, 4} { // Params.K must be positive; core resolves the default before calling Run

				fx := fx
				t.Run(engName+"/"+fx.name, func(t *testing.T) {
					res, err := eng.Run(fx.g, ordering.Params{K: k})
					if err != nil {
						t.Fatalf("Run(k=%d): %v", k, err)
					}
					if err := ordering.Validate(fx.g, res); err != nil {
						t.Fatalf("Validate(k=%d): %v", k, err)
					}
					// SlashBurn returns 0 hubs on hubless degenerate graphs (core
					// handles N2 == 0); the new engines promise at least one hub.
					if n := fx.g.N(); n > 0 && engName != ordering.Default && res.NumHubs < 1 {
						t.Fatalf("k=%d: %d hubs on a %d-node graph; %s promises n2 >= 1", k, res.NumHubs, n, engName)
					}
					again, err := eng.Run(fx.g, ordering.Params{K: k})
					if err != nil {
						t.Fatalf("second Run(k=%d): %v", k, err)
					}
					if !reflect.DeepEqual(res, again) {
						t.Fatalf("k=%d: two runs on the same graph differ; engines must be deterministic", k)
					}
				})
			}
		}
	}
}

// TestPartitionTreeLeaves: the nd engine exports a partition tree whose
// leaves enumerate the blocks in position order — the contract future
// shard placement consumes.
func TestPartitionTreeLeaves(t *testing.T) {
	eng, err := ordering.Get("nd")
	if err != nil {
		t.Fatal(err)
	}
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 8, Size: 12, PIntra: 0.35, Hubs: 5, HubDeg: 18, Seed: 11})
	res, err := eng.Run(g, ordering.Params{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tree == nil {
		t.Fatal("nd exported no partition tree")
	}
	leaves := res.Tree.Leaves(nil)
	if len(leaves) != len(res.Blocks) {
		t.Fatalf("%d tree leaves, %d blocks", len(leaves), len(res.Blocks))
	}
	pos := 0
	for i, lf := range leaves {
		if lf.Block != i {
			t.Fatalf("leaf %d carries block %d", i, lf.Block)
		}
		if lf.Lo != pos || lf.Hi != pos+res.Blocks[i] {
			t.Fatalf("leaf %d spans [%d,%d), want [%d,%d)", i, lf.Lo, lf.Hi, pos, pos+res.Blocks[i])
		}
		pos = lf.Hi
	}
}

// TestRegistry covers the lookup surface: the empty name is the
// SlashBurn default, unknown names error listing the known set, and
// duplicate registration is refused.
func TestRegistry(t *testing.T) {
	def, err := ordering.Get("")
	if err != nil {
		t.Fatalf(`Get(""): %v`, err)
	}
	if def.Name() != ordering.Default {
		t.Fatalf(`Get("") = %q, want %q`, def.Name(), ordering.Default)
	}
	if _, err := ordering.Get("no-such-engine"); err == nil {
		t.Fatal("Get(unknown) did not error")
	} else if !strings.Contains(err.Error(), "no-such-engine") || !strings.Contains(err.Error(), ordering.Default) {
		t.Fatalf("Get(unknown) error %q should name the bad engine and list the known ones", err)
	}
	if got := ordering.Normalize(""); got != ordering.Default {
		t.Fatalf(`Normalize("") = %q`, got)
	}
	for _, name := range ordering.Builtin() {
		if !ordering.Reusable(name) {
			t.Errorf("built-in %s reports non-reusable partitions", name)
		}
	}
	if ordering.Reusable("no-such-engine") {
		t.Error("unknown engine reported reusable")
	}
	if err := ordering.Register(ordering.SlashBurn{}); err == nil {
		t.Error("duplicate Register did not error")
	}
}
