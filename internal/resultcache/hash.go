package resultcache

import "math"

// Hasher builds the Hash component of a Key by folding query parameters
// into an FNV-1a digest. The zero value is not valid; start from NewHasher.
// Callers must fold a discriminator (e.g. the endpoint name) first so that
// different query shapes with coincidentally equal parameters cannot
// collide by construction.
type Hasher uint64

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// NewHasher returns the FNV-1a offset basis.
func NewHasher() Hasher { return fnvOffset }

// Byte folds a single byte.
func (h Hasher) Byte(b byte) Hasher {
	return (h ^ Hasher(b)) * fnvPrime
}

// Uint64 folds v little-endian.
func (h Hasher) Uint64(v uint64) Hasher {
	for i := 0; i < 8; i++ {
		h = h.Byte(byte(v >> (8 * i)))
	}
	return h
}

// Int folds v as its two's-complement uint64 pattern.
func (h Hasher) Int(v int) Hasher { return h.Uint64(uint64(v)) }

// Float64 folds the IEEE-754 bit pattern of v, so -0 and 0 (and any two
// NaN payloads) hash differently only when their bits differ.
func (h Hasher) Float64(v float64) Hasher { return h.Uint64(math.Float64bits(v)) }

// String folds s byte by byte.
func (h Hasher) String(s string) Hasher {
	for i := 0; i < len(s); i++ {
		h = h.Byte(s[i])
	}
	// Fold the length so "ab"+"c" and "a"+"bc" cannot collide across calls.
	return h.Int(len(s))
}

// Sum returns the digest for use as Key.Hash.
func (h Hasher) Sum() uint64 { return uint64(h) }
