// Package resultcache provides a sharded, byte-bounded LRU cache for query
// results, keyed by graph state, plus a singleflight coalescer that folds
// concurrent identical computations into one.
//
// Invalidation is by construction rather than by scanning: every Key
// embeds the graph registry generation and the Dynamic epoch, both of
// which only ever move forward. When the graph changes, new requests hash
// to new keys and the stale entries simply age out of the LRU — no lock
// has to sweep the cache on the update path. The one correctness
// requirement sits with the caller: read the epoch *before* computing the
// value being cached. Then a concurrent update can only make a cached
// value fresher than its key promises, never staler, so a request
// observing epoch E never sees pre-E data.
package resultcache

import (
	"container/list"
	"sync"
	"time"
)

// Key identifies one cached result. Gen is the serving-layer registration
// generation (distinguishes a re-registered or restored graph under the
// same name), Epoch the Dynamic update epoch, and Hash a digest of all
// query parameters that affect the result.
type Key struct {
	Gen   uint64
	Epoch uint64
	Hash  uint64
}

// Value is what the cache stores. CacheBytes reports the approximate heap
// footprint used for the byte budget; it must be constant for the lifetime
// of the value.
type Value interface {
	CacheBytes() int64
}

// Stats is a point-in-time snapshot of cache counters, aggregated over all
// shards.
type Stats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Evictions uint64 `json:"evictions"`
	Expired   uint64 `json:"expired"`
	Entries   int    `json:"entries"`
	Bytes     int64  `json:"bytes"`
	MaxBytes  int64  `json:"max_bytes"`
}

const (
	shardCount = 16 // power of two; enough to keep shard locks uncontended

	// entryOverhead approximates the bookkeeping heap cost per entry
	// (map bucket share, list element, entry struct) added to each value's
	// CacheBytes in the budget.
	entryOverhead = 128
)

// Cache is a sharded LRU bounded by total byte footprint, with optional
// TTL expiry. All methods are safe for concurrent use and nil-safe: a nil
// *Cache never hits and drops every Put, so callers can disable caching by
// simply not constructing one.
type Cache struct {
	shards [shardCount]shard
	ttl    time.Duration
	now    func() time.Time // injectable for TTL tests
}

type shard struct {
	mu        sync.Mutex
	ll        *list.List // front = most recently used
	items     map[Key]*list.Element
	bytes     int64
	max       int64
	hits      uint64
	misses    uint64
	evictions uint64
	expired   uint64
}

type entry struct {
	key     Key
	v       Value
	size    int64
	expires time.Time // zero when the cache has no TTL
}

// New returns a cache bounded by maxBytes across all shards. ttl <= 0
// disables expiry. maxBytes <= 0 returns nil — a valid, always-miss cache.
func New(maxBytes int64, ttl time.Duration) *Cache {
	if maxBytes <= 0 {
		return nil
	}
	c := &Cache{ttl: ttl, now: time.Now}
	per := maxBytes / shardCount
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[Key]*list.Element)
		c.shards[i].max = per
	}
	return c
}

// shardFor mixes the key fields so consecutive epochs and generations
// spread across shards.
func (c *Cache) shardFor(k Key) *shard {
	h := k.Hash
	h ^= k.Epoch * 0x9e3779b97f4a7c15
	h ^= k.Gen * 0xbf58476d1ce4e5b9
	h ^= h >> 29
	return &c.shards[h%shardCount]
}

// Get returns the cached value for k, refreshing its recency. Expired
// entries are removed on access.
func (c *Cache) Get(k Key) (Value, bool) {
	if c == nil {
		return nil, false
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return nil, false
	}
	e := el.Value.(*entry)
	if c.ttl > 0 && c.now().After(e.expires) {
		s.removeLocked(el)
		s.expired++
		s.misses++
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.hits++
	return e.v, true
}

// Put inserts or replaces the value for k and evicts least-recently-used
// entries until the shard is back under budget. Values larger than a whole
// shard's budget are not stored.
func (c *Cache) Put(k Key, v Value) {
	if c == nil || v == nil {
		return
	}
	size := v.CacheBytes() + entryOverhead
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if size > s.max {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		s.bytes += size - e.size
		e.v, e.size, e.expires = v, size, expires
		s.ll.MoveToFront(el)
	} else {
		el := s.ll.PushFront(&entry{key: k, v: v, size: size, expires: expires})
		s.items[k] = el
		s.bytes += size
	}
	for s.bytes > s.max {
		back := s.ll.Back()
		if back == nil {
			break
		}
		s.removeLocked(back)
		s.evictions++
	}
}

func (s *shard) removeLocked(el *list.Element) {
	e := el.Value.(*entry)
	s.ll.Remove(el)
	delete(s.items, e.key)
	s.bytes -= e.size
}

// Stats aggregates the per-shard counters. Coalesced is filled in by the
// owner of the companion Flight, not here.
func (c *Cache) Stats() Stats {
	var st Stats
	if c == nil {
		return st
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Evictions += s.evictions
		st.Expired += s.expired
		st.Entries += s.ll.Len()
		st.Bytes += s.bytes
		st.MaxBytes += s.max
		s.mu.Unlock()
	}
	return st
}
