package resultcache

import (
	"context"
	"errors"

	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type blob struct {
	id   int
	size int64
}

func (b *blob) CacheBytes() int64 { return b.size }

func key(gen, epoch, hash uint64) Key { return Key{Gen: gen, Epoch: epoch, Hash: hash} }

func TestCacheHitMissAndLRU(t *testing.T) {
	// One value plus overhead is ~1128 bytes; budget two per shard.
	c := New(shardCount*2*1128, 0)
	k1, k2 := key(1, 0, 100), key(1, 0, 200)
	if _, ok := c.Get(k1); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k1, &blob{id: 1, size: 1000})
	if v, ok := c.Get(k1); !ok || v.(*blob).id != 1 {
		t.Fatalf("Get after Put = %v, %v", v, ok)
	}
	c.Put(k2, &blob{id: 2, size: 1000})
	if _, ok := c.Get(k2); !ok {
		t.Fatal("second entry missing")
	}
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheEvictsLRUUnderByteBudget(t *testing.T) {
	c := New(shardCount*2500, 0) // 2500 bytes per shard
	// Force same shard by using identical key mixes except Hash multiples
	// of shardCount (which keep the same low bits after mixing only if the
	// mix preserves them — instead just derive keys that land together).
	var ks []Key
	base := key(1, 0, 0)
	target := c.shardFor(base)
	for h := uint64(0); len(ks) < 3; h++ {
		k := key(1, 0, h)
		if c.shardFor(k) == target {
			ks = append(ks, k)
		}
	}
	for i, k := range ks {
		c.Put(k, &blob{id: i, size: 1000}) // 1128 with overhead; 2 fit
	}
	if _, ok := c.Get(ks[0]); ok {
		t.Fatal("oldest entry should have been evicted")
	}
	for _, k := range ks[1:] {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("recent entry %v evicted", k)
		}
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestCacheOversizedValueNotStored(t *testing.T) {
	c := New(shardCount*1000, 0)
	k := key(1, 0, 1)
	c.Put(k, &blob{size: 5000})
	if _, ok := c.Get(k); ok {
		t.Fatal("oversized value was stored")
	}
}

func TestCacheReplaceUpdatesBytes(t *testing.T) {
	c := New(shardCount*10000, 0)
	k := key(1, 0, 7)
	c.Put(k, &blob{id: 1, size: 4000})
	c.Put(k, &blob{id: 2, size: 1000})
	if v, _ := c.Get(k); v.(*blob).id != 2 {
		t.Fatal("replacement not visible")
	}
	if st := c.Stats(); st.Entries != 1 || st.Bytes != 1000+entryOverhead {
		t.Fatalf("stats after replace = %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := New(1<<20, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }
	k := key(1, 0, 9)
	c.Put(k, &blob{id: 1, size: 100})
	if _, ok := c.Get(k); !ok {
		t.Fatal("fresh entry missed")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get(k); ok {
		t.Fatal("expired entry served")
	}
	if st := c.Stats(); st.Expired != 1 || st.Entries != 0 {
		t.Fatalf("stats after expiry = %+v", st)
	}
}

func TestEpochChangeMissesByConstruction(t *testing.T) {
	c := New(1<<20, 0)
	c.Put(key(1, 0, 42), &blob{id: 1, size: 100})
	if _, ok := c.Get(key(1, 1, 42)); ok {
		t.Fatal("new epoch hit an old-epoch entry")
	}
	if _, ok := c.Get(key(2, 0, 42)); ok {
		t.Fatal("new generation hit an old-generation entry")
	}
}

func TestNilCacheIsSafe(t *testing.T) {
	var c *Cache
	c.Put(key(1, 0, 1), &blob{size: 10})
	if _, ok := c.Get(key(1, 0, 1)); ok {
		t.Fatal("nil cache hit")
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if New(0, 0) != nil {
		t.Fatal("New(0) should return the nil cache")
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := New(1<<18, 0)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key(1, uint64(i%7), uint64(i%50))
				if v, ok := c.Get(k); ok {
					if v.(*blob).id != i%50 {
						t.Errorf("wrong value under key %v", k)
						return
					}
				}
				c.Put(k, &blob{id: i % 50, size: int64(100 + i%100)})
			}
		}(w)
	}
	wg.Wait()
}

func TestFlightCoalesces(t *testing.T) {
	var f Flight
	var calls atomic.Int32
	release := make(chan struct{})
	started := make(chan struct{})
	const waiters = 8

	var wg sync.WaitGroup
	results := make([]Value, waiters+1)
	shareds := make([]bool, waiters+1)
	k := key(1, 0, 5)

	wg.Add(1)
	go func() {
		defer wg.Done()
		v, shared, err := f.Do(context.Background(), k, func() (Value, error) {
			close(started)
			<-release
			calls.Add(1)
			return &blob{id: 99, size: 1}, nil
		})
		if err != nil {
			t.Errorf("leader: %v", err)
		}
		results[0], shareds[0] = v, shared
	}()
	<-started
	for w := 1; w <= waiters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), k, func() (Value, error) {
				calls.Add(1)
				return &blob{id: -1, size: 1}, nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", w, err)
			}
			results[w], shareds[w] = v, shared
		}(w)
	}
	// Give waiters a moment to enqueue before releasing the leader; late
	// arrivals would just start their own flight, which the assertions
	// below tolerate only for the call count.
	for f.Coalesced() < waiters {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := calls.Load(); n != 1 {
		t.Fatalf("fn ran %d times, want 1", n)
	}
	if shareds[0] {
		t.Fatal("leader reported shared")
	}
	for w := 1; w <= waiters; w++ {
		if !shareds[w] {
			t.Fatalf("waiter %d not shared", w)
		}
		if results[w].(*blob).id != 99 {
			t.Fatalf("waiter %d got %v", w, results[w])
		}
	}
	if f.Coalesced() != waiters {
		t.Fatalf("coalesced = %d, want %d", f.Coalesced(), waiters)
	}
}

func TestFlightErrorSharedAndRetried(t *testing.T) {
	var f Flight
	boom := errors.New("boom")
	k := key(1, 0, 6)
	if _, _, err := f.Do(context.Background(), k, func() (Value, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	// The failed flight must not be cached; a fresh call runs again.
	v, shared, err := f.Do(context.Background(), k, func() (Value, error) { return &blob{id: 1, size: 1}, nil })
	if err != nil || shared || v.(*blob).id != 1 {
		t.Fatalf("retry = %v, %v, %v", v, shared, err)
	}
}

func TestFlightWaiterHonorsContext(t *testing.T) {
	var f Flight
	k := key(1, 0, 8)
	release := make(chan struct{})
	started := make(chan struct{})
	go f.Do(context.Background(), k, func() (Value, error) {
		close(started)
		<-release
		return &blob{size: 1}, nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := f.Do(ctx, k, func() (Value, error) { return nil, nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}
	close(release)
}

func TestHasherDistinguishesParameters(t *testing.T) {
	base := NewHasher().String("query").Int(7).Float64(0.05).Sum()
	variants := []uint64{
		NewHasher().String("query").Int(8).Float64(0.05).Sum(),
		NewHasher().String("query").Int(7).Float64(0.06).Sum(),
		NewHasher().String("ppr").Int(7).Float64(0.05).Sum(),
		NewHasher().String("quer").String("y").Int(7).Float64(0.05).Sum(),
	}
	seen := map[uint64]bool{base: true}
	for i, v := range variants {
		if seen[v] {
			t.Fatalf("variant %d collides: %d", i, v)
		}
		seen[v] = true
	}
	if NewHasher().String("query").Int(7).Sum() != NewHasher().String("query").Int(7).Sum() {
		t.Fatal("hash not deterministic")
	}
}
