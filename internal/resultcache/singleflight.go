package resultcache

import (
	"context"
	"sync"
	"sync/atomic"
)

// Flight coalesces concurrent computations of the same Key: the first
// caller runs fn, later callers block until it finishes and share its
// result. Because keys embed the graph generation and epoch, two requests
// only ever coalesce when their answers are interchangeable — a request
// issued after an update carries a new epoch and starts its own flight.
type Flight struct {
	mu        sync.Mutex
	calls     map[Key]*call
	coalesced atomic.Uint64
}

type call struct {
	done chan struct{}
	v    Value
	err  error
}

// Do runs fn for k unless an identical flight is already in progress, in
// which case it waits for that flight and returns its result with
// shared=true. A waiting caller whose ctx ends returns the context error
// without cancelling the leader's computation (other waiters may still
// want it). The leader's fn runs with whatever context the leader captured;
// errors are shared with all waiters and nothing is retained afterward, so
// a failed flight is retried by the next request.
func (f *Flight) Do(ctx context.Context, k Key, fn func() (Value, error)) (v Value, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[Key]*call)
	}
	if c, ok := f.calls[k]; ok {
		f.mu.Unlock()
		f.coalesced.Add(1)
		select {
		case <-c.done:
			return c.v, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	f.calls[k] = c
	f.mu.Unlock()

	c.v, c.err = fn()

	f.mu.Lock()
	delete(f.calls, k)
	f.mu.Unlock()
	close(c.done)
	return c.v, false, c.err
}

// Coalesced reports how many callers shared another flight's result since
// the Flight was created.
func (f *Flight) Coalesced() uint64 {
	return f.coalesced.Load()
}
