package core

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"bear/internal/graph"
	"bear/internal/graph/gen"
)

// topKFixtures is the 11-graph suite the hybrid top-k contract is checked
// on: the shared core fixtures plus three shapes that stress certification
// differently — a path (long diameter, slow push spread), a bipartite graph
// (score oscillation), and a clique (maximal ties).
func topKFixtures(seed int64) map[string]*graph.Graph {
	m := testGraphs(seed)
	m["path"] = pathGraph(150)
	m["bipartite"] = gen.Bipartite(40, 60, 300, seed+7)
	m["clique"] = cliqueGraph(25)
	return m
}

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1, 1)
	}
	return b.Build()
}

func cliqueGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				b.AddEdge(i, j, 1)
			}
		}
	}
	return b.Build()
}

func sortedCopy(s []int) []int {
	c := append([]int(nil), s...)
	sort.Ints(c)
	return c
}

func sameSet(t *testing.T, got, want []int, label string) {
	t.Helper()
	g, w := sortedCopy(got), sortedCopy(want)
	if len(g) != len(w) {
		t.Fatalf("%s: got %d nodes, want %d\ngot  %v\nwant %v", label, len(g), len(w), g, w)
	}
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("%s: sets differ\ngot  %v\nwant %v", label, g, w)
		}
	}
}

// TestHybridTopKMatchesExact is the central contract: on every fixture and
// every k, QueryTopKCtx returns exactly the node set TopK picks from the
// full exact solve — certified-pruned or not.
func TestHybridTopKMatchesExact(t *testing.T) {
	fixtures := topKFixtures(42)
	if len(fixtures) != 11 {
		t.Fatalf("fixture suite has %d graphs, want 11", len(fixtures))
	}
	pruned := 0
	for name, g := range fixtures {
		d, err := NewDynamic(g, Options{})
		if err != nil {
			t.Fatalf("%s: preprocess: %v", name, err)
		}
		n := g.N()
		seeds := []int{0, n / 2, n - 1}
		for _, seed := range seeds {
			exact, err := d.Query(seed)
			if err != nil {
				t.Fatalf("%s seed %d: exact query: %v", name, seed, err)
			}
			for _, k := range []int{1, 10, 100} {
				want := TopK(exact, k)
				res, err := d.QueryTopK(seed, k)
				if err != nil {
					t.Fatalf("%s seed %d k %d: hybrid: %v", name, seed, k, err)
				}
				label := name + " hybrid-vs-exact"
				sameSet(t, res.Nodes, want, label)
				if res.Stats.Pruned {
					pruned++
					if res.Stats.Fallback != "" {
						t.Fatalf("%s: pruned result carries fallback reason %q", label, res.Stats.Fallback)
					}
					// Certified scores are push lower bounds within the
					// reported residual of exact.
					for i, v := range res.Nodes {
						est := res.Scores[i]
						if est > exact[v]+1e-9 || exact[v] > est+res.Stats.Residual+1e-9 {
							t.Fatalf("%s: node %d estimate %g outside [exact−R, exact] for exact %g, R %g",
								label, v, est, exact[v], res.Stats.Residual)
						}
					}
				} else {
					// A hub seed may legitimately solve zero spoke blocks
					// (the whole top-k can live among the exactly-solved
					// hubs), so the accounting check is solved+skipped.
					if res.Stats.Fallback == "" && res.Stats.BlocksSolved+res.Stats.BlocksSkipped == 0 {
						t.Fatalf("%s: unpruned result reports neither a fallback reason nor block-pruned accounting: %+v", label, res.Stats)
					}
					// Exact-path scores and order must match TopK exactly —
					// both for full-solve fallbacks and for the block-pruned
					// solve, whose computed entries are bit-identical.
					for i, v := range res.Nodes {
						if v != want[i] || res.Scores[i] != exact[v] {
							t.Fatalf("%s: fallback order/scores diverge at %d: node %d score %g, want node %d score %g",
								label, i, v, res.Scores[i], want[i], exact[want[i]])
						}
					}
				}
			}
		}
	}
	if pruned == 0 {
		t.Fatal("no fixture/seed/k combination certified from push bounds; the hybrid path never pruned")
	}
	t.Logf("pruned %d of %d hybrid queries", pruned, len(fixtures)*3*3)
}

// TestHybridTopKPrunesWellSeparated pins the pruning behavior on a case
// where the gap is structural: in the star graph the seed's own restart
// mass dwarfs every other score, so k=1 must certify without the exact
// solve.
func TestHybridTopKPrunesWellSeparated(t *testing.T) {
	g := gen.StarMail(gen.StarMailConfig{Core: 12, Periphery: 250, LeafDeg: 2, PCore: 0.4, Seed: 47})
	d, err := NewDynamic(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := d.QueryTopK(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Pruned {
		t.Fatalf("k=1 on a hub seed fell back (%s) despite a structural gap", res.Stats.Fallback)
	}
	if len(res.Nodes) != 1 || res.Nodes[0] != 3 {
		t.Fatalf("top-1 for seed 3 is %v, want the seed itself", res.Nodes)
	}
	if res.Stats.Pushes == 0 || res.Stats.Rounds == 0 {
		t.Fatalf("pruned result reports no push work: %+v", res.Stats)
	}
}

// TestHybridTopKBlockPruning checks the block-pruned exact path on a
// block-rich graph: when push cannot certify, the solve must skip a
// nontrivial number of spoke blocks while still returning the exact set,
// order, and bit-identical scores.
func TestHybridTopKBlockPruning(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{
		Communities: 40, Size: 30, PIntra: 0.4, Hubs: 4, HubDeg: 25, Seed: 5,
	})
	d, err := NewDynamic(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sawSkip := false
	for _, seed := range []int{10, 400, 900} {
		exact, err := d.Query(seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.QueryTopK(seed, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Pruned {
			continue // push certified; nothing block-level to check
		}
		if res.Stats.Fallback != "" {
			t.Fatalf("seed %d: unexpected fallback %q", seed, res.Stats.Fallback)
		}
		if res.Stats.BlocksSolved == 0 {
			t.Fatalf("seed %d: block path reports no solved blocks: %+v", seed, res.Stats)
		}
		if res.Stats.BlocksSkipped > 0 {
			sawSkip = true
		}
		want := TopK(exact, 10)
		for i, v := range res.Nodes {
			if v != want[i] || res.Scores[i] != exact[v] {
				t.Fatalf("seed %d: diverges at %d: node %d score %g, want node %d score %g",
					seed, i, v, res.Scores[i], want[i], exact[want[i]])
			}
		}
	}
	if !sawSkip {
		t.Fatal("no seed skipped any block on a 40-community graph; the bound never pruned")
	}
}

func TestHybridTopKFallbackReasons(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 9)
	check := func(t *testing.T, d *Dynamic, wantReason string, k int) {
		t.Helper()
		exact, err := d.Query(5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := d.QueryTopK(5, k)
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.Pruned || res.Stats.Fallback != wantReason {
			t.Fatalf("stats %+v, want fallback %q", res.Stats, wantReason)
		}
		sameSet(t, res.Nodes, TopK(exact, k), "fallback "+wantReason)
	}
	t.Run("approx", func(t *testing.T) {
		d, err := NewDynamic(g, Options{DropTol: 1e-6})
		if err != nil {
			t.Fatal(err)
		}
		check(t, d, TopKFallbackApprox, 10)
	})
	t.Run("laplacian", func(t *testing.T) {
		d, err := NewDynamic(g, Options{Laplacian: true})
		if err != nil {
			t.Fatal(err)
		}
		check(t, d, TopKFallbackLaplacian, 10)
	})
	t.Run("pending", func(t *testing.T) {
		d, err := NewDynamic(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.AddEdge(0, 79, 2.5); err != nil {
			t.Fatal(err)
		}
		check(t, d, TopKFallbackPending, 10)
	})
	t.Run("k-covers-graph", func(t *testing.T) {
		d, err := NewDynamic(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		check(t, d, TopKFallbackAllNodes, g.N()+5)
	})
	t.Run("bad-args", func(t *testing.T) {
		d, err := NewDynamic(g, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.QueryTopK(-1, 5); err == nil {
			t.Error("negative seed accepted")
		}
		if _, err := d.QueryTopK(g.N(), 5); err == nil {
			t.Error("out-of-range seed accepted")
		}
		if _, err := d.QueryTopK(0, 0); err == nil {
			t.Error("k=0 accepted")
		}
	})
}

// TestHybridTopKConcurrent interleaves hybrid queries with edge updates to
// exercise the normalized-adjacency cache under the race detector.
func TestHybridTopKConcurrent(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 31)
	d, err := NewDynamic(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 25; i++ {
				res, err := d.QueryTopK(rng.Intn(200), 5)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if len(res.Nodes) != 5 {
					t.Errorf("worker %d: got %d nodes", w, len(res.Nodes))
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			if err := d.AddEdge(i, (i*7+1)%200, float64(i+1)); err != nil {
				t.Errorf("update: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

// brute-force reference ranking sharing TopK's comparator, for parity
// checks on NaN scores and ties.
func bruteTopK(scores []float64, k int, skip func(int) bool) []int {
	var idx []int
	for i := range scores {
		if skip != nil && skip(i) {
			continue
		}
		idx = append(idx, i)
	}
	sort.SliceStable(idx, func(x, y int) bool {
		a, b := idx[x], idx[y]
		sa, sb := scores[a], scores[b]
		if math.IsNaN(sa) {
			return math.IsNaN(sb) && a < b
		}
		if math.IsNaN(sb) {
			return true
		}
		return sa > sb || (sa == sb && a < b)
	})
	if k > len(idx) {
		k = len(idx)
	}
	if k < 0 {
		k = 0
	}
	return idx[:k]
}

func TestTopKExcludingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		scores := make([]float64, n)
		for i := range scores {
			switch rng.Intn(5) {
			case 0:
				scores[i] = math.NaN()
			case 1:
				scores[i] = float64(rng.Intn(3)) // force ties
			default:
				scores[i] = rng.Float64()
			}
		}
		var skip func(int) bool
		if trial%2 == 1 {
			skip = func(i int) bool { return i%3 == 0 }
		}
		for _, k := range []int{0, 1, 3, n, n + 10} {
			got := TopKExcluding(scores, k, skip)
			want := bruteTopK(scores, k, skip)
			if len(got) != len(want) {
				t.Fatalf("trial %d k %d: len %d, want %d", trial, k, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d k %d: order diverges at %d: got %v want %v", trial, k, i, got, want)
				}
			}
		}
		// nil skip must be bit-identical to TopK.
		a, b := TopKExcluding(scores, 7, nil), TopK(scores, 7)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: TopKExcluding(nil) diverges from TopK: %v vs %v", trial, a, b)
			}
		}
	}
}

func TestTopKCandidatesExcludesExistingEdges(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1, 1)
	b.AddEdge(0, 2, 1)
	b.AddEdge(1, 3, 1)
	b.AddEdge(2, 4, 1)
	g := b.Build()
	scores := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4}
	got := TopKCandidates(g, scores, 0, 10)
	// Seed 0 and its out-neighbors 1, 2 are excluded; the rest rank by score.
	want := []int{3, 4, 5}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
	// A node with no out-edges excludes only itself.
	got = TopKCandidates(g, scores, 5, 2)
	want = []int{0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("isolated seed: got %v, want %v", got, want)
		}
	}
}
