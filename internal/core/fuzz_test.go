package core

import (
	"bytes"
	"testing"

	"bear/internal/graph/gen"
)

// FuzzLoad checks the binary index decoder never panics or over-allocates
// on corrupt input, and accepts byte-flipped variants of a valid file only
// if they still decode to a self-consistent index.
func FuzzLoad(f *testing.F) {
	g := gen.ErdosRenyi(40, 160, 1)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:16])
	f.Add([]byte("BEARPC01 garbage"))
	f.Add([]byte{})
	// A few corrupted variants as seeds.
	for _, at := range []int{8, 40, len(valid) / 2, len(valid) - 9} {
		c := append([]byte(nil), valid...)
		c[at] ^= 0xff
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be internally consistent enough to query.
		if p.N > 0 {
			if _, err := p.Query(0); err != nil {
				t.Logf("query on decoded index failed: %v", err) // allowed
			}
		}
	})
}

// FuzzLoadDynamic checks the dynamic-state decoder never panics on corrupt
// input; with the CRC footer, anything mutated should be rejected and
// anything accepted must be immediately queryable.
func FuzzLoadDynamic(f *testing.F) {
	g := gen.ErdosRenyi(30, 120, 2)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		f.Fatal(err)
	}
	if err := d.AddEdge(0, 29, 1); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:24])
	f.Add([]byte("BEARDY01 garbage"))
	f.Add([]byte{})
	for _, at := range []int{8, 40, len(valid) / 2, len(valid) - 5} {
		c := append([]byte(nil), valid...)
		c[at] ^= 0xff
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := LoadDynamic(bytes.NewReader(data))
		if err != nil {
			return
		}
		if _, err := d.Query(0); err != nil {
			t.Fatalf("restored dynamic state cannot answer queries: %v", err)
		}
	})
}
