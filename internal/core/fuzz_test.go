package core

import (
	"bytes"
	"testing"

	"bear/internal/graph/gen"
)

// FuzzLoad checks the binary index decoder never panics or over-allocates
// on corrupt input, and accepts byte-flipped variants of a valid file only
// if they still decode to a self-consistent index.
func FuzzLoad(f *testing.F) {
	g := gen.ErdosRenyi(40, 160, 1)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:16])
	f.Add([]byte("BEARPC01 garbage"))
	f.Add([]byte{})
	// A few corrupted variants as seeds.
	for _, at := range []int{8, 40, len(valid) / 2, len(valid) - 9} {
		c := append([]byte(nil), valid...)
		c[at] ^= 0xff
		f.Add(c)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decoded must be internally consistent enough to query.
		if p.N > 0 {
			if _, err := p.Query(0); err != nil {
				t.Logf("query on decoded index failed: %v", err) // allowed
			}
		}
	})
}
