package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// QueryBatch computes RWR vectors for many seeds, fanning queries out over
// workers goroutines (0 selects GOMAXPROCS). Results are indexed like
// seeds. Precomputed is read-only during queries, so the workers share it
// without locking; each worker holds one Workspace for its whole share of
// the batch, so the only per-query allocation is the result vector.
func (p *Precomputed) QueryBatch(seeds []int, workers int) ([][]float64, error) {
	return p.QueryBatchCtx(context.Background(), seeds, workers)
}

// QueryBatchCtx is QueryBatch honoring cancellation and deadlines on ctx:
// cancellation is observed between individual seed solves (and between the
// block-solve stages inside each), undone work is abandoned, and the first
// context error is returned.
func (p *Precomputed) QueryBatchCtx(ctx context.Context, seeds []int, workers int) ([][]float64, error) {
	for _, s := range seeds {
		if s < 0 || s >= p.N {
			return nil, fmt.Errorf("core: seed %d out of range [0,%d)", s, p.N)
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(seeds) {
		workers = len(seeds)
	}
	out := make([][]float64, len(seeds))
	if len(seeds) == 0 {
		return out, nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := p.AcquireWorkspace()
			defer p.ReleaseWorkspace(ws)
			for i := range next {
				dst := make([]float64, p.N)
				if err := p.QueryToCtx(ctx, dst, seeds[i], ws); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					continue
				}
				out[i] = dst
			}
		}()
	}
feed:
	for i := range seeds {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
