package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// QueryBatch computes RWR vectors for many seeds, fanning blocked
// multi-RHS chunks out over workers goroutines (0 selects GOMAXPROCS).
// Results are indexed like seeds and bit-identical to Query on each seed.
// Precomputed is read-only during queries, so the workers share it without
// locking; each worker holds one BatchWorkspace for its whole share of the
// batch, so the only per-query allocation is the result vector.
func (p *Precomputed) QueryBatch(seeds []int, workers int) ([][]float64, error) {
	return p.QueryBatchCtx(context.Background(), seeds, workers)
}

// QueryBatchCtx is QueryBatch honoring cancellation and deadlines on ctx:
// cancellation is observed between chunk solves (and between the
// block-solve stages inside each), undone work is abandoned, and the first
// context error is returned.
//
// Seeds are reordered internally so that seeds sharing a diagonal block
// land in the same multi-RHS chunk (see QueryBatchTo); the returned slice
// is still indexed like seeds.
func (p *Precomputed) QueryBatchCtx(ctx context.Context, seeds []int, workers int) ([][]float64, error) {
	for _, s := range seeds {
		if s < 0 || s >= p.N {
			return nil, fmt.Errorf("core: seed %d out of range [0,%d)", s, p.N)
		}
	}
	out := make([][]float64, len(seeds))
	if len(seeds) == 0 {
		return out, nil
	}
	for i := range out {
		out[i] = make([]float64, p.N)
	}

	// Group same-block seeds into chunks of the batch width; each chunk is
	// one independent blocked solve, so chunks parallelize cleanly.
	order := p.seedOrder(seeds)
	nb := p.batchWidth()
	nchunks := (len(order) + nb - 1) / nb
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nchunks {
		workers = nchunks
	}

	if workers <= 1 {
		bw := p.AcquireBatchWorkspace()
		defer p.ReleaseBatchWorkspace(bw)
		for start := 0; start < len(order); start += nb {
			end := start + nb
			if end > len(order) {
				end = len(order)
			}
			if err := p.queryChunkTo(ctx, out, seeds, order[start:end], bw); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			bw := p.AcquireBatchWorkspace()
			defer p.ReleaseBatchWorkspace(bw)
			for start := range next {
				end := start + nb
				if end > len(order) {
					end = len(order)
				}
				if err := p.queryChunkTo(ctx, out, seeds, order[start:end], bw); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
feed:
	for start := 0; start < len(order); start += nb {
		select {
		case next <- start:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
