package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bear/internal/graph"
	"bear/internal/graph/gen"
)

// freshSolve preprocesses the graph from scratch and queries it — the
// oracle the Woodbury-updated answers must match exactly.
func freshSolve(t *testing.T, g *graph.Graph, seed int) []float64 {
	t.Helper()
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("fresh Preprocess: %v", err)
	}
	r, err := p.Query(seed)
	if err != nil {
		t.Fatalf("fresh Query: %v", err)
	}
	return r
}

func TestDynamicNoUpdatesMatchesStatic(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 50))
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	got, err := d.Query(9)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want, err := d.Precomputed().Query(9)
	if err != nil {
		t.Fatalf("static Query: %v", err)
	}
	if diff := maxAbsDiff(got, want); diff != 0 {
		t.Fatalf("no-update dynamic differs by %g", diff)
	}
}

func TestDynamicAddEdgeExact(t *testing.T) {
	g := gen.BarabasiAlbert(150, 2, 51)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.AddEdge(3, 140, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if d.PendingNodes() != 1 {
		t.Fatalf("PendingNodes = %d, want 1", d.PendingNodes())
	}
	got, err := d.Query(3)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := freshSolve(t, d.Graph(), 3)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("updated query differs from fresh preprocess by %g", diff)
	}
}

func TestDynamicRemoveEdgeExact(t *testing.T) {
	g := gen.ErdosRenyi(120, 700, 52)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	// Remove an existing edge.
	var u, v int
	found := false
	for u = 0; u < g.N() && !found; u++ {
		dst, _ := g.Out(u)
		if len(dst) > 1 {
			v = dst[0]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no removable edge")
	}
	if err := d.RemoveEdge(u, v); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	got, err := d.Query(u)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := freshSolve(t, d.Graph(), u)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("after removal, diff %g", diff)
	}
	if err := d.RemoveEdge(u, v); err == nil {
		t.Fatal("expected error removing a missing edge")
	}
}

func TestDynamicBatchedUpdatesExact(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(256, 1500, 0.6, 53))
	d, err := NewDynamic(g, Options{K: 3})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	rng := rand.New(rand.NewSource(54))
	// Ten scattered updates: adds, removals, full row replacements.
	for i := 0; i < 10; i++ {
		u := rng.Intn(g.N())
		switch i % 3 {
		case 0:
			if err := d.AddEdge(u, rng.Intn(g.N()), 1+rng.Float64()); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
		case 1:
			dst, _ := d.Graph().Out(u)
			if len(dst) > 0 {
				if err := d.RemoveEdge(u, dst[rng.Intn(len(dst))]); err != nil {
					t.Fatalf("RemoveEdge: %v", err)
				}
			}
		default:
			if err := d.UpdateNode(u, []int{rng.Intn(g.N()), rng.Intn(g.N())}, []float64{1, 2}); err != nil {
				t.Fatalf("UpdateNode: %v", err)
			}
		}
	}
	for _, seed := range []int{0, 100, 255} {
		got, err := d.Query(seed)
		if err != nil {
			t.Fatalf("Query(%d): %v", seed, err)
		}
		want := freshSolve(t, d.Graph(), seed)
		if diff := maxAbsDiff(got, want); diff > 1e-8 {
			t.Fatalf("seed %d: batched updates diff %g", seed, diff)
		}
	}
}

func TestDynamicRebuild(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 55)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.AddEdge(0, 100, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	before, err := d.Query(0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if err := d.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if d.PendingNodes() != 0 {
		t.Fatalf("PendingNodes after Rebuild = %d", d.PendingNodes())
	}
	after, err := d.Query(0)
	if err != nil {
		t.Fatalf("Query after Rebuild: %v", err)
	}
	if diff := maxAbsDiff(before, after); diff > 1e-9 {
		t.Fatalf("Rebuild changed answers by %g", diff)
	}
}

func TestDynamicValidation(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 56)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.UpdateNode(30, nil, nil); err == nil {
		t.Fatal("expected out-of-range node error")
	}
	if err := d.UpdateNode(0, []int{1}, nil); err == nil {
		t.Fatal("expected length mismatch error")
	}
	if err := d.UpdateNode(0, []int{99}, []float64{1}); err == nil {
		t.Fatal("expected out-of-range destination error")
	}
	if err := d.UpdateNode(0, []int{1}, []float64{-1}); err == nil {
		t.Fatal("expected negative weight error")
	}
	if err := d.AddEdge(0, -1, 1); err == nil {
		t.Fatal("expected destination range error")
	}
	if _, err := d.Query(-1); err == nil {
		t.Fatal("expected seed range error")
	}
	if _, err := d.QueryDist(make([]float64, 29)); err == nil {
		t.Fatal("expected length error")
	}
}

func TestDynamicUpdateToDangling(t *testing.T) {
	// Emptying a node's out-edges makes it dangling; the updated system
	// must still match a fresh preprocess.
	g := gen.ErdosRenyi(80, 500, 57)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.UpdateNode(5, nil, nil); err != nil {
		t.Fatalf("UpdateNode to empty: %v", err)
	}
	got, err := d.Query(5)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := freshSolve(t, d.Graph(), 5)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("dangling update diff %g", diff)
	}
}

// Property: random single-node row replacements keep dynamic queries equal
// to fresh preprocessing.
func TestQuickDynamicWoodburyExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(60)
		b := graph.NewBuilder(n)
		for e := 0; e < 4*n; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1)
		}
		g := b.Build()
		d, err := NewDynamic(g, Options{K: 2})
		if err != nil {
			return false
		}
		u := rng.Intn(n)
		if err := d.UpdateNode(u, []int{rng.Intn(n), rng.Intn(n)}, []float64{1, 3}); err != nil {
			return false
		}
		s := rng.Intn(n)
		got, err := d.Query(s)
		if err != nil {
			return false
		}
		p2, err := Preprocess(d.Graph(), Options{K: 2})
		if err != nil {
			return false
		}
		want, err := p2.Query(s)
		if err != nil {
			return false
		}
		return maxAbsDiff(got, want) <= 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
