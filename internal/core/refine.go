package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bear/internal/obsv"
	"bear/internal/sparse/kernel"
)

// This file implements the accuracy guardrail for BEAR-Approx: residual
// verification against the retained exact operator H, and preconditioned
// iterative refinement. BEAR-Approx (Algorithm 1, line 9) drops entries of
// the precomputed factors below the tolerance ξ, trading accuracy for
// memory; the block-elimination solve with dropped factors is therefore an
// approximate inverse P ≈ H⁻¹. Richardson iterative refinement
//
//	x ← x + P (q − H x)
//
// uses that cheap approximate solve as a preconditioner and contracts the
// error by the factor ‖I − PH‖ per sweep, so a handful of sweeps recovers
// exact-level accuracy at BEAR-Approx memory cost. When ξ = 0 the factors
// are exact, P = H⁻¹, and the initial solve already has a residual at
// rounding level — refinement converges immediately.
//
// All of it requires the permuted system matrix H, which preprocessing
// retains only under Options.KeepH (the factors alone cannot reproduce H
// once entries have been dropped).

// ErrNoRetainedH is returned by Residual and the refined query paths when
// preprocessing did not retain H (Options.KeepH was false and the loaded
// precompute file carried no H section).
var ErrNoRetainedH = errors.New("core: H not retained; preprocess with Options.KeepH to enable residual verification and refinement")

// DefaultRefineMaxIter bounds the number of refinement sweeps when the
// caller passes maxIter <= 0. Each sweep contracts the error by roughly
// the drop-induced perturbation ratio, so well-conditioned systems converge
// in a handful of sweeps; 16 leaves generous headroom before the loop gives
// up on a stagnating (too-aggressive ξ) system.
const DefaultRefineMaxIter = 16

// RefineStats reports what a refined solve did.
type RefineStats struct {
	// Sweeps is the number of Richardson correction sweeps applied (0 when
	// the initial solve already met the tolerance, or refinement was off).
	Sweeps int
	// Residual is the last measured ∞-norm residual ‖q − H x‖∞ of the
	// unscaled system (scaled by c for query-level results; see
	// QueryRefinedCtx). NaN when refinement was disabled (tol <= 0): the
	// plain path never measures a residual.
	Residual float64
	// Converged reports whether the residual met the tolerance. Always true
	// when refinement was disabled (the plain path is, by definition, the
	// answer asked for).
	Converged bool
}

// infNorm returns ‖v‖∞, propagating NaN so a poisoned residual is reported
// rather than silently ranked below finite entries.
func infNorm(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if math.IsNaN(x) {
			return math.NaN()
		}
		if x < 0 {
			x = -x
		}
		if x > m {
			m = x
		}
	}
	return m
}

// Residual measures the ∞-norm defect ‖c·q − H·x‖∞ of a query result x
// (as returned by Query/QueryDist/QueryRefined, indexed by node id)
// against the starting vector q. For exact factors the defect is at
// rounding level; for BEAR-Approx it quantifies exactly the error the drop
// tolerance introduced. Requires Options.KeepH; returns ErrNoRetainedH
// otherwise.
func (p *Precomputed) Residual(x, q []float64) (float64, error) {
	if p.H == nil {
		return 0, ErrNoRetainedH
	}
	if len(x) != p.N || len(q) != p.N {
		return 0, fmt.Errorf("core: Residual lengths %d/%d, want %d", len(x), len(q), p.N)
	}
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	ws.ensureRefine(p.N)
	// The scores x = c·H⁻¹q solve H x = c·q, so the defect is measured
	// against the c-scaled right-hand side, both in internal order.
	for node, v := range q {
		ws.rq[p.Perm[node]] = p.C * v
	}
	for node, v := range x {
		ws.rz[p.Perm[node]] = v
	}
	p.kern.h.Residual(ws.rr, ws.rq, ws.rz, kernel.Exact)
	return infNorm(ws.rr), nil
}

// SolveRefinedCtx computes x = H⁻¹ b (the unscaled block-elimination solve
// both query layers build on) with iterative refinement: after the initial
// solve, Richardson sweeps x ← x + P(b − Hx) run until
// ‖b − Hx‖∞ ≤ tol·‖b‖∞ or maxIter sweeps have been applied (maxIter <= 0
// selects DefaultRefineMaxIter). tol <= 0 disables refinement entirely:
// the result is bit-identical to the plain solve, no residual is measured,
// and the call stays allocation-free with a caller-held workspace.
//
// Cancellation is honored between sweeps (and inside each solve); on abort
// the stats cover the sweeps already applied and dst holds the best
// iterate so far. Residual and sweep timings are recorded into the
// obsv.Trace carried by ctx, if any. Requires Options.KeepH when tol > 0.
// dst must not alias b.
func (p *Precomputed) SolveRefinedCtx(ctx context.Context, dst, b []float64, tol float64, maxIter int, ws *Workspace) (RefineStats, error) {
	if tol <= 0 {
		if err := p.solveToCtx(ctx, dst, b, ws); err != nil {
			return RefineStats{}, err
		}
		return RefineStats{Converged: true, Residual: math.NaN()}, nil
	}
	if p.H == nil {
		return RefineStats{}, ErrNoRetainedH
	}
	if maxIter <= 0 {
		maxIter = DefaultRefineMaxIter
	}
	ws.ensureRefine(p.N)
	tr := obsv.FromContext(ctx)

	// Permuted right-hand side, fixed for the whole loop. The relative
	// tolerance is anchored to ‖b‖∞ (1 for a unit seed vector); a zero b
	// falls back to an absolute tolerance so the loop still terminates.
	qp := ws.rq
	for node, v := range b {
		qp[p.Perm[node]] = v
	}
	qnorm := infNorm(qp)
	if qnorm == 0 {
		qnorm = 1
	}

	var stats RefineStats
	if err := p.solveToCtx(ctx, dst, b, ws); err != nil {
		return stats, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return stats, err
		}
		// Measure: r = b − H x, in internal order.
		sw := tr.Start(obsv.SpanResidual)
		zp := ws.rz
		for node, v := range dst {
			zp[p.Perm[node]] = v
		}
		p.kern.h.Residual(ws.rr, qp, zp, kernel.Exact)
		res := infNorm(ws.rr)
		sw.Stop()
		stats.Residual = res
		if res <= tol*qnorm {
			stats.Converged = true
			return stats, nil
		}
		if stats.Sweeps >= maxIter {
			return stats, nil
		}
		// Correct: x ← x + P r. The residual is gathered back to node
		// order into zp (its permuted-iterate contents are recomputed next
		// pass), solved in place — solveToCtx copies its right-hand side
		// into ws.full before writing dst, so the aliasing is safe — and
		// accumulated into the iterate.
		sw = tr.Start(obsv.SpanRefineSweep)
		for node := range zp {
			zp[node] = ws.rr[p.Perm[node]]
		}
		if err := p.solveToCtx(ctx, zp, zp, ws); err != nil {
			sw.Stop()
			return stats, err
		}
		for i := range dst {
			dst[i] += zp[i]
		}
		stats.Sweeps++
		sw.Stop()
	}
}

// QueryRefinedCtx computes personalized PageRank for the starting vector q
// like QueryDistToCtx, then verifies and iteratively refines the result
// against the retained exact H until the relative ∞-norm residual falls
// below tol (see SolveRefinedCtx). dst receives the c-scaled scores; the
// returned stats carry the c-scaled residual, directly comparable to
// Residual(dst, q). With tol <= 0 the call is bit-identical to
// QueryDistToCtx and allocation-free with a caller-held workspace. A nil
// ws borrows a pooled workspace. dst must not alias q.
func (p *Precomputed) QueryRefinedCtx(ctx context.Context, dst, q []float64, tol float64, maxIter int, ws *Workspace) (RefineStats, error) {
	if len(q) != p.N {
		return RefineStats{}, fmt.Errorf("core: starting vector length %d, want %d", len(q), p.N)
	}
	if len(dst) != p.N {
		return RefineStats{}, fmt.Errorf("core: destination length %d, want %d", len(dst), p.N)
	}
	for i, v := range q {
		if v < 0 || math.IsNaN(v) {
			return RefineStats{}, fmt.Errorf("core: starting vector entry %d is %g; must be non-negative", i, v)
		}
	}
	if ws == nil {
		ws = p.AcquireWorkspace()
		defer p.ReleaseWorkspace(ws)
	}
	stats, err := p.SolveRefinedCtx(ctx, dst, q, tol, maxIter, ws)
	if err != nil {
		return stats, err
	}
	for i := range dst {
		dst[i] *= p.C
	}
	// The unscaled system solved H z = q; the returned scores are x = c·z,
	// so the score-level defect c·q − H·x is c times the measured one.
	stats.Residual *= p.C
	return stats, nil
}

// QueryRefined is QueryRefinedCtx for a freshly allocated result and a
// background context.
func (p *Precomputed) QueryRefined(q []float64, tol float64, maxIter int) ([]float64, RefineStats, error) {
	dst := make([]float64, p.N)
	stats, err := p.QueryRefinedCtx(context.Background(), dst, q, tol, maxIter, nil)
	if err != nil {
		return nil, stats, err
	}
	return dst, stats, nil
}
