package core

import (
	"math"
	"testing"

	"bear/internal/graph/gen"
)

func cosine(a, b []float64) float64 {
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

func l2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func TestApproxShrinksMatrices(t *testing.T) {
	g := gen.BarabasiAlbert(800, 3, 20)
	exact, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	n := float64(g.N())
	approx, err := Preprocess(g, Options{K: 2, DropTol: 1 / math.Sqrt(n)})
	if err != nil {
		t.Fatalf("approx: %v", err)
	}
	if approx.NNZ() >= exact.NNZ() {
		t.Fatalf("approx nnz %d not below exact nnz %d", approx.NNZ(), exact.NNZ())
	}
	if approx.Bytes() >= exact.Bytes() {
		t.Fatalf("approx bytes %d not below exact bytes %d", approx.Bytes(), exact.Bytes())
	}
}

func TestApproxAccuracyDegradesGracefully(t *testing.T) {
	// Fig 6's shape: as ξ rises, nnz falls monotonically while cosine
	// similarity stays high for small ξ.
	g := gen.RMAT(gen.NewRMATPul(512, 3000, 0.7, 21))
	exact, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("exact: %v", err)
	}
	ref, err := exact.Query(10)
	if err != nil {
		t.Fatalf("exact query: %v", err)
	}
	n := float64(g.N())
	xis := []float64{1 / (n * n), 1 / n, 1 / math.Sqrt(n), 1 / math.Pow(n, 0.25)}
	prevNNZ := exact.NNZ()
	for _, xi := range xis {
		p, err := Preprocess(g, Options{K: 2, DropTol: xi})
		if err != nil {
			t.Fatalf("ξ=%g: %v", xi, err)
		}
		if p.NNZ() > prevNNZ {
			t.Fatalf("nnz not monotone at ξ=%g: %d > %d", xi, p.NNZ(), prevNNZ)
		}
		prevNNZ = p.NNZ()
		r, err := p.Query(10)
		if err != nil {
			t.Fatalf("ξ=%g query: %v", xi, err)
		}
		cos := cosine(r, ref)
		if xi <= 1/n && cos < 0.999 {
			t.Fatalf("ξ=%g: cosine %g below 0.999 (paper keeps >0.999 at n⁻¹)", xi, cos)
		}
		if cos < 0.85 {
			t.Fatalf("ξ=%g: cosine %g collapsed", xi, cos)
		}
	}
}

func TestApproxZeroTolIsExact(t *testing.T) {
	g := gen.ErdosRenyi(150, 600, 22)
	a, err := Preprocess(g, Options{K: 2, DropTol: 0})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	b, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ra, _ := a.Query(0)
	rb, _ := b.Query(0)
	if d := maxAbsDiff(ra, rb); d != 0 {
		t.Fatalf("DropTol 0 differs from default by %g", d)
	}
}

func TestOptionsValidation(t *testing.T) {
	g := gen.ErdosRenyi(10, 30, 23)
	if _, err := Preprocess(g, Options{C: 1.5}); err == nil {
		t.Fatal("expected error for c > 1")
	}
	if _, err := Preprocess(g, Options{C: -0.1}); err == nil {
		t.Fatal("expected error for negative c")
	}
	if _, err := Preprocess(g, Options{DropTol: -1}); err == nil {
		t.Fatal("expected error for negative drop tolerance")
	}
}

func TestStatsPopulated(t *testing.T) {
	g := gen.BarabasiAlbert(300, 2, 24)
	p, err := Preprocess(g, Options{K: 3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	st := p.Stats
	if st.N != g.N() || st.M != g.M() {
		t.Fatal("stats sizes wrong")
	}
	if st.N1+st.N2 != st.N {
		t.Fatal("n1 + n2 != n")
	}
	if st.NumBlocks != len(p.Blocks) {
		t.Fatal("block count mismatch")
	}
	var sq int64
	for _, b := range p.Blocks {
		sq += int64(b) * int64(b)
	}
	if st.SumSqBlocks != sq {
		t.Fatal("SumSqBlocks mismatch")
	}
	if st.NNZH12H21 != p.H12.NNZ()+p.H21.NNZ() {
		t.Fatal("NNZH12H21 mismatch")
	}
	if st.TimeTotal <= 0 {
		t.Fatal("TimeTotal not measured")
	}
}

func TestDenseVsSparseSchurPathsAgree(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(300, 1800, 0.6, 25))
	dense, err := Preprocess(g, Options{K: 3, DenseSchurCutoff: 1 << 20})
	if err != nil {
		t.Fatalf("dense path: %v", err)
	}
	sparsePath, err := Preprocess(g, Options{K: 3, DenseSchurCutoff: 1})
	if err != nil {
		t.Fatalf("sparse path: %v", err)
	}
	if dense.N2 <= 1 {
		t.Skip("needs more than one hub to exercise the Schur factorization")
	}
	rd, _ := dense.Query(17)
	rs, _ := sparsePath.Query(17)
	if d := maxAbsDiff(rd, rs); d > 1e-9 {
		t.Fatalf("Schur paths disagree by %g", d)
	}
}

func TestEmptyGraphRejected(t *testing.T) {
	g := gen.ErdosRenyi(8, 0, 26) // edgeless is fine...
	if _, err := Preprocess(g, Options{K: 1}); err != nil {
		t.Fatalf("edgeless graph should preprocess: %v", err)
	}
}
