package core

import (
	"fmt"
	"math"
	"testing"

	"bear/internal/graph/gen"
)

// TestUpdateNodeRejectsNonFinite is the regression test for the validation
// gap where +Inf slipped past the weight check (only negatives and NaN were
// rejected) and poisoned the row normalization into NaN scores.
func TestUpdateNodeRejectsNonFinite(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 60)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	for _, bad := range []float64{math.Inf(1), math.Inf(-1), math.NaN(), -1} {
		if err := d.UpdateNode(0, []int{1}, []float64{bad}); err == nil {
			t.Errorf("UpdateNode accepted weight %g", bad)
		}
		if err := d.AddEdge(0, 1, bad); err == nil {
			t.Errorf("AddEdge accepted weight %g", bad)
		}
	}
	// Individually finite duplicate weights whose merged sum overflows are
	// rejected too (found by FuzzDynamicUpdate).
	if err := d.UpdateNode(0, []int{1, 1}, []float64{math.MaxFloat64, math.MaxFloat64}); err == nil {
		t.Error("UpdateNode accepted duplicate weights summing to +Inf")
	}
	if d.PendingNodes() != 0 {
		t.Fatalf("rejected updates left %d dirty nodes", d.PendingNodes())
	}
	// Scores stay finite after the rejections.
	r, err := d.Query(0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i, v := range r {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("score[%d] = %g after rejected updates", i, v)
		}
	}
}

// TestAddEdgeUpdateInPlace pins the AddEdge semantics on an existing edge:
// the weight is replaced — not summed into a parallel duplicate — so the
// row length is unchanged, and re-adding the weight an edge already has is
// a no-op that leaves the node clean.
func TestAddEdgeUpdateInPlace(t *testing.T) {
	g := gen.BarabasiAlbert(100, 3, 61)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	var u, v int
	var w0 float64
	for u = 0; u < g.N(); u++ {
		if dst, wt := g.Out(u); len(dst) > 0 {
			v, w0 = dst[0], wt[0]
			break
		}
	}
	degBefore := g.OutDegree(u)
	epoch := d.Epoch()

	// Same weight: no-op, node stays clean, epoch does not advance.
	if err := d.AddEdge(u, v, w0); err != nil {
		t.Fatalf("AddEdge same weight: %v", err)
	}
	if d.PendingNodes() != 0 {
		t.Fatalf("same-weight AddEdge marked node dirty (pending=%d)", d.PendingNodes())
	}
	if d.Epoch() != epoch {
		t.Fatalf("same-weight AddEdge advanced the epoch")
	}

	// New weight: replaced in place, row length unchanged.
	if err := d.AddEdge(u, v, w0+1.5); err != nil {
		t.Fatalf("AddEdge new weight: %v", err)
	}
	dst, wt := d.Graph().Out(u)
	if len(dst) != degBefore {
		t.Fatalf("out-degree %d after weight update, want %d (parallel duplicate appended?)", len(dst), degBefore)
	}
	found := false
	for k := range dst {
		if dst[k] == v {
			found = true
			if wt[k] != w0+1.5 {
				t.Fatalf("edge %d->%d weight %g, want %g", u, v, wt[k], w0+1.5)
			}
		}
	}
	if !found {
		t.Fatalf("edge %d->%d missing after update", u, v)
	}
	got, err := d.Query(u)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := freshSolve(t, d.Graph(), u)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("weight-replace query differs from fresh preprocess by %g", diff)
	}
}

// TestAddEdgeRemoveEdgeRoundTrip adds a brand-new edge and removes it again;
// the current graph must match the original edge-for-edge, and queries must
// match the untouched static solve.
func TestAddEdgeRemoveEdgeRoundTrip(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(120, 700, 0.7, 62))
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	// Find a pair (u, v) with no existing edge.
	u, v := 0, -1
	for ; u < g.N() && v < 0; u++ {
		dst, _ := g.Out(u)
		seen := make(map[int]bool, len(dst))
		for _, x := range dst {
			seen[x] = true
		}
		for cand := 0; cand < g.N(); cand++ {
			if !seen[cand] {
				v = cand
				break
			}
		}
	}
	u--
	if v < 0 {
		t.Skip("graph is complete; no edge to add")
	}
	if err := d.AddEdge(u, v, 1.25); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if err := d.RemoveEdge(u, v); err != nil {
		t.Fatalf("RemoveEdge: %v", err)
	}
	// The row is back to its base contents.
	gotDst, gotW := d.Graph().Out(u)
	wantDst, wantW := g.Out(u)
	if len(gotDst) != len(wantDst) {
		t.Fatalf("row %d length %d after round trip, want %d", u, len(gotDst), len(wantDst))
	}
	for k := range gotDst {
		if gotDst[k] != wantDst[k] || gotW[k] != wantW[k] {
			t.Fatalf("row %d entry %d = (%d,%g), want (%d,%g)", u, k, gotDst[k], gotW[k], wantDst[k], wantW[k])
		}
	}
	// Queries through the (now zero-delta) Woodbury correction still match
	// the static answer on the original graph.
	got, err := d.Query(u)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want, err := d.Precomputed().Query(u)
	if err != nil {
		t.Fatalf("static Query: %v", err)
	}
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("round-trip query differs from static solve by %g", diff)
	}
}

// TestUpdateNodeDuplicatesSummed: duplicate destinations in an UpdateNode
// row are merged by summing, matching what graph.Builder produces.
func TestUpdateNodeDuplicatesSummed(t *testing.T) {
	g := gen.ErdosRenyi(30, 150, 63)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.UpdateNode(4, []int{7, 3, 7}, []float64{1, 2, 0.5}); err != nil {
		t.Fatalf("UpdateNode: %v", err)
	}
	dst, w := d.Graph().Out(4)
	if len(dst) != 2 || dst[0] != 3 || dst[1] != 7 {
		t.Fatalf("row = %v, want [3 7]", dst)
	}
	if w[0] != 2 || w[1] != 1.5 {
		t.Fatalf("weights = %v, want [2 1.5]", w)
	}
	got, err := d.Query(4)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := freshSolve(t, d.Graph(), 4)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("duplicate-merge query differs from fresh preprocess by %g", diff)
	}
}

// TestRemoveEdgeValidation: out-of-range node and missing edge both error
// without mutating state.
func TestRemoveEdgeValidation(t *testing.T) {
	g := gen.ErdosRenyi(20, 80, 64)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.RemoveEdge(-1, 0); err == nil {
		t.Fatal("expected out-of-range node error")
	}
	if err := d.RemoveEdge(20, 0); err == nil {
		t.Fatal("expected out-of-range node error")
	}
	if d.PendingNodes() != 0 {
		t.Fatalf("failed removals left %d dirty nodes", d.PendingNodes())
	}
}

// BenchmarkDynamicUpdate pins the perf fix for single-edge updates: cost is
// O(|row u|), not an O(N+M) whole-graph rebuild, so per-update time must
// stay flat as the graph grows. Each iteration toggles one edge weight
// between two values, which always changes the row and keeps the dirty set
// at exactly one node. The updated node is the newest BA node — a leaf
// whose degree stays constant across sizes — so any growth in ns/op would
// expose a hidden N- or M-proportional term.
func BenchmarkDynamicUpdate(b *testing.B) {
	for _, n := range []int{500, 2000, 8000} {
		g := gen.BarabasiAlbert(n, 4, 65)
		d, err := NewDynamic(g, Options{})
		if err != nil {
			b.Fatalf("NewDynamic: %v", err)
		}
		var u, v int
		for u = n - 1; u > 0; u-- {
			if dst, _ := g.Out(u); len(dst) > 0 {
				v = dst[0]
				break
			}
		}
		b.Run(fmt.Sprintf("n=%d/m=%d", n, g.M()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := d.AddEdge(u, v, 1.5+float64(i%2)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// FuzzDynamicUpdate drives arbitrary AddEdge/RemoveEdge/UpdateNode
// sequences — including out-of-range nodes and non-finite weights — and
// asserts the update layer never panics, invalid inputs are rejected as
// errors, and queries after any accepted sequence return finite scores.
func FuzzDynamicUpdate(f *testing.F) {
	f.Add([]byte{0, 3, 5, 1})
	f.Add([]byte{1, 3, 5, 0, 2, 3, 5, 1})
	f.Add([]byte{2, 0, 7, 3, 0, 0, 7, 4})       // UpdateNode then Inf AddEdge
	f.Add([]byte{0, 10, 10, 5, 1, 10, 10, 0})   // NaN weight, then remove
	f.Add([]byte{0, 200, 2, 1, 0, 2, 200, 1})   // out-of-range endpoints
	f.Add([]byte{2, 5, 9, 2, 2, 5, 9, 6, 0, 5}) // replace row twice, trailing bytes

	const n = 24
	weights := []float64{0, 0.5, 1, 2.5, math.Inf(1), math.NaN(), -1, math.MaxFloat64}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64] // bound the dirty set so Woodbury stays cheap
		}
		g := gen.ErdosRenyi(n, 100, 66)
		d, err := NewDynamic(g, Options{K: 1})
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		for len(data) >= 4 {
			op, u, v, wi := data[0]%3, int(data[1]), int(data[2]), data[3]
			w := weights[int(wi)%len(weights)]
			data = data[4:]
			valid := u >= 0 && u < n && v >= 0 && v < n &&
				w >= 0 && !math.IsNaN(w) && !math.IsInf(w, 0)
			switch op {
			case 0:
				err = d.AddEdge(u, v, w)
			case 1:
				err = d.RemoveEdge(u, v) // missing edge is an error; must not panic
				valid = false            // existence not tracked here; any outcome but a panic is fine
			default:
				err = d.UpdateNode(u, []int{v, v % n}, []float64{w, w})
			}
			if !valid && op != 1 && err == nil {
				t.Fatalf("op %d accepted invalid input u=%d v=%d w=%g", op, u, v, w)
			}
		}
		// Whatever was accepted must still answer with finite scores. A
		// singular Woodbury capacitance matrix is a legal error, not a panic.
		r, err := d.Query(0)
		if err != nil {
			return
		}
		for i, val := range r {
			if math.IsNaN(val) || math.IsInf(val, 0) {
				t.Fatalf("score[%d] = %g after fuzzed updates", i, val)
			}
		}
	})
}

// TestWoodburyColumnCacheExact: the per-node H⁻¹W column cache must not
// change answers — queries interleaved with updates stay exact against a
// from-scratch preprocess, including after a cached column is evicted by
// re-updating its node.
func TestWoodburyColumnCacheExact(t *testing.T) {
	g := gen.BarabasiAlbert(150, 3, 70)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	check := func(step string) {
		t.Helper()
		got, err := d.Query(5)
		if err != nil {
			t.Fatalf("%s: Query: %v", step, err)
		}
		if diff := maxAbsDiff(got, freshSolve(t, d.Graph(), 5)); diff > 1e-9 {
			t.Fatalf("%s: query drifted %g from fresh preprocess", step, diff)
		}
	}
	// Grow the dirty set one node at a time, querying between updates so
	// each refresh finds all but one column already cached.
	for i := 0; i < 6; i++ {
		u := 10 + i*7
		if err := d.AddEdge(u, (u+3)%150, 1.0+float64(i)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
		check(fmt.Sprintf("after dirtying node %d", u))
	}
	// Re-update an already-dirty node: its cached column is stale and must
	// be evicted, the other five reused.
	if err := d.AddEdge(10, 140, 9.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	check("after re-updating a dirty node")
	if len(d.hwByNode) != 6 {
		t.Fatalf("column cache holds %d entries, want 6", len(d.hwByNode))
	}
	// A rebuild swaps the base, so every cached column dies with it.
	if err := d.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if len(d.hwByNode) != 0 {
		t.Fatalf("column cache survived a rebuild with %d entries", len(d.hwByNode))
	}
	check("after rebuild")
}

// BenchmarkWoodburyRefresh pins the marginal cost of one update+query
// cycle at a standing dirty set of k nodes. With the per-node column
// cache, each cycle re-solves only the one evicted column (plus the k×k
// capacitance assembly); without it, every cycle re-solved all k columns.
func BenchmarkWoodburyRefresh(b *testing.B) {
	for _, k := range []int{16, 64} {
		n := 4000
		g := gen.BarabasiAlbert(n, 4, 71)
		d, err := NewDynamic(g, Options{})
		if err != nil {
			b.Fatalf("NewDynamic: %v", err)
		}
		for i := 0; i < k; i++ {
			if err := d.AddEdge(1+i*53, (2+i*53)%n, 1.5); err != nil {
				b.Fatalf("AddEdge: %v", err)
			}
		}
		if _, err := d.Query(0); err != nil { // warm the column cache
			b.Fatalf("Query: %v", err)
		}
		b.Run(fmt.Sprintf("n=%d/k=%d", n, k), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := d.AddEdge(1, (2+i%5)%n, 1.5+float64(i%2)); err != nil {
					b.Fatal(err)
				}
				if _, err := d.Query(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
