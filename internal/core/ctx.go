package core

import (
	"context"
	"fmt"
	"math"
)

// This file threads context.Context through the query path. A BEAR query is
// a short chain of sparse products, so cancellation is checked at the stage
// boundaries of Algorithm 2 (forward pass, Schur-complement solve, back
// substitution) rather than inside the kernels: a cancelled request stops
// within one stage, and the uncancelled hot path pays only a nil-check per
// stage (context.Background().Err() is a constant nil).

// QueryCtx is Query honoring cancellation and deadlines on ctx.
func (p *Precomputed) QueryCtx(ctx context.Context, seed int) ([]float64, error) {
	dst := make([]float64, p.N)
	if err := p.QueryToCtx(ctx, dst, seed, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// QueryToCtx is QueryTo honoring cancellation and deadlines on ctx.
func (p *Precomputed) QueryToCtx(ctx context.Context, dst []float64, seed int, ws *Workspace) error {
	if seed < 0 || seed >= p.N {
		return fmt.Errorf("core: seed %d out of range [0,%d)", seed, p.N)
	}
	if len(dst) != p.N {
		return fmt.Errorf("core: destination length %d, want %d", len(dst), p.N)
	}
	if ws == nil {
		ws = p.AcquireWorkspace()
		defer p.ReleaseWorkspace(ws)
	}
	if err := p.solveSeedToCtx(ctx, dst, p.Perm[seed], 1, ws); err != nil {
		return err
	}
	for i := range dst {
		dst[i] *= p.C
	}
	return nil
}

// QueryDistCtx is QueryDist honoring cancellation and deadlines on ctx.
func (p *Precomputed) QueryDistCtx(ctx context.Context, q []float64) ([]float64, error) {
	dst := make([]float64, p.N)
	if err := p.QueryDistToCtx(ctx, dst, q, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// QueryDistToCtx is QueryDistTo honoring cancellation and deadlines on ctx.
func (p *Precomputed) QueryDistToCtx(ctx context.Context, dst, q []float64, ws *Workspace) error {
	if len(q) != p.N {
		return fmt.Errorf("core: starting vector length %d, want %d", len(q), p.N)
	}
	if len(dst) != p.N {
		return fmt.Errorf("core: destination length %d, want %d", len(dst), p.N)
	}
	for i, v := range q {
		if v < 0 || math.IsNaN(v) {
			return fmt.Errorf("core: starting vector entry %d is %g; must be non-negative", i, v)
		}
	}
	if ws == nil {
		ws = p.AcquireWorkspace()
		defer p.ReleaseWorkspace(ws)
	}
	if err := p.solveToCtx(ctx, dst, q, ws); err != nil {
		return err
	}
	for i := range dst {
		dst[i] *= p.C
	}
	return nil
}

// QueryEffectiveImportanceCtx is QueryEffectiveImportance honoring
// cancellation and deadlines on ctx.
func (p *Precomputed) QueryEffectiveImportanceCtx(ctx context.Context, seed int) ([]float64, error) {
	r, err := p.QueryCtx(ctx, seed)
	if err != nil {
		return nil, err
	}
	for i := range r {
		if d := p.OutDegree[i]; d > 0 {
			r[i] /= d
		}
	}
	return r, nil
}
