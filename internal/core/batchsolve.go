package core

import (
	"context"
	"fmt"
	"sort"

	"bear/internal/obsv"
	"bear/internal/sparse/kernel"
)

// This file implements the blocked multi-RHS batch solver: Algorithm 2
// applied to a block of seeds at once, so each precomputed factor matrix is
// traversed once per chunk of seeds instead of once per seed. The
// per-column arithmetic — term set and accumulation order — is exactly the
// single-seed fast path's, so every result vector is bit-identical to
// Query on the same seed (asserted with == in the tests).
//
// The solve has two halves with very different structure:
//
//   - The forward half (U₁⁻¹ L₁⁻¹ b₁ and the H₂₁ product) is supported on
//     the seed's diagonal block only (Lemma 1), so seeds are grouped by
//     block and each group runs the block-restricted kernels once at the
//     group's width. Hub seeds have b₁ = 0 and skip it entirely.
//   - The Schur-complement solve and the back-substitution touch the full
//     factors regardless of the seed, so they run at the full chunk width:
//     one pass over L₂⁻¹/U₂⁻¹/H₁₂/L₁⁻¹/U₁⁻¹ serves every seed in the
//     chunk. This is where batching pays — those passes dominate the
//     per-seed cost and are memory-bandwidth-bound on the factor matrices.

// batchScratchFloats bounds the scratch a BatchWorkspace holds: the chunk
// width is chosen so one n-length buffer set stays within this many
// float64s, keeping batch memory flat as graphs grow.
const batchScratchFloats = 1 << 19

// defaultBatchWidth is the widest chunk (number of right-hand sides
// carried per factor traversal) used when memory permits. Wider chunks
// amortize traversals further but see diminishing returns once the
// per-entry inner loop saturates memory bandwidth.
const defaultBatchWidth = 16

// batchWidth returns the chunk width for this graph's size.
func (p *Precomputed) batchWidth() int {
	w := defaultBatchWidth
	if p.N > 0 {
		if c := batchScratchFloats / p.N; c < w {
			w = c
		}
	}
	if w < 1 {
		w = 1
	}
	return w
}

// BatchWorkspace holds the scratch a blocked multi-RHS solve needs: three
// spoke-length and three hub-length buffer blocks, each nb columns wide in
// the node-contiguous layout of the sparse multi-RHS kernels. It is bound
// to the Precomputed it was acquired from and not safe for concurrent use;
// acquire one per goroutine.
type BatchWorkspace struct {
	nb         int
	b1, s1, s2 []float64 // n₁×nb: RHS block and ping-pong scratch
	b2, h, ha  []float64 // n₂×nb: hub RHS and Schur-stage scratch
}

// AcquireBatchWorkspace returns a batch workspace sized for p, reusing a
// pooled one when available. Release it with ReleaseBatchWorkspace.
func (p *Precomputed) AcquireBatchWorkspace() *BatchWorkspace {
	if bw, ok := p.batchPool.Get().(*BatchWorkspace); ok {
		return bw
	}
	nb := p.batchWidth()
	return &BatchWorkspace{
		nb: nb,
		b1: make([]float64, p.N1*nb),
		s1: make([]float64, p.N1*nb),
		s2: make([]float64, p.N1*nb),
		b2: make([]float64, p.N2*nb),
		h:  make([]float64, p.N2*nb),
		ha: make([]float64, p.N2*nb),
	}
}

// ReleaseBatchWorkspace returns bw to p's pool for reuse. bw must have been
// acquired from p and must not be used after release.
func (p *Precomputed) ReleaseBatchWorkspace(bw *BatchWorkspace) {
	if bw == nil {
		return
	}
	if len(bw.b1) != p.N1*bw.nb || len(bw.b2) != p.N2*bw.nb {
		panic(fmt.Sprintf("core: batch workspace sized %d/%d (nb=%d) released to a %d/%d solver",
			len(bw.b1), len(bw.b2), bw.nb, p.N1, p.N2))
	}
	p.batchPool.Put(bw)
}

// seedOrder returns the batch indices reordered so seeds sharing a
// diagonal block are adjacent (hubs last), with original order preserved
// within each group. Chunks sliced from this order then consist of a few
// same-block runs, each serviced by one block-restricted forward pass.
func (p *Precomputed) seedOrder(seeds []int) []int {
	order := make([]int, len(seeds))
	for i := range order {
		order[i] = i
	}
	key := func(i int) int {
		pos := p.Perm[seeds[i]]
		if pos >= p.N1 {
			return len(p.Blocks) // hubs sort after every block
		}
		return p.blockOfPos(pos)
	}
	sort.Slice(order, func(a, b int) bool {
		ka, kb := key(order[a]), key(order[b])
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	return order
}

// QueryBatchTo computes RWR vectors for many seeds through the blocked
// multi-RHS solver, writing results into caller-owned dst (indexed like
// seeds, each vector of length N). A nil bw borrows a pooled batch
// workspace. Results are bit-identical to QueryTo on each seed.
func (p *Precomputed) QueryBatchTo(ctx context.Context, dst [][]float64, seeds []int, bw *BatchWorkspace) error {
	if len(dst) != len(seeds) {
		return fmt.Errorf("core: %d destinations for %d seeds", len(dst), len(seeds))
	}
	for i, s := range seeds {
		if s < 0 || s >= p.N {
			return fmt.Errorf("core: seed %d out of range [0,%d)", s, p.N)
		}
		if len(dst[i]) != p.N {
			return fmt.Errorf("core: destination %d length %d, want %d", i, len(dst[i]), p.N)
		}
	}
	if len(seeds) == 0 {
		return nil
	}
	if bw == nil {
		bw = p.AcquireBatchWorkspace()
		defer p.ReleaseBatchWorkspace(bw)
	}
	order := p.seedOrder(seeds)
	for start := 0; start < len(order); start += bw.nb {
		end := start + bw.nb
		if end > len(order) {
			end = len(order)
		}
		if err := p.queryChunkTo(ctx, dst, seeds, order[start:end], bw); err != nil {
			return err
		}
	}
	return nil
}

// queryChunkTo solves one chunk of up to bw.nb seeds. cols maps chunk
// column k to its index in seeds/dst; same-block seeds occupy consecutive
// columns (the caller ordered them with seedOrder).
func (p *Precomputed) queryChunkTo(ctx context.Context, dst [][]float64, seeds []int, cols []int, bw *BatchWorkspace) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := obsv.FromContext(ctx)
	n1, n2 := p.N1, p.N2
	nb := len(cols)
	b1 := bw.b1[:n1*nb]
	for i := range b1 {
		b1[i] = 0
	}
	b2 := bw.b2[:n2*nb]
	for i := range b2 {
		b2[i] = 0
	}
	for k, ii := range cols {
		if pos := p.Perm[seeds[ii]]; pos < n1 {
			b1[pos*nb+k] = 1
		} else {
			b2[(pos-n1)*nb+k] = 1
		}
	}

	var r2 []float64
	if n2 > 0 {
		sw := tr.Start(obsv.SpanForwardSolve)
		h := bw.h[:n2*nb]
		// Forward half, one same-block run at a time: t = U₁⁻¹ L₁⁻¹ b₁
		// restricted to the run's diagonal block (Lemma 1), then the H₂₁
		// product restricted to that block's columns. Hub columns have
		// b₁ = 0, so their H₂₁ contribution is exactly zero.
		for rs := 0; rs < nb; {
			re := rs + 1
			bi := p.chunkBlockOf(seeds[cols[rs]])
			for re < nb && p.chunkBlockOf(seeds[cols[re]]) == bi {
				re++
			}
			g := re - rs
			if bi == len(p.Blocks) { // hub run
				for i := 0; i < n2; i++ {
					row := h[i*nb+rs : i*nb+re]
					for k := range row {
						row[k] = 0
					}
				}
				rs = re
				continue
			}
			lo, hi := p.BlockOffsets[bi], p.BlockOffsets[bi+1]
			// Compact width-g RHS for the run: only the block rows are
			// read by the restricted kernels, so only they are cleared.
			gb := bw.s1[:n1*g]
			for i := lo * g; i < hi*g; i++ {
				gb[i] = 0
			}
			for k := rs; k < re; k++ {
				gb[p.Perm[seeds[cols[k]]]*g+(k-rs)] = 1
			}
			gt := bw.s2[:n1*g]
			p.kern.l1inv.SpMMRange(gt, gb, g, lo, hi, kernel.Exact)
			p.kern.u1inv.SpMMRange(gb, gt, g, lo, hi, kernel.Exact)
			gh := bw.ha[:n2*g]
			p.kern.h21.SpMMColRange(gh, gb, g, lo, hi, kernel.Exact)
			for i := 0; i < n2; i++ {
				copy(h[i*nb+rs:i*nb+re], gh[i*g:(i+1)*g])
			}
			rs = re
		}
		sw.Stop()
		if err := ctx.Err(); err != nil {
			return err
		}
		// Schur stage at full chunk width: y = P(b₂ − H₂₁t), r₂ = U₂⁻¹L₂⁻¹y.
		sw = tr.Start(obsv.SpanSchurSolve)
		for i := range h {
			h[i] = b2[i] - h[i]
		}
		y, spare := h, bw.ha[:n2*nb]
		if p.SPerm != nil {
			for i, src := range p.SPerm {
				copy(spare[i*nb:(i+1)*nb], y[src*nb:(src+1)*nb])
			}
			y, spare = spare, y
		}
		p.kern.l2inv.SpMM(spare, y, nb, kernel.Exact)
		y, spare = spare, y
		p.kern.u2inv.SpMM(spare, y, nb, kernel.Exact)
		r2 = spare
		sw.Stop()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	swb := tr.Start(obsv.SpanBackSolve)

	// Back-substitution at full chunk width:
	// r₁ = U₁⁻¹ L₁⁻¹ (b₁ − H₁₂ r₂).
	z := bw.s1[:n1*nb]
	if n2 > 0 {
		p.kern.h12.SpMM(z, r2, nb, kernel.Exact)
	} else {
		for i := range z {
			z[i] = 0
		}
	}
	for i := range z {
		z[i] = b1[i] - z[i]
	}
	s2 := bw.s2[:n1*nb]
	p.kern.l1inv.SpMM(s2, z, nb, kernel.Exact)
	p.kern.u1inv.SpMM(z, s2, nb, kernel.Exact)
	r1 := z

	// Scatter each column back to graph node order and apply the restart
	// scaling, node-major so the permutation array is read once.
	c := p.C
	for node := 0; node < p.N; node++ {
		pos := p.Perm[node]
		if pos < n1 {
			row := r1[pos*nb : (pos+1)*nb]
			for k, ii := range cols {
				dst[ii][node] = row[k] * c
			}
		} else {
			row := r2[(pos-n1)*nb : (pos-n1+1)*nb]
			for k, ii := range cols {
				dst[ii][node] = row[k] * c
			}
		}
	}
	swb.Stop()
	return nil
}

// chunkBlockOf maps a seed to its grouping key: its diagonal-block index,
// or len(Blocks) for hubs.
func (p *Precomputed) chunkBlockOf(seed int) int {
	pos := p.Perm[seed]
	if pos >= p.N1 {
		return len(p.Blocks)
	}
	return p.blockOfPos(pos)
}
