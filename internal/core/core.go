// Package core implements BEAR, the Block Elimination Approach for Random
// walk with restart (Shin, Sael, Jung, Kang; SIGMOD 2015).
//
// The preprocessing phase (Algorithm 1 of the paper) reorders the system
// matrix H = I − (1−c)Ãᵀ with the configured ordering engine (SlashBurn by
// default; see internal/ordering) so that the spoke-spoke block H₁₁
// is block diagonal, LU-factorizes H₁₁ and inverts the factors, forms the
// Schur complement S of H₁₁, reorders hubs by degree in S, factorizes S,
// and optionally drops near-zero entries (BEAR-Approx). The query phase
// (Algorithm 2) computes the RWR vector for a seed by block elimination
// using only sparse matrix-vector products against the precomputed
// matrices.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"bear/internal/dense"
	"bear/internal/graph"
	"bear/internal/obsv"
	"bear/internal/ordering"
	"bear/internal/sparse"
	"bear/internal/sparse/kernel"
)

// Default parameter values, matching the paper's experimental settings.
const (
	DefaultC                = 0.05  // restart probability (Section 4.1)
	DefaultHubRatio         = 0.001 // SlashBurn k = 0.001·n (Section 4.1)
	DefaultDenseSchurCutoff = 4096  // largest n₂ factored densely
)

// Options configures BEAR preprocessing.
type Options struct {
	// C is the restart probability in (0, 1). Zero selects DefaultC.
	C float64
	// DropTol is the drop tolerance ξ. Zero keeps every entry
	// (BEAR-Exact); positive values select BEAR-Approx.
	DropTol float64
	// HubRatio sets the ordering budget k = HubRatio·n when K is zero
	// (the SlashBurn wave size of the paper). Zero selects
	// DefaultHubRatio.
	HubRatio float64
	// K overrides the ordering budget directly when positive.
	K int
	// Ordering names the reordering engine for lines 2-3 of Algorithm 1
	// (internal/ordering): "slashburn" (the paper's, and the default when
	// empty), "mindeg" (greedy minimum-degree elimination), "nd" (nested
	// dissection), or any engine registered at runtime. Every engine
	// yields exact query results; they trade fill, memory, preprocess
	// time, and query speed. Unknown names fail preprocessing up front.
	Ordering string
	// Laplacian switches the transition matrix from the row-normalized
	// adjacency Ã to the normalized graph Laplacian D⁻¹ᐟ²AD⁻¹ᐟ²
	// (Section 3.4, "RWR with normalized graph Laplacian").
	Laplacian bool
	// DenseSchurCutoff is the largest hub count n₂ for which the Schur
	// complement is factored with dense partial-pivoted LU; larger Schur
	// complements use sparse no-pivot LU. Zero selects the default.
	DenseSchurCutoff int
	// NoHubOrder disables line 7 of Algorithm 1 (reordering hubs by their
	// degree in S before factoring it). Exactness is unaffected; the
	// factors of S just fill in more. Exposed for the ablation experiment
	// that quantifies that design choice.
	NoHubOrder bool
	// Workers fans the per-block factorization of H₁₁ and the Schur
	// complement products out over goroutines. The diagonal blocks are
	// independent (Lemma 1), so results are bit-identical to the
	// sequential path. Zero or one runs sequentially, matching the
	// paper's single-threaded measurements; negative selects GOMAXPROCS.
	Workers int
	// KeepH retains the permuted system matrix H = I − (1−c)Ãᵀ alongside
	// the factors. H is never subject to the drop tolerance, so it is the
	// exact operator the factors approximate — which is what Residual and
	// the refined query path (QueryRefinedCtx) measure against. Costs one
	// extra copy of |H| ≈ |E| nonzeros in memory and in the precompute
	// file.
	KeepH bool
	// RetainRebuildCache keeps the Schur-assembly intermediates
	// (U₁⁻¹L₁⁻¹H₁₂ and H₂₂, in the final hub order) alongside the factors,
	// which is what the incremental rebuild path needs to patch
	// S = H₂₂ − H₂₁·(U₁⁻¹L₁⁻¹H₁₂) without re-running the full assembly.
	// Dynamic forces it on for its own preprocessing passes; static
	// consumers leave it off and pay no extra memory. The cache is derived
	// state: it is never serialized (a loaded index falls back to one full
	// rebuild, which repopulates it) and never counted by Bytes(). It is
	// only retained for exact indexes (DropTol == 0) on the row-normalized
	// transition matrix — the two preconditions of incremental rebuilds.
	RetainRebuildCache bool
	// Kernel selects the query-time kernel layout (internal/sparse/kernel):
	// "" or "auto" picks per matrix (the dense-run hybrid for
	// block-diagonal spoke factors, baseline CSR otherwise); "csr",
	// "hybrid", "sell" force one layout everywhere; "parallel" adds
	// row-partitioned multi-worker SpMV/SpMM on large matrices. Every
	// setting is bit-identical on the query path (Exact-mode contract);
	// only speed differs.
	Kernel string
}

func (o Options) withDefaults() Options {
	if o.C == 0 {
		o.C = DefaultC
	}
	if o.HubRatio == 0 {
		o.HubRatio = DefaultHubRatio
	}
	if o.DenseSchurCutoff == 0 {
		o.DenseSchurCutoff = DefaultDenseSchurCutoff
	}
	return o
}

// Stats records structural and timing measurements from preprocessing; the
// fields mirror the columns of Table 4 of the paper.
type Stats struct {
	N, M        int
	N1, N2      int
	NumBlocks   int
	SumSqBlocks int64 // Σ n₁ᵢ²
	// Ordering is the name of the engine that produced the hub/block
	// structure ("slashburn" unless Options.Ordering chose another).
	Ordering string
	// OrderingIters is the engine's work counter: hub-removal waves for
	// slashburn, mass-eliminated nodes for mindeg, recursion depth for nd.
	OrderingIters int

	NNZH      int // |H|
	NNZH12H21 int // |H₁₂| + |H₂₁|
	NNZL1U1   int // |L₁⁻¹| + |U₁⁻¹|
	NNZL2U2   int // |L₂⁻¹| + |U₂⁻¹|

	TimeOrdering time.Duration
	TimeLU1      time.Duration
	TimeSchur    time.Duration
	TimeLU2      time.Duration
	TimeTotal    time.Duration
}

// Precomputed holds the output of BEAR preprocessing: the six matrices of
// Algorithm 1 plus the permutations needed to map between graph node ids
// and BEAR's internal ordering. It is safe for concurrent queries.
type Precomputed struct {
	N, N1, N2 int
	C         float64
	Blocks    []int
	// BlockOffsets is the prefix-sum of Blocks: diagonal block i of H₁₁
	// covers internal positions [BlockOffsets[i], BlockOffsets[i+1]). It is
	// derived from Blocks (never serialized) and shared by BlockOf and the
	// single-seed fast path.
	BlockOffsets []int

	Perm    []int // Perm[node id] = internal position
	InvPerm []int // InvPerm[internal position] = node id

	L1Inv *sparse.CSR // n₁×n₁, block diagonal
	U1Inv *sparse.CSR // n₁×n₁, block diagonal
	H12   *sparse.CSR // n₁×n₂
	H21   *sparse.CSR // n₂×n₁
	L2Inv *sparse.CSR // n₂×n₂
	U2Inv *sparse.CSR // n₂×n₂
	SPerm []int       // pivot permutation of S's LU: (Pb)[i] = b[SPerm[i]]

	// H is the exact permuted system matrix (internal order), retained
	// only when preprocessing ran with Options.KeepH; nil otherwise. It
	// backs Residual and the iterative-refinement query path.
	H *sparse.CSR

	// Tree is the recursion tree of a nested-dissection ordering (the
	// partition structure block-level sharding consumes), nil for other
	// engines. Derived at preprocess time, never serialized.
	Tree *ordering.PartitionTree

	OutDegree []float64 // weighted out-degree per node, for effective importance

	Stats Stats

	// wsPool recycles query workspaces so steady-state queries allocate
	// nothing; see AcquireWorkspace. Precomputed must not be copied by
	// value once queries have run.
	wsPool sync.Pool

	// batchPool recycles multi-RHS batch workspaces; see
	// AcquireBatchWorkspace.
	batchPool sync.Pool

	// incr caches the Schur-assembly intermediates the incremental rebuild
	// path patches instead of recomputing: t2 = U₁⁻¹L₁⁻¹H₁₂ (n₁×n₂, rows
	// partitioned by the diagonal blocks of H₁₁) and h22 (n₂×n₂), both in
	// the final hub order. Retained only when preprocessing ran with
	// Options.RetainRebuildCache on an exact, row-normalized index; nil
	// otherwise (and after Load — the cache is derived, never serialized).
	incr *rebuildCache

	// kern holds the kernel-layer views of the factor matrices through
	// which every query-time product runs; layouts are chosen by
	// initKernels at Preprocess/Load time. Derived, never serialized.
	kern struct {
		l1inv, u1inv kernel.Matrix
		h12, h21     kernel.Matrix
		l2inv, u2inv kernel.Matrix
		h            kernel.Matrix // nil unless H was retained
	}

	// topkNu caches the per-column certified factor-response bounds the
	// block-pruned top-k solve uses (see topKColBounds). Built lazily on
	// the first top-k query; derived, never serialized.
	topkOnce sync.Once
	topkNu   []float64
}

// initDerived fills the fields computed from the serialized ones; it must
// run after Blocks is final (both Preprocess and Load call it).
func (p *Precomputed) initDerived() {
	p.BlockOffsets = make([]int, len(p.Blocks)+1)
	for i, sz := range p.Blocks {
		p.BlockOffsets[i+1] = p.BlockOffsets[i] + sz
	}
}

// initKernels builds the kernel-layer views of the factor matrices; it
// must run after the factor fields are final (both Preprocess and Load
// call it). An empty spec selects the per-matrix auto heuristic.
func (p *Precomputed) initKernels(spec string) error {
	cfg, err := kernel.ParseConfig(spec)
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	p.kern.l1inv = kernel.New(p.L1Inv, cfg)
	p.kern.u1inv = kernel.New(p.U1Inv, cfg)
	p.kern.h12 = kernel.New(p.H12, cfg)
	p.kern.h21 = kernel.New(p.H21, cfg)
	p.kern.l2inv = kernel.New(p.L2Inv, cfg)
	p.kern.u2inv = kernel.New(p.U2Inv, cfg)
	p.kern.h = nil
	if p.H != nil {
		p.kern.h = kernel.New(p.H, cfg)
	}
	return nil
}

// KernelLayouts reports the layout chosen for each factor matrix, keyed
// by the factor's Algorithm 1 name — observability for the auto
// heuristic and the -kernel override.
func (p *Precomputed) KernelLayouts() map[string]string {
	out := map[string]string{
		"l1inv": p.kern.l1inv.Layout(),
		"u1inv": p.kern.u1inv.Layout(),
		"h12":   p.kern.h12.Layout(),
		"h21":   p.kern.h21.Layout(),
		"l2inv": p.kern.l2inv.Layout(),
		"u2inv": p.kern.u2inv.Layout(),
	}
	if p.kern.h != nil {
		out["h"] = p.kern.h.Layout()
	}
	return out
}

// PreprocessCtx is Preprocess with cooperative cancellation and per-stage
// observability. The context is checked between the stages of Algorithm 1 —
// after the ordering, before each diagonal block of the H₁₁ factorization,
// between the Schur-complement products, and before the Schur
// factorization — so a cancelled rebuild aborts within one stage (or one
// block) instead of running minutes to completion; the context's error is
// returned wrapped and matches errors.Is(err, ctx.Err()). Per-stage timings
// (the split Figure 8 of the paper reports) are recorded into the
// obsv.Trace carried by ctx, if any.
func PreprocessCtx(ctx context.Context, g *graph.Graph, opts Options) (*Precomputed, error) {
	p, err := preprocessCtx(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	if tr := obsv.FromContext(ctx); tr != nil {
		tr.Add(obsv.SpanOrdering, p.Stats.TimeOrdering)
		tr.Add(obsv.SpanBlockLU, p.Stats.TimeLU1)
		tr.Add(obsv.SpanSchurAssembly, p.Stats.TimeSchur)
		tr.Add(obsv.SpanSchurFactor, p.Stats.TimeLU2)
	}
	return p, nil
}

// Preprocess runs Algorithm 1 of the paper on g without a cancellation
// point; it is PreprocessCtx with a background context.
func Preprocess(g *graph.Graph, opts Options) (*Precomputed, error) {
	return preprocessCtx(context.Background(), g, opts)
}

// preprocessCtx runs Algorithm 1, polling ctx between stages.
func preprocessCtx(ctx context.Context, g *graph.Graph, opts Options) (*Precomputed, error) {
	opts = opts.withDefaults()
	if opts.C <= 0 || opts.C >= 1 {
		return nil, fmt.Errorf("core: restart probability %g outside (0,1)", opts.C)
	}
	if opts.DropTol < 0 {
		return nil, fmt.Errorf("core: negative drop tolerance %g", opts.DropTol)
	}
	// Reject a bad kernel spec or unknown ordering before minutes of
	// preprocessing, not after.
	if _, err := kernel.ParseConfig(opts.Kernel); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	ord, err := ordering.Get(opts.Ordering)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	n := g.N()
	if n == 0 {
		return nil, errors.New("core: empty graph")
	}
	start := time.Now()

	// Line 1: H = I − (1−c)Ãᵀ (or the Laplacian variant).
	h := g.HMatrixCSC(opts.C, opts.Laplacian)

	// Lines 2-3: hub-and-spoke reordering by the configured engine
	// (SlashBurn unless Options.Ordering chose another).
	k := opts.K
	if k <= 0 {
		k = int(opts.HubRatio * float64(n))
		if k < 1 {
			k = 1
		}
	}
	tsb := time.Now()
	sb, err := ord.Run(g, ordering.Params{K: k})
	if err != nil {
		return nil, fmt.Errorf("core: ordering %s: %w", ord.Name(), err)
	}
	if err := ordering.CheckStructure(n, sb); err != nil {
		return nil, fmt.Errorf("core: ordering %s produced an invalid result: %w", ord.Name(), err)
	}
	timeOrdering := time.Since(tsb)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: preprocessing aborted after ordering: %w", err)
	}

	p := &Precomputed{
		N:      n,
		N1:     n - sb.NumHubs,
		N2:     sb.NumHubs,
		C:      opts.C,
		Blocks: sb.Blocks,
	}
	perm := append([]int(nil), sb.Perm...)
	invPerm := append([]int(nil), sb.InvPerm...)

	// Line 4: permute and partition H.
	hp := h.Permute(perm, perm)
	n1 := p.N1
	h11 := hp.Submatrix(0, n1, 0, n1)
	h12 := hp.Submatrix(0, n1, n1, n).ToCSR()
	h21 := hp.Submatrix(n1, n, 0, n1).ToCSR()
	h22 := hp.Submatrix(n1, n, n1, n).ToCSR()

	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}

	// Line 5: LU-decompose H₁₁ and invert the factors. Gilbert–Peierls on a
	// block-diagonal matrix factors each block independently (Lemma 1), and
	// the reach-limited triangular inversion preserves the block structure —
	// which also makes the blocks embarrassingly parallel.
	tlu1 := time.Now()
	var l1inv, u1inv *sparse.CSR
	if n1 == 0 {
		// Everything is a hub (possible for degenerate graphs under the
		// non-default engines): H₁₁ is empty and the Schur complement is
		// all of H.
		l1inv = sparse.NewCSR(0, 0, nil)
		u1inv = sparse.NewCSR(0, 0, nil)
	} else if len(sb.Blocks) > 1 {
		// The per-block path is bit-identical to whole-matrix LU (Lemma 1)
		// even at workers == 1, and it gives cancellation a per-block poll
		// point, so any multi-block H₁₁ takes it.
		li, ui, err := sparse.BlockDiagLUInverseCancel(h11, sb.Blocks, workers, ctx.Err)
		if err != nil {
			if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
				return nil, fmt.Errorf("core: preprocessing aborted during block LU: %w", err)
			}
			return nil, fmt.Errorf("core: factoring H11 blocks: %w", err)
		}
		l1inv, u1inv = li, ui
	} else {
		f1, err := sparse.LU(h11)
		if err != nil {
			return nil, fmt.Errorf("core: LU of H11: %w", err)
		}
		l1invCSC, err := sparse.InverseLower(f1.L, true)
		if err != nil {
			return nil, fmt.Errorf("core: inverting L1: %w", err)
		}
		u1invCSC, err := sparse.InverseUpper(f1.U)
		if err != nil {
			return nil, fmt.Errorf("core: inverting U1: %w", err)
		}
		l1inv = l1invCSC.ToCSR()
		u1inv = u1invCSC.ToCSR()
	}
	timeLU1 := time.Since(tlu1)

	// Line 6: Schur complement S = H₂₂ − H₂₁ U₁⁻¹ L₁⁻¹ H₁₂.
	tschur := time.Now()
	var s, t2 *sparse.CSR
	if p.N2 > 0 {
		t1 := sparse.ParallelMul(l1inv, h12, workers)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: preprocessing aborted during Schur assembly: %w", err)
		}
		t2 = sparse.ParallelMul(u1inv, t1, workers)
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: preprocessing aborted during Schur assembly: %w", err)
		}
		t3 := sparse.ParallelMul(h21, t2, workers)
		s = sparse.Sub(h22, t3).Prune()
	} else {
		s = sparse.NewCSR(0, 0, nil)
	}
	timeSchur := time.Since(tschur)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: preprocessing aborted after Schur assembly: %w", err)
	}

	// Line 7: reorder hubs in ascending order of degree within S.
	var hubPerm []int
	if p.N2 > 1 && !opts.NoHubOrder {
		hubPerm = hubDegreeOrder(s)
		s = s.Permute(hubPerm, hubPerm)
		h12 = h12.Permute(nil, hubPerm)
		h21 = h21.Permute(hubPerm, nil)
		// Fold the hub reorder into the global permutation.
		oldInvHubs := append([]int(nil), invPerm[n1:]...)
		for oldPos, newPos := range hubPerm {
			invPerm[n1+newPos] = oldInvHubs[oldPos]
		}
		for pos, node := range invPerm {
			perm[node] = pos
		}
	}

	// Line 8: LU-decompose S and invert the factors.
	tlu2 := time.Now()
	l2inv, u2inv, sperm, err := factorSchur(s, opts.DenseSchurCutoff)
	if err != nil {
		return nil, fmt.Errorf("core: factoring Schur complement: %w", err)
	}
	timeLU2 := time.Since(tlu2)

	// Line 9: BEAR-Approx drops near-zero entries.
	if opts.DropTol > 0 {
		l1inv = l1inv.Drop(opts.DropTol)
		u1inv = u1inv.Drop(opts.DropTol)
		l2inv = l2inv.Drop(opts.DropTol)
		u2inv = u2inv.Drop(opts.DropTol)
		h12 = h12.Drop(opts.DropTol)
		h21 = h21.Drop(opts.DropTol)
	}

	// Retain the Schur-assembly intermediates for incremental rebuilds.
	// t2 and h22 were formed before the line-7 hub reorder, so their hub
	// axes are mapped into the final order here. A column permutation of
	// the right operand of a sparse product reorders output entries, never
	// the per-entry accumulation order, so the cached t2 is bit-identical
	// to recomputing it from the reordered H₁₂ — the property the
	// incremental-vs-pinned-full equivalence test pins down.
	if opts.RetainRebuildCache && opts.DropTol == 0 && !opts.Laplacian {
		rc := &rebuildCache{t2: t2, h22: h22}
		if p.N2 == 0 {
			rc.t2 = sparse.NewCSR(n1, 0, nil)
		} else if hubPerm != nil {
			rc.t2 = t2.Permute(nil, hubPerm)
			rc.h22 = h22.Permute(hubPerm, hubPerm)
		}
		p.incr = rc
	}

	// Retain the exact permuted operator if asked. Built from the original
	// H with the final permutation — line 7 above folds the hub reorder
	// into perm after hp was formed, so hp's ordering is already stale.
	// Never subject to the drop tolerance (line 9): H is the ground truth
	// Residual and refinement measure the dropped factors against.
	if opts.KeepH {
		p.H = h.Permute(perm, perm).ToCSR()
	}

	p.Perm = perm
	p.InvPerm = invPerm
	p.Tree = sb.Tree
	p.L1Inv = l1inv
	p.U1Inv = u1inv
	p.H12 = h12
	p.H21 = h21
	p.L2Inv = l2inv
	p.U2Inv = u2inv
	p.SPerm = sperm
	p.OutDegree = weightedOutDegrees(g)
	p.initDerived()
	if err := p.initKernels(opts.Kernel); err != nil {
		return nil, err
	}
	p.Stats = Stats{
		N: n, M: g.M(), N1: p.N1, N2: p.N2,
		NumBlocks:     len(sb.Blocks),
		SumSqBlocks:   sb.SumSqBlocks(),
		Ordering:      ord.Name(),
		OrderingIters: sb.Iterations,
		NNZH:          h.NNZ(),
		NNZH12H21:     h12.NNZ() + h21.NNZ(),
		NNZL1U1:       l1inv.NNZ() + u1inv.NNZ(),
		NNZL2U2:       l2inv.NNZ() + u2inv.NNZ(),
		TimeOrdering:  timeOrdering,
		TimeLU1:       timeLU1,
		TimeSchur:     timeSchur,
		TimeLU2:       timeLU2,
		TimeTotal:     time.Since(start),
	}
	return p, nil
}

// hubDegreeOrder returns a permutation (old position -> new position)
// sorting the hubs by ascending degree in S, where the degree of hub i is
// the number of off-diagonal nonzeros in row i and column i of S.
func hubDegreeOrder(s *sparse.CSR) []int {
	n2 := s.R
	deg := make([]int, n2)
	for i := 0; i < n2; i++ {
		cols, _ := s.Row(i)
		for _, j := range cols {
			if j != i {
				deg[i]++
				deg[j]++
			}
		}
	}
	order := make([]int, n2)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if deg[order[a]] != deg[order[b]] {
			return deg[order[a]] < deg[order[b]]
		}
		return order[a] < order[b]
	})
	permOldToNew := make([]int, n2)
	for newPos, oldPos := range order {
		permOldToNew[oldPos] = newPos
	}
	return permOldToNew
}

// factorSchur LU-decomposes S and returns L₂⁻¹, U₂⁻¹ and the pivot
// permutation. Small/medium Schur complements use dense LU with partial
// pivoting for robustness; very large ones fall back to sparse no-pivot LU
// (safe because S inherits column diagonal dominance from H).
func factorSchur(s *sparse.CSR, denseCutoff int) (l2inv, u2inv *sparse.CSR, sperm []int, err error) {
	n2 := s.R
	if n2 == 0 {
		empty := sparse.NewCSR(0, 0, nil)
		return empty, empty.Clone(), nil, nil
	}
	if n2 <= denseCutoff {
		sd := dense.NewFrom(n2, n2, s.Dense())
		f, err := dense.LU(sd)
		if err != nil {
			return nil, nil, nil, err
		}
		li := dense.InverseLowerUnit(f.L())
		ui, err := dense.InverseUpper(f.U())
		if err != nil {
			return nil, nil, nil, err
		}
		return sparse.FromDense(n2, n2, li.Data), sparse.FromDense(n2, n2, ui.Data), f.PermVector(), nil
	}
	f, err := sparse.LU(s.ToCSC())
	if err != nil {
		return nil, nil, nil, err
	}
	liCSC, err := sparse.InverseLower(f.L, true)
	if err != nil {
		return nil, nil, nil, err
	}
	uiCSC, err := sparse.InverseUpper(f.U)
	if err != nil {
		return nil, nil, nil, err
	}
	return liCSC.ToCSR(), uiCSC.ToCSR(), nil, nil
}

func weightedOutDegrees(g *graph.Graph) []float64 {
	d := make([]float64, g.N())
	for u := 0; u < g.N(); u++ {
		_, w := g.Out(u)
		for _, x := range w {
			d[u] += x
		}
	}
	return d
}

// NNZ returns the total number of stored entries across the six
// precomputed matrices, the quantity Figure 2 of the paper compares.
func (p *Precomputed) NNZ() int64 {
	return int64(p.L1Inv.NNZ()) + int64(p.U1Inv.NNZ()) +
		int64(p.H12.NNZ()) + int64(p.H21.NNZ()) +
		int64(p.L2Inv.NNZ()) + int64(p.U2Inv.NNZ())
}

// Bytes estimates the memory used by the precomputed matrices and
// permutations, the quantity Figure 5 of the paper compares.
func (p *Precomputed) Bytes() int64 {
	b := p.L1Inv.Bytes() + p.U1Inv.Bytes() + p.H12.Bytes() + p.H21.Bytes() +
		p.L2Inv.Bytes() + p.U2Inv.Bytes()
	if p.H != nil {
		b += p.H.Bytes()
	}
	b += int64(len(p.Perm)+len(p.InvPerm)+len(p.SPerm)) * 8
	b += int64(len(p.OutDegree)) * 8
	return b
}
