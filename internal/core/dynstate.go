package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"bear/internal/graph"
	"bear/internal/ordering"
)

// dynMagic identifies a serialized Dynamic: preprocessing options, base
// graph, precomputed matrices, and — if updates are pending — the current
// graph and dirty set. The file carries the same length/CRC32 footer as
// the v2 precomputed format, so a truncated or bit-flipped snapshot is
// rejected instead of restoring silent garbage.
var dynMagic = [8]byte{'B', 'E', 'A', 'R', 'D', 'Y', '0', '1'}

// dynMagic2 identifies version 2 of the dynamic-state format: version 1
// plus the KeepH option flag and the retained exact H (when present) in
// the embedded precomputed payload. States that carry neither are still
// written as version 1, byte-identical to before.
var dynMagic2 = [8]byte{'B', 'E', 'A', 'R', 'D', 'Y', '0', '2'}

// dynMagic3 identifies version 3 of the dynamic-state format: version 2
// with the KeepH and with-H flags always explicit, followed by the name
// of the ordering engine that produced the index, so a restored Dynamic
// rebuilds with the same engine. States ordered by the default SlashBurn
// are still written as version 1 or 2, byte-identical to before; versions
// 1 and 2 restore as slashburn.
var dynMagic3 = [8]byte{'B', 'E', 'A', 'R', 'D', 'Y', '0', '3'}

// SaveState serializes the full dynamic-serving state: a restored Dynamic
// answers every query bit-identically to this one, including the exact
// Woodbury corrections for pending updates. The state captured is the last
// committed one; an in-flight background Rebuild is not waited for.
func (d *Dynamic) SaveState(w io.Writer) error {
	// The write lock (rather than RLock) lets the pending-update overlay be
	// materialized into the current graph if no materialization is cached;
	// the lock is held only for that O(N+M) pass, not for the I/O below
	// (every captured component is immutable once read).
	d.mu.Lock()
	base, p, opts := d.base, d.p, d.opts
	dirty := append([]int(nil), d.dirty...)
	cur := d.materializeLocked()
	d.mu.Unlock()

	withH := opts.KeepH || p.H != nil
	// Version 3 exists only to carry a non-default ordering name; indexes
	// ordered by SlashBurn keep writing the older formats byte-identically.
	v3 := ordering.Normalize(opts.Ordering) != ordering.Default
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	e := &encoder{w: cw}
	switch {
	case v3:
		e.bytes(dynMagic3[:])
	case withH:
		e.bytes(dynMagic2[:])
	default:
		e.bytes(dynMagic[:])
	}
	e.f64(opts.C)
	e.f64(opts.DropTol)
	e.f64(opts.HubRatio)
	e.i64(int64(opts.K))
	e.i64(int64(opts.DenseSchurCutoff))
	e.i64(int64(opts.Workers))
	e.bool(opts.Laplacian)
	e.bool(opts.NoHubOrder)
	if v3 {
		e.bool(opts.KeepH)
		e.bool(withH)
		e.str(ordering.Normalize(opts.Ordering))
	} else if withH {
		e.bool(opts.KeepH)
	}
	encodeGraph(e, base)
	p.encodePayload(e, withH)
	e.ints(dirty)
	if len(dirty) == 0 {
		e.bool(false) // cur == base; don't store the graph twice
	} else {
		e.bool(true)
		encodeGraph(e, cur)
	}
	if e.err != nil {
		return fmt.Errorf("core: saving dynamic state: %w", e.err)
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(cw.n))
	binary.LittleEndian.PutUint32(foot[8:], cw.sum)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("core: saving dynamic state: %w", err)
	}
	return bw.Flush()
}

// LoadDynamic reads state previously written by SaveState, verifying the
// integrity footer. On any error — bad magic, truncation, CRC mismatch,
// or inconsistent contents — it returns nil and the error; it never
// returns a partially populated Dynamic.
func LoadDynamic(r io.Reader) (*Dynamic, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	d := &decoder{r: cr}
	var got [8]byte
	d.bytes(got[:])
	if d.err != nil {
		return nil, fmt.Errorf("core: loading dynamic state: %w", d.err)
	}
	if got != dynMagic && got != dynMagic2 && got != dynMagic3 {
		return nil, fmt.Errorf("core: bad magic %q; not a BEAR dynamic-state file", got[:])
	}
	v3 := got == dynMagic3
	withH := got == dynMagic2
	var opts Options
	opts.C = d.f64()
	opts.DropTol = d.f64()
	opts.HubRatio = d.f64()
	opts.K = int(d.i64())
	opts.DenseSchurCutoff = int(d.i64())
	opts.Workers = int(d.i64())
	opts.Laplacian = d.bool()
	opts.NoHubOrder = d.bool()
	switch {
	case v3:
		opts.KeepH = d.bool()
		withH = d.bool()
		// Versions 1 and 2 predate pluggable orderings: their indexes were
		// produced by SlashBurn and opts.Ordering stays "", which selects it.
		opts.Ordering = d.str()
		if d.err == nil {
			if _, err := ordering.Get(opts.Ordering); err != nil {
				// An unknown engine means a rebuild could not reproduce the
				// partition the stored factors depend on — refuse the file
				// explicitly rather than silently reordering differently.
				return nil, fmt.Errorf("core: loading dynamic state: %w", err)
			}
		}
	case withH:
		opts.KeepH = d.bool()
	}
	base := decodeGraph(d)
	if d.err != nil {
		return nil, fmt.Errorf("core: loading dynamic state: %w", d.err)
	}
	p, err := decodePayload(d, withH)
	if err != nil {
		return nil, err
	}
	dirty := d.ints()
	cur := base
	if d.bool() {
		cur = decodeGraph(d)
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: loading dynamic state: %w", d.err)
	}
	if err := cr.checkFooter(); err != nil {
		return nil, err
	}
	return RestoreDynamic(base, cur, p, dirty, opts)
}

// RestoreDynamic reassembles a Dynamic from its components: the base graph
// the precomputed matrices reflect, the current graph with all accepted
// updates applied, and the sorted dirty-node set. It validates the pieces
// against each other so a Dynamic can only be built from a consistent
// state.
func RestoreDynamic(base, cur *graph.Graph, p *Precomputed, dirty []int, opts Options) (*Dynamic, error) {
	if base == nil || cur == nil || p == nil {
		return nil, fmt.Errorf("core: restore from nil component")
	}
	if _, err := ordering.Get(opts.Ordering); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	if base.N() != p.N || cur.N() != p.N {
		return nil, fmt.Errorf("core: restore size mismatch: base n=%d cur n=%d precomputed n=%d",
			base.N(), cur.N(), p.N)
	}
	for i, u := range dirty {
		if u < 0 || u >= p.N {
			return nil, fmt.Errorf("core: restore dirty node %d out of range [0,%d)", u, p.N)
		}
		if i > 0 && dirty[i-1] >= u {
			return nil, fmt.Errorf("core: restore dirty set not sorted and unique at index %d", i)
		}
	}
	if len(dirty) == 0 && cur != base && cur.M() != base.M() {
		return nil, fmt.Errorf("core: restore has no dirty nodes but base and current graphs differ")
	}
	// Rebuild the row overlay from the dirty set: exactly the dirty rows
	// may differ from base, so the overlay holds their cur rows (aliasing
	// cur's immutable storage; rows are never mutated in place) and cur
	// itself seeds the materialization cache.
	var overlay map[int]nodeRow
	if len(dirty) > 0 {
		overlay = make(map[int]nodeRow, len(dirty))
		for _, u := range dirty {
			dst, w := cur.Out(u)
			overlay[u] = nodeRow{dst: dst, w: w}
		}
	}
	// Future rebuilds of the restored index should retain the
	// Schur-assembly cache like a freshly constructed Dynamic would. The
	// supplied Precomputed itself usually lacks the cache (it is derived
	// state and never serialized), so the first auto rebuild falls back to
	// full — recorded as no_cache — and repopulates it.
	opts.RetainRebuildCache = true
	return &Dynamic{base: base, curCache: cur, overlay: overlay, p: p, opts: opts, dirty: dirty,
		lastFullNNZ: p.NNZ()}, nil
}

// encodeGraph writes a graph exactly: node count, then the destination and
// weight slices of each node's out-edges. Weights round-trip bit-for-bit.
func encodeGraph(e *encoder, g *graph.Graph) {
	n := g.N()
	e.i64(int64(n))
	for u := 0; u < n; u++ {
		dst, w := g.Out(u)
		e.ints(dst)
		e.floats(w)
	}
}

// decodeGraph is the inverse of encodeGraph. Every edge is validated
// before it reaches the builder (which panics on invalid input), so a
// corrupt stream fails with an error, never a panic.
func decodeGraph(d *decoder) *graph.Graph {
	n := int(d.i64())
	if d.err != nil {
		return nil
	}
	if n < 0 || n > maxSliceLen {
		d.err = fmt.Errorf("corrupt graph node count %d", n)
		return nil
	}
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		dst := d.ints()
		w := d.floats()
		if d.err != nil {
			return nil
		}
		if len(dst) != len(w) {
			d.err = fmt.Errorf("corrupt graph row %d: %d destinations, %d weights", u, len(dst), len(w))
			return nil
		}
		for k := range dst {
			if dst[k] < 0 || dst[k] >= n {
				d.err = fmt.Errorf("corrupt graph edge %d->%d out of range n=%d", u, dst[k], n)
				return nil
			}
			if w[k] < 0 || math.IsNaN(w[k]) || math.IsInf(w[k], 0) {
				d.err = fmt.Errorf("corrupt graph edge %d->%d weight %g", u, dst[k], w[k])
				return nil
			}
			b.AddEdge(u, dst[k], w[k])
		}
	}
	return b.Build()
}
