package core

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"bear/internal/graph"
	"bear/internal/graph/gen"
	"bear/internal/sparse"
)

// directSolve computes the exact RWR vector by sparse LU of H, the oracle
// BEAR-Exact must match (Theorem 1).
func directSolve(t *testing.T, g *graph.Graph, c float64, q []float64) []float64 {
	t.Helper()
	f, err := sparse.LU(g.HMatrixCSC(c, false))
	if err != nil {
		t.Fatalf("direct LU: %v", err)
	}
	r := make([]float64, len(q))
	for i, v := range q {
		r[i] = c * v
	}
	if err := f.Solve(r); err != nil {
		t.Fatalf("direct solve: %v", err)
	}
	return r
}

func maxAbsDiff(a, b []float64) float64 {
	var mx float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func testGraphs(seed int64) map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"er-small":   gen.ErdosRenyi(60, 240, seed),
		"er-medium":  gen.ErdosRenyi(400, 2400, seed+1),
		"ba":         gen.BarabasiAlbert(300, 3, seed+2),
		"rmat":       gen.RMAT(gen.NewRMATPul(256, 1500, 0.7, seed+3)),
		"caveman":    gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 12, Size: 20, PIntra: 0.3, Hubs: 6, HubDeg: 15, Seed: seed + 4}),
		"star":       gen.StarMail(gen.StarMailConfig{Core: 12, Periphery: 250, LeafDeg: 2, PCore: 0.4, Seed: seed + 5}),
		"singleton":  gen.ErdosRenyi(1, 0, seed),
		"disconnect": disconnectedGraph(seed + 6),
	}
}

func disconnectedGraph(seed int64) *graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(120)
	// Three islands of 40 nodes each, no cross edges.
	for isle := 0; isle < 3; isle++ {
		base := isle * 40
		for e := 0; e < 120; e++ {
			u, v := base+rng.Intn(40), base+rng.Intn(40)
			if u != v {
				b.AddEdge(u, v, 1)
			}
		}
	}
	return b.Build()
}

func TestBearExactMatchesDirectSolve(t *testing.T) {
	for name, g := range testGraphs(1) {
		t.Run(name, func(t *testing.T) {
			p, err := Preprocess(g, Options{C: 0.05, K: 4})
			if err != nil {
				t.Fatalf("Preprocess: %v", err)
			}
			rng := rand.New(rand.NewSource(7))
			for trial := 0; trial < 5; trial++ {
				seed := rng.Intn(g.N())
				got, err := p.Query(seed)
				if err != nil {
					t.Fatalf("Query(%d): %v", seed, err)
				}
				q := make([]float64, g.N())
				q[seed] = 1
				want := directSolve(t, g, 0.05, q)
				if d := maxAbsDiff(got, want); d > 1e-9 {
					t.Fatalf("seed %d: max abs diff %g vs direct solve", seed, d)
				}
			}
		})
	}
}

func TestBearSaveLoadRoundtrip(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(128, 700, 0.7, 3))
	p, err := Preprocess(g, Options{K: 3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	r1, err := p.Query(5)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	r2, err := p2.Query(5)
	if err != nil {
		t.Fatalf("Query after load: %v", err)
	}
	if d := maxAbsDiff(r1, r2); d != 0 {
		t.Fatalf("roundtrip changed results by %g", d)
	}
}

func TestIsHubAndBlockOf(t *testing.T) {
	g := gen.StarMail(gen.StarMailConfig{Core: 6, Periphery: 200, LeafDeg: 1, PCore: 1, Seed: 60})
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	hubs := 0
	blockCounts := make(map[int]int)
	for u := 0; u < g.N(); u++ {
		if p.IsHub(u) {
			hubs++
			if p.BlockOf(u) != -1 {
				t.Fatalf("hub %d reports block %d", u, p.BlockOf(u))
			}
			continue
		}
		bi := p.BlockOf(u)
		if bi < 0 || bi >= len(p.Blocks) {
			t.Fatalf("spoke %d reports block %d of %d", u, bi, len(p.Blocks))
		}
		blockCounts[bi]++
	}
	if hubs != p.N2 {
		t.Fatalf("IsHub count %d, want n2=%d", hubs, p.N2)
	}
	for bi, sz := range p.Blocks {
		if blockCounts[bi] != sz {
			t.Fatalf("block %d holds %d nodes, declared %d", bi, blockCounts[bi], sz)
		}
	}
	// Nodes in the same block must be in the same component after removing
	// hubs; verify via the block-disconnection property: no edge between
	// different blocks.
	for u := 0; u < g.N(); u++ {
		if p.IsHub(u) {
			continue
		}
		dst, _ := g.Out(u)
		for _, v := range dst {
			if !p.IsHub(v) && p.BlockOf(u) != p.BlockOf(v) {
				t.Fatalf("edge %d-%d crosses blocks %d and %d", u, v, p.BlockOf(u), p.BlockOf(v))
			}
		}
	}
}
