package core

import (
	"bytes"
	"strings"
	"testing"

	"bear/internal/graph/gen"
)

func TestLoadRejectsBadMagic(t *testing.T) {
	if _, err := Load(strings.NewReader("NOTBEAR0 and then some")); err == nil {
		t.Fatal("expected bad-magic error")
	}
}

func TestLoadRejectsTruncated(t *testing.T) {
	g := gen.ErdosRenyi(50, 200, 30)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	full := buf.Bytes()
	for _, cut := range []int{4, len(full) / 3, len(full) - 1} {
		if _, err := Load(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("expected error for truncation at %d bytes", cut)
		}
	}
}

func TestLoadRejectsCorruptPermutation(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 31)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	// Corrupt the permutation in memory and roundtrip.
	p.Perm[0], p.Perm[1] = p.Perm[1], p.Perm[0] // now inconsistent with InvPerm
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := Load(&buf); err == nil {
		t.Fatal("expected corrupt-permutation error")
	}
}

func TestSaveLoadPreservesEverything(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 8, Size: 15, PIntra: 0.3, Hubs: 5, HubDeg: 12, Seed: 32})
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-4})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p2.N != p.N || p2.N1 != p.N1 || p2.N2 != p.N2 || p2.C != p.C {
		t.Fatal("header fields changed")
	}
	if p2.NNZ() != p.NNZ() || p2.Bytes() != p.Bytes() {
		t.Fatal("matrix sizes changed")
	}
	for seed := 0; seed < p.N; seed += 17 {
		a, _ := p.Query(seed)
		b, _ := p2.Query(seed)
		if d := maxAbsDiff(a, b); d != 0 {
			t.Fatalf("seed %d: roundtrip changed scores by %g", seed, d)
		}
		ea, _ := p.QueryEffectiveImportance(seed)
		eb, _ := p2.QueryEffectiveImportance(seed)
		if d := maxAbsDiff(ea, eb); d != 0 {
			t.Fatalf("seed %d: EI changed by %g", seed, d)
		}
	}
}
