package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bear/internal/graph"
	"bear/internal/graph/gen"
	"bear/internal/sparse"
)

func TestQueryDistMatchesPPR(t *testing.T) {
	// Personalized PageRank: multi-seed starting vector (Section 3.4).
	g := gen.RMAT(gen.NewRMATPul(200, 1100, 0.7, 10))
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	q := make([]float64, g.N())
	q[3], q[77], q[150] = 0.5, 0.25, 0.25
	got, err := p.QueryDist(q)
	if err != nil {
		t.Fatalf("QueryDist: %v", err)
	}
	want := directSolve(t, g, p.C, q)
	if d := maxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("PPR diff %g", d)
	}
}

func TestQueryDistLinearInQ(t *testing.T) {
	// RWR is linear in the starting vector: r(αq1 + βq2) = αr(q1) + βr(q2).
	g := gen.BarabasiAlbert(150, 3, 11)
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	q1 := make([]float64, g.N())
	q2 := make([]float64, g.N())
	q1[5], q2[100] = 1, 1
	r1, _ := p.QueryDist(q1)
	r2, _ := p.QueryDist(q2)
	comb := make([]float64, g.N())
	comb[5], comb[100] = 0.3, 0.7
	rc, err := p.QueryDist(comb)
	if err != nil {
		t.Fatalf("QueryDist: %v", err)
	}
	for i := range rc {
		want := 0.3*r1[i] + 0.7*r2[i]
		if math.Abs(rc[i]-want) > 1e-12 {
			t.Fatalf("linearity violated at %d: %g vs %g", i, rc[i], want)
		}
	}
}

func TestQueryDistRejectsBadInput(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 12)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if _, err := p.QueryDist(make([]float64, 19)); err == nil {
		t.Fatal("expected length error")
	}
	bad := make([]float64, 20)
	bad[3] = -1
	if _, err := p.QueryDist(bad); err == nil {
		t.Fatal("expected negativity error")
	}
	bad[3] = math.NaN()
	if _, err := p.QueryDist(bad); err == nil {
		t.Fatal("expected NaN error")
	}
	if _, err := p.Query(-1); err == nil {
		t.Fatal("expected seed range error")
	}
	if _, err := p.Query(20); err == nil {
		t.Fatal("expected seed range error")
	}
}

func TestEffectiveImportance(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 13)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	raw, err := p.Query(4)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	ei, err := p.QueryEffectiveImportance(4)
	if err != nil {
		t.Fatalf("QueryEffectiveImportance: %v", err)
	}
	for u := 0; u < g.N(); u++ {
		_, w := g.Out(u)
		var deg float64
		for _, x := range w {
			deg += x
		}
		want := raw[u]
		if deg > 0 {
			want = raw[u] / deg
		}
		if math.Abs(ei[u]-want) > 1e-15 {
			t.Fatalf("EI wrong at %d", u)
		}
	}
}

func TestLaplacianVariant(t *testing.T) {
	// RWR with normalized graph Laplacian (Section 3.4): BEAR must solve
	// (I − (1−c) Lᵀ) r = c q with L = D^{-1/2} A D^{-1/2}.
	b := graph.NewBuilder(40)
	rng := rand.New(rand.NewSource(14))
	for e := 0; e < 120; e++ {
		u, v := rng.Intn(40), rng.Intn(40)
		if u != v {
			b.AddUndirected(u, v, 1)
		}
	}
	g := b.Build()
	const c = 0.1
	p, err := Preprocess(g, Options{C: c, K: 1, Laplacian: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	got, err := p.Query(7)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Direct solve of the Laplacian system.
	f, err := sparse.LU(g.HMatrixCSC(c, true))
	if err != nil {
		t.Fatalf("LU: %v", err)
	}
	want := make([]float64, g.N())
	want[7] = c
	if err := f.Solve(want); err != nil {
		t.Fatalf("Solve: %v", err)
	}
	if d := maxAbsDiff(got, want); d > 1e-10 {
		t.Fatalf("Laplacian variant diff %g", d)
	}
}

func TestLaplacianSymmetricScores(t *testing.T) {
	// On undirected graphs the Laplacian variant yields symmetric scores:
	// r_u(seed v) == r_v(seed u), the property Tong et al. motivate it by.
	b := graph.NewBuilder(25)
	rng := rand.New(rand.NewSource(15))
	for e := 0; e < 70; e++ {
		u, v := rng.Intn(25), rng.Intn(25)
		if u != v {
			b.AddUndirected(u, v, 1)
		}
	}
	g := b.Build()
	p, err := Preprocess(g, Options{K: 1, Laplacian: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ra, _ := p.Query(3)
	rb, _ := p.Query(19)
	if math.Abs(ra[19]-rb[3]) > 1e-10 {
		t.Fatalf("laplacian scores not symmetric: %g vs %g", ra[19], rb[3])
	}
}

func TestScoresSumToOne(t *testing.T) {
	// With a stochastic transition (no dangling nodes), RWR scores form a
	// probability distribution.
	g := gen.BarabasiAlbert(200, 2, 16) // undirected => no dangling nodes
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	r, err := p.Query(9)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var sum float64
	for _, v := range r {
		if v < -1e-12 {
			t.Fatalf("negative score %g", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores sum to %g, want 1", sum)
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{0.1, 0.5, 0.3, 0.5, 0.0}
	got := TopK(scores, 3)
	want := []int{1, 3, 2} // ties broken by id
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("TopK = %v, want %v", got, want)
		}
	}
	if len(TopK(scores, 100)) != 5 {
		t.Fatal("TopK should clamp k")
	}
}

// Property: BEAR-Exact matches the direct solve on arbitrary random graphs
// and seeds (Theorem 1 of the paper, exercised via testing/quick).
func TestQuickBearExactTheorem1(t *testing.T) {
	f := func(seed int64, kRaw, cRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		b := graph.NewBuilder(n)
		m := n * (1 + rng.Intn(4))
		for e := 0; e < m; e++ {
			b.AddEdge(rng.Intn(n), rng.Intn(n), 1+rng.Float64())
		}
		g := b.Build()
		c := 0.02 + float64(cRaw%90)/100 // in [0.02, 0.92)
		k := 1 + int(kRaw)%8
		p, err := Preprocess(g, Options{C: c, K: k})
		if err != nil {
			return false
		}
		s := rng.Intn(n)
		got, err := p.Query(s)
		if err != nil {
			return false
		}
		q := make([]float64, n)
		q[s] = 1
		f2, err := sparse.LU(g.HMatrixCSC(c, false))
		if err != nil {
			return false
		}
		want := make([]float64, n)
		want[s] = c
		if err := f2.Solve(want); err != nil {
			return false
		}
		for i := range got {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQueryPageRank(t *testing.T) {
	g := gen.BarabasiAlbert(200, 2, 17)
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	pr, err := p.QueryPageRank()
	if err != nil {
		t.Fatalf("QueryPageRank: %v", err)
	}
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("PageRank sums to %g", sum)
	}
	// Matches the direct solve with uniform q.
	q := make([]float64, g.N())
	for i := range q {
		q[i] = 1 / float64(g.N())
	}
	want := directSolve(t, g, p.C, q)
	if d := maxAbsDiff(pr, want); d > 1e-10 {
		t.Fatalf("PageRank diff %g vs direct solve", d)
	}
	// The highest-degree node must outrank the lowest-degree node: with a
	// small restart probability, undirected PageRank tracks degree.
	deg := g.TotalDegrees()
	hub, leaf := 0, 0
	for u := range deg {
		if deg[u] > deg[hub] {
			hub = u
		}
		if deg[u] < deg[leaf] {
			leaf = u
		}
	}
	if pr[hub] <= pr[leaf] {
		t.Fatalf("hub PageRank %g not above leaf %g", pr[hub], pr[leaf])
	}
}
