package core

// Block-pruned single-seed top-k back-substitution. The full exact solve
// spends most of its time in backSolveTo's L₁⁻¹/U₁⁻¹ products over every
// spoke block, yet a top-k query only needs exact scores for blocks that
// can plausibly reach rank k. Because H is an M-matrix, each block's
// solution admits a certified a-priori bound from quantities that are
// cheap to precompute:
//
//	x₁ᵢ = U₁ᵢ⁻¹ L₁ᵢ⁻¹ zᵢ  ⇒  ‖x₁ᵢ‖_∞ ≤ ‖x₁ᵢ‖₁ ≤ Σ_j |zᵢ[j]| · ν[j],
//
// where ν[j] ≥ ‖U₁ᵢ⁻¹ L₁ᵢ⁻¹ e_j‖₁ is a per-column bound on the ℓ₁ mass of
// the block factors' response to a unit impulse, computed once per index
// from the stored factors (see topKColBounds). Blocks whose bound falls
// strictly below the current k-th best exact score cannot contain a top-k
// node and their two triangular products are skipped outright; every score
// that is computed runs through the same kernels in the same order as the
// full solve, so computed entries are bit-identical and the returned top-k
// set provably equals TopK(full exact solve, k).

import (
	"context"
	"math"
	"sort"

	"bear/internal/sparse/kernel"
)

// topKBoundSlack inflates computed bounds so floating-point rounding in
// the bound arithmetic (relative error ~1e-14 per accumulation chain)
// can never let a true score escape its certificate.
const topKBoundSlack = 1 + 1e-9

// topKColBounds returns ν: for each spoke column j, a certified upper
// bound on ‖U₁⁻¹L₁⁻¹e_j‖₁ (the factors are block diagonal, so the bound
// is per-block by construction). Writing colU[k] = ‖U₁⁻¹e_k‖₁ (the k-th
// absolute column sum of the stored U₁⁻¹),
//
//	‖U₁⁻¹L₁⁻¹e_j‖₁ = ‖U₁⁻¹ (L₁⁻¹e_j)‖₁ ≤ Σ_k |L₁⁻¹[k,j]| · colU[k],
//
// one weighted pass over L₁⁻¹'s nonzeros. The result is cached on the
// Precomputed (it depends only on the immutable factors).
func (p *Precomputed) topKColBounds() []float64 {
	p.topkOnce.Do(func() {
		n1 := p.N1
		nu := make([]float64, n1)
		if n1 == 0 || p.L1Inv == nil || p.U1Inv == nil {
			p.topkNu = nu
			return
		}
		colU := make([]float64, n1)
		u := p.U1Inv
		for r := 0; r < u.R; r++ {
			for idx := u.RowPtr[r]; idx < u.RowPtr[r+1]; idx++ {
				colU[u.ColIdx[idx]] += math.Abs(u.Val[idx])
			}
		}
		l := p.L1Inv
		for r := 0; r < l.R; r++ {
			w := colU[r]
			for idx := l.RowPtr[r]; idx < l.RowPtr[r+1]; idx++ {
				nu[l.ColIdx[idx]] += math.Abs(l.Val[idx]) * w
			}
		}
		for j := range nu {
			nu[j] *= topKBoundSlack
		}
		p.topkNu = nu
	})
	return p.topkNu
}

// topKIDHeap is a bounded min-heap of node ids ranked by a score vector
// under TopK's comparator (descending score, ties by ascending id): the
// root is the weakest retained candidate, so once the heap holds k ids
// its root score is the running k-th best exact score θ, and at the end
// of the solve the heap IS the top-k — no dense rescan needed. Exact
// scores are finite factor products, never NaN, so the comparator skips
// TopK's explicit NaN ordering.
type topKIDHeap struct {
	scores []float64
	h      []int
	k      int
}

// worse reports whether candidate a ranks strictly below b.
func (q *topKIDHeap) worse(a, b int) bool {
	sa, sb := q.scores[a], q.scores[b]
	return sa < sb || (sa == sb && a > b)
}

func (q *topKIDHeap) push(i int) {
	if len(q.h) < q.k {
		q.h = append(q.h, i)
		for c := len(q.h) - 1; c > 0; {
			par := (c - 1) / 2
			if !q.worse(q.h[c], q.h[par]) {
				break
			}
			q.h[c], q.h[par] = q.h[par], q.h[c]
			c = par
		}
		return
	}
	if q.worse(i, q.h[0]) {
		return
	}
	q.h[0] = i
	for c := 0; ; {
		l, r, m := 2*c+1, 2*c+2, c
		if l < q.k && q.worse(q.h[l], q.h[m]) {
			m = l
		}
		if r < q.k && q.worse(q.h[r], q.h[m]) {
			m = r
		}
		if m == c {
			break
		}
		q.h[c], q.h[m] = q.h[m], q.h[c]
		c = m
	}
}

// theta returns the current k-th best score, or (0, false) while fewer
// than k scores have been seen (no block may be pruned on score yet).
func (q *topKIDHeap) theta() (float64, bool) {
	if len(q.h) < q.k {
		return 0, false
	}
	return q.scores[q.h[0]], true
}

// solveSeedTopKCtx answers a single-seed top-k query with the block-pruned
// exact solve. It mirrors solveSeedToCtx through the forward and Schur
// stages (hub scores are always exact), then back-substitutes spoke blocks
// in decreasing order of their certified score bound, stopping as soon as
// the remaining bounds fall strictly below the running k-th best exact
// score. Scores are final (restart-scaled); nodes are graph ids ranked
// with TopK's exact comparator. solved and skipped count spoke blocks.
func (p *Precomputed) solveSeedTopKCtx(ctx context.Context, seed, k int, ws *Workspace) (nodes []int, scores []float64, solved, skipped int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, 0, err
	}
	n1, n2 := p.N1, p.N2
	c := p.C
	pos := p.Perm[seed]
	bp := ws.full
	for i := range bp {
		bp[i] = 0
	}
	bp[pos] = 1
	b1, b2 := bp[:n1], bp[n1:]

	// Forward and Schur stages, exactly as solveSeedToCtx: the seed block's
	// restricted factor products feed the hub system, whose solution r2 is
	// exact for every hub.
	var r2 []float64
	if n2 > 0 {
		if pos < n1 {
			bi := p.blockOfPos(pos)
			lo, hi := p.BlockOffsets[bi], p.BlockOffsets[bi+1]
			p.kern.l1inv.SpMVRange(ws.s1a, b1, lo, hi, kernel.Exact)
			p.kern.u1inv.SpMVRange(ws.s1b, ws.s1a, lo, hi, kernel.Exact)
			if err := ctx.Err(); err != nil {
				return nil, nil, 0, 0, err
			}
			r2 = p.schurSolveTo(b2, ws.s1b, lo, hi, ws)
		} else {
			r2 = p.schurSolveTo(b2, nil, 0, 0, ws)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, 0, 0, err
	}

	// z = b₁ − H₁₂r₂, the shared right-hand side of every block's back
	// substitution — identical to backSolveTo's, and needed in full for the
	// per-block bounds anyway.
	z := ws.s1a
	if n2 > 0 {
		p.kern.h12.SpMV(z, r2, kernel.Exact)
	} else {
		for i := range z {
			z[i] = 0
		}
	}
	for i := range z {
		z[i] = b1[i] - z[i]
	}

	// bp is dead once z exists (schurSolveTo's result lives in s2a/s2b),
	// so its backing array is recycled as the score vector.
	dst := ws.full
	for i := range dst {
		dst[i] = 0
	}
	heap := topKIDHeap{scores: dst, k: k}
	for i := 0; i < n2; i++ {
		v := p.InvPerm[n1+i]
		dst[v] = c * r2[i]
		heap.push(v)
	}

	nu := p.topKColBounds()
	nblocks := len(p.BlockOffsets) - 1
	seedBlock := -1
	if pos < n1 {
		seedBlock = p.blockOfPos(pos)
	}
	solveBlock := func(bi int) {
		lo, hi := p.BlockOffsets[bi], p.BlockOffsets[bi+1]
		// The factors are block diagonal: rows [lo,hi) read only columns
		// [lo,hi), so x₁ᵢ may overwrite z's block range in place once its
		// L-product is taken.
		p.kern.l1inv.SpMVRange(ws.s1b, z, lo, hi, kernel.Exact)
		p.kern.u1inv.SpMVRange(z, ws.s1b, lo, hi, kernel.Exact)
		for j := lo; j < hi; j++ {
			v := p.InvPerm[j]
			dst[v] = c * z[j]
			heap.push(v)
		}
		solved++
	}

	// The seed's own block always resolves exactly: it holds the restart
	// mass and seeds θ with the highest scores in most queries.
	if seedBlock >= 0 {
		solveBlock(seedBlock)
	}

	// One filtering pass prunes against the θ the seed block and hubs
	// already established — θ only grows, so a block rejected here stays
	// certifiably outside the top k. Survivors (typically a handful) are
	// sorted by bound and re-checked against the tightening θ as they
	// resolve. A zero bound means the block's solution is exactly zero
	// (dst already holds it — this is Lemma 1's sparsity, recovered from
	// the bound itself).
	type bound struct {
		bi int
		u  float64
	}
	var survivors []bound
	theta, full := heap.theta()
	for bi := 0; bi < nblocks; bi++ {
		if bi == seedBlock {
			continue
		}
		lo, hi := p.BlockOffsets[bi], p.BlockOffsets[bi+1]
		var u float64
		for j := lo; j < hi; j++ {
			u += nu[j] * math.Abs(z[j])
		}
		u *= c * topKBoundSlack
		if u == 0 || (full && u < theta) {
			skipped++
			continue
		}
		survivors = append(survivors, bound{bi, u})
	}
	sort.Slice(survivors, func(i, j int) bool { return survivors[i].u > survivors[j].u })
	for i, b := range survivors {
		theta, full = heap.theta()
		if full && b.u < theta {
			skipped += len(survivors) - i
			break
		}
		if i&63 == 63 {
			if err := ctx.Err(); err != nil {
				return nil, nil, solved, skipped, err
			}
		}
		solveBlock(b.bi)
	}

	if th, full := heap.theta(); !full || th <= 0 {
		// Fewer than k scores were computed, or zeros reached rank k. Zero
		// scores tie across computed and skipped nodes — both hold exactly
		// 0 in dst — and only a dense selection ranks that tie the way the
		// full solve's TopK does.
		nodes = TopK(dst, k)
	} else {
		nodes = append([]int(nil), heap.h...)
		sort.Slice(nodes, func(a, b int) bool { return heap.worse(nodes[b], nodes[a]) })
	}
	scores = make([]float64, len(nodes))
	for i, v := range nodes {
		scores[i] = dst[v]
	}
	return nodes, scores, solved, skipped, nil
}
