package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"bear/internal/dense"
	"bear/internal/graph"
	"bear/internal/obsv"
)

// ErrRebuildInProgress is returned by Rebuild when another rebuild of the
// same Dynamic is already running; the caller can simply wait for it (the
// in-flight rebuild folds a snapshot of the updates the caller observed).
var ErrRebuildInProgress = errors.New("core: rebuild already in progress")

// Dynamic extends BEAR toward the paper's stated future work — frequently
// changing graphs — without re-running the preprocessing phase on every
// change. Replacing the out-edges of a node u changes exactly one column
// of H = I − (1−c)Ãᵀ, so a batch of k touched nodes is a rank-k update
// H' = H + W Eᵀ, and queries against H' are answered through the
// Sherman–Morrison–Woodbury identity using the already-preprocessed BEAR
// matrices as the H⁻¹ oracle:
//
//	H'⁻¹ q = H⁻¹q − (H⁻¹W) (I_k + Eᵀ H⁻¹ W)⁻¹ Eᵀ (H⁻¹ q).
//
// Queries stay exact at O(k+1) block-elimination solves plus a k×k dense
// inverse, so the layer is efficient while k (the number of touched nodes
// since the last Rebuild) stays small; Rebuild folds the changes into a
// fresh preprocessing pass when it grows.
//
// Dynamic is safe for concurrent use: queries proceed in parallel and
// serialize only against updates and rebuilds.
type Dynamic struct {
	mu   sync.RWMutex
	base *graph.Graph // graph the precomputed matrices reflect
	cur  *graph.Graph // graph with all accepted updates applied
	p    *Precomputed
	opts Options

	dirty []int // nodes whose out-edges differ from base, sorted

	// Woodbury cache, invalidated on every update.
	capMat *dense.Matrix // (I_k + Eᵀ H⁻¹ W)⁻¹
	hw     [][]float64   // columns of H⁻¹ W, indexed like dirty

	// Rebuild-in-flight state. While a rebuild preprocesses a snapshot of
	// cur outside the lock, queries keep serving the old precomputed
	// matrices (Woodbury-corrected through dirty as usual) and sinceSnap
	// records the nodes updated after the snapshot was taken — they become
	// the new dirty set when the rebuilt matrices are swapped in.
	rebuilding bool
	sinceSnap  []int

	// epoch counts state transitions visible to query results: every
	// accepted update and every rebuild swap increments it. Result caches
	// key on it — see Epoch.
	epoch uint64
}

// NewDynamic preprocesses g and wraps it for incremental updates.
func NewDynamic(g *graph.Graph, opts Options) (*Dynamic, error) {
	p, err := Preprocess(g, opts)
	if err != nil {
		return nil, err
	}
	return &Dynamic{base: g, cur: g, p: p, opts: opts}, nil
}

// Precomputed returns the underlying BEAR state (reflecting the graph as
// of the last Rebuild, not pending updates).
func (d *Dynamic) Precomputed() *Precomputed {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.p
}

// Graph returns the current graph with all updates applied.
func (d *Dynamic) Graph() *graph.Graph {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.cur
}

// Options returns the preprocessing options this Dynamic was built (and
// rebuilds) with.
func (d *Dynamic) Options() Options {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.opts
}

// PendingNodes reports how many nodes' out-edges differ from the
// preprocessed graph; query cost grows with this count.
func (d *Dynamic) PendingNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.dirty)
}

// UpdateNode replaces the out-edges of node u with the given destinations
// and weights (parallel slices; duplicates are summed). Weights must be
// non-negative.
func (d *Dynamic) UpdateNode(u int, dst []int, w []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.updateNodeLocked(u, dst, w)
}

func (d *Dynamic) updateNodeLocked(u int, dst []int, w []float64) error {
	n := d.cur.N()
	if u < 0 || u >= n {
		return fmt.Errorf("core: node %d out of range [0,%d)", u, n)
	}
	if len(dst) != len(w) {
		return fmt.Errorf("core: %d destinations but %d weights", len(dst), len(w))
	}
	for i, v := range dst {
		if v < 0 || v >= n {
			return fmt.Errorf("core: destination %d out of range [0,%d)", v, n)
		}
		if w[i] < 0 || math.IsNaN(w[i]) {
			return fmt.Errorf("core: weight %g for edge %d->%d", w[i], u, v)
		}
	}
	// Rebuild the current graph with u's row replaced.
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		if v == u {
			continue
		}
		vd, vw := d.cur.Out(v)
		for k := range vd {
			b.AddEdge(v, vd[k], vw[k])
		}
	}
	for k := range dst {
		b.AddEdge(u, dst[k], w[k])
	}
	d.cur = b.Build()
	d.markDirty(u)
	return nil
}

// AddEdge adds (or reweights by summing) the directed edge u -> v on top of
// the current graph.
func (d *Dynamic) AddEdge(u, v int, w float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if v < 0 || v >= d.cur.N() {
		return fmt.Errorf("core: destination %d out of range [0,%d)", v, d.cur.N())
	}
	dst, wt := d.outCopy(u)
	return d.updateNodeLocked(u, append(dst, v), append(wt, w))
}

// RemoveEdge deletes the directed edge u -> v; removing a missing edge is
// an error.
func (d *Dynamic) RemoveEdge(u, v int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	dst, wt := d.outCopy(u)
	for k := range dst {
		if dst[k] == v {
			return d.updateNodeLocked(u, append(dst[:k], dst[k+1:]...), append(wt[:k], wt[k+1:]...))
		}
	}
	return fmt.Errorf("core: edge %d->%d does not exist", u, v)
}

func (d *Dynamic) outCopy(u int) ([]int, []float64) {
	if u < 0 || u >= d.cur.N() {
		return nil, nil
	}
	dst, w := d.cur.Out(u)
	return append([]int(nil), dst...), append([]float64(nil), w...)
}

func (d *Dynamic) markDirty(u int) {
	d.epoch++
	d.capMat, d.hw = nil, nil
	// A node whose row went back to its base contents could be dropped
	// here; detecting that costs a row comparison and the win is rare, so
	// the node simply stays dirty until the next Rebuild.
	d.dirty = insertSorted(d.dirty, u)
	if d.rebuilding {
		d.sinceSnap = insertSorted(d.sinceSnap, u)
	}
}

// insertSorted inserts u into the sorted set s, keeping it sorted and
// duplicate-free.
func insertSorted(s []int, u int) []int {
	i := sort.SearchInts(s, u)
	if i < len(s) && s[i] == u {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = u
	return s
}

// Rebuild folds all accepted updates into a fresh preprocessing pass,
// resetting the per-query update cost to zero. The expensive preprocessing
// runs outside the lock against an immutable snapshot of the current
// graph, so queries and updates keep flowing while it runs: queries are
// answered exactly from the old matrices (Woodbury-corrected), and nodes
// updated during the rebuild window simply stay dirty — relative to the
// new base — after the atomic swap. Only one rebuild may run at a time;
// concurrent calls fail fast with ErrRebuildInProgress.
func (d *Dynamic) Rebuild() error {
	d.mu.Lock()
	if d.rebuilding {
		d.mu.Unlock()
		return ErrRebuildInProgress
	}
	d.rebuilding = true
	d.sinceSnap = nil
	snap := d.cur // Graph is immutable; updates swap in a fresh one
	d.mu.Unlock()

	p, err := Preprocess(snap, d.opts)

	d.mu.Lock()
	defer d.mu.Unlock()
	d.rebuilding = false
	if err != nil {
		d.sinceSnap = nil
		return err
	}
	d.base, d.p = snap, p
	d.dirty = d.sinceSnap // updates accepted while preprocessing ran
	d.sinceSnap = nil
	d.capMat, d.hw = nil, nil
	// The swap changes which Precomputed answers queries (and resets the
	// Woodbury correction), so cached results must not carry across it even
	// though the graph itself did not change at this instant.
	d.epoch++
	return nil
}

// Epoch returns a counter that increments on every accepted update and
// every rebuild swap. Two queries observing the same epoch are answered
// from the same graph state, so results may be cached under a key that
// includes the epoch; the count read *before* issuing a query is a safe
// cache key for its result (a concurrent transition can only make the
// cached value fresher than the key promises, never staler).
func (d *Dynamic) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// RebuildInProgress reports whether a Rebuild is currently preprocessing in
// the background. Queries remain exact (and non-blocking) throughout.
func (d *Dynamic) RebuildInProgress() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rebuilding
}

// deltaColumn returns δ_u = H'(:,u) − H(:,u) as a dense vector: the column
// of H touched by node u's row change, since column u of H is
// e_u − (1−c)·(row u of Ã)ᵀ.
func (d *Dynamic) deltaColumn(u int) []float64 {
	delta := make([]float64, d.cur.N())
	scatter := func(g *graph.Graph, sign float64) {
		dst, w := g.Out(u)
		var total float64
		for _, x := range w {
			total += x
		}
		if total == 0 {
			return
		}
		for k, v := range dst {
			delta[v] += sign * -(1 - d.p.C) * w[k] / total
		}
	}
	scatter(d.cur, 1)
	scatter(d.base, -1)
	return delta
}

// refreshWoodbury recomputes the capacitance matrix and the H⁻¹W columns
// for the current dirty set. Cancellation is checked between the k
// column solves; a cancelled refresh leaves the cache invalid so the next
// query redoes it.
func (d *Dynamic) refreshWoodbury(ctx context.Context) error {
	defer obsv.FromContext(ctx).Start(obsv.SpanWoodburyRefresh).Stop()
	k := len(d.dirty)
	d.hw = make([][]float64, k)
	ws := d.p.AcquireWorkspace()
	for i, u := range d.dirty {
		d.hw[i] = make([]float64, d.p.N)
		if err := d.p.solveToCtx(ctx, d.hw[i], d.deltaColumn(u), ws); err != nil {
			d.p.ReleaseWorkspace(ws)
			d.hw = nil
			return err
		}
	}
	d.p.ReleaseWorkspace(ws)
	cap := dense.Identity(k)
	for i, u := range d.dirty {
		for j := 0; j < k; j++ {
			cap.Data[i*k+j] += d.hw[j][u]
		}
	}
	inv, err := dense.Inverse(cap)
	if err != nil {
		d.hw = nil
		return fmt.Errorf("core: singular Woodbury capacitance matrix (the update may make H singular): %w", err)
	}
	d.capMat = inv
	return nil
}

// QueryDist computes exact RWR scores on the *current* graph for an
// arbitrary starting distribution, correcting the preprocessed solution
// for all pending updates.
func (d *Dynamic) QueryDist(q []float64) ([]float64, error) {
	return d.QueryDistCtx(context.Background(), q)
}

// QueryDistCtx is QueryDist honoring cancellation and deadlines on ctx,
// checked between the block-elimination stages and between the Woodbury
// correction terms.
func (d *Dynamic) QueryDistCtx(ctx context.Context, q []float64) ([]float64, error) {
	// Ensure the Woodbury cache exists, then answer under the read lock so
	// queries run in parallel. A concurrent update between the lock
	// transitions invalidates the cache again, so loop until it is seen
	// valid under the read lock.
	for {
		d.mu.RLock()
		if d.capMat != nil || len(d.dirty) == 0 {
			defer d.mu.RUnlock()
			return d.queryDistLocked(ctx, q)
		}
		d.mu.RUnlock()
		d.mu.Lock()
		if d.capMat == nil && len(d.dirty) > 0 {
			if err := d.refreshWoodbury(ctx); err != nil {
				d.mu.Unlock()
				return nil, err
			}
		}
		d.mu.Unlock()
	}
}

func (d *Dynamic) queryDistLocked(ctx context.Context, q []float64) ([]float64, error) {
	if len(q) != d.cur.N() {
		return nil, fmt.Errorf("core: starting vector length %d, want %d", len(q), d.cur.N())
	}
	for i, v := range q {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: starting vector entry %d is %g; must be non-negative", i, v)
		}
	}
	x := make([]float64, d.p.N)
	ws := d.p.AcquireWorkspace()
	err := d.p.solveToCtx(ctx, x, q, ws)
	d.p.ReleaseWorkspace(ws)
	if err != nil {
		return nil, err
	}
	k := len(d.dirty)
	if k > 0 {
		// α = capMat · (Eᵀ x); r = x − (H⁻¹W) α. The cache was built by
		// QueryDistCtx before taking the read lock.
		sw := obsv.FromContext(ctx).Start(obsv.SpanWoodburyTerms)
		y := make([]float64, k)
		for i, u := range d.dirty {
			y[i] = x[u]
		}
		alpha := d.capMat.MulVec(y)
		for i := range d.hw {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a := alpha[i]
			if a == 0 {
				continue
			}
			col := d.hw[i]
			for node := range x {
				x[node] -= a * col[node]
			}
		}
		sw.Stop()
	}
	for i := range x {
		x[i] *= d.p.C
	}
	return x, nil
}

// Query computes exact RWR scores on the current graph for a single seed.
func (d *Dynamic) Query(seed int) ([]float64, error) {
	return d.QueryCtx(context.Background(), seed)
}

// QueryCtx is Query honoring cancellation and deadlines on ctx.
func (d *Dynamic) QueryCtx(ctx context.Context, seed int) ([]float64, error) {
	n := d.Graph().N()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("core: seed %d out of range [0,%d)", seed, n)
	}
	q := make([]float64, n)
	q[seed] = 1
	return d.QueryDistCtx(ctx, q)
}

// QueryBatch computes exact RWR vectors for many seeds on the current
// graph; results are indexed like seeds.
func (d *Dynamic) QueryBatch(seeds []int, workers int) ([][]float64, error) {
	return d.QueryBatchCtx(context.Background(), seeds, workers)
}

// QueryBatchCtx is QueryBatch honoring cancellation and deadlines on ctx.
// With no pending updates it runs the blocked multi-RHS solver (one factor
// traversal per chunk of seeds, bit-identical to per-seed Query); with
// pending updates it falls back to per-seed Woodbury-corrected queries,
// since the rank-k correction is per-vector anyway.
func (d *Dynamic) QueryBatchCtx(ctx context.Context, seeds []int, workers int) ([][]float64, error) {
	d.mu.RLock()
	p, clean := d.p, len(d.dirty) == 0
	d.mu.RUnlock()
	if clean {
		// p is immutable, so the batch is answered consistently from the
		// state captured above even if updates or a rebuild swap land
		// mid-batch (the same guarantee per-seed queries give: results
		// reflect the graph as of when the query began).
		return p.QueryBatchCtx(ctx, seeds, workers)
	}
	out := make([][]float64, len(seeds))
	for i, s := range seeds {
		r, err := d.QueryCtx(ctx, s)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
