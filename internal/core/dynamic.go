package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"bear/internal/dense"
	"bear/internal/graph"
	"bear/internal/obsv"
	"bear/internal/sparse"
)

// ErrRebuildInProgress is returned by Rebuild when another rebuild of the
// same Dynamic is already running; the caller can simply wait for it (the
// in-flight rebuild folds a snapshot of the updates the caller observed).
var ErrRebuildInProgress = errors.New("core: rebuild already in progress")

// nodeRow is the complete current out-row of an updated node: destinations
// sorted and duplicate-free (the canonical form graph.Builder produces),
// weights finite and non-negative. Rows are immutable once installed —
// every mutation replaces the whole row — so they may alias graph storage.
type nodeRow struct {
	dst []int
	w   []float64
}

// Dynamic extends BEAR toward the paper's stated future work — frequently
// changing graphs — without re-running the preprocessing phase on every
// change. Replacing the out-edges of a node u changes exactly one column
// of H = I − (1−c)Ãᵀ, so a batch of k touched nodes is a rank-k update
// H' = H + W Eᵀ, and queries against H' are answered through the
// Sherman–Morrison–Woodbury identity using the already-preprocessed BEAR
// matrices as the H⁻¹ oracle:
//
//	H'⁻¹ q = H⁻¹q − (H⁻¹W) (I_k + Eᵀ H⁻¹ W)⁻¹ Eᵀ (H⁻¹ q).
//
// Queries stay exact at O(k+1) block-elimination solves plus a k×k dense
// inverse, so the layer is efficient while k (the number of touched nodes
// since the last Rebuild) stays small; Rebuild folds the changes into a
// fresh preprocessing pass when it grows.
//
// Dynamic is safe for concurrent use: queries proceed in parallel and
// serialize only against updates and rebuilds.
type Dynamic struct {
	mu   sync.RWMutex
	base *graph.Graph // graph the precomputed matrices reflect
	p    *Precomputed
	opts Options

	// The current graph is represented as base plus a per-node row
	// overlay, so a single-node update costs O(|row|), not an O(N+M)
	// whole-graph rebuild. overlay holds the complete current rows of
	// nodes whose out-edges differ from base; every other row is read from
	// base. curCache memoizes the materialized current graph and is nil
	// while stale (invalidated by every accepted update).
	overlay  map[int]nodeRow
	curCache *graph.Graph

	// Row-normalized adjacency of the materialized current graph, used by
	// the hybrid top-k push phase. Keyed by graph identity (normFor), so it
	// needs no explicit invalidation: a graph-state change replaces
	// curCache and the next lookup simply misses.
	normFor *graph.Graph
	norm    *sparse.CSR

	// Reusable push engines for the hybrid top-k push phase. A Pusher
	// carries O(N) state whose reset cost is proportional to the previous
	// query's footprint, so reuse makes a failed certification attempt
	// cost its pushes, not four fresh length-N allocations. Entries are
	// keyed by the normalized matrix they were built over (pusherEntry.a)
	// and dropped on mismatch, which retires them naturally after updates.
	pushers sync.Pool

	// pushStrikes counts consecutive hybrid top-k push attempts against
	// the matrix pushStrikesFor that failed to certify. At topKPushStrikes
	// the push phase is skipped outright for that matrix: on graphs whose
	// structure defeats push certification, paying the probe tax on every
	// query would erase the block-pruned solve's win. Any certification
	// success or graph change resets the count.
	pushStrikesFor *sparse.CSR
	pushStrikes    int

	dirty []int // nodes whose out-edges differ from base, sorted

	// Woodbury cache, invalidated on every update.
	capMat *dense.Matrix // (I_k + Eᵀ H⁻¹ W)⁻¹
	hw     [][]float64   // columns of H⁻¹ W, indexed like dirty

	// hwByNode persists solved H⁻¹W columns across update batches: column
	// u depends only on u's own delta against the base, so another node
	// going dirty invalidates the capacitance matrix but not the solved
	// columns. refreshWoodbury then solves only the columns that are
	// actually new. Entries die with their delta: markDirty(u) evicts u's
	// column, and a rebuild swap clears the map (new base, new H⁻¹).
	hwByNode map[int][]float64

	// Rebuild-in-flight state. While a rebuild preprocesses a snapshot of
	// the current graph outside the lock, queries keep serving the old
	// precomputed matrices (Woodbury-corrected through dirty as usual) and
	// sinceSnap records the nodes updated after the snapshot was taken —
	// they become the new dirty set when the rebuilt matrices are swapped
	// in.
	rebuilding bool
	sinceSnap  []int

	// epoch counts state transitions visible to query results: every
	// accepted update and every rebuild swap increments it. Result caches
	// key on it — see Epoch.
	epoch uint64

	// Incremental-rebuild bookkeeping: the auto-mode thresholds, the last
	// completed rebuild's report, and the precomputed NNZ as of the last
	// full build (the fill-ratio baseline — incremental rebuilds reuse a
	// stale ordering, so their factors may slowly densify).
	policy      RebuildPolicy
	lastRebuild *RebuildReport
	lastFullNNZ int64
}

// NewDynamic preprocesses g and wraps it for incremental updates.
func NewDynamic(g *graph.Graph, opts Options) (*Dynamic, error) {
	return NewDynamicCtx(context.Background(), g, opts)
}

// NewDynamicCtx is NewDynamic honoring cancellation on ctx during the
// initial preprocessing pass (see PreprocessCtx).
func NewDynamicCtx(ctx context.Context, g *graph.Graph, opts Options) (*Dynamic, error) {
	// A Dynamic exists to be updated and rebuilt, so always retain the
	// Schur-assembly cache that makes incremental rebuilds possible
	// (preprocessCtx still skips it when the index shape disqualifies the
	// incremental path, e.g. DropTol > 0).
	opts.RetainRebuildCache = true
	p, err := PreprocessCtx(ctx, g, opts)
	if err != nil {
		return nil, err
	}
	return &Dynamic{base: g, curCache: g, p: p, opts: opts, lastFullNNZ: p.NNZ()}, nil
}

// Precomputed returns the underlying BEAR state (reflecting the graph as
// of the last Rebuild, not pending updates).
func (d *Dynamic) Precomputed() *Precomputed {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.p
}

// Graph returns the current graph with all updates applied, materializing
// it from the base graph and the update overlay if no materialized form is
// cached. The returned graph is immutable; repeated calls between updates
// return the same instance.
func (d *Dynamic) Graph() *graph.Graph {
	d.mu.RLock()
	g := d.curCache
	d.mu.RUnlock()
	if g != nil {
		return g
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.materializeLocked()
}

// materializeLocked returns the current graph, building and caching it
// from base ⊕ overlay when stale. Callers must hold the write lock.
func (d *Dynamic) materializeLocked() *graph.Graph {
	if d.curCache != nil {
		return d.curCache
	}
	if len(d.overlay) == 0 {
		d.curCache = d.base
		return d.base
	}
	n := d.base.N()
	rowPtr := make([]int, n+1)
	for u := 0; u < n; u++ {
		if row, ok := d.overlay[u]; ok {
			rowPtr[u+1] = rowPtr[u] + len(row.dst)
		} else {
			rowPtr[u+1] = rowPtr[u] + d.base.OutDegree(u)
		}
	}
	colIdx := make([]int, 0, rowPtr[n])
	val := make([]float64, 0, rowPtr[n])
	for u := 0; u < n; u++ {
		dst, w := d.curRowLocked(u)
		colIdx = append(colIdx, dst...)
		val = append(val, w...)
	}
	d.curCache = graph.FromCSR(&sparse.CSR{R: n, C: n, RowPtr: rowPtr, ColIdx: colIdx, Val: val})
	return d.curCache
}

// curRowLocked returns node u's current out-row without materializing the
// whole graph: the overlay row if u was updated, the base row otherwise.
// The returned slices alias internal storage and must not be modified.
// Callers must hold the lock (read or write).
func (d *Dynamic) curRowLocked(u int) ([]int, []float64) {
	if row, ok := d.overlay[u]; ok {
		return row.dst, row.w
	}
	return d.base.Out(u)
}

// setRowLocked installs a canonical (sorted, duplicate-free, validated)
// row as node u's current out-edges and invalidates everything derived
// from the old row. The slices must be fresh or immutable — they are
// retained.
func (d *Dynamic) setRowLocked(u int, dst []int, w []float64) {
	if d.overlay == nil {
		d.overlay = make(map[int]nodeRow)
	}
	d.overlay[u] = nodeRow{dst: dst, w: w}
	d.curCache = nil
	d.markDirty(u)
}

// Options returns the preprocessing options this Dynamic was built (and
// rebuilds) with.
func (d *Dynamic) Options() Options {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.opts
}

// PendingNodes reports how many nodes' out-edges differ from the
// preprocessed graph; query cost grows with this count.
func (d *Dynamic) PendingNodes() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.dirty)
}

// UpdateNode replaces the out-edges of node u with the given destinations
// and weights (parallel slices; duplicates are summed). Weights must be
// finite and non-negative — +Inf is rejected along with NaN and negatives,
// since an infinite weight poisons the row normalization into NaN scores.
func (d *Dynamic) UpdateNode(u int, dst []int, w []float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.updateNodeLocked(u, dst, w)
}

func (d *Dynamic) updateNodeLocked(u int, dst []int, w []float64) error {
	n := d.base.N()
	if u < 0 || u >= n {
		return fmt.Errorf("core: node %d out of range [0,%d)", u, n)
	}
	if len(dst) != len(w) {
		return fmt.Errorf("core: %d destinations but %d weights", len(dst), len(w))
	}
	for i, v := range dst {
		if v < 0 || v >= n {
			return fmt.Errorf("core: destination %d out of range [0,%d)", v, n)
		}
		if w[i] < 0 || math.IsNaN(w[i]) || math.IsInf(w[i], 0) {
			return fmt.Errorf("core: weight %g for edge %d->%d; must be finite and non-negative", w[i], u, v)
		}
	}
	// Canonicalize into fresh slices: sorted by destination, duplicates
	// merged by summing (the form graph.Builder would produce).
	nd := append([]int(nil), dst...)
	nw := append([]float64(nil), w...)
	if !sort.IntsAreSorted(nd) {
		ord := make([]int, len(nd))
		for i := range ord {
			ord[i] = i
		}
		sort.SliceStable(ord, func(a, b int) bool { return dst[ord[a]] < dst[ord[b]] })
		for i, j := range ord {
			nd[i], nw[i] = dst[j], w[j]
		}
	}
	out := 0
	for i := 0; i < len(nd); i++ {
		if out > 0 && nd[out-1] == nd[i] {
			nw[out-1] += nw[i]
			if math.IsInf(nw[out-1], 0) {
				// Individually finite duplicates can still overflow when
				// summed; an infinite merged weight would poison the row
				// normalization into NaN scores just like a raw +Inf.
				return fmt.Errorf("core: merged weight for edge %d->%d overflows; must be finite", u, nd[out-1])
			}
			continue
		}
		nd[out], nw[out] = nd[i], nw[i]
		out++
	}
	d.setRowLocked(u, nd[:out], nw[:out])
	return nil
}

// AddEdge sets the directed edge u -> v to weight w on top of the current
// graph. A new edge is inserted; an existing edge has its weight replaced
// (update-in-place — AddEdge is idempotent, and re-adding an edge with the
// weight it already has is a no-op that leaves the node clean). The weight
// must be finite and non-negative. Cost is O(|row u|), independent of
// graph size.
func (d *Dynamic) AddEdge(u, v int, w float64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.base.N()
	if u < 0 || u >= n {
		return fmt.Errorf("core: node %d out of range [0,%d)", u, n)
	}
	if v < 0 || v >= n {
		return fmt.Errorf("core: destination %d out of range [0,%d)", v, n)
	}
	if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
		return fmt.Errorf("core: weight %g for edge %d->%d; must be finite and non-negative", w, u, v)
	}
	dst, wt := d.curRowLocked(u)
	k := sort.SearchInts(dst, v)
	if k < len(dst) && dst[k] == v {
		if wt[k] == w {
			return nil // row unchanged; nothing to invalidate
		}
		nw := append([]float64(nil), wt...)
		nw[k] = w
		d.setRowLocked(u, append([]int(nil), dst...), nw)
		return nil
	}
	nd := make([]int, 0, len(dst)+1)
	nd = append(append(append(nd, dst[:k]...), v), dst[k:]...)
	nw := make([]float64, 0, len(wt)+1)
	nw = append(append(append(nw, wt[:k]...), w), wt[k:]...)
	d.setRowLocked(u, nd, nw)
	return nil
}

// RemoveEdge deletes the directed edge u -> v; removing a missing edge is
// an error. Cost is O(|row u|), independent of graph size.
func (d *Dynamic) RemoveEdge(u, v int) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := d.base.N()
	if u < 0 || u >= n {
		return fmt.Errorf("core: node %d out of range [0,%d)", u, n)
	}
	dst, wt := d.curRowLocked(u)
	k := sort.SearchInts(dst, v)
	if k >= len(dst) || dst[k] != v {
		return fmt.Errorf("core: edge %d->%d does not exist", u, v)
	}
	nd := make([]int, 0, len(dst)-1)
	nd = append(append(nd, dst[:k]...), dst[k+1:]...)
	nw := make([]float64, 0, len(wt)-1)
	nw = append(append(nw, wt[:k]...), wt[k+1:]...)
	d.setRowLocked(u, nd, nw)
	return nil
}

func (d *Dynamic) markDirty(u int) {
	d.epoch++
	d.capMat, d.hw = nil, nil
	delete(d.hwByNode, u) // u's delta changed; other columns stay valid
	// A node whose row went back to its base contents could be dropped
	// here; detecting that costs a row comparison and the win is rare, so
	// the node simply stays dirty until the next Rebuild.
	d.dirty = insertSorted(d.dirty, u)
	if d.rebuilding {
		d.sinceSnap = insertSorted(d.sinceSnap, u)
	}
}

// insertSorted inserts u into the sorted set s, keeping it sorted and
// duplicate-free.
func insertSorted(s []int, u int) []int {
	i := sort.SearchInts(s, u)
	if i < len(s) && s[i] == u {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = u
	return s
}

// Epoch returns a counter that increments on every accepted update and
// every rebuild swap. Two queries observing the same epoch are answered
// from the same graph state, so results may be cached under a key that
// includes the epoch; the count read *before* issuing a query is a safe
// cache key for its result (a concurrent transition can only make the
// cached value fresher than the key promises, never staler).
func (d *Dynamic) Epoch() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.epoch
}

// RebuildInProgress reports whether a Rebuild is currently preprocessing in
// the background. Queries remain exact (and non-blocking) throughout.
func (d *Dynamic) RebuildInProgress() bool {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.rebuilding
}

// deltaColumn returns δ_u = H'(:,u) − H(:,u) as a dense vector: the column
// of H touched by node u's row change, since column u of H is
// e_u − (1−c)·(row u of Ã)ᵀ.
func (d *Dynamic) deltaColumn(u int) []float64 {
	delta := make([]float64, d.p.N)
	scatter := func(dst []int, w []float64, sign float64) {
		var total float64
		for _, x := range w {
			total += x
		}
		if total == 0 {
			return
		}
		for k, v := range dst {
			delta[v] += sign * -(1 - d.p.C) * w[k] / total
		}
	}
	cd, cw := d.curRowLocked(u)
	scatter(cd, cw, 1)
	bd, bw := d.base.Out(u)
	scatter(bd, bw, -1)
	return delta
}

// refreshWoodbury rebuilds the capacitance matrix for the current dirty
// set, solving H⁻¹W columns only for nodes whose column is not already in
// the per-node cache — the per-batch cost is O(new dirty nodes) solves
// plus the k×k capacitance assembly, not O(k) solves. Cancellation is
// checked between the column solves; a cancelled refresh leaves the batch
// cache invalid so the next query redoes it (columns solved before the
// cancellation stay cached).
func (d *Dynamic) refreshWoodbury(ctx context.Context) error {
	defer obsv.FromContext(ctx).Start(obsv.SpanWoodburyRefresh).Stop()
	k := len(d.dirty)
	if d.hwByNode == nil {
		d.hwByNode = make(map[int][]float64, k)
	}
	d.hw = make([][]float64, k)
	ws := d.p.AcquireWorkspace()
	for i, u := range d.dirty {
		if col, ok := d.hwByNode[u]; ok {
			d.hw[i] = col
			continue
		}
		col := make([]float64, d.p.N)
		if err := d.p.solveToCtx(ctx, col, d.deltaColumn(u), ws); err != nil {
			d.p.ReleaseWorkspace(ws)
			d.hw = nil
			return err
		}
		d.hwByNode[u] = col
		d.hw[i] = col
	}
	d.p.ReleaseWorkspace(ws)
	cap := dense.Identity(k)
	for i, u := range d.dirty {
		for j := 0; j < k; j++ {
			cap.Data[i*k+j] += d.hw[j][u]
		}
	}
	inv, err := dense.Inverse(cap)
	if err != nil {
		d.hw = nil
		return fmt.Errorf("core: singular Woodbury capacitance matrix (the update may make H singular): %w", err)
	}
	d.capMat = inv
	return nil
}

// QueryDist computes exact RWR scores on the *current* graph for an
// arbitrary starting distribution, correcting the preprocessed solution
// for all pending updates.
func (d *Dynamic) QueryDist(q []float64) ([]float64, error) {
	return d.QueryDistCtx(context.Background(), q)
}

// QueryDistCtx is QueryDist honoring cancellation and deadlines on ctx,
// checked between the block-elimination stages and between the Woodbury
// correction terms.
func (d *Dynamic) QueryDistCtx(ctx context.Context, q []float64) ([]float64, error) {
	// Ensure the Woodbury cache exists, then answer under the read lock so
	// queries run in parallel. A concurrent update between the lock
	// transitions invalidates the cache again, so loop until it is seen
	// valid under the read lock.
	for {
		d.mu.RLock()
		if d.capMat != nil || len(d.dirty) == 0 {
			defer d.mu.RUnlock()
			return d.queryDistLocked(ctx, q)
		}
		d.mu.RUnlock()
		d.mu.Lock()
		if d.capMat == nil && len(d.dirty) > 0 {
			if err := d.refreshWoodbury(ctx); err != nil {
				d.mu.Unlock()
				return nil, err
			}
		}
		d.mu.Unlock()
	}
}

func (d *Dynamic) queryDistLocked(ctx context.Context, q []float64) ([]float64, error) {
	if len(q) != d.p.N {
		return nil, fmt.Errorf("core: starting vector length %d, want %d", len(q), d.p.N)
	}
	for i, v := range q {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: starting vector entry %d is %g; must be non-negative", i, v)
		}
	}
	x := make([]float64, d.p.N)
	ws := d.p.AcquireWorkspace()
	err := d.p.solveToCtx(ctx, x, q, ws)
	d.p.ReleaseWorkspace(ws)
	if err != nil {
		return nil, err
	}
	k := len(d.dirty)
	if k > 0 {
		// α = capMat · (Eᵀ x); r = x − (H⁻¹W) α. The cache was built by
		// QueryDistCtx before taking the read lock.
		sw := obsv.FromContext(ctx).Start(obsv.SpanWoodburyTerms)
		y := make([]float64, k)
		for i, u := range d.dirty {
			y[i] = x[u]
		}
		alpha := d.capMat.MulVec(y)
		for i := range d.hw {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			a := alpha[i]
			if a == 0 {
				continue
			}
			col := d.hw[i]
			for node := range x {
				x[node] -= a * col[node]
			}
		}
		sw.Stop()
	}
	for i := range x {
		x[i] *= d.p.C
	}
	return x, nil
}

// Query computes exact RWR scores on the current graph for a single seed.
func (d *Dynamic) Query(seed int) ([]float64, error) {
	return d.QueryCtx(context.Background(), seed)
}

// QueryCtx is Query honoring cancellation and deadlines on ctx.
func (d *Dynamic) QueryCtx(ctx context.Context, seed int) ([]float64, error) {
	d.mu.RLock()
	n := d.p.N
	d.mu.RUnlock()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("core: seed %d out of range [0,%d)", seed, n)
	}
	q := make([]float64, n)
	q[seed] = 1
	return d.QueryDistCtx(ctx, q)
}

// QueryBatch computes exact RWR vectors for many seeds on the current
// graph; results are indexed like seeds.
func (d *Dynamic) QueryBatch(seeds []int, workers int) ([][]float64, error) {
	return d.QueryBatchCtx(context.Background(), seeds, workers)
}

// QueryBatchCtx is QueryBatch honoring cancellation and deadlines on ctx.
// With no pending updates it runs the blocked multi-RHS solver (one factor
// traversal per chunk of seeds, bit-identical to per-seed Query); with
// pending updates it falls back to per-seed Woodbury-corrected queries,
// since the rank-k correction is per-vector anyway.
func (d *Dynamic) QueryBatchCtx(ctx context.Context, seeds []int, workers int) ([][]float64, error) {
	d.mu.RLock()
	p, clean := d.p, len(d.dirty) == 0
	d.mu.RUnlock()
	if clean {
		// p is immutable, so the batch is answered consistently from the
		// state captured above even if updates or a rebuild swap land
		// mid-batch (the same guarantee per-seed queries give: results
		// reflect the graph as of when the query began).
		return p.QueryBatchCtx(ctx, seeds, workers)
	}
	out := make([][]float64, len(seeds))
	for i, s := range seeds {
		r, err := d.QueryCtx(ctx, s)
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}
