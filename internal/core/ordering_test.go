package core

import (
	"context"
	"math"
	"math/rand"
	"strings"
	"testing"

	"bear/internal/graph"
	"bear/internal/graph/gen"
	"bear/internal/ordering"
	"bear/internal/sparse"
)

// orderingTestGraphs are the graphs the per-engine correctness tests
// sweep: one hub-and-spoke graph BEAR targets and one locally-clustered
// one where the engines disagree most about the partition.
func orderingTestGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"rmat":    gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 21)),
		"caveman": gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 6, Size: 14, PIntra: 0.3, Hubs: 4, HubDeg: 18, Seed: 22}),
	}
}

// TestPreprocessAllOrderingsMatchOracle: the RWR answer is a property of
// the graph, not the ordering, so every engine's index must agree with
// the dense LU oracle on H to solver precision.
func TestPreprocessAllOrderingsMatchOracle(t *testing.T) {
	for gname, g := range orderingTestGraphs() {
		f, err := sparse.LU(g.HMatrixCSC(DefaultC, false))
		if err != nil {
			t.Fatalf("%s: oracle LU: %v", gname, err)
		}
		for _, eng := range ordering.Builtin() {
			t.Run(gname+"/"+eng, func(t *testing.T) {
				p, err := Preprocess(g, Options{K: 2, Ordering: eng})
				if err != nil {
					t.Fatalf("Preprocess: %v", err)
				}
				if p.Stats.Ordering != eng {
					t.Errorf("Stats.Ordering = %q, want %q", p.Stats.Ordering, eng)
				}
				for _, seed := range []int{0, 3, g.N() - 1} {
					got, err := p.Query(seed)
					if err != nil {
						t.Fatalf("Query(%d): %v", seed, err)
					}
					want := make([]float64, g.N())
					want[seed] = DefaultC
					if err := f.Solve(want); err != nil {
						t.Fatalf("oracle solve: %v", err)
					}
					for i := range got {
						if math.Abs(got[i]-want[i]) > 1e-9 {
							t.Fatalf("seed %d node %d: index %g, oracle %g", seed, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestPreprocessUnknownOrderingErrors: a typo'd engine name must fail
// preprocessing loudly, naming the known set, not silently fall back.
func TestPreprocessUnknownOrderingErrors(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 23)
	if _, err := Preprocess(g, Options{Ordering: "no-such-engine"}); err == nil {
		t.Fatal("Preprocess accepted an unknown ordering")
	} else if !strings.Contains(err.Error(), "no-such-engine") {
		t.Fatalf("error %q does not name the unknown engine", err)
	}
}

// TestIncrementalRebuildAllOrderings: the dirty-block path reuses the
// retained partition verbatim, so it must work — and stay consistent
// with a fresh preprocessing of the updated graph — under every
// built-in engine, not just SlashBurn.
func TestIncrementalRebuildAllOrderings(t *testing.T) {
	for _, eng := range ordering.Builtin() {
		t.Run(eng, func(t *testing.T) {
			rng := rand.New(rand.NewSource(24))
			d, err := NewDynamic(gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 21)), Options{K: 2, Ordering: eng})
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			applyEligibleChurn(t, rng, d, 0.03)
			rep, err := d.RebuildCtx(context.Background(), RebuildIncremental)
			if err != nil {
				t.Fatalf("incremental rebuild: %v", err)
			}
			if rep.Mode != RebuildIncremental || rep.FallbackReason != "" {
				t.Fatalf("mode=%s fallback=%q, want incremental with no fallback", rep.Mode, rep.FallbackReason)
			}
			seed := 7 % d.Precomputed().N
			got, err := d.Query(seed)
			if err != nil {
				t.Fatalf("query after rebuild: %v", err)
			}
			if diff := maxAbsDiff(got, freshSolve(t, d.Graph(), seed)); diff > 1e-9 {
				t.Fatalf("incremental rebuild under %s drifted %g from fresh preprocess", eng, diff)
			}
		})
	}
}

// TestSnapshotOrderingRoundTrip: selecting a non-default engine switches
// the snapshot to the v3 format, which must restore the ordering name
// and answer queries bit-identically.
func TestSnapshotOrderingRoundTrip(t *testing.T) {
	for _, eng := range ordering.Builtin() {
		if eng == ordering.Default {
			continue
		}
		t.Run(eng, func(t *testing.T) {
			d, err := NewDynamic(gen.RMAT(gen.NewRMATPul(150, 900, 0.7, 25)), Options{K: 2, Ordering: eng})
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			if err := d.AddEdge(1, 2, 2.5); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
			var buf strings.Builder
			if err := d.SaveState(&buf); err != nil {
				t.Fatalf("SaveState: %v", err)
			}
			if got := buf.String()[:8]; got != string(dynMagic3[:]) {
				t.Fatalf("non-default ordering saved with magic %q, want %q", got, dynMagic3)
			}
			d2, err := LoadDynamic(strings.NewReader(buf.String()))
			if err != nil {
				t.Fatalf("LoadDynamic: %v", err)
			}
			if got := d2.Options().Ordering; got != eng {
				t.Fatalf("restored Ordering = %q, want %q", got, eng)
			}
			for _, seed := range []int{0, 5} {
				a, err := d.Query(seed)
				if err != nil {
					t.Fatalf("original query: %v", err)
				}
				b, err := d2.Query(seed)
				if err != nil {
					t.Fatalf("restored query: %v", err)
				}
				if diff := maxAbsDiff(a, b); diff != 0 {
					t.Fatalf("restored query(%d) differs by %g, want bit-identical", seed, diff)
				}
			}
		})
	}
}

// TestSnapshotDefaultOrderingKeepsOldFormat: default-ordering snapshots
// must stay byte-compatible with the pre-ordering-engine formats so old
// readers and committed fixtures keep working; old files restore with
// the ordering unset (= SlashBurn).
func TestSnapshotDefaultOrderingKeepsOldFormat(t *testing.T) {
	d, err := NewDynamic(gen.ErdosRenyi(60, 300, 26), Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	var buf strings.Builder
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	if got := buf.String()[:8]; got == string(dynMagic3[:]) {
		t.Fatal("default ordering saved in the v3 format; old readers would refuse it")
	}
	d2, err := LoadDynamic(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("LoadDynamic: %v", err)
	}
	if got := d2.Options().Ordering; got != "" {
		t.Fatalf("default-format restore set Ordering = %q, want empty (SlashBurn)", got)
	}
}

// TestSnapshotUnknownOrderingRefused: a snapshot naming an engine this
// build does not register must fail to load with an explicit error —
// querying it with the wrong ordering's index would be silently wrong.
// The name is injected by mutating the in-memory options before saving,
// standing in for a file written by a build with an extra engine.
func TestSnapshotUnknownOrderingRefused(t *testing.T) {
	d, err := NewDynamic(gen.ErdosRenyi(60, 300, 27), Options{K: 2, Ordering: "mindeg"})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	d.opts.Ordering = "engine-from-the-future"
	var buf strings.Builder
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	if _, err := LoadDynamic(strings.NewReader(buf.String())); err == nil {
		t.Fatal("LoadDynamic accepted a snapshot naming an unknown ordering")
	} else if !strings.Contains(err.Error(), "engine-from-the-future") {
		t.Fatalf("error %q does not name the unknown engine", err)
	}
	if _, err := RestoreDynamic(d.base, d.base, d.Precomputed(), nil, Options{Ordering: "engine-from-the-future"}); err == nil {
		t.Fatal("RestoreDynamic accepted an unknown ordering")
	}
}

// noReuseOrdering is a registered test engine (SlashBurn's ordering
// under another name) that declares its partitions non-reusable,
// exercising the ordering_no_reuse rebuild fallback.
type noReuseOrdering struct{ ordering.SlashBurn }

func (noReuseOrdering) Name() string            { return "test-noreuse" }
func (noReuseOrdering) ReusablePartition() bool { return false }

// TestRebuildFallbackOrderingNoReuse: an engine that opts out of
// partition reuse must push explicit incremental rebuilds to a refusal
// and auto rebuilds to a full pass, both naming ordering_no_reuse.
func TestRebuildFallbackOrderingNoReuse(t *testing.T) {
	if err := ordering.Register(noReuseOrdering{}); err != nil && !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("Register: %v", err)
	}
	d, err := NewDynamic(gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 28)), Options{K: 2, Ordering: "test-noreuse"})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	rng := rand.New(rand.NewSource(29))
	applyEligibleChurn(t, rng, d, 0.02)
	if _, err := d.RebuildCtx(context.Background(), RebuildIncremental); err == nil {
		t.Fatal("explicit incremental rebuild did not refuse")
	} else if !strings.Contains(err.Error(), FallbackOrderingReuse) {
		t.Fatalf("refusal %q does not name %q", err, FallbackOrderingReuse)
	}
	rep, err := d.RebuildCtx(context.Background(), RebuildAuto)
	if err != nil {
		t.Fatalf("auto rebuild: %v", err)
	}
	if rep.Mode != RebuildFull || rep.FallbackReason != FallbackOrderingReuse {
		t.Fatalf("auto rebuild ran %s with fallback %q, want full with %q",
			rep.Mode, rep.FallbackReason, FallbackOrderingReuse)
	}
}
