package core

import "fmt"

// Workspace holds the scratch vectors one block-elimination solve needs:
// one full-length buffer for the permuted right-hand side, two spoke-length
// (n₁) buffers ping-ponged through the triangular products, and two
// hub-length (n₂) buffers for the Schur-complement stage. A Workspace is
// bound to the Precomputed it was acquired from and is not safe for
// concurrent use; acquire one per goroutine.
//
// Steady-state queries routed through a Workspace perform zero heap
// allocations: every intermediate of Algorithm 2 lands in one of these
// buffers, and the *To query variants write the result into caller-owned
// memory.
type Workspace struct {
	full     []float64 // n: permuted right-hand side (b₁ ‖ b₂)
	s1a, s1b []float64 // n₁ scratch, ping-ponged through triangular products
	s2a, s2b []float64 // n₂ scratch for the Schur-complement stage

	// Refinement scratch (SolveRefinedCtx): permuted RHS, permuted iterate,
	// and residual. Grown lazily on the first refined solve, so plain
	// queries never pay for them; once grown they are pooled with the rest.
	rq, rz, rr []float64
}

// ensureRefine sizes the refinement buffers for an n-dimensional system.
// Idempotent after the first call, so the steady-state refined path stays
// allocation-free.
func (ws *Workspace) ensureRefine(n int) {
	if len(ws.rq) != n {
		ws.rq = make([]float64, n)
		ws.rz = make([]float64, n)
		ws.rr = make([]float64, n)
	}
}

// AcquireWorkspace returns a workspace sized for p, reusing a pooled one
// when available. Release it with ReleaseWorkspace when done; a workspace
// may be reused across many queries (one per batch worker is the intended
// pattern).
func (p *Precomputed) AcquireWorkspace() *Workspace {
	if ws, ok := p.wsPool.Get().(*Workspace); ok {
		return ws
	}
	return &Workspace{
		full: make([]float64, p.N),
		s1a:  make([]float64, p.N1),
		s1b:  make([]float64, p.N1),
		s2a:  make([]float64, p.N2),
		s2b:  make([]float64, p.N2),
	}
}

// ReleaseWorkspace returns ws to p's pool for reuse. ws must have been
// acquired from p and must not be used after release.
func (p *Precomputed) ReleaseWorkspace(ws *Workspace) {
	if ws == nil {
		return
	}
	if len(ws.full) != p.N || len(ws.s1a) != p.N1 || len(ws.s2a) != p.N2 {
		panic(fmt.Sprintf("core: workspace sized %d/%d/%d released to a %d/%d/%d solver",
			len(ws.full), len(ws.s1a), len(ws.s2a), p.N, p.N1, p.N2))
	}
	p.wsPool.Put(ws)
}
