package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"bear/internal/graph"
	"bear/internal/obsv"
	"bear/internal/ordering"
	"bear/internal/sparse"
)

// ErrIncrementalNotApplicable is returned by RebuildCtx when the caller
// demanded RebuildIncremental but the pending updates disqualify it; the
// wrapped message names the reason (one of the Fallback* constants). Use
// RebuildAuto to fall back to a full pass instead of erroring.
var ErrIncrementalNotApplicable = errors.New("incremental rebuild not applicable")

// RebuildMode selects how Rebuild folds pending updates into the
// precomputed matrices.
type RebuildMode string

const (
	// RebuildAuto picks incrementally when the pending updates qualify
	// (spoke-only, within the churn and fill budgets) and falls back to a
	// full pass otherwise, recording the reason.
	RebuildAuto RebuildMode = "auto"
	// RebuildFull always re-runs Algorithm 1 from scratch: a fresh run of
	// the configured ordering engine, every block re-factored. Restores
	// ordering quality.
	RebuildFull RebuildMode = "full"
	// RebuildIncremental requires the dirty-block path and errors if the
	// pending updates disqualify it (use RebuildAuto to fall back instead).
	RebuildIncremental RebuildMode = "incremental"
)

// ParseRebuildMode validates a mode string; the empty string selects
// RebuildAuto, matching an absent ?mode= query parameter.
func ParseRebuildMode(s string) (RebuildMode, error) {
	switch m := RebuildMode(s); m {
	case "":
		return RebuildAuto, nil
	case RebuildAuto, RebuildFull, RebuildIncremental:
		return m, nil
	default:
		return "", fmt.Errorf("core: rebuild mode %q must be auto, full, or incremental", s)
	}
}

// Fallback reasons recorded in RebuildReport.FallbackReason when
// RebuildAuto resolves to a full pass. The set is closed (it feeds a
// bounded metric label); add here and to OPERATIONS.md together.
const (
	// FallbackNoPending: nothing is dirty, so there is no dirty-block work
	// to scope; a requested rebuild runs the full pass (which also
	// refreshes the ordering).
	FallbackNoPending = "no_pending"
	// FallbackNoCache: the Schur-assembly cache is absent — the index was
	// loaded from disk (the cache is derived state and never serialized)
	// or preprocessed without Options.RetainRebuildCache.
	FallbackNoCache = "no_cache"
	// FallbackDropTol: BEAR-Approx indexes drop factor entries after the
	// Schur assembly, so the retained intermediates no longer match the
	// stored factors entry-for-entry.
	FallbackDropTol = "drop_tol"
	// FallbackLaplacian: under the symmetric normalization a row change
	// alters the degrees its neighbors normalize by, so an update is no
	// longer confined to one column of H.
	FallbackLaplacian = "laplacian"
	// FallbackHubDirty: a dirty node is a hub, so H₁₂/H₂₂ — not just one
	// diagonal block — changed.
	FallbackHubDirty = "hub_dirty"
	// FallbackCrossBlock: a dirty spoke gained an edge into a different
	// block, which would put a nonzero outside the block diagonal of H₁₁
	// under the reused partition.
	FallbackCrossBlock = "cross_block"
	// FallbackChurn: the dirty fraction exceeds RebuildPolicy
	// .MaxChurnFraction; a full pass is cheaper or the ordering is stale.
	FallbackChurn = "churn"
	// FallbackFillRatio: accumulated incremental rebuilds inflated the
	// factor nonzeros past RebuildPolicy.MaxFillRatio times the last full
	// build — the reused ordering has degraded, so re-run the engine.
	FallbackFillRatio = "fill_ratio"
	// FallbackOrderingReuse: the configured ordering engine declares its
	// partitions non-reusable across graph mutations (ordering.NonReusable),
	// so the dirty-block path — which reuses the retained partition
	// verbatim — is unsound for it. All built-in engines are reusable.
	FallbackOrderingReuse = "ordering_no_reuse"
)

// RebuildPolicy bounds when RebuildAuto takes the incremental path.
type RebuildPolicy struct {
	// MaxChurnFraction is the largest dirty-node fraction (dirty / n)
	// rebuilt incrementally; above it auto falls back to a full pass.
	// Zero selects the default 0.10 — the churn sweep in BENCH_rebuild.json
	// shows incremental winning comfortably below that.
	MaxChurnFraction float64
	// MaxFillRatio is the largest factor-nonzero inflation (current
	// precomputed NNZ over the last full build's) tolerated before auto
	// forces a full pass to refresh the ordering. Zero selects 2.0.
	MaxFillRatio float64
}

func (p RebuildPolicy) withDefaults() RebuildPolicy {
	if p.MaxChurnFraction == 0 {
		p.MaxChurnFraction = 0.10
	}
	if p.MaxFillRatio == 0 {
		p.MaxFillRatio = 2.0
	}
	return p
}

// RebuildReport describes one completed rebuild: which path ran, why auto
// fell back (if it did), and the per-stage split. Incremental rebuilds
// spend nothing on the ordering and time only the dirty blocks in the LU
// stage; full rebuilds mirror the Algorithm 1 stage split.
type RebuildReport struct {
	// Requested is the mode the caller asked for; Mode is the path that
	// actually ran (they differ only when auto fell back).
	Requested RebuildMode
	Mode      RebuildMode
	// FallbackReason is one of the Fallback* constants when Requested was
	// auto and Mode is full; empty otherwise.
	FallbackReason string

	DirtyNodes       int
	BlocksRefactored int
	TotalBlocks      int

	TimeOrdering      time.Duration
	TimeBlockLU       time.Duration
	TimeSplice        time.Duration
	TimeSchurAssembly time.Duration
	TimeSchurFactor   time.Duration
	TimeTotal         time.Duration
}

// rebuildCache holds the Schur-assembly intermediates retained for the
// incremental path; see Options.RetainRebuildCache.
type rebuildCache struct {
	t2  *sparse.CSR // U₁⁻¹L₁⁻¹H₁₂, n₁×n₂, final hub order
	h22 *sparse.CSR // n₂×n₂, final hub order
}

// incrPlan is the under-lock eligibility analysis handed to the
// out-of-lock incremental pass: which diagonal blocks to re-factor and
// which spoke columns (internal positions) changed.
type incrPlan struct {
	blocks   []int // dirty block indices, ascending
	dirtyPos []int // dirty spoke positions, ascending
}

// SetRebuildPolicy replaces the auto-mode thresholds; zero fields select
// the defaults. The policy is serving configuration, not index state — it
// is not serialized and resets to defaults on load.
func (d *Dynamic) SetRebuildPolicy(p RebuildPolicy) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.policy = p
}

// RebuildPolicy returns the auto-mode thresholds in effect (defaults
// resolved).
func (d *Dynamic) RebuildPolicy() RebuildPolicy {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.policy.withDefaults()
}

// LastRebuild returns the report of the most recently completed rebuild,
// if any — the source for the bear_rebuild_* metrics.
func (d *Dynamic) LastRebuild() (RebuildReport, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.lastRebuild == nil {
		return RebuildReport{}, false
	}
	return *d.lastRebuild, true
}

// Rebuild folds all accepted updates into fresh precomputed matrices in
// auto mode, resetting the per-query update cost to zero. It is
// RebuildCtx with a background context, discarding the report.
func (d *Dynamic) Rebuild() error {
	_, err := d.RebuildCtx(context.Background(), RebuildAuto)
	return err
}

// RebuildCtx rebuilds the precomputed matrices in the requested mode.
//
// The expensive work runs outside the lock against an immutable snapshot
// of the current graph, so queries and updates keep flowing while it
// runs: queries are answered exactly from the old matrices
// (Woodbury-corrected), and nodes updated during the rebuild window
// simply stay dirty — relative to the new base — after the atomic swap.
// Only one rebuild may run at a time; concurrent calls fail fast with
// ErrRebuildInProgress.
//
// RebuildIncremental re-factors only the diagonal blocks of H₁₁ that
// contain dirty nodes (Lemma 1 localizes a spoke column change to its own
// block), splices the fresh factors into L₁⁻¹/U₁⁻¹, patches the dirty
// blocks' contributions to the Schur complement through the retained
// U₁⁻¹L₁⁻¹H₁₂ cache, and re-factors S — bounding rebuild cost by churn,
// not graph size, at the price of reusing the existing ordering.
// Query results are bit-identical to a full re-factorization under that
// same ordering. The mode errors when the pending updates disqualify it;
// RebuildAuto falls back to a full pass instead and records the reason in
// the report. Cancellation on ctx aborts between stages (and between
// blocks) with the old state intact.
func (d *Dynamic) RebuildCtx(ctx context.Context, mode RebuildMode) (RebuildReport, error) {
	switch mode {
	case RebuildAuto, RebuildFull, RebuildIncremental:
	case "":
		mode = RebuildAuto
	default:
		return RebuildReport{}, fmt.Errorf("core: rebuild mode %q must be auto, full, or incremental", mode)
	}
	d.mu.Lock()
	if d.rebuilding {
		d.mu.Unlock()
		return RebuildReport{}, ErrRebuildInProgress
	}
	rep := RebuildReport{
		Requested:   mode,
		Mode:        RebuildFull,
		DirtyNodes:  len(d.dirty),
		TotalBlocks: len(d.p.Blocks),
	}
	var plan *incrPlan
	if mode != RebuildFull {
		pl, reason := d.incrementalPlanLocked()
		switch {
		case reason == "":
			rep.Mode = RebuildIncremental
			plan = pl
		case mode == RebuildIncremental && reason == FallbackNoPending:
			// Nothing changed: the incremental rebuild of an empty dirty
			// set is a no-op, not a hidden full pass.
			rep.Mode = RebuildIncremental
			d.lastRebuild = &rep
			d.mu.Unlock()
			return rep, nil
		case mode == RebuildIncremental:
			d.mu.Unlock()
			return RebuildReport{}, fmt.Errorf("core: %w: %s", ErrIncrementalNotApplicable, reason)
		default:
			rep.FallbackReason = reason
		}
	}
	d.rebuilding = true
	d.sinceSnap = nil
	snap := d.materializeLocked() // immutable; updates swap in a fresh cache
	oldP, opts := d.p, d.opts
	d.mu.Unlock()

	start := time.Now()
	var p *Precomputed
	var err error
	if plan != nil {
		p, err = rebuildIncremental(ctx, snap, oldP, opts, plan, &rep)
	} else {
		p, err = PreprocessCtx(ctx, snap, opts)
		if err == nil {
			rep.TimeOrdering = p.Stats.TimeOrdering
			rep.TimeBlockLU = p.Stats.TimeLU1
			rep.TimeSchurAssembly = p.Stats.TimeSchur
			rep.TimeSchurFactor = p.Stats.TimeLU2
			rep.BlocksRefactored = p.Stats.NumBlocks
			rep.TotalBlocks = p.Stats.NumBlocks
		}
	}
	rep.TimeTotal = time.Since(start)
	if err == nil && plan != nil {
		if tr := obsv.FromContext(ctx); tr != nil {
			tr.Add(obsv.SpanBlockLU, rep.TimeBlockLU)
			tr.Add(obsv.SpanBlockSplice, rep.TimeSplice)
			tr.Add(obsv.SpanSchurAssembly, rep.TimeSchurAssembly)
			tr.Add(obsv.SpanSchurFactor, rep.TimeSchurFactor)
		}
	}

	d.mu.Lock()
	defer d.mu.Unlock()
	d.rebuilding = false
	if err != nil {
		d.sinceSnap = nil
		return RebuildReport{}, err
	}
	d.base, d.p = snap, p
	d.dirty = d.sinceSnap // updates accepted while the rebuild ran
	d.sinceSnap = nil
	// Shrink the overlay to the rows still differing from the new base —
	// exactly the window updates. Overlay rows are complete replacements,
	// so they stay valid against the new base verbatim, and an existing
	// curCache still describes the current graph: the swap changed which
	// base it is expressed against, not its contents.
	if len(d.dirty) == 0 {
		d.overlay = nil
	} else {
		kept := make(map[int]nodeRow, len(d.dirty))
		for _, u := range d.dirty {
			kept[u] = d.overlay[u]
		}
		d.overlay = kept
	}
	d.capMat, d.hw = nil, nil
	d.hwByNode = nil // solved against the old base; useless after the swap
	if rep.Mode == RebuildFull {
		d.lastFullNNZ = p.NNZ()
	}
	d.lastRebuild = &rep
	// The swap changes which Precomputed answers queries (and resets the
	// Woodbury correction), so cached results must not carry across it even
	// though the graph itself did not change at this instant.
	d.epoch++
	return rep, nil
}

// incrementalPlanLocked decides whether the pending updates qualify for
// the dirty-block path, returning the plan or the fallback reason. The
// caller must hold the write lock.
func (d *Dynamic) incrementalPlanLocked() (*incrPlan, string) {
	p := d.p
	if len(d.dirty) == 0 {
		return nil, FallbackNoPending
	}
	if d.opts.DropTol > 0 {
		return nil, FallbackDropTol
	}
	if d.opts.Laplacian {
		return nil, FallbackLaplacian
	}
	if p.incr == nil {
		return nil, FallbackNoCache
	}
	if !ordering.Reusable(d.opts.Ordering) {
		return nil, FallbackOrderingReuse
	}
	pol := d.policy.withDefaults()
	if float64(len(d.dirty)) > pol.MaxChurnFraction*float64(p.N) {
		return nil, FallbackChurn
	}
	if d.lastFullNNZ > 0 && float64(p.NNZ()) > pol.MaxFillRatio*float64(d.lastFullNNZ) {
		return nil, FallbackFillRatio
	}
	blockSet := make(map[int]bool)
	dirtyPos := make([]int, 0, len(d.dirty))
	for _, u := range d.dirty {
		pos := p.Perm[u]
		if pos >= p.N1 {
			return nil, FallbackHubDirty
		}
		b := p.blockOfPos(pos)
		// Every current destination must be a hub or a spoke of the same
		// block: an edge into another block would put a nonzero outside
		// the block diagonal of H₁₁ under the reused partition. (Clean
		// rows respect this by construction — the partition came from the
		// base graph, and every prior incremental rebuild enforced it.)
		dst, _ := d.curRowLocked(u)
		for _, v := range dst {
			if pv := p.Perm[v]; pv < p.N1 && p.blockOfPos(pv) != b {
				return nil, FallbackCrossBlock
			}
		}
		blockSet[b] = true
		dirtyPos = append(dirtyPos, pos)
	}
	sort.Ints(dirtyPos)
	blocks := make([]int, 0, len(blockSet))
	for b := range blockSet {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	return &incrPlan{blocks: blocks, dirtyPos: dirtyPos}, ""
}

// rebuildIncremental runs the dirty-block rebuild against immutable
// inputs: the snapshot graph, the old Precomputed, and the plan. It never
// mutates old — concurrent queries keep reading it — and returns a new
// Precomputed whose query results are bit-identical to a full
// re-factorization of the snapshot under the reused ordering.
func rebuildIncremental(ctx context.Context, snap *graph.Graph, old *Precomputed, opts Options, plan *incrPlan, rep *RebuildReport) (*Precomputed, error) {
	opts = opts.withDefaults()
	workers := opts.Workers
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		workers = 1
	}

	// Stage 1 (Algorithm 1 line 5, dirty blocks only): rebuild each dirty
	// diagonal block of H₁₁ from the snapshot rows and re-factor it with
	// the same per-block LU + triangular inversion the full pass uses.
	tlu := time.Now()
	type blockFactors struct {
		li, ui *sparse.CSR
		err    error
	}
	factors := make([]blockFactors, len(plan.blocks))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, b := range plan.blocks {
		wg.Add(1)
		go func(i, b int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				factors[i].err = err
				return
			}
			lo, hi := old.BlockOffsets[b], old.BlockOffsets[b+1]
			blk := buildH11Block(snap, old, lo, hi)
			f, err := sparse.LU(blk)
			if err != nil {
				factors[i].err = fmt.Errorf("block %d: %w", b, err)
				return
			}
			li, err := sparse.InverseLower(f.L, true)
			if err != nil {
				factors[i].err = fmt.Errorf("block %d: %w", b, err)
				return
			}
			ui, err := sparse.InverseUpper(f.U)
			if err != nil {
				factors[i].err = fmt.Errorf("block %d: %w", b, err)
				return
			}
			factors[i].li = li.ToCSR()
			factors[i].ui = ui.ToCSR()
		}(i, b)
	}
	wg.Wait()
	for _, f := range factors {
		if f.err != nil {
			if ctx.Err() != nil {
				return nil, fmt.Errorf("core: incremental rebuild aborted during block LU: %w", f.err)
			}
			return nil, fmt.Errorf("core: incremental rebuild re-factoring H11: %w", f.err)
		}
	}
	rep.TimeBlockLU = time.Since(tlu)
	rep.BlocksRefactored = len(plan.blocks)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: incremental rebuild aborted after block LU: %w", err)
	}

	// Stage 2: splice the fresh block factors into L₁⁻¹/U₁⁻¹ (block-row
	// range surgery — rows outside the dirty blocks keep their bits), and
	// replace the dirty columns of H₂₁ (the hub rows of the changed
	// columns of H). The retained exact H, when present, gets the same
	// column replacement so Residual and refinement stay truthful.
	tsplice := time.Now()
	lSplices := make([]sparse.RowSplice, len(plan.blocks))
	uSplices := make([]sparse.RowSplice, len(plan.blocks))
	for i, b := range plan.blocks {
		lo := old.BlockOffsets[b]
		lSplices[i] = sparse.RowSplice{Lo: lo, ColOffset: lo, Block: factors[i].li}
		uSplices[i] = sparse.RowSplice{Lo: lo, ColOffset: lo, Block: factors[i].ui}
	}
	l1inv := old.L1Inv.SpliceRows(lSplices)
	u1inv := old.U1Inv.SpliceRows(uSplices)

	var h21coords, hcoords []sparse.Coord
	for _, pos := range plan.dirtyPos {
		u := old.InvPerm[pos]
		dst, w := snap.Out(u)
		var total float64
		for _, x := range w {
			total += x
		}
		diag := 1.0
		for k, v := range dst {
			// Reproduce HMatrixCSC's arithmetic exactly, including the
			// explicit -0 entries of zero-weight rows (they are structural
			// nonzeros to the LU): normalize, then scale by -(1-c).
			var wn float64
			if total > 0 {
				wn = w[k] / total
			}
			val := wn * -(1 - old.C)
			pv := old.Perm[v]
			if pv == pos {
				diag += val
			} else if old.H != nil {
				hcoords = append(hcoords, sparse.Coord{Row: pv, Col: pos, Val: val})
			}
			if pv >= old.N1 && pv != pos {
				h21coords = append(h21coords, sparse.Coord{Row: pv - old.N1, Col: pos, Val: val})
			}
		}
		if old.H != nil {
			hcoords = append(hcoords, sparse.Coord{Row: pos, Col: pos, Val: diag})
		}
	}
	h21 := old.H21.ReplaceColumns(plan.dirtyPos, h21coords)
	var hFull *sparse.CSR
	if old.H != nil {
		hFull = old.H.ReplaceColumns(plan.dirtyPos, hcoords)
	}
	rep.TimeSplice = time.Since(tsplice)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: incremental rebuild aborted after splice: %w", err)
	}

	// Stage 3 (line 6, patched): only the dirty blocks' rows of
	// t2 = U₁⁻¹L₁⁻¹H₁₂ changed — the factors are block diagonal, so row
	// range [lo,hi) of t2 depends only on block b's factors and H₁₂ rows.
	// Recompute those rows with the fresh factors, splice them into the
	// retained cache, and re-assemble S = H₂₂ − H₂₁·t2. H₂₂ and H₁₂ carry
	// no spoke columns, so they are untouched by spoke-only churn.
	tassembly := time.Now()
	t2 := old.incr.t2
	var s *sparse.CSR
	if old.N2 > 0 {
		t2Splices := make([]sparse.RowSplice, len(plan.blocks))
		for i, b := range plan.blocks {
			lo, hi := old.BlockOffsets[b], old.BlockOffsets[b+1]
			h12b := old.H12.Submatrix(lo, hi, 0, old.N2)
			t2b := sparse.Mul(factors[i].ui, sparse.Mul(factors[i].li, h12b))
			t2Splices[i] = sparse.RowSplice{Lo: lo, ColOffset: 0, Block: t2b}
		}
		t2 = t2.SpliceRows(t2Splices)
		t3 := sparse.ParallelMul(h21, t2, workers)
		s = sparse.Sub(old.incr.h22, t3).Prune()
	} else {
		s = sparse.NewCSR(0, 0, nil)
	}
	rep.TimeSchurAssembly = time.Since(tassembly)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: incremental rebuild aborted after Schur assembly: %w", err)
	}

	// Stage 4 (line 8): re-factor S under the existing hub order. S is the
	// small dense heart of the index; a full re-factor here is still
	// O(churn)-dominated for the overall rebuild because every O(graph)
	// stage (the ordering, whole-matrix LU, full Schur products over n₁)
	// is gone.
	tfactor := time.Now()
	l2inv, u2inv, sperm, err := factorSchur(s, opts.DenseSchurCutoff)
	if err != nil {
		return nil, fmt.Errorf("core: incremental rebuild factoring Schur complement: %w", err)
	}
	rep.TimeSchurFactor = time.Since(tfactor)

	// Assemble the new Precomputed. Ordering, partition, H₁₂, and the
	// permutations are shared with the old index (immutable); everything
	// touched above is fresh.
	outDeg := append([]float64(nil), old.OutDegree...)
	for _, pos := range plan.dirtyPos {
		u := old.InvPerm[pos]
		_, w := snap.Out(u)
		var total float64
		for _, x := range w {
			total += x
		}
		outDeg[u] = total
	}
	p2 := &Precomputed{
		N: old.N, N1: old.N1, N2: old.N2, C: old.C,
		Blocks:    old.Blocks,
		Perm:      old.Perm,
		InvPerm:   old.InvPerm,
		L1Inv:     l1inv,
		U1Inv:     u1inv,
		H12:       old.H12,
		H21:       h21,
		L2Inv:     l2inv,
		U2Inv:     u2inv,
		SPerm:     sperm,
		H:         hFull,
		OutDegree: outDeg,
		incr:      &rebuildCache{t2: t2, h22: old.incr.h22},
	}
	p2.Stats = old.Stats
	p2.Stats.M = snap.M()
	p2.Stats.NNZH12H21 = old.H12.NNZ() + h21.NNZ()
	p2.Stats.NNZL1U1 = l1inv.NNZ() + u1inv.NNZ()
	p2.Stats.NNZL2U2 = l2inv.NNZ() + u2inv.NNZ()
	if hFull != nil {
		p2.Stats.NNZH = hFull.NNZ()
	}
	p2.initDerived()
	if err := p2.initKernels(opts.Kernel); err != nil {
		return nil, err
	}
	return p2, nil
}

// buildH11Block reconstructs diagonal block [lo,hi) of the permuted H₁₁
// from the snapshot graph in CSC form, bit-identical to extracting it
// from snap.HMatrixCSC(c, false).Permute(perm, perm): column Perm[u] of H
// is e_u − (1−c)·(row u of Ã)ᵀ, and for an eligible block every spoke
// destination of every row lands inside the block (hub rows belong to
// H₂₁ and are handled by the column replacement).
func buildH11Block(snap *graph.Graph, p *Precomputed, lo, hi int) *sparse.CSC {
	nb := hi - lo
	var coords []sparse.Coord
	for pos := lo; pos < hi; pos++ {
		u := p.InvPerm[pos]
		dst, w := snap.Out(u)
		var total float64
		for _, x := range w {
			total += x
		}
		diag := 1.0
		for k, v := range dst {
			var wn float64
			if total > 0 {
				wn = w[k] / total
			}
			val := wn * -(1 - p.C)
			pv := p.Perm[v]
			if pv == pos {
				diag += val
				continue
			}
			if pv >= lo && pv < hi {
				coords = append(coords, sparse.Coord{Row: pv - lo, Col: pos - lo, Val: val})
			}
		}
		coords = append(coords, sparse.Coord{Row: pos - lo, Col: pos - lo, Val: diag})
	}
	return sparse.NewCSC(nb, nb, coords)
}
