package core

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"bear/internal/fault"
	"bear/internal/graph/gen"
)

// --- context cancellation -------------------------------------------------

func TestQueryCtxCancelled(t *testing.T) {
	g := gen.ErdosRenyi(80, 400, 11)
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.QueryCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := p.QueryDistCtx(ctx, make([]float64, p.N)); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryDistCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := p.QueryEffectiveImportanceCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryEffectiveImportanceCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	if _, err := p.QueryBatchCtx(ctx, []int{0, 1, 2}, 2); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryBatchCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	// An already-expired deadline behaves the same way.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if _, err := p.QueryCtx(dctx, 0); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("QueryCtx past deadline = %v, want context.DeadlineExceeded", err)
	}
	// A live context answers identically to the plain path.
	got, err := p.QueryCtx(context.Background(), 3)
	if err != nil {
		t.Fatalf("QueryCtx: %v", err)
	}
	want, _ := p.Query(3)
	if d := maxAbsDiff(got, want); d != 0 {
		t.Fatalf("ctx and plain query differ by %g", d)
	}
}

func TestDynamicQueryCtxCancelled(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 12)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	// Pending updates route the query through the Woodbury correction.
	for i := 0; i < 4; i++ {
		if err := d.AddEdge(i, 100+i, 1); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.QueryCtx(ctx, 0); !errors.Is(err, context.Canceled) {
		t.Fatalf("dynamic QueryCtx on cancelled ctx = %v, want context.Canceled", err)
	}
	// The cancelled refresh must not have poisoned the cache: a live
	// query still matches a fresh preprocessing pass exactly.
	got, err := d.QueryCtx(context.Background(), 0)
	if err != nil {
		t.Fatalf("QueryCtx after cancellation: %v", err)
	}
	want := freshSolve(t, d.Graph(), 0)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("post-cancellation query differs from fresh preprocess by %g", diff)
	}
}

// --- non-blocking rebuild -------------------------------------------------

func TestRebuildInProgressError(t *testing.T) {
	g := gen.ErdosRenyi(60, 300, 13)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	d.mu.Lock()
	d.rebuilding = true
	d.mu.Unlock()
	if err := d.Rebuild(); !errors.Is(err, ErrRebuildInProgress) {
		t.Fatalf("Rebuild during rebuild = %v, want ErrRebuildInProgress", err)
	}
	if !d.RebuildInProgress() {
		t.Fatal("RebuildInProgress = false while flagged")
	}
	d.mu.Lock()
	d.rebuilding = false
	d.mu.Unlock()
	if err := d.Rebuild(); err != nil {
		t.Fatalf("Rebuild after clearing flag: %v", err)
	}
}

// TestRebuildPreservesWindowUpdates drives the snapshot/swap protocol
// deterministically: updates applied while the rebuild flag is up must
// land in sinceSnap and survive the swap as the new dirty set.
func TestRebuildPreservesWindowUpdates(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 14)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.AddEdge(1, 90, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	// Simulate the rebuild window: flag up, snapshot taken.
	d.mu.Lock()
	d.rebuilding = true
	d.sinceSnap = nil
	snap := d.materializeLocked()
	d.mu.Unlock()

	// An update accepted during the window.
	if err := d.AddEdge(2, 91, 1); err != nil {
		t.Fatalf("AddEdge during window: %v", err)
	}

	p, err := Preprocess(snap, d.opts)
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	d.mu.Lock()
	d.rebuilding = false
	d.base, d.p = snap, p
	d.dirty = d.sinceSnap
	d.sinceSnap = nil
	d.capMat, d.hw = nil, nil
	d.mu.Unlock()

	if got := d.PendingNodes(); got != 1 {
		t.Fatalf("PendingNodes after swap = %d, want 1 (the window update)", got)
	}
	got, err := d.Query(2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	want := freshSolve(t, d.Graph(), 2)
	if diff := maxAbsDiff(got, want); diff > 1e-9 {
		t.Fatalf("post-swap query differs from fresh preprocess by %g", diff)
	}
}

// TestConcurrentRebuildExact hammers a Dynamic with queries and updates
// while real rebuilds run; whatever interleaving happens, the final state
// must answer queries exactly like a fresh preprocessing of the final
// graph, and queries must never error or block on the rebuild.
func TestConcurrentRebuildExact(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(300, 1800, 0.6, 15))
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	var work, readers sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)

	work.Add(1)
	go func() { // rebuild loop
		defer work.Done()
		for i := 0; i < 4; i++ {
			if err := d.Rebuild(); err != nil && !errors.Is(err, ErrRebuildInProgress) {
				errCh <- err
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		readers.Add(1)
		go func(w int) { // query loop, runs until the writers finish
			defer readers.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := d.Query(rng.Intn(300)); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	work.Add(1)
	go func() { // update loop
		defer work.Done()
		rng := rand.New(rand.NewSource(200))
		for i := 0; i < 12; i++ {
			if err := d.AddEdge(rng.Intn(300), rng.Intn(300), 1); err != nil {
				errCh <- err
				return
			}
		}
	}()

	work.Wait()
	close(stop)
	readers.Wait()
	select {
	case err := <-errCh:
		t.Fatalf("concurrent operation failed: %v", err)
	default:
	}

	for _, seed := range []int{0, 150, 299} {
		got, err := d.Query(seed)
		if err != nil {
			t.Fatalf("final Query(%d): %v", seed, err)
		}
		want := freshSolve(t, d.Graph(), seed)
		if diff := maxAbsDiff(got, want); diff > 1e-8 {
			t.Fatalf("seed %d: final state differs from fresh preprocess by %g", seed, diff)
		}
	}
}

// --- dynamic state persistence --------------------------------------------

func TestDynamicStateRoundtrip(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 6, Size: 12, PIntra: 0.4, Hubs: 3, HubDeg: 10, Seed: 16})
	d, err := NewDynamic(g, Options{K: 2, DropTol: 1e-5})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := d.AddEdge(i, 60+i, 1.5); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	d2, err := LoadDynamic(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadDynamic: %v", err)
	}
	if d2.PendingNodes() != d.PendingNodes() {
		t.Fatalf("pending %d, want %d", d2.PendingNodes(), d.PendingNodes())
	}
	for seed := 0; seed < g.N(); seed += 13 {
		a, err := d.Query(seed)
		if err != nil {
			t.Fatalf("original Query(%d): %v", seed, err)
		}
		b, err := d2.Query(seed)
		if err != nil {
			t.Fatalf("restored Query(%d): %v", seed, err)
		}
		if diff := maxAbsDiff(a, b); diff != 0 {
			t.Fatalf("seed %d: restored state differs by %g (must be bit-identical)", seed, diff)
		}
	}
	// The restored instance keeps working: rebuild folds the updates.
	if err := d2.Rebuild(); err != nil {
		t.Fatalf("Rebuild on restored state: %v", err)
	}
	if d2.PendingNodes() != 0 {
		t.Fatalf("pending after rebuild = %d", d2.PendingNodes())
	}
}

func TestDynamicStateNoPendingOmitsCur(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 17)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	d2, err := LoadDynamic(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("LoadDynamic: %v", err)
	}
	a, _ := d.Query(0)
	b, _ := d2.Query(0)
	if diff := maxAbsDiff(a, b); diff != 0 {
		t.Fatalf("clean-state roundtrip differs by %g", diff)
	}
}

func TestRestoreDynamicValidation(t *testing.T) {
	g := gen.ErdosRenyi(30, 120, 18)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	small := gen.ErdosRenyi(10, 30, 18)
	if _, err := RestoreDynamic(nil, g, p, nil, Options{}); err == nil {
		t.Fatal("expected nil-component error")
	}
	if _, err := RestoreDynamic(small, g, p, nil, Options{}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
	if _, err := RestoreDynamic(g, g, p, []int{5, 3}, Options{}); err == nil {
		t.Fatal("expected unsorted-dirty error")
	}
	if _, err := RestoreDynamic(g, g, p, []int{99}, Options{}); err == nil {
		t.Fatal("expected out-of-range dirty error")
	}
	if _, err := RestoreDynamic(g, g, p, nil, Options{}); err != nil {
		t.Fatalf("valid restore rejected: %v", err)
	}
}

// --- corruption of serialized artifacts -----------------------------------

// TestLoadRejectsEveryByteFlip asserts the CRC framing catches a flip of
// any single byte — magic, header, payload, or footer — with a loud error
// and no panic, never a partially-populated result.
func TestLoadRejectsEveryByteFlip(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 19)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	valid := buf.Bytes()
	// Every byte for small offsets (magic + header), then a stride through
	// the payload, then every footer byte.
	var offsets []int64
	for off := int64(0); off < 64 && off < int64(len(valid)); off++ {
		offsets = append(offsets, off)
	}
	for off := int64(64); off < int64(len(valid))-footerLen; off += 97 {
		offsets = append(offsets, off)
	}
	for off := int64(len(valid)) - footerLen; off < int64(len(valid)); off++ {
		offsets = append(offsets, off)
	}
	for _, off := range offsets {
		corrupt := fault.Flip(valid, off, 0)
		got, err := Load(bytes.NewReader(corrupt))
		if err == nil {
			t.Fatalf("flip at offset %d of %d accepted", off, len(valid))
		}
		if got != nil {
			t.Fatalf("flip at offset %d returned non-nil Precomputed alongside error %v", off, err)
		}
	}
}

// TestLoadRejectsEveryTruncation cuts the file at a spread of lengths;
// each must fail loudly (the footer, or the payload decoder, notices).
func TestLoadRejectsEveryTruncation(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 20)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	valid := buf.Bytes()
	for cut := 0; cut < len(valid); cut += 1 + len(valid)/61 {
		if _, err := Load(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(valid))
		}
	}
	// Including one byte short of complete.
	if _, err := Load(bytes.NewReader(valid[:len(valid)-1])); err == nil {
		t.Fatal("truncation by one byte accepted")
	}
}

// TestLoadLegacyV1 keeps the pre-CRC format readable: a payload behind the
// old magic still loads (it simply gets no integrity check).
func TestLoadLegacyV1(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 21)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	var buf bytes.Buffer
	e := &encoder{w: &buf}
	e.bytes(magic[:])
	p.encodePayload(e, false)
	if e.err != nil {
		t.Fatalf("encoding v1 file: %v", e.err)
	}
	p2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("loading v1 file: %v", err)
	}
	a, _ := p.Query(0)
	b, _ := p2.Query(0)
	if diff := maxAbsDiff(a, b); diff != 0 {
		t.Fatalf("v1 roundtrip differs by %g", diff)
	}
}

func TestDynamicStateRejectsByteFlips(t *testing.T) {
	g := gen.ErdosRenyi(40, 200, 22)
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.AddEdge(0, 39, 2); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	valid := buf.Bytes()
	for off := int64(0); off < int64(len(valid)); off += 1 + int64(len(valid))/73 {
		if _, err := LoadDynamic(bytes.NewReader(fault.Flip(valid, off, 0))); err == nil {
			t.Fatalf("dynamic-state flip at offset %d accepted", off)
		}
	}
	for cut := 0; cut < len(valid); cut += 1 + len(valid)/53 {
		if _, err := LoadDynamic(bytes.NewReader(valid[:cut])); err == nil {
			t.Fatalf("dynamic-state truncation to %d bytes accepted", cut)
		}
	}
}

// TestSaveSurvivesFlakyWriter: a failing destination yields an error, not
// a panic or a silent half-written success.
func TestSaveSurvivesFlakyWriter(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 23)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for _, n := range []int64{0, 7, 100, 4096} {
		if err := p.Save(&fault.FlakyWriter{W: new(bytes.Buffer), N: n}); err == nil {
			t.Fatalf("Save into writer failing after %d bytes: no error", n)
		}
	}
	d, err := NewDynamic(g, Options{K: 1})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.SaveState(&fault.FlakyWriter{W: new(bytes.Buffer), N: 50}); err == nil {
		t.Fatal("SaveState into failing writer: no error")
	}
}
