package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bear/internal/obsv"
	"bear/internal/sparse/kernel"
)

// Query computes the RWR score vector for a single seed node (Algorithm 2
// of the paper). The result is indexed by graph node id. The only heap
// allocation is the returned slice; use QueryTo to avoid even that.
func (p *Precomputed) Query(seed int) ([]float64, error) {
	dst := make([]float64, p.N)
	if err := p.QueryTo(dst, seed, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// QueryTo computes the RWR score vector for a single seed into dst, which
// must have length N. A nil ws borrows a pooled workspace; passing an
// explicit one (per goroutine) makes steady-state queries allocation-free.
// Single-seed queries take the block-restricted fast path: the forward
// half of Algorithm 2 touches only the seed's diagonal block (Lemma 1),
// with results bit-identical to the general path. QueryToCtx additionally
// honors cancellation.
func (p *Precomputed) QueryTo(dst []float64, seed int, ws *Workspace) error {
	return p.QueryToCtx(context.Background(), dst, seed, ws)
}

// QueryDist computes personalized PageRank for an arbitrary starting
// distribution q indexed by graph node id (Section 3.4). q must be
// non-negative; it is not required to sum to one, and the result scales
// linearly with it.
func (p *Precomputed) QueryDist(q []float64) ([]float64, error) {
	dst := make([]float64, p.N)
	if err := p.QueryDistTo(dst, q, nil); err != nil {
		return nil, err
	}
	return dst, nil
}

// QueryDistTo is QueryDist writing into caller-owned dst (length N); a nil
// ws borrows a pooled workspace. dst may alias q. Starting vectors with a
// single nonzero entry are routed to the same block-restricted fast path
// as QueryTo. QueryDistToCtx additionally honors cancellation.
func (p *Precomputed) QueryDistTo(dst, q []float64, ws *Workspace) error {
	return p.QueryDistToCtx(context.Background(), dst, q, ws)
}

// solve computes H⁻¹ b by block elimination (Algorithm 2 without the c
// scaling), for an arbitrary right-hand side indexed by graph node id. It
// is the primitive both QueryDist and the Woodbury update layer build on.
func (p *Precomputed) solve(b []float64) []float64 {
	r := make([]float64, p.N)
	ws := p.AcquireWorkspace()
	p.solveTo(r, b, ws)
	p.ReleaseWorkspace(ws)
	return r
}

// solveTo computes H⁻¹ b into dst using ws for every intermediate, so it
// performs no heap allocations. A right-hand side with exactly one nonzero
// dispatches to the block-restricted single-seed path; the results are
// bit-identical to the general path either way.
func (p *Precomputed) solveTo(dst, b []float64, ws *Workspace) {
	// context.Background is never cancelled, so the error is always nil.
	_ = p.solveToCtx(context.Background(), dst, b, ws)
}

func (p *Precomputed) solveToCtx(ctx context.Context, dst, b []float64, ws *Workspace) error {
	support := -1
	for i, v := range b {
		if v != 0 {
			if support >= 0 {
				support = -1
				break
			}
			support = i
		}
	}
	if support >= 0 {
		return p.solveSeedToCtx(ctx, dst, p.Perm[support], b[support], ws)
	}
	return p.solveGeneralToCtx(ctx, dst, b, ws)
}

// solveGeneralToCtx is the unrestricted block-elimination solve: permute
// and split b, forward pass through the spoke factors, Schur-complement
// solve, back-substitution, and the inverse permutation into dst.
// Cancellation is checked between the stages, and each stage records a
// span into the trace carried by ctx (a no-op when tracing is off).
func (p *Precomputed) solveGeneralToCtx(ctx context.Context, dst, b []float64, ws *Workspace) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := obsv.FromContext(ctx)
	n1 := p.N1
	bp := ws.full
	for node, v := range b {
		bp[p.Perm[node]] = v
	}
	b1, b2 := bp[:n1], bp[n1:]

	// t = U₁⁻¹ (L₁⁻¹ b₁), the forward half of Algorithm 2.
	sw := tr.Start(obsv.SpanForwardSolve)
	p.kern.l1inv.SpMV(ws.s1a, b1, kernel.Exact)
	p.kern.u1inv.SpMV(ws.s1b, ws.s1a, kernel.Exact)
	sw.Stop()
	if err := ctx.Err(); err != nil {
		return err
	}
	sw = tr.Start(obsv.SpanSchurSolve)
	r2 := p.schurSolveTo(b2, ws.s1b, 0, n1, ws)
	sw.Stop()
	if err := ctx.Err(); err != nil {
		return err
	}
	sw = tr.Start(obsv.SpanBackSolve)
	p.backSolveTo(dst, b1, r2, ws)
	sw.Stop()
	return nil
}

// solveSeedToCtx computes H⁻¹ (val·e_node) into dst for the node at internal
// position pos. For a spoke seed the forward pass U₁⁻¹L₁⁻¹b₁ is supported
// only on the seed's diagonal block (Lemma 1: the factors of a
// block-diagonal matrix are block diagonal), so the two triangular
// products run over that block's row range and the H₂₁ product over its
// column range, all located via the precomputed block prefix sums. For a
// hub seed b₁ = 0 and the forward pass vanishes entirely. Skipped terms
// are exact zeros, so dst is bit-identical to the general path.
// Cancellation is checked between the stages.
func (p *Precomputed) solveSeedToCtx(ctx context.Context, dst []float64, pos int, val float64, ws *Workspace) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	tr := obsv.FromContext(ctx)
	n1, n2 := p.N1, p.N2
	bp := ws.full
	for i := range bp {
		bp[i] = 0
	}
	bp[pos] = val
	b1, b2 := bp[:n1], bp[n1:]

	var r2 []float64
	if n2 > 0 {
		if pos < n1 {
			sw := tr.Start(obsv.SpanForwardSolve)
			bi := p.blockOfPos(pos)
			lo, hi := p.BlockOffsets[bi], p.BlockOffsets[bi+1]
			p.kern.l1inv.SpMVRange(ws.s1a, b1, lo, hi, kernel.Exact)
			p.kern.u1inv.SpMVRange(ws.s1b, ws.s1a, lo, hi, kernel.Exact)
			sw.Stop()
			if err := ctx.Err(); err != nil {
				return err
			}
			sw = tr.Start(obsv.SpanSchurSolve)
			r2 = p.schurSolveTo(b2, ws.s1b, lo, hi, ws)
			sw.Stop()
		} else {
			// A hub seed has b₁ = 0, so the forward half vanishes; record
			// the span anyway so traces always show the full stage set.
			tr.Add(obsv.SpanForwardSolve, 0)
			sw := tr.Start(obsv.SpanSchurSolve)
			r2 = p.schurSolveTo(b2, nil, 0, 0, ws)
			sw.Stop()
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	sw := tr.Start(obsv.SpanBackSolve)
	p.backSolveTo(dst, b1, r2, ws)
	sw.Stop()
	return nil
}

// schurSolveTo computes r₂ = U₂⁻¹ (L₂⁻¹ P (b₂ − H₂₁ t)) where t is valid
// on rows [lo, hi) and exactly zero elsewhere (an empty range means t = 0
// and the H₂₁ product is skipped). P is the pivot permutation of S's LU.
// The returned slice is one of ws's hub-length buffers; nil when n₂ = 0.
func (p *Precomputed) schurSolveTo(b2, t []float64, lo, hi int, ws *Workspace) []float64 {
	if p.N2 == 0 {
		return nil
	}
	y, spare := ws.s2a, ws.s2b
	if hi > lo {
		p.kern.h21.SpMVColRange(y, t, lo, hi, kernel.Exact)
	} else {
		for i := range y {
			y[i] = 0
		}
	}
	for i := range y {
		y[i] = b2[i] - y[i]
	}
	if p.SPerm != nil {
		for i, src := range p.SPerm {
			spare[i] = y[src]
		}
		y, spare = spare, y
	}
	p.kern.l2inv.SpMV(spare, y, kernel.Exact)
	y, spare = spare, y
	p.kern.u2inv.SpMV(spare, y, kernel.Exact)
	return spare
}

// backSolveTo computes r₁ = U₁⁻¹ (L₁⁻¹ (b₁ − H₁₂ r₂)) and writes the
// concatenated solution (r₁ ‖ r₂), permuted back to graph node order,
// into dst. b₁ must alias ws.full (it is read after scratch reuse).
func (p *Precomputed) backSolveTo(dst, b1, r2 []float64, ws *Workspace) {
	n1 := p.N1
	z := ws.s1a
	if p.N2 > 0 {
		p.kern.h12.SpMV(z, r2, kernel.Exact)
	} else {
		for i := range z {
			z[i] = 0
		}
	}
	for i := range z {
		z[i] = b1[i] - z[i]
	}
	p.kern.l1inv.SpMV(ws.s1b, z, kernel.Exact)
	p.kern.u1inv.SpMV(ws.s1a, ws.s1b, kernel.Exact)
	r1 := ws.s1a
	for node := 0; node < p.N; node++ {
		pos := p.Perm[node]
		if pos < n1 {
			dst[node] = r1[pos]
		} else {
			dst[node] = r2[pos-n1]
		}
	}
}

// QueryPageRank computes global PageRank with damping factor 1−c: the
// personalized-PageRank query with the uniform starting distribution
// (Section 2.1 of the paper treats PPR as the generalization; the uniform
// q recovers the classic ranking).
func (p *Precomputed) QueryPageRank() ([]float64, error) {
	q := make([]float64, p.N)
	u := 1 / float64(p.N)
	for i := range q {
		q[i] = u
	}
	return p.QueryDist(q)
}

// QueryEffectiveImportance computes the effective-importance variant
// (Bogdanov & Singh; Section 3.4 of the paper): RWR scores divided by the
// weighted out-degree of each node. Nodes with zero degree keep their raw
// RWR score.
func (p *Precomputed) QueryEffectiveImportance(seed int) ([]float64, error) {
	r, err := p.Query(seed)
	if err != nil {
		return nil, err
	}
	for i := range r {
		if d := p.OutDegree[i]; d > 0 {
			r[i] /= d
		}
	}
	return r, nil
}

// IsHub reports whether a node was classified as a hub (part of the dense
// H₂₂ block) by the ordering engine during preprocessing.
func (p *Precomputed) IsHub(node int) bool {
	if node < 0 || node >= p.N {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", node, p.N))
	}
	return p.Perm[node] >= p.N1
}

// BlockOf returns the index of the diagonal block of H₁₁ containing a
// spoke node, or -1 for hubs. Nodes in the same block belong to the same
// connected component once hubs are removed.
func (p *Precomputed) BlockOf(node int) int {
	if node < 0 || node >= p.N {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", node, p.N))
	}
	pos := p.Perm[node]
	if pos >= p.N1 {
		return -1
	}
	return p.blockOfPos(pos)
}

// blockOfPos maps a spoke's internal position to its diagonal-block index
// by binary search over the block prefix sums.
func (p *Precomputed) blockOfPos(pos int) int {
	return sort.SearchInts(p.BlockOffsets, pos+1) - 1
}

// TopK returns the k node ids with the highest scores, in descending score
// order, breaking ties by node id. NaN scores rank below every real score
// (ties among NaNs break by id), so they can only appear in the result
// once every real-scored node is already in it. k is clamped to
// [0, len(scores)]. It runs in O(n log k) with a bounded min-heap whose
// root is the weakest retained candidate, allocating only the result.
func TopK(scores []float64, k int) []int {
	return topKFiltered(scores, k, nil)
}

// topKFiltered is the candidate filter shared by TopK, TopKExcluding, and
// TopKCandidates: indices for which skip returns true never enter the
// heap, everything else ranks exactly as in TopK.
func topKFiltered(scores []float64, k int, skip func(int) bool) []int {
	return topKOver(scores, k, nil, skip)
}

// topKOver is the bounded min-heap behind every top-k selection. ids
// restricts the candidates to a subset of indices (nil means all of
// scores); indices for which skip returns true never enter the heap.
// Candidates rank by descending score, ties by ascending id, NaN ordered
// explicitly as the worst possible score.
func topKOver(scores []float64, k int, ids []int, skip func(int) bool) []int {
	limit := len(scores)
	if ids != nil {
		limit = len(ids)
	}
	if k > limit {
		k = limit
	}
	if k <= 0 {
		return []int{}
	}
	// worse reports whether candidate a ranks strictly below b: lower
	// score, or equal score and higher id. NaN compares false against
	// everything, which would leave the heap order undefined, so it is
	// ordered explicitly as the worst possible score.
	worse := func(a, b int) bool {
		sa, sb := scores[a], scores[b]
		if math.IsNaN(sa) {
			return !math.IsNaN(sb) || a > b
		}
		if math.IsNaN(sb) {
			return false
		}
		return sa < sb || (sa == sb && a > b)
	}
	h := make([]int, 0, k)
	add := func(i int) {
		if len(h) < k {
			// Sift up.
			h = append(h, i)
			for c := len(h) - 1; c > 0; {
				par := (c - 1) / 2
				if !worse(h[c], h[par]) {
					break
				}
				h[c], h[par] = h[par], h[c]
				c = par
			}
			return
		}
		if worse(i, h[0]) {
			return
		}
		// Replace the weakest and sift down.
		h[0] = i
		for c := 0; ; {
			l, r, m := 2*c+1, 2*c+2, c
			if l < k && worse(h[l], h[m]) {
				m = l
			}
			if r < k && worse(h[r], h[m]) {
				m = r
			}
			if m == c {
				break
			}
			h[c], h[m] = h[m], h[c]
			c = m
		}
	}
	if ids != nil {
		for _, i := range ids {
			add(i)
		}
	} else {
		for i := range scores {
			if skip != nil && skip(i) {
				continue
			}
			add(i)
		}
	}
	sort.Slice(h, func(a, b int) bool { return worse(h[b], h[a]) })
	return h
}
