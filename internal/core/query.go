package core

import (
	"fmt"
	"math"
)

// Query computes the RWR score vector for a single seed node (Algorithm 2
// of the paper). The result is indexed by graph node id.
func (p *Precomputed) Query(seed int) ([]float64, error) {
	if seed < 0 || seed >= p.N {
		return nil, fmt.Errorf("core: seed %d out of range [0,%d)", seed, p.N)
	}
	q := make([]float64, p.N)
	q[seed] = 1
	return p.QueryDist(q)
}

// QueryDist computes personalized PageRank for an arbitrary starting
// distribution q indexed by graph node id (Section 3.4). q must be
// non-negative; it is not required to sum to one, and the result scales
// linearly with it.
func (p *Precomputed) QueryDist(q []float64) ([]float64, error) {
	if len(q) != p.N {
		return nil, fmt.Errorf("core: starting vector length %d, want %d", len(q), p.N)
	}
	for i, v := range q {
		if v < 0 || math.IsNaN(v) {
			return nil, fmt.Errorf("core: starting vector entry %d is %g; must be non-negative", i, v)
		}
	}
	r := p.solve(q)
	for i := range r {
		r[i] *= p.C
	}
	return r, nil
}

// solve computes H⁻¹ b by block elimination (Algorithm 2 without the c
// scaling), for an arbitrary right-hand side indexed by graph node id. It
// is the primitive both QueryDist and the Woodbury update layer build on.
func (p *Precomputed) solve(b []float64) []float64 {
	n1, n2 := p.N1, p.N2

	// Permute b into BEAR's internal order and split it.
	bp := make([]float64, p.N)
	for node, v := range b {
		bp[p.Perm[node]] = v
	}
	b1 := bp[:n1]
	b2 := bp[n1:]

	// r₂ = U₂⁻¹ (L₂⁻¹ (b₂ − H₂₁ (U₁⁻¹ (L₁⁻¹ b₁)))), with the pivot
	// permutation of S's LU applied before the triangular products.
	t := p.L1Inv.MulVec(b1)
	t = p.U1Inv.MulVec(t)
	var r2 []float64
	if n2 > 0 {
		y := p.H21.MulVec(t)
		for i := range y {
			y[i] = b2[i] - y[i]
		}
		if p.SPerm != nil {
			yp := make([]float64, n2)
			for i, src := range p.SPerm {
				yp[i] = y[src]
			}
			y = yp
		}
		r2 = p.L2Inv.MulVec(y)
		r2 = p.U2Inv.MulVec(r2)
	}

	// r₁ = U₁⁻¹ (L₁⁻¹ (b₁ − H₁₂ r₂)).
	z := make([]float64, n1)
	if n2 > 0 {
		p.H12.MulVecTo(z, r2)
	}
	for i := range z {
		z[i] = b1[i] - z[i]
	}
	r1 := p.L1Inv.MulVec(z)
	r1 = p.U1Inv.MulVec(r1)

	// Concatenate and permute back to graph node order.
	r := make([]float64, p.N)
	for node := 0; node < p.N; node++ {
		pos := p.Perm[node]
		if pos < n1 {
			r[node] = r1[pos]
		} else {
			r[node] = r2[pos-n1]
		}
	}
	return r
}

// QueryPageRank computes global PageRank with damping factor 1−c: the
// personalized-PageRank query with the uniform starting distribution
// (Section 2.1 of the paper treats PPR as the generalization; the uniform
// q recovers the classic ranking).
func (p *Precomputed) QueryPageRank() ([]float64, error) {
	q := make([]float64, p.N)
	u := 1 / float64(p.N)
	for i := range q {
		q[i] = u
	}
	return p.QueryDist(q)
}

// QueryEffectiveImportance computes the effective-importance variant
// (Bogdanov & Singh; Section 3.4 of the paper): RWR scores divided by the
// weighted out-degree of each node. Nodes with zero degree keep their raw
// RWR score.
func (p *Precomputed) QueryEffectiveImportance(seed int) ([]float64, error) {
	r, err := p.Query(seed)
	if err != nil {
		return nil, err
	}
	for i := range r {
		if d := p.OutDegree[i]; d > 0 {
			r[i] /= d
		}
	}
	return r, nil
}

// IsHub reports whether a node was classified as a hub (part of the dense
// H₂₂ block) by SlashBurn during preprocessing.
func (p *Precomputed) IsHub(node int) bool {
	if node < 0 || node >= p.N {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", node, p.N))
	}
	return p.Perm[node] >= p.N1
}

// BlockOf returns the index of the diagonal block of H₁₁ containing a
// spoke node, or -1 for hubs. Nodes in the same block belong to the same
// connected component once hubs are removed.
func (p *Precomputed) BlockOf(node int) int {
	if node < 0 || node >= p.N {
		panic(fmt.Sprintf("core: node %d out of range [0,%d)", node, p.N))
	}
	pos := p.Perm[node]
	if pos >= p.N1 {
		return -1
	}
	// Blocks are consecutive; walk the prefix sums (block count is small
	// relative to query cost, and this is a debugging accessor).
	off := 0
	for i, sz := range p.Blocks {
		off += sz
		if pos < off {
			return i
		}
	}
	return -1
}

// TopK returns the k node ids with the highest scores, in descending score
// order, breaking ties by node id. k is clamped to len(scores).
func TopK(scores []float64, k int) []int {
	if k > len(scores) {
		k = len(scores)
	}
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	// Partial selection sort is fine for the small k this is used with.
	for i := 0; i < k; i++ {
		best := i
		for j := i + 1; j < len(idx); j++ {
			a, b := idx[j], idx[best]
			if scores[a] > scores[b] || (scores[a] == scores[b] && a < b) {
				best = j
			}
		}
		idx[i], idx[best] = idx[best], idx[i]
	}
	return idx[:k]
}
