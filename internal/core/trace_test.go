package core

import (
	"context"
	"testing"

	"bear/internal/graph/gen"
	"bear/internal/obsv"
)

// countSpans folds a span list into name -> occurrence count.
func countSpans(spans []obsv.Span) map[string]int {
	c := make(map[string]int)
	for _, s := range spans {
		c[s.Name]++
	}
	return c
}

// TestQueryTracePropagation: a trace installed in the query context must
// record every solver stage of Algorithm 2 exactly once per single-seed
// query, for spoke and hub seeds alike.
func TestQueryTracePropagation(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 6, Size: 15, PIntra: 0.3, Hubs: 4, HubDeg: 20, Seed: 7})
	p, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if p.N2 == 0 {
		t.Fatal("test graph has no hubs; stage coverage would be vacuous")
	}
	spoke, hub := -1, -1
	for node := 0; node < p.N; node++ {
		if p.IsHub(node) {
			hub = node
		} else {
			spoke = node
		}
	}
	stages := []string{obsv.SpanForwardSolve, obsv.SpanSchurSolve, obsv.SpanBackSolve}
	for _, tc := range []struct {
		name string
		seed int
	}{{"spoke", spoke}, {"hub", hub}} {
		tr := obsv.NewTrace()
		ctx := obsv.WithTrace(context.Background(), tr)
		if _, err := p.QueryCtx(ctx, tc.seed); err != nil {
			t.Fatalf("%s: QueryCtx: %v", tc.name, err)
		}
		got := countSpans(tr.Spans())
		for _, stage := range stages {
			if got[stage] != 1 {
				t.Errorf("%s seed: stage %s recorded %d times, want exactly 1 (spans: %v)",
					tc.name, stage, got[stage], tr.Spans())
			}
		}
		if len(got) != len(stages) {
			t.Errorf("%s seed: unexpected extra stages in %v", tc.name, tr.Spans())
		}
	}

	// The general-distribution path records the same three stages.
	q := make([]float64, p.N)
	q[spoke], q[hub] = 0.5, 0.5
	tr := obsv.NewTrace()
	if _, err := p.QueryDistCtx(obsv.WithTrace(context.Background(), tr), q); err != nil {
		t.Fatalf("QueryDistCtx: %v", err)
	}
	got := countSpans(tr.Spans())
	for _, stage := range stages {
		if got[stage] != 1 {
			t.Errorf("dist query: stage %s recorded %d times, want 1", stage, got[stage])
		}
	}
}

// TestBatchTracePropagation: the blocked multi-RHS path records the stage
// set once per chunk; a single-chunk batch therefore shows each exactly
// once, regardless of how many seeds it carries.
func TestBatchTracePropagation(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 6, Size: 15, PIntra: 0.3, Hubs: 4, HubDeg: 20, Seed: 8})
	p, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	tr := obsv.NewTrace()
	ctx := obsv.WithTrace(context.Background(), tr)
	seeds := []int{0, 1, 2, 3}
	if _, err := p.QueryBatchCtx(ctx, seeds, 0); err != nil {
		t.Fatalf("QueryBatchCtx: %v", err)
	}
	got := countSpans(tr.Spans())
	for _, stage := range []string{obsv.SpanForwardSolve, obsv.SpanSchurSolve, obsv.SpanBackSolve} {
		if got[stage] != 1 {
			t.Errorf("batch: stage %s recorded %d times, want 1 (one chunk)", stage, got[stage])
		}
	}
}

// TestDynamicTraceWoodbury: with pending updates, a traced query shows the
// Woodbury correction stage, and the first query after an update also
// shows the refresh.
func TestDynamicTraceWoodbury(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 5, Size: 12, PIntra: 0.3, Hubs: 3, HubDeg: 15, Seed: 9})
	d, err := NewDynamic(g, Options{})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	// Weight 2.5 differs from any existing weight, so the set-edge update
	// genuinely changes the row and marks node 1 dirty.
	if err := d.AddEdge(1, 2, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	tr := obsv.NewTrace()
	ctx := obsv.WithTrace(context.Background(), tr)
	if _, err := d.QueryCtx(ctx, 0); err != nil {
		t.Fatalf("QueryCtx: %v", err)
	}
	got := countSpans(tr.Spans())
	if got[obsv.SpanWoodburyRefresh] != 1 {
		t.Errorf("first post-update query: woodbury_refresh recorded %d times, want 1", got[obsv.SpanWoodburyRefresh])
	}
	if got[obsv.SpanWoodburyTerms] != 1 {
		t.Errorf("post-update query: woodbury_terms recorded %d times, want 1", got[obsv.SpanWoodburyTerms])
	}

	// Second query reuses the Woodbury cache: no refresh, still corrected.
	tr2 := obsv.NewTrace()
	if _, err := d.QueryCtx(obsv.WithTrace(context.Background(), tr2), 0); err != nil {
		t.Fatalf("QueryCtx: %v", err)
	}
	got2 := countSpans(tr2.Spans())
	if got2[obsv.SpanWoodburyRefresh] != 0 {
		t.Errorf("warm query: woodbury_refresh recorded %d times, want 0", got2[obsv.SpanWoodburyRefresh])
	}
	if got2[obsv.SpanWoodburyTerms] != 1 {
		t.Errorf("warm query: woodbury_terms recorded %d times, want 1", got2[obsv.SpanWoodburyTerms])
	}
}

// TestPreprocessCtxTrace: PreprocessCtx records the Algorithm 1 stage
// split into the carried trace.
func TestPreprocessCtxTrace(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 5, Size: 12, PIntra: 0.3, Hubs: 3, HubDeg: 15, Seed: 10})
	tr := obsv.NewTrace()
	p, err := PreprocessCtx(obsv.WithTrace(context.Background(), tr), g, Options{})
	if err != nil {
		t.Fatalf("PreprocessCtx: %v", err)
	}
	got := countSpans(tr.Spans())
	for _, stage := range []string{obsv.SpanOrdering, obsv.SpanBlockLU, obsv.SpanSchurAssembly, obsv.SpanSchurFactor} {
		if got[stage] != 1 {
			t.Errorf("stage %s recorded %d times, want 1", stage, got[stage])
		}
	}
	if p.Stats.TimeTotal <= 0 {
		t.Error("preprocess total time not recorded")
	}
}

// TestQueryCtxDisabledTraceZeroAllocs is the disabled-trace allocation
// gate: with no trace in the context — including a context that carries
// other values, as server request contexts do — the instrumented query
// path must stay allocation-free.
func TestQueryCtxDisabledTraceZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are only meaningful without -race")
	}
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 25, Seed: 94})
	p, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	dst := make([]float64, p.N)
	type otherKey struct{}
	ctx := context.WithValue(context.Background(), otherKey{}, "not a trace")
	var qerr error
	fn := func() { qerr = p.QueryToCtx(ctx, dst, 1, ws) }
	fn()
	if qerr != nil {
		t.Fatalf("QueryToCtx: %v", qerr)
	}
	if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
		t.Errorf("disabled-trace QueryToCtx: %v allocs/op, want 0", allocs)
	}
}

// BenchmarkQueryCtxDisabledTrace is the steady-state benchmark guard for
// the disabled-trace hot path; run with -benchmem it must report
// 0 allocs/op.
func BenchmarkQueryCtxDisabledTrace(b *testing.B) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 25, Seed: 94})
	p, err := Preprocess(g, Options{})
	if err != nil {
		b.Fatalf("Preprocess: %v", err)
	}
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	dst := make([]float64, p.N)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.QueryToCtx(ctx, dst, i%p.N1, ws); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryCtxEnabledTrace measures the tracing overhead when a
// trace IS carried — a handful of clock reads and one span append per
// stage — so regressions in the instrumentation itself show up.
func BenchmarkQueryCtxEnabledTrace(b *testing.B) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 25, Seed: 94})
	p, err := Preprocess(g, Options{})
	if err != nil {
		b.Fatalf("Preprocess: %v", err)
	}
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	dst := make([]float64, p.N)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := obsv.WithTrace(context.Background(), obsv.NewTrace())
		if err := p.QueryToCtx(ctx, dst, i%p.N1, ws); err != nil {
			b.Fatal(err)
		}
	}
}
