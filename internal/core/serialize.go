package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"bear/internal/sparse"
)

// magic identifies the BEAR precomputed-matrix file format, version 1:
// payload only, no integrity footer. Still readable, never written.
var magic = [8]byte{'B', 'E', 'A', 'R', 'P', 'C', '0', '1'}

// magic2 identifies version 2 of the format: the same payload followed by
// an integrity footer — the byte length of everything before the footer
// (8 bytes, little endian) and the IEEE CRC32 of those same bytes (4
// bytes) — so truncated or bit-flipped files are rejected loudly instead
// of deserializing into silent garbage.
var magic2 = [8]byte{'B', 'E', 'A', 'R', 'P', 'C', '0', '2'}

// magic3 identifies version 3 of the format: the v2 payload followed by an
// extension section that carries the retained exact H (Options.KeepH), then
// the same integrity footer. Files without a retained H are still written
// as v2, byte-identical to before, so v3 appears only when there is
// genuinely more to store.
var magic3 = [8]byte{'B', 'E', 'A', 'R', 'P', 'C', '0', '3'}

// footerLen is the size of the v2/v3 integrity footer.
const footerLen = 12

// Save writes the precomputed matrices in a compact binary format
// (CRC-protected; version 3 when a retained H must be carried, version 2
// otherwise) so that the preprocessing phase can be paid once and reused
// across processes.
func (p *Precomputed) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	e := &encoder{w: cw}
	if p.H != nil {
		e.bytes(magic3[:])
	} else {
		e.bytes(magic2[:])
	}
	p.encodePayload(e, p.H != nil)
	if e.err != nil {
		return fmt.Errorf("core: saving precomputed matrices: %w", e.err)
	}
	var foot [footerLen]byte
	binary.LittleEndian.PutUint64(foot[:8], uint64(cw.n))
	binary.LittleEndian.PutUint32(foot[8:], cw.sum)
	if _, err := bw.Write(foot[:]); err != nil {
		return fmt.Errorf("core: saving precomputed matrices: %w", err)
	}
	return bw.Flush()
}

// encodePayload writes every serialized field (everything after the magic,
// before the footer). Shared by Save and the Dynamic state snapshot. withH
// appends the v3 extension section — a presence flag and, when set, the
// retained exact H; with withH false the output is byte-identical to the
// v2 payload.
func (p *Precomputed) encodePayload(e *encoder, withH bool) {
	e.i64(int64(p.N))
	e.i64(int64(p.N1))
	e.i64(int64(p.N2))
	e.f64(p.C)
	e.ints(p.Blocks)
	e.ints(p.Perm)
	e.ints(p.InvPerm)
	e.ints(p.SPerm)
	e.floats(p.OutDegree)
	for _, m := range []*sparse.CSR{p.L1Inv, p.U1Inv, p.H12, p.H21, p.L2Inv, p.U2Inv} {
		e.csr(m)
	}
	if withH {
		e.bool(p.H != nil)
		if p.H != nil {
			e.csr(p.H)
		}
	}
}

// decodePayload is the inverse of encodePayload: it decodes, validates,
// and derives. Any error yields a nil Precomputed — never a partially
// populated one.
func decodePayload(d *decoder, withH bool) (*Precomputed, error) {
	p := &Precomputed{}
	p.N = int(d.i64())
	p.N1 = int(d.i64())
	p.N2 = int(d.i64())
	p.C = d.f64()
	p.Blocks = d.ints()
	p.Perm = d.ints()
	p.InvPerm = d.ints()
	p.SPerm = d.ints()
	if len(p.SPerm) == 0 {
		p.SPerm = nil
	}
	p.OutDegree = d.floats()
	ms := make([]*sparse.CSR, 6)
	for i := range ms {
		ms[i] = d.csr()
	}
	var h *sparse.CSR
	if withH && d.bool() {
		h = d.csr()
	}
	if d.err != nil {
		return nil, fmt.Errorf("core: loading precomputed matrices: %w", d.err)
	}
	p.L1Inv, p.U1Inv, p.H12, p.H21, p.L2Inv, p.U2Inv = ms[0], ms[1], ms[2], ms[3], ms[4], ms[5]
	p.H = h
	if err := p.validate(); err != nil {
		return nil, err
	}
	p.initDerived()
	// Loaded factors get the auto layout heuristic; the precompute format
	// stores no kernel preference (layouts are a runtime choice).
	if err := p.initKernels(""); err != nil {
		return nil, err
	}
	return p, nil
}

// Load reads matrices previously written by Save. Version-2 files are
// verified against their length/CRC32 footer; legacy version-1 files are
// accepted without an integrity check.
func Load(r io.Reader) (*Precomputed, error) {
	cr := &crcReader{r: bufio.NewReader(r)}
	d := &decoder{r: cr}
	var got [8]byte
	d.bytes(got[:])
	if d.err != nil {
		return nil, fmt.Errorf("core: loading precomputed matrices: %w", d.err)
	}
	switch got {
	case magic: // legacy v1: no footer
		return decodePayload(d, false)
	case magic2, magic3:
		p, err := decodePayload(d, got == magic3)
		if err != nil {
			return nil, err
		}
		if err := cr.checkFooter(); err != nil {
			return nil, err
		}
		return p, nil
	default:
		return nil, fmt.Errorf("core: bad magic %q; not a BEAR precomputed file", got[:])
	}
}

// crcWriter counts and checksums everything written through it.
type crcWriter struct {
	w   io.Writer
	n   int64
	sum uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// crcReader counts and checksums everything read through it.
type crcReader struct {
	r   io.Reader
	n   int64
	sum uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.sum = crc32.Update(c.sum, crc32.IEEETable, p[:n])
	c.n += int64(n)
	return n, err
}

// checkFooter reads the 12-byte integrity footer from the underlying
// reader (not through the checksum) and verifies it against the bytes
// consumed so far.
func (c *crcReader) checkFooter() error {
	wantN, wantSum := c.n, c.sum
	var foot [footerLen]byte
	if _, err := io.ReadFull(c.r, foot[:]); err != nil {
		return fmt.Errorf("core: truncated file: missing integrity footer: %w", err)
	}
	if gotN := int64(binary.LittleEndian.Uint64(foot[:8])); gotN != wantN {
		return fmt.Errorf("core: corrupt file: footer records %d payload bytes, read %d", gotN, wantN)
	}
	if gotSum := binary.LittleEndian.Uint32(foot[8:]); gotSum != wantSum {
		return fmt.Errorf("core: corrupt file: CRC32 mismatch (stored %08x, computed %08x)", gotSum, wantSum)
	}
	return nil
}

func (p *Precomputed) validate() error {
	if p.N < 0 || p.N1 < 0 || p.N2 < 0 || p.N1+p.N2 != p.N {
		return fmt.Errorf("core: inconsistent sizes n=%d n1=%d n2=%d", p.N, p.N1, p.N2)
	}
	if p.C <= 0 || p.C >= 1 {
		return fmt.Errorf("core: restart probability %g outside (0,1)", p.C)
	}
	if len(p.Perm) != p.N || len(p.InvPerm) != p.N {
		return fmt.Errorf("core: permutation length mismatch")
	}
	for node, pos := range p.Perm {
		if pos < 0 || pos >= p.N || p.InvPerm[pos] != node {
			return fmt.Errorf("core: corrupt permutation at node %d", node)
		}
	}
	if p.SPerm != nil {
		if len(p.SPerm) != p.N2 {
			return fmt.Errorf("core: SPerm length %d, want %d", len(p.SPerm), p.N2)
		}
		seen := make([]bool, p.N2)
		for _, v := range p.SPerm {
			if v < 0 || v >= p.N2 || seen[v] {
				return fmt.Errorf("core: SPerm is not a permutation")
			}
			seen[v] = true
		}
	}
	if len(p.OutDegree) != p.N {
		return fmt.Errorf("core: OutDegree length %d, want %d", len(p.OutDegree), p.N)
	}
	blockSum := 0
	for _, b := range p.Blocks {
		if b <= 0 {
			return fmt.Errorf("core: non-positive block size %d", b)
		}
		blockSum += b
	}
	if blockSum != p.N1 {
		return fmt.Errorf("core: blocks sum to %d, want n1=%d", blockSum, p.N1)
	}
	check := func(name string, m *sparse.CSR, r, c int) error {
		if m.R != r || m.C != c {
			return fmt.Errorf("core: %s is %dx%d, want %dx%d", name, m.R, m.C, r, c)
		}
		if len(m.RowPtr) != r+1 || m.RowPtr[0] != 0 || m.RowPtr[r] != len(m.ColIdx) {
			return fmt.Errorf("core: %s has corrupt row pointers", name)
		}
		for i := 0; i < r; i++ {
			if m.RowPtr[i+1] < m.RowPtr[i] {
				return fmt.Errorf("core: %s row pointers not monotone at %d", name, i)
			}
		}
		for _, j := range m.ColIdx {
			if j < 0 || j >= c {
				return fmt.Errorf("core: %s column index %d out of %d", name, j, c)
			}
		}
		return nil
	}
	for _, chk := range []error{
		check("L1inv", p.L1Inv, p.N1, p.N1),
		check("U1inv", p.U1Inv, p.N1, p.N1),
		check("H12", p.H12, p.N1, p.N2),
		check("H21", p.H21, p.N2, p.N1),
		check("L2inv", p.L2Inv, p.N2, p.N2),
		check("U2inv", p.U2Inv, p.N2, p.N2),
	} {
		if chk != nil {
			return chk
		}
	}
	if p.H != nil {
		if err := check("H", p.H, p.N, p.N); err != nil {
			return err
		}
	}
	return nil
}

type encoder struct {
	w   io.Writer
	err error
	buf [8]byte
}

func (e *encoder) bytes(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.w.Write(b)
}

func (e *encoder) i64(v int64) {
	binary.LittleEndian.PutUint64(e.buf[:], uint64(v))
	e.bytes(e.buf[:])
}

func (e *encoder) f64(v float64) { e.i64(int64(math.Float64bits(v))) }

func (e *encoder) bool(v bool) {
	if v {
		e.i64(1)
	} else {
		e.i64(0)
	}
}

func (e *encoder) str(s string) {
	e.i64(int64(len(s)))
	e.bytes([]byte(s))
}

func (e *encoder) ints(v []int) {
	e.i64(int64(len(v)))
	for _, x := range v {
		e.i64(int64(x))
	}
}

func (e *encoder) floats(v []float64) {
	e.i64(int64(len(v)))
	for _, x := range v {
		e.f64(x)
	}
}

func (e *encoder) csr(m *sparse.CSR) {
	e.i64(int64(m.R))
	e.i64(int64(m.C))
	e.ints(m.RowPtr)
	e.ints(m.ColIdx)
	e.floats(m.Val)
}

type decoder struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (d *decoder) bytes(b []byte) {
	if d.err != nil {
		return
	}
	_, d.err = io.ReadFull(d.r, b)
}

func (d *decoder) i64() int64 {
	d.bytes(d.buf[:])
	if d.err != nil {
		return 0
	}
	return int64(binary.LittleEndian.Uint64(d.buf[:]))
}

func (d *decoder) f64() float64 { return math.Float64frombits(uint64(d.i64())) }

func (d *decoder) bool() bool {
	switch d.i64() {
	case 0:
		return false
	case 1:
		return true
	default:
		if d.err == nil {
			d.err = fmt.Errorf("corrupt boolean field")
		}
		return false
	}
}

const maxSliceLen = 1 << 33 // sanity bound against corrupt headers

// maxStrLen bounds decoded strings (identifiers like ordering names, never
// bulk data), so a lying length header cannot allocate gigabytes.
const maxStrLen = 1 << 12

func (d *decoder) str() string {
	n := d.i64()
	if d.err == nil && (n < 0 || n > maxStrLen) {
		d.err = fmt.Errorf("corrupt string length %d", n)
	}
	if d.err != nil {
		return ""
	}
	b := make([]byte, n)
	d.bytes(b)
	if d.err != nil {
		return ""
	}
	return string(b)
}

func (d *decoder) sliceLen() int {
	n := d.i64()
	if d.err == nil && (n < 0 || n > maxSliceLen) {
		d.err = fmt.Errorf("corrupt slice length %d", n)
	}
	if d.err != nil {
		return 0
	}
	return int(n)
}

// Slices grow incrementally while decoding so that a lying length header in
// a corrupt or truncated file fails at EOF instead of pre-allocating
// gigabytes and spinning through dead reads.
const decodeChunk = 1 << 16

func (d *decoder) ints() []int {
	n := d.sliceLen()
	v := make([]int, 0, min(n, decodeChunk))
	for len(v) < n && d.err == nil {
		v = append(v, int(d.i64()))
	}
	if d.err != nil {
		return nil
	}
	return v
}

func (d *decoder) floats() []float64 {
	n := d.sliceLen()
	v := make([]float64, 0, min(n, decodeChunk))
	for len(v) < n && d.err == nil {
		v = append(v, d.f64())
	}
	if d.err != nil {
		return nil
	}
	return v
}

func (d *decoder) csr() *sparse.CSR {
	m := &sparse.CSR{}
	m.R = int(d.i64())
	m.C = int(d.i64())
	m.RowPtr = d.ints()
	m.ColIdx = d.ints()
	m.Val = d.floats()
	if d.err == nil {
		if m.R < 0 || m.C < 0 || len(m.RowPtr) != m.R+1 || len(m.ColIdx) != len(m.Val) {
			d.err = fmt.Errorf("corrupt CSR header %dx%d", m.R, m.C)
		}
	}
	return m
}
