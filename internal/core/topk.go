package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"bear/internal/graph"
	"bear/internal/rwr"
	"bear/internal/sparse"
)

// Fallback reasons recorded in TopKStats.Fallback when a hybrid top-k
// query ran the full exact solve instead of certifying from push bounds.
const (
	// TopKFallbackApprox: the index drops factor entries (DropTol > 0), so
	// the exact scores the bound would be certified against do not exist.
	TopKFallbackApprox = "approx_index"
	// TopKFallbackLaplacian: under the Laplacian normalization the push
	// invariant's [0,1] score bound does not hold.
	TopKFallbackLaplacian = "laplacian"
	// TopKFallbackPending: pending dynamic updates mean the cached
	// normalized adjacency and the Woodbury-corrected solve disagree about
	// the current graph; the exact path handles the correction.
	TopKFallbackPending = "pending_updates"
	// TopKFallbackAllNodes: k covers every node, so there is no rank k+1 to
	// separate from and nothing to prune.
	TopKFallbackAllNodes = "k_covers_graph"
	// TopKFallbackUncertified: the push bound could not separate rank k
	// from rank k+1 within the round and push budgets (small gap, boundary
	// tie, or residual mass that would not shrink). Such queries are now
	// answered by the block-pruned exact solve rather than the full one,
	// so this reason no longer appears in Stats.Fallback; the constant is
	// retained for callers that match on it.
	TopKFallbackUncertified = "bound_not_separating"
)

// TopKStats reports how a hybrid top-k query was answered.
type TopKStats struct {
	// Pruned is true when the result was certified from local-push bounds
	// alone and the exact block-elimination solve was skipped.
	Pruned bool
	// Fallback names why the exact solve ran; empty when Pruned.
	Fallback string
	// Rounds counts push threshold tightenings attempted (0 when the push
	// phase was skipped entirely).
	Rounds int
	// Pushes counts push operations performed across all rounds.
	Pushes int
	// Residual is the unsettled probability mass R when the push phase
	// stopped; every exact score lies within [estimate, estimate+R].
	Residual float64
	// BlocksSolved and BlocksSkipped count spoke blocks whose back
	// substitution ran or was certifiably skipped by the block-pruned
	// exact path (both zero when push certified or a full solve ran).
	BlocksSolved  int
	BlocksSkipped int
}

// TopKResult is the answer to a hybrid top-k query.
type TopKResult struct {
	// Nodes holds the top-k node ids. The *set* is always identical to
	// TopK(exact scores, k); the order within the set is by exact score
	// when Stats.Pruned is false, and by push estimate (which may deviate
	// from the exact order by at most Stats.Residual) when it is true.
	Nodes []int
	// Scores holds the score of each node in Nodes: exact when
	// Stats.Pruned is false, certified lower bounds within Stats.Residual
	// of exact when it is true.
	Scores []float64
	Stats  TopKStats
}

// topKPushRounds bounds threshold tightenings before giving up on
// certification; each round shrinks the threshold by up to 64×, so the
// total dynamic range is ~64¹⁰ — far below any gap float64 can represent.
const topKPushRounds = 10

// topKCtxCheckPushes is the push-count granularity at which Run is sliced
// so cancellation is honored during long drains.
const topKCtxCheckPushes = 1 << 17

// topKPushStrikes is how many consecutive uncertified push attempts on
// one matrix it takes before the push phase is skipped for that matrix
// (see Dynamic.pushStrikes).
const topKPushStrikes = 3

// QueryTopK is QueryTopKCtx with a background context.
func (d *Dynamic) QueryTopK(seed, k int) (*TopKResult, error) {
	return d.QueryTopKCtx(context.Background(), seed, k)
}

// QueryTopKCtx returns the k nodes with the highest exact RWR scores for
// seed on the current graph, without computing the full exact solve when a
// cheaper certificate exists. It first runs a budgeted forward local push,
// whose invariant brackets every exact score as
//
//	p[v] ≤ exact[v] ≤ p[v] + R,   R = total residual mass,
//
// and tightens the push threshold until the k-th estimate exceeds the
// (k+1)-th by more than R — at which point every retained node provably
// outscores every excluded node and the estimate top-k *set* equals the
// exact top-k set, regardless of tie-breaking. When push cannot certify
// within its budget, the query runs the block-pruned exact solve: hub and
// seed-block scores are computed exactly, every other spoke block gets a
// certified upper bound on its best attainable score, and only blocks
// whose bound can still reach rank k are back-substituted (Lemma 1's
// block restriction, driven by the bound instead of structural zeros).
// Both routes provably return the identical top-k set as TopK(full exact
// solve, k); ineligible configurations (approximate index, Laplacian
// normalization, pending updates, k covering the whole graph) fall back
// to the full solve with the reason in Stats.Fallback.
//
// Like the other query methods, the result reflects the graph state as of
// when the query began; Stats records which path answered.
func (d *Dynamic) QueryTopKCtx(ctx context.Context, seed, k int) (*TopKResult, error) {
	d.mu.RLock()
	p := d.p
	n := p.N
	c := p.C
	opts := d.opts
	pending := len(d.dirty) > 0
	g := d.curCache
	d.mu.RUnlock()
	if seed < 0 || seed >= n {
		return nil, fmt.Errorf("core: seed %d out of range [0,%d)", seed, n)
	}
	if k <= 0 {
		return nil, fmt.Errorf("core: top-k size %d must be positive", k)
	}

	var st TopKStats
	switch {
	case opts.Laplacian:
		st.Fallback = TopKFallbackLaplacian
	case opts.DropTol > 0:
		st.Fallback = TopKFallbackApprox
	case pending:
		st.Fallback = TopKFallbackPending
	case k >= n:
		st.Fallback = TopKFallbackAllNodes
	}
	if st.Fallback == "" {
		if g == nil {
			g = d.Graph()
		}
		res, pst, err := d.pushTopK(ctx, g, c, seed, k)
		if err != nil {
			return nil, err
		}
		if res != nil {
			return res, nil
		}
		st = pst
		// Push could not certify: run the block-pruned exact solve against
		// the index snapshot captured at entry (pending was false there, so
		// p factors exactly the graph this query promises to reflect).
		ws := p.AcquireWorkspace()
		nodes, scores, solved, skipped, err := p.solveSeedTopKCtx(ctx, seed, k, ws)
		p.ReleaseWorkspace(ws)
		if err != nil {
			return nil, err
		}
		st.BlocksSolved, st.BlocksSkipped = solved, skipped
		return &TopKResult{Nodes: nodes, Scores: scores, Stats: st}, nil
	}

	scores, err := d.QueryCtx(ctx, seed)
	if err != nil {
		return nil, err
	}
	nodes := TopK(scores, k)
	top := make([]float64, len(nodes))
	for i, v := range nodes {
		top[i] = scores[v]
	}
	return &TopKResult{Nodes: nodes, Scores: top, Stats: st}, nil
}

// pushTopK attempts to certify the top-k set from push bounds alone. It
// returns a non-nil result on success; (nil, stats, nil) means the bound
// did not separate and the caller should run the exact solve.
func (d *Dynamic) pushTopK(ctx context.Context, g *graph.Graph, c float64, seed, k int) (*TopKResult, TopKStats, error) {
	var st TopKStats
	a := d.normalized(g)
	d.mu.RLock()
	struck := d.pushStrikesFor == a && d.pushStrikes >= topKPushStrikes
	d.mu.RUnlock()
	if struck {
		return nil, st, nil
	}
	ps := d.pusher(a, c)
	defer d.pushers.Put(&pusherEntry{a: a, ps: ps})
	if err := ps.ResetSeed(seed); err != nil {
		return nil, st, err
	}
	// gapAt reads the certification gap from the current push state by
	// selecting the top-(k+1) estimates among touched nodes only — every
	// untouched node's estimate is exactly zero, so when fewer than k+1
	// nodes are touched the missing ranks belong to zero-estimate nodes.
	// Keeping the scan off the full score vector makes failed attempts
	// cost O(footprint), not O(N).
	gapAt := func() ([]int, float64) {
		est := ps.EstimatesRef()
		top := topKOver(est, k+1, ps.TouchedRef(), nil)
		switch {
		case len(top) < k:
			// The top k itself would include untouched zero-estimate
			// nodes; nothing separates those from each other yet.
			return top, 0
		case len(top) == k:
			// The (k+1)-th best estimate is an untouched node's zero.
			return top, est[top[k-1]]
		default:
			return top, est[top[k-1]] - est[top[k]]
		}
	}
	// The push attempt must stay cheap relative to the block-pruned exact
	// solve that follows when it fails: with restart c the residual decays
	// only as (1−c) per push wave, so certification is realistic on small
	// graphs and structurally separated seeds but hopeless in general. The
	// cap — a fraction of the edge count, floored so small fixtures can
	// still drain completely — bounds the failed-attempt tax to well under
	// one factor traversal; hitting it abandons certification.
	budget := (a.R + a.NNZ()) / 8
	if budget < 8192 {
		budget = 8192
	}
	// First threshold: a drained frontier at eps leaves at most
	// eps·(m + 2n) total residual, so this eps caps the first round's R
	// near 0.1 — coarse, but enough to read the gap and adapt.
	eps := 0.1 / float64(a.NNZ()+2*a.R)

	// A short probe bounds the tax of hopeless attempts: certification
	// needs the residual below the score gap, and a budgeted push's
	// residual decays roughly exponentially in pushes. The decay rate
	// observed over the probe prefix projects how many pushes reaching
	// the current gap would take; when that projection overshoots the
	// budget, the attempt is abandoned with only a small fraction of it
	// spent. The projection is optimistic (frontier growth slows decay
	// further), so a continue is never certain — but a bail is never a
	// correctness risk either: it only forfeits the push certificate and
	// hands the query to the block-pruned exact solve.
	probe := budget / 16
	if probe < 512 {
		probe = 512
	}
	probeDrained, err := ps.Run(eps, probe)
	if err != nil {
		return nil, st, err
	}
	if err := ctx.Err(); err != nil {
		return nil, st, err
	}
	if !probeDrained {
		r := ps.ResidualMass()
		_, gap := gapAt()
		rate := math.Log(1/r) / float64(ps.Pushes())
		if gap <= 0 || rate <= 0 ||
			float64(ps.Pushes())+math.Log(r/gap)/rate > float64(budget) {
			st.Rounds, st.Pushes, st.Residual = 1, ps.Pushes(), r
			d.notePushOutcome(a, false)
			return nil, st, nil
		}
	}

	for round := 0; round < topKPushRounds; round++ {
		st.Rounds++
		drained := false
		for ps.Pushes() < budget {
			chunk := budget - ps.Pushes()
			if chunk > topKCtxCheckPushes {
				chunk = topKCtxCheckPushes
			}
			var err error
			drained, err = ps.Run(eps, chunk)
			if err != nil {
				return nil, st, err
			}
			if err := ctx.Err(); err != nil {
				return nil, st, err
			}
			if drained {
				break
			}
		}
		r := ps.ResidualMass()
		st.Pushes, st.Residual = ps.Pushes(), r
		// Inflate the bound by a hair so floating-point rounding in either
		// the push or the exact solve cannot flip a marginal certificate.
		rSafe := r + r*1e-9 + 1e-12
		top, gap := gapAt()
		if gap > rSafe {
			est := ps.EstimatesRef()
			nodes := append([]int(nil), top[:k]...)
			scores := make([]float64, k)
			for i, v := range nodes {
				scores[i] = est[v]
			}
			st.Pruned = true
			d.notePushOutcome(a, true)
			return &TopKResult{Nodes: nodes, Scores: scores, Stats: st}, st, nil
		}
		if !drained || r == 0 {
			// Budget exhausted, or nothing left to push (the remaining gap
			// is a genuine tie): tightening cannot help.
			d.notePushOutcome(a, false)
			return nil, st, nil
		}
		// Shrink the threshold toward the observed gap: R scales linearly
		// with eps once the frontier drains, so aiming R at gap/2 usually
		// certifies next round; the clamps keep progress steady when the
		// gap reading is degenerate.
		shrink := 0.5
		if gap > 0 {
			if s := gap / (2 * rSafe); s < shrink {
				shrink = s
			}
		}
		if shrink < 1.0/64 {
			shrink = 1.0 / 64
		}
		eps *= shrink
	}
	d.notePushOutcome(a, false)
	return nil, st, nil
}

// notePushOutcome records whether a push certification attempt against
// matrix a succeeded, maintaining the consecutive-failure strike count
// that adaptively disables the push phase (see Dynamic.pushStrikes).
func (d *Dynamic) notePushOutcome(a *sparse.CSR, certified bool) {
	d.mu.Lock()
	if certified || d.pushStrikesFor != a {
		d.pushStrikesFor, d.pushStrikes = a, 0
	}
	if !certified {
		d.pushStrikes++
	}
	d.mu.Unlock()
}

// normalized returns the row-normalized adjacency of g, caching it on the
// Dynamic keyed by graph identity (materialized graphs are immutable and
// cached per state, so pointer equality is exact). Repeated hybrid top-k
// queries between updates then share one normalization pass.
func (d *Dynamic) normalized(g *graph.Graph) *sparse.CSR {
	d.mu.RLock()
	if d.normFor == g {
		a := d.norm
		d.mu.RUnlock()
		return a
	}
	d.mu.RUnlock()
	a := g.Normalized()
	d.mu.Lock()
	// Install only if g still describes the current graph; a concurrent
	// update may have moved on, and its normalization must not be clobbered
	// by this stale one.
	if d.curCache == g {
		d.normFor, d.norm = g, a
	}
	d.mu.Unlock()
	return a
}

// pusherEntry pairs a pooled push engine with the normalized matrix it
// was built over; an engine is only reused while that matrix is still the
// current one, so stale engines retire naturally after graph updates.
type pusherEntry struct {
	a  *sparse.CSR
	ps *rwr.Pusher
}

// pusher returns a push engine over a, reusing a pooled one when its
// matrix still matches. The engine carries O(N) state whose reset cost is
// proportional to the previous query's footprint, so reuse turns a failed
// certification attempt's fixed cost from four length-N allocations into
// nothing. Callers must return the engine via d.pushers.Put.
func (d *Dynamic) pusher(a *sparse.CSR, c float64) *rwr.Pusher {
	if v := d.pushers.Get(); v != nil {
		if e := v.(*pusherEntry); e.a == a {
			return e.ps
		}
	}
	return rwr.NewPusher(a, c)
}

// TopKExcluding is TopK restricted to nodes for which skip returns false.
// Ranking semantics (descending score, ties by ascending id, NaN last) are
// identical to TopK; the result is shorter than k when fewer than k nodes
// survive the filter. A nil skip is TopK.
func TopKExcluding(scores []float64, k int, skip func(int) bool) []int {
	return topKFiltered(scores, k, skip)
}

// TopKCandidates ranks link-prediction candidates for seed: the top-k
// scored nodes excluding the seed itself and every node it already points
// at. This is the standard RWR candidate-selection step — recommending an
// existing neighbor is vacuous, so only new links are ranked.
func TopKCandidates(g *graph.Graph, scores []float64, seed, k int) []int {
	out, _ := g.Out(seed)
	return topKFiltered(scores, k, func(v int) bool {
		if v == seed {
			return true
		}
		i := sort.SearchInts(out, v)
		return i < len(out) && out[i] == v
	})
}
