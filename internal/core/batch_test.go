package core

import (
	"sync"
	"testing"

	"bear/internal/graph/gen"
)

func TestQueryBatchMatchesSequential(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(400, 2400, 0.7, 40))
	p, err := Preprocess(g, Options{K: 3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	seeds := []int{0, 17, 42, 100, 250, 399, 42}
	batch, err := p.QueryBatch(seeds, 4)
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	for i, s := range seeds {
		want, err := p.Query(s)
		if err != nil {
			t.Fatalf("Query(%d): %v", s, err)
		}
		if d := maxAbsDiff(batch[i], want); d != 0 {
			t.Fatalf("batch result %d differs by %g", i, d)
		}
	}
}

func TestQueryBatchValidatesSeeds(t *testing.T) {
	g := gen.ErdosRenyi(20, 60, 41)
	p, err := Preprocess(g, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if _, err := p.QueryBatch([]int{0, 25}, 2); err == nil {
		t.Fatal("expected out-of-range error")
	}
	out, err := p.QueryBatch(nil, 4)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v, %d results", err, len(out))
	}
}

func TestConcurrentQueriesAreSafe(t *testing.T) {
	// Precomputed is documented safe for concurrent use; hammer it from
	// many goroutines and verify results stay deterministic.
	g := gen.BarabasiAlbert(300, 2, 42)
	p, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	want, err := p.Query(7)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 32; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, err := p.Query(7)
			if err != nil {
				errs <- err
				return
			}
			if maxAbsDiff(got, want) != 0 {
				errs <- errNondeterministic
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errNondeterministic = &nondeterministicError{}

type nondeterministicError struct{}

func (*nondeterministicError) Error() string { return "concurrent query result differs" }

func TestNoHubOrderStillExact(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(200, 1200, 0.6, 43))
	p, err := Preprocess(g, Options{K: 3, NoHubOrder: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	got, err := p.Query(11)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	q := make([]float64, g.N())
	q[11] = 1
	want := directSolve(t, g, p.C, q)
	if d := maxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("NoHubOrder broke exactness: diff %g", d)
	}
}

func TestParallelPreprocessBitIdentical(t *testing.T) {
	// Workers > 1 must produce bit-identical precomputed matrices: the
	// block factorizations never mix arithmetic across blocks.
	g := gen.RMAT(gen.NewRMATPul(500, 3000, 0.7, 44))
	seq, err := Preprocess(g, Options{K: 3, Workers: 1})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Preprocess(g, Options{K: 3, Workers: -1})
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	pairs := [][2]interface{}{
		{seq.L1Inv.Val, par.L1Inv.Val},
		{seq.U1Inv.Val, par.U1Inv.Val},
		{seq.L2Inv.Val, par.L2Inv.Val},
		{seq.U2Inv.Val, par.U2Inv.Val},
		{seq.H12.Val, par.H12.Val},
		{seq.H21.Val, par.H21.Val},
	}
	for i, pr := range pairs {
		a := pr[0].([]float64)
		b := pr[1].([]float64)
		if len(a) != len(b) {
			t.Fatalf("matrix %d: nnz %d vs %d", i, len(a), len(b))
		}
		for k := range a {
			if a[k] != b[k] {
				t.Fatalf("matrix %d differs at entry %d: %g vs %g", i, k, a[k], b[k])
			}
		}
	}
	rs, _ := seq.Query(7)
	rp, _ := par.Query(7)
	if d := maxAbsDiff(rs, rp); d != 0 {
		t.Fatalf("parallel preprocessing changed query results by %g", d)
	}
}
