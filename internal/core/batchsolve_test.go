package core

import (
	"context"
	"fmt"
	"math"
	"testing"

	"bear/internal/graph/gen"
)

// TestQueryBatchBitIdenticalAcrossVariants is the batch equivalence
// guarantee: for seeds covering every diagonal block and every hub —
// duplicated and shuffled so chunks mix blocks, hubs, and repeats — the
// blocked multi-RHS solver must produce exactly the same bits as the
// single-seed path, across the Laplacian, drop-tolerance, and
// no-hub-order variants.
func TestQueryBatchBitIdenticalAcrossVariants(t *testing.T) {
	for name, g := range testGraphs(95) {
		variants := map[string]Options{
			"exact":      {C: 0.05, K: 4},
			"laplacian":  {C: 0.1, K: 4, Laplacian: true},
			"approx":     {C: 0.05, K: 4, DropTol: 1 / math.Sqrt(float64(g.N()))},
			"nohuborder": {C: 0.05, K: 4, NoHubOrder: true},
		}
		for vname, opts := range variants {
			t.Run(name+"/"+vname, func(t *testing.T) {
				p, err := Preprocess(g, opts)
				if err != nil {
					t.Fatalf("Preprocess: %v", err)
				}
				base := seedsCoveringStructure(p)
				// Duplicates and reversed order: repeated seeds must solve
				// independently, and chunk grouping must not depend on the
				// caller's seed order.
				seeds := append(append([]int(nil), base...), base[0])
				for i := len(base) - 1; i >= 0; i-- {
					seeds = append(seeds, base[i])
				}
				for _, workers := range []int{1, 3} {
					batch, err := p.QueryBatch(seeds, workers)
					if err != nil {
						t.Fatalf("QueryBatch(workers=%d): %v", workers, err)
					}
					for i, seed := range seeds {
						want, err := p.Query(seed)
						if err != nil {
							t.Fatalf("Query(%d): %v", seed, err)
						}
						assertBitIdentical(t, batch[i], want,
							fmt.Sprintf("workers=%d batch[%d] (seed %d)", workers, i, seed))
					}
				}
			})
		}
	}
}

// TestQueryBatchToReusesWorkspace drives QueryBatchTo directly with a
// caller-held workspace across several batches, including widths above and
// below the chunk size, and checks the contract errors.
func TestQueryBatchToReusesWorkspace(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 18, PIntra: 0.3, Hubs: 5, HubDeg: 20, Seed: 96})
	p, err := Preprocess(g, Options{K: 4})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	bw := p.AcquireBatchWorkspace()
	defer p.ReleaseBatchWorkspace(bw)
	for trial, seeds := range [][]int{
		{3},
		{0, 1, 2, 3, 4, 5},
		seedsCoveringStructure(p), // wider than one chunk
	} {
		dst := make([][]float64, len(seeds))
		for i := range dst {
			dst[i] = make([]float64, p.N)
		}
		if err := p.QueryBatchTo(context.Background(), dst, seeds, bw); err != nil {
			t.Fatalf("trial %d: QueryBatchTo: %v", trial, err)
		}
		for i, seed := range seeds {
			want, err := p.Query(seed)
			if err != nil {
				t.Fatalf("Query(%d): %v", seed, err)
			}
			assertBitIdentical(t, dst[i], want, fmt.Sprintf("trial %d seed %d", trial, seed))
		}
	}

	if err := p.QueryBatchTo(context.Background(), make([][]float64, 2), []int{0}, bw); err == nil {
		t.Fatal("expected dst/seeds length mismatch error")
	}
	if err := p.QueryBatchTo(context.Background(), [][]float64{make([]float64, 3)}, []int{0}, bw); err == nil {
		t.Fatal("expected short destination error")
	}
	if err := p.QueryBatchTo(context.Background(), [][]float64{make([]float64, p.N)}, []int{p.N}, bw); err == nil {
		t.Fatal("expected out-of-range seed error")
	}
}

// TestDynamicQueryBatchMatchesPerSeed covers both Dynamic batch regimes:
// the clean path (blocked solver, bit-identical to Query) and the dirty
// path (per-seed Woodbury fallback after updates).
func TestDynamicQueryBatchMatchesPerSeed(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 8, Size: 15, PIntra: 0.3, Hubs: 4, HubDeg: 15, Seed: 97})
	d, err := NewDynamic(g, Options{K: 3})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	seeds := []int{0, 7, 31, 64, 99, 7}
	check := func(stage string) {
		t.Helper()
		batch, err := d.QueryBatch(seeds, 2)
		if err != nil {
			t.Fatalf("%s: QueryBatch: %v", stage, err)
		}
		for i, s := range seeds {
			want, err := d.Query(s)
			if err != nil {
				t.Fatalf("%s: Query(%d): %v", stage, s, err)
			}
			assertBitIdentical(t, batch[i], want, fmt.Sprintf("%s seed %d", stage, s))
		}
	}
	check("clean")
	if err := d.AddEdge(3, 64, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if d.Epoch() == 0 {
		t.Fatal("epoch did not advance on update")
	}
	check("dirty")
	if err := d.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	check("rebuilt")
}

// TestEpochAdvances pins the transitions the cache keys on: updates and
// rebuild swaps each bump the epoch; reads do not.
func TestEpochAdvances(t *testing.T) {
	g := gen.ErdosRenyi(40, 160, 98)
	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if e := d.Epoch(); e != 0 {
		t.Fatalf("fresh epoch = %d, want 0", e)
	}
	if _, err := d.Query(1); err != nil {
		t.Fatalf("Query: %v", err)
	}
	if e := d.Epoch(); e != 0 {
		t.Fatalf("epoch after read = %d, want 0", e)
	}
	if err := d.AddEdge(0, 1, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	e1 := d.Epoch()
	if e1 == 0 {
		t.Fatal("epoch did not advance on AddEdge")
	}
	if err := d.Rebuild(); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	if e2 := d.Epoch(); e2 <= e1 {
		t.Fatalf("epoch after rebuild = %d, want > %d", e2, e1)
	}
}

// TestTopKEdgeCases locks in the boundary contract: non-positive and
// oversized k, empty input, all-equal scores (deterministic ascending-id
// order), and NaN entries, which must rank below every real score instead
// of corrupting the heap.
func TestTopKEdgeCases(t *testing.T) {
	scores := []float64{0.2, 0.8, 0.5}
	if got := TopK(scores, 0); len(got) != 0 {
		t.Fatalf("TopK(k=0) = %v, want empty", got)
	}
	if got := TopK(scores, -3); len(got) != 0 {
		t.Fatalf("TopK(k=-3) = %v, want empty", got)
	}
	if got := TopK(nil, 5); len(got) != 0 {
		t.Fatalf("TopK(nil) = %v, want empty", got)
	}
	if got := TopK(scores, 10); !equalInts(got, []int{1, 2, 0}) {
		t.Fatalf("TopK(k>len) = %v, want [1 2 0]", got)
	}

	equal := []float64{0.25, 0.25, 0.25, 0.25, 0.25}
	if got := TopK(equal, 3); !equalInts(got, []int{0, 1, 2}) {
		t.Fatalf("all-equal TopK = %v, want [0 1 2]", got)
	}
	if got := TopK(equal, 5); !equalInts(got, []int{0, 1, 2, 3, 4}) {
		t.Fatalf("all-equal full TopK = %v, want ascending ids", got)
	}

	nan := math.NaN()
	withNaN := []float64{0.3, nan, 0.5, nan, 0.1}
	if got := TopK(withNaN, 3); !equalInts(got, []int{2, 0, 4}) {
		t.Fatalf("NaN TopK(3) = %v, want [2 0 4]", got)
	}
	if got := TopK(withNaN, 5); !equalInts(got, []int{2, 0, 4, 1, 3}) {
		t.Fatalf("NaN TopK(5) = %v, want NaNs last by id", got)
	}
	allNaN := []float64{nan, nan, nan}
	if got := TopK(allNaN, 2); !equalInts(got, []int{0, 1}) {
		t.Fatalf("all-NaN TopK = %v, want [0 1]", got)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
