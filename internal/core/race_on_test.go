//go:build race

package core

// raceEnabled reports whether the race detector is active; its
// instrumentation adds heap allocations, so allocation-count assertions
// are skipped under -race.
const raceEnabled = true
