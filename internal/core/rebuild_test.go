package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"

	"bear/internal/graph"
	"bear/internal/graph/gen"
	"bear/internal/sparse"
)

// csrBitsEqual compares pattern and value bits exactly (no tolerance):
// the incremental rebuild promises bit-identity with a pinned-ordering
// full re-factorization, not merely numerical closeness.
func csrBitsEqual(a, b *sparse.CSR) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.R != b.R || a.C != b.C || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i <= a.R; i++ {
		if a.RowPtr[i] != b.RowPtr[i] {
			return false
		}
	}
	for k := range a.ColIdx {
		if a.ColIdx[k] != b.ColIdx[k] || a.Val[k] != b.Val[k] {
			return false
		}
	}
	return true
}

// pinnedFullPrecomputed re-runs the whole factorization of snap under
// old's retained ordering and partition — every block re-factored, the
// Schur complement assembled and factored from scratch, no fresh
// SlashBurn and no hub re-reorder (both are already folded into
// old.Perm). This is the oracle the incremental rebuild must match
// bit-for-bit: it performs the same arithmetic in the same association
// order, just without skipping the clean blocks.
func pinnedFullPrecomputed(t *testing.T, snap *graph.Graph, old *Precomputed, opts Options) *Precomputed {
	t.Helper()
	opts = opts.withDefaults()
	n, n1 := old.N, old.N1
	h := snap.HMatrixCSC(old.C, false)
	hp := h.Permute(old.Perm, old.Perm)
	h11 := hp.Submatrix(0, n1, 0, n1)
	h12 := hp.Submatrix(0, n1, n1, n).ToCSR()
	h21 := hp.Submatrix(n1, n, 0, n1).ToCSR()
	h22 := hp.Submatrix(n1, n, n1, n).ToCSR()

	var l1inv, u1inv *sparse.CSR
	if len(old.Blocks) > 1 {
		li, ui, err := sparse.BlockDiagLUInverse(h11, old.Blocks, 1)
		if err != nil {
			t.Fatalf("pinned full rebuild: block LU: %v", err)
		}
		l1inv, u1inv = li, ui
	} else {
		f1, err := sparse.LU(h11)
		if err != nil {
			t.Fatalf("pinned full rebuild: LU of H11: %v", err)
		}
		li, err := sparse.InverseLower(f1.L, true)
		if err != nil {
			t.Fatalf("pinned full rebuild: inverting L1: %v", err)
		}
		ui, err := sparse.InverseUpper(f1.U)
		if err != nil {
			t.Fatalf("pinned full rebuild: inverting U1: %v", err)
		}
		l1inv, u1inv = li.ToCSR(), ui.ToCSR()
	}

	var s, t2 *sparse.CSR
	if old.N2 > 0 {
		t1 := sparse.ParallelMul(l1inv, h12, 1)
		t2 = sparse.ParallelMul(u1inv, t1, 1)
		t3 := sparse.ParallelMul(h21, t2, 1)
		s = sparse.Sub(h22, t3).Prune()
	} else {
		t2 = sparse.NewCSR(n1, 0, nil)
		s = sparse.NewCSR(0, 0, nil)
	}
	l2inv, u2inv, sperm, err := factorSchur(s, opts.DenseSchurCutoff)
	if err != nil {
		t.Fatalf("pinned full rebuild: factoring Schur complement: %v", err)
	}

	p2 := &Precomputed{
		N: n, N1: n1, N2: old.N2, C: old.C,
		Blocks:    old.Blocks,
		Perm:      old.Perm,
		InvPerm:   old.InvPerm,
		L1Inv:     l1inv,
		U1Inv:     u1inv,
		H12:       h12,
		H21:       h21,
		L2Inv:     l2inv,
		U2Inv:     u2inv,
		SPerm:     sperm,
		OutDegree: weightedOutDegrees(snap),
		incr:      &rebuildCache{t2: t2, h22: h22},
	}
	p2.initDerived()
	if err := p2.initKernels(opts.Kernel); err != nil {
		t.Fatalf("pinned full rebuild: %v", err)
	}
	return p2
}

// applyEligibleChurn applies fraction×n random spoke-only updates that the
// incremental path must accept: weight perturbations, edge removals, new
// edges to hubs, new edges within the spoke's own block, and empty rows
// gaining their first edge. Returns the updated node ids.
func applyEligibleChurn(t *testing.T, rng *rand.Rand, d *Dynamic, fraction float64) []int {
	t.Helper()
	p := d.Precomputed()
	var spokes, hubs []int
	for u := 0; u < p.N; u++ {
		if p.IsHub(u) {
			hubs = append(hubs, u)
		} else {
			spokes = append(spokes, u)
		}
	}
	want := int(fraction * float64(p.N))
	if want < 1 {
		want = 1
	}
	var touched []int
	for _, u := range rng.Perm(len(spokes)) {
		if len(touched) >= want {
			break
		}
		node := spokes[u]
		dst, w := d.Graph().Out(node)
		switch op := rng.Intn(4); {
		case op == 0 && len(dst) > 0: // perturb every weight
			nw := make([]float64, len(w))
			for i, x := range w {
				nw[i] = x * (0.5 + rng.Float64())
			}
			nd := append([]int(nil), dst...)
			if err := d.UpdateNode(node, nd, nw); err != nil {
				t.Fatalf("UpdateNode(%d): %v", node, err)
			}
		case op == 1 && len(dst) > 1: // drop one edge
			if err := d.RemoveEdge(node, dst[rng.Intn(len(dst))]); err != nil {
				t.Fatalf("RemoveEdge(%d): %v", node, err)
			}
		case op == 2 && len(hubs) > 0: // new or reweighted edge to a hub
			if err := d.AddEdge(node, hubs[rng.Intn(len(hubs))], 1+rng.Float64()); err != nil {
				t.Fatalf("AddEdge(%d, hub): %v", node, err)
			}
		default: // new or reweighted edge inside the node's own block
			b := p.BlockOf(node)
			var mate int = -1
			for _, tries := 0, 0; tries < 50; tries++ {
				v := spokes[rng.Intn(len(spokes))]
				if p.BlockOf(v) == b {
					mate = v
					break
				}
			}
			if mate < 0 {
				continue
			}
			if err := d.AddEdge(node, mate, 1+rng.Float64()); err != nil {
				t.Fatalf("AddEdge(%d, %d): %v", node, mate, err)
			}
		}
		touched = append(touched, node)
	}
	if len(touched) == 0 {
		t.Fatal("applyEligibleChurn made no updates")
	}
	return touched
}

// TestIncrementalRebuildBitIdentical is the equivalence property test:
// random graphs × random spoke-only churn patterns → the incremental
// rebuild's matrices and query results are bit-identical to a full
// re-factorization of the same materialized graph under the same
// ordering.
func TestIncrementalRebuildBitIdentical(t *testing.T) {
	graphs := []struct {
		name string
		g    *graph.Graph
	}{
		{"rmat", gen.RMAT(gen.NewRMATPul(300, 1800, 0.7, 60))},
		{"ba", gen.BarabasiAlbert(200, 2, 61)},
		{"er", gen.ErdosRenyi(150, 900, 62)},
	}
	for _, tc := range graphs {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(63))
			d, err := NewDynamic(tc.g, Options{K: 2, KeepH: true})
			if err != nil {
				t.Fatalf("NewDynamic: %v", err)
			}
			for round := 0; round < 3; round++ {
				applyEligibleChurn(t, rng, d, 0.05)
				snap := d.Graph()
				pinned := pinnedFullPrecomputed(t, snap, d.Precomputed(), d.Options())

				rep, err := d.RebuildCtx(context.Background(), RebuildIncremental)
				if err != nil {
					t.Fatalf("round %d: incremental rebuild: %v", round, err)
				}
				if rep.Mode != RebuildIncremental || rep.FallbackReason != "" {
					t.Fatalf("round %d: mode=%s fallback=%q, want incremental with no fallback",
						round, rep.Mode, rep.FallbackReason)
				}
				if rep.BlocksRefactored < 1 || rep.BlocksRefactored > rep.TotalBlocks {
					t.Fatalf("round %d: refactored %d of %d blocks", round, rep.BlocksRefactored, rep.TotalBlocks)
				}

				got := d.Precomputed()
				for name, pair := range map[string][2]*sparse.CSR{
					"L1Inv": {got.L1Inv, pinned.L1Inv},
					"U1Inv": {got.U1Inv, pinned.U1Inv},
					"H12":   {got.H12, pinned.H12},
					"H21":   {got.H21, pinned.H21},
					"L2Inv": {got.L2Inv, pinned.L2Inv},
					"U2Inv": {got.U2Inv, pinned.U2Inv},
					"t2":    {got.incr.t2, pinned.incr.t2},
				} {
					if !csrBitsEqual(pair[0], pair[1]) {
						t.Fatalf("round %d: %s differs from pinned full rebuild", round, name)
					}
				}
				if (got.SPerm == nil) != (pinned.SPerm == nil) {
					t.Fatalf("round %d: SPerm presence differs", round)
				}
				for i := range got.SPerm {
					if got.SPerm[i] != pinned.SPerm[i] {
						t.Fatalf("round %d: SPerm[%d] differs", round, i)
					}
				}
				// The retained exact H must track the new graph bit-for-bit:
				// it is what Residual and refinement measure against.
				wantH := snap.HMatrixCSC(got.C, false).Permute(got.Perm, got.Perm).ToCSR()
				if !csrBitsEqual(got.H, wantH) {
					t.Fatalf("round %d: patched H differs from rebuilt H", round)
				}

				for _, seed := range []int{0, 7, got.N - 1} {
					a, err := got.Query(seed)
					if err != nil {
						t.Fatalf("round %d: query after incremental rebuild: %v", round, err)
					}
					b, err := pinned.Query(seed)
					if err != nil {
						t.Fatalf("round %d: pinned query: %v", round, err)
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("round %d: query(%d)[%d] = %x, pinned %x", round, seed, i, a[i], b[i])
						}
					}
				}
				// And against ground truth — a from-scratch preprocessing of
				// the same graph (fresh SlashBurn, so only numerically close).
				r, err := d.Query(11 % got.N)
				if err != nil {
					t.Fatalf("round %d: dynamic query: %v", round, err)
				}
				if diff := maxAbsDiff(r, freshSolve(t, snap, 11%got.N)); diff > 1e-9 {
					t.Fatalf("round %d: incremental rebuild drifted %g from fresh preprocess", round, diff)
				}
			}
		})
	}
}

// TestIncrementalRebuildFallbacks drives every disqualifying churn
// pattern through auto mode and asserts the recorded fallback reason, and
// that explicit incremental mode refuses with the same reason.
func TestIncrementalRebuildFallbacks(t *testing.T) {
	newDyn := func(t *testing.T, opts Options) *Dynamic {
		t.Helper()
		d, err := NewDynamic(gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 64)), opts)
		if err != nil {
			t.Fatalf("NewDynamic: %v", err)
		}
		return d
	}
	findHub := func(d *Dynamic) int {
		p := d.Precomputed()
		for u := 0; u < p.N; u++ {
			if p.IsHub(u) {
				return u
			}
		}
		t.Fatal("graph has no hubs")
		return -1
	}
	findCrossBlockPair := func(d *Dynamic) (int, int) {
		p := d.Precomputed()
		for u := 0; u < p.N; u++ {
			if bu := p.BlockOf(u); bu >= 0 {
				for v := 0; v < p.N; v++ {
					if bv := p.BlockOf(v); bv >= 0 && bv != bu {
						return u, v
					}
				}
			}
		}
		t.Skip("graph has fewer than two blocks")
		return -1, -1
	}
	dirtySpoke := func(t *testing.T, d *Dynamic) {
		t.Helper()
		p := d.Precomputed()
		for u := 0; u < p.N; u++ {
			if !p.IsHub(u) {
				if err := d.AddEdge(u, findHub(d), 1.5); err != nil {
					t.Fatalf("AddEdge: %v", err)
				}
				return
			}
		}
	}

	cases := []struct {
		name   string
		setup  func(t *testing.T) *Dynamic
		reason string
	}{
		{"no_pending", func(t *testing.T) *Dynamic {
			return newDyn(t, Options{K: 2})
		}, FallbackNoPending},
		{"drop_tol", func(t *testing.T) *Dynamic {
			d := newDyn(t, Options{K: 2, DropTol: 1e-6})
			dirtySpoke(t, d)
			return d
		}, FallbackDropTol},
		{"laplacian", func(t *testing.T) *Dynamic {
			d := newDyn(t, Options{K: 2, Laplacian: true})
			dirtySpoke(t, d)
			return d
		}, FallbackLaplacian},
		{"hub_dirty", func(t *testing.T) *Dynamic {
			d := newDyn(t, Options{K: 2})
			u := findHub(d)
			if err := d.AddEdge(u, (u+1)%d.Precomputed().N, 1.5); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
			return d
		}, FallbackHubDirty},
		{"cross_block", func(t *testing.T) *Dynamic {
			d := newDyn(t, Options{K: 2})
			u, v := findCrossBlockPair(d)
			if err := d.AddEdge(u, v, 1.5); err != nil {
				t.Fatalf("AddEdge: %v", err)
			}
			return d
		}, FallbackCrossBlock},
		{"churn", func(t *testing.T) *Dynamic {
			d := newDyn(t, Options{K: 2})
			d.SetRebuildPolicy(RebuildPolicy{MaxChurnFraction: 1e-9})
			dirtySpoke(t, d)
			return d
		}, FallbackChurn},
		{"fill_ratio", func(t *testing.T) *Dynamic {
			d := newDyn(t, Options{K: 2})
			d.SetRebuildPolicy(RebuildPolicy{MaxFillRatio: 1e-9})
			dirtySpoke(t, d)
			return d
		}, FallbackFillRatio},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.setup(t)
			if tc.reason != FallbackNoPending {
				// Explicit incremental refuses, naming the reason …
				if _, err := d.RebuildCtx(context.Background(), RebuildIncremental); err == nil {
					t.Fatal("explicit incremental rebuild did not refuse")
				} else if !strings.Contains(err.Error(), tc.reason) {
					t.Fatalf("refusal %q does not name reason %q", err, tc.reason)
				}
			}
			// … and auto falls back to a full pass, recording it.
			rep, err := d.RebuildCtx(context.Background(), RebuildAuto)
			if err != nil {
				t.Fatalf("auto rebuild: %v", err)
			}
			if rep.Mode != RebuildFull || rep.FallbackReason != tc.reason {
				t.Fatalf("auto rebuild ran %s with fallback %q, want full with %q",
					rep.Mode, rep.FallbackReason, tc.reason)
			}
			if got, ok := d.LastRebuild(); !ok || got.FallbackReason != tc.reason {
				t.Fatalf("LastRebuild = %+v, %v; want recorded fallback %q", got, ok, tc.reason)
			}
			if d.PendingNodes() != 0 {
				t.Fatalf("fallback full rebuild left %d pending nodes", d.PendingNodes())
			}
		})
	}
}

// TestIncrementalRebuildNoPendingNoOp: explicitly requesting an
// incremental rebuild with nothing dirty is a recorded no-op, not a
// hidden full pass.
func TestIncrementalRebuildNoPendingNoOp(t *testing.T) {
	d, err := NewDynamic(gen.ErdosRenyi(80, 400, 65), Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	oldP := d.Precomputed()
	epoch := d.Epoch()
	rep, err := d.RebuildCtx(context.Background(), RebuildIncremental)
	if err != nil {
		t.Fatalf("RebuildCtx: %v", err)
	}
	if rep.Mode != RebuildIncremental || rep.BlocksRefactored != 0 {
		t.Fatalf("empty incremental rebuild reported %+v", rep)
	}
	if d.Precomputed() != oldP || d.Epoch() != epoch {
		t.Fatal("empty incremental rebuild replaced state")
	}
}

// TestAutoRebuildAfterLoadFallsBackOnce: the Schur-assembly cache is
// derived state and never serialized, so the first auto rebuild of a
// loaded index records no_cache, runs full, and repopulates the cache —
// after which incremental rebuilds work again.
func TestAutoRebuildAfterLoadFallsBackOnce(t *testing.T) {
	d, err := NewDynamic(gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 66)), Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	var buf strings.Builder
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	d2, err := LoadDynamic(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("LoadDynamic: %v", err)
	}
	rng := rand.New(rand.NewSource(67))
	applyEligibleChurn(t, rng, d2, 0.02)
	rep, err := d2.RebuildCtx(context.Background(), RebuildAuto)
	if err != nil {
		t.Fatalf("first rebuild after load: %v", err)
	}
	if rep.Mode != RebuildFull || rep.FallbackReason != FallbackNoCache {
		t.Fatalf("first rebuild after load: mode=%s fallback=%q, want full/no_cache", rep.Mode, rep.FallbackReason)
	}
	applyEligibleChurn(t, rng, d2, 0.02)
	rep, err = d2.RebuildCtx(context.Background(), RebuildAuto)
	if err != nil {
		t.Fatalf("second rebuild after load: %v", err)
	}
	if rep.Mode != RebuildIncremental {
		t.Fatalf("second rebuild after load: mode=%s fallback=%q, want incremental", rep.Mode, rep.FallbackReason)
	}
}

// TestIncrementalRebuildCancellation: a cancelled context aborts the
// incremental path with the old state intact.
func TestIncrementalRebuildCancellation(t *testing.T) {
	d, err := NewDynamic(gen.RMAT(gen.NewRMATPul(200, 1200, 0.7, 68)), Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	applyEligibleChurn(t, rand.New(rand.NewSource(69)), d, 0.02)
	oldP := d.Precomputed()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := d.RebuildCtx(ctx, RebuildIncremental); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled incremental rebuild returned %v, want context.Canceled", err)
	}
	if d.Precomputed() != oldP {
		t.Fatal("cancelled incremental rebuild swapped in new matrices")
	}
	if d.RebuildInProgress() {
		t.Fatal("rebuilding flag stuck after cancelled incremental rebuild")
	}
}
