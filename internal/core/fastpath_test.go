package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"bear/internal/graph/gen"
)

// generalQuery computes a seed query through the unrestricted solver,
// bypassing the single-seed dispatch in solveTo. It is the reference the
// fast path must match bit-for-bit.
func generalQuery(p *Precomputed, q []float64) []float64 {
	dst := make([]float64, p.N)
	ws := p.AcquireWorkspace()
	if err := p.solveGeneralToCtx(context.Background(), dst, q, ws); err != nil {
		panic(err)
	}
	p.ReleaseWorkspace(ws)
	for i := range dst {
		dst[i] *= p.C
	}
	return dst
}

// assertBitIdentical fails unless got and want are equal under ==, i.e.
// exact floating-point equality with no tolerance.
func assertBitIdentical(t *testing.T, got, want []float64, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: entry %d is %v, general path gives %v (Δ=%g)",
				what, i, got[i], want[i], math.Abs(got[i]-want[i]))
		}
	}
}

// seedsCoveringStructure returns one seed inside every diagonal block plus
// every hub, so the fast path is exercised on each restriction range.
func seedsCoveringStructure(p *Precomputed) []int {
	inBlock := make(map[int]int, len(p.Blocks))
	var hubs []int
	for node := 0; node < p.N; node++ {
		if p.IsHub(node) {
			hubs = append(hubs, node)
			continue
		}
		bi := p.BlockOf(node)
		if _, ok := inBlock[bi]; !ok {
			inBlock[bi] = node
		}
	}
	seeds := make([]int, 0, len(inBlock)+len(hubs))
	for _, node := range inBlock {
		seeds = append(seeds, node)
	}
	seeds = append(seeds, hubs...)
	sort.Ints(seeds)
	return seeds
}

// TestFastPathBitIdentical is the tentpole equivalence guarantee: for
// seeds in every block and every hub, across the Laplacian and
// drop-tolerance variants, the block-restricted single-seed path must
// produce exactly the same bits as the general solver.
func TestFastPathBitIdentical(t *testing.T) {
	for name, g := range testGraphs(90) {
		variants := map[string]Options{
			"exact":      {C: 0.05, K: 4},
			"laplacian":  {C: 0.1, K: 4, Laplacian: true},
			"approx":     {C: 0.05, K: 4, DropTol: 1 / math.Sqrt(float64(g.N()))},
			"nohuborder": {C: 0.05, K: 4, NoHubOrder: true},
		}
		for vname, opts := range variants {
			t.Run(name+"/"+vname, func(t *testing.T) {
				p, err := Preprocess(g, opts)
				if err != nil {
					t.Fatalf("Preprocess: %v", err)
				}
				for _, seed := range seedsCoveringStructure(p) {
					got, err := p.Query(seed)
					if err != nil {
						t.Fatalf("Query(%d): %v", seed, err)
					}
					q := make([]float64, p.N)
					q[seed] = 1
					want := generalQuery(p, q)
					kind := fmt.Sprintf("spoke seed %d (block %d)", seed, p.BlockOf(seed))
					if p.IsHub(seed) {
						kind = fmt.Sprintf("hub seed %d", seed)
					}
					assertBitIdentical(t, got, want, kind)
				}
			})
		}
	}
}

// TestQueryDistSingleSeedDispatch: a starting distribution with one
// nonzero entry (any weight) must route through the fast path and still
// match the general solver bit-for-bit.
func TestQueryDistSingleSeedDispatch(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 18, PIntra: 0.3, Hubs: 5, HubDeg: 20, Seed: 91})
	p, err := Preprocess(g, Options{K: 4})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	rng := rand.New(rand.NewSource(92))
	for trial := 0; trial < 20; trial++ {
		q := make([]float64, p.N)
		seed := rng.Intn(p.N)
		q[seed] = 0.25 + rng.Float64()
		got, err := p.QueryDist(q)
		if err != nil {
			t.Fatalf("QueryDist: %v", err)
		}
		assertBitIdentical(t, got, generalQuery(p, q), fmt.Sprintf("dist seed %d", seed))
	}
	// Multi-seed distributions take the general path by construction; the
	// dispatch must not misfire on them.
	q := make([]float64, p.N)
	q[1], q[p.N-1] = 0.5, 0.5
	got, err := p.QueryDist(q)
	if err != nil {
		t.Fatalf("QueryDist multi: %v", err)
	}
	assertBitIdentical(t, got, generalQuery(p, q), "multi-seed dist")
}

// TestFastPathMatchesDirectSolve anchors the fast path to the
// LU-factorization oracle, not just to the general BEAR path.
func TestFastPathMatchesDirectSolve(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 8, Size: 15, PIntra: 0.35, Hubs: 4, HubDeg: 18, Seed: 93})
	p, err := Preprocess(g, Options{C: 0.05, K: 3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for _, seed := range seedsCoveringStructure(p) {
		got, err := p.Query(seed)
		if err != nil {
			t.Fatalf("Query(%d): %v", seed, err)
		}
		q := make([]float64, p.N)
		q[seed] = 1
		want := directSolve(t, g, p.C, q)
		if d := maxAbsDiff(got, want); d > 1e-9 {
			t.Fatalf("seed %d: max abs diff %g vs direct solve", seed, d)
		}
	}
}

// TestQueryToZeroAllocs is the allocation regression gate: with a warmed
// workspace, the *To query paths must not touch the heap at all.
func TestQueryToZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates; alloc counts are only meaningful without -race")
	}
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 20, PIntra: 0.3, Hubs: 5, HubDeg: 25, Seed: 94})
	p, err := Preprocess(g, Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	dst := make([]float64, p.N)
	q := make([]float64, p.N)
	q[3], q[70], q[140] = 0.2, 0.5, 0.3
	hub := -1
	for node := 0; node < p.N; node++ {
		if p.IsHub(node) {
			hub = node
			break
		}
	}
	var qerr error
	cases := []struct {
		name string
		fn   func()
	}{
		{"QueryTo/spoke", func() { qerr = p.QueryTo(dst, 1, ws) }},
		{"QueryTo/hub", func() { qerr = p.QueryTo(dst, hub, ws) }},
		{"QueryDistTo/general", func() { qerr = p.QueryDistTo(dst, q, ws) }},
	}
	for _, c := range cases {
		if hub < 0 && c.name == "QueryTo/hub" {
			continue
		}
		c.fn() // warm any lazy state before measuring
		if allocs := testing.AllocsPerRun(50, c.fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", c.name, allocs)
		}
		if qerr != nil {
			t.Fatalf("%s: %v", c.name, qerr)
		}
	}
	// The allocating wrappers should spend their allocations on the result
	// alone, not on solver scratch.
	if allocs := testing.AllocsPerRun(50, func() { _, qerr = p.Query(1) }); allocs > 1 {
		t.Errorf("Query: %v allocs/op, want ≤ 1 (result only)", allocs)
	}
}

// TestWorkspaceReleaseMismatch: releasing a foreign workspace must panic
// loudly rather than poison the pool with wrongly-sized buffers.
func TestWorkspaceReleaseMismatch(t *testing.T) {
	g1 := gen.ErdosRenyi(30, 90, 95)
	g2 := gen.ErdosRenyi(50, 150, 96)
	p1, err := Preprocess(g1, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	p2, err := Preprocess(g2, Options{K: 1})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic releasing a foreign workspace")
		}
	}()
	p2.ReleaseWorkspace(p1.AcquireWorkspace())
}

// TestConcurrentBatchAndQueryToRace hammers the shared workspace pool from
// QueryBatch and explicit per-goroutine workspaces at once; run with -race
// this is the data-race gate for the pooled query engine.
func TestConcurrentBatchAndQueryToRace(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 8, Size: 15, PIntra: 0.3, Hubs: 4, HubDeg: 15, Seed: 97})
	p, err := Preprocess(g, Options{K: 3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	want, err := p.Query(2)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	seeds := make([]int, 24)
	for i := range seeds {
		seeds[i] = (i * 11) % p.N
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if w%2 == 0 {
				for rep := 0; rep < 5; rep++ {
					if _, err := p.QueryBatch(seeds, 3); err != nil {
						errs <- err
						return
					}
				}
				return
			}
			ws := p.AcquireWorkspace()
			defer p.ReleaseWorkspace(ws)
			dst := make([]float64, p.N)
			for rep := 0; rep < 40; rep++ {
				if err := p.QueryTo(dst, 2, ws); err != nil {
					errs <- err
					return
				}
				if maxAbsDiff(dst, want) != 0 {
					errs <- errNondeterministic
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestBlockOfBinarySearch cross-checks the binary-search BlockOf against a
// linear walk over the block sizes.
func TestBlockOfBinarySearch(t *testing.T) {
	g := gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 12, Size: 10, PIntra: 0.4, Hubs: 4, HubDeg: 12, Seed: 98})
	p, err := Preprocess(g, Options{K: 3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	linear := func(pos int) int {
		off := 0
		for i, sz := range p.Blocks {
			off += sz
			if pos < off {
				return i
			}
		}
		return -1
	}
	for node := 0; node < p.N; node++ {
		want := -1
		if pos := p.Perm[node]; pos < p.N1 {
			want = linear(pos)
		}
		if got := p.BlockOf(node); got != want {
			t.Fatalf("BlockOf(%d) = %d, want %d", node, got, want)
		}
	}
	if len(p.BlockOffsets) != len(p.Blocks)+1 || p.BlockOffsets[len(p.Blocks)] != p.N1 {
		t.Fatalf("BlockOffsets %v inconsistent with Blocks %v (n1=%d)", p.BlockOffsets, p.Blocks, p.N1)
	}
}

// TestTopKMatchesSelectionSort checks the bounded-heap TopK against the
// O(n·k) selection reference it replaced, including heavy ties.
func TestTopKMatchesSelectionSort(t *testing.T) {
	reference := func(scores []float64, k int) []int {
		if k > len(scores) {
			k = len(scores)
		}
		if k < 0 {
			k = 0
		}
		idx := make([]int, len(scores))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(a, b int) bool {
			x, y := idx[a], idx[b]
			return scores[x] > scores[y] || (scores[x] == scores[y] && x < y)
		})
		return idx[:k]
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			// Coarse quantization forces many exact ties.
			scores[i] = float64(rng.Intn(8)) / 7
		}
		k := rng.Intn(n + 10)
		got := TopK(scores, k)
		want := reference(scores, k)
		if len(got) != len(want) {
			t.Fatalf("n=%d k=%d: got %d ids, want %d", n, k, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d k=%d: position %d is %d, want %d", n, k, i, got[i], want[i])
			}
		}
	}
	if got := TopK([]float64{1, 2}, 0); len(got) != 0 {
		t.Fatalf("TopK k=0 returned %v", got)
	}
	if got := TopK(nil, 5); len(got) != 0 {
		t.Fatalf("TopK on empty scores returned %v", got)
	}
}
