package core

import (
	"bytes"
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"bear/internal/graph"
	"bear/internal/graph/gen"
)

// refineTestGraph is an R-MAT graph on which BEAR-Approx at ξ=0.001
// measurably loses accuracy (worst-seed cosine < 1−1e−6 vs BEAR-Exact),
// so refinement has real work to do.
func refineTestGraph() *graph.Graph {
	return gen.RMAT(gen.NewRMATPul(600, 4000, 0.6, 7))
}

// TestQueryRefinedConvergesOnRMAT is the acceptance criterion for the
// refinement layer: where plain BEAR-Approx (ξ=0.001) drops below cosine
// 1−1e−6 against BEAR-Exact, QueryRefined with tol=1e−9 must recover
// cosine ≥ 1−1e−9 within 10 sweeps.
func TestQueryRefinedConvergesOnRMAT(t *testing.T) {
	g := refineTestGraph()
	exact, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess exact: %v", err)
	}
	approx, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess approx: %v", err)
	}
	worstPlain := 1.0
	for seed := 0; seed < 20; seed++ {
		xe, err := exact.Query(seed)
		if err != nil {
			t.Fatalf("exact Query(%d): %v", seed, err)
		}
		xp, err := approx.Query(seed)
		if err != nil {
			t.Fatalf("approx Query(%d): %v", seed, err)
		}
		if c := cosine(xp, xe); c < worstPlain {
			worstPlain = c
		}
		q := make([]float64, g.N())
		q[seed] = 1
		xr, stats, err := approx.QueryRefined(q, 1e-9, 10)
		if err != nil {
			t.Fatalf("QueryRefined(%d): %v", seed, err)
		}
		if !stats.Converged {
			t.Fatalf("seed %d: refinement did not converge in 10 sweeps (residual %g)", seed, stats.Residual)
		}
		if stats.Sweeps > 10 {
			t.Fatalf("seed %d: %d sweeps, want <= 10", seed, stats.Sweeps)
		}
		if c := cosine(xr, xe); c < 1-1e-9 {
			t.Fatalf("seed %d: refined cosine %.15f, want >= 1-1e-9", seed, c)
		}
	}
	// The precondition that makes the test meaningful: the plain approx
	// answers genuinely were inaccurate before refinement.
	if worstPlain >= 1-1e-6 {
		t.Fatalf("worst plain cosine %.12f >= 1-1e-6; drop tolerance too timid for this test", worstPlain)
	}
}

// TestQueryRefinedTolZeroBitIdentical: refinement disabled must give the
// bit-exact plain query result, with zero allocations in steady state.
func TestQueryRefinedTolZeroBitIdentical(t *testing.T) {
	g := refineTestGraph()
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	n := g.N()
	q := make([]float64, n)
	dst := make([]float64, n)
	want := make([]float64, n)
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	for seed := 0; seed < 10; seed++ {
		q[seed] = 1
		if err := p.QueryTo(want, seed, ws); err != nil {
			t.Fatalf("QueryTo: %v", err)
		}
		stats, err := p.QueryRefinedCtx(context.Background(), dst, q, 0, 0, ws)
		if err != nil {
			t.Fatalf("QueryRefinedCtx: %v", err)
		}
		if !stats.Converged || stats.Sweeps != 0 || !math.IsNaN(stats.Residual) {
			t.Fatalf("disabled-refinement stats = %+v, want converged, 0 sweeps, NaN residual", stats)
		}
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("seed %d node %d: refined(tol=0) %g != Query %g", seed, i, dst[i], want[i])
			}
		}
		q[seed] = 0
	}

	q[3] = 1
	ctx := context.Background()
	if allocs := testing.AllocsPerRun(50, func() {
		if _, err := p.QueryRefinedCtx(ctx, dst, q, 0, 0, ws); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("QueryRefinedCtx(tol=0) allocates %.1f times per call, want 0", allocs)
	}
}

// TestQueryRefinedSteadyStateAllocFree: after the first refined solve has
// grown the workspace's refinement buffers, further refined queries through
// the same workspace allocate nothing.
func TestQueryRefinedSteadyStateAllocFree(t *testing.T) {
	g := refineTestGraph()
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	q := make([]float64, g.N())
	q[3] = 1
	dst := make([]float64, g.N())
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	ctx := context.Background()
	// Warm up: grows ws.rq/rz/rr once.
	if _, err := p.QueryRefinedCtx(ctx, dst, q, 1e-9, 10, ws); err != nil {
		t.Fatalf("warm-up QueryRefinedCtx: %v", err)
	}
	if allocs := testing.AllocsPerRun(20, func() {
		if _, err := p.QueryRefinedCtx(ctx, dst, q, 1e-9, 10, ws); err != nil {
			t.Fatal(err)
		}
	}); allocs != 0 {
		t.Fatalf("steady-state refined query allocates %.1f times per call, want 0", allocs)
	}
}

// TestQueryRefinedPropertyStochastic: on a graph with no dangling nodes the
// transition matrix is row-stochastic, so exact RWR scores for a unit seed
// are nonnegative and sum to exactly 1; refined BEAR-Approx answers must
// recover both properties to within the refinement tolerance.
func TestQueryRefinedPropertyStochastic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := 300
	b := graph.NewBuilder(n)
	for u := 0; u < n; u++ {
		b.AddEdge(u, (u+1)%n, 1) // ring: every node has out-degree >= 1
		for e := 0; e < 4; e++ {
			b.AddEdge(u, rng.Intn(n), 0.5+rng.Float64())
		}
	}
	g := b.Build()
	p, err := Preprocess(g, Options{K: 2, DropTol: 5e-3, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	for seed := 0; seed < 15; seed++ {
		q := make([]float64, n)
		q[seed] = 1
		x, stats, err := p.QueryRefined(q, 1e-10, 0)
		if err != nil {
			t.Fatalf("QueryRefined(%d): %v", seed, err)
		}
		if !stats.Converged {
			t.Fatalf("seed %d: not converged, residual %g after %d sweeps", seed, stats.Residual, stats.Sweeps)
		}
		var sum float64
		for i, v := range x {
			if v < -1e-9 {
				t.Fatalf("seed %d: score[%d] = %g, want nonnegative", seed, i, v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("seed %d: scores sum to %.12f, want 1 (stochastic rows)", seed, sum)
		}
	}
}

// TestResidualMeasuresDropError: Residual is ~0 for exact factors, clearly
// nonzero for dropped factors, and back to ~tol after refinement.
func TestResidualMeasuresDropError(t *testing.T) {
	g := refineTestGraph()
	exact, err := Preprocess(g, Options{K: 2, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess exact: %v", err)
	}
	approx, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess approx: %v", err)
	}
	q := make([]float64, g.N())
	q[5] = 1

	xe, err := exact.Query(5)
	if err != nil {
		t.Fatalf("exact Query: %v", err)
	}
	re, err := exact.Residual(xe, q)
	if err != nil {
		t.Fatalf("exact Residual: %v", err)
	}
	if re > 1e-12 {
		t.Fatalf("exact-factor residual %g, want ~rounding level", re)
	}

	xp, err := approx.Query(5)
	if err != nil {
		t.Fatalf("approx Query: %v", err)
	}
	rp, err := approx.Residual(xp, q)
	if err != nil {
		t.Fatalf("approx Residual: %v", err)
	}
	if rp <= 1e-12 {
		t.Fatalf("approx residual %g suspiciously small; drop tolerance had no effect", rp)
	}

	xr, stats, err := approx.QueryRefined(q, 1e-9, 10)
	if err != nil {
		t.Fatalf("QueryRefined: %v", err)
	}
	rr, err := approx.Residual(xr, q)
	if err != nil {
		t.Fatalf("refined Residual: %v", err)
	}
	if rr >= rp {
		t.Fatalf("refined residual %g not below plain residual %g", rr, rp)
	}
	// stats.Residual is the c-scaled measurement from the last sweep's
	// check; an independent Residual call on the final iterate must agree
	// to rounding.
	if math.Abs(rr-stats.Residual) > 1e-12 {
		t.Fatalf("Residual() = %g, stats.Residual = %g; want agreement", rr, stats.Residual)
	}
}

// TestRefineRequiresKeepH: the guardrail paths fail loudly, not silently,
// when H was not retained.
func TestRefineRequiresKeepH(t *testing.T) {
	g := gen.BarabasiAlbert(80, 2, 5)
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-3})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	q := make([]float64, g.N())
	q[0] = 1
	if _, _, err := p.QueryRefined(q, 1e-9, 0); err != ErrNoRetainedH {
		t.Fatalf("QueryRefined without KeepH: err = %v, want ErrNoRetainedH", err)
	}
	x, err := p.Query(0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if _, err := p.Residual(x, q); err != ErrNoRetainedH {
		t.Fatalf("Residual without KeepH: err = %v, want ErrNoRetainedH", err)
	}
	// tol <= 0 never needs H and must keep working.
	if _, _, err := p.QueryRefined(q, 0, 0); err != nil {
		t.Fatalf("QueryRefined(tol=0) without KeepH: %v", err)
	}
}

// TestSaveLoadRetainsH: the precompute format round-trips the retained H
// bit-for-bit (v3), while H-less states keep writing the v2 format so old
// readers stay compatible.
func TestSaveLoadRetainsH(t *testing.T) {
	g := gen.BarabasiAlbert(120, 2, 9)
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	if p.H == nil {
		t.Fatal("KeepH did not retain H")
	}
	var buf bytes.Buffer
	if err := p.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := string(buf.Bytes()[:8]); got != "BEARPC03" {
		t.Fatalf("magic %q, want BEARPC03 when H is retained", got)
	}
	p2, err := Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if p2.H == nil {
		t.Fatal("loaded Precomputed lost H")
	}
	if p2.H.R != p.H.R || p2.H.C != p.H.C || len(p2.H.Val) != len(p.H.Val) {
		t.Fatalf("loaded H is %dx%d/%d nnz, want %dx%d/%d", p2.H.R, p2.H.C, len(p2.H.Val), p.H.R, p.H.C, len(p.H.Val))
	}
	for i := range p.H.Val {
		if p2.H.Val[i] != p.H.Val[i] || p2.H.ColIdx[i] != p.H.ColIdx[i] {
			t.Fatalf("loaded H differs at entry %d", i)
		}
	}
	// A refined query through the loaded state must behave identically.
	q := make([]float64, g.N())
	q[1] = 1
	x1, s1, err := p.QueryRefined(q, 1e-9, 10)
	if err != nil {
		t.Fatalf("QueryRefined original: %v", err)
	}
	x2, s2, err := p2.QueryRefined(q, 1e-9, 10)
	if err != nil {
		t.Fatalf("QueryRefined loaded: %v", err)
	}
	if s1.Sweeps != s2.Sweeps || maxAbsDiff(x1, x2) != 0 {
		t.Fatalf("loaded state refines differently: sweeps %d vs %d, diff %g", s1.Sweeps, s2.Sweeps, maxAbsDiff(x1, x2))
	}

	// Without H the format stays v2, byte-compatible with old readers.
	pNoH, err := Preprocess(g, Options{K: 2})
	if err != nil {
		t.Fatalf("Preprocess no-H: %v", err)
	}
	var buf2 bytes.Buffer
	if err := pNoH.Save(&buf2); err != nil {
		t.Fatalf("Save no-H: %v", err)
	}
	if got := string(buf2.Bytes()[:8]); got != "BEARPC02" {
		t.Fatalf("magic %q, want BEARPC02 when H is absent", got)
	}
}

// TestDynStateRetainsH: the dynamic-state snapshot round-trips KeepH and
// the retained H (v2 dynamic format), and H-less dynamics keep the v1
// format.
func TestDynStateRetainsH(t *testing.T) {
	g := gen.BarabasiAlbert(100, 2, 13)
	d, err := NewDynamic(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.AddEdge(3, 50, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	var buf bytes.Buffer
	if err := d.SaveState(&buf); err != nil {
		t.Fatalf("SaveState: %v", err)
	}
	if got := string(buf.Bytes()[:8]); got != "BEARDY02" {
		t.Fatalf("magic %q, want BEARDY02 with KeepH", got)
	}
	d2, err := LoadDynamic(&buf)
	if err != nil {
		t.Fatalf("LoadDynamic: %v", err)
	}
	if !d2.Options().KeepH {
		t.Fatal("restored Dynamic lost Options.KeepH")
	}
	if d2.Precomputed().H == nil {
		t.Fatal("restored Dynamic lost the retained H")
	}
	if d2.PendingNodes() != 1 {
		t.Fatalf("restored PendingNodes = %d, want 1", d2.PendingNodes())
	}

	dNoH, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic no-H: %v", err)
	}
	var buf2 bytes.Buffer
	if err := dNoH.SaveState(&buf2); err != nil {
		t.Fatalf("SaveState no-H: %v", err)
	}
	if got := string(buf2.Bytes()[:8]); got != "BEARDY01" {
		t.Fatalf("magic %q, want BEARDY01 without KeepH", got)
	}
}

// TestPreprocessCtxCancellation: a cancelled context aborts preprocessing
// with an error matching context.Canceled, and a cancelled RebuildCtx
// leaves the previous state committed.
func TestPreprocessCtxCancellation(t *testing.T) {
	g := gen.BarabasiAlbert(200, 3, 17)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := PreprocessCtx(ctx, g, Options{K: 2}); err == nil {
		t.Fatal("PreprocessCtx with cancelled ctx succeeded")
	} else if !errorsIsCanceled(err) {
		t.Fatalf("PreprocessCtx error %v does not match context.Canceled", err)
	}

	d, err := NewDynamic(g, Options{K: 2})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	oldP := d.Precomputed()
	if err := d.AddEdge(1, 2, 2.5); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if _, err := d.RebuildCtx(ctx, RebuildAuto); err == nil {
		t.Fatal("RebuildCtx with cancelled ctx succeeded")
	} else if !errorsIsCanceled(err) {
		t.Fatalf("RebuildCtx error %v does not match context.Canceled", err)
	}
	if d.Precomputed() != oldP {
		t.Fatal("cancelled rebuild swapped in new matrices")
	}
	if d.PendingNodes() != 1 {
		t.Fatalf("cancelled rebuild changed PendingNodes to %d, want 1", d.PendingNodes())
	}
	if d.RebuildInProgress() {
		t.Fatal("rebuilding flag stuck after cancelled rebuild")
	}
	// The Dynamic must still be fully usable: rebuild with a live context.
	if err := d.Rebuild(); err != nil {
		t.Fatalf("Rebuild after cancelled attempt: %v", err)
	}
	if d.PendingNodes() != 0 {
		t.Fatalf("PendingNodes after successful rebuild = %d, want 0", d.PendingNodes())
	}
}

func errorsIsCanceled(err error) bool {
	return errors.Is(err, context.Canceled)
}

func BenchmarkQueryRefinedDisabled(b *testing.B) {
	g := refineTestGraph()
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		b.Fatal(err)
	}
	q := make([]float64, g.N())
	q[3] = 1
	dst := make([]float64, g.N())
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.QueryRefinedCtx(ctx, dst, q, 0, 0, ws); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkQueryRefined(b *testing.B) {
	g := refineTestGraph()
	p, err := Preprocess(g, Options{K: 2, DropTol: 1e-3, KeepH: true})
	if err != nil {
		b.Fatal(err)
	}
	q := make([]float64, g.N())
	q[3] = 1
	dst := make([]float64, g.N())
	ws := p.AcquireWorkspace()
	defer p.ReleaseWorkspace(ws)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.QueryRefinedCtx(ctx, dst, q, 1e-9, 10, ws); err != nil {
			b.Fatal(err)
		}
	}
}
