package slashburn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bear/internal/graph"
	"bear/internal/graph/gen"
)

func checkResult(t *testing.T, g *graph.Graph, r *Result) {
	t.Helper()
	n := g.N()
	// Perm and InvPerm are mutually inverse permutations.
	seen := make([]bool, n)
	for node, pos := range r.Perm {
		if pos < 0 || pos >= n || seen[pos] {
			t.Fatalf("Perm not a permutation at node %d", node)
		}
		seen[pos] = true
		if r.InvPerm[pos] != node {
			t.Fatalf("InvPerm inconsistent at %d", pos)
		}
	}
	// Block sizes cover exactly the spoke region.
	total := 0
	for _, b := range r.Blocks {
		if b <= 0 {
			t.Fatalf("non-positive block size %d", b)
		}
		total += b
	}
	if total+r.NumHubs != n {
		t.Fatalf("blocks (%d) + hubs (%d) != n (%d)", total, r.NumHubs, n)
	}
	// Key invariant: distinct spoke blocks are mutually disconnected once
	// hubs are removed — no edge may join two different blocks.
	blockOf := make([]int, n) // -1 for hubs
	for i := range blockOf {
		blockOf[i] = -1
	}
	pos := 0
	for bi, sz := range r.Blocks {
		for k := 0; k < sz; k++ {
			blockOf[r.InvPerm[pos]] = bi
			pos++
		}
	}
	for u := 0; u < n; u++ {
		if blockOf[u] < 0 {
			continue
		}
		dst, _ := g.Out(u)
		for _, v := range dst {
			if blockOf[v] >= 0 && blockOf[v] != blockOf[u] {
				t.Fatalf("edge %d-%d joins spoke blocks %d and %d",
					u, v, blockOf[u], blockOf[v])
			}
		}
	}
}

func TestRunOnGenerators(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"ba":      gen.BarabasiAlbert(400, 2, 1),
		"rmat":    gen.RMAT(gen.NewRMATPul(512, 2500, 0.7, 2)),
		"er":      gen.ErdosRenyi(300, 900, 3),
		"caveman": gen.CavemanHubs(gen.CavemanHubsConfig{Communities: 10, Size: 20, PIntra: 0.3, Hubs: 8, HubDeg: 25, Seed: 4}),
		"star":    gen.StarMail(gen.StarMailConfig{Core: 8, Periphery: 300, LeafDeg: 1, PCore: 0.5, Seed: 5}),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			for _, k := range []int{1, 3, 10} {
				r := Run(g, k)
				checkResult(t, g, r)
			}
		})
	}
}

func TestHubsAreHighDegree(t *testing.T) {
	// On a star-with-core graph, the first removed hubs must be core nodes.
	g := gen.StarMail(gen.StarMailConfig{Core: 5, Periphery: 200, LeafDeg: 1, PCore: 1, Seed: 6})
	r := Run(g, 1)
	if r.NumHubs == 0 {
		t.Fatal("no hubs found")
	}
	first := r.InvPerm[g.N()-r.NumHubs] // hub removed first sits at position n1
	if first >= 5 {
		t.Fatalf("first hub is leaf %d, want a core node", first)
	}
}

func TestBlocksOrderedByDegreeAscending(t *testing.T) {
	g := gen.BarabasiAlbert(300, 2, 7)
	r := Run(g, 3)
	// Within each block, SlashBurn orders nodes by ascending degree inside
	// the component. Verify monotone in-block degree order using degrees in
	// the block's induced subgraph.
	n := g.N()
	blockOf := make([]int, n)
	for i := range blockOf {
		blockOf[i] = -1
	}
	pos := 0
	for bi, sz := range r.Blocks {
		for k := 0; k < sz; k++ {
			blockOf[r.InvPerm[pos]] = bi
			pos++
		}
	}
	adj := g.UndirectedNeighbors()
	inBlockDeg := func(u int) int {
		d := 0
		for _, v := range adj[u] {
			if blockOf[v] == blockOf[u] {
				d++
			}
		}
		return d
	}
	pos = 0
	for _, sz := range r.Blocks {
		prev := -1
		for k := 0; k < sz; k++ {
			d := inBlockDeg(r.InvPerm[pos])
			if d < prev {
				t.Fatalf("block degree order violated at position %d: %d < %d", pos, d, prev)
			}
			prev = d
			pos++
		}
	}
}

func TestDisconnectedInput(t *testing.T) {
	b := graph.NewBuilder(20)
	// Two components, one larger.
	for i := 0; i < 11; i++ {
		b.AddUndirected(i, (i+1)%12, 1)
	}
	for i := 13; i < 19; i++ {
		b.AddUndirected(i, i+1, 1)
	}
	g := b.Build()
	r := Run(g, 2)
	checkResult(t, g, r)
}

func TestSingletonGraph(t *testing.T) {
	g := graph.NewBuilder(1).Build()
	r := Run(g, 1)
	checkResult(t, g, r)
	if r.NumHubs != 0 || len(r.Blocks) != 1 || r.Blocks[0] != 1 {
		t.Fatalf("singleton: hubs=%d blocks=%v", r.NumHubs, r.Blocks)
	}
}

func TestPanicsOnBadK(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k=0")
		}
	}()
	Run(g, 0)
}

func TestDeterministic(t *testing.T) {
	g := gen.RMAT(gen.NewRMATPul(256, 1200, 0.6, 9))
	a := Run(g, 3)
	b := Run(g, 3)
	for i := range a.Perm {
		if a.Perm[i] != b.Perm[i] {
			t.Fatal("SlashBurn not deterministic")
		}
	}
}

func TestSumSqBlocks(t *testing.T) {
	r := &Result{Blocks: []int{3, 4}}
	if got := r.SumSqBlocks(); got != 25 {
		t.Fatalf("SumSqBlocks = %d, want 25", got)
	}
}

// Property: on random graphs the result is always structurally valid.
func TestQuickValidOnRandomGraphs(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(120)
		b := graph.NewBuilder(n)
		m := n * (1 + rng.Intn(4))
		for e := 0; e < m; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			b.AddEdge(u, v, 1)
		}
		g := b.Build()
		k := 1 + int(kRaw)%10
		r := Run(g, k)
		// Reuse the checker via a throwaway T: replicate its core checks.
		seen := make([]bool, n)
		for _, pos := range r.Perm {
			if pos < 0 || pos >= n || seen[pos] {
				return false
			}
			seen[pos] = true
		}
		total := 0
		for _, bsz := range r.Blocks {
			total += bsz
		}
		return total+r.NumHubs == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
