// Package slashburn implements the SlashBurn node-reordering algorithm of
// Kang and Faloutsos (ICDM 2011), which BEAR uses to expose a large
// block-diagonal submatrix: repeatedly remove the k highest-degree nodes
// (hubs), peel off the connected components that detach from the giant
// connected component (spokes), and recurse on the GCC until it shrinks
// below k.
//
// This package is the algorithm only; engine selection lives in
// internal/ordering, where SlashBurn is registered as the default engine.
// Callers there rely on two properties beyond the Result layout: runs are
// deterministic (same graph and k produce a bit-identical Result — ties
// break on node id everywhere), and blocks are closed under the
// symmetrized edge relation (no edge joins spokes of different blocks),
// which is what makes the factors of H₁₁ block diagonal (Lemma 1).
package slashburn

import (
	"fmt"
	"sort"

	"bear/internal/graph"
)

// Result describes a SlashBurn ordering. In the new order, spoke nodes
// occupy positions [0, n-NumHubs) grouped into connected-component blocks
// (each block internally sorted by ascending within-component degree, as
// BEAR requires), and hubs occupy the final NumHubs positions.
type Result struct {
	Perm       []int // Perm[old] = new position
	InvPerm    []int // InvPerm[new] = old id
	NumHubs    int   // n₂
	Blocks     []int // sizes of the diagonal blocks of H₁₁, in order
	Iterations int   // number of hub-removal waves (T)
}

// SumSqBlocks returns Σ n₁ᵢ², the quantity the paper's complexity analysis
// (and Table 4) is expressed in.
func (r *Result) SumSqBlocks() int64 {
	var s int64
	for _, b := range r.Blocks {
		s += int64(b) * int64(b)
	}
	return s
}

// Run executes SlashBurn with wave size k (the paper uses k = 0.001·n,
// clamped to at least 1; k < 1 panics — callers resolve the default).
// The graph is viewed as undirected. NumHubs can be 0 on graphs whose
// GCC never exceeds k (e.g. a single node); callers must tolerate an
// empty hub set.
func Run(g *graph.Graph, k int) *Result {
	n := g.N()
	if k <= 0 {
		panic(fmt.Sprintf("slashburn: wave size k=%d must be positive", k))
	}
	adj := g.UndirectedNeighbors()

	active := make([]bool, n) // nodes still in the working (GCC) set
	working := make([]int, n) // current working set, as a slice
	for i := range working {
		active[i] = true
		working[i] = i
	}

	var hubs []int
	var blockNodes [][]int // each block: nodes sorted by in-block degree asc
	deg := make([]int, n)  // degree within the active set, recomputed per wave
	iterations := 0

	activeDegree := func(u int) int {
		d := 0
		for _, v := range adj[u] {
			if active[v] {
				d++
			}
		}
		return d
	}

	// flushComponents labels the connected components of the current active
	// set, appends every component except the one with label keep (pass -1
	// to flush all) as a spoke block, and returns the remaining working set.
	flushComponents := func(keep int, labels []int) []int {
		byComp := map[int][]int{}
		for _, u := range working {
			byComp[labels[u]] = append(byComp[labels[u]], u)
		}
		compIDs := make([]int, 0, len(byComp))
		for id := range byComp {
			compIDs = append(compIDs, id)
		}
		sort.Ints(compIDs)
		var next []int
		for _, id := range compIDs {
			nodes := byComp[id]
			if id == keep {
				next = nodes
				continue
			}
			for _, u := range nodes {
				deg[u] = activeDegree(u)
			}
			sort.Slice(nodes, func(a, b int) bool {
				if deg[nodes[a]] != deg[nodes[b]] {
					return deg[nodes[a]] < deg[nodes[b]]
				}
				return nodes[a] < nodes[b]
			})
			blockNodes = append(blockNodes, nodes)
			for _, u := range nodes {
				active[u] = false
			}
		}
		return next
	}

	for len(working) > 0 {
		if len(working) <= k {
			// Terminal wave: the remaining GCC splits into spoke blocks.
			labels := labelActive(n, adj, active)
			working = flushComponents(-1, labels)
			break
		}
		iterations++
		// Remove the k highest-degree nodes of the working set as hubs.
		for _, u := range working {
			deg[u] = activeDegree(u)
		}
		cand := append([]int(nil), working...)
		sort.Slice(cand, func(a, b int) bool {
			if deg[cand[a]] != deg[cand[b]] {
				return deg[cand[a]] > deg[cand[b]]
			}
			return cand[a] < cand[b]
		})
		for _, u := range cand[:k] {
			hubs = append(hubs, u)
			active[u] = false
		}
		rest := cand[k:]
		if len(rest) == 0 {
			working = nil
			break
		}
		// Find the GCC among the remaining components; flush the rest.
		labels := labelActive(n, adj, active)
		counts := map[int]int{}
		for _, u := range rest {
			counts[labels[u]]++
		}
		gcc, best := -1, -1
		ids := make([]int, 0, len(counts))
		for id := range counts {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			if counts[id] > best {
				best, gcc = counts[id], id
			}
		}
		working = rest
		working = flushComponents(gcc, labels)
	}

	// Assemble the permutation: spoke blocks first, hubs last (in removal
	// order; BEAR re-sorts hubs by their degree in S later).
	res := &Result{
		Perm:       make([]int, n),
		InvPerm:    make([]int, n),
		NumHubs:    len(hubs),
		Iterations: iterations,
	}
	pos := 0
	for _, nodes := range blockNodes {
		res.Blocks = append(res.Blocks, len(nodes))
		for _, u := range nodes {
			res.Perm[u] = pos
			res.InvPerm[pos] = u
			pos++
		}
	}
	for _, u := range hubs {
		res.Perm[u] = pos
		res.InvPerm[pos] = u
		pos++
	}
	if pos != n {
		panic(fmt.Sprintf("slashburn: assembled %d of %d nodes", pos, n))
	}
	return res
}

// labelActive labels connected components among active nodes; inactive
// nodes get label -1.
func labelActive(n int, adj [][]int, active []bool) []int {
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	count := 0
	var queue []int
	for s := 0; s < n; s++ {
		if !active[s] || labels[s] >= 0 {
			continue
		}
		labels[s] = count
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if active[v] && labels[v] < 0 {
					labels[v] = count
					queue = append(queue, v)
				}
			}
		}
		count++
	}
	return labels
}
