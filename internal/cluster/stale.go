package cluster

import (
	"container/list"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// The last-good cache behind graceful degradation: every successful read
// proxied through the front leaves a copy of its response here, keyed by
// the request's canonical shape. When every replica of a graph is down,
// the front answers from this cache (within StaleTTL, flagged
// X-Degraded: stale) instead of erroring — a slightly old ranking beats a
// dead feature for almost every RWR workload. A plain LRU bounded by
// entry count: responses are top-k JSON bodies, small and uniform, so
// byte-accounting would buy little.

type staleEntry struct {
	key         string
	status      int
	contentType string
	body        []byte
	at          time.Time
}

type staleCache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recent
	entries map[string]*list.Element
}

func newStaleCache(max int) *staleCache {
	return &staleCache{max: max, ll: list.New(), entries: make(map[string]*list.Element)}
}

// Len reports resident entries.
func (s *staleCache) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// put stores (replacing) the last-good response for key.
func (s *staleCache) put(key string, status int, contentType string, body []byte) {
	if s == nil || s.max <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[key]; ok {
		e := el.Value.(*staleEntry)
		e.status, e.contentType, e.at = status, contentType, time.Now()
		e.body = append(e.body[:0], body...)
		s.ll.MoveToFront(el)
		return
	}
	for len(s.entries) >= s.max {
		oldest := s.ll.Back()
		if oldest == nil {
			break
		}
		s.ll.Remove(oldest)
		delete(s.entries, oldest.Value.(*staleEntry).key)
	}
	e := &staleEntry{key: key, status: status, contentType: contentType,
		body: append([]byte(nil), body...), at: time.Now()}
	s.entries[key] = s.ll.PushFront(e)
}

// get returns the last-good response for key if one exists and is younger
// than ttl, plus its age. ttl <= 0 disables stale serving entirely.
func (s *staleCache) get(key string, ttl time.Duration) (staleEntry, time.Duration, bool) {
	if s == nil || ttl <= 0 {
		return staleEntry{}, 0, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[key]
	if !ok {
		return staleEntry{}, 0, false
	}
	e := el.Value.(*staleEntry)
	age := time.Since(e.at)
	if age > ttl {
		return staleEntry{}, 0, false
	}
	// Copy out under the lock: the caller writes the body after unlock,
	// and a concurrent put may recycle the slice.
	cp := *e
	cp.body = append([]byte(nil), e.body...)
	return cp, age, true
}

// staleKey canonicalizes one read request: method, path, sorted query
// (parameter order must not split cache entries), and — for POST reads
// like ppr/batch — the body. Bodies ride in verbatim; they are small JSON
// documents and hashing them here would save little.
func staleKey(r *http.Request, body []byte) string {
	var b strings.Builder
	b.WriteString(r.Method)
	b.WriteByte(' ')
	b.WriteString(r.URL.Path)
	q := r.URL.Query()
	if len(q) > 0 {
		keys := make([]string, 0, len(q))
		for k := range q {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.WriteByte('?')
		for i, k := range keys {
			if i > 0 {
				b.WriteByte('&')
			}
			for j, v := range q[k] {
				if j > 0 {
					b.WriteByte('&')
				}
				b.WriteString(k)
				b.WriteByte('=')
				b.WriteString(v)
			}
		}
	}
	if len(body) > 0 {
		b.WriteByte('\n')
		b.Write(body)
	}
	return b.String()
}
