package cluster

import "sort"

// Graph placement is pure consistent hashing over the shard set: every
// front instance with the same -shard list computes the same placement
// with no coordination state, which is what keeps bearfront stateless and
// horizontally scalable. Each shard contributes ringWeight virtual points
// (hash of "id#k") so load spreads evenly even with a handful of shards;
// a graph's replicas are the first R distinct shards clockwise from the
// hash of its name. Adding or removing one shard moves only ~1/N of the
// keyspace — existing graphs mostly stay put, and /v1/cluster/repair
// re-pushes the ones that moved.

const ringWeight = 64

type ringPoint struct {
	hash  uint64
	shard int // index into ids
}

// Ring is an immutable consistent-hash ring over shard IDs.
type Ring struct {
	points []ringPoint
	ids    []string
}

// NewRing builds the ring. ids must be non-empty and free of duplicates
// (validated by cluster.New before this is reached).
func NewRing(ids []string) *Ring {
	r := &Ring{ids: append([]string(nil), ids...)}
	r.points = make([]ringPoint, 0, len(ids)*ringWeight)
	for si, id := range ids {
		for k := 0; k < ringWeight; k++ {
			r.points = append(r.points, ringPoint{hash: pointHash(id, k), shard: si})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on shard index so same-hash points (vanishingly rare,
		// but possible) order identically on every front.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Replicas returns the IDs of the first n distinct shards clockwise from
// key's position, primary first. n is clamped to the shard count.
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.ids) {
		n = len(r.ids)
	}
	if n <= 0 {
		return nil
	}
	h := fnv64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, r.ids[p.shard])
		}
	}
	return out
}

// fnv64 is FNV-1a; inlined rather than hash/fnv to avoid an allocation on
// every placement lookup.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func pointHash(id string, k int) uint64 {
	h := fnv64(id)
	h ^= uint64(k) + 0x9e3779b97f4a7c15
	// A 64-bit finalizer (splitmix64) so virtual points of one shard
	// scatter rather than clustering near the shard's base hash.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}
