// Package cluster is the bearfront coordinator: a stateless HTTP tier
// that places graphs on bearserve shards by consistent hashing with a
// configurable replication factor, proxies the single-node /v1 API
// unchanged, and owns the cluster's reliability policy — health-checked
// ejection with half-open recovery, replica failover under per-try
// timeouts and a retry budget, hedged reads against tail latency, and
// graceful degradation (stale-if-down answers, machine-readable 503s)
// when a graph's whole replica set is unavailable.
//
// The design inverts the usual "distributed system" instinct: shards know
// nothing about each other or about the front. All coordination state is
// a pure function of the -shard list (the hash ring) plus soft state any
// front rebuilds in seconds (health views, latency estimates, last-good
// responses), so fronts scale horizontally behind a dumb load balancer
// and a front restart loses nothing durable.
package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"time"

	"bear/internal/retry"
)

// ShardConfig names one bearserve instance.
type ShardConfig struct {
	ID  string // stable identity; placement hashes this, so renaming moves data
	URL string // base URL, e.g. http://10.0.0.7:8080
}

// Config tunes a Cluster. The zero value of every field has a sensible
// default; only Shards is required.
type Config struct {
	Shards      []ShardConfig
	Replication int // replicas per graph R (default 2, clamped to the shard count)

	Health HealthConfig

	// ReadTimeout bounds one read attempt against one shard (default 10s);
	// failover and hedging fire within it, not after it.
	ReadTimeout time.Duration
	// WriteTimeout bounds one mutation attempt against one shard (default
	// 5m — an upload triggers preprocessing, which is allowed to be slow).
	WriteTimeout time.Duration
	// ReadBudget caps the total wall clock one read spends across failover
	// attempts (default 20s).
	ReadBudget time.Duration

	// HedgeDelay, when positive, fixes the hedge deadline. Zero selects
	// the adaptive deadline: the HedgeQuantile of observed attempt
	// latency, clamped to [HedgeMin, HedgeMax].
	HedgeDelay    time.Duration
	HedgeQuantile float64       // default 0.95
	HedgeMin      time.Duration // default 5ms
	HedgeMax      time.Duration // default 1s
	DisableHedge  bool

	// StaleTTL is how old a last-good response may be and still be served
	// under degradation (default 5m; 0 disables stale serving, degrading
	// straight to 503).
	StaleTTL time.Duration
	// StaleMaxEntries bounds the last-good cache (default 4096).
	StaleMaxEntries int

	// MaxBodyBytes caps buffered request bodies for fanout (default 256
	// MiB, matching bearserve).
	MaxBodyBytes int64
	// MaxRespBytes caps a buffered upstream response (default 256 MiB —
	// graph exports pass through here).
	MaxRespBytes int64

	// ErrorLog receives proxy errors (default: the log package's standard
	// logger).
	ErrorLog *log.Logger

	// Transport overrides the upstream transport (tests inject fault
	// injectors and tight timeouts through it).
	Transport http.RoundTripper
}

func (c *Config) fillDefaults() {
	if c.Replication <= 0 {
		c.Replication = 2
	}
	if c.Replication > len(c.Shards) {
		c.Replication = len(c.Shards)
	}
	c.Health.fillDefaults()
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 10 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 5 * time.Minute
	}
	if c.ReadBudget <= 0 {
		c.ReadBudget = 20 * time.Second
	}
	if c.HedgeQuantile <= 0 || c.HedgeQuantile >= 1 {
		c.HedgeQuantile = 0.95
	}
	if c.HedgeMin <= 0 {
		c.HedgeMin = 5 * time.Millisecond
	}
	if c.HedgeMax <= 0 {
		c.HedgeMax = time.Second
	}
	if c.StaleTTL == 0 {
		c.StaleTTL = 5 * time.Minute
	}
	if c.StaleMaxEntries <= 0 {
		c.StaleMaxEntries = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 256 << 20
	}
	if c.MaxRespBytes <= 0 {
		c.MaxRespBytes = 256 << 20
	}
}

// Cluster coordinates reads and writes across the shard set.
type Cluster struct {
	cfg        Config
	ring       *Ring
	shards     []*shard
	byID       map[string]*shard
	httpClient *http.Client
	stale      *staleCache
	m          *frontMetrics
}

// New validates cfg and builds the coordinator. Callers normally follow
// with Start (the probe loop) and Handler (the HTTP surface).
func New(cfg Config) (*Cluster, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: at least one shard is required")
	}
	cfg.fillDefaults()
	c := &Cluster{cfg: cfg, byID: make(map[string]*shard, len(cfg.Shards))}
	ids := make([]string, 0, len(cfg.Shards))
	for _, sc := range cfg.Shards {
		if sc.ID == "" || sc.URL == "" {
			return nil, fmt.Errorf("cluster: shard needs both id and url, got %+v", sc)
		}
		if _, dup := c.byID[sc.ID]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard id %q", sc.ID)
		}
		sh := &shard{id: sc.ID, base: strings.TrimRight(sc.URL, "/")}
		c.shards = append(c.shards, sh)
		c.byID[sc.ID] = sh
		ids = append(ids, sc.ID)
	}
	c.ring = NewRing(ids)
	// No overall client timeout: per-attempt contexts carry the deadline,
	// and one Client keeps connection pools shared across attempts.
	c.httpClient = &http.Client{Transport: cfg.Transport}
	c.stale = newStaleCache(cfg.StaleMaxEntries)
	c.m = newFrontMetrics(c)
	return c, nil
}

// Replicas returns graph's placement, primary first.
func (c *Cluster) Replicas(graph string) []string {
	return c.ring.Replicas(graph, c.cfg.Replication)
}

// replicaShards resolves placement to shard objects, ordered for reading:
// ring order within each health class, healthy class first, then
// half-open, then ejected — ejection never removes a replica outright, it
// only demotes it to last resort.
func (c *Cluster) replicaShards(graph string) []*shard {
	ids := c.Replicas(graph)
	byState := [3][]*shard{}
	for _, id := range ids {
		sh := c.byID[id]
		st, _, _ := sh.snapshotState()
		byState[st] = append(byState[st], sh)
	}
	out := make([]*shard, 0, len(ids))
	out = append(out, byState[Healthy]...)
	out = append(out, byState[HalfOpen]...)
	out = append(out, byState[Ejected]...)
	return out
}

// upstream is one buffered shard response.
type upstream struct {
	shard  *shard
	status int
	header http.Header
	body   []byte
	hedged bool // answered by a hedge attempt that beat the primary
}

// shardFailure classifies a response status as "the shard is in trouble"
// (eject-worthy, failover-worthy): server errors, gateway errors, and
// shedding. 4xx — including 404 — are the request's or the placement's
// problem, not the shard's.
func shardFailure(status int) bool {
	return status >= 500 || status == http.StatusTooManyRequests
}

// attempt proxies one request to one shard and buffers the response.
// Health reporting and the attempt counters happen here, so every path —
// reads, hedges, fanout writes, repairs — feeds the same health view.
func (c *Cluster) attempt(ctx context.Context, sh *shard, method, uri string, contentType string, body []byte, timeout time.Duration) (*upstream, error) {
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, sh.base+uri, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	c.m.attempts.WithShard(sh.id).Inc()
	start := time.Now()
	resp, err := c.httpClient.Do(req)
	if err != nil {
		c.reportAttempt(sh, false, err.Error())
		return nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, c.cfg.MaxRespBytes))
	if err != nil {
		c.reportAttempt(sh, false, "reading response: "+err.Error())
		return nil, err
	}
	if shardFailure(resp.StatusCode) {
		c.reportAttempt(sh, false, fmt.Sprintf("HTTP %d", resp.StatusCode))
	} else {
		c.reportAttempt(sh, true, "")
		c.m.readLatency.Observe(time.Since(start).Seconds())
	}
	return &upstream{shard: sh, status: resp.StatusCode, header: resp.Header, body: respBody}, nil
}

func (c *Cluster) reportAttempt(sh *shard, ok bool, errText string) {
	if !ok {
		c.m.attemptErrors.WithShard(sh.id).Inc()
	}
	if sh.report(ok, errText, &c.cfg.Health) {
		c.m.ejections.WithShard(sh.id).Inc()
	}
}

// hedgeDelay picks the deadline after which a read asks a second replica:
// a fixed configured delay, or the configured quantile of observed
// attempt latency once enough samples exist, clamped so a cold histogram
// or a latency collapse cannot push hedging into uselessness (too late)
// or stampede (too early).
func (c *Cluster) hedgeDelay() time.Duration {
	if c.cfg.HedgeDelay > 0 {
		return c.cfg.HedgeDelay
	}
	const minSamples = 20
	if c.m.readLatency.Count() < minSamples {
		return c.cfg.HedgeMax
	}
	d := time.Duration(c.m.readLatency.Quantile(c.cfg.HedgeQuantile) * float64(time.Second))
	if d < c.cfg.HedgeMin {
		d = c.cfg.HedgeMin
	}
	if d > c.cfg.HedgeMax {
		d = c.cfg.HedgeMax
	}
	return d
}

// readResult is what one read attempt resolved to, for the failover loop.
type readResult struct {
	up     *upstream
	err    error
	hedged bool
}

// read runs the full replica-failover + hedging read policy for one
// request and returns the response to forward, or nil when every replica
// failed (the caller degrades). body is the buffered request body for
// POST-shaped reads; it is replayed verbatim on every attempt.
func (c *Cluster) read(ctx context.Context, graph, method, uri, contentType string, body []byte) (*upstream, bool) {
	cands := c.replicaShards(graph)
	if len(cands) == 0 {
		return nil, false
	}
	budget := retry.StartBudget(time.Now(), c.cfg.ReadBudget)
	resCh := make(chan readResult, len(cands))
	launched := 0
	launch := func(hedged bool) bool {
		if launched >= len(cands) {
			return false
		}
		if launched > 0 && !budget.Allows(time.Now(), 0) {
			return false
		}
		sh := cands[launched]
		launched++
		go func() {
			up, err := c.attempt(ctx, sh, method, uri, contentType, body, c.cfg.ReadTimeout)
			resCh <- readResult{up: up, err: err, hedged: hedged}
		}()
		return true
	}
	launch(false)

	var hedgeCh <-chan time.Time
	if !c.cfg.DisableHedge && len(cands) > 1 {
		t := time.NewTimer(c.hedgeDelay())
		defer t.Stop()
		hedgeCh = t.C
	}

	var notFound *upstream // the 404 to forward if every replica agrees
	sawFailure := false
	pending := 1
	for pending > 0 {
		select {
		case <-ctx.Done():
			return nil, sawFailure
		case <-hedgeCh:
			hedgeCh = nil
			if launch(true) {
				pending++
				c.m.hedges.Inc()
			}
		case res := <-resCh:
			pending--
			switch {
			case res.err == nil && !shardFailure(res.up.status) && res.up.status != http.StatusNotFound:
				// An answer (success or a caller error like 400) — forward.
				if res.hedged {
					c.m.hedgeWins.Inc()
					res.up.hedged = true
				}
				return res.up, sawFailure
			case res.err == nil && res.up.status == http.StatusNotFound:
				// This replica doesn't hold the graph. With per-graph
				// replication below R (PUT ?replicas=), secondaries
				// legitimately 404 — keep trying; only if every replica
				// agrees is the graph truly absent.
				notFound = res.up
				if launch(false) {
					pending++
				}
			default:
				sawFailure = true
				if res.up != nil {
					c.m.failovers.WithShard(res.up.shard.id).Inc()
				} else {
					c.m.failovers.WithShard(cands[0].id).Inc()
				}
				if launch(false) {
					pending++
				}
			}
		}
	}
	if notFound != nil && !sawFailure {
		return notFound, false
	}
	return nil, sawFailure
}

// logf mirrors the server's logging convention.
func (c *Cluster) logf(format string, args ...interface{}) {
	if c.cfg.ErrorLog != nil {
		c.cfg.ErrorLog.Printf(format, args...)
		return
	}
	log.Printf(format, args...)
}
