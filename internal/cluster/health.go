package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Shard health is judged from two independent signals and recovered
// through a half-open circuit:
//
//   - Passive: every proxied request reports its outcome into a rolling
//     window. When the window holds at least MinSamples outcomes and the
//     success rate drops below SuccessFloor, the shard is ejected — this
//     catches shards that answer probes but fail or shed real traffic.
//   - Active: a probe loop GETs each shard's /readyz. ProbeFailures
//     consecutive failures (unreachable, or alive-but-not-ready: empty or
//     mid-restore) eject the shard — this catches shards that die or
//     degrade while no traffic happens to be flowing.
//
// An ejected shard cools down for EjectDuration, then turns half-open: the
// next probe is its trial. Success re-admits it with a clean window;
// failure re-ejects it for another cooldown. Ejection is advisory, not a
// hard gate — reads prefer healthy replicas but still fall through to
// ejected ones when nothing better is left, and mutations always fan out
// to every replica — so a wrongly ejected shard costs latency, never
// availability.

// State is a shard's circuit-breaker state.
type State int32

const (
	// Healthy shards serve reads first-choice.
	Healthy State = iota
	// HalfOpen shards are cooling down and awaiting a trial probe; reads
	// use them before ejected shards but after healthy ones.
	HalfOpen
	// Ejected shards failed recently; reads use them only as a last
	// resort.
	Ejected
)

func (s State) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case HalfOpen:
		return "half-open"
	default:
		return "ejected"
	}
}

// HealthConfig tunes ejection and recovery.
type HealthConfig struct {
	// WindowSize is how many recent request outcomes the rolling window
	// holds (default 32).
	WindowSize int
	// MinSamples is how many outcomes the window needs before the success
	// rate can eject (default 8) — a single failed request on a quiet
	// shard must not trip the breaker.
	MinSamples int
	// SuccessFloor is the rolling success rate below which the shard is
	// ejected (default 0.5).
	SuccessFloor float64
	// ProbeFailures is how many consecutive active-probe failures eject
	// (default 3).
	ProbeFailures int
	// EjectDuration is the cooldown before an ejected shard turns
	// half-open (default 5s).
	EjectDuration time.Duration
	// ProbeInterval spaces the active probe loop (default 2s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe request (default 1s).
	ProbeTimeout time.Duration
}

func (c *HealthConfig) fillDefaults() {
	if c.WindowSize <= 0 {
		c.WindowSize = 32
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 8
	}
	if c.SuccessFloor <= 0 {
		c.SuccessFloor = 0.5
	}
	if c.ProbeFailures <= 0 {
		c.ProbeFailures = 3
	}
	if c.EjectDuration <= 0 {
		c.EjectDuration = 5 * time.Second
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 2 * time.Second
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = time.Second
	}
}

// shard is one member's runtime state.
type shard struct {
	id   string
	base string // base URL, no trailing slash

	mu         sync.Mutex
	state      State
	window     []bool // ring buffer of request outcomes
	wi         int    // next write position
	wn         int    // valid entries
	probeFails int
	ejectedAt  time.Time
	lastErr    string
}

// snapshotState reads the shard's state without tearing.
func (sh *shard) snapshotState() (State, float64, string) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.state, sh.successRateLocked(), sh.lastErr
}

func (sh *shard) successRateLocked() float64 {
	if sh.wn == 0 {
		return 1
	}
	ok := 0
	for i := 0; i < sh.wn; i++ {
		if sh.window[i] {
			ok++
		}
	}
	return float64(ok) / float64(sh.wn)
}

// report records one proxied-request outcome and applies the passive
// ejection rule. It returns true when this report ejected the shard.
func (sh *shard) report(ok bool, errText string, cfg *HealthConfig) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if len(sh.window) != cfg.WindowSize {
		sh.window = make([]bool, cfg.WindowSize)
		sh.wi, sh.wn = 0, 0
	}
	sh.window[sh.wi] = ok
	sh.wi = (sh.wi + 1) % len(sh.window)
	if sh.wn < len(sh.window) {
		sh.wn++
	}
	if !ok {
		sh.lastErr = errText
	}
	switch {
	case ok && sh.state == HalfOpen:
		// A real request succeeding during the trial period is as good as
		// a probe: re-admit.
		sh.toHealthyLocked()
	case !ok && sh.state == Healthy &&
		sh.wn >= cfg.MinSamples && sh.successRateLocked() < cfg.SuccessFloor:
		sh.ejectLocked()
		return true
	}
	return false
}

// probeResult folds one active-probe outcome into the state machine and
// reports whether this probe ejected the shard.
func (sh *shard) probeResult(ok bool, errText string, cfg *HealthConfig) bool {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if ok {
		sh.probeFails = 0
		if sh.state != Healthy {
			sh.toHealthyLocked()
		}
		return false
	}
	sh.lastErr = errText
	switch sh.state {
	case Healthy:
		sh.probeFails++
		if sh.probeFails >= cfg.ProbeFailures {
			sh.ejectLocked()
			return true
		}
	case HalfOpen:
		// Failed its trial: back to the cooler.
		sh.ejectLocked()
		return true
	case Ejected:
		sh.ejectedAt = time.Now()
	}
	return false
}

// maybeHalfOpen moves an ejected shard whose cooldown elapsed to
// half-open, making the next probe (or read) its trial.
func (sh *shard) maybeHalfOpen(cfg *HealthConfig) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state == Ejected && time.Since(sh.ejectedAt) >= cfg.EjectDuration {
		sh.state = HalfOpen
	}
}

func (sh *shard) toHealthyLocked() {
	sh.state = Healthy
	sh.probeFails = 0
	sh.wn, sh.wi = 0, 0 // clean slate: old failures must not re-eject instantly
	sh.lastErr = ""
}

func (sh *shard) ejectLocked() {
	sh.state = Ejected
	sh.ejectedAt = time.Now()
	sh.probeFails = 0
}

// probe performs one active /readyz check against sh. "OK" means the shard
// answered 200: alive AND ready (has graphs, not restoring). A reachable
// shard that is empty or mid-restore reports its status string as the
// error, so operators can tell "down" from "draining" in /v1/cluster/status.
func (c *Cluster) probe(ctx context.Context, sh *shard) (bool, string) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Health.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, sh.base+"/readyz", nil)
	if err != nil {
		return false, err.Error()
	}
	resp, err := c.httpClient.Do(req)
	if err != nil {
		return false, err.Error()
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return true, ""
	}
	var rep struct {
		Status string `json:"status"`
	}
	if json.NewDecoder(resp.Body).Decode(&rep) == nil && rep.Status != "" {
		return false, fmt.Sprintf("not ready: %s", rep.Status)
	}
	return false, fmt.Sprintf("readyz returned HTTP %d", resp.StatusCode)
}

// ProbeAll runs one synchronous probe round: cooldown transitions first,
// then an active probe of every shard not still cooling down. The probe
// loop calls this on a ticker; tests call it directly for deterministic
// state transitions.
func (c *Cluster) ProbeAll(ctx context.Context) {
	for _, sh := range c.shards {
		sh.maybeHalfOpen(&c.cfg.Health)
		sh.mu.Lock()
		cooling := sh.state == Ejected
		sh.mu.Unlock()
		if cooling {
			continue
		}
		ok, errText := c.probe(ctx, sh)
		if sh.probeResult(ok, errText, &c.cfg.Health) {
			c.m.ejections.WithShard(sh.id).Inc()
		}
		if !ok {
			c.m.probeFailures.WithShard(sh.id).Inc()
		}
	}
}

// Start launches the background probe loop; it stops when ctx is done.
func (c *Cluster) Start(ctx context.Context) {
	go func() {
		t := time.NewTicker(c.cfg.Health.ProbeInterval)
		defer t.Stop()
		// One immediate round so a freshly booted front has a health view
		// before its first request.
		c.ProbeAll(ctx)
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				c.ProbeAll(ctx)
			}
		}
	}()
}
