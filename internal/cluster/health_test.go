package cluster

import (
	"testing"
	"time"
)

func testHealthCfg() *HealthConfig {
	cfg := &HealthConfig{
		WindowSize:    8,
		MinSamples:    4,
		SuccessFloor:  0.5,
		ProbeFailures: 2,
		EjectDuration: 20 * time.Millisecond,
	}
	cfg.fillDefaults()
	return cfg
}

func TestPassiveEjection(t *testing.T) {
	cfg := testHealthCfg()
	sh := &shard{id: "a", base: "http://unused"}

	// Failures below MinSamples must not eject — one bad request on a
	// quiet shard is noise, not a signal.
	for i := 0; i < cfg.MinSamples-1; i++ {
		if sh.report(false, "boom", cfg) {
			t.Fatalf("ejected after %d samples, below MinSamples=%d", i+1, cfg.MinSamples)
		}
	}
	if st, _, _ := sh.snapshotState(); st != Healthy {
		t.Fatalf("state = %v before MinSamples, want healthy", st)
	}
	// One more failure crosses MinSamples with a 0% success rate: eject.
	if !sh.report(false, "boom", cfg) {
		t.Fatal("want ejection once MinSamples failures accumulate")
	}
	st, rate, lastErr := sh.snapshotState()
	if st != Ejected || rate != 0 || lastErr != "boom" {
		t.Fatalf("after ejection: state=%v rate=%v lastErr=%q", st, rate, lastErr)
	}
}

func TestMixedTrafficStaysHealthy(t *testing.T) {
	cfg := testHealthCfg()
	sh := &shard{id: "a"}
	// 6 ok, 2 fail: 75% success, above the 50% floor.
	for i := 0; i < 6; i++ {
		sh.report(true, "", cfg)
	}
	for i := 0; i < 2; i++ {
		if sh.report(false, "x", cfg) {
			t.Fatal("ejected at 75% success rate")
		}
	}
	if st, rate, _ := sh.snapshotState(); st != Healthy || rate != 0.75 {
		t.Fatalf("state=%v rate=%v, want healthy 0.75", st, rate)
	}
}

func TestHalfOpenRecoveryViaRequest(t *testing.T) {
	cfg := testHealthCfg()
	sh := &shard{id: "a"}
	for i := 0; i < cfg.MinSamples; i++ {
		sh.report(false, "down", cfg)
	}
	if st, _, _ := sh.snapshotState(); st != Ejected {
		t.Fatalf("setup: want ejected, got %v", st)
	}

	// Cooldown not elapsed: stays ejected.
	sh.maybeHalfOpen(cfg)
	if st, _, _ := sh.snapshotState(); st != Ejected {
		t.Fatalf("half-opened before cooldown elapsed: %v", st)
	}
	time.Sleep(cfg.EjectDuration + 5*time.Millisecond)
	sh.maybeHalfOpen(cfg)
	if st, _, _ := sh.snapshotState(); st != HalfOpen {
		t.Fatalf("want half-open after cooldown, got %v", st)
	}

	// A successful real request during the trial re-admits with a clean
	// window (old failures must not instantly re-eject).
	sh.report(true, "", cfg)
	st, rate, lastErr := sh.snapshotState()
	if st != Healthy || lastErr != "" {
		t.Fatalf("after trial success: state=%v lastErr=%q", st, lastErr)
	}
	if rate != 1 {
		t.Fatalf("window not reset on recovery: rate=%v", rate)
	}
}

func TestProbeEjectionAndReEjection(t *testing.T) {
	cfg := testHealthCfg()
	sh := &shard{id: "a"}

	// Consecutive probe failures eject; a success in between resets.
	sh.probeResult(false, "refused", cfg)
	sh.probeResult(true, "", cfg)
	if sh.probeResult(false, "refused", cfg) {
		t.Fatal("single probe failure after a success must not eject")
	}
	if !sh.probeResult(false, "refused", cfg) {
		t.Fatalf("want ejection after %d consecutive probe failures", cfg.ProbeFailures)
	}

	// Failing the half-open trial re-ejects.
	time.Sleep(cfg.EjectDuration + 5*time.Millisecond)
	sh.maybeHalfOpen(cfg)
	if !sh.probeResult(false, "still down", cfg) {
		t.Fatal("half-open trial failure must re-eject")
	}
	if st, _, _ := sh.snapshotState(); st != Ejected {
		t.Fatalf("want ejected after failed trial, got %v", st)
	}

	// And a passing trial recovers.
	time.Sleep(cfg.EjectDuration + 5*time.Millisecond)
	sh.maybeHalfOpen(cfg)
	sh.probeResult(true, "", cfg)
	if st, _, _ := sh.snapshotState(); st != Healthy {
		t.Fatalf("want healthy after passing trial, got %v", st)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Healthy: "healthy", HalfOpen: "half-open", Ejected: "ejected"} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}
