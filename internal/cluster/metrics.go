package cluster

import (
	"net/http"
	"strconv"
	"time"

	"bear/internal/obsv"
)

// The front's own observability: a dedicated obsv registry (scraped at the
// front's GET /metrics, separate from each shard's) carrying the
// reliability counters the chaos test and the OPERATIONS.md alert rules
// read — ejections, failovers, hedge fires/wins, degraded responses — all
// labeled by shard where a shard is attributable. Every series here is
// documented in OPERATIONS.md ("bear_front_* metrics reference"); keep the
// two in sync when adding series.

type frontMetrics struct {
	reg *obsv.Registry

	ejections     shardCounter
	probeFailures shardCounter
	failovers     shardCounter
	attempts      shardCounter
	attemptErrors shardCounter

	hedges    *obsv.Counter
	hedgeWins *obsv.Counter

	degradedStale       *obsv.Counter
	degradedUnavailable *obsv.Counter
	degradedPartial     *obsv.Counter

	repairs      *obsv.Counter
	repairErrors *obsv.Counter

	readLatency *obsv.Histogram
}

// shardCounter is a tiny counter-vec over the shard label; obsv metric
// constructors are get-or-create, so WithShard is just a lookup.
type shardCounter struct {
	reg        *obsv.Registry
	name, help string
}

func (v shardCounter) WithShard(id string) *obsv.Counter {
	return v.reg.Counter(v.name, v.help, obsv.L("shard", id))
}

func newFrontMetrics(c *Cluster) *frontMetrics {
	reg := obsv.NewRegistry()
	m := &frontMetrics{reg: reg}
	m.ejections = shardCounter{reg, "bear_front_ejections_total",
		"Shards ejected by the health checker (rolling success rate or consecutive probe failures), by shard."}
	m.probeFailures = shardCounter{reg, "bear_front_probe_failures_total",
		"Failed active /readyz probes (unreachable or not ready), by shard."}
	m.failovers = shardCounter{reg, "bear_front_failovers_total",
		"Read attempts abandoned for the next replica after a shard failed or shed, by the shard that failed."}
	m.attempts = shardCounter{reg, "bear_front_attempts_total",
		"Proxied request attempts, by shard (includes hedges and failover retries)."}
	m.attemptErrors = shardCounter{reg, "bear_front_attempt_errors_total",
		"Proxied request attempts that failed (transport error or 5xx/429), by shard."}

	m.hedges = reg.Counter("bear_front_hedges_total",
		"Hedged reads fired: a second replica was asked after the hedge deadline passed without an answer.")
	m.hedgeWins = reg.Counter("bear_front_hedge_wins_total",
		"Hedged reads where the hedge answered first; the ratio to bear_front_hedges_total is how often hedging paid.")

	m.degradedStale = reg.Counter("bear_front_degraded_stale_total",
		"Reads answered from the front's last-good cache (X-Degraded: stale) because no replica could answer.")
	m.degradedUnavailable = reg.Counter("bear_front_degraded_unavailable_total",
		"Reads answered 503 with X-Degraded: unavailable — no replica and no fresh-enough stale result.")
	m.degradedPartial = reg.Counter("bear_front_degraded_partial_total",
		"Mutations or scatter reads that reached only part of their replica set (X-Degraded: partial).")

	m.repairs = reg.Counter("bear_front_repairs_total",
		"Anti-entropy repairs that re-pushed a graph to at least one replica.")
	m.repairErrors = reg.Counter("bear_front_repair_errors_total",
		"Repair requests that failed outright (no healthy source, or every push failed).")

	m.readLatency = reg.Histogram("bear_front_read_seconds",
		"Successful read-attempt latency against shards, in seconds; feeds the adaptive hedge deadline.",
		obsv.LatencyBuckets)

	// Shard state gauges, read live at scrape time.
	for _, sh := range c.shards {
		sh := sh
		reg.GaugeFunc("bear_front_shard_healthy",
			"1 when the shard is healthy, 0.5 when half-open, 0 when ejected.",
			func() float64 {
				st, _, _ := sh.snapshotState()
				switch st {
				case Healthy:
					return 1
				case HalfOpen:
					return 0.5
				default:
					return 0
				}
			}, obsv.L("shard", sh.id))
		reg.GaugeFunc("bear_front_shard_success_rate",
			"Rolling success rate of proxied requests to the shard (1 with no samples).",
			func() float64 { _, rate, _ := sh.snapshotState(); return rate },
			obsv.L("shard", sh.id))
	}
	reg.GaugeFunc("bear_front_shards", "Configured shards.",
		func() float64 { return float64(len(c.shards)) })
	reg.GaugeFunc("bear_front_stale_entries", "Entries in the last-good degradation cache.",
		func() float64 { return float64(c.stale.Len()) })
	return m
}

// endpoint-level HTTP metrics for the front itself, mirroring the shape
// bearserve exports so one dashboard template fits both tiers.
func (c *Cluster) observeRequest(endpoint string, status int, elapsed time.Duration) {
	c.m.reg.Counter("bear_front_requests_total",
		"HTTP requests served by the front, by endpoint and status code.",
		obsv.L("endpoint", endpoint), obsv.L("code", strconv.Itoa(status))).Inc()
	c.m.reg.Histogram("bear_front_request_seconds",
		"Front HTTP request latency in seconds, by endpoint.",
		obsv.LatencyBuckets, obsv.L("endpoint", endpoint)).Observe(elapsed.Seconds())
}

func (c *Cluster) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.m.reg.WritePrometheus(w)
}
