package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"bear/server"
)

// edgeList is a small connected graph every proxy test uploads.
const edgeList = "0 1\n1 2\n2 3\n3 0\n1 3\n"

// bootShards runs n real bearserve instances and returns their configs.
func bootShards(t *testing.T, n int) []ShardConfig {
	t.Helper()
	cfgs := make([]ShardConfig, n)
	for i := 0; i < n; i++ {
		srv := httptest.NewServer(server.New().Handler())
		t.Cleanup(srv.Close)
		cfgs[i] = ShardConfig{ID: fmt.Sprintf("s%d", i), URL: srv.URL}
	}
	return cfgs
}

func newFront(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	cfg.DisableHedge = true // tests opt back in explicitly
	cfg.ReadTimeout = 5 * time.Second
	cfg.WriteTimeout = 5 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c
}

func doFront(c *Cluster, method, target, body string) *httptest.ResponseRecorder {
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	c.Handler().ServeHTTP(rec, req)
	return rec
}

// shardHasGraph asks a shard directly (bypassing the front).
func shardHasGraph(t *testing.T, url, graph string) bool {
	t.Helper()
	resp, err := http.Get(url + "/v1/graphs/" + graph)
	if err != nil {
		t.Fatalf("asking shard: %v", err)
	}
	defer resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func TestProxyPutQueryEndToEnd(t *testing.T) {
	shards := bootShards(t, 3)
	c := newFront(t, Config{Shards: shards, Replication: 2})

	rec := doFront(c, http.MethodPut, "/v1/graphs/g", edgeList)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT through front: %d %s", rec.Code, rec.Body.String())
	}
	if got := rec.Result().Header["X-Replica-Outcome"]; len(got) != 2 {
		t.Fatalf("want 2 X-Replica-Outcome headers, got %v", got)
	}

	// The graph must land on exactly its 2 placement replicas.
	placement := map[string]bool{}
	for _, id := range c.Replicas("g") {
		placement[id] = true
	}
	for _, sc := range shards {
		if has := shardHasGraph(t, sc.URL, "g"); has != placement[sc.ID] {
			t.Fatalf("shard %s has graph=%v, placement says %v", sc.ID, has, placement[sc.ID])
		}
	}

	rec = doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("query through front: %d %s", rec.Code, rec.Body.String())
	}
	if sh := rec.Header().Get("X-Shard"); !placement[sh] {
		t.Fatalf("X-Shard %q is not a placement replica of g", sh)
	}

	// The scatter list reports the replicated graph once.
	rec = doFront(c, http.MethodGet, "/v1/graphs", "")
	var list struct {
		Graphs []struct {
			Name string `json:"name"`
		} `json:"graphs"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(list.Graphs) != 1 || list.Graphs[0].Name != "g" {
		t.Fatalf("scatter list = %+v, want exactly [g]", list.Graphs)
	}
}

func TestProxyReadFailover(t *testing.T) {
	// Two stub shards; whichever is primary for "g" always fails.
	urls := make([]string, 2)
	for i := range urls {
		i := i
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if strings.HasSuffix(r.URL.Path, "/query") {
				w.Header().Set("Content-Type", "application/json")
				fmt.Fprintf(w, `{"from":%d}`, i)
				return
			}
			w.WriteHeader(http.StatusOK)
		}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"induced"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)

	c := newFront(t, Config{Shards: []ShardConfig{
		{ID: "a", URL: urls[0]}, {ID: "b", URL: urls[1]},
	}, Replication: 2})
	primary := c.Replicas("g")[0]
	// Repoint the primary at the always-500 stub.
	c.byID[primary].base = broken.URL

	rec := doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("failover read: %d %s", rec.Code, rec.Body.String())
	}
	secondary := c.Replicas("g")[1]
	if sh := rec.Header().Get("X-Shard"); sh != secondary {
		t.Fatalf("X-Shard = %q, want failover to %q", sh, secondary)
	}
	metrics := doFront(c, http.MethodGet, "/metrics", "").Body.String()
	want := fmt.Sprintf(`bear_front_failovers_total{shard=%q} 1`, primary)
	if !strings.Contains(metrics, want) {
		t.Fatalf("metrics missing %q:\n%s", want, metrics)
	}
}

func TestProxyDegradedStaleThenUnavailable(t *testing.T) {
	down := false
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down {
			http.Error(w, `{"error":"dead"}`, http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"scores":[1]}`)
	}))
	t.Cleanup(srv.Close)
	c := newFront(t, Config{Shards: []ShardConfig{{ID: "solo", URL: srv.URL}}, Replication: 1})

	// Warm the last-good cache.
	if rec := doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=0", ""); rec.Code != http.StatusOK {
		t.Fatalf("warm read: %d", rec.Code)
	}

	down = true

	// Same request: answered stale, flagged, counted.
	rec := doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=0", "")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Degraded") != "stale" {
		t.Fatalf("stale read: code=%d X-Degraded=%q", rec.Code, rec.Header().Get("X-Degraded"))
	}
	if rec.Body.String() != `{"scores":[1]}` {
		t.Fatalf("stale body = %q", rec.Body.String())
	}

	// A request never cached: machine-readable 503, never 500.
	rec = doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=99", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("uncached degraded read: %d, want 503", rec.Code)
	}
	if rec.Header().Get("X-Degraded") != "unavailable" || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("503 headers: X-Degraded=%q Retry-After=%q",
			rec.Header().Get("X-Degraded"), rec.Header().Get("Retry-After"))
	}
	var e struct {
		Reason string `json:"reason"`
		Graph  string `json:"graph"`
	}
	if json.Unmarshal(rec.Body.Bytes(), &e) != nil || e.Reason != "no_replica_available" || e.Graph != "g" {
		t.Fatalf("503 body not machine-readable: %s", rec.Body.String())
	}

	// With stale serving disabled the cached answer is off-limits too.
	c2 := newFront(t, Config{Shards: []ShardConfig{{ID: "solo", URL: srv.URL}},
		Replication: 1, StaleTTL: -1})
	if rec := doFront(c2, http.MethodGet, "/v1/graphs/g/query?seed=0", ""); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("StaleTTL<0 must disable stale serving, got %d", rec.Code)
	}
}

func TestProxyMutationPartial(t *testing.T) {
	shards := bootShards(t, 2)
	c := newFront(t, Config{Shards: shards, Replication: 2})
	// Break one replica after placement is known.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"induced"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	secondary := c.Replicas("g")[1]
	c.byID[secondary].base = broken.URL

	rec := doFront(c, http.MethodPut, "/v1/graphs/g", edgeList)
	if rec.Code != http.StatusCreated {
		t.Fatalf("partial PUT: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Degraded") != "partial" {
		t.Fatalf("want X-Degraded: partial, got %q", rec.Header().Get("X-Degraded"))
	}
	outcomes := rec.Result().Header["X-Replica-Outcome"]
	joined := strings.Join(outcomes, " ")
	if len(outcomes) != 2 || !strings.Contains(joined, secondary+"=500") {
		t.Fatalf("outcome headers = %v, want the 500 from %s visible", outcomes, secondary)
	}
}

func TestProxyMutationAgreedErrorForwards(t *testing.T) {
	shards := bootShards(t, 2)
	c := newFront(t, Config{Shards: shards, Replication: 2})
	// Both replicas reject garbage identically: the front forwards the
	// verdict instead of blaming the cluster with a 503.
	rec := doFront(c, http.MethodPut, "/v1/graphs/bad", "")
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("agreed 400 should forward, got %d %s", rec.Code, rec.Body.String())
	}
	// And a read of a graph nobody holds is a plain 404.
	rec = doFront(c, http.MethodGet, "/v1/graphs/nothere/query?seed=0", "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("all-replicas-404 should forward 404, got %d", rec.Code)
	}
}

func TestProxyReducedReplication(t *testing.T) {
	shards := bootShards(t, 3)
	c := newFront(t, Config{Shards: shards, Replication: 2})

	rec := doFront(c, http.MethodPut, "/v1/graphs/solo?replicas=1", edgeList)
	if rec.Code != http.StatusCreated {
		t.Fatalf("PUT replicas=1: %d %s", rec.Code, rec.Body.String())
	}
	placement := c.Replicas("solo")
	byID := map[string]string{}
	for _, sc := range shards {
		byID[sc.ID] = sc.URL
	}
	if !shardHasGraph(t, byID[placement[0]], "solo") {
		t.Fatal("primary must hold the reduced-replication graph")
	}
	if shardHasGraph(t, byID[placement[1]], "solo") {
		t.Fatal("secondary must NOT hold a replicas=1 graph")
	}

	// Reads still work: the secondary's 404 makes the front try the
	// primary rather than giving up.
	rec = doFront(c, http.MethodGet, "/v1/graphs/solo/query?seed=0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("read of replicas=1 graph: %d %s", rec.Code, rec.Body.String())
	}
	if sh := rec.Header().Get("X-Shard"); sh != placement[0] {
		t.Fatalf("X-Shard = %q, want primary %q", sh, placement[0])
	}
}

func TestProxyHedgedRead(t *testing.T) {
	shards := bootShards(t, 2)
	cfg := Config{Shards: shards, Replication: 2, HedgeDelay: 20 * time.Millisecond}
	cfg.ReadTimeout = 5 * time.Second
	cfg.WriteTimeout = 5 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := doFront(c, http.MethodPut, "/v1/graphs/g", edgeList); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	// Make the primary slow (but healthy): the hedge should beat it.
	primary := c.Replicas("g")[0]
	realBase := c.byID[primary].base
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(300 * time.Millisecond)
		proxyReq, _ := http.NewRequestWithContext(r.Context(), r.Method, realBase+r.URL.RequestURI(), r.Body)
		resp, err := http.DefaultClient.Do(proxyReq)
		if err != nil {
			http.Error(w, `{"error":"slow proxy"}`, http.StatusBadGateway)
			return
		}
		defer resp.Body.Close()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(slow.Close)
	c.byID[primary].base = slow.URL

	rec := doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=0", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("hedged read: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Hedge") != "win" {
		t.Fatalf("want X-Hedge: win from the fast secondary, headers=%v", rec.Header())
	}
	metrics := doFront(c, http.MethodGet, "/metrics", "").Body.String()
	for _, series := range []string{"bear_front_hedges_total 1", "bear_front_hedge_wins_total 1"} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("metrics missing %q", series)
		}
	}
}

func TestClusterStatusEndpoint(t *testing.T) {
	shards := bootShards(t, 3)
	c := newFront(t, Config{Shards: shards, Replication: 2})
	rec := doFront(c, http.MethodGet, "/v1/cluster/status?graph=g", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("status: %d", rec.Code)
	}
	var st struct {
		Replication int `json:"replication"`
		Shards      []struct {
			ID          string  `json:"id"`
			State       string  `json:"state"`
			SuccessRate float64 `json:"success_rate"`
		} `json:"shards"`
		Replicas []string `json:"replicas"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	if st.Replication != 2 || len(st.Shards) != 3 || len(st.Replicas) != 2 {
		t.Fatalf("status = %+v", st)
	}
	for _, sh := range st.Shards {
		if sh.State != "healthy" || sh.SuccessRate != 1 {
			t.Fatalf("fresh shard %s: state=%s rate=%v", sh.ID, sh.State, sh.SuccessRate)
		}
	}
}

func TestRepairRestoresLaggingReplica(t *testing.T) {
	shards := bootShards(t, 3)
	c := newFront(t, Config{Shards: shards, Replication: 2})
	byID := map[string]string{}
	for _, sc := range shards {
		byID[sc.ID] = sc.URL
	}

	// A replicas=1 graph leaves the secondary lagging (no copy at all).
	if rec := doFront(c, http.MethodPut, "/v1/graphs/g?replicas=1", edgeList); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}
	placement := c.Replicas("g")

	rec := doFront(c, http.MethodPost, "/v1/cluster/repair?graph=g", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("repair: %d %s", rec.Code, rec.Body.String())
	}
	var rep struct {
		Source   string           `json:"source"`
		Outcomes []ReplicaOutcome `json:"outcomes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil {
		t.Fatalf("decoding repair: %v", err)
	}
	if rep.Source != placement[0] {
		t.Fatalf("repair source = %s, want primary %s", rep.Source, placement[0])
	}
	if len(rep.Outcomes) != 1 || !rep.Outcomes[0].OK || rep.Outcomes[0].Shard != placement[1] {
		t.Fatalf("repair outcomes = %+v, want one OK push to %s", rep.Outcomes, placement[1])
	}
	if !shardHasGraph(t, byID[placement[1]], "g") {
		t.Fatal("secondary still lacks the graph after repair")
	}

	// Replicas agree now: a second repair is an honest no-op.
	rec = doFront(c, http.MethodPost, "/v1/cluster/repair?graph=g", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("idempotent repair: %d", rec.Code)
	}
	rep.Outcomes = nil
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil || len(rep.Outcomes) != 0 {
		t.Fatalf("second repair should push nothing, got %+v (err %v)", rep.Outcomes, err)
	}

	// Repairing an unknown graph is a 503 with a machine-readable reason.
	rec = doFront(c, http.MethodPost, "/v1/cluster/repair?graph=nope", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("repair of missing graph: %d", rec.Code)
	}
}

func TestFrontReadyz(t *testing.T) {
	shards := bootShards(t, 2)
	c := newFront(t, Config{Shards: shards, Replication: 2})
	if rec := doFront(c, http.MethodGet, "/readyz", ""); rec.Code != http.StatusOK {
		t.Fatalf("fresh front readyz: %d", rec.Code)
	}
	// All shards ejected: the front honestly reports it cannot serve.
	for _, sh := range c.shards {
		sh.mu.Lock()
		sh.state = Ejected
		sh.ejectedAt = time.Now()
		sh.mu.Unlock()
	}
	rec := doFront(c, http.MethodGet, "/readyz", "")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("all-ejected front readyz: %d, want 503", rec.Code)
	}
}

// TestProxyRebuildFanOut covers the rebuild mutation path end to end
// through the front: the ?mode= selector must survive the fan-out to
// every placement replica, per-replica outcomes must be reported, and a
// replica failing mid-rebuild must flag the response partial rather than
// failing or hiding the miss.
func TestProxyRebuildFanOut(t *testing.T) {
	shards := bootShards(t, 3)
	c := newFront(t, Config{Shards: shards, Replication: 2})

	if rec := doFront(c, http.MethodPut, "/v1/graphs/g", edgeList); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d %s", rec.Code, rec.Body.String())
	}

	// An invalid mode is an agreed 400 from every replica — which proves
	// the ?mode= query string reaches the shards through the fan-out.
	if rec := doFront(c, http.MethodPost, "/v1/graphs/g/rebuild?mode=sideways", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("mode=sideways: %d %s, want agreed 400", rec.Code, rec.Body.String())
	}

	// Dirty a node on every replica, then force a full rebuild through
	// the front: both placement replicas must run it and report success.
	if rec := doFront(c, http.MethodPost, "/v1/graphs/g/edges", `{"op":"add","u":0,"v":2,"w":1}`); rec.Code != http.StatusOK {
		t.Fatalf("edges: %d %s", rec.Code, rec.Body.String())
	}
	rec := doFront(c, http.MethodPost, "/v1/graphs/g/rebuild?mode=full", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("rebuild through front: %d %s", rec.Code, rec.Body.String())
	}
	outcomes := rec.Result().Header["X-Replica-Outcome"]
	if len(outcomes) != 2 {
		t.Fatalf("want 2 X-Replica-Outcome headers, got %v", outcomes)
	}
	for _, o := range outcomes {
		if !strings.Contains(o, "=200") {
			t.Fatalf("outcome %q is not a success; all = %v", o, outcomes)
		}
	}
	var rep struct {
		Mode      string `json:"mode"`
		Requested string `json:"requested"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &rep); err != nil || rep.Mode != "full" || rep.Requested != "full" {
		t.Fatalf("forwarded rebuild body = %s (err %v), want mode/requested full", rec.Body.String(), err)
	}

	// Break one replica: the rebuild still succeeds on the other, and the
	// response says exactly who missed it.
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"induced"}`, http.StatusInternalServerError)
	}))
	t.Cleanup(broken.Close)
	secondary := c.Replicas("g")[1]
	c.byID[secondary].base = broken.URL

	rec = doFront(c, http.MethodPost, "/v1/graphs/g/rebuild?mode=full", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("partial rebuild: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Degraded") != "partial" {
		t.Fatalf("want X-Degraded: partial, got %q", rec.Header().Get("X-Degraded"))
	}
	if joined := strings.Join(rec.Result().Header["X-Replica-Outcome"], " "); !strings.Contains(joined, secondary+"=500") {
		t.Fatalf("outcome headers %q must show the 500 from %s", joined, secondary)
	}
}
