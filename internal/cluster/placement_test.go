package cluster

import (
	"fmt"
	"testing"
)

func TestReplicasBasics(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"})
	got := r.Replicas("some-graph", 2)
	if len(got) != 2 {
		t.Fatalf("want 2 replicas, got %v", got)
	}
	if got[0] == got[1] {
		t.Fatalf("replicas must be distinct shards, got %v", got)
	}
	// Deterministic: same ring, same key, same answer.
	for i := 0; i < 10; i++ {
		again := r.Replicas("some-graph", 2)
		if again[0] != got[0] || again[1] != got[1] {
			t.Fatalf("placement not deterministic: %v then %v", got, again)
		}
	}
	// Clamped to the shard count.
	if got := r.Replicas("k", 99); len(got) != 4 {
		t.Fatalf("want clamp to 4 shards, got %v", got)
	}
	if got := r.Replicas("k", 0); got != nil {
		t.Fatalf("want nil for n=0, got %v", got)
	}
}

func TestReplicasIndependentOfIDOrder(t *testing.T) {
	// Placement must depend on the shard *set*, not the order fronts list
	// it in — otherwise two fronts with shuffled configs disagree.
	r1 := NewRing([]string{"a", "b", "c"})
	r2 := NewRing([]string{"c", "a", "b"})
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("graph-%d", i)
		g1, g2 := r1.Replicas(key, 2), r2.Replicas(key, 2)
		if g1[0] != g2[0] || g1[1] != g2[1] {
			t.Fatalf("key %q: ring order changed placement: %v vs %v", key, g1, g2)
		}
	}
}

func TestReplicasBalance(t *testing.T) {
	ids := []string{"a", "b", "c", "d"}
	r := NewRing(ids)
	primaries := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		primaries[r.Replicas(fmt.Sprintf("graph-%d", i), 1)[0]]++
	}
	// Perfect balance is 25% each; with 64 virtual points per shard the
	// spread should stay within a loose band.
	for _, id := range ids {
		share := float64(primaries[id]) / keys
		if share < 0.10 || share > 0.45 {
			t.Fatalf("shard %s owns %.1f%% of primaries, outside [10%%,45%%]: %v",
				id, share*100, primaries)
		}
	}
}

func TestReplicasStabilityUnderMembershipChange(t *testing.T) {
	before := NewRing([]string{"a", "b", "c", "d"})
	after := NewRing([]string{"a", "b", "c"}) // d removed
	const keys = 2000
	movedPrimary := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("graph-%d", i)
		pb := before.Replicas(key, 1)[0]
		pa := after.Replicas(key, 1)[0]
		if pb != "d" && pb != pa {
			movedPrimary++
		}
	}
	// Consistent hashing's whole point: only keys that lived on the removed
	// shard move. Allow a small tolerance for virtual-point boundary shifts.
	if frac := float64(movedPrimary) / keys; frac > 0.02 {
		t.Fatalf("%.1f%% of primaries moved after removing one shard; want ~0%%", frac*100)
	}
}
