package cluster

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"bear/internal/fault"
	"bear/server"
)

// TestClusterChaos is the headline reliability test: three real bearserve
// shards behind fault injectors, a bearfront on top with fast health
// checking, concurrent query load, and a full kill/eject/restart/recover
// cycle on one shard. The invariants under fire:
//
//   - a graph replicated R=2 stays 100% available — every single read
//     answers 200 throughout the outage;
//   - a graph at replicas=1 whose only holder dies degrades *correctly*:
//     warmed requests answer 200 with X-Degraded: stale, cold requests
//     answer 503 (and only 503 — never a 500) with X-Degraded:
//     unavailable;
//   - the victim is ejected while down, recovers through half-open after
//     restart, and cold reads of the R=1 graph work again;
//   - the ejection is visible in the front's /metrics.
//
// Run under -race in CI: the read path, fanout, probe loop, and the
// health state machine all interleave here.
func TestClusterChaos(t *testing.T) {
	// Three real shards, each behind a kill switch.
	injectors := map[string]*fault.Injector{}
	var shardCfgs []ShardConfig
	for i := 0; i < 3; i++ {
		id := fmt.Sprintf("s%d", i)
		inj := fault.NewInjector(int64(i + 1))
		srv := httptest.NewServer(inj.Wrap(server.New().Handler()))
		t.Cleanup(srv.Close)
		injectors[id] = inj
		shardCfgs = append(shardCfgs, ShardConfig{ID: id, URL: srv.URL})
	}

	cfg := Config{
		Shards:      shardCfgs,
		Replication: 2,
		ReadTimeout: 2 * time.Second,
		ReadBudget:  5 * time.Second,
		HedgeDelay:  25 * time.Millisecond,
		Health: HealthConfig{
			WindowSize:    16,
			MinSamples:    4,
			SuccessFloor:  0.5,
			ProbeFailures: 2,
			EjectDuration: 150 * time.Millisecond,
			ProbeInterval: 50 * time.Millisecond,
			ProbeTimeout:  time.Second,
		},
	}
	cfg.WriteTimeout = 10 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// The victim is one of the R=2 graph's replicas; the R=1 graph is
	// chosen so its single copy lives exactly on the victim — its outage
	// is total, which is what makes its degradation behavior observable.
	const r2 = "replicated"
	victim := c.Replicas(r2)[0]
	r1 := ""
	for i := 0; ; i++ {
		name := fmt.Sprintf("fragile-%d", i)
		if c.Replicas(name)[0] == victim {
			r1 = name
			break
		}
	}

	if rec := doFront(c, http.MethodPut, "/v1/graphs/"+r2, edgeList); rec.Code != http.StatusCreated {
		t.Fatalf("PUT %s: %d %s", r2, rec.Code, rec.Body.String())
	}
	if rec := doFront(c, http.MethodPut, "/v1/graphs/"+r1+"?replicas=1", edgeList); rec.Code != http.StatusCreated {
		t.Fatalf("PUT %s: %d %s", r1, rec.Code, rec.Body.String())
	}

	warmTarget := "/v1/graphs/" + r1 + "/query?seed=0"
	if rec := doFront(c, http.MethodGet, warmTarget, ""); rec.Code != http.StatusOK {
		t.Fatalf("warming %s: %d", warmTarget, rec.Code)
	}

	ctx := t.Context()
	c.Start(ctx) // live probe loop: ejection and recovery run for real

	// Concurrent load for the whole chaos cycle. Workers tally status
	// codes; anything outside {200, 503} — a 500, a 502, a bogus 400 —
	// fails the test.
	var (
		mu       sync.Mutex
		r2Codes  = map[int]int{}
		r1Codes  = map[int]int{}
		badBody  string
		stop     = make(chan struct{})
		workerWG sync.WaitGroup
	)
	for w := 0; w < 8; w++ {
		workerWG.Add(1)
		go func(w int) {
			defer workerWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				var rec *httptest.ResponseRecorder
				r1Turn := i%2 == 0
				if r1Turn {
					rec = doFront(c, http.MethodGet, warmTarget, "")
				} else {
					rec = doFront(c, http.MethodGet,
						fmt.Sprintf("/v1/graphs/%s/query?seed=%d", r2, i%4), "")
				}
				mu.Lock()
				if r1Turn {
					r1Codes[rec.Code]++
				} else {
					r2Codes[rec.Code]++
				}
				if rec.Code != http.StatusOK && rec.Code != http.StatusServiceUnavailable && badBody == "" {
					badBody = fmt.Sprintf("%d %s", rec.Code, rec.Body.String())
				}
				mu.Unlock()
				time.Sleep(2 * time.Millisecond)
			}
		}(w)
	}

	waitState := func(want State, timeout time.Duration) {
		t.Helper()
		deadline := time.Now().Add(timeout)
		for {
			if st, _, _ := c.byID[victim].snapshotState(); st == want {
				return
			}
			if time.Now().After(deadline) {
				st, _, lastErr := c.byID[victim].snapshotState()
				t.Fatalf("victim %s never reached %v (now %v, lastErr %q)", victim, want, st, lastErr)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	time.Sleep(150 * time.Millisecond) // steady-state load first

	// ---- kill ----
	injectors[victim].SetDown(true)
	waitState(Ejected, 3*time.Second)

	// Cold read of the R=1 graph during the outage: an honest,
	// machine-readable 503 — not a 500, not a hang.
	rec := doFront(c, http.MethodGet, "/v1/graphs/"+r1+"/query?seed=1", "")
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("X-Degraded") != "unavailable" {
		t.Fatalf("cold R=1 read during outage: %d X-Degraded=%q body=%s",
			rec.Code, rec.Header().Get("X-Degraded"), rec.Body.String())
	}
	// Warmed read of the same graph: served stale, flagged as such.
	rec = doFront(c, http.MethodGet, warmTarget, "")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Degraded") != "stale" {
		t.Fatalf("warm R=1 read during outage: %d X-Degraded=%q",
			rec.Code, rec.Header().Get("X-Degraded"))
	}

	time.Sleep(200 * time.Millisecond) // load keeps running against the hole

	// ---- restart ----
	injectors[victim].SetDown(false)
	waitState(Healthy, 3*time.Second)

	// Recovered: cold reads of the fragile graph answer live again.
	rec = doFront(c, http.MethodGet, "/v1/graphs/"+r1+"/query?seed=2", "")
	if rec.Code != http.StatusOK || rec.Header().Get("X-Degraded") != "" {
		t.Fatalf("cold R=1 read after recovery: %d X-Degraded=%q body=%s",
			rec.Code, rec.Header().Get("X-Degraded"), rec.Body.String())
	}

	time.Sleep(100 * time.Millisecond)
	close(stop)
	workerWG.Wait()

	mu.Lock()
	defer mu.Unlock()
	if badBody != "" {
		t.Fatalf("saw a non-200, non-503 response under chaos: %s\nr2=%v r1=%v",
			badBody, r2Codes, r1Codes)
	}
	// The R=2 graph never missed: 100% availability through kill, outage,
	// and recovery.
	for code, n := range r2Codes {
		if code != http.StatusOK {
			t.Fatalf("R=2 graph availability broken: %d × HTTP %d (all codes %v)", n, code, r2Codes)
		}
	}
	if r2Codes[http.StatusOK] == 0 {
		t.Fatal("load generator never exercised the R=2 graph")
	}
	// The warmed R=1 request is also always 200: live before and after,
	// stale during.
	for code, n := range r1Codes {
		if code != http.StatusOK {
			t.Fatalf("warmed R=1 request failed %d × HTTP %d (want stale serving)", n, code)
		}
	}

	// The outage is visible in the front's metrics: the victim's ejection
	// counter moved, and the hedging + degradation series exist for
	// dashboards to find.
	metrics := doFront(c, http.MethodGet, "/metrics", "").Body.String()
	ejected := fmt.Sprintf("bear_front_ejections_total{shard=%q}", victim)
	if !strings.Contains(metrics, ejected) {
		t.Fatalf("metrics missing %s:\n%s", ejected, metrics)
	}
	for _, series := range []string{
		"bear_front_hedges_total",
		"bear_front_hedge_wins_total",
		"bear_front_degraded_stale_total",
		"bear_front_degraded_unavailable_total",
		"bear_front_shard_healthy",
	} {
		if !strings.Contains(metrics, series) {
			t.Fatalf("metrics missing series %s", series)
		}
	}
}

// TestClusterChaosSlowShard exercises the latency (not liveness) side of
// fault injection: a shard that answers, but slowly, must not drag reads
// with it — the hedge fires and the fast replica answers.
func TestClusterChaosSlowShard(t *testing.T) {
	injectors := map[string]*fault.Injector{}
	var shardCfgs []ShardConfig
	for i := 0; i < 2; i++ {
		id := fmt.Sprintf("s%d", i)
		inj := fault.NewInjector(int64(i + 1))
		srv := httptest.NewServer(inj.Wrap(server.New().Handler()))
		t.Cleanup(srv.Close)
		injectors[id] = inj
		shardCfgs = append(shardCfgs, ShardConfig{ID: id, URL: srv.URL})
	}
	cfg := Config{Shards: shardCfgs, Replication: 2, HedgeDelay: 15 * time.Millisecond}
	cfg.ReadTimeout = 5 * time.Second
	cfg.WriteTimeout = 10 * time.Second
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rec := doFront(c, http.MethodPut, "/v1/graphs/g", edgeList); rec.Code != http.StatusCreated {
		t.Fatalf("PUT: %d", rec.Code)
	}

	// The primary develops a 250ms limp with ±20ms of jitter.
	primary := c.Replicas("g")[0]
	injectors[primary].Script(true, fault.Step{Delay: 250 * time.Millisecond, Jitter: 20 * time.Millisecond})

	start := time.Now()
	rec := doFront(c, http.MethodGet, "/v1/graphs/g/query?seed=0", "")
	elapsed := time.Since(start)
	if rec.Code != http.StatusOK {
		t.Fatalf("read with slow primary: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("X-Hedge") != "win" {
		t.Fatalf("want the hedge to win against a 250ms primary, X-Shard=%q headers=%v",
			rec.Header().Get("X-Shard"), rec.Header())
	}
	if elapsed > 200*time.Millisecond {
		t.Fatalf("hedged read took %v; the slow primary's latency leaked through", elapsed)
	}
}
