package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// The front's HTTP surface: the shard /v1 API proxied unchanged (so
// client.Client points at a front or a single shard interchangeably),
// plus the cluster-only endpoints /v1/cluster/status and
// /v1/cluster/repair, plus the front's own /healthz, /readyz and
// /metrics. Requests are classified three ways:
//
//   - graph reads (query/stats/accuracy/pagerank/export, and the
//     POST-shaped ppr/batch) follow the failover+hedging read policy and
//     degrade to stale-or-503 when the whole replica set is down;
//   - graph mutations (put/delete/import/edges/rebuild) fan out to every
//     placement replica concurrently, with per-replica outcomes reported
//     in X-Replica-Outcome headers and partial success flagged
//     X-Degraded: partial;
//   - shard-global requests (list, snapshot, stats) scatter to all shards
//     and merge.

// Handler returns the front's HTTP handler.
func (c *Cluster) Handler() http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", c.handleFrontReady)
	mux.HandleFunc("GET /metrics", c.handleMetrics)

	mux.HandleFunc("GET /v1/cluster/status", c.instrument("cluster_status", c.handleClusterStatus))
	mux.HandleFunc("POST /v1/cluster/repair", c.instrument("cluster_repair", c.handleRepair))

	mux.HandleFunc("GET /v1/graphs", c.instrument("list", c.handleScatterList))
	mux.HandleFunc("GET /v1/stats", c.instrument("stats", c.handleScatterStats))
	mux.HandleFunc("POST /v1/snapshot", c.instrument("snapshot", c.handleSnapshotAll))

	mux.HandleFunc("PUT /v1/graphs/{name}", c.instrument("put", c.handleMutation))
	mux.HandleFunc("DELETE /v1/graphs/{name}", c.instrument("delete", c.handleMutation))
	mux.HandleFunc("GET /v1/graphs/{name}", c.instrument("graph_read", c.handleRead))
	mux.HandleFunc("GET /v1/graphs/{name}/{op}", c.instrument("graph_read", c.handleRead))
	mux.HandleFunc("PUT /v1/graphs/{name}/import", c.instrument("import", c.handleMutation))
	mux.HandleFunc("POST /v1/graphs/{name}/{op}", c.instrument("graph_post", c.handlePostOp))

	return mux
}

// handlePostOp splits POST-shaped requests: ppr and batch are reads that
// happen to carry a body; edges and rebuild mutate replica state.
func (c *Cluster) handlePostOp(w http.ResponseWriter, r *http.Request) {
	switch r.PathValue("op") {
	case "ppr", "batch":
		c.handleRead(w, r)
	default:
		// edges, rebuild — and unknown ops, which every shard will reject
		// identically, so the agreed 4xx forwards through the fanout rule.
		c.handleMutation(w, r)
	}
}

// ---- reads ----

func (c *Cluster) handleRead(w http.ResponseWriter, r *http.Request) {
	graph := r.PathValue("name")
	var body []byte
	if r.Method != http.MethodGet {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
		if err != nil {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				map[string]string{"error": "request body too large"})
			return
		}
	}
	key := staleKey(r, body)
	up, _ := c.read(r.Context(), graph, r.Method, r.URL.RequestURI(),
		r.Header.Get("Content-Type"), body)
	if up == nil {
		c.degrade(w, graph, key)
		return
	}
	if ct := up.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := up.header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set("X-Shard", up.shard.id)
	if up.hedged {
		w.Header().Set("X-Hedge", "win")
	}
	if up.status == http.StatusOK {
		c.stale.put(key, up.status, up.header.Get("Content-Type"), up.body)
	}
	w.WriteHeader(up.status)
	_, _ = w.Write(up.body)
}

// degrade is the end of the line for a read: every replica failed. Serve
// the last good response if it is fresh enough, else a machine-readable
// 503 — never a 500, and never an answer silently missing its context:
// both paths carry X-Degraded so callers can tell degraded from normal.
func (c *Cluster) degrade(w http.ResponseWriter, graph, key string) {
	if e, age, ok := c.stale.get(key, c.cfg.StaleTTL); ok {
		c.m.degradedStale.Inc()
		if e.contentType != "" {
			w.Header().Set("Content-Type", e.contentType)
		}
		w.Header().Set("X-Degraded", "stale")
		w.Header().Set("Age", strconv.Itoa(int(age/time.Second)))
		w.WriteHeader(e.status)
		_, _ = w.Write(e.body)
		return
	}
	c.m.degradedUnavailable.Inc()
	w.Header().Set("X-Degraded", "unavailable")
	w.Header().Set("Retry-After", "1")
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{
		"error":  fmt.Sprintf("all replicas of graph %q are unavailable", graph),
		"reason": "no_replica_available",
		"graph":  graph,
	})
}

// ---- mutations ----

// ReplicaOutcome is one replica's result of a fanned-out mutation or a
// repair push.
type ReplicaOutcome struct {
	Shard  string `json:"shard"`
	OK     bool   `json:"ok"`
	Status int    `json:"status,omitempty"`
	Error  string `json:"error,omitempty"`
}

// fanout sends one buffered request to every shard in targets
// concurrently and collects per-replica outcomes plus the buffered
// responses, both in target order. Mutations deliberately ignore health
// state: a half-dead shard that can still apply a write should get it,
// and the outcome report tells the caller who missed it.
func (c *Cluster) fanout(r *http.Request, targets []*shard, method, uri, contentType string, body []byte) ([]ReplicaOutcome, []*upstream) {
	outcomes := make([]ReplicaOutcome, len(targets))
	ups := make([]*upstream, len(targets))
	done := make(chan int, len(targets))
	for i, sh := range targets {
		go func(i int, sh *shard) {
			up, err := c.attempt(r.Context(), sh, method, uri, contentType, body, c.cfg.WriteTimeout)
			o := ReplicaOutcome{Shard: sh.id}
			if err != nil {
				o.Error = err.Error()
			} else {
				o.Status = up.status
				o.OK = up.status < 400
				if !o.OK {
					o.Error = upstreamError(up)
				}
				ups[i] = up
			}
			outcomes[i] = o
			done <- i
		}(i, sh)
	}
	for range targets {
		<-done
	}
	return outcomes, ups
}

// firstOKUpstream picks the response a fully or partially successful
// mutation forwards to the client.
func firstOKUpstream(outcomes []ReplicaOutcome, ups []*upstream) *upstream {
	for i := range outcomes {
		if outcomes[i].OK {
			return ups[i]
		}
	}
	return nil
}

func upstreamError(up *upstream) string {
	var apiErr struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(up.body, &apiErr) == nil && apiErr.Error != "" {
		return apiErr.Error
	}
	return fmt.Sprintf("HTTP %d", up.status)
}

func (c *Cluster) handleMutation(w http.ResponseWriter, r *http.Request) {
	graph := r.PathValue("name")
	targets := c.mutationTargets(graph, r)
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, c.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge,
			map[string]string{"error": "request body too large"})
		return
	}
	outcomes, ups := c.fanout(r, targets, r.Method, mutationURI(r), r.Header.Get("Content-Type"), body)
	c.writeFanoutResult(w, outcomes, firstOKUpstream(outcomes, ups))
}

// mutationTargets is the replica set a mutation fans out to: the graph's
// full placement, or — for PUT with ?replicas=N — the first N placement
// shards, which is how a caller opts a graph into reduced replication
// (N is clamped to [1, R]; the front is stateless, so later mutations
// still fan out to all R and rely on absent replicas answering 404).
func (c *Cluster) mutationTargets(graph string, r *http.Request) []*shard {
	ids := c.Replicas(graph)
	if r.Method == http.MethodPut {
		if v := r.URL.Query().Get("replicas"); v != "" {
			if n, err := strconv.Atoi(v); err == nil {
				if n < 1 {
					n = 1
				}
				if n < len(ids) {
					ids = ids[:n]
				}
			}
		}
	}
	out := make([]*shard, len(ids))
	for i, id := range ids {
		out[i] = c.byID[id]
	}
	return out
}

// mutationURI strips the front-only replicas parameter before the
// request goes to shards (bearserve rejects unknown PUT parameters).
func mutationURI(r *http.Request) string {
	q := r.URL.Query()
	if _, ok := q["replicas"]; !ok {
		return r.URL.RequestURI()
	}
	q.Del("replicas")
	u := *r.URL
	u.RawQuery = q.Encode()
	return u.RequestURI()
}

// writeFanoutResult turns per-replica outcomes into one client response.
// A 404 outcome counts as neither success nor failure when someone else
// succeeded: replicas of a reduced-replication graph legitimately lack
// it. Every replica's result rides along in an X-Replica-Outcome header.
func (c *Cluster) writeFanoutResult(w http.ResponseWriter, outcomes []ReplicaOutcome, firstOK *upstream) {
	okN, missN := 0, 0
	for _, o := range outcomes {
		w.Header().Add("X-Replica-Outcome",
			fmt.Sprintf("%s=%s", o.Shard, outcomeCode(o)))
		if o.OK {
			okN++
		} else if o.Status == http.StatusNotFound {
			missN++
		}
	}
	switch {
	case okN == len(outcomes) || (okN > 0 && okN+missN == len(outcomes)):
		forwardUpstream(w, firstOK)
	case okN > 0:
		c.m.degradedPartial.Inc()
		w.Header().Set("X-Degraded", "partial")
		forwardUpstream(w, firstOK)
	default:
		// Nobody succeeded. If every replica rejected the request the same
		// way (400 bad seed, 404 no such graph, 409 rebuild running), that
		// verdict is the answer — forward it. Mixed failures mean the
		// cluster, not the request, is the problem: 503.
		if agreed := agreedFailure(outcomes); agreed != nil {
			forwardUpstream(w, agreed)
			return
		}
		c.m.degradedUnavailable.Inc()
		w.Header().Set("X-Degraded", "unavailable")
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error":    "mutation failed on every replica",
			"reason":   "no_replica_available",
			"replicas": outcomes,
		})
	}
}

func outcomeCode(o ReplicaOutcome) string {
	if o.Status != 0 {
		return strconv.Itoa(o.Status)
	}
	return "error"
}

// agreedFailure returns a representative upstream when every outcome is
// the same client-error status (4xx other than 429), else nil. It relies
// on fanout buffering: outcome i's upstream is only consulted via status.
func agreedFailure(outcomes []ReplicaOutcome) *upstream {
	status := 0
	for _, o := range outcomes {
		if o.Status < 400 || o.Status >= 500 || o.Status == http.StatusTooManyRequests {
			return nil
		}
		if status == 0 {
			status = o.Status
		} else if o.Status != status {
			return nil
		}
	}
	if status == 0 {
		return nil
	}
	body, _ := json.Marshal(map[string]string{"error": outcomes[0].Error})
	return &upstream{status: status,
		header: http.Header{"Content-Type": []string{"application/json"}}, body: body}
}

func forwardUpstream(w http.ResponseWriter, up *upstream) {
	if up == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if ct := up.header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if up.shard != nil {
		w.Header().Set("X-Shard", up.shard.id)
	}
	w.WriteHeader(up.status)
	_, _ = w.Write(up.body)
}

// ---- scatter endpoints ----

// handleScatterList merges GET /v1/graphs across all shards, deduplicating
// replicated graphs by name (first responder wins; replicas may disagree
// transiently about pending counts, and any answer is equally true).
func (c *Cluster) handleScatterList(w http.ResponseWriter, r *http.Request) {
	type listResp struct {
		Graphs []json.RawMessage `json:"graphs"`
	}
	outcomes, ups := c.fanout(r, c.shards, http.MethodGet, "/v1/graphs", "", nil)
	merged := make([]json.RawMessage, 0)
	seen := make(map[string]bool)
	okN := 0
	for i, o := range outcomes {
		if !o.OK || ups[i] == nil {
			continue
		}
		okN++
		var lr listResp
		if json.Unmarshal(ups[i].body, &lr) != nil {
			continue
		}
		for _, g := range lr.Graphs {
			var named struct {
				Name string `json:"name"`
			}
			if json.Unmarshal(g, &named) != nil || seen[named.Name] {
				continue
			}
			seen[named.Name] = true
			merged = append(merged, g)
		}
	}
	if okN == 0 {
		c.m.degradedUnavailable.Inc()
		w.Header().Set("X-Degraded", "unavailable")
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"error": "no shard reachable", "reason": "no_replica_available"})
		return
	}
	if okN < len(c.shards) {
		c.m.degradedPartial.Inc()
		w.Header().Set("X-Degraded", "partial")
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"graphs": merged})
}

// handleScatterStats reports every shard's /v1/stats document side by
// side, keyed by shard ID — per-shard resource numbers do not meaningfully
// sum, so the front presents rather than aggregates.
func (c *Cluster) handleScatterStats(w http.ResponseWriter, r *http.Request) {
	c.scatterByShard(w, r, "/v1/stats")
}

// handleSnapshotAll triggers POST /v1/snapshot on every shard.
func (c *Cluster) handleSnapshotAll(w http.ResponseWriter, r *http.Request) {
	c.scatterByShard(w, r, "/v1/snapshot")
}

func (c *Cluster) scatterByShard(w http.ResponseWriter, r *http.Request, uri string) {
	outcomes, ups := c.fanout(r, c.shards, r.Method, uri, "", nil)
	results := make(map[string]json.RawMessage, len(c.shards))
	okN := 0
	for i, o := range outcomes {
		if o.OK {
			okN++
			if ups[i] != nil && json.Valid(ups[i].body) {
				results[o.Shard] = ups[i].body
				continue
			}
		}
		errDoc, _ := json.Marshal(map[string]string{"error": o.Error})
		results[o.Shard] = errDoc
	}
	if okN == 0 {
		c.m.degradedUnavailable.Inc()
		w.Header().Set("X-Degraded", "unavailable")
		writeJSON(w, http.StatusServiceUnavailable, map[string]interface{}{
			"error": "no shard reachable", "reason": "no_replica_available",
			"shards": outcomes,
		})
		return
	}
	if okN < len(c.shards) {
		c.m.degradedPartial.Inc()
		w.Header().Set("X-Degraded", "partial")
	}
	writeJSON(w, http.StatusOK, map[string]interface{}{"shards": results})
}

// ---- cluster endpoints ----

func (c *Cluster) handleFrontReady(w http.ResponseWriter, r *http.Request) {
	notEjected := 0
	for _, sh := range c.shards {
		st, _, _ := sh.snapshotState()
		if st != Ejected {
			notEjected++
		}
	}
	status := http.StatusOK
	state := "ready"
	if notEjected == 0 {
		status = http.StatusServiceUnavailable
		state = "no_shards_available"
	}
	writeJSON(w, status, map[string]interface{}{
		"status": state, "shards_available": notEjected, "shards_total": len(c.shards),
	})
}

func (c *Cluster) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	type shardStatus struct {
		ID          string  `json:"id"`
		URL         string  `json:"url"`
		State       string  `json:"state"`
		SuccessRate float64 `json:"success_rate"`
		LastError   string  `json:"last_error,omitempty"`
	}
	resp := struct {
		Replication int           `json:"replication"`
		Shards      []shardStatus `json:"shards"`
		Replicas    []string      `json:"replicas,omitempty"`
	}{Replication: c.cfg.Replication}
	for _, sh := range c.shards {
		st, rate, lastErr := sh.snapshotState()
		resp.Shards = append(resp.Shards, shardStatus{
			ID: sh.id, URL: sh.base, State: st.String(),
			SuccessRate: rate, LastError: lastErr,
		})
	}
	if g := r.URL.Query().Get("graph"); g != "" {
		resp.Replicas = c.Replicas(g)
	}
	writeJSON(w, http.StatusOK, resp)
}

// ---- anti-entropy repair ----

// handleRepair re-pushes a graph from its healthiest, most advanced
// replica to lagging ones: POST /v1/cluster/repair?graph=g[&to=shardID].
// "Lagging" means the replica 404s the graph or disagrees with the source
// on node/edge counts; &to= forces a specific target regardless. The copy
// is the shard's own export/import snapshot stream, so a repaired replica
// is bit-identical to the source at copy time.
func (c *Cluster) handleRepair(w http.ResponseWriter, r *http.Request) {
	graph := r.URL.Query().Get("graph")
	if graph == "" {
		writeJSON(w, http.StatusBadRequest,
			map[string]string{"error": "missing required parameter: graph"})
		return
	}
	replicas := c.mutationTargets(graph, r)
	escaped := url.PathEscape(graph)

	// Survey the replica set: who has the graph, and how much of it.
	type view struct {
		sh    *shard
		found bool
		info  struct {
			Nodes int `json:"nodes"`
			Edges int `json:"edges"`
		}
	}
	views := make([]view, 0, len(replicas))
	for _, sh := range replicas {
		v := view{sh: sh}
		up, err := c.attempt(r.Context(), sh, http.MethodGet,
			"/v1/graphs/"+escaped, "", nil, c.cfg.ReadTimeout)
		if err == nil && up.status == http.StatusOK &&
			json.Unmarshal(up.body, &v.info) == nil {
			v.found = true
		}
		views = append(views, v)
	}

	// Source: the reachable replica with the most edges (ties: placement
	// order). Most edges ≈ most caught-up for an additive update stream.
	src := -1
	for i, v := range views {
		if v.found && (src < 0 || v.info.Edges > views[src].info.Edges) {
			src = i
		}
	}
	if src < 0 {
		c.m.repairErrors.Inc()
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"error":  fmt.Sprintf("no reachable replica holds graph %q", graph),
			"reason": "no_source_replica",
			"graph":  graph,
		})
		return
	}

	only := r.URL.Query().Get("to")
	var targets []*shard
	for i, v := range views {
		if i == src {
			continue
		}
		switch {
		case only != "":
			if v.sh.id == only {
				targets = append(targets, v.sh)
			}
		case !v.found,
			v.info.Nodes != views[src].info.Nodes,
			v.info.Edges != views[src].info.Edges:
			targets = append(targets, v.sh)
		}
	}

	resp := struct {
		Graph    string           `json:"graph"`
		Source   string           `json:"source"`
		Outcomes []ReplicaOutcome `json:"outcomes"`
	}{Graph: graph, Source: views[src].sh.id, Outcomes: []ReplicaOutcome{}}
	if len(targets) == 0 {
		// Nothing lagging: report the no-op honestly rather than recopying.
		writeJSON(w, http.StatusOK, resp)
		return
	}

	// Pull one export from the source, push it to every lagging target.
	export, err := c.attempt(r.Context(), views[src].sh, http.MethodGet,
		"/v1/graphs/"+escaped+"/export", "", nil, c.cfg.WriteTimeout)
	if err != nil || export.status != http.StatusOK {
		c.m.repairErrors.Inc()
		detail := "transfer failed"
		if err != nil {
			detail = err.Error()
		} else {
			detail = upstreamError(export)
		}
		writeJSON(w, http.StatusBadGateway, map[string]string{
			"error":  fmt.Sprintf("exporting %q from %s: %s", graph, views[src].sh.id, detail),
			"reason": "export_failed",
			"graph":  graph,
		})
		return
	}
	outcomes, _ := c.fanout(r, targets, http.MethodPut,
		"/v1/graphs/"+escaped+"/import", "application/octet-stream", export.body)
	resp.Outcomes = outcomes
	repaired := 0
	for _, o := range outcomes {
		if o.OK {
			repaired++
		}
	}
	if repaired > 0 {
		c.m.repairs.Inc()
	}
	if repaired < len(outcomes) {
		c.m.repairErrors.Inc()
	}
	c.logf("cluster: repaired graph %q from %s to %d/%d lagging replicas",
		graph, views[src].sh.id, repaired, len(outcomes))
	writeJSON(w, http.StatusOK, resp)
}

// ---- plumbing ----

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with the front's endpoint metrics.
func (c *Cluster) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sr := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(sr, r)
		c.observeRequest(endpoint, sr.status, time.Since(start))
	}
}
