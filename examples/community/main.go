// Community: local community detection with a sweep cut over RWR scores
// (Andersen, Chung & Lang's recipe, one of the paper's motivating
// applications). BEAR supplies the RWR vector; analysis.SweepCut finds the
// prefix of degree-normalized scores with minimum conductance.
package main

import (
	"fmt"
	"log"

	"bear"
	"bear/analysis"
)

func main() {
	// Planted communities: 20 caves of 40 nodes plus hub noise.
	const caves, size = 20, 40
	g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: caves, Size: size, PIntra: 0.3,
		Hubs: 10, HubDeg: 60, Seed: 7,
	})
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}

	const seed = 3 // a node in cave 0 (ids [0, size))
	scores, err := p.Query(seed)
	if err != nil {
		log.Fatalf("query: %v", err)
	}

	community, phi := analysis.SweepCut(g, scores)
	fmt.Printf("seed %d: sweep cut found a community of %d nodes (conductance %.4f)\n",
		seed, len(community), phi)

	// Evaluate against the planted cave containing the seed.
	inCave := 0
	for _, u := range community {
		if u/size == seed/size && u < caves*size {
			inCave++
		}
	}
	precision := float64(inCave) / float64(len(community))
	recall := float64(inCave) / float64(size)
	fmt.Printf("precision vs planted cave: %.2f, recall: %.2f\n", precision, recall)

	// The same works on approximate scores: BEAR-Approx with ξ = n⁻¹ᐟ²
	// finds the same community far more cheaply.
	pa, err := bear.Preprocess(g, bear.Options{DropTol: 1 / float64(g.N())})
	if err != nil {
		log.Fatalf("approx preprocess: %v", err)
	}
	approxScores, err := pa.Query(seed)
	if err != nil {
		log.Fatalf("approx query: %v", err)
	}
	approxCommunity, approxPhi := analysis.SweepCut(g, approxScores)
	fmt.Printf("BEAR-Approx finds %d nodes (conductance %.4f) from %d vs %d nonzeros\n",
		len(approxCommunity), approxPhi, pa.NNZ(), p.NNZ())
}
