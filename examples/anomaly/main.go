// Anomaly: neighborhood-coherence anomaly detection in a bipartite graph
// (Sun et al.'s setting, cited by the paper as an RWR application). Normal
// right-side nodes connect within one "topic"; injected anomalies connect
// across topics. analysis.AnomalyRanking surfaces the nodes whose
// neighborhoods are mutually irrelevant under RWR.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bear"
	"bear/analysis"
)

func main() {
	// Bipartite users×items with block (topic) structure: users [0, L),
	// items [L, L+R). Normal users touch items of one topic.
	const (
		L, R    = 600, 300
		topics  = 6
		perUser = 6
		anoms   = 5
	)
	rng := rand.New(rand.NewSource(11))
	b := bear.NewGraphBuilder(L + R)
	itemsPerTopic := R / topics
	for u := 0; u < L-anoms; u++ {
		topic := u % topics
		for e := 0; e < perUser; e++ {
			item := L + topic*itemsPerTopic + rng.Intn(itemsPerTopic)
			b.AddUndirected(u, item, 1)
		}
	}
	// Anomalous users: edges scattered uniformly across all topics.
	for a := 0; a < anoms; a++ {
		u := L - 1 - a
		for e := 0; e < perUser; e++ {
			b.AddUndirected(u, L+rng.Intn(R), 1)
		}
	}
	g := b.Build()

	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}

	// Rank the user side by ascending neighborhood coherence.
	order, coherence, err := analysis.AnomalyRanking(p, g, L)
	if err != nil {
		log.Fatalf("anomaly ranking: %v", err)
	}

	fmt.Println("10 most anomalous users (injected anomalies are ids",
		L-anoms, "..", L-1, "):")
	found := 0
	for rank := 0; rank < 10; rank++ {
		u := order[rank]
		tag := ""
		if u >= L-anoms {
			tag = "  <- injected"
			found++
		}
		fmt.Printf("  %2d. user %3d  coherence %.6f%s\n", rank+1, u, coherence[u], tag)
	}
	fmt.Printf("\n%d/%d injected anomalies in the top 10\n", found, anoms)
}
