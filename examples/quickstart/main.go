// Quickstart: build a small graph, preprocess it with BEAR, and query RWR
// scores — then cross-check the result against the iterative method.
package main

import (
	"fmt"
	"log"
	"math"

	"bear"
)

func main() {
	// A small two-community social graph with a bridge node (8).
	edges := [][2]int{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 0}, // community A
		{4, 5}, {5, 6}, {6, 7}, {7, 4}, {4, 6}, // community B
		{3, 8}, {8, 4}, // bridge
	}
	b := bear.NewGraphBuilder(9)
	for _, e := range edges {
		b.AddUndirected(e[0], e[1], 1)
	}
	g := b.Build()

	// Preprocess once (BEAR-Exact: the zero Options value).
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}
	fmt.Printf("graph: n=%d m=%d; BEAR split: %d spokes, %d hubs, %d blocks\n",
		g.N(), g.M(), p.N1, p.N2, len(p.Blocks))

	// Query RWR scores for seed node 0.
	const seed = 0
	scores, err := p.Query(seed)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\nRWR scores w.r.t. node %d (restart prob %.2f):\n", seed, p.C)
	for _, u := range bear.TopK(scores, g.N()) {
		fmt.Printf("  node %d: %.6f\n", u, scores[u])
	}

	// Cross-check against the classic power iteration.
	q := make([]float64, g.N())
	q[seed] = 1
	ref, err := bear.SolveIterative(g, p.C, q, 1e-12)
	if err != nil {
		log.Fatalf("iterative: %v", err)
	}
	var maxDiff float64
	for i := range ref {
		if d := math.Abs(ref[i] - scores[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("\nmax |BEAR - iterative| = %.2e (BEAR-Exact is exact)\n", maxDiff)

	// Community A nodes should outrank community B nodes for a seed in A.
	if scores[1] > scores[5] && scores[2] > scores[6] {
		fmt.Println("as expected, the seed's community scores higher than the far community")
	}
}
