// Ranking: use BEAR to rank nodes of a citation-like graph by relevance to
// a query paper, and by personalized PageRank over a set of seed papers —
// the workload behind Figures 10/11 of the paper. Demonstrates that the
// one-time preprocessing cost amortizes over many queries.
package main

import (
	"fmt"
	"log"
	"time"

	"bear"
)

func main() {
	// A citation-like graph: R-MAT with strong locality (communities of
	// mutually citing papers) and a heavy tail of highly cited classics.
	const n = 5000
	g := bear.GenerateRMATPul(n, 6*n, 0.7, 2024)

	start := time.Now()
	p, err := bear.Preprocess(g, bear.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}
	fmt.Printf("preprocessed %d nodes / %d edges in %v (n2=%d hubs)\n",
		g.N(), g.M(), time.Since(start), p.N2)

	// Single-seed ranking: most relevant papers to paper 42.
	const paper = 42
	scores, err := p.Query(paper)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Printf("\ntop 10 papers most relevant to paper %d (RWR):\n", paper)
	for rank, u := range bear.TopK(scores, 10) {
		fmt.Printf("  %2d. paper %4d  score %.6f\n", rank+1, u, scores[u])
	}

	// Personalized PageRank: a reader interested in three papers at once.
	seeds := []int{42, 1001, 4096}
	q := make([]float64, g.N())
	for _, s := range seeds {
		q[s] = 1 / float64(len(seeds))
	}
	ppr, err := p.QueryDist(q)
	if err != nil {
		log.Fatalf("ppr: %v", err)
	}
	fmt.Printf("\ntop 10 for the multi-seed reader %v (PPR):\n", seeds)
	for rank, u := range bear.TopK(ppr, 10) {
		fmt.Printf("  %2d. paper %4d  score %.6f\n", rank+1, u, ppr[u])
	}

	// Effective importance down-weights globally popular papers, surfacing
	// locally specific related work (Section 3.4 of the paper).
	ei, err := p.QueryEffectiveImportance(paper)
	if err != nil {
		log.Fatalf("effective importance: %v", err)
	}
	fmt.Printf("\ntop 10 by effective importance w.r.t. paper %d:\n", paper)
	for rank, u := range bear.TopK(ei, 10) {
		fmt.Printf("  %2d. paper %4d  score %.6f\n", rank+1, u, ei[u])
	}

	// Amortization: many queries against the one-time preprocessing.
	const queries = 200
	start = time.Now()
	for s := 0; s < queries; s++ {
		if _, err := p.Query(s % g.N()); err != nil {
			log.Fatalf("query %d: %v", s, err)
		}
	}
	per := time.Since(start) / queries
	fmt.Printf("\n%d queries at %v each after preprocessing\n", queries, per)
}
