// Service: run the BEAR HTTP service in-process and drive it with the Go
// client — upload a graph, query it, stream edge updates, and watch the
// automatic rebuild keep queries exact.
package main

import (
	"bytes"
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"bear"
	"bear/client"
	"bear/server"
)

func main() {
	// An in-process server; in production this is `bearserve -addr :8080`.
	srv := server.New()
	srv.RebuildThreshold = 5
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := client.New(ts.URL)
	ctx := context.Background()

	// Upload a follower-style graph.
	g := bear.GenerateBarabasiAlbert(3000, 2, 42)
	var buf bytes.Buffer
	if err := g.SaveEdgeList(&buf); err != nil {
		log.Fatal(err)
	}
	info, err := c.Upload(ctx, "followers", &buf, client.UploadOptions{})
	if err != nil {
		log.Fatalf("upload: %v", err)
	}
	fmt.Printf("uploaded %q: %d nodes, %d edges, %d hubs, %d precomputed nonzeros\n",
		info.Name, info.Nodes, info.Edges, info.Hubs, info.NNZ)

	// Who is most relevant to user 42?
	results, err := c.Query(ctx, "followers", 42, 5)
	if err != nil {
		log.Fatalf("query: %v", err)
	}
	fmt.Println("\ntop recommendations for user 42:")
	for i, r := range results {
		fmt.Printf("  %d. user %d (%.6f)\n", i+1, r.Node, r.Score)
	}

	// Follow events stream in; queries stay exact between rebuilds.
	fmt.Println("\nstreaming 8 follow events:")
	for i := 0; i < 8; i++ {
		st, err := c.AddEdge(ctx, "followers", 42, 100+i*37, 1)
		if err != nil {
			log.Fatalf("add edge: %v", err)
		}
		if st.Rebuilding {
			fmt.Printf("  event %d: background index rebuild started\n", i+1)
		} else {
			fmt.Printf("  event %d: %d pending nodes\n", i+1, st.Pending)
		}
	}

	// The new follows shape the recommendations immediately.
	results, err = c.Query(ctx, "followers", 42, 5)
	if err != nil {
		log.Fatalf("query after updates: %v", err)
	}
	fmt.Println("\nupdated recommendations for user 42:")
	for i, r := range results {
		fmt.Printf("  %d. user %d (%.6f)\n", i+1, r.Node, r.Score)
	}

	// Global PageRank over the same index.
	pr, err := c.PageRank(ctx, "followers", 3)
	if err != nil {
		log.Fatalf("pagerank: %v", err)
	}
	fmt.Println("\nglobal PageRank top 3:")
	for i, r := range pr {
		fmt.Printf("  %d. user %d (%.6f)\n", i+1, r.Node, r.Score)
	}
}
