// Dynamic: exact RWR on a changing graph without re-preprocessing — the
// paper's future-work direction, implemented as a Sherman–Morrison–Woodbury
// correction over BEAR's block-elimination solver. A stream of edge events
// arrives (a social feed), queries stay exact after every event, and the
// index is rebuilt once enough nodes have been touched.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"bear"
)

func main() {
	const n = 2000
	g := bear.GenerateBarabasiAlbert(n, 2, 77)
	start := time.Now()
	d, err := bear.NewDynamic(g, bear.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}
	fmt.Printf("preprocessed %d nodes in %v\n\n", n, time.Since(start))

	rng := rand.New(rand.NewSource(1))
	const events = 30
	const rebuildAt = 10

	var queryTotal time.Duration
	for ev := 1; ev <= events; ev++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if err := d.AddEdge(u, v, 1); err != nil {
			log.Fatalf("add edge: %v", err)
		}
		t0 := time.Now()
		scores, err := d.Query(u)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		queryTotal += time.Since(t0)

		if ev%10 == 0 {
			// Spot-check exactness against a from-scratch preprocess.
			p, err := bear.Preprocess(d.Graph(), bear.Options{})
			if err != nil {
				log.Fatalf("fresh preprocess: %v", err)
			}
			fresh, err := p.Query(u)
			if err != nil {
				log.Fatalf("fresh query: %v", err)
			}
			var maxDiff float64
			for i := range fresh {
				if diff := math.Abs(fresh[i] - scores[i]); diff > maxDiff {
					maxDiff = diff
				}
			}
			fmt.Printf("event %2d: %d dirty nodes, query %v, max |dynamic - fresh| = %.2e\n",
				ev, d.PendingNodes(), queryTotal/time.Duration(ev), maxDiff)
		}

		if d.PendingNodes() >= rebuildAt {
			t0 := time.Now()
			if err := d.Rebuild(); err != nil {
				log.Fatalf("rebuild: %v", err)
			}
			fmt.Printf("event %2d: rebuilt index in %v (pending reset to %d)\n",
				ev, time.Since(t0), d.PendingNodes())
		}
	}
	fmt.Printf("\nprocessed %d edge events; mean query %v, all exact\n",
		events, queryTotal/events)
}
