// Linkpred: RWR-based link prediction (Liben-Nowell & Kleinberg's setting,
// one of the paper's motivating applications). Hold out a fraction of
// edges, score candidate endpoints by RWR from each probe node, and
// compare hits@k against a random predictor.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"bear"
	"bear/analysis"
)

func main() {
	// A community-structured graph: within-community edges dominate, so a
	// held-out edge's endpoints stay well connected through mutual
	// neighbors — the regime where RWR-based prediction shines.
	full := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 60, Size: 30, PIntra: 0.25, Hubs: 20, HubDeg: 40, Seed: 99,
	})
	n := full.N()
	rng := rand.New(rand.NewSource(5))

	// Hold out 10% of undirected edges (both directions removed).
	type pair struct{ u, v int }
	var kept, held []pair
	for u := 0; u < n; u++ {
		dst, _ := full.Out(u)
		for _, v := range dst {
			if u < v { // each undirected edge once
				if rng.Float64() < 0.10 {
					held = append(held, pair{u, v})
				} else {
					kept = append(kept, pair{u, v})
				}
			}
		}
	}
	b := bear.NewGraphBuilder(n)
	for _, e := range kept {
		b.AddUndirected(e.u, e.v, 1)
	}
	train := b.Build()
	fmt.Printf("train: %d edges, held out: %d edges\n", len(kept), len(held))

	p, err := bear.Preprocess(train, bear.Options{})
	if err != nil {
		log.Fatalf("preprocess: %v", err)
	}

	// For each held-out edge (u, v): does v appear in the top-k RWR
	// predictions from u (excluding existing neighbors and u itself)?
	const topK = 20
	probes := held
	if len(probes) > 300 {
		probes = probes[:300]
	}
	hits, randomHits := 0, 0
	for _, e := range probes {
		scores, err := p.Query(e.u)
		if err != nil {
			log.Fatalf("query: %v", err)
		}
		for _, v := range analysis.PredictLinks(train, e.u, scores, topK) {
			if v == e.v {
				hits++
				break
			}
		}
		// Random baseline: chance that v is in a random top-k sample.
		cand := n - 1 - train.OutDegree(e.u)
		if rng.Intn(cand) < topK {
			randomHits++
		}
	}
	fmt.Printf("RWR hits@%d: %d/%d (%.1f%%)\n", topK, hits, len(probes),
		100*float64(hits)/float64(len(probes)))
	fmt.Printf("random hits@%d: %d/%d (%.1f%%)\n", topK, randomHits, len(probes),
		100*float64(randomHits)/float64(len(probes)))
	if hits > 3*randomHits {
		fmt.Println("RWR decisively beats the random predictor, as expected")
	}
}
