package bear_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"bear"
	"bear/analysis"
)

// TestFullPipeline exercises the complete user journey across modules:
// generate a graph, persist it as an edge list, reload it, preprocess with
// BEAR, persist the index, reload the index, query, and run an analysis —
// checking exactness against the iterative solver at the end.
func TestFullPipeline(t *testing.T) {
	dir := t.TempDir()

	// 1. Generate and persist a graph.
	g := bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
		Communities: 10, Size: 20, PIntra: 0.3, Hubs: 6, HubDeg: 20, Seed: 3,
	})
	graphPath := filepath.Join(dir, "graph.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SaveEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// 2. Reload it.
	f, err = os.Open(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := bear.LoadEdgeList(f)
	f.Close()
	if err != nil {
		t.Fatalf("LoadEdgeList: %v", err)
	}
	if loaded.N() != g.N() || loaded.M() != g.M() {
		t.Fatalf("reload changed graph: %d/%d vs %d/%d", loaded.N(), loaded.M(), g.N(), g.M())
	}

	// 3. Preprocess and persist the index.
	p, err := bear.Preprocess(loaded, bear.Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	idxPath := filepath.Join(dir, "graph.bear")
	f, err = os.Create(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(f); err != nil {
		t.Fatalf("Save: %v", err)
	}
	f.Close()

	// 4. Reload the index and query.
	f, err = os.Open(idxPath)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := bear.LoadPrecomputed(f)
	f.Close()
	if err != nil {
		t.Fatalf("LoadPrecomputed: %v", err)
	}
	const seed = 5
	scores, err := p2.Query(seed)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}

	// 5. Exactness against the iterative method.
	q := make([]float64, loaded.N())
	q[seed] = 1
	ref, err := bear.SolveIterative(loaded, p2.C, q, 1e-12)
	if err != nil {
		t.Fatalf("SolveIterative: %v", err)
	}
	for i := range ref {
		if math.Abs(ref[i]-scores[i]) > 1e-9 {
			t.Fatalf("pipeline scores diverge at node %d", i)
		}
	}

	// 6. Downstream analysis finds the seed's planted cave.
	community, phi := analysis.SweepCut(loaded, scores)
	if len(community) != 20 {
		t.Fatalf("sweep cut found %d nodes, want the 20-node cave", len(community))
	}
	for _, u := range community {
		if u/20 != seed/20 {
			t.Fatalf("community includes node %d outside the seed's cave", u)
		}
	}
	if phi > 0.2 {
		t.Fatalf("conductance %g too high", phi)
	}
}

// TestPipelineDynamicContinuation extends the pipeline with incremental
// updates: loading a saved index cannot resume a Dynamic session (the graph
// is not stored in the index), so a new Dynamic must reproduce the same
// answers and then absorb updates.
func TestPipelineDynamicContinuation(t *testing.T) {
	g := bear.GenerateRMATPul(200, 1200, 0.7, 4)
	d, err := bear.NewDynamic(g, bear.Options{})
	if err != nil {
		t.Fatalf("NewDynamic: %v", err)
	}
	if err := d.AddEdge(0, 150, 1); err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	got, err := d.Query(0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	// Fresh preprocess over the updated graph agrees.
	p, err := bear.Preprocess(d.Graph(), bear.Options{})
	if err != nil {
		t.Fatalf("Preprocess: %v", err)
	}
	want, err := p.Query(0)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for i := range got {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("dynamic pipeline diverges at node %d", i)
		}
	}
}
