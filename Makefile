# Development targets for the bear repository.

GO ?= go

.PHONY: all build vet test race cover bench fuzz experiments examples clean cluster-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz passes over every fuzz target.
fuzz:
	$(GO) test -run='^$$' -fuzz=FuzzLoadEdgeList -fuzztime=30s ./internal/graph/
	$(GO) test -run='^$$' -fuzz=FuzzLoadMatrixMarket -fuzztime=30s ./internal/graph/
	$(GO) test -run='^$$' -fuzz='^FuzzLoad$$' -fuzztime=30s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzLoadDynamic -fuzztime=30s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzDynamicUpdate -fuzztime=30s ./internal/core/
	$(GO) test -run='^$$' -fuzz=FuzzSniffLoad -fuzztime=30s ./server/
	$(GO) test -run='^$$' -fuzz=FuzzReadSnapshot -fuzztime=30s ./server/
	$(GO) test -run='^$$' -fuzz=FuzzCandidatesRequest -fuzztime=30s ./server/

# Boot 3 real shards + a bearfront, kill one shard under load, assert
# failover/ejection/repair over real sockets.
cluster-smoke:
	scripts/cluster_smoke.sh

# Regenerate the paper's tables and figures (writes CSVs to results/).
experiments:
	$(GO) run ./cmd/bearbench -exp all -csv results -bars

examples:
	@for d in examples/*/; do \
		echo "== $$d"; \
		$(GO) run ./$$d || exit 1; \
	done

clean:
	rm -rf results
