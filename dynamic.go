package bear

import (
	"context"
	"io"

	"bear/internal/core"
)

// ErrRebuildInProgress is returned by Rebuild when another rebuild of the
// same Dynamic is already running; queries keep serving the old snapshot
// throughout, so the caller can simply retry later.
var ErrRebuildInProgress = core.ErrRebuildInProgress

// ErrIncrementalNotApplicable is returned when an explicitly requested
// incremental rebuild is disqualified by the pending updates (hub dirtied,
// churn over threshold, cross-block edge, missing rebuild cache, …); the
// error message names the reason. RebuildAuto falls back instead.
var ErrIncrementalNotApplicable = core.ErrIncrementalNotApplicable

// Dynamic wraps a preprocessed graph for incremental edge updates — the
// paper's stated future-work direction. Changing the out-edges of k nodes
// since the last preprocessing is a rank-k modification of the system
// matrix, and queries stay exact through a Sherman–Morrison–Woodbury
// correction on top of the block-elimination solver: each query costs
// O(k+1) BEAR solves. Call Rebuild to fold accumulated changes into a
// fresh preprocessing pass once k grows.
type Dynamic = core.Dynamic

// NewDynamic preprocesses g and wraps it for incremental updates.
func NewDynamic(g *Graph, opts Options) (*Dynamic, error) {
	return core.NewDynamic(g, opts)
}

// NewDynamicCtx is NewDynamic honoring cancellation on ctx during the
// initial preprocessing pass, which aborts between Algorithm-1 stages.
func NewDynamicCtx(ctx context.Context, g *Graph, opts Options) (*Dynamic, error) {
	return core.NewDynamicCtx(ctx, g, opts)
}

// LoadDynamic restores a Dynamic previously written with SaveState,
// verifying the file's integrity footer. The restored instance answers
// queries bit-identically to the saved one, pending updates included.
func LoadDynamic(r io.Reader) (*Dynamic, error) { return core.LoadDynamic(r) }

// RebuildMode selects how RebuildCtx folds pending updates into fresh
// precomputed matrices: a full Algorithm-1 pass, an incremental
// dirty-block rebuild, or automatic selection with fallback.
type RebuildMode = core.RebuildMode

const (
	// RebuildAuto rebuilds incrementally when the pending updates qualify
	// (spoke-only churn within policy thresholds) and falls back to a full
	// pass otherwise, recording the reason in the RebuildReport.
	RebuildAuto = core.RebuildAuto
	// RebuildFull always re-runs the whole preprocessing pass, including a
	// fresh run of the configured ordering engine.
	RebuildFull = core.RebuildFull
	// RebuildIncremental requires the dirty-block path and errors when the
	// pending updates disqualify it.
	RebuildIncremental = core.RebuildIncremental
)

// ParseRebuildMode validates a rebuild-mode string; the empty string
// selects RebuildAuto.
func ParseRebuildMode(s string) (RebuildMode, error) { return core.ParseRebuildMode(s) }

// RebuildPolicy bounds when RebuildAuto takes the incremental path; see
// Dynamic.SetRebuildPolicy.
type RebuildPolicy = core.RebuildPolicy

// RebuildReport describes one completed rebuild: the path that ran, the
// fallback reason if auto mode declined the incremental path, and the
// per-stage timing split. Dynamic.LastRebuild returns the most recent one.
type RebuildReport = core.RebuildReport
