package bear

import (
	"context"
	"io"

	"bear/internal/core"
)

// ErrRebuildInProgress is returned by Rebuild when another rebuild of the
// same Dynamic is already running; queries keep serving the old snapshot
// throughout, so the caller can simply retry later.
var ErrRebuildInProgress = core.ErrRebuildInProgress

// Dynamic wraps a preprocessed graph for incremental edge updates — the
// paper's stated future-work direction. Changing the out-edges of k nodes
// since the last preprocessing is a rank-k modification of the system
// matrix, and queries stay exact through a Sherman–Morrison–Woodbury
// correction on top of the block-elimination solver: each query costs
// O(k+1) BEAR solves. Call Rebuild to fold accumulated changes into a
// fresh preprocessing pass once k grows.
type Dynamic = core.Dynamic

// NewDynamic preprocesses g and wraps it for incremental updates.
func NewDynamic(g *Graph, opts Options) (*Dynamic, error) {
	return core.NewDynamic(g, opts)
}

// NewDynamicCtx is NewDynamic honoring cancellation on ctx during the
// initial preprocessing pass, which aborts between Algorithm-1 stages.
func NewDynamicCtx(ctx context.Context, g *Graph, opts Options) (*Dynamic, error) {
	return core.NewDynamicCtx(ctx, g, opts)
}

// LoadDynamic restores a Dynamic previously written with SaveState,
// verifying the file's integrity footer. The restored instance answers
// queries bit-identically to the saved one, pending updates included.
func LoadDynamic(r io.Reader) (*Dynamic, error) { return core.LoadDynamic(r) }
