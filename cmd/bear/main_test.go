package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"bear"
)

// writeTestGraph saves a small deterministic graph and returns its path.
func writeTestGraph(t *testing.T) string {
	t.Helper()
	g := bear.GenerateRMATPul(128, 600, 0.7, 9)
	path := filepath.Join(t.TempDir(), "g.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.SaveEdgeList(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func preprocessTestIndex(t *testing.T) string {
	t.Helper()
	graphPath := writeTestGraph(t)
	idx := filepath.Join(t.TempDir(), "g.bear")
	if err := cmdPreprocess([]string{"-graph", graphPath, "-out", idx}); err != nil {
		t.Fatalf("cmdPreprocess: %v", err)
	}
	return idx
}

func TestCmdPreprocessAndQuery(t *testing.T) {
	idx := preprocessTestIndex(t)
	if err := cmdQuery([]string{"-index", idx, "-seed", "3", "-top", "5"}); err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
	if err := cmdQuery([]string{"-index", idx, "-seed", "3", "-ei"}); err != nil {
		t.Fatalf("cmdQuery -ei: %v", err)
	}
}

func TestCmdPPR(t *testing.T) {
	idx := preprocessTestIndex(t)
	if err := cmdPPR([]string{"-index", idx, "-seeds", "1, 2,3", "-top", "5"}); err != nil {
		t.Fatalf("cmdPPR: %v", err)
	}
	if err := cmdPPR([]string{"-index", idx, "-seeds", "bogus"}); err == nil {
		t.Fatal("expected bad-seed error")
	}
	if err := cmdPPR([]string{"-index", idx, "-seeds", "99999"}); err == nil {
		t.Fatal("expected out-of-range seed error")
	}
}

func TestCmdStats(t *testing.T) {
	idx := preprocessTestIndex(t)
	if err := cmdStats([]string{"-index", idx}); err != nil {
		t.Fatalf("cmdStats: %v", err)
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdPreprocess([]string{}); err == nil {
		t.Fatal("expected missing-flags error")
	}
	if err := cmdPreprocess([]string{"-graph", "/nonexistent", "-out", "x"}); err == nil {
		t.Fatal("expected open error")
	}
	if err := cmdQuery([]string{"-index", "/nonexistent", "-seed", "0"}); err == nil {
		t.Fatal("expected load error")
	}
	if err := cmdQuery([]string{}); err == nil {
		t.Fatal("expected missing-flags error")
	}
	if err := cmdStats([]string{}); err == nil {
		t.Fatal("expected missing-flags error")
	}
	if err := cmdPPR([]string{}); err == nil {
		t.Fatal("expected missing-flags error")
	}
}

func TestCmdPreprocessApproxAndVariants(t *testing.T) {
	graphPath := writeTestGraph(t)
	dir := t.TempDir()
	for _, args := range [][]string{
		{"-graph", graphPath, "-out", filepath.Join(dir, "a.bear"), "-drop", "0.001"},
		{"-graph", graphPath, "-out", filepath.Join(dir, "b.bear"), "-c", "0.15", "-k", "4"},
		{"-graph", graphPath, "-out", filepath.Join(dir, "c.bear"), "-laplacian"},
	} {
		if err := cmdPreprocess(args); err != nil {
			t.Fatalf("cmdPreprocess %v: %v", args, err)
		}
	}
}

func TestCmdPreprocessMatrixMarket(t *testing.T) {
	g := bear.GenerateRMATPul(64, 300, 0.7, 10)
	path := filepath.Join(t.TempDir(), "g.mtx")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := g.SaveMatrixMarket(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(buf.String()); err != nil {
		t.Fatal(err)
	}
	f.Close()
	idx := filepath.Join(t.TempDir(), "g.bear")
	if err := cmdPreprocess([]string{"-graph", path, "-out", idx}); err != nil {
		t.Fatalf("cmdPreprocess on MatrixMarket input: %v", err)
	}
	if err := cmdQuery([]string{"-index", idx, "-seed", "0", "-top", "3"}); err != nil {
		t.Fatalf("cmdQuery: %v", err)
	}
}

func TestCmdVerify(t *testing.T) {
	graphPath := writeTestGraph(t)
	idx := filepath.Join(t.TempDir(), "g.bear")
	if err := cmdPreprocess([]string{"-graph", graphPath, "-out", idx}); err != nil {
		t.Fatalf("cmdPreprocess: %v", err)
	}
	// Exact index verifies against its own graph.
	if err := cmdVerify([]string{"-index", idx, "-graph", graphPath, "-seeds", "3"}); err != nil {
		t.Fatalf("cmdVerify: %v", err)
	}
	// A different graph fails verification.
	other := filepath.Join(t.TempDir(), "other.txt")
	g2 := bear.GenerateRMATPul(128, 600, 0.7, 99)
	f, err := os.Create(other)
	if err != nil {
		t.Fatal(err)
	}
	if err := g2.SaveEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := cmdVerify([]string{"-index", idx, "-graph", other, "-seeds", "3"}); err == nil {
		t.Fatal("expected verification failure on mismatched graph")
	}
	// A coarsely approximate index fails a tight tolerance.
	approx := filepath.Join(t.TempDir(), "a.bear")
	if err := cmdPreprocess([]string{"-graph", graphPath, "-out", approx, "-drop", "0.05"}); err != nil {
		t.Fatalf("cmdPreprocess approx: %v", err)
	}
	if err := cmdVerify([]string{"-index", approx, "-graph", graphPath, "-seeds", "3", "-tol", "1e-10"}); err == nil {
		t.Fatal("expected verification failure on approximate index")
	}
	// Missing flags.
	if err := cmdVerify([]string{}); err == nil {
		t.Fatal("expected missing-flags error")
	}
}

func TestCmdCandidates(t *testing.T) {
	graphPath := writeTestGraph(t)
	out := filepath.Join(t.TempDir(), "cand.tsv")
	if err := cmdCandidates([]string{"-graph", graphPath, "-k", "3", "-out", out}); err != nil {
		t.Fatalf("cmdCandidates: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "# seed\tcandidate\tscore" {
		t.Fatalf("missing header, got %q", lines[0])
	}
	body := lines[1:]
	if len(body) == 0 {
		t.Fatal("no candidate rows written")
	}
	// Every node appears as a seed at most k times, and no row recommends
	// the seed to itself.
	counts := map[string]int{}
	for _, line := range body {
		fields := strings.Split(line, "\t")
		if len(fields) != 3 {
			t.Fatalf("row %q has %d fields", line, len(fields))
		}
		if fields[0] == fields[1] {
			t.Fatalf("row %q recommends the seed to itself", line)
		}
		counts[fields[0]]++
	}
	for seed, n := range counts {
		if n > 3 {
			t.Fatalf("seed %s has %d candidates, want <= 3", seed, n)
		}
	}

	// Explicit seed list and error paths.
	if err := cmdCandidates([]string{"-graph", graphPath, "-seeds", "0, 5", "-out", filepath.Join(t.TempDir(), "x.tsv")}); err != nil {
		t.Fatalf("explicit seeds: %v", err)
	}
	if err := cmdCandidates([]string{"-graph", graphPath, "-seeds", "bogus"}); err == nil {
		t.Fatal("expected bad-seed error")
	}
	if err := cmdCandidates([]string{"-graph", graphPath, "-seeds", "99999"}); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if err := cmdCandidates([]string{"-graph", graphPath, "-k", "0"}); err == nil {
		t.Fatal("expected bad-k error")
	}
	if err := cmdCandidates([]string{}); err == nil {
		t.Fatal("expected missing-graph error")
	}
}
