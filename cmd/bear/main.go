// Command bear preprocesses graphs and answers RWR queries from the
// command line.
//
// Usage:
//
//	bear preprocess -graph g.txt -out g.bear [-c 0.05] [-drop 0] [-k 0] [-laplacian]
//	bear query      -index g.bear -seed 7 [-top 10] [-ei]
//	bear ppr        -index g.bear -seeds 3,17,42 [-top 10]
//	bear candidates -graph g.txt [-k 10] [-seeds 3,17] [-out cand.tsv] [-c 0.05]
//	bear stats      -index g.bear
//	bear verify     -index g.bear -graph g.txt [-seeds 5] [-tol 1e-8]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"bear"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "preprocess":
		err = cmdPreprocess(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "ppr":
		err = cmdPPR(os.Args[2:])
	case "candidates":
		err = cmdCandidates(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "bear: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: bear {preprocess|query|ppr|candidates|stats|verify} [flags]")
	os.Exit(2)
}

func cmdPreprocess(args []string) error {
	fs := flag.NewFlagSet("preprocess", flag.ExitOnError)
	graphPath := fs.String("graph", "", "edge-list input file (required)")
	out := fs.String("out", "", "output index file (required)")
	c := fs.Float64("c", 0, "restart probability (default 0.05)")
	drop := fs.Float64("drop", 0, "drop tolerance ξ (0 = BEAR-Exact)")
	k := fs.Int("k", 0, "ordering hub budget — the SlashBurn wave size (default 0.001·n)")
	lap := fs.Bool("laplacian", false, "use normalized graph Laplacian variant")
	ord := fs.String("ordering", "", "reordering engine: slashburn|mindeg|nd (default slashburn)")
	fs.Parse(args)
	if *graphPath == "" || *out == "" {
		return fmt.Errorf("preprocess: -graph and -out are required")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := loadGraph(f)
	if err != nil {
		return err
	}
	p, err := bear.Preprocess(g, bear.Options{C: *c, DropTol: *drop, K: *k, Laplacian: *lap, Ordering: *ord})
	if err != nil {
		return err
	}
	of, err := os.Create(*out)
	if err != nil {
		return err
	}
	defer of.Close()
	if err := p.Save(of); err != nil {
		return err
	}
	st := p.Stats
	fmt.Printf("preprocessed n=%d m=%d n1=%d n2=%d blocks=%d in %v\n",
		st.N, st.M, st.N1, st.N2, st.NumBlocks, st.TimeTotal)
	fmt.Printf("precomputed nnz=%d bytes=%d\n", p.NNZ(), p.Bytes())
	return nil
}

// loadGraph sniffs the input format: MatrixMarket files start with a
// "%%MatrixMarket" banner, everything else parses as a plain edge list.
func loadGraph(r io.Reader) (*bear.Graph, error) {
	br := bufio.NewReader(r)
	head, _ := br.Peek(len("%%MatrixMarket"))
	if strings.EqualFold(string(head), "%%MatrixMarket") {
		return bear.LoadMatrixMarket(br)
	}
	return bear.LoadEdgeList(br)
}

func loadIndex(path string) (*bear.Precomputed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return bear.LoadPrecomputed(f)
}

func printTop(scores []float64, k int) {
	for _, node := range bear.TopK(scores, k) {
		fmt.Printf("%d\t%.8g\n", node, scores[node])
	}
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	index := fs.String("index", "", "index file from 'bear preprocess' (required)")
	seed := fs.Int("seed", -1, "seed node (required)")
	top := fs.Int("top", 10, "number of results to print (0 = all)")
	ei := fs.Bool("ei", false, "report effective importance instead of raw RWR")
	fs.Parse(args)
	if *index == "" || *seed < 0 {
		return fmt.Errorf("query: -index and -seed are required")
	}
	p, err := loadIndex(*index)
	if err != nil {
		return err
	}
	var scores []float64
	if *ei {
		scores, err = p.QueryEffectiveImportance(*seed)
	} else {
		scores, err = p.Query(*seed)
	}
	if err != nil {
		return err
	}
	k := *top
	if k <= 0 {
		k = len(scores)
	}
	printTop(scores, k)
	return nil
}

func cmdPPR(args []string) error {
	fs := flag.NewFlagSet("ppr", flag.ExitOnError)
	index := fs.String("index", "", "index file (required)")
	seedsArg := fs.String("seeds", "", "comma-separated seed nodes (required)")
	top := fs.Int("top", 10, "number of results to print (0 = all)")
	fs.Parse(args)
	if *index == "" || *seedsArg == "" {
		return fmt.Errorf("ppr: -index and -seeds are required")
	}
	p, err := loadIndex(*index)
	if err != nil {
		return err
	}
	q := make([]float64, p.N)
	parts := strings.Split(*seedsArg, ",")
	for _, s := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return fmt.Errorf("ppr: bad seed %q: %v", s, err)
		}
		if v < 0 || v >= p.N {
			return fmt.Errorf("ppr: seed %d out of range [0,%d)", v, p.N)
		}
		q[v] = 1 / float64(len(parts))
	}
	scores, err := p.QueryDist(q)
	if err != nil {
		return err
	}
	k := *top
	if k <= 0 {
		k = len(scores)
	}
	printTop(scores, k)
	return nil
}

// cmdCandidates is the offline link-prediction precompute: for every seed
// (default: every node) it ranks the k highest-scoring nodes that are not
// the seed and not among its existing out-neighbors, writing one
// "seed<TAB>candidate<TAB>score" line per candidate. Seeds are solved in
// chunks through the blocked multi-RHS batch solver, so the whole-graph
// sweep costs one factor traversal per chunk rather than one per seed.
func cmdCandidates(args []string) error {
	fs := flag.NewFlagSet("candidates", flag.ExitOnError)
	graphPath := fs.String("graph", "", "graph file (required)")
	k := fs.Int("k", 10, "candidates per seed")
	seedsArg := fs.String("seeds", "", "comma-separated seed nodes (default: all nodes)")
	out := fs.String("out", "", "output TSV file (default stdout)")
	c := fs.Float64("c", 0, "restart probability (default 0.05)")
	fs.Parse(args)
	if *graphPath == "" {
		return fmt.Errorf("candidates: -graph is required")
	}
	if *k <= 0 {
		return fmt.Errorf("candidates: -k must be positive")
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := loadGraph(f)
	if err != nil {
		return err
	}
	d, err := bear.NewDynamic(g, bear.Options{C: *c})
	if err != nil {
		return err
	}
	var seeds []int
	if *seedsArg == "" {
		seeds = make([]int, g.N())
		for i := range seeds {
			seeds[i] = i
		}
	} else {
		for _, s := range strings.Split(*seedsArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("candidates: bad seed %q: %v", s, err)
			}
			if v < 0 || v >= g.N() {
				return fmt.Errorf("candidates: seed %d out of range [0,%d)", v, g.N())
			}
			seeds = append(seeds, v)
		}
	}
	var w io.Writer = os.Stdout
	if *out != "" {
		of, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer of.Close()
		w = of
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# seed\tcandidate\tscore")
	// Chunk size balances the multi-RHS win against peak memory (each
	// in-flight seed holds a full n-length score vector).
	const chunk = 256
	written := 0
	for lo := 0; lo < len(seeds); lo += chunk {
		hi := lo + chunk
		if hi > len(seeds) {
			hi = len(seeds)
		}
		vecs, err := d.QueryBatch(seeds[lo:hi], 0)
		if err != nil {
			return err
		}
		for j, scores := range vecs {
			seed := seeds[lo+j]
			for _, node := range bear.TopKCandidates(g, scores, seed, *k) {
				fmt.Fprintf(bw, "%d\t%d\t%.8g\n", seed, node, scores[node])
				written++
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bear: wrote %d candidates for %d seeds\n", written, len(seeds))
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	index := fs.String("index", "", "index file (required)")
	fs.Parse(args)
	if *index == "" {
		return fmt.Errorf("stats: -index is required")
	}
	p, err := loadIndex(*index)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d n1=%d n2=%d c=%g blocks=%d\n", p.N, p.N1, p.N2, p.C, len(p.Blocks))
	fmt.Printf("nnz: L1inv=%d U1inv=%d H12=%d H21=%d L2inv=%d U2inv=%d total=%d\n",
		p.L1Inv.NNZ(), p.U1Inv.NNZ(), p.H12.NNZ(), p.H21.NNZ(), p.L2Inv.NNZ(), p.U2Inv.NNZ(), p.NNZ())
	fmt.Printf("bytes=%d\n", p.Bytes())
	return nil
}

// cmdVerify cross-checks a preprocessed index against its source graph:
// random seeds are queried through the index and through the independent
// iterative solver, and the maximum absolute difference is compared to a
// tolerance. It catches index/graph mismatches, corrupt files that still
// decode, and approximate indexes applied where exact answers are assumed.
func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	index := fs.String("index", "", "index file (required)")
	graphPath := fs.String("graph", "", "source graph file (required)")
	seeds := fs.Int("seeds", 5, "number of random seeds to check")
	tol := fs.Float64("tol", 1e-8, "maximum allowed |index - iterative| per node")
	fs.Parse(args)
	if *index == "" || *graphPath == "" {
		return fmt.Errorf("verify: -index and -graph are required")
	}
	p, err := loadIndex(*index)
	if err != nil {
		return err
	}
	f, err := os.Open(*graphPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := loadGraph(f)
	if err != nil {
		return err
	}
	if g.N() != p.N {
		return fmt.Errorf("verify: graph has %d nodes, index has %d", g.N(), p.N)
	}
	rng := rand.New(rand.NewSource(1))
	var worst float64
	for i := 0; i < *seeds; i++ {
		seed := rng.Intn(p.N)
		got, err := p.Query(seed)
		if err != nil {
			return fmt.Errorf("verify: query seed %d: %v", seed, err)
		}
		q := make([]float64, p.N)
		q[seed] = 1
		want, err := bear.SolveIterative(g, p.C, q, (*tol)/100)
		if err != nil {
			return fmt.Errorf("verify: iterative solve: %v", err)
		}
		for u := range want {
			if d := math.Abs(got[u] - want[u]); d > worst {
				worst = d
			}
		}
	}
	fmt.Printf("verified %d seeds: max |index - iterative| = %.3g (tolerance %.3g)\n",
		*seeds, worst, *tol)
	if worst > *tol {
		return fmt.Errorf("verify: divergence %.3g exceeds tolerance %.3g (approximate index, wrong graph, or corruption)", worst, *tol)
	}
	return nil
}
