package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-list"}, &out, &errBuf); err != nil {
		t.Fatalf("run -list: %v", err)
	}
	for _, want := range []string{"table4", "fig1b", "fig7", "ablation"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("listing missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSingleExperimentWithCSV(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	err := run([]string{"-exp", "fig7", "-scale", "0.05", "-seeds", "2", "-csv", dir}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "Fig 7") {
		t.Fatalf("missing rendered table:\n%s", out.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || filepath.Ext(entries[0].Name()) != ".csv" {
		t.Fatalf("expected one CSV file, got %v", entries)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-exp", "fig99"}, &out, &errBuf); err == nil {
		t.Fatal("expected unknown-experiment error")
	}
	if err := run([]string{"-badflag"}, &out, &errBuf); err == nil {
		t.Fatal("expected flag error")
	}
}
