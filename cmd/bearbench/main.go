// Command bearbench regenerates the tables and figures of the paper's
// evaluation section on synthetic dataset analogues.
//
// Usage:
//
//	bearbench -exp all                 # every experiment
//	bearbench -exp fig1b -scale 2      # one experiment at twice the size
//	bearbench -exp table4 -csv out/    # also write CSV files
//	bearbench -list                    # show available experiments
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"bear/internal/bench"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bearbench: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bearbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		exp    = fs.String("exp", "all", "experiment id or 'all'")
		scale  = fs.Float64("scale", 1, "dataset size multiplier")
		budget = fs.Int64("budget", 0, "memory budget in bytes (default 128 MiB)")
		seeds  = fs.Int("seeds", 0, "query seeds per timing measurement (default 20)")
		seed   = fs.Int64("seed", 0, "random seed (default 42)")
		csvDir = fs.String("csv", "", "directory for CSV output (optional)")
		bars   = fs.Bool("bars", false, "also draw log-scale bar charts like the paper's figures")
		list   = fs.Bool("list", false, "list experiments and exit")

		baseline = fs.String("baseline", "", "with -exp kernels, rebuild, orderings, or topk: regression-gate mode, comparing measured ratios against the baselines in this BENCH_*.json (fails on >20% regression)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Fprintf(stdout, "%-8s %s\n", e.ID, e.Paper)
		}
		return nil
	}

	cfg := bench.Config{Scale: *scale, Budget: *budget, QuerySeeds: *seeds, Seed: *seed}
	if *baseline != "" {
		var check func(bench.Config, string) error
		switch *exp {
		case "kernels":
			check = bench.CheckKernels
		case "rebuild":
			check = bench.CheckRebuild
		case "orderings":
			check = bench.CheckOrderings
		case "topk":
			check = bench.CheckTopK
		default:
			return fmt.Errorf("-baseline only applies to -exp kernels, rebuild, orderings, or topk")
		}
		if err := check(cfg, *baseline); err != nil {
			return fmt.Errorf("%s regression gate: %w", *exp, err)
		}
		fmt.Fprintf(stdout, "%s regression gate passed against %s\n", *exp, *baseline)
		return nil
	}
	var exps []bench.Experiment
	if *exp == "all" {
		exps = bench.Experiments()
	} else {
		e, err := bench.ExperimentByID(*exp)
		if err != nil {
			return err
		}
		exps = []bench.Experiment{e}
	}

	// Stream each experiment's tables as they complete: full-scale runs
	// take minutes and intermediate results are worth seeing early.
	for _, e := range exps {
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(stdout); err != nil {
				return err
			}
			if *bars {
				if col := t.BarColumn(); col >= 0 {
					if err := t.RenderBars(stdout, col, 40); err != nil {
						return err
					}
				}
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func writeCSV(dir string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '_'
		}
	}, t.Title)
	if len(name) > 60 {
		name = name[:60]
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return t.WriteCSV(f)
}
