// Command bearserve runs the BEAR HTTP query service.
//
// Usage:
//
//	bearserve -addr :8080 -graph social=edges.txt -graph web=crawl.mtx
//
// Graphs named on the command line are preprocessed at startup; more can
// be uploaded at runtime with PUT /v1/graphs/{name}. With -snapshot the
// registry is restored from the file at boot (if present), persisted on
// demand via POST /v1/snapshot, and written one final time on graceful
// shutdown. SIGINT/SIGTERM drain in-flight requests before exiting. See
// package bear/server for the API.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bear"
	"bear/server"
)

// graphFlags collects repeated -graph name=path arguments.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }

func (g *graphFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*g = append(*g, v)
	return nil
}

func main() {
	var graphs graphFlags
	addr := flag.String("addr", ":8080", "listen address")
	c := flag.Float64("c", 0, "restart probability (default 0.05)")
	drop := flag.Float64("drop", 0, "drop tolerance ξ (0 = BEAR-Exact)")
	rebuild := flag.Int("rebuild-threshold", 64, "auto-rebuild after this many updated nodes (0 = never)")
	rebuildChurn := flag.Float64("rebuild-churn", 0, "max dirty-node fraction for incremental rebuilds before falling back to full (0 = default 0.10)")
	maxConc := flag.Int("max-concurrent", 256, "in-flight request bound before load shedding (0 = unbounded)")
	queryTimeout := flag.Duration("query-timeout", 0, "per-query deadline (0 = none)")
	snapshot := flag.String("snapshot", "", "registry snapshot file: restored at boot, written on shutdown and POST /v1/snapshot")
	drain := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	cacheBytes := flag.Int64("cache-bytes", 64<<20, "result cache budget in bytes (negative = disable caching)")
	cacheTTL := flag.Duration("cache-ttl", 0, "result cache entry lifetime (0 = until evicted; invalidation is by epoch, not TTL)")
	pprofAddr := flag.String("pprof", "", "listen address for net/http/pprof (empty = disabled); keep it off public interfaces")
	metrics := flag.Bool("metrics", true, "serve Prometheus metrics at GET /metrics")
	kern := flag.String("kernel", "", "query-kernel layout: auto|csr|hybrid|sell|parallel (default auto picks per matrix)")
	ord := flag.String("ordering", "", "reordering engine: slashburn|mindeg|nd (default slashburn)")
	traceSlow := flag.Duration("trace-slow", 0, "trace every query and log a per-stage breakdown for ones slower than this (0 = off), e.g. -trace-slow=50ms")
	flag.Var(&graphs, "graph", "name=path of a graph to preprocess at startup (repeatable)")
	flag.Parse()

	s := server.New()
	s.RebuildThreshold = *rebuild
	s.RebuildMaxChurn = *rebuildChurn
	s.MaxConcurrent = *maxConc
	s.QueryTimeout = *queryTimeout
	s.SnapshotPath = *snapshot
	s.CacheMaxBytes = *cacheBytes
	s.CacheTTL = *cacheTTL
	s.EnableMetrics = *metrics
	s.TraceSlow = *traceSlow
	s.DefaultKernel = *kern
	s.DefaultOrdering = *ord

	if *pprofAddr != "" {
		// A separate listener keeps the profiling surface off the service
		// port: the API can face a load balancer while pprof stays on
		// localhost. Registered on a private mux, not DefaultServeMux, so
		// nothing else can sneak handlers onto it.
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, mux); err != nil {
				log.Printf("bearserve: pprof listener: %v", err)
			}
		}()
	}

	if *snapshot != "" {
		switch err := s.LoadSnapshot(*snapshot); {
		case err == nil:
			log.Printf("restored registry from %s", *snapshot)
		case errors.Is(err, os.ErrNotExist):
			log.Printf("no snapshot at %s; starting empty", *snapshot)
		default:
			// A corrupt snapshot is a hard error: silently starting empty
			// would look like data loss with no explanation.
			log.Fatalf("bearserve: %v", err)
		}
	}

	opts := bear.Options{C: *c, DropTol: *drop, Kernel: *kern, Ordering: *ord}
	for _, spec := range graphs {
		name, path, _ := strings.Cut(spec, "=")
		if err := loadInto(s, name, path, opts); err != nil {
			log.Fatalf("bearserve: loading %s: %v", spec, err)
		}
		log.Printf("preprocessed %s from %s", name, path)
	}

	srv := &http.Server{Addr: *addr, Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bearserve listening on %s", *addr)
		errCh <- srv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		log.Fatalf("bearserve: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("bearserve: shutdown: %v", err)
	}
	if *snapshot != "" {
		if err := s.SaveSnapshot(*snapshot); err != nil {
			log.Fatalf("bearserve: final snapshot: %v", err)
		}
		log.Printf("registry snapshot written to %s", *snapshot)
	}
}

func loadInto(s *server.Server, name, path string, opts bear.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var g *bear.Graph
	if strings.HasSuffix(path, ".mtx") {
		g, err = bear.LoadMatrixMarket(f)
	} else {
		g, err = bear.LoadEdgeList(f)
	}
	if err != nil {
		return err
	}
	return s.Add(name, g, opts)
}
