// Command bearserve runs the BEAR HTTP query service.
//
// Usage:
//
//	bearserve -addr :8080 -graph social=edges.txt -graph web=crawl.mtx
//
// Graphs named on the command line are preprocessed at startup; more can
// be uploaded at runtime with PUT /v1/graphs/{name}. See package
// bear/server for the API.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"strings"

	"bear"
	"bear/server"
)

// graphFlags collects repeated -graph name=path arguments.
type graphFlags []string

func (g *graphFlags) String() string { return strings.Join(*g, ",") }

func (g *graphFlags) Set(v string) error {
	if !strings.Contains(v, "=") {
		return fmt.Errorf("want name=path, got %q", v)
	}
	*g = append(*g, v)
	return nil
}

func main() {
	var graphs graphFlags
	addr := flag.String("addr", ":8080", "listen address")
	c := flag.Float64("c", 0, "restart probability (default 0.05)")
	drop := flag.Float64("drop", 0, "drop tolerance ξ (0 = BEAR-Exact)")
	rebuild := flag.Int("rebuild-threshold", 64, "auto-rebuild after this many updated nodes (0 = never)")
	flag.Var(&graphs, "graph", "name=path of a graph to preprocess at startup (repeatable)")
	flag.Parse()

	s := server.New()
	s.RebuildThreshold = *rebuild
	opts := bear.Options{C: *c, DropTol: *drop}
	for _, spec := range graphs {
		name, path, _ := strings.Cut(spec, "=")
		if err := loadInto(s, name, path, opts); err != nil {
			log.Fatalf("bearserve: loading %s: %v", spec, err)
		}
		log.Printf("preprocessed %s from %s", name, path)
	}

	log.Printf("bearserve listening on %s", *addr)
	if err := http.ListenAndServe(*addr, s.Handler()); err != nil {
		log.Fatalf("bearserve: %v", err)
	}
}

func loadInto(s *server.Server, name, path string, opts bear.Options) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var g *bear.Graph
	if strings.HasSuffix(path, ".mtx") {
		g, err = bear.LoadMatrixMarket(f)
	} else {
		g, err = bear.LoadEdgeList(f)
	}
	if err != nil {
		return err
	}
	return s.Add(name, g, opts)
}
