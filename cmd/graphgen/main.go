// Command graphgen writes synthetic graphs as edge lists. It exposes the
// generators used by the experiment harness so datasets can be materialized
// on disk and fed to cmd/bear.
//
// Usage:
//
//	graphgen -type rmat -n 10000 -m 50000 -pul 0.7 -seed 1 -o graph.txt
//	graphgen -type ba -n 10000 -k 2 -o routing.txt
//	graphgen -type caveman -communities 100 -size 25 -hubs 30 -o coauthor.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"bear"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("graphgen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		typ         = fs.String("type", "rmat", "generator: rmat, ba, er, caveman, star, bipartite")
		n           = fs.Int("n", 10000, "number of nodes (rmat, ba, er)")
		m           = fs.Int("m", 50000, "number of edges (rmat, er, bipartite)")
		pul         = fs.Float64("pul", 0.7, "R-MAT upper-left probability")
		k           = fs.Int("k", 2, "edges per new node (ba)")
		communities = fs.Int("communities", 100, "number of communities (caveman)")
		size        = fs.Int("size", 25, "community size (caveman)")
		pintra      = fs.Float64("pintra", 0.25, "within-community edge probability (caveman)")
		hubs        = fs.Int("hubs", 30, "hub count (caveman)")
		hubdeg      = fs.Int("hubdeg", 30, "hub degree (caveman)")
		core        = fs.Int("core", 50, "core size (star)")
		periphery   = fs.Int("periphery", 5000, "periphery size (star)")
		leafdeg     = fs.Int("leafdeg", 2, "leaf degree (star)")
		pcore       = fs.Float64("pcore", 0.3, "core-core edge probability (star)")
		left        = fs.Int("left", 1000, "left side size (bipartite)")
		right       = fs.Int("right", 1000, "right side size (bipartite)")
		seed        = fs.Int64("seed", 1, "random seed")
		out         = fs.String("o", "", "output file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var g *bear.Graph
	switch *typ {
	case "rmat":
		g = bear.GenerateRMATPul(*n, *m, *pul, *seed)
	case "ba":
		g = bear.GenerateBarabasiAlbert(*n, *k, *seed)
	case "er":
		g = bear.GenerateErdosRenyi(*n, *m, *seed)
	case "caveman":
		g = bear.GenerateCavemanHubs(bear.CavemanHubsConfig{
			Communities: *communities, Size: *size, PIntra: *pintra,
			Hubs: *hubs, HubDeg: *hubdeg, Seed: *seed,
		})
	case "star":
		g = bear.GenerateStarMail(bear.StarMailConfig{
			Core: *core, Periphery: *periphery, LeafDeg: *leafdeg, PCore: *pcore, Seed: *seed,
		})
	case "bipartite":
		g = bear.GenerateBipartite(*left, *right, *m, *seed)
	default:
		return fmt.Errorf("unknown type %q", *typ)
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := g.SaveEdgeList(w); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "graphgen: wrote %d nodes, %d edges\n", g.N(), g.M())
	return nil
}
