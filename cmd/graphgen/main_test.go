package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"bear"
)

func TestRunGeneratorsToStdout(t *testing.T) {
	cases := [][]string{
		{"-type", "rmat", "-n", "64", "-m", "200"},
		{"-type", "ba", "-n", "64", "-k", "2"},
		{"-type", "er", "-n", "64", "-m", "200"},
		{"-type", "caveman", "-communities", "4", "-size", "8", "-hubs", "2"},
		{"-type", "star", "-core", "4", "-periphery", "30"},
		{"-type", "bipartite", "-left", "10", "-right", "10", "-m", "40"},
	}
	for _, args := range cases {
		var out, errBuf bytes.Buffer
		if err := run(args, &out, &errBuf); err != nil {
			t.Fatalf("run %v: %v", args, err)
		}
		g, err := bear.LoadEdgeList(strings.NewReader(out.String()))
		if err != nil {
			t.Fatalf("run %v: output not loadable: %v", args, err)
		}
		if g.M() == 0 {
			t.Fatalf("run %v: produced no edges", args)
		}
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.txt")
	var out, errBuf bytes.Buffer
	if err := run([]string{"-type", "er", "-n", "32", "-m", "64", "-o", path}, &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.Len() != 0 {
		t.Fatal("wrote to stdout despite -o")
	}
	if !strings.Contains(errBuf.String(), "wrote") {
		t.Fatalf("missing summary on stderr: %q", errBuf.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-type", "nope"}, &out, &errBuf); err == nil {
		t.Fatal("expected unknown-type error")
	}
	if err := run([]string{"-badflag"}, &out, &errBuf); err == nil {
		t.Fatal("expected flag error")
	}
	if err := run([]string{"-type", "er", "-o", "/nonexistent-dir/x.txt"}, &out, &errBuf); err == nil {
		t.Fatal("expected create error")
	}
}

func TestRunDeterministicSeed(t *testing.T) {
	var a, b, errBuf bytes.Buffer
	if err := run([]string{"-type", "rmat", "-n", "64", "-m", "200", "-seed", "9"}, &a, &errBuf); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-type", "rmat", "-n", "64", "-m", "200", "-seed", "9"}, &b, &errBuf); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("same seed produced different output")
	}
}
