// Command bearfront runs the BEAR cluster coordinator: a stateless front
// that places graphs on bearserve shards by consistent hashing, replicates
// them R ways, and serves the same /v1 API with health-checked failover,
// hedged reads, and graceful degradation.
//
// Usage:
//
//	bearfront -addr :8080 \
//	    -shard a=http://10.0.0.1:8080 \
//	    -shard b=http://10.0.0.2:8080 \
//	    -shard c=http://10.0.0.3:8080 \
//	    -replicas 2
//
// Shard IDs are placement identity: keep them stable across restarts and
// address changes (re-IDing a shard moves its keyspace; re-addressing it
// does not). Any number of fronts with the same -shard list can run behind
// a plain load balancer — placement is a pure function of the list, and
// everything else a front holds (health views, latency estimates, the
// last-good cache) is soft state it rebuilds in seconds.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bear/internal/cluster"
)

// shardFlags collects repeated -shard id=url arguments.
type shardFlags []cluster.ShardConfig

func (s *shardFlags) String() string {
	parts := make([]string, len(*s))
	for i, sc := range *s {
		parts[i] = sc.ID + "=" + sc.URL
	}
	return strings.Join(parts, ",")
}

func (s *shardFlags) Set(v string) error {
	id, u, ok := strings.Cut(v, "=")
	if !ok || id == "" || u == "" {
		return fmt.Errorf("want id=url, got %q", v)
	}
	*s = append(*s, cluster.ShardConfig{ID: id, URL: u})
	return nil
}

func main() {
	var shards shardFlags
	addr := flag.String("addr", ":8080", "listen address")
	replicas := flag.Int("replicas", 2, "replicas per graph (clamped to the shard count)")
	readTimeout := flag.Duration("read-timeout", 10*time.Second, "per-attempt deadline for reads against a shard")
	writeTimeout := flag.Duration("write-timeout", 5*time.Minute, "per-attempt deadline for mutations (uploads preprocess, so generous)")
	readBudget := flag.Duration("read-budget", 20*time.Second, "total wall clock one read may spend across failover attempts")
	hedgeDelay := flag.Duration("hedge-delay", 0, "fixed hedge deadline; 0 = adaptive (p95 of observed attempt latency)")
	noHedge := flag.Bool("no-hedge", false, "disable hedged reads")
	staleTTL := flag.Duration("stale-ttl", 5*time.Minute, "max age of a last-good response served under degradation (0 = disable stale serving)")
	ejectAfter := flag.Duration("eject-duration", 5*time.Second, "cooldown before an ejected shard is re-tried half-open")
	probeEvery := flag.Duration("probe-interval", 2*time.Second, "active /readyz probe interval")
	probeFails := flag.Int("probe-failures", 3, "consecutive probe failures that eject a shard")
	successFloor := flag.Float64("success-floor", 0.5, "rolling success rate below which a shard is ejected")
	drain := flag.Duration("drain-timeout", 15*time.Second, "how long shutdown waits for in-flight requests")
	flag.Var(&shards, "shard", "id=url of a bearserve shard (repeatable; at least one required)")
	flag.Parse()

	if len(shards) == 0 {
		log.Fatalf("bearfront: at least one -shard id=url is required")
	}

	c, err := cluster.New(cluster.Config{
		Shards:       shards,
		Replication:  *replicas,
		ReadTimeout:  *readTimeout,
		WriteTimeout: *writeTimeout,
		ReadBudget:   *readBudget,
		HedgeDelay:   *hedgeDelay,
		DisableHedge: *noHedge,
		StaleTTL:     *staleTTL,
		Health: cluster.HealthConfig{
			EjectDuration: *ejectAfter,
			ProbeInterval: *probeEvery,
			ProbeFailures: *probeFails,
			SuccessFloor:  *successFloor,
		},
		ErrorLog: log.New(os.Stderr, "", log.LstdFlags),
	})
	if err != nil {
		log.Fatalf("bearfront: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	c.Start(ctx)

	srv := &http.Server{Addr: *addr, Handler: c.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("bearfront listening on %s (%d shards, R=%d)", *addr, len(shards), *replicas)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		log.Fatalf("bearfront: %v", err)
	case <-ctx.Done():
	}

	log.Printf("shutting down: draining in-flight requests (up to %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("bearfront: shutdown: %v", err)
	}
}
