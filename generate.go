package bear

import (
	"bear/internal/graph/gen"
)

// RMATConfig parameterizes the R-MAT recursive graph generator.
type RMATConfig = gen.RMATConfig

// CavemanHubsConfig parameterizes the community-with-hubs generator.
type CavemanHubsConfig = gen.CavemanHubsConfig

// StarMailConfig parameterizes the star-heavy (email-like) generator.
type StarMailConfig = gen.StarMailConfig

// GenerateRMAT samples an R-MAT graph (Chakrabarti et al.), the generator
// the paper uses for its synthetic experiments.
func GenerateRMAT(cfg RMATConfig) *Graph { return gen.RMAT(cfg) }

// GenerateRMATPul samples an R-MAT graph with upper-left probability pul
// and the remainder split evenly, the parameterization of the paper's
// Figure 7 structure sweep.
func GenerateRMATPul(n, m int, pul float64, seed int64) *Graph {
	return gen.RMAT(gen.NewRMATPul(n, m, pul, seed))
}

// GenerateBarabasiAlbert grows a preferential-attachment graph: n nodes,
// k undirected edges per new node.
func GenerateBarabasiAlbert(n, k int, seed int64) *Graph {
	return gen.BarabasiAlbert(n, k, seed)
}

// GenerateErdosRenyi samples a uniform random graph with n nodes and m
// distinct directed edges.
func GenerateErdosRenyi(n, m int, seed int64) *Graph { return gen.ErdosRenyi(n, m, seed) }

// GenerateCavemanHubs generates dense communities connected by global hub
// nodes, a co-authorship-like structure.
func GenerateCavemanHubs(cfg CavemanHubsConfig) *Graph { return gen.CavemanHubs(cfg) }

// GenerateStarMail generates a small high-degree core with a large
// low-degree periphery, an email-like structure.
func GenerateStarMail(cfg StarMailConfig) *Graph { return gen.StarMail(cfg) }

// GenerateBipartite samples a random bipartite graph: left nodes occupy
// ids [0, left), right nodes [left, left+right), with m undirected edges.
func GenerateBipartite(left, right, m int, seed int64) *Graph {
	return gen.Bipartite(left, right, m, seed)
}
